package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: graphsurge
BenchmarkLPTSkew/policy=fifo-8         	       1	 52031337 ns/op	         2.110 proj-speedup	         4.000 pool-built
BenchmarkLPTSkew/policy=lpt-8          	       1	 41022518 ns/op	         3.480 proj-speedup	         0 pool-built	         4.000 pool-reused
BenchmarkEngineWCCStep-8               	  150000	      8012 ns/op
BenchmarkClusterOverhead/cluster-1worker-8 	       1	 93817042 ns/op	 4211044 B/op	   61230 allocs/op	         8.000 cluster-shards	    104857 wire-bytes/op
PASS
ok  	graphsurge	3.211s
`

func TestConvert(t *testing.T) {
	var out bytes.Buffer
	if err := convert(strings.NewReader(sample), &out); err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out.String())
	}
	if len(rep.Benchmarks) != 4 {
		t.Fatalf("parsed %d benchmarks, want 4: %+v", len(rep.Benchmarks), rep.Benchmarks)
	}
	lpt := rep.Benchmarks[1]
	if lpt.Name != "BenchmarkLPTSkew/policy=lpt-8" || lpt.Iterations != 1 {
		t.Fatalf("lpt entry: %+v", lpt)
	}
	if lpt.Metrics["ns/op"] != 41022518 || lpt.Metrics["proj-speedup"] != 3.48 || lpt.Metrics["pool-reused"] != 4 {
		t.Fatalf("lpt metrics: %+v", lpt.Metrics)
	}
	// Lines without allocation or wire metrics leave the lifted fields zero
	// (omitted from the JSON).
	if lpt.AllocsPerOp != 0 || lpt.WireBytesPerOp != 0 {
		t.Fatalf("lpt lifted fields should be zero: %+v", lpt)
	}
	step := rep.Benchmarks[2]
	if step.Iterations != 150000 || step.Metrics["ns/op"] != 8012 {
		t.Fatalf("step entry: %+v", step)
	}
	clu := rep.Benchmarks[3]
	if clu.Name != "BenchmarkClusterOverhead/cluster-1worker-8" {
		t.Fatalf("cluster entry: %+v", clu)
	}
	if clu.AllocsPerOp != 61230 || clu.BytesPerOp != 4211044 || clu.WireBytesPerOp != 104857 {
		t.Fatalf("cluster lifted fields: %+v", clu)
	}
	if clu.Metrics["cluster-shards"] != 8 || clu.Metrics["wire-bytes/op"] != 104857 {
		t.Fatalf("cluster metrics: %+v", clu.Metrics)
	}
}

func TestConvertIgnoresNoise(t *testing.T) {
	var out bytes.Buffer
	noise := "Benchmark\nBenchmarkX not-a-number ns/op\n--- FAIL: TestFoo\n"
	if err := convert(strings.NewReader(noise), &out); err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 0 {
		t.Fatalf("noise parsed as benchmarks: %+v", rep.Benchmarks)
	}
}
