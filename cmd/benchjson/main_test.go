package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: graphsurge
BenchmarkLPTSkew/policy=fifo-8         	       1	 52031337 ns/op	         2.110 proj-speedup	         4.000 pool-built
BenchmarkLPTSkew/policy=lpt-8          	       1	 41022518 ns/op	         3.480 proj-speedup	         0 pool-built	         4.000 pool-reused
BenchmarkEngineWCCStep-8               	  150000	      8012 ns/op
PASS
ok  	graphsurge	3.211s
`

func TestConvert(t *testing.T) {
	var out bytes.Buffer
	if err := convert(strings.NewReader(sample), &out); err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out.String())
	}
	if len(rep.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %+v", len(rep.Benchmarks), rep.Benchmarks)
	}
	lpt := rep.Benchmarks[1]
	if lpt.Name != "BenchmarkLPTSkew/policy=lpt-8" || lpt.Iterations != 1 {
		t.Fatalf("lpt entry: %+v", lpt)
	}
	if lpt.Metrics["ns/op"] != 41022518 || lpt.Metrics["proj-speedup"] != 3.48 || lpt.Metrics["pool-reused"] != 4 {
		t.Fatalf("lpt metrics: %+v", lpt.Metrics)
	}
	step := rep.Benchmarks[2]
	if step.Iterations != 150000 || step.Metrics["ns/op"] != 8012 {
		t.Fatalf("step entry: %+v", step)
	}
}

func TestConvertIgnoresNoise(t *testing.T) {
	var out bytes.Buffer
	noise := "Benchmark\nBenchmarkX not-a-number ns/op\n--- FAIL: TestFoo\n"
	if err := convert(strings.NewReader(noise), &out); err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 0 {
		t.Fatalf("noise parsed as benchmarks: %+v", rep.Benchmarks)
	}
}
