package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: graphsurge
BenchmarkLPTSkew/policy=fifo-8         	       1	 52031337 ns/op	         2.110 proj-speedup	         4.000 pool-built
BenchmarkLPTSkew/policy=lpt-8          	       1	 41022518 ns/op	         3.480 proj-speedup	         0 pool-built	         4.000 pool-reused
BenchmarkEngineWCCStep-8               	  150000	      8012 ns/op
BenchmarkClusterOverhead/cluster-1worker-8 	       1	 93817042 ns/op	 4211044 B/op	   61230 allocs/op	         8.000 cluster-shards	    104857 wire-bytes/op
PASS
ok  	graphsurge	3.211s
`

func TestConvert(t *testing.T) {
	var out bytes.Buffer
	if err := convert(strings.NewReader(sample), &out, nil); err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out.String())
	}
	if len(rep.Benchmarks) != 4 {
		t.Fatalf("parsed %d benchmarks, want 4: %+v", len(rep.Benchmarks), rep.Benchmarks)
	}
	lpt := rep.Benchmarks[1]
	if lpt.Name != "BenchmarkLPTSkew/policy=lpt-8" || lpt.Iterations != 1 {
		t.Fatalf("lpt entry: %+v", lpt)
	}
	if lpt.Metrics["ns/op"] != 41022518 || lpt.Metrics["proj-speedup"] != 3.48 || lpt.Metrics["pool-reused"] != 4 {
		t.Fatalf("lpt metrics: %+v", lpt.Metrics)
	}
	// Lines without allocation or wire metrics leave the lifted fields zero
	// (omitted from the JSON).
	if lpt.AllocsPerOp != 0 || lpt.WireBytesPerOp != 0 {
		t.Fatalf("lpt lifted fields should be zero: %+v", lpt)
	}
	step := rep.Benchmarks[2]
	if step.Iterations != 150000 || step.Metrics["ns/op"] != 8012 {
		t.Fatalf("step entry: %+v", step)
	}
	clu := rep.Benchmarks[3]
	if clu.Name != "BenchmarkClusterOverhead/cluster-1worker-8" {
		t.Fatalf("cluster entry: %+v", clu)
	}
	if clu.AllocsPerOp != 61230 || clu.BytesPerOp != 4211044 || clu.WireBytesPerOp != 104857 {
		t.Fatalf("cluster lifted fields: %+v", clu)
	}
	if clu.Metrics["cluster-shards"] != 8 || clu.Metrics["wire-bytes/op"] != 104857 {
		t.Fatalf("cluster metrics: %+v", clu.Metrics)
	}
}

// TestParsePromAndFold: a Prometheus text scrape parses into the report's
// metrics map — scalar samples kept, comments and bucket lines skipped.
func TestParsePromAndFold(t *testing.T) {
	prom := `# HELP graphsurge_runs_started_total Counter of runs started.
# TYPE graphsurge_runs_started_total counter
graphsurge_runs_started_total 7
graphsurge_runs_inflight 0
# TYPE graphsurge_segment_setup_seconds histogram
graphsurge_segment_setup_seconds_bucket{le="0.0001"} 2
graphsurge_segment_setup_seconds_bucket{le="+Inf"} 12
graphsurge_segment_setup_seconds_sum 0.0421
graphsurge_segment_setup_seconds_count 12
`
	m, err := parseProm(strings.NewReader(prom))
	if err != nil {
		t.Fatal(err)
	}
	if m["graphsurge_runs_started_total"] != 7 || m["graphsurge_segment_setup_seconds_count"] != 12 {
		t.Fatalf("parsed metrics: %+v", m)
	}
	if _, ok := m[`graphsurge_segment_setup_seconds_bucket{le="+Inf"}`]; ok {
		t.Fatal("bucket sample leaked into the flat map")
	}

	var out bytes.Buffer
	if err := convert(strings.NewReader(sample), &out, m); err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Metrics["graphsurge_runs_started_total"] != 7 {
		t.Fatalf("report metrics: %+v", rep.Metrics)
	}
}

func TestConvertIgnoresNoise(t *testing.T) {
	var out bytes.Buffer
	noise := "Benchmark\nBenchmarkX not-a-number ns/op\n--- FAIL: TestFoo\n"
	if err := convert(strings.NewReader(noise), &out, nil); err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 0 {
		t.Fatalf("noise parsed as benchmarks: %+v", rep.Benchmarks)
	}
}
