// Command benchjson converts `go test -bench` output on stdin into a
// machine-readable JSON document on stdout, so CI can archive benchmark
// results (BENCH.json) as an artifact and build a performance trajectory
// across commits instead of scraping logs.
//
// Usage:
//
//	go test -bench=. -benchtime=1x -run='^$' . | go run ./cmd/benchjson > BENCH.json
//
// Every benchmark line — name, iteration count, and each "value unit" pair
// (ns/op, B/op, and custom b.ReportMetric units like proj-speedup or
// pool-built) — becomes one entry; non-benchmark lines are ignored. The
// allocation counters (allocs/op, B/op) and the cluster benchmarks'
// wire-bytes/op metric are additionally lifted to stable top-level fields
// for trajectory tooling.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	// Name is the full benchmark name including sub-benchmark path and the
	// GOMAXPROCS suffix, e.g. "BenchmarkLPTSkew/policy=lpt-8".
	Name string `json:"name"`
	// Iterations is b.N for the reported run.
	Iterations int64 `json:"iterations"`
	// Metrics maps unit → value for every "value unit" pair on the line:
	// the standard ns/op plus any custom b.ReportMetric units.
	Metrics map[string]float64 `json:"metrics"`
	// AllocsPerOp lifts Metrics["allocs/op"] (from b.ReportAllocs runs) to a
	// stable top-level field, so trajectory tooling tracking allocation
	// regressions does not have to know the Go unit string. Omitted when the
	// benchmark did not report allocations.
	AllocsPerOp float64 `json:"allocsPerOp,omitempty"`
	// BytesPerOp lifts Metrics["B/op"], the heap bytes companion.
	BytesPerOp float64 `json:"bytesPerOp,omitempty"`
	// WireBytesPerOp lifts Metrics["wire-bytes/op"]: the encoded shard
	// payload bytes shipped to cluster workers per run, reported by
	// BenchmarkClusterOverhead under the columnar edge-batch codec.
	WireBytesPerOp float64 `json:"wireBytesPerOp,omitempty"`
}

// Report is the top-level BENCH.json document.
type Report struct {
	Benchmarks []Benchmark `json:"benchmarks"`
}

// parseLine parses one `go test -bench` output line, reporting ok=false for
// lines that are not benchmark results (headers, PASS, ok, log output).
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: fields[0], Iterations: iters, Metrics: make(map[string]float64)}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[fields[i+1]] = v
	}
	b.AllocsPerOp = b.Metrics["allocs/op"]
	b.BytesPerOp = b.Metrics["B/op"]
	b.WireBytesPerOp = b.Metrics["wire-bytes/op"]
	return b, true
}

// convert reads bench output from r and writes the JSON report to w.
func convert(r io.Reader, w io.Writer) error {
	rep := Report{Benchmarks: []Benchmark{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		if b, ok := parseLine(sc.Text()); ok {
			rep.Benchmarks = append(rep.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

func main() {
	if err := convert(os.Stdin, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}
