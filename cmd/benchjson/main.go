// Command benchjson converts `go test -bench` output on stdin into a
// machine-readable JSON document on stdout, so CI can archive benchmark
// results (BENCH.json) as an artifact and build a performance trajectory
// across commits instead of scraping logs.
//
// Usage:
//
//	go test -bench=. -benchtime=1x -run='^$' . | go run ./cmd/benchjson > BENCH.json
//
// Every benchmark line — name, iteration count, and each "value unit" pair
// (ns/op, B/op, and custom b.ReportMetric units like proj-speedup or
// pool-built) — becomes one entry; non-benchmark lines are ignored. The
// allocation counters (allocs/op, B/op) and the cluster benchmarks'
// wire-bytes/op metric are additionally lifted to stable top-level fields
// for trajectory tooling.
//
// -metrics FILE additionally folds a Prometheus text scrape (a saved
// `curl /metrics` body — see internal/obs) into the report's top-level
// "metrics" map: counters and gauges by name, histograms as NAME_count and
// NAME_sum. CI's metrics-smoke scrapes the serve process after its runs and
// archives the snapshot alongside the benchmarks.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	// Name is the full benchmark name including sub-benchmark path and the
	// GOMAXPROCS suffix, e.g. "BenchmarkLPTSkew/policy=lpt-8".
	Name string `json:"name"`
	// Iterations is b.N for the reported run.
	Iterations int64 `json:"iterations"`
	// Metrics maps unit → value for every "value unit" pair on the line:
	// the standard ns/op plus any custom b.ReportMetric units.
	Metrics map[string]float64 `json:"metrics"`
	// AllocsPerOp lifts Metrics["allocs/op"] (from b.ReportAllocs runs) to a
	// stable top-level field, so trajectory tooling tracking allocation
	// regressions does not have to know the Go unit string. Omitted when the
	// benchmark did not report allocations.
	AllocsPerOp float64 `json:"allocsPerOp,omitempty"`
	// BytesPerOp lifts Metrics["B/op"], the heap bytes companion.
	BytesPerOp float64 `json:"bytesPerOp,omitempty"`
	// WireBytesPerOp lifts Metrics["wire-bytes/op"]: the encoded shard
	// payload bytes shipped to cluster workers per run, reported by
	// BenchmarkClusterOverhead under the columnar edge-batch codec.
	WireBytesPerOp float64 `json:"wireBytesPerOp,omitempty"`
}

// Report is the top-level BENCH.json document.
type Report struct {
	Benchmarks []Benchmark `json:"benchmarks"`
	// Metrics is a flat snapshot parsed from a Prometheus text scrape
	// (-metrics FILE): counter and gauge samples by series name, histograms
	// as their _count and _sum samples (per-bucket lines are skipped — the
	// trajectory cares about totals, not shape). Absent without -metrics.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// parseProm parses Prometheus text exposition into a name → value map,
// keeping scalar samples (counters, gauges, histogram _count/_sum) and
// skipping comments and bucket lines.
func parseProm(r io.Reader) (map[string]float64, error) {
	out := make(map[string]float64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, value, ok := strings.Cut(line, " ")
		if !ok || strings.Contains(name, "{") {
			continue // labeled samples (histogram buckets) are shape, not totals
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(value), 64)
		if err != nil {
			return nil, fmt.Errorf("benchjson: bad metric sample %q: %v", line, err)
		}
		out[name] = v
	}
	return out, sc.Err()
}

// parseLine parses one `go test -bench` output line, reporting ok=false for
// lines that are not benchmark results (headers, PASS, ok, log output).
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: fields[0], Iterations: iters, Metrics: make(map[string]float64)}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[fields[i+1]] = v
	}
	b.AllocsPerOp = b.Metrics["allocs/op"]
	b.BytesPerOp = b.Metrics["B/op"]
	b.WireBytesPerOp = b.Metrics["wire-bytes/op"]
	return b, true
}

// convert reads bench output from r and writes the JSON report to w,
// folding in the metrics snapshot when one was provided.
func convert(r io.Reader, w io.Writer, metrics map[string]float64) error {
	rep := Report{Benchmarks: []Benchmark{}, Metrics: metrics}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		if b, ok := parseLine(sc.Text()); ok {
			rep.Benchmarks = append(rep.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

func main() {
	metricsPath := flag.String("metrics", "", "Prometheus text scrape to fold into the report's metrics map")
	flag.Parse()
	var metrics map[string]float64
	if *metricsPath != "" {
		f, err := os.Open(*metricsPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
		metrics, err = parseProm(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			os.Exit(1)
		}
	}
	if err := convert(os.Stdin, os.Stdout, metrics); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}
