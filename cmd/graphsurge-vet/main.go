// Command graphsurge-vet is the repo's invariant lint suite, packaged as a
// `go vet -vettool` multichecker:
//
//	go build -o bin/graphsurge-vet ./cmd/graphsurge-vet
//	go vet -vettool=bin/graphsurge-vet ./...
//
// It runs the analyzers registered in internal/lint (poolrelease, ctxflow,
// wiretypes, lockhold) over every package go vet lists, honoring
// //lint:ignore <analyzer> <reason> suppressions. CI runs it as a required
// job; see DESIGN.md "Enforced invariants".
package main

import (
	"graphsurge/internal/lint"
	"graphsurge/internal/lint/unitchecker"
)

func main() {
	unitchecker.Main(lint.Analyzers...)
}
