package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestVetCatchesSeededRegressions is the lint suite's own regression test:
// it copies the repository source to a scratch directory, re-introduces
// historical bug shapes — a context.TODO() severing the worker's cancellation
// chain, a dropped Pool.Release, and a shard-span End demoted to the happy
// path only — and asserts
// that a graphsurge-vet run
// over the mutated packages fails naming the right analyzer. A clean copy
// must vet clean first, so the test also pins that the tool has no spurious
// findings on the shipped tree.
func TestVetCatchesSeededRegressions(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and vets a scratch copy of the repository")
	}
	goTool, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go toolchain not on PATH")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	scratch := t.TempDir()
	copyTree(t, root, scratch)

	tool := filepath.Join(t.TempDir(), "graphsurge-vet")
	if out, err := run(scratch, goTool, "build", "-o", tool, "./cmd/graphsurge-vet"); err != nil {
		t.Fatalf("building graphsurge-vet: %v\n%s", err, out)
	}
	vet := func(pkg string) (string, error) {
		return run(scratch, goTool, "vet", "-vettool="+tool, pkg)
	}

	// The unmutated copy must be clean — a finding here is either a rot in
	// the tree or a false positive in an analyzer, and both would make the
	// seeded assertions below meaningless.
	for _, pkg := range []string{"./internal/cluster/", "./internal/analytics/"} {
		if out, err := vet(pkg); err != nil {
			t.Fatalf("clean copy flagged in %s: %v\n%s", pkg, err, out)
		}
	}

	seeds := []struct {
		name     string // analyzer expected to fire
		file     string // file to mutate, relative to the repo root
		pkg      string // package to vet after mutating
		anchor   string // unique source text the mutation replaces
		mutation string
	}{
		{
			name:     "ctxflow",
			file:     filepath.Join("internal", "cluster", "worker.go"),
			pkg:      "./internal/cluster/",
			anchor:   "ctx := s.ctx",
			mutation: "ctx := context.TODO()",
		},
		{
			name:     "poolrelease",
			file:     filepath.Join("internal", "analytics", "pool_test.go"),
			pkg:      "./internal/analytics/",
			anchor:   "\tp.Release(r1)\n",
			mutation: "",
		},
		{
			name:     "spanend",
			file:     filepath.Join("internal", "cluster", "coordinator.go"),
			pkg:      "./internal/cluster/",
			anchor:   "\t\t\t\tspan.End()\n",
			mutation: "\t\t\t\tif err == nil {\n\t\t\t\t\tspan.End()\n\t\t\t\t}\n",
		},
	}
	for _, seed := range seeds {
		t.Run(seed.name, func(t *testing.T) {
			path := filepath.Join(scratch, seed.file)
			orig, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			src := string(orig)
			if !strings.Contains(src, seed.anchor) {
				t.Fatalf("seed anchor %q no longer in %s — update the regression seed", seed.anchor, seed.file)
			}
			mutated := strings.Replace(src, seed.anchor, seed.mutation, 1)
			if err := os.WriteFile(path, []byte(mutated), 0o644); err != nil {
				t.Fatal(err)
			}
			defer func() {
				if err := os.WriteFile(path, orig, 0o644); err != nil {
					t.Fatal(err)
				}
			}()
			out, err := vet(seed.pkg)
			if err == nil {
				t.Fatalf("vet passed the seeded %s regression in %s", seed.name, seed.file)
			}
			if !strings.Contains(out, "("+seed.name+")") {
				t.Fatalf("vet failed but not via %s:\n%s", seed.name, out)
			}
			if !strings.Contains(out, filepath.Base(seed.file)) {
				t.Fatalf("diagnostic does not point at %s:\n%s", seed.file, out)
			}
		})
	}
}

// run executes a command in dir, returning its combined output.
func run(dir, name string, args ...string) (string, error) {
	cmd := exec.Command(name, args...)
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	return string(out), err
}

// copyTree copies the repository's source files into dst, skipping VCS
// metadata and build output — enough of the tree to `go build` and `go vet`
// any package in the module.
func copyTree(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.WalkDir(src, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		if d.IsDir() {
			if d.Name() == ".git" || d.Name() == "bin" {
				return filepath.SkipDir
			}
			if rel == "." {
				return nil
			}
			return os.MkdirAll(filepath.Join(dst, rel), 0o755)
		}
		if !d.Type().IsRegular() {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(filepath.Join(dst, rel), data, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
}
