// Command experiments regenerates the tables and figures of the Graphsurge
// paper's evaluation (§7) on the synthetic stand-in datasets. Each
// sub-command reproduces one table or figure; "all" runs everything in
// order.
//
// Usage:
//
//	experiments [-scale f] [-workers n] <table2|fig6|fig7|table3|table4|fig8|fig9|fig10|all>
//
// Scale 1.0 (the default) targets minutes per experiment on one laptop
// core; larger scales sharpen the shapes at the cost of runtime.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"graphsurge/internal/experiments"
)

func main() {
	scale := flag.Float64("scale", 1.0, "dataset scale factor")
	workers := flag.Int("workers", 1, "dataflow workers per run")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: experiments [-scale f] [-workers n] <experiment>\n")
		fmt.Fprintf(os.Stderr, "experiments: table2 fig6 fig7 table3 table4 fig8 fig9 fig10 all\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}

	cfg := experiments.Config{Scale: *scale, Workers: *workers, Out: os.Stdout}
	runners := map[string]func(experiments.Config) error{
		"table2": wrap(experiments.Table2),
		"fig6":   wrap(experiments.Fig6),
		"fig7":   wrap(experiments.Fig7),
		"table3": wrap(experiments.Table3),
		"table4": wrap(experiments.Table4),
		"fig8":   wrap(experiments.Fig8),
		"fig9":   wrap(experiments.Fig9),
		"fig10":  wrap(experiments.Fig10),
	}
	name := flag.Arg(0)
	if name == "all" {
		for _, n := range []string{"table2", "fig6", "fig7", "table3", "table4", "fig8", "fig9", "fig10"} {
			if err := run(n, runners[n], cfg); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", n, err)
				os.Exit(1)
			}
		}
		return
	}
	r, ok := runners[name]
	if !ok {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(name, r, cfg); err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}
}

func run(name string, f func(experiments.Config) error, cfg experiments.Config) error {
	start := time.Now()
	if err := f(cfg); err != nil {
		return err
	}
	fmt.Printf("[%s completed in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	return nil
}

// wrap adapts the typed experiment functions to a common signature.
func wrap[T any](f func(experiments.Config) ([]T, error)) func(experiments.Config) error {
	return func(cfg experiments.Config) error {
		_, err := f(cfg)
		return err
	}
}
