package main

import (
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"graphsurge/internal/analytics"
	"graphsurge/internal/cluster"
	"graphsurge/internal/core"
)

func TestAlgorithmSelection(t *testing.T) {
	for _, name := range []string{"wcc", "bfs", "sssp", "bellman-ford", "pagerank", "pr", "scc", "degree"} {
		comp, err := algorithm(name, 3)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if comp.Name() == "" {
			t.Fatalf("%s: empty name", name)
		}
	}
	if _, err := algorithm("nope", 0); err == nil {
		t.Fatal("expected error for unknown algorithm")
	}
	comp, _ := algorithm("bfs", 42)
	if comp.(analytics.BFS).Source != 42 {
		t.Fatal("source not threaded through")
	}
}

func TestCommandsEndToEnd(t *testing.T) {
	dir := t.TempDir()
	data := filepath.Join(dir, "data")
	nodes := filepath.Join(dir, "nodes.csv")
	edges := filepath.Join(dir, "edges.csv")
	if err := os.WriteFile(nodes, []byte("id,kind:string\na,x\nb,x\nc,y\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(edges, []byte("src,dst,w:int\na,b,1\nb,c,2\nc,a,3\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	if err := cmdLoad([]string{"-name", "g", "-nodes", nodes, "-edges", edges, "-data", data}); err != nil {
		t.Fatal(err)
	}
	if err := cmdQuery([]string{"-data", data, "create view v on g edges where w > 1"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdRun([]string{
		"-data", data,
		"-gvdl", "create view collection c on g [a: w >= 1], [b: w >= 2]",
		"-collection", "c",
		"-algorithm", "wcc",
		"-mode", "diff",
	}); err != nil {
		t.Fatal(err)
	}
	// Parallel segment dispatch with per-segment timing output.
	if err := cmdRun([]string{
		"-data", data,
		"-collection", "c",
		"-algorithm", "wcc",
		"-mode", "scratch",
		"-parallel", "2",
	}); err != nil {
		t.Fatal(err)
	}
	// Cost-model scheduling and speculation flags.
	if err := cmdRun([]string{
		"-data", data,
		"-collection", "c",
		"-algorithm", "wcc",
		"-mode", "scratch",
		"-parallel", "2",
		"-schedule", "lpt",
	}); err != nil {
		t.Fatal(err)
	}
	if err := cmdRun([]string{
		"-data", data,
		"-collection", "c",
		"-algorithm", "wcc",
		"-mode", "adaptive",
		"-parallel", "2",
		"-speculate",
	}); err != nil {
		t.Fatal(err)
	}
	if err := cmdRun([]string{"-data", data, "-collection", "c", "-schedule", "bogus"}); err == nil {
		t.Fatal("expected error for bad schedule policy")
	}
	// A traversal view name is rejected, not read from outside the data dir.
	if err := cmdRun([]string{"-data", data, "-view", "../escape", "-algorithm", "wcc"}); err == nil {
		t.Fatal("expected error for traversal view name")
	}
	// Individual view runs.
	if err := cmdRun([]string{
		"-data", data,
		"-gvdl", "create view heavy on g edges where w >= 2",
		"-view", "heavy",
		"-algorithm", "degree",
	}); err != nil {
		t.Fatal(err)
	}
	if err := cmdRun([]string{"-data", data, "-view", "nope", "-algorithm", "wcc"}); err == nil {
		t.Fatal("expected error for unknown view")
	}
	// Error paths.
	if err := cmdLoad([]string{"-edges", edges}); err == nil {
		t.Fatal("expected error for missing -name")
	}
	if err := cmdRun([]string{"-data", data}); err == nil {
		t.Fatal("expected error for missing -collection")
	}
	if err := cmdRun([]string{"-data", data, "-collection", "c", "-mode", "bogus"}); err == nil {
		t.Fatal("expected error for bad mode")
	}
	if err := cmdRun([]string{"-data", data, "-collection", "c", "-algorithm", "bogus"}); err == nil {
		t.Fatal("expected error for bad algorithm")
	}
	if err := cmdQuery([]string{"-data", data}); err == nil {
		t.Fatal("expected error for missing statements")
	}
}

// TestClusterRunEndToEnd drives the -cluster flag against two in-process
// worker servers: load, materialize, then shard a scratch run across the
// workers and check it against the same run executed locally.
func TestClusterRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	data := filepath.Join(dir, "data")
	edges := filepath.Join(dir, "edges.csv")
	if err := os.WriteFile(edges, []byte("src,dst,w:int\na,b,1\nb,c,2\nc,a,3\nc,d,1\nd,a,2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := cmdLoad([]string{"-name", "g", "-edges", edges, "-data", data}); err != nil {
		t.Fatal(err)
	}
	if err := cmdQuery([]string{"-data", data,
		"create view collection cc on g [a: w >= 1], [b: w >= 2], [c: w >= 3], [d: w >= 1]"}); err != nil {
		t.Fatal(err)
	}

	var addrs []string
	for i := 0; i < 2; i++ {
		eng, err := core.NewEngine(core.Options{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		srv := cluster.NewServer(eng, 1)
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		srv.Start(l)
		t.Cleanup(func() { srv.Close() })
		addrs = append(addrs, l.Addr().String())
	}

	if err := cmdRun([]string{
		"-data", data,
		"-collection", "cc",
		"-algorithm", "wcc",
		"-mode", "scratch",
		"-cluster", strings.Join(addrs, ","),
	}); err != nil {
		t.Fatal(err)
	}
	// A bad worker address fails registration rather than running silently
	// degraded.
	if err := cmdRun([]string{
		"-data", data, "-collection", "cc", "-algorithm", "wcc",
		"-mode", "scratch", "-cluster", "127.0.0.1:1",
	}); err == nil {
		t.Fatal("expected error for unreachable worker")
	}
}
