// Command graphsurge is the Graphsurge CLI: load property graphs from CSV,
// execute GVDL statements to create views, view collections and aggregate
// views, and run analytics computations over them with the diff-only,
// scratch or adaptive execution strategies.
//
// Usage:
//
//	graphsurge load -name Calls -nodes nodes.csv -edges edges.csv [-data dir]
//	graphsurge query -data dir 'create view ... / create view collection ...'
//	graphsurge run -data dir -collection NAME -algorithm wcc [-mode adaptive]
//	graphsurge worker -listen :7077
//	graphsurge serve -listen :7080 -data dir
//
// The -data directory persists loaded graphs AND materialized views between
// invocations (the paper's Graph Store and View Store): a collection defined
// by `query` can be run later by `run -collection`.
//
// `worker` starts a cluster worker; `run -cluster host:port,...` shards a
// static-plan collection run across those workers and merges the results
// (see internal/cluster).
//
// `serve` exposes the same operations as HTTP+JSON (see internal/server):
// every subcommand here and every HTTP request goes through the one typed
// core.Session API, so the two front-ends cannot drift apart.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"time"

	"graphsurge/internal/analytics"
	"graphsurge/internal/cluster"
	"graphsurge/internal/core"
	"graphsurge/internal/datagen"
	"graphsurge/internal/obs"
	"graphsurge/internal/schedule"
	"graphsurge/internal/server"
	"graphsurge/internal/tenant"
	"graphsurge/internal/view"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "load":
		err = cmdLoad(os.Args[2:])
	case "query":
		err = cmdQuery(os.Args[2:])
	case "run":
		err = cmdRun(os.Args[2:])
	case "mutate":
		err = cmdMutate(os.Args[2:])
	case "gen":
		err = cmdGen(os.Args[2:])
	case "worker":
		err = cmdWorker(os.Args[2:])
	case "serve":
		err = cmdServe(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "graphsurge: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  graphsurge load  -name NAME -edges FILE [-nodes FILE] [-data DIR]
  graphsurge query -data DIR [-ordering optimize] 'GVDL statements...'
  graphsurge run   -data DIR (-collection NAME | -view NAME) -algorithm ALG [-gvdl STMTS]
                   [-mode diff|scratch|adaptive] [-workers N] [-parallel N] [-weight PROP]
                   [-schedule fifo|lpt] [-speculate] [-incremental] [-source ID] [-ordering optimize]
                   [-cluster HOST:PORT,...] [-trace] [-progress]
                   [-profile cpu|heap] [-profile-out FILE]
  graphsurge mutate -data DIR -graph NAME -json FILE
  graphsurge gen    -out DIR [-nodes N] [-edges M] [-days D] [-seed S]
                    [-split-day K] [-name NAME]
  graphsurge worker -listen ADDR [-workers N] [-parallel N]
                    [-http ADDR] [-log-level LEVEL]
  graphsurge serve  -listen ADDR [-data DIR] [-workers N] [-parallel N]
                    [-ordering optimize] [-cluster HOST:PORT,...]
                    [-log-level LEVEL] [-pprof]
algorithms: wcc, bfs, sssp, pagerank, scc, degree
-parallel runs up to N independent collection segments concurrently, each on
its own dataflow replica (scratch mode: every view; adaptive mode: as the
optimizer declares split points); 0 uses the engine default of 1. Results
are identical at any setting. Replicas are pooled per (algorithm, workers)
and recycled via in-place reset, so repeated runs skip dataflow
construction; per-segment replica setup and drain times are printed
alongside the per-view lines, followed by per-pool replica statistics.
-schedule lpt dispatches a static plan's segments longest-predicted-first
(the cost-model scheduler; fifo keeps collection order). -speculate lets an
adaptive run seed the predicted next split point's segment on an idle
replica ahead of the decision, committing on a hit and discarding on a
miss; hit/miss counts are printed. Neither flag changes results.
-cluster shards a static-plan run (diff or scratch) across the listed
worker processes: segments are assigned by cost-model LPT, shipped as
self-contained shards, and merged in collection order — results are
identical to a local run. A worker that dies mid-run has its shards
re-queued on this process, so the run completes regardless; dead workers
are redialed at the start of each later run. Adaptive runs plan online and
always execute locally. Start workers with "graphsurge worker -listen
:PORT"; workers hold no data (shards carry their own edges), -workers sets
each replica's dataflow parallelism and -parallel how many shards the
worker runs concurrently.
mutate applies one transactional edge insert/delete batch (a JSON
MutateRequest; "-" reads stdin) to a base graph and incrementally maintains
every materialized view, collection and aggregate view over it. The GVDL
form ("apply insert 2->0 [p = v] delete 0->1 to G") does the same through
query. run -incremental re-runs a computation on a warm incremental
replica: the first run absorbs the whole collection, later runs execute
only the mutation deltas applied since (the summary line says
"incremental").
gen writes a datagen.Temporal graph as CSV plus a JSONL stream of mutation
envelopes (one per day from -split-day on), the replay input for dynamic
workloads: load the CSVs, then POST each line to serve /v1/do.
serve exposes the same operations over HTTP: POST /v1/do accepts a JSON
request ({"statements":...}, {"run":...}, {"runView":...}, {"load":...},
{"mutate":...}, {"poolStats":{}}); run responses stream as NDJSON — segment events as they
finish, then the summary and one result record per vertex. Disconnecting
mid-run cancels it (segment dispatch stops, replicas return to their
pools), locally and with -cluster. Interrupting a run (Ctrl-C) cancels the
same way.
Observability: every run is traced (plan, segment, shard and worker spans
under one run span — cluster workers stitch their spans into the
coordinator's trace). run -trace prints the span tree; -progress streams a
line per finished segment; -profile cpu|heap writes a pprof profile of the
run. serve exposes Prometheus metrics at GET /metrics and finished-run
traces at GET /v1/traces/RUNID (NDJSON; run IDs appear in run summaries);
-pprof mounts /debug/pprof/. worker -http ADDR serves the same /metrics and
pprof for the worker process. -log-level enables structured logs on stderr
for serve (request/run events) and worker (shard events).`)
}

func cmdLoad(args []string) error {
	fs := flag.NewFlagSet("load", flag.ExitOnError)
	name := fs.String("name", "", "graph name")
	nodes := fs.String("nodes", "", "node CSV file (optional)")
	edges := fs.String("edges", "", "edge CSV file")
	data := fs.String("data", "graphsurge-data", "data directory")
	fs.Parse(args)
	if *name == "" || *edges == "" {
		return fmt.Errorf("load: -name and -edges are required")
	}
	e, err := core.NewEngine(core.Options{DataDir: *data})
	if err != nil {
		return err
	}
	// No runCtx here: a CSV import has no cancellation points, so capturing
	// SIGINT would only swallow the first Ctrl-C.
	resp, err := e.NewSession().Do(context.Background(), &core.LoadGraphRequest{
		Name: *name, NodesPath: *nodes, EdgesPath: *edges,
	})
	if err != nil {
		return err
	}
	g := resp.(*core.GraphLoaded)
	fmt.Printf("loaded %s: %d nodes, %d edges\n", g.Name, g.Nodes, g.Edges)
	return nil
}

func engineFor(data string, ordering string, workers, parallel int) (*core.Engine, error) {
	mode := view.OrderAsWritten
	if ordering == "optimize" {
		mode = view.OrderOptimized
	}
	return core.NewEngine(core.Options{DataDir: data, Workers: workers, Parallelism: parallel, Ordering: mode})
}

// runCtx is the CLI's request context: canceled on Ctrl-C, so an
// interrupted run stops segment dispatch and returns its replicas instead
// of being killed mid-step. Signal capture ends with the first interrupt —
// cancellation lands at view boundaries, so a second Ctrl-C during a long
// fixpoint must fall through to the default exit instead of being
// swallowed.
func runCtx() context.Context {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	go func() {
		<-ctx.Done()
		stop()
	}()
	return ctx
}

func cmdQuery(args []string) error {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	data := fs.String("data", "graphsurge-data", "data directory")
	ordering := fs.String("ordering", "", `"optimize" to run the collection ordering optimizer`)
	workers := fs.Int("workers", 1, "dataflow workers")
	fs.Parse(args)
	if fs.NArg() < 1 {
		return fmt.Errorf("query: GVDL statements required")
	}
	e, err := engineFor(*data, *ordering, *workers, 0)
	if err != nil {
		return err
	}
	// Statements only honor cancellation between statements; a single
	// materialization is uninterruptible, so query keeps the default SIGINT
	// exit rather than capturing it.
	resp, err := e.NewSession().Do(context.Background(), &core.StatementsRequest{Src: strings.Join(fs.Args(), " ")})
	if sr, ok := resp.(*core.StatementsResponse); ok {
		// Statements that completed before an error still materialized;
		// report them either way, exactly as Engine.Execute always has.
		for _, res := range sr.Results {
			fmt.Println(res.String())
		}
	}
	return err
}

// coordinatorFor registers the comma-separated -cluster worker addresses on
// a fresh coordinator over the given engine — shared by `run -cluster` and
// `serve -cluster` so the two front-ends register workers identically. A
// worker that cannot be reached fails registration rather than running
// silently degraded; the caller owns Close. ctx bounds the registration
// dials, so Ctrl-C during startup aborts instead of waiting out each dial.
func coordinatorFor(ctx context.Context, e *core.Engine, addrs string, log *slog.Logger) (*cluster.Coordinator, error) {
	coord := cluster.NewCoordinator(e, cluster.Options{Logger: log})
	for _, addr := range strings.Split(addrs, ",") {
		if addr = strings.TrimSpace(addr); addr == "" {
			continue
		}
		if err := coord.AddWorker(ctx, addr); err != nil {
			coord.Close()
			return nil, err
		}
	}
	return coord, nil
}

// algorithm resolves the -algorithm flag through the analytics spec
// registry — the same registry cluster workers resolve shipped computations
// with, so the CLI and the wire agree on the algorithm set by construction.
// mpsp is registry-only: the CLI has no flag for its pair list, and
// resolving it with zero pairs would silently compute nothing.
func algorithm(name string, source uint64) (analytics.Computation, error) {
	if name == "mpsp" {
		return nil, fmt.Errorf("algorithm mpsp needs a pair list and is only available to embedding callers")
	}
	return analytics.Spec{Algorithm: name, Source: source}.Resolve()
}

// cmdMutate applies one transactional mutation batch from a JSON file (or
// stdin with "-") through the same typed MutateRequest the HTTP server
// accepts. The batch commits in the graph store's journal and every
// materialized artifact over the graph is incrementally maintained before
// the summary line prints.
func cmdMutate(args []string) error {
	fs := flag.NewFlagSet("mutate", flag.ExitOnError)
	data := fs.String("data", "graphsurge-data", "data directory")
	graphName := fs.String("graph", "", "base graph to mutate (overrides the request's graph field)")
	jsonPath := fs.String("json", "", `MutateRequest JSON file ("-" reads stdin)`)
	fs.Parse(args)
	if *jsonPath == "" {
		return fmt.Errorf("mutate: -json is required")
	}
	var r io.Reader = os.Stdin
	if *jsonPath != "-" {
		f, err := os.Open(*jsonPath)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	var req core.MutateRequest
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return fmt.Errorf("mutate: decoding request: %w", err)
	}
	if *graphName != "" {
		req.Graph = *graphName
	}
	e, err := core.NewEngine(core.Options{DataDir: *data})
	if err != nil {
		return err
	}
	resp, err := e.NewSession().Do(context.Background(), &req)
	if err != nil {
		return err
	}
	core.WriteMutation(os.Stdout, resp.(*core.MutationApplied))
	return nil
}

// cmdGen writes a datagen.Temporal graph as replayable dynamic-workload
// inputs: a node CSV (dense numeric IDs in order, so internal IDs equal the
// file's), an edge CSV holding the days before -split-day, and a JSONL file
// with one {"mutate": ...} request envelope per remaining day — the inserts
// for that day as one transactional batch. The files drive the mutation
// replay smoke: load the CSVs, then POST each JSONL line to serve /v1/do.
func cmdGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	out := fs.String("out", "", "output directory")
	nodes := fs.Int("nodes", 200, "nodes")
	edges := fs.Int("edges", 2000, "edges")
	days := fs.Int("days", 10, "timestamp range (edge ts is 0..days-1)")
	seed := fs.Int64("seed", 1, "generator seed")
	splitDay := fs.Int("split-day", 0, "first day emitted as mutations (0 = last quarter of the range)")
	name := fs.String("name", "temporal", "graph name in the mutation envelopes")
	fs.Parse(args)
	if *out == "" {
		return fmt.Errorf("gen: -out is required")
	}
	if *splitDay <= 0 {
		*splitDay = *days - *days/4
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}
	g := datagen.Temporal(datagen.TemporalConfig{Nodes: *nodes, Edges: *edges, Days: *days, Seed: *seed})
	tsCol, _ := g.EdgeProps.ColumnIndex("ts")
	durCol, _ := g.EdgeProps.ColumnIndex("duration")
	ts := g.EdgeProps.Cols[tsCol].Ints
	dur := g.EdgeProps.Cols[durCol].Ints

	var nodesCSV strings.Builder
	nodesCSV.WriteString("id\n")
	for n := 0; n < g.NumNodes; n++ {
		fmt.Fprintf(&nodesCSV, "%d\n", n)
	}
	if err := os.WriteFile(filepath.Join(*out, "nodes.csv"), []byte(nodesCSV.String()), 0o644); err != nil {
		return err
	}

	var edgesCSV strings.Builder
	edgesCSV.WriteString("src,dst,ts:int,duration:int\n")
	base := 0
	byDay := make(map[int64][]core.EdgeChange)
	for i := range g.Srcs {
		if int(ts[i]) < *splitDay {
			fmt.Fprintf(&edgesCSV, "%d,%d,%d,%d\n", g.Srcs[i], g.Dsts[i], ts[i], dur[i])
			base++
			continue
		}
		byDay[ts[i]] = append(byDay[ts[i]], core.EdgeChange{
			Src: g.Srcs[i], Dst: g.Dsts[i],
			Props: map[string]any{"ts": ts[i], "duration": dur[i]},
		})
	}
	if err := os.WriteFile(filepath.Join(*out, "edges.csv"), []byte(edgesCSV.String()), 0o644); err != nil {
		return err
	}

	var jsonl strings.Builder
	batches := 0
	for day := int64(*splitDay); day < int64(*days); day++ {
		ins := byDay[day]
		if len(ins) == 0 {
			continue
		}
		env := map[string]any{"mutate": &core.MutateRequest{Graph: *name, Inserts: ins}}
		line, err := json.Marshal(env)
		if err != nil {
			return err
		}
		jsonl.Write(line)
		jsonl.WriteByte('\n')
		batches++
	}
	if err := os.WriteFile(filepath.Join(*out, "mutations.jsonl"), []byte(jsonl.String()), 0o644); err != nil {
		return err
	}
	fmt.Printf("gen %s: %d nodes, %d base edges (days 0..%d), %d mutation batches (days %d..%d)\n",
		*name, g.NumNodes, base, *splitDay-1, batches, *splitDay, *days-1)
	return nil
}

// cmdWorker runs a cluster worker: a thin RPC server around an engine whose
// warm runner pools are shared across shard jobs. Workers hold no graph or
// view data — every shard ships its own edges — so -data is optional and
// normally omitted.
func cmdWorker(args []string) error {
	fs := flag.NewFlagSet("worker", flag.ExitOnError)
	listen := fs.String("listen", ":7077", "address to serve on")
	workers := fs.Int("workers", 1, "dataflow workers per replica")
	parallel := fs.Int("parallel", 1, "shards run concurrently (advertised capacity)")
	data := fs.String("data", "", "data directory (optional; shards are self-contained)")
	httpAddr := fs.String("http", "", "address for the worker's HTTP observability listener (/metrics, /debug/pprof/); empty disables it")
	logLevel := fs.String("log-level", "", "structured log level on stderr: debug | info | warn | error; empty logs nothing")
	fs.Parse(args)
	e, err := core.NewEngine(core.Options{DataDir: *data, Workers: *workers, Parallelism: *parallel})
	if err != nil {
		return err
	}
	l, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	srv := cluster.NewServer(e, *parallel)
	if *logLevel != "" {
		level, err := obs.ParseLevel(*logLevel)
		if err != nil {
			return err
		}
		srv.SetLogger(obs.NewLogger(os.Stderr, level))
	}
	if *httpAddr != "" {
		hl, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			return err
		}
		mux := http.NewServeMux()
		mux.Handle("GET /metrics", obs.MetricsHandler())
		obs.RegisterPprof(mux)
		go http.Serve(hl, mux) //nolint:errcheck // dies with the process, like the RPC listener
		fmt.Printf("worker metrics on %s\n", hl.Addr())
	}
	// Printed once the listener is live, so scripts can wait on this line.
	fmt.Printf("worker listening on %s (capacity %d, workers %d)\n", l.Addr(), *parallel, *workers)
	srv.Serve(l) // serves until the process is killed
	return nil
}

// cmdServe runs the HTTP front-end: the typed Session API as JSON over
// POST /v1/do, run results streamed as NDJSON (see internal/server). With
// -cluster, collection runs shard across the listed workers exactly as
// `run -cluster` does — same Session, same coordinator.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	listen := fs.String("listen", ":7080", "address to serve HTTP on")
	data := fs.String("data", "graphsurge-data", "data directory")
	workers := fs.Int("workers", 1, "dataflow workers per replica")
	parallel := fs.Int("parallel", 1, "default run parallelism (engine default)")
	ordering := fs.String("ordering", "", `"optimize" to run the collection ordering optimizer`)
	clusterAddrs := fs.String("cluster", "", "comma-separated worker addresses to shard static-plan runs across")
	logLevel := fs.String("log-level", "", "structured log level on stderr: debug | info | warn | error; empty logs nothing")
	pprof := fs.Bool("pprof", false, "mount /debug/pprof/ on the HTTP listener")
	tenantConc := fs.Int("tenant-concurrency", 0, "executions a tenant may have in flight at once (0 = unlimited)")
	tenantQueue := fs.Int("tenant-queue", 16, "over-limit requests a tenant may queue for a slot before 503")
	tenantQueueTimeout := fs.Duration("tenant-queue-timeout", 5*time.Second, "longest a queued request waits for a slot before 429 (0 = wait until the client gives up)")
	tenantRate := fs.Float64("tenant-rate", 0, "requests per second each tenant's token bucket refills (0 = unlimited)")
	tenantBurst := fs.Float64("tenant-burst", 0, "token bucket capacity (0 = max(1, -tenant-rate))")
	cacheEntries := fs.Int("cache-entries", 256, "run results the serving cache retains (0 disables caching)")
	cacheReplicas := fs.Int("cache-replicas", 8, "warm suffix-replay replicas retained (0 disables replay)")
	fs.Parse(args)
	e, err := engineFor(*data, *ordering, *workers, *parallel)
	if err != nil {
		return err
	}
	defer e.Close()
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	opts := server.Options{EnablePprof: *pprof}
	opts.Tenant = tenant.New(e, tenant.Options{
		Limits: tenant.Limits{
			MaxConcurrent: *tenantConc,
			MaxQueue:      *tenantQueue,
			QueueTimeout:  *tenantQueueTimeout,
			RatePerSec:    *tenantRate,
			Burst:         *tenantBurst,
		},
		CacheEntries:  *cacheEntries,
		CacheReplicas: *cacheReplicas,
	})
	if *logLevel != "" {
		level, err := obs.ParseLevel(*logLevel)
		if err != nil {
			return err
		}
		opts.Logger = obs.NewLogger(os.Stderr, level)
	}
	if *clusterAddrs != "" {
		coord, err := coordinatorFor(ctx, e, *clusterAddrs, opts.Logger)
		if err != nil {
			return err
		}
		defer coord.Close()
		opts.Runner = coord
	}
	l, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	// Printed once the listener is live, so scripts can wait on this line.
	fmt.Printf("serving on %s (data %s)\n", l.Addr(), *data)
	hs := &http.Server{Handler: server.New(e, opts).Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(l) }()
	select {
	case <-ctx.Done():
		// Interrupt: sever connections so in-flight run contexts cancel and
		// their replicas return to the pools before the process exits.
		hs.Close()
		<-errCh
		return nil
	case err := <-errCh:
		return err
	}
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	data := fs.String("data", "graphsurge-data", "data directory")
	gvdlSrc := fs.String("gvdl", "", "GVDL statements to execute before running")
	collection := fs.String("collection", "", "view collection to run over")
	viewName := fs.String("view", "", "individual filtered view to run over (instead of -collection)")
	algName := fs.String("algorithm", "wcc", "analytics computation")
	modeName := fs.String("mode", "adaptive", "diff | scratch | adaptive")
	workers := fs.Int("workers", 0, "dataflow workers per replica (0 = this engine's default locally, each worker's own -workers on a cluster run)")
	parallel := fs.Int("parallel", 0, "independent collection segments executed concurrently (0 = engine default)")
	schedName := fs.String("schedule", "fifo", "static-plan segment dispatch order: fifo | lpt")
	speculate := fs.Bool("speculate", false, "adaptive mode: seed the predicted next split point's segment on an idle replica")
	incremental := fs.Bool("incremental", false, "run on the warm incremental replica (first run absorbs the collection; later runs execute only pending mutation deltas)")
	clusterAddrs := fs.String("cluster", "", "comma-separated worker addresses to shard a static-plan run across")
	weight := fs.String("weight", "", "integer edge property used as weight")
	source := fs.Uint64("source", 0, "source vertex for bfs/sssp")
	ordering := fs.String("ordering", "", `"optimize" to run the collection ordering optimizer`)
	top := fs.Int("top", 10, "print the top-N result vertices")
	trace := fs.Bool("trace", false, "print the run's span tree after the summary")
	progress := fs.Bool("progress", false, "stream segment completion lines as segments finish")
	profile := fs.String("profile", "", "write a pprof profile of the run: cpu | heap")
	profileOut := fs.String("profile-out", "", "profile output path (default graphsurge.<kind>.pprof)")
	fs.Parse(args)
	if *collection == "" && *viewName == "" {
		return fmt.Errorf("run: -collection or -view is required")
	}
	e, err := engineFor(*data, *ordering, *workers, *parallel)
	if err != nil {
		return err
	}
	ctx := runCtx()
	sess := e.NewSession()
	if *gvdlSrc != "" {
		if _, err := sess.Do(ctx, &core.StatementsRequest{Src: *gvdlSrc}); err != nil {
			return err
		}
	}
	comp, err := algorithm(*algName, *source)
	if err != nil {
		return err
	}
	if *viewName != "" {
		resp, err := sess.Do(ctx, &core.RunViewRequest{
			View:        *viewName,
			Computation: comp,
			Workers:     *workers,
			WeightProp:  *weight,
		})
		if err != nil {
			if errors.Is(err, core.ErrNotFound) {
				return fmt.Errorf("run: %w (define views with -gvdl or query)", err)
			}
			return err
		}
		vr := resp.(*core.ViewRunResult)
		core.WriteViewRun(os.Stdout, vr)
		core.WriteResults(os.Stdout, vr.Results, *top)
		return nil
	}
	// One mode vocabulary for the -mode flag and HTTP request bodies: both
	// parse through ExecMode.UnmarshalText.
	var mode core.ExecMode
	if err := mode.UnmarshalText([]byte(*modeName)); err != nil {
		return err
	}
	policy, err := schedule.ParsePolicy(*schedName)
	if err != nil {
		return err
	}
	req := &core.RunRequest{
		Collection:  *collection,
		Computation: comp,
		Options: core.RunOptions{
			Mode:        mode,
			Workers:     *workers,
			Parallelism: *parallel,
			WeightProp:  *weight,
			Schedule:    policy,
			Speculate:   *speculate,
			Incremental: *incremental,
		},
	}
	// All run output flows through one LockedWriter: each renderer issues its
	// block as a single Write, so -progress lines firing from concurrent
	// segment goroutines interleave with the summary only at block boundaries.
	out := core.NewLockedWriter(os.Stdout)
	if *progress {
		req.Options.OnSegment = func(st core.SegmentStats) { core.WriteSegmentProgress(out, st) }
	}
	var coord *cluster.Coordinator
	if *clusterAddrs != "" {
		if coord, err = coordinatorFor(ctx, e, *clusterAddrs, nil); err != nil {
			return err
		}
		defer coord.Close()
		req.Runner = coord
	}
	var prof *obs.Profile
	if *profile != "" {
		path := *profileOut
		if path == "" {
			path = "graphsurge." + *profile + ".pprof"
		}
		if prof, err = obs.StartProfile(*profile, path); err != nil {
			return err
		}
	}
	resp, err := sess.Do(ctx, req)
	if perr := prof.Stop(); perr != nil && err == nil {
		err = perr
	}
	if err != nil {
		return err
	}
	res := resp.(*core.RunResult)
	core.WriteRunSummary(out, res)
	if *speculate {
		core.WriteSpeculation(out, res)
	}
	if coord != nil {
		coord.WriteStats(out)
	}
	core.WritePoolStats(out, e.PoolStats())
	core.WriteResults(out, res.FinalResults(), *top)
	if *trace {
		if tr := e.Traces().Get(res.RunID); tr != nil {
			obs.WriteTree(out, tr.Records())
		}
	}
	return nil
}
