// Command graphsurge is the Graphsurge CLI: load property graphs from CSV,
// execute GVDL statements to create views, view collections and aggregate
// views, and run analytics computations over them with the diff-only,
// scratch or adaptive execution strategies.
//
// Usage:
//
//	graphsurge load -name Calls -nodes nodes.csv -edges edges.csv [-data dir]
//	graphsurge query -data dir 'create view ... / create view collection ...'
//	graphsurge run -data dir -collection NAME -algorithm wcc [-mode adaptive]
//	graphsurge worker -listen :7077
//
// The -data directory persists loaded graphs AND materialized views between
// invocations (the paper's Graph Store and View Store): a collection defined
// by `query` can be run later by `run -collection`.
//
// `worker` starts a cluster worker; `run -cluster host:port,...` shards a
// static-plan collection run across those workers and merges the results
// (see internal/cluster).
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"sort"
	"strings"

	"graphsurge/internal/analytics"
	"graphsurge/internal/cluster"
	"graphsurge/internal/core"
	"graphsurge/internal/schedule"
	"graphsurge/internal/view"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "load":
		err = cmdLoad(os.Args[2:])
	case "query":
		err = cmdQuery(os.Args[2:])
	case "run":
		err = cmdRun(os.Args[2:])
	case "worker":
		err = cmdWorker(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "graphsurge: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  graphsurge load  -name NAME -edges FILE [-nodes FILE] [-data DIR]
  graphsurge query -data DIR [-ordering optimize] 'GVDL statements...'
  graphsurge run   -data DIR (-collection NAME | -view NAME) -algorithm ALG [-gvdl STMTS]
                   [-mode diff|scratch|adaptive] [-workers N] [-parallel N] [-weight PROP]
                   [-schedule fifo|lpt] [-speculate] [-source ID] [-ordering optimize]
                   [-cluster HOST:PORT,...]
  graphsurge worker -listen ADDR [-workers N] [-parallel N]
algorithms: wcc, bfs, sssp, pagerank, scc, degree
-parallel runs up to N independent collection segments concurrently, each on
its own dataflow replica (scratch mode: every view; adaptive mode: as the
optimizer declares split points); 0 uses the engine default of 1. Results
are identical at any setting. Replicas are pooled per (algorithm, workers)
and recycled via in-place reset, so repeated runs skip dataflow
construction; per-segment replica setup and drain times are printed
alongside the per-view lines, followed by per-pool replica statistics.
-schedule lpt dispatches a static plan's segments longest-predicted-first
(the cost-model scheduler; fifo keeps collection order). -speculate lets an
adaptive run seed the predicted next split point's segment on an idle
replica ahead of the decision, committing on a hit and discarding on a
miss; hit/miss counts are printed. Neither flag changes results.
-cluster shards a static-plan run (diff or scratch) across the listed
worker processes: segments are assigned by cost-model LPT, shipped as
self-contained shards, and merged in collection order — results are
identical to a local run. A worker that dies mid-run has its shards
re-queued on this process, so the run completes regardless. Adaptive runs
plan online and always execute locally. Start workers with
"graphsurge worker -listen :PORT"; workers hold no data (shards carry
their own edges), -workers sets each replica's dataflow parallelism and
-parallel how many shards the worker runs concurrently.`)
}

func cmdLoad(args []string) error {
	fs := flag.NewFlagSet("load", flag.ExitOnError)
	name := fs.String("name", "", "graph name")
	nodes := fs.String("nodes", "", "node CSV file (optional)")
	edges := fs.String("edges", "", "edge CSV file")
	data := fs.String("data", "graphsurge-data", "data directory")
	fs.Parse(args)
	if *name == "" || *edges == "" {
		return fmt.Errorf("load: -name and -edges are required")
	}
	e, err := core.NewEngine(core.Options{DataDir: *data})
	if err != nil {
		return err
	}
	g, err := e.LoadGraphCSV(*name, *nodes, *edges)
	if err != nil {
		return err
	}
	fmt.Printf("loaded %s: %d nodes, %d edges\n", g.Name, g.NumNodes, g.NumEdges())
	return nil
}

func engineFor(data string, ordering string, workers, parallel int) (*core.Engine, error) {
	mode := view.OrderAsWritten
	if ordering == "optimize" {
		mode = view.OrderOptimized
	}
	return core.NewEngine(core.Options{DataDir: data, Workers: workers, Parallelism: parallel, Ordering: mode})
}

func cmdQuery(args []string) error {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	data := fs.String("data", "graphsurge-data", "data directory")
	ordering := fs.String("ordering", "", `"optimize" to run the collection ordering optimizer`)
	workers := fs.Int("workers", 1, "dataflow workers")
	fs.Parse(args)
	if fs.NArg() < 1 {
		return fmt.Errorf("query: GVDL statements required")
	}
	e, err := engineFor(*data, *ordering, *workers, 0)
	if err != nil {
		return err
	}
	out, err := e.Execute(strings.Join(fs.Args(), " "))
	for _, line := range out {
		fmt.Println(line)
	}
	return err
}

// algorithm resolves the -algorithm flag through the analytics spec
// registry — the same registry cluster workers resolve shipped computations
// with, so the CLI and the wire agree on the algorithm set by construction.
// mpsp is registry-only: the CLI has no flag for its pair list, and
// resolving it with zero pairs would silently compute nothing.
func algorithm(name string, source uint64) (analytics.Computation, error) {
	if name == "mpsp" {
		return nil, fmt.Errorf("algorithm mpsp needs a pair list and is only available to embedding callers")
	}
	return analytics.Spec{Algorithm: name, Source: source}.Resolve()
}

// cmdWorker runs a cluster worker: a thin RPC server around an engine whose
// warm runner pools are shared across shard jobs. Workers hold no graph or
// view data — every shard ships its own edges — so -data is optional and
// normally omitted.
func cmdWorker(args []string) error {
	fs := flag.NewFlagSet("worker", flag.ExitOnError)
	listen := fs.String("listen", ":7077", "address to serve on")
	workers := fs.Int("workers", 1, "dataflow workers per replica")
	parallel := fs.Int("parallel", 1, "shards run concurrently (advertised capacity)")
	data := fs.String("data", "", "data directory (optional; shards are self-contained)")
	fs.Parse(args)
	e, err := core.NewEngine(core.Options{DataDir: *data, Workers: *workers, Parallelism: *parallel})
	if err != nil {
		return err
	}
	l, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	srv := cluster.NewServer(e, *parallel)
	// Printed once the listener is live, so scripts can wait on this line.
	fmt.Printf("worker listening on %s (capacity %d, workers %d)\n", l.Addr(), *parallel, *workers)
	srv.Serve(l) // serves until the process is killed
	return nil
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	data := fs.String("data", "graphsurge-data", "data directory")
	gvdlSrc := fs.String("gvdl", "", "GVDL statements to execute before running")
	collection := fs.String("collection", "", "view collection to run over")
	viewName := fs.String("view", "", "individual filtered view to run over (instead of -collection)")
	algName := fs.String("algorithm", "wcc", "analytics computation")
	modeName := fs.String("mode", "adaptive", "diff | scratch | adaptive")
	workers := fs.Int("workers", 0, "dataflow workers per replica (0 = this engine's default locally, each worker's own -workers on a cluster run)")
	parallel := fs.Int("parallel", 0, "independent collection segments executed concurrently (0 = engine default)")
	schedName := fs.String("schedule", "fifo", "static-plan segment dispatch order: fifo | lpt")
	speculate := fs.Bool("speculate", false, "adaptive mode: seed the predicted next split point's segment on an idle replica")
	clusterAddrs := fs.String("cluster", "", "comma-separated worker addresses to shard a static-plan run across")
	weight := fs.String("weight", "", "integer edge property used as weight")
	source := fs.Uint64("source", 0, "source vertex for bfs/sssp")
	ordering := fs.String("ordering", "", `"optimize" to run the collection ordering optimizer`)
	top := fs.Int("top", 10, "print the top-N result vertices")
	fs.Parse(args)
	if *collection == "" && *viewName == "" {
		return fmt.Errorf("run: -collection or -view is required")
	}
	e, err := engineFor(*data, *ordering, *workers, *parallel)
	if err != nil {
		return err
	}
	if *gvdlSrc != "" {
		if _, err := e.Execute(*gvdlSrc); err != nil {
			return err
		}
	}
	comp, err := algorithm(*algName, *source)
	if err != nil {
		return err
	}
	if *viewName != "" {
		fv, err := e.LookupView(*viewName)
		if err != nil {
			return fmt.Errorf("run: %w (define views with -gvdl or query)", err)
		}
		results, dur, err := core.RunView(fv, comp, *workers, *weight)
		if err != nil {
			return err
		}
		fmt.Printf("%s on view %s (%d edges): %v, %d result vertices\n",
			comp.Name(), *viewName, fv.NumEdges(), dur.Round(1000), len(results))
		printResults(results, *top)
		return nil
	}
	var mode core.ExecMode
	switch *modeName {
	case "diff", "diff-only":
		mode = core.DiffOnly
	case "scratch":
		mode = core.Scratch
	case "adaptive":
		mode = core.Adaptive
	default:
		return fmt.Errorf("unknown mode %q", *modeName)
	}
	policy, err := schedule.ParsePolicy(*schedName)
	if err != nil {
		return err
	}
	opts := core.RunOptions{
		Mode:        mode,
		Workers:     *workers,
		Parallelism: *parallel,
		WeightProp:  *weight,
		Schedule:    policy,
		Speculate:   *speculate,
	}
	var res *core.RunResult
	var coord *cluster.Coordinator
	if *clusterAddrs != "" {
		coord = cluster.NewCoordinator(e, cluster.Options{})
		defer coord.Close()
		for _, addr := range strings.Split(*clusterAddrs, ",") {
			if addr = strings.TrimSpace(addr); addr == "" {
				continue
			}
			if err := coord.AddWorker(addr); err != nil {
				return err
			}
		}
		col, err := e.LookupCollection(*collection)
		if err != nil {
			return err
		}
		res, err = coord.RunCollection(col, comp, opts)
		if err != nil {
			return err
		}
	} else if res, err = e.RunCollection(*collection, comp, opts); err != nil {
		return err
	}
	fmt.Printf("%s on %s (%s): %v total, %v wall, %d splits\n",
		res.Computation, res.Collection, res.Mode, res.Total.Round(1000), res.Wall.Round(1000), res.Splits)
	segAt := make(map[int]core.SegmentStats, len(res.Segments))
	for _, seg := range res.Segments {
		segAt[seg.Start] = seg
	}
	for _, st := range res.Stats {
		if seg, ok := segAt[st.Index]; ok {
			spec := ""
			if seg.Speculative {
				spec = ", speculative"
			}
			fmt.Printf("  segment views [%d,%d): replica setup %v, drain %v%s\n",
				seg.Start, seg.End, seg.Setup.Round(1000), seg.Drain.Round(1000), spec)
		}
		fmt.Printf("  view %-3d %-16s %-8s |GV|=%-8d |dC|=%-8d out-diffs=%-8d %v\n",
			st.Index, st.Name, st.Mode, st.ViewSize, st.DiffSize, st.OutputDiffs, st.Duration.Round(1000))
	}
	if *speculate {
		fmt.Printf("speculation: %d hits, %d misses\n", res.SpecHits, res.SpecMisses)
	}
	if coord != nil {
		cs := coord.Stats()
		for _, wi := range coord.Workers() {
			state := "alive"
			if !wi.Alive {
				state = "dead"
			}
			fmt.Printf("cluster worker %s: capacity=%d %s, %d shards\n",
				wi.Addr, wi.Capacity, state, cs.Remote[wi.Addr])
		}
		fmt.Printf("cluster: %d shards local, %d re-queued\n", cs.Local, cs.Requeued)
	}
	for _, ps := range e.PoolStats() {
		fmt.Printf("pool %s/w=%d: capacity=%d live=%d idle=%d built=%d reused=%d dropped=%d\n",
			ps.Computation, ps.Workers, ps.Capacity, ps.Live, ps.Idle, ps.Built, ps.Reused, ps.Dropped)
	}
	printResults(res.FinalResults(), *top)
	return nil
}

// printResults prints up to n per-vertex results, ordered by vertex ID.
func printResults(final map[analytics.VertexValue]int64, n int) {
	items := make([]analytics.VertexValue, 0, len(final))
	for v := range final {
		items = append(items, v)
	}
	sort.Slice(items, func(i, j int) bool { return items[i].V < items[j].V })
	if n > len(items) {
		n = len(items)
	}
	fmt.Printf("results (%d vertices, first %d):\n", len(items), n)
	for _, it := range items[:n] {
		fmt.Printf("  vertex %-10d value %d\n", it.V, it.Val)
	}
}
