package gvdl

import (
	"math/rand"
	"strings"
	"testing"
)

// TestParserNeverPanics feeds the parser mutated and random inputs; it must
// return errors, never panic.
func TestParserNeverPanics(t *testing.T) {
	seeds := []string{
		"create view v on g edges where a = 1 and b = 'x' or not (c >= 2)",
		"create view collection c on g [a: x = 1], [b: y < 2]",
		"create view v on g nodes group by city aggregate n: count(*) edges aggregate s: sum(w)",
	}
	alphabet := "abcxyz01 ,:.()[]<>=!'\"-_\n"
	r := rand.New(rand.NewSource(99))
	for i := 0; i < 3000; i++ {
		src := seeds[r.Intn(len(seeds))]
		b := []byte(src)
		for m := 0; m < 1+r.Intn(6); m++ {
			switch r.Intn(3) {
			case 0: // mutate a byte
				b[r.Intn(len(b))] = alphabet[r.Intn(len(alphabet))]
			case 1: // delete a span
				at := r.Intn(len(b))
				n := 1 + r.Intn(5)
				if at+n > len(b) {
					n = len(b) - at
				}
				b = append(b[:at], b[at+n:]...)
				if len(b) == 0 {
					b = []byte("x")
				}
			case 2: // duplicate a span
				at := r.Intn(len(b))
				n := 1 + r.Intn(5)
				if at+n > len(b) {
					n = len(b) - at
				}
				b = append(b[:at], append([]byte(string(b[at:at+n])), b[at:]...)...)
			}
		}
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("panic on %q: %v", b, p)
				}
			}()
			_, _ = ParseAll(string(b))
		}()
	}
}

// TestParseRoundTripThroughString re-parses the String() form of parsed
// filtered views; the predicate structure must survive.
func TestParseRoundTripThroughString(t *testing.T) {
	srcs := []string{
		"create view v on g edges where a = 1",
		"create view v on g edges where a = 1 and b = 2 or c = 3",
		"create view v on g edges where not (src.x = 'a') and dst.y != false",
		"create view v on g edges where a <= -5 or b >= 10",
	}
	for _, src := range srcs {
		s1, err := Parse(src)
		if err != nil {
			t.Fatalf("%q: %v", src, err)
		}
		printed := s1.String()
		s2, err := Parse(printed)
		if err != nil {
			t.Fatalf("re-parsing %q: %v", printed, err)
		}
		if s1.(*CreateView).Where.String() != s2.(*CreateView).Where.String() {
			t.Fatalf("round trip changed %q -> %q", s1, s2)
		}
	}
}

func TestLexerEdgeCases(t *testing.T) {
	// Dashes: identifier continuation vs subtraction-like spacing vs
	// negative literals.
	toks, err := lex("a-b a -1 <= <> !=")
	if err != nil {
		t.Fatal(err)
	}
	kinds := make([]tokenKind, 0, len(toks))
	texts := make([]string, 0, len(toks))
	for _, tk := range toks {
		kinds = append(kinds, tk.kind)
		texts = append(texts, tk.text)
	}
	want := []tokenKind{tokIdent, tokIdent, tokInt, tokLeq, tokNeq, tokNeq, tokEOF}
	if len(kinds) != len(want) {
		t.Fatalf("kinds %v texts %v", kinds, texts)
	}
	for i, k := range want {
		if kinds[i] != k {
			t.Fatalf("token %d: got %v want %v (texts %v)", i, kinds[i], k, texts)
		}
	}
	if texts[0] != "a-b" {
		t.Fatalf("hyphenated identifier lexed as %q", texts[0])
	}
	// A dangling dash is a lex error (GVDL has no arithmetic), not a panic.
	if _, err := lex("a- "); err == nil {
		t.Fatal("expected error for dangling dash")
	}
	// Unterminated string and stray characters are errors.
	if _, err := lex("'oops"); err == nil {
		t.Fatal("expected unterminated string error")
	}
	if _, err := lex("@"); err == nil {
		t.Fatal("expected stray character error")
	}
	// Escapes inside strings.
	toks, err = lex(`'it\'s'`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].text != "it's" {
		t.Fatalf("escape: %q", toks[0].text)
	}
}

func TestErrorMessagesAreActionable(t *testing.T) {
	_, err := ParseAll("create view v on g edges where duration @ 10")
	if err == nil || !strings.Contains(err.Error(), "line 1") {
		t.Fatalf("err = %v", err)
	}
	_, err = ParseAll("create view v on g\nedges where duration >")
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("err = %v", err)
	}
}
