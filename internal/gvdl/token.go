// Package gvdl implements Graphsurge's Graph View Definition Language: a
// small SQL-like declarative language for defining filtered views, view
// collections and aggregate views over property graphs (paper §3.1, §3.2,
// §6, Listings 1, 3 and 4).
//
// Example statements:
//
//	create view CA-Long-Calls on Calls
//	edges where src.state = 'CA' and dst.state = 'CA'
//	  and duration > 10 and year = 2019
//
//	create view collection call-analysis on Calls
//	  [D1-Y2010: duration <= 1 and year <= 2010],
//	  [D2-Y2010: duration <= 2 and year <= 2010]
//
//	create view City-Calls-City on Calls
//	  nodes group by city aggregate num-phones: count(*)
//	  edges aggregate total-duration: sum(duration)
package gvdl

import "fmt"

type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokInt
	tokString
	tokLParen
	tokRParen
	tokLBracket
	tokRBracket
	tokComma
	tokColon
	tokDot
	tokStar
	tokEq  // =
	tokNeq // != or <>
	tokLt
	tokLeq
	tokGt
	tokGeq
	tokArrow // ->
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokInt:
		return "integer"
	case tokString:
		return "string"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokLBracket:
		return "'['"
	case tokRBracket:
		return "']'"
	case tokComma:
		return "','"
	case tokColon:
		return "':'"
	case tokDot:
		return "'.'"
	case tokStar:
		return "'*'"
	case tokEq:
		return "'='"
	case tokNeq:
		return "'!='"
	case tokLt:
		return "'<'"
	case tokLeq:
		return "'<='"
	case tokGt:
		return "'>'"
	case tokGeq:
		return "'>='"
	case tokArrow:
		return "'->'"
	}
	return fmt.Sprintf("token(%d)", uint8(k))
}

type token struct {
	kind tokenKind
	text string // identifier or string contents
	num  int64  // integer value
	pos  int    // byte offset, for error messages
}

// Error is a GVDL syntax or semantic error with source position context.
type Error struct {
	Pos  int
	Line int
	Col  int
	Msg  string
}

func (e *Error) Error() string {
	return fmt.Sprintf("gvdl: line %d, column %d: %s", e.Line, e.Col, e.Msg)
}

func errAt(src string, pos int, format string, args ...any) *Error {
	line, col := 1, 1
	for i := 0; i < pos && i < len(src); i++ {
		if src[i] == '\n' {
			line++
			col = 1
		} else {
			col++
		}
	}
	return &Error{Pos: pos, Line: line, Col: col, Msg: fmt.Sprintf(format, args...)}
}
