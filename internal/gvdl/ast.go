package gvdl

import (
	"fmt"
	"strings"

	"graphsurge/internal/graph"
)

// Statement is a parsed GVDL statement.
type Statement interface {
	stmt()
	// Target returns the graph or view the statement operates on.
	Target() string
	String() string
}

// CreateView defines a single filtered view (Listing 1): the edges of the
// target satisfying a predicate over edge and endpoint properties.
type CreateView struct {
	Name  string
	On    string
	Where Expr
}

func (*CreateView) stmt()            {}
func (s *CreateView) Target() string { return s.On }
func (s *CreateView) String() string {
	return fmt.Sprintf("create view %s on %s edges where %s", s.Name, s.On, s.Where)
}

// NamedPredicate is one view of a collection: a label and its edge predicate.
type NamedPredicate struct {
	Name string
	Pred Expr
}

// CreateCollection defines a view collection (Listing 3): an ordered list of
// named predicates, each describing one filtered view over the same target.
type CreateCollection struct {
	Name  string
	On    string
	Views []NamedPredicate
}

func (*CreateCollection) stmt()            {}
func (s *CreateCollection) Target() string { return s.On }
func (s *CreateCollection) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "create view collection %s on %s", s.Name, s.On)
	for i, v := range s.Views {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, " [%s: %s]", v.Name, v.Pred)
	}
	return sb.String()
}

// PropLit is one property assignment in an edge literal.
type PropLit struct {
	Name string
	Val  graph.Value
}

func (p PropLit) String() string {
	if p.Val.Type == graph.TypeString {
		return fmt.Sprintf("%s = '%s'", p.Name, p.Val.S)
	}
	return fmt.Sprintf("%s = %s", p.Name, p.Val)
}

// EdgeLit is one edge literal in an apply statement: internal node IDs
// joined by '->', with property assignments for inserts.
type EdgeLit struct {
	Src, Dst uint64
	Props    []PropLit
}

func (e EdgeLit) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d->%d", e.Src, e.Dst)
	for i, p := range e.Props {
		if i == 0 {
			sb.WriteString(" [")
		} else {
			sb.WriteString(", ")
		}
		sb.WriteString(p.String())
	}
	if len(e.Props) > 0 {
		sb.WriteByte(']')
	}
	return sb.String()
}

// ApplyMutation mutates a base graph: insert edges (with a value for every
// edge property) and/or delete edges by endpoints, as one transactional
// batch. Node IDs are the graph's internal dense IDs.
//
//	apply insert 2->0 [duration = 5, year = 2020] delete 0->1 to Calls
type ApplyMutation struct {
	On      string
	Inserts []EdgeLit
	Deletes []EdgeLit // property lists unused
}

func (*ApplyMutation) stmt()            {}
func (s *ApplyMutation) Target() string { return s.On }
func (s *ApplyMutation) String() string {
	var sb strings.Builder
	sb.WriteString("apply")
	for i, e := range s.Inserts {
		if i == 0 {
			sb.WriteString(" insert ")
		} else {
			sb.WriteString(", ")
		}
		sb.WriteString(e.String())
	}
	for i, e := range s.Deletes {
		if i == 0 {
			sb.WriteString(" delete ")
		} else {
			sb.WriteString(", ")
		}
		sb.WriteString(e.String())
	}
	fmt.Fprintf(&sb, " to %s", s.On)
	return sb.String()
}

// AggFunc enumerates aggregate functions for aggregate views.
type AggFunc uint8

const (
	AggCount AggFunc = iota
	AggSum
	AggMin
	AggMax
	AggAvg
)

func (f AggFunc) String() string {
	switch f {
	case AggCount:
		return "count"
	case AggSum:
		return "sum"
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	case AggAvg:
		return "avg"
	}
	return "agg?"
}

// Aggregation is one aggregate specification, e.g. total-duration:
// sum(duration). Prop is empty for count(*).
type Aggregation struct {
	OutName string
	Func    AggFunc
	Prop    string
}

func (a Aggregation) String() string {
	arg := a.Prop
	if arg == "" {
		arg = "*"
	}
	if a.OutName != "" {
		return fmt.Sprintf("%s: %s(%s)", a.OutName, a.Func, arg)
	}
	return fmt.Sprintf("%s(%s)", a.Func, arg)
}

// NodeGrouping describes how nodes map to super-nodes: either by the values
// of a list of node properties (group by city) or by membership in an
// ordered list of predicates (group by [(...), (...)]); nodes matching no
// predicate are dropped, as in the paper's NY-Dr-CA-Lawyer example.
type NodeGrouping struct {
	Props      []string
	Predicates []Expr
}

// CreateAggView defines an aggregate view (Listing 4, paper §6).
type CreateAggView struct {
	Name     string
	On       string
	Grouping NodeGrouping
	NodeAggs []Aggregation
	EdgeAggs []Aggregation
}

func (*CreateAggView) stmt()            {}
func (s *CreateAggView) Target() string { return s.On }
func (s *CreateAggView) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "create view %s on %s nodes group by ", s.Name, s.On)
	if len(s.Grouping.Props) > 0 {
		sb.WriteString(strings.Join(s.Grouping.Props, ", "))
	} else {
		sb.WriteByte('[')
		for i, p := range s.Grouping.Predicates {
			if i > 0 {
				sb.WriteString(", ")
			}
			fmt.Fprintf(&sb, "(%s)", p)
		}
		sb.WriteByte(']')
	}
	for i, a := range s.NodeAggs {
		if i == 0 {
			sb.WriteString(" aggregate ")
		} else {
			sb.WriteString(", ")
		}
		sb.WriteString(a.String())
	}
	for i, a := range s.EdgeAggs {
		if i == 0 {
			sb.WriteString(" edges aggregate ")
		} else {
			sb.WriteString(", ")
		}
		sb.WriteString(a.String())
	}
	return sb.String()
}

// Expr is a boolean predicate expression over edge and endpoint properties.
type Expr interface {
	expr()
	String() string
}

// BoolOp is a logical connective.
type BoolOp uint8

const (
	OpAnd BoolOp = iota
	OpOr
)

// BinaryExpr is a conjunction or disjunction.
type BinaryExpr struct {
	Op   BoolOp
	L, R Expr
}

func (*BinaryExpr) expr() {}
func (e *BinaryExpr) String() string {
	op := "and"
	if e.Op == OpOr {
		op = "or"
	}
	return fmt.Sprintf("(%s %s %s)", e.L, op, e.R)
}

// NotExpr negates a predicate.
type NotExpr struct{ E Expr }

func (*NotExpr) expr()            {}
func (e *NotExpr) String() string { return fmt.Sprintf("(not %s)", e.E) }

// CmpOp is a comparison operator.
type CmpOp uint8

const (
	CmpEq CmpOp = iota
	CmpNeq
	CmpLt
	CmpLeq
	CmpGt
	CmpGeq
)

func (o CmpOp) String() string {
	switch o {
	case CmpEq:
		return "="
	case CmpNeq:
		return "!="
	case CmpLt:
		return "<"
	case CmpLeq:
		return "<="
	case CmpGt:
		return ">"
	case CmpGeq:
		return ">="
	}
	return "?"
}

// Compare is a comparison between two operands.
type Compare struct {
	Op   CmpOp
	L, R Operand
}

func (*Compare) expr()            {}
func (e *Compare) String() string { return fmt.Sprintf("%s %s %s", e.L, e.Op, e.R) }

// OperandKind distinguishes literals from property references.
type OperandKind uint8

const (
	OperandLit OperandKind = iota
	OperandEdgeProp
	OperandSrcProp // src.<prop>: property of the edge's source node
	OperandDstProp // dst.<prop>: property of the edge's destination node
)

// Operand is one side of a comparison.
type Operand struct {
	Kind OperandKind
	Lit  graph.Value // when Kind == OperandLit
	Prop string      // when Kind != OperandLit
	pos  int
}

func (o Operand) String() string {
	switch o.Kind {
	case OperandLit:
		if o.Lit.Type == graph.TypeString {
			return "'" + o.Lit.S + "'"
		}
		return o.Lit.String()
	case OperandEdgeProp:
		return o.Prop
	case OperandSrcProp:
		return "src." + o.Prop
	case OperandDstProp:
		return "dst." + o.Prop
	}
	return "?"
}
