package gvdl

import (
	"strings"

	"graphsurge/internal/graph"
)

// Parse parses a single GVDL statement.
func Parse(src string) (Statement, error) {
	stmts, err := ParseAll(src)
	if err != nil {
		return nil, err
	}
	if len(stmts) != 1 {
		return nil, errAt(src, 0, "expected exactly one statement, got %d", len(stmts))
	}
	return stmts[0], nil
}

// ParsePredicate parses a standalone edge predicate expression — the
// re-parseable form Expr.String() renders. The view layer persists
// predicate sources and recompiles them through here when a mutated base
// graph invalidates previously compiled closures.
func ParsePredicate(src string) (Expr, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{src: src, toks: toks}
	e, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if p.cur().kind != tokEOF {
		return nil, errAt(src, p.cur().pos, "unexpected %s after predicate", p.describe(p.cur()))
	}
	return e, nil
}

// ParseAll parses a sequence of GVDL statements. Statements need no
// separator: each begins with "create" or "apply".
func ParseAll(src string) ([]Statement, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{src: src, toks: toks}
	var stmts []Statement
	for p.cur().kind != tokEOF {
		s, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
	}
	if len(stmts) == 0 {
		return nil, errAt(src, 0, "empty input")
	}
	return stmts, nil
}

type parser struct {
	src  string
	toks []token
	i    int
}

func (p *parser) cur() token { return p.toks[p.i] }
func (p *parser) peek() token {
	if p.i+1 < len(p.toks) {
		return p.toks[p.i+1]
	}
	return p.toks[len(p.toks)-1]
}
func (p *parser) advance() token {
	t := p.toks[p.i]
	if p.i < len(p.toks)-1 {
		p.i++
	}
	return t
}

// isKw reports whether the current token is the given keyword
// (case-insensitive identifier match).
func (p *parser) isKw(kw string) bool {
	t := p.cur()
	return t.kind == tokIdent && strings.EqualFold(t.text, kw)
}

func (p *parser) expectKw(kw string) error {
	if !p.isKw(kw) {
		return errAt(p.src, p.cur().pos, "expected %q, got %s", kw, p.describe(p.cur()))
	}
	p.advance()
	return nil
}

func (p *parser) expect(k tokenKind) (token, error) {
	if p.cur().kind != k {
		return token{}, errAt(p.src, p.cur().pos, "expected %s, got %s", k, p.describe(p.cur()))
	}
	return p.advance(), nil
}

func (p *parser) ident() (string, error) {
	t, err := p.expect(tokIdent)
	if err != nil {
		return "", err
	}
	return t.text, nil
}

func (p *parser) describe(t token) string {
	if t.kind == tokIdent {
		return "\"" + t.text + "\""
	}
	return t.kind.String()
}

func (p *parser) parseStatement() (Statement, error) {
	if p.isKw("apply") {
		p.advance()
		return p.parseApply()
	}
	if !p.isKw("create") {
		return nil, errAt(p.src, p.cur().pos, "expected \"create\" or \"apply\", got %s", p.describe(p.cur()))
	}
	p.advance()
	if err := p.expectKw("view"); err != nil {
		return nil, err
	}
	if p.isKw("collection") {
		p.advance()
		return p.parseCollection()
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("on"); err != nil {
		return nil, err
	}
	on, err := p.ident()
	if err != nil {
		return nil, err
	}
	switch {
	case p.isKw("edges"):
		p.advance()
		if err := p.expectKw("where"); err != nil {
			return nil, err
		}
		pred, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		return &CreateView{Name: name, On: on, Where: pred}, nil
	case p.isKw("nodes"):
		p.advance()
		return p.parseAggView(name, on)
	}
	return nil, errAt(p.src, p.cur().pos, "expected \"edges\" or \"nodes\", got %s", p.describe(p.cur()))
}

func (p *parser) parseCollection() (Statement, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("on"); err != nil {
		return nil, err
	}
	on, err := p.ident()
	if err != nil {
		return nil, err
	}
	var views []NamedPredicate
	for {
		if _, err := p.expect(tokLBracket); err != nil {
			return nil, err
		}
		vn, err := p.ident()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokColon); err != nil {
			return nil, err
		}
		pred, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRBracket); err != nil {
			return nil, err
		}
		views = append(views, NamedPredicate{Name: vn, Pred: pred})
		if p.cur().kind != tokComma {
			break
		}
		p.advance()
	}
	if len(views) < 1 {
		return nil, errAt(p.src, p.cur().pos, "view collection needs at least one view")
	}
	return &CreateCollection{Name: name, On: on, Views: views}, nil
}

// parseApply parses the mutation statement ("apply" already consumed):
//
//	apply insert <edge> [<prop> = <lit>, ...], <edge> ...
//	      delete <edge>, <edge> ...
//	      to <graph>
//
// The insert and delete sections may appear in either order; at least one
// edge is required overall.
func (p *parser) parseApply() (Statement, error) {
	s := &ApplyMutation{}
	for {
		switch {
		case p.isKw("insert"):
			p.advance()
			for {
				e, err := p.parseEdgeLit(true)
				if err != nil {
					return nil, err
				}
				s.Inserts = append(s.Inserts, e)
				if p.cur().kind != tokComma {
					break
				}
				p.advance()
			}
		case p.isKw("delete"):
			p.advance()
			for {
				e, err := p.parseEdgeLit(false)
				if err != nil {
					return nil, err
				}
				s.Deletes = append(s.Deletes, e)
				if p.cur().kind != tokComma {
					break
				}
				p.advance()
			}
		case p.isKw("to"):
			p.advance()
			on, err := p.ident()
			if err != nil {
				return nil, err
			}
			if len(s.Inserts)+len(s.Deletes) == 0 {
				return nil, errAt(p.src, p.cur().pos, "apply needs at least one insert or delete")
			}
			s.On = on
			return s, nil
		default:
			return nil, errAt(p.src, p.cur().pos, "expected \"insert\", \"delete\" or \"to\", got %s", p.describe(p.cur()))
		}
	}
}

// parseEdgeLit parses "src->dst", with an optional bracketed property list
// when withProps is set.
func (p *parser) parseEdgeLit(withProps bool) (EdgeLit, error) {
	src, err := p.nodeID()
	if err != nil {
		return EdgeLit{}, err
	}
	if _, err := p.expect(tokArrow); err != nil {
		return EdgeLit{}, err
	}
	dst, err := p.nodeID()
	if err != nil {
		return EdgeLit{}, err
	}
	e := EdgeLit{Src: src, Dst: dst}
	if withProps && p.cur().kind == tokLBracket {
		p.advance()
		for {
			name, err := p.ident()
			if err != nil {
				return EdgeLit{}, err
			}
			if _, err := p.expect(tokEq); err != nil {
				return EdgeLit{}, err
			}
			val, err := p.literal()
			if err != nil {
				return EdgeLit{}, err
			}
			e.Props = append(e.Props, PropLit{Name: name, Val: val})
			if p.cur().kind != tokComma {
				break
			}
			p.advance()
		}
		if _, err := p.expect(tokRBracket); err != nil {
			return EdgeLit{}, err
		}
	}
	return e, nil
}

// nodeID parses a non-negative integer internal node ID.
func (p *parser) nodeID() (uint64, error) {
	t, err := p.expect(tokInt)
	if err != nil {
		return 0, err
	}
	if t.num < 0 {
		return 0, errAt(p.src, t.pos, "node IDs cannot be negative, got %d", t.num)
	}
	return uint64(t.num), nil
}

// literal parses an int, string or boolean property value literal.
func (p *parser) literal() (graph.Value, error) {
	t := p.cur()
	switch t.kind {
	case tokInt:
		p.advance()
		return graph.IntValue(t.num), nil
	case tokString:
		p.advance()
		return graph.StringValue(t.text), nil
	case tokIdent:
		if strings.EqualFold(t.text, "true") {
			p.advance()
			return graph.BoolValue(true), nil
		}
		if strings.EqualFold(t.text, "false") {
			p.advance()
			return graph.BoolValue(false), nil
		}
	}
	return graph.Value{}, errAt(p.src, t.pos, "expected a literal value, got %s", p.describe(t))
}

func (p *parser) parseAggView(name, on string) (Statement, error) {
	if err := p.expectKw("group"); err != nil {
		return nil, err
	}
	if err := p.expectKw("by"); err != nil {
		return nil, err
	}
	s := &CreateAggView{Name: name, On: on}
	if p.cur().kind == tokLBracket {
		p.advance()
		for {
			if _, err := p.expect(tokLParen); err != nil {
				return nil, err
			}
			pred, err := p.parseOr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokRParen); err != nil {
				return nil, err
			}
			s.Grouping.Predicates = append(s.Grouping.Predicates, pred)
			if p.cur().kind != tokComma {
				break
			}
			p.advance()
		}
		if _, err := p.expect(tokRBracket); err != nil {
			return nil, err
		}
	} else {
		for {
			prop, err := p.ident()
			if err != nil {
				return nil, err
			}
			s.Grouping.Props = append(s.Grouping.Props, prop)
			if p.cur().kind != tokComma {
				break
			}
			p.advance()
		}
	}
	if p.isKw("aggregate") {
		p.advance()
		aggs, err := p.parseAggList()
		if err != nil {
			return nil, err
		}
		s.NodeAggs = aggs
	}
	if p.isKw("edges") {
		p.advance()
		if err := p.expectKw("aggregate"); err != nil {
			return nil, err
		}
		aggs, err := p.parseAggList()
		if err != nil {
			return nil, err
		}
		s.EdgeAggs = aggs
	}
	return s, nil
}

var aggFuncs = map[string]AggFunc{
	"count": AggCount,
	"sum":   AggSum,
	"min":   AggMin,
	"max":   AggMax,
	"avg":   AggAvg,
}

func (p *parser) parseAggList() ([]Aggregation, error) {
	var aggs []Aggregation
	for {
		var a Aggregation
		first, err := p.ident()
		if err != nil {
			return nil, err
		}
		if p.cur().kind == tokColon {
			p.advance()
			a.OutName = first
			first, err = p.ident()
			if err != nil {
				return nil, err
			}
		}
		f, ok := aggFuncs[strings.ToLower(first)]
		if !ok {
			return nil, errAt(p.src, p.cur().pos, "unknown aggregate function %q", first)
		}
		a.Func = f
		if _, err := p.expect(tokLParen); err != nil {
			return nil, err
		}
		if p.cur().kind == tokStar {
			p.advance()
			if a.Func != AggCount {
				return nil, errAt(p.src, p.cur().pos, "only count accepts *")
			}
		} else {
			prop, err := p.ident()
			if err != nil {
				return nil, err
			}
			a.Prop = prop
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		aggs = append(aggs, a)
		if p.cur().kind != tokComma {
			return aggs, nil
		}
		p.advance()
	}
}

// parseOr implements the predicate grammar with standard precedence:
// or < and < not < comparison.
func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.isKw("or") {
		p.advance()
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: OpOr, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.isKw("and") {
		p.advance()
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: OpAnd, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseUnary() (Expr, error) {
	if p.isKw("not") {
		p.advance()
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &NotExpr{E: e}, nil
	}
	if p.cur().kind == tokLParen {
		p.advance()
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return e, nil
	}
	return p.parseComparison()
}

func (p *parser) parseComparison() (Expr, error) {
	l, err := p.parseOperand()
	if err != nil {
		return nil, err
	}
	var op CmpOp
	switch p.cur().kind {
	case tokEq:
		op = CmpEq
	case tokNeq:
		op = CmpNeq
	case tokLt:
		op = CmpLt
	case tokLeq:
		op = CmpLeq
	case tokGt:
		op = CmpGt
	case tokGeq:
		op = CmpGeq
	default:
		return nil, errAt(p.src, p.cur().pos, "expected comparison operator, got %s", p.describe(p.cur()))
	}
	p.advance()
	r, err := p.parseOperand()
	if err != nil {
		return nil, err
	}
	return &Compare{Op: op, L: l, R: r}, nil
}

func (p *parser) parseOperand() (Operand, error) {
	t := p.cur()
	switch t.kind {
	case tokInt:
		p.advance()
		return Operand{Kind: OperandLit, Lit: graph.IntValue(t.num), pos: t.pos}, nil
	case tokString:
		p.advance()
		return Operand{Kind: OperandLit, Lit: graph.StringValue(t.text), pos: t.pos}, nil
	case tokIdent:
		switch {
		case strings.EqualFold(t.text, "true"):
			p.advance()
			return Operand{Kind: OperandLit, Lit: graph.BoolValue(true), pos: t.pos}, nil
		case strings.EqualFold(t.text, "false"):
			p.advance()
			return Operand{Kind: OperandLit, Lit: graph.BoolValue(false), pos: t.pos}, nil
		case strings.EqualFold(t.text, "src") && p.peek().kind == tokDot:
			p.advance()
			p.advance()
			prop, err := p.ident()
			if err != nil {
				return Operand{}, err
			}
			return Operand{Kind: OperandSrcProp, Prop: prop, pos: t.pos}, nil
		case strings.EqualFold(t.text, "dst") && p.peek().kind == tokDot:
			p.advance()
			p.advance()
			prop, err := p.ident()
			if err != nil {
				return Operand{}, err
			}
			return Operand{Kind: OperandDstProp, Prop: prop, pos: t.pos}, nil
		default:
			p.advance()
			return Operand{Kind: OperandEdgeProp, Prop: t.text, pos: t.pos}, nil
		}
	}
	return Operand{}, errAt(p.src, t.pos, "expected literal or property reference, got %s", p.describe(t))
}
