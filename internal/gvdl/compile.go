package gvdl

import (
	"fmt"

	"graphsurge/internal/graph"
)

// Semantic analysis and compilation of predicate expressions against a
// concrete graph schema. Property names resolve to column indices once, at
// compile time, so evaluation over millions of edges does no string lookups —
// the paper's Edge Boolean Matrix step depends on this being cheap.

// EdgePredicate evaluates a compiled predicate against edge i of the graph
// it was compiled for.
type EdgePredicate func(i int) bool

// NodePredicate evaluates a compiled predicate against node i.
type NodePredicate func(i int) bool

// valueGetter produces an operand's value for row i.
type valueGetter struct {
	typ graph.PropType
	get func(i int) graph.Value
}

// compileCtx resolves property references for a particular evaluation
// context (edge predicates vs node predicates).
type compileCtx struct {
	src     string
	resolve func(o Operand) (valueGetter, error)
}

// CompileEdgePredicate compiles an expression into a predicate over the
// graph's edges. Operands may reference edge properties (bare names) and
// endpoint node properties (src.name, dst.name).
func CompileEdgePredicate(g *graph.Graph, e Expr) (EdgePredicate, error) {
	ctx := &compileCtx{resolve: func(o Operand) (valueGetter, error) {
		switch o.Kind {
		case OperandLit:
			lit := o.Lit
			return valueGetter{typ: lit.Type, get: func(int) graph.Value { return lit }}, nil
		case OperandEdgeProp:
			ci, ok := g.EdgeProps.ColumnIndex(o.Prop)
			if !ok {
				return valueGetter{}, fmt.Errorf("no edge property %q on graph %s", o.Prop, g.Name)
			}
			col := &g.EdgeProps.Cols[ci]
			return valueGetter{typ: col.Type, get: col.Value}, nil
		case OperandSrcProp, OperandDstProp:
			ci, ok := g.NodeProps.ColumnIndex(o.Prop)
			if !ok {
				return valueGetter{}, fmt.Errorf("no node property %q on graph %s", o.Prop, g.Name)
			}
			col := &g.NodeProps.Cols[ci]
			ends := g.Srcs
			if o.Kind == OperandDstProp {
				ends = g.Dsts
			}
			return valueGetter{typ: col.Type, get: func(i int) graph.Value {
				return col.Value(int(ends[i]))
			}}, nil
		}
		return valueGetter{}, fmt.Errorf("unknown operand kind %d", o.Kind)
	}}
	f, err := compileExpr(ctx, e)
	if err != nil {
		return nil, err
	}
	return EdgePredicate(f), nil
}

// CompileNodePredicate compiles an expression into a predicate over the
// graph's nodes. Only bare property names are legal; src./dst. references
// are edge-context constructs.
func CompileNodePredicate(g *graph.Graph, e Expr) (NodePredicate, error) {
	ctx := &compileCtx{resolve: func(o Operand) (valueGetter, error) {
		switch o.Kind {
		case OperandLit:
			lit := o.Lit
			return valueGetter{typ: lit.Type, get: func(int) graph.Value { return lit }}, nil
		case OperandEdgeProp: // bare name: node property in node context
			ci, ok := g.NodeProps.ColumnIndex(o.Prop)
			if !ok {
				return valueGetter{}, fmt.Errorf("no node property %q on graph %s", o.Prop, g.Name)
			}
			col := &g.NodeProps.Cols[ci]
			return valueGetter{typ: col.Type, get: col.Value}, nil
		default:
			return valueGetter{}, fmt.Errorf("src./dst. references are not allowed in node predicates")
		}
	}}
	f, err := compileExpr(ctx, e)
	if err != nil {
		return nil, err
	}
	return NodePredicate(f), nil
}

func compileExpr(ctx *compileCtx, e Expr) (func(int) bool, error) {
	switch e := e.(type) {
	case *BinaryExpr:
		l, err := compileExpr(ctx, e.L)
		if err != nil {
			return nil, err
		}
		r, err := compileExpr(ctx, e.R)
		if err != nil {
			return nil, err
		}
		if e.Op == OpAnd {
			return func(i int) bool { return l(i) && r(i) }, nil
		}
		return func(i int) bool { return l(i) || r(i) }, nil
	case *NotExpr:
		f, err := compileExpr(ctx, e.E)
		if err != nil {
			return nil, err
		}
		return func(i int) bool { return !f(i) }, nil
	case *Compare:
		return compileCompare(ctx, e)
	}
	return nil, fmt.Errorf("unknown expression %T", e)
}

func compileCompare(ctx *compileCtx, e *Compare) (func(int) bool, error) {
	l, err := ctx.resolve(e.L)
	if err != nil {
		return nil, err
	}
	r, err := ctx.resolve(e.R)
	if err != nil {
		return nil, err
	}
	if l.typ != r.typ {
		return nil, fmt.Errorf("type mismatch in %q: %s vs %s", e, l.typ, r.typ)
	}
	if l.typ == graph.TypeBool && e.Op != CmpEq && e.Op != CmpNeq {
		return nil, fmt.Errorf("boolean operands in %q only support = and !=", e)
	}
	op := e.Op
	lt, lg, rg := l.typ, l.get, r.get
	return func(i int) bool {
		a, b := lg(i), rg(i)
		var cmp int
		switch lt {
		case graph.TypeInt:
			switch {
			case a.I < b.I:
				cmp = -1
			case a.I > b.I:
				cmp = 1
			}
		case graph.TypeString:
			switch {
			case a.S < b.S:
				cmp = -1
			case a.S > b.S:
				cmp = 1
			}
		default:
			if a.B != b.B {
				cmp = 1
			}
		}
		switch op {
		case CmpEq:
			return cmp == 0
		case CmpNeq:
			return cmp != 0
		case CmpLt:
			return cmp < 0
		case CmpLeq:
			return cmp <= 0
		case CmpGt:
			return cmp > 0
		default:
			return cmp >= 0
		}
	}, nil
}
