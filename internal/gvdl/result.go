package gvdl

import (
	"fmt"
	"time"
)

// Result is the typed outcome of executing one GVDL statement — what a
// statement materialized, in structured form. The engine produces one Result
// per statement so programmatic callers (core.Session, the HTTP server) can
// consume counts and names directly; String renders the exact human line the
// CLI prints, so the text path is a projection of the typed path rather than
// a second code path.
type Result interface {
	// Kind names the result variant for wire encodings ("view",
	// "collection", "aggregate").
	Kind() string
	// String renders the one-line human description of the result.
	String() string
}

// ViewCreated reports a materialized filtered view.
type ViewCreated struct {
	Name  string `json:"name"`
	Edges int    `json:"edges"`
}

// Kind implements Result.
func (ViewCreated) Kind() string { return "view" }

func (r ViewCreated) String() string {
	return fmt.Sprintf("view %s: %d edges", r.Name, r.Edges)
}

// CollectionCreated reports a materialized view collection.
type CollectionCreated struct {
	Name string `json:"name"`
	// Views is the number of views in the collection; Diffs the total
	// difference-set size across them.
	Views   int           `json:"views"`
	Diffs   int64         `json:"diffs"`
	Elapsed time.Duration `json:"elapsed"`
}

// Kind implements Result.
func (CollectionCreated) Kind() string { return "collection" }

func (r CollectionCreated) String() string {
	return fmt.Sprintf("collection %s: %d views, %d diffs (created in %v)",
		r.Name, r.Views, r.Diffs, r.Elapsed)
}

// GraphMutated reports an applied mutation batch.
type GraphMutated struct {
	Graph    string `json:"graph"`
	Version  uint64 `json:"version"`
	Inserted int    `json:"inserted"`
	Deleted  int    `json:"deleted"`
	// Maintained counts the materialized views/collections/aggregate views
	// that were incrementally patched for the batch.
	Maintained int `json:"maintained"`
}

// Kind implements Result.
func (GraphMutated) Kind() string { return "mutation" }

func (r GraphMutated) String() string {
	return fmt.Sprintf("graph %s: +%d/-%d edges, %d views maintained, now at version %d",
		r.Graph, r.Inserted, r.Deleted, r.Maintained, r.Version)
}

// AggViewCreated reports a materialized aggregate view.
type AggViewCreated struct {
	Name       string `json:"name"`
	SuperNodes int    `json:"superNodes"`
	SuperEdges int    `json:"superEdges"`
}

// Kind implements Result.
func (AggViewCreated) Kind() string { return "aggregate" }

func (r AggViewCreated) String() string {
	return fmt.Sprintf("aggregate view %s: %d super-nodes, %d super-edges",
		r.Name, r.SuperNodes, r.SuperEdges)
}
