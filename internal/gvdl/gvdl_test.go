package gvdl

import (
	"strings"
	"testing"

	"graphsurge/internal/graph"
)

func TestParseFilteredView(t *testing.T) {
	// Listing 1 from the paper.
	src := `create view CA-Long-Calls on Calls
edges where src.state = 'CA' and dst.state = 'CA'
and duration > 10 and year = 2019`
	s, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	v, ok := s.(*CreateView)
	if !ok {
		t.Fatalf("got %T", s)
	}
	if v.Name != "CA-Long-Calls" || v.On != "Calls" {
		t.Fatalf("name=%q on=%q", v.Name, v.On)
	}
	// and is left-associative: ((a and b) and c) and d
	str := v.String()
	for _, frag := range []string{"src.state = 'CA'", "duration > 10", "year = 2019"} {
		if !strings.Contains(str, frag) {
			t.Fatalf("String() = %q missing %q", str, frag)
		}
	}
}

func TestParseCollection(t *testing.T) {
	// Listing 3 from the paper (truncated).
	src := `create view collection call-analysis on Calls
[D1-Y2010: duration<=1 and year<=2010],
[D2-Y2010: duration<=2 and year<=2010],
[D34-Y2010: duration<=34 and year<=2010]`
	s, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	c, ok := s.(*CreateCollection)
	if !ok {
		t.Fatalf("got %T", s)
	}
	if c.Name != "call-analysis" || c.On != "Calls" || len(c.Views) != 3 {
		t.Fatalf("parsed %+v", c)
	}
	if c.Views[2].Name != "D34-Y2010" {
		t.Fatalf("view name %q", c.Views[2].Name)
	}
}

func TestParseAggregateViews(t *testing.T) {
	// Listing 4 from the paper.
	src := `create view NY-Dr-CA-Lawyer on Calls
nodes group by [
(profession='Doctor' and city='NY'),
(profession='Lawyer' and city='LA'),
(profession='Teacher' and city='DC')]
aggregate count(*)`
	s, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	a, ok := s.(*CreateAggView)
	if !ok {
		t.Fatalf("got %T", s)
	}
	if len(a.Grouping.Predicates) != 3 || len(a.NodeAggs) != 1 || a.NodeAggs[0].Func != AggCount {
		t.Fatalf("parsed %+v", a)
	}

	src2 := `create view City-Calls-City on Calls
nodes group by city aggregate num-phones: count(*)
edges aggregate total-duration: sum(duration)`
	s2, err := Parse(src2)
	if err != nil {
		t.Fatal(err)
	}
	a2 := s2.(*CreateAggView)
	if len(a2.Grouping.Props) != 1 || a2.Grouping.Props[0] != "city" {
		t.Fatalf("grouping %+v", a2.Grouping)
	}
	if a2.NodeAggs[0].OutName != "num-phones" || a2.EdgeAggs[0].OutName != "total-duration" ||
		a2.EdgeAggs[0].Func != AggSum || a2.EdgeAggs[0].Prop != "duration" {
		t.Fatalf("aggs %+v %+v", a2.NodeAggs, a2.EdgeAggs)
	}
	if a2.Target() != "Calls" {
		t.Fatal("Target")
	}
}

func TestParseMultipleStatements(t *testing.T) {
	src := `create view a on g edges where x = 1
create view b on g edges where x = 2`
	stmts, err := ParseAll(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 2 {
		t.Fatalf("got %d statements", len(stmts))
	}
}

func TestParsePrecedenceAndNot(t *testing.T) {
	src := `create view v on g edges where a = 1 or b = 2 and not (c = 3)`
	s, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	e := s.(*CreateView).Where.(*BinaryExpr)
	if e.Op != OpOr {
		t.Fatalf("top op = %v, want or", e.Op)
	}
	r := e.R.(*BinaryExpr)
	if r.Op != OpAnd {
		t.Fatalf("right op = %v, want and", r.Op)
	}
	if _, ok := r.R.(*NotExpr); !ok {
		t.Fatalf("expected not, got %T", r.R)
	}
}

func TestParseComments(t *testing.T) {
	src := "create view v on g -- a comment\nedges where x = -5"
	s, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	cmp := s.(*CreateView).Where.(*Compare)
	if cmp.R.Lit.I != -5 {
		t.Fatalf("literal = %v", cmp.R.Lit)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"make view v on g edges where x = 1",
		"create table v on g",
		"create view v on g edges x = 1",
		"create view v on g edges where x ==",
		"create view v on g edges where x",
		"create view v on g edges where 'unterminated",
		"create view v on g nodes group by",
		"create view v on g nodes group by city aggregate frobnicate(x)",
		"create view v on g nodes group by city aggregate sum(*)",
		"create view collection c on g",
		"create view collection c on g [v1 x = 1]",
		"create view v on g edges where x @ 1",
	}
	for _, src := range cases {
		if _, err := ParseAll(src); err == nil {
			t.Fatalf("expected error for %q", src)
		}
	}
}

// testGraph builds a small graph for predicate compilation tests.
func testGraph() *graph.Graph {
	np := graph.NewPropTable([]graph.PropDef{
		{Name: "city", Type: graph.TypeString},
		{Name: "vip", Type: graph.TypeBool},
	})
	for _, row := range [][]graph.Value{
		{graph.StringValue("LA"), graph.BoolValue(true)},
		{graph.StringValue("NY"), graph.BoolValue(false)},
		{graph.StringValue("LA"), graph.BoolValue(false)},
	} {
		if err := np.AppendRow(row); err != nil {
			panic(err)
		}
	}
	ep := graph.NewPropTable([]graph.PropDef{
		{Name: "duration", Type: graph.TypeInt},
		{Name: "year", Type: graph.TypeInt},
	})
	edges := []struct {
		s, d uint64
		dur  int64
		year int64
	}{
		{0, 1, 5, 2019},
		{1, 2, 15, 2019},
		{2, 0, 20, 2010},
	}
	g := &graph.Graph{Name: "g", NumNodes: 3, NodeProps: np, EdgeProps: ep}
	for _, e := range edges {
		g.Srcs = append(g.Srcs, e.s)
		g.Dsts = append(g.Dsts, e.d)
		if err := ep.AppendRow([]graph.Value{graph.IntValue(e.dur), graph.IntValue(e.year)}); err != nil {
			panic(err)
		}
	}
	return g
}

func mustPred(t *testing.T, g *graph.Graph, pred string) EdgePredicate {
	t.Helper()
	s, err := Parse("create view v on g edges where " + pred)
	if err != nil {
		t.Fatal(err)
	}
	f, err := CompileEdgePredicate(g, s.(*CreateView).Where)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestCompileEdgePredicate(t *testing.T) {
	g := testGraph()
	cases := []struct {
		pred string
		want []bool // per edge
	}{
		{"duration > 10", []bool{false, true, true}},
		{"duration > 10 and year = 2019", []bool{false, true, false}},
		{"duration <= 5 or year < 2015", []bool{true, false, true}},
		{"src.city = 'LA'", []bool{true, false, true}},
		{"dst.city = 'LA'", []bool{false, true, true}},
		{"src.city = dst.city", []bool{false, false, true}},
		{"not (duration > 10)", []bool{true, false, false}},
		{"src.vip = true", []bool{true, false, false}},
		{"src.vip != dst.vip", []bool{true, false, true}},
		{"duration != 15", []bool{true, false, true}},
		{"year >= 2019", []bool{true, true, false}},
		{"src.city < dst.city", []bool{true, false, false}},
	}
	for _, c := range cases {
		f := mustPred(t, g, c.pred)
		for i, want := range c.want {
			if got := f(i); got != want {
				t.Errorf("%q edge %d: got %v want %v", c.pred, i, got, want)
			}
		}
	}
}

func TestCompileNodePredicate(t *testing.T) {
	g := testGraph()
	s, err := Parse("create view v on g nodes group by [(city = 'LA'), (city = 'NY')] aggregate count(*)")
	if err != nil {
		t.Fatal(err)
	}
	a := s.(*CreateAggView)
	f, err := CompileNodePredicate(g, a.Grouping.Predicates[0])
	if err != nil {
		t.Fatal(err)
	}
	want := []bool{true, false, true}
	for i, w := range want {
		if f(i) != w {
			t.Errorf("node %d: got %v want %v", i, f(i), w)
		}
	}
	// src./dst. illegal in node context.
	s2, _ := Parse("create view v on g edges where src.city = 'LA'")
	if _, err := CompileNodePredicate(g, s2.(*CreateView).Where); err == nil {
		t.Fatal("expected error for src. in node predicate")
	}
}

func TestCompileErrors(t *testing.T) {
	g := testGraph()
	bad := []string{
		"nope = 1",
		"src.nope = 1",
		"duration = 'x'",
		"src.vip > true",
		"src.city = 1",
	}
	for _, pred := range bad {
		s, err := Parse("create view v on g edges where " + pred)
		if err != nil {
			t.Fatalf("parse %q: %v", pred, err)
		}
		if _, err := CompileEdgePredicate(g, s.(*CreateView).Where); err == nil {
			t.Fatalf("expected compile error for %q", pred)
		}
	}
}

func TestErrorPosition(t *testing.T) {
	_, err := ParseAll("create view v on g\nedges wharr x = 1")
	if err == nil {
		t.Fatal("expected error")
	}
	ge, ok := err.(*Error)
	if !ok {
		t.Fatalf("got %T", err)
	}
	if ge.Line != 2 {
		t.Fatalf("line = %d, want 2", ge.Line)
	}
}
