package gvdl

import (
	"strconv"
	"strings"
)

// lexer tokenizes GVDL source. Identifiers may contain '-' (view names like
// CA-Long-Calls, property names like num-phones); a '-' immediately followed
// by a digit at the start of a token begins a negative integer literal
// instead. Keywords are matched case-insensitively by the parser.
type lexer struct {
	src  string
	pos  int
	toks []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		l.skipSpace()
		if l.pos >= len(l.src) {
			l.emit(token{kind: tokEOF, pos: l.pos})
			return l.toks, nil
		}
		start := l.pos
		c := l.src[l.pos]
		switch {
		case isLetter(c):
			l.lexIdent(start)
		case isDigit(c) || (c == '-' && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1])):
			if err := l.lexInt(start); err != nil {
				return nil, err
			}
		case c == '\'' || c == '"':
			if err := l.lexString(start, c); err != nil {
				return nil, err
			}
		default:
			if err := l.lexOperator(start); err != nil {
				return nil, err
			}
		}
	}
}

func (l *lexer) emit(t token) { l.toks = append(l.toks, t) }

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			l.pos++
			continue
		}
		// Line comments: -- to end of line.
		if c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-' {
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
			continue
		}
		return
	}
}

func isLetter(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_'
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isIdentChar(c byte) bool { return isLetter(c) || isDigit(c) || c == '-' }

func (l *lexer) lexIdent(start int) {
	for l.pos < len(l.src) && isIdentChar(l.src[l.pos]) {
		// A '-' only continues the identifier if followed by another
		// identifier character, so "a-1" lexes as one identifier but
		// "a - 1" and "a -1" do not swallow the minus.
		if l.src[l.pos] == '-' && (l.pos+1 >= len(l.src) || !isIdentChar(l.src[l.pos+1])) {
			break
		}
		l.pos++
	}
	l.emit(token{kind: tokIdent, text: l.src[start:l.pos], pos: start})
}

func (l *lexer) lexInt(start int) error {
	l.pos++ // first digit or '-'
	for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
		l.pos++
	}
	n, err := strconv.ParseInt(l.src[start:l.pos], 10, 64)
	if err != nil {
		return errAt(l.src, start, "bad integer literal %q", l.src[start:l.pos])
	}
	l.emit(token{kind: tokInt, num: n, pos: start})
	return nil
}

func (l *lexer) lexString(start int, quote byte) error {
	l.pos++
	var sb strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == quote {
			l.pos++
			l.emit(token{kind: tokString, text: sb.String(), pos: start})
			return nil
		}
		if c == '\\' && l.pos+1 < len(l.src) {
			l.pos++
			c = l.src[l.pos]
		}
		sb.WriteByte(c)
		l.pos++
	}
	return errAt(l.src, start, "unterminated string literal")
}

func (l *lexer) lexOperator(start int) error {
	c := l.src[l.pos]
	two := ""
	if l.pos+1 < len(l.src) {
		two = l.src[l.pos : l.pos+2]
	}
	switch {
	case two == "->":
		// Edge literals in apply statements (2->7). No conflict with the
		// other '-' forms: "--" is consumed as a comment by skipSpace and
		// '-' before a digit lexes a negative integer before reaching here.
		l.pos += 2
		l.emit(token{kind: tokArrow, pos: start})
	case two == "!=" || two == "<>":
		l.pos += 2
		l.emit(token{kind: tokNeq, pos: start})
	case two == "<=":
		l.pos += 2
		l.emit(token{kind: tokLeq, pos: start})
	case two == ">=":
		l.pos += 2
		l.emit(token{kind: tokGeq, pos: start})
	default:
		l.pos++
		var k tokenKind
		switch c {
		case '(':
			k = tokLParen
		case ')':
			k = tokRParen
		case '[':
			k = tokLBracket
		case ']':
			k = tokRBracket
		case ',':
			k = tokComma
		case ':':
			k = tokColon
		case '.':
			k = tokDot
		case '*':
			k = tokStar
		case '=':
			k = tokEq
		case '<':
			k = tokLt
		case '>':
			k = tokGt
		default:
			return errAt(l.src, start, "unexpected character %q", string(c))
		}
		l.emit(token{kind: k, pos: start})
	}
	return nil
}
