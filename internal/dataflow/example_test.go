package dataflow_test

import (
	"fmt"
	"sort"

	"graphsurge/internal/dataflow"
)

// ExampleIterate computes single-source reachability differentially: after
// feeding a graph version, the fixpoint loop runs to convergence
// automatically; after feeding a change, only the affected deltas are
// reprocessed.
func ExampleIterate() {
	type edge struct{ Src, Dst uint32 }

	scope := dataflow.NewScope(1)
	edges, edgeCol := dataflow.NewInput[edge](scope)
	roots, rootCol := dataflow.NewInput[uint32](scope)

	keyed := dataflow.Map(edgeCol, func(e edge) dataflow.KV[uint32, uint32] {
		return dataflow.KV[uint32, uint32]{K: e.Src, V: e.Dst}
	})
	reached := dataflow.Iterate(rootCol, func(x *dataflow.Collection[uint32]) *dataflow.Collection[uint32] {
		asKeys := dataflow.Map(x, func(v uint32) dataflow.KV[uint32, struct{}] {
			return dataflow.KV[uint32, struct{}]{K: v}
		})
		next := dataflow.JoinMap(keyed, asKeys, func(_ uint32, dst uint32, _ struct{}) uint32 {
			return dst
		})
		return dataflow.Distinct(dataflow.Concat(next, rootCol))
	})
	out := dataflow.NewCapture(reached)

	report := func(v uint32) {
		var vs []int
		for r := range out.At(v) {
			vs = append(vs, int(r))
		}
		sort.Ints(vs)
		fmt.Println(vs)
	}

	// Version 0: a chain 1 -> 2 -> 3 and an island 8 -> 9.
	roots.SendOne(0, 1, 1)
	edges.SendAt(0, []dataflow.Update[edge]{
		{Rec: edge{1, 2}, D: 1}, {Rec: edge{2, 3}, D: 1}, {Rec: edge{8, 9}, D: 1},
	})
	scope.Drain()
	report(0)

	// Version 1: connect the island, cut the chain.
	edges.SendAt(1, []dataflow.Update[edge]{
		{Rec: edge{3, 8}, D: 1}, {Rec: edge{1, 2}, D: -1},
	})
	scope.Drain()
	report(1)

	// Output:
	// [1 2 3]
	// [1]
}
