package dataflow

import (
	"math/rand"
	"testing"
)

// buildWCCBench wires a WCC-like min-label dataflow and returns its input.
func buildWCCBench(workers int) (*Scope, *Input[edge]) {
	s := NewScope(workers)
	ei, ecol := NewInput[edge](s)
	adj := FlatMap(ecol, func(e edge, emit func(KV[uint32, uint32])) {
		emit(KV[uint32, uint32]{e.src, e.dst})
		emit(KV[uint32, uint32]{e.dst, e.src})
	})
	seeds := Distinct(FlatMap(ecol, func(e edge, emit func(KV[uint32, uint32])) {
		emit(KV[uint32, uint32]{e.src, e.src})
		emit(KV[uint32, uint32]{e.dst, e.dst})
	}))
	labels := Iterate(seeds, func(x *Collection[KV[uint32, uint32]]) *Collection[KV[uint32, uint32]] {
		msgs := JoinMap(x, adj, func(_ uint32, lab uint32, nbr uint32) KV[uint32, uint32] {
			return KV[uint32, uint32]{nbr, lab}
		})
		return ReduceMin(Concat(msgs, seeds))
	})
	NewCapture(labels)
	return s, ei
}

// BenchmarkCompactionAblation quantifies the trace-compaction design choice
// (DESIGN.md): the same 40-version differential WCC run with and without
// advancing the compaction frontier. Without compaction, per-key traces
// accumulate one generation of times per version and every reconsideration
// pays for the full history.
func BenchmarkCompactionAblation(b *testing.B) {
	run := func(b *testing.B, compact bool) {
		for i := 0; i < b.N; i++ {
			s, in := buildWCCBench(1)
			r := rand.New(rand.NewSource(7))
			var ups []Update[edge]
			for j := 0; j < 4000; j++ {
				ups = append(ups, Update[edge]{edge{uint32(r.Intn(800)), uint32(r.Intn(800))}, 1})
			}
			in.SendAt(0, ups)
			s.Drain()
			if compact {
				s.Compact(0)
			}
			for v := uint32(1); v <= 40; v++ {
				var delta []Update[edge]
				for j := 0; j < 20; j++ {
					delta = append(delta, Update[edge]{edge{uint32(r.Intn(800)), uint32(r.Intn(800))}, 1})
				}
				in.SendAt(v, delta)
				s.Drain()
				if compact {
					s.Compact(v)
				}
			}
		}
	}
	b.Run("with-compaction", func(b *testing.B) { run(b, true) })
	b.Run("no-compaction", func(b *testing.B) { run(b, false) })
}

// BenchmarkWorkerScaling measures one differential WCC version drain at
// several worker counts (wall clock is bounded by physical cores; the
// work-split metric is what Figure 10 reports).
func BenchmarkWorkerScaling(b *testing.B) {
	for _, workers := range []int{1, 2, 4} {
		b.Run(map[int]string{1: "w1", 2: "w2", 4: "w4"}[workers], func(b *testing.B) {
			s, in := buildWCCBench(workers)
			r := rand.New(rand.NewSource(7))
			var ups []Update[edge]
			for j := 0; j < 20000; j++ {
				ups = append(ups, Update[edge]{edge{uint32(r.Intn(4000)), uint32(r.Intn(4000))}, 1})
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				in.SendAt(uint32(i), ups)
				s.Drain()
				in.SendAt(uint32(i), negateUps(ups))
				s.Drain()
				s.Compact(uint32(i))
			}
		})
	}
}

func negateUps(ups []Update[edge]) []Update[edge] {
	out := make([]Update[edge], len(ups))
	for i, u := range ups {
		out[i] = Update[edge]{u.Rec, -u.D}
	}
	return out
}
