package dataflow

import (
	"testing"

	"graphsurge/internal/timestamp"
)

// collect turns a capture's cumulative state at version v into a plain map.
func resultAt[R comparable](c *Capture[R], v uint32) map[R]Diff {
	return c.At(v)
}

func TestConsolidate(t *testing.T) {
	t0 := timestamp.Outer(0)
	t1 := timestamp.Outer(1)
	in := []Delta[int]{{1, t0, 1}, {1, t0, 2}, {2, t0, 1}, {2, t0, -1}, {1, t1, 5}}
	out := Consolidate(in)
	got := make(map[deltaKey[int]]Diff)
	for _, d := range out {
		got[deltaKey[int]{d.Rec, d.T}] += d.D
	}
	if len(out) != 2 || got[deltaKey[int]{1, t0}] != 3 || got[deltaKey[int]{1, t1}] != 5 {
		t.Fatalf("Consolidate = %v", out)
	}
}

func TestMapFilterConcatNegate(t *testing.T) {
	s := NewScope(1)
	in, col := NewInput[int](s)
	doubled := Map(col, func(x int) int { return 2 * x })
	evens := Filter(doubled, func(x int) bool { return x%4 == 0 })
	both := Concat(doubled, Negate(evens))
	cap1 := NewCapture(both)

	in.SendAt(0, []Update[int]{{1, 1}, {2, 1}, {3, 1}})
	s.Drain()
	// doubled = {2,4,6}; evens = {4}; both = {2,4,6} - {4} = {2,6}
	got := resultAt(cap1, 0)
	want := map[int]Diff{2: 1, 6: 1}
	if len(got) != len(want) || got[2] != 1 || got[6] != 1 {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestFlatMap(t *testing.T) {
	s := NewScope(1)
	in, col := NewInput[int](s)
	out := FlatMap(col, func(x int, emit func(int)) {
		for i := 0; i < x; i++ {
			emit(x*10 + i)
		}
	})
	c := NewCapture(out)
	in.SendAt(0, []Update[int]{{2, 1}})
	s.Drain()
	got := resultAt(c, 0)
	if len(got) != 2 || got[20] != 1 || got[21] != 1 {
		t.Fatalf("got %v", got)
	}
}

func TestJoinIncremental(t *testing.T) {
	s := NewScope(1)
	li, l := NewInput[KV[int, string]](s)
	ri, r := NewInput[KV[int, int]](s)
	joined := JoinMap(l, r, func(k int, a string, b int) KV[int, int] {
		return KV[int, int]{k, b * len(a)}
	})
	c := NewCapture(joined)

	li.SendAt(0, []Update[KV[int, string]]{{KV[int, string]{1, "ab"}, 1}, {KV[int, string]{2, "x"}, 1}})
	ri.SendAt(0, []Update[KV[int, int]]{{KV[int, int]{1, 10}, 1}})
	s.Drain()
	got := resultAt(c, 0)
	if len(got) != 1 || got[KV[int, int]{1, 20}] != 1 {
		t.Fatalf("v0: got %v", got)
	}

	// Add a matching right record for key 2, remove key 1's left record.
	li.SendAt(1, []Update[KV[int, string]]{{KV[int, string]{1, "ab"}, -1}})
	ri.SendAt(1, []Update[KV[int, int]]{{KV[int, int]{2, 7}, 1}})
	s.Drain()
	got = resultAt(c, 1)
	if len(got) != 1 || got[KV[int, int]{2, 7}] != 1 {
		t.Fatalf("v1: got %v", got)
	}
	if n := c.DiffCount(1); n != 2 {
		t.Fatalf("v1 diff count = %d, want 2", n)
	}
}

func TestJoinMultiplicities(t *testing.T) {
	s := NewScope(1)
	li, l := NewInput[KV[int, int]](s)
	ri, r := NewInput[KV[int, int]](s)
	joined := JoinMap(l, r, func(k, a, b int) int { return k*100 + a*10 + b })
	c := NewCapture(joined)

	li.SendAt(0, []Update[KV[int, int]]{{KV[int, int]{1, 1}, 2}})
	ri.SendAt(0, []Update[KV[int, int]]{{KV[int, int]{1, 2}, 3}})
	s.Drain()
	if got := resultAt(c, 0); got[112] != 6 {
		t.Fatalf("multiplicity product: got %v", got)
	}
}

func TestReduceMinAcrossVersions(t *testing.T) {
	s := NewScope(1)
	in, col := NewInput[KV[int, int]](s)
	mins := ReduceMin(col)
	c := NewCapture(mins)

	in.SendAt(0, []Update[KV[int, int]]{{KV[int, int]{1, 5}, 1}, {KV[int, int]{1, 3}, 1}, {KV[int, int]{2, 9}, 1}})
	s.Drain()
	got := resultAt(c, 0)
	if got[KV[int, int]{1, 3}] != 1 || got[KV[int, int]{2, 9}] != 1 || len(got) != 2 {
		t.Fatalf("v0: got %v", got)
	}

	// Remove the minimum of key 1: falls back to 5.
	in.SendAt(1, []Update[KV[int, int]]{{KV[int, int]{1, 3}, -1}})
	s.Drain()
	got = resultAt(c, 1)
	if got[KV[int, int]{1, 5}] != 1 || len(got) != 2 {
		t.Fatalf("v1: got %v", got)
	}

	// Remove all of key 2: no output for it.
	in.SendAt(2, []Update[KV[int, int]]{{KV[int, int]{2, 9}, -1}})
	s.Drain()
	got = resultAt(c, 2)
	if len(got) != 1 || got[KV[int, int]{1, 5}] != 1 {
		t.Fatalf("v2: got %v", got)
	}
}

func TestReduceCountAndSum(t *testing.T) {
	s := NewScope(1)
	in, col := NewInput[KV[int, int64]](s)
	counts := ReduceCount(col)
	sums := ReduceSum(col)
	cc := NewCapture(counts)
	cs := NewCapture(sums)

	in.SendAt(0, []Update[KV[int, int64]]{{KV[int, int64]{1, 10}, 1}, {KV[int, int64]{1, 20}, 2}})
	s.Drain()
	if got := resultAt(cc, 0); got[KV[int, int64]{1, 3}] != 1 {
		t.Fatalf("count: got %v", got)
	}
	if got := resultAt(cs, 0); got[KV[int, int64]{1, 50}] != 1 {
		t.Fatalf("sum: got %v", got)
	}

	in.SendAt(1, []Update[KV[int, int64]]{{KV[int, int64]{1, 20}, -1}})
	s.Drain()
	if got := resultAt(cc, 1); got[KV[int, int64]{1, 2}] != 1 {
		t.Fatalf("count v1: got %v", got)
	}
	if got := resultAt(cs, 1); got[KV[int, int64]{1, 30}] != 1 {
		t.Fatalf("sum v1: got %v", got)
	}
}

func TestDistinct(t *testing.T) {
	s := NewScope(1)
	in, col := NewInput[int](s)
	d := Distinct(col)
	c := NewCapture(d)
	in.SendAt(0, []Update[int]{{7, 3}, {8, 1}})
	s.Drain()
	got := resultAt(c, 0)
	if got[7] != 1 || got[8] != 1 || len(got) != 2 {
		t.Fatalf("got %v", got)
	}
	in.SendAt(1, []Update[int]{{7, -3}})
	s.Drain()
	got = resultAt(c, 1)
	if len(got) != 1 || got[8] != 1 {
		t.Fatalf("v1: got %v", got)
	}
}

type edge struct{ src, dst uint32 }

// reachOracle computes forward reachability from src.
func reachOracle(edges map[edge]bool, src uint32) map[uint32]bool {
	adj := make(map[uint32][]uint32)
	for e := range edges {
		adj[e.src] = append(adj[e.src], e.dst)
	}
	seen := map[uint32]bool{src: true}
	queue := []uint32{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range adj[u] {
			if !seen[v] {
				seen[v] = true
				queue = append(queue, v)
			}
		}
	}
	return seen
}

// TestIterateReachability exercises the fixpoint loop differentially across
// versions against a from-scratch oracle.
func TestIterateReachability(t *testing.T) {
	for _, workers := range []int{1, 3} {
		s := NewScope(workers)
		ei, ecol := NewInput[edge](s)
		ri, rcol := NewInput[uint32](s)
		edgesKeyed := Map(ecol, func(e edge) KV[uint32, uint32] { return KV[uint32, uint32]{e.src, e.dst} })

		reached := Iterate(rcol, func(x *Collection[uint32]) *Collection[uint32] {
			xk := Map(x, func(v uint32) KV[uint32, struct{}] { return KV[uint32, struct{}]{v, struct{}{}} })
			next := JoinMap(edgesKeyed, xk, func(_ uint32, dst uint32, _ struct{}) uint32 { return dst })
			return Distinct(Concat(next, rcol))
		})
		c := NewCapture(reached)

		cur := map[edge]bool{}
		versionEdges := [][]Update[edge]{
			{{edge{1, 2}, 1}, {edge{2, 3}, 1}, {edge{4, 5}, 1}},
			{{edge{3, 4}, 1}},                  // connect 4,5
			{{edge{2, 3}, -1}},                 // cut the chain
			{{edge{1, 5}, 1}, {edge{5, 3}, 1}}, // reconnect around
		}
		ri.SendOne(0, 1, 1)
		for v, ups := range versionEdges {
			for _, u := range ups {
				if u.D > 0 {
					cur[u.Rec] = true
				} else {
					delete(cur, u.Rec)
				}
			}
			ei.SendAt(uint32(v), ups)
			s.Drain()
			s.checkQuiescent()

			got := resultAt(c, uint32(v))
			want := reachOracle(cur, 1)
			if len(got) != len(want) {
				t.Fatalf("workers=%d v%d: got %v want %v", workers, v, got, want)
			}
			for r := range want {
				if got[r] != 1 {
					t.Fatalf("workers=%d v%d: missing %d in %v", workers, v, r, got)
				}
			}
			s.Compact(uint32(v))
		}
		if s.IterCapHit.Load() {
			t.Fatal("iteration cap hit")
		}
	}
}

func TestIterateN(t *testing.T) {
	// Repeated doubling: start with {1}, body maps x -> x*2. After n
	// applications the accumulated result is {2^n}.
	for _, n := range []uint32{1, 2, 5} {
		s := NewScope(1)
		in, col := NewInput[int](s)
		out := IterateN(col, n, func(x *Collection[int]) *Collection[int] {
			doubled := Map(x, func(v int) KV[int, int] { return KV[int, int]{0, v * 2} })
			// Route through a reduce so the loop has a stateful operator.
			m := ReduceMin(doubled)
			return Map(m, func(kv KV[int, int]) int { return kv.V })
		})
		c := NewCapture(out)
		in.SendOne(0, 1, 1)
		s.Drain()
		got := resultAt(c, 0)
		want := 1 << n
		if len(got) != 1 || got[want] != 1 {
			t.Fatalf("n=%d: got %v want {%d:1}", n, got, want)
		}
	}
}

func TestInputVersionOrderPanics(t *testing.T) {
	s := NewScope(1)
	in, _ := NewInput[int](s)
	in.SendOne(2, 1, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on decreasing version")
		}
	}()
	in.SendOne(1, 1, 1)
}

func TestCompactPreservesResults(t *testing.T) {
	s := NewScope(1)
	in, col := NewInput[KV[int, int]](s)
	mins := ReduceMin(col)
	c := NewCapture(mins)
	in.SendAt(0, []Update[KV[int, int]]{{KV[int, int]{1, 5}, 1}})
	s.Drain()
	s.Compact(0)
	in.SendAt(1, []Update[KV[int, int]]{{KV[int, int]{1, 2}, 1}})
	s.Drain()
	s.Compact(1)
	in.SendAt(2, []Update[KV[int, int]]{{KV[int, int]{1, 2}, -1}})
	s.Drain()
	got := resultAt(c, 2)
	if len(got) != 1 || got[KV[int, int]{1, 5}] != 1 {
		t.Fatalf("got %v", got)
	}
}

func TestCaptureDrop(t *testing.T) {
	s := NewScope(1)
	in, col := NewInput[int](s)
	c := NewCapture(col)
	in.SendOne(0, 1, 1)
	s.Drain()
	in.SendOne(1, 2, 1)
	s.Drain()
	in.SendOne(2, 1, -1)
	s.Drain()
	c.Drop(2)
	got := c.At(2)
	if len(got) != 1 || got[2] != 1 {
		t.Fatalf("got %v", got)
	}
}

func TestIterCapHit(t *testing.T) {
	s := NewScope(1)
	s.MaxIter = 4
	in, col := NewInput[int](s)
	// x -> x+1 never converges.
	out := Iterate(col, func(x *Collection[int]) *Collection[int] {
		keyed := Map(x, func(v int) KV[int, int] { return KV[int, int]{v, v} })
		m := ReduceMin(keyed)
		return Map(m, func(kv KV[int, int]) int { return kv.V + 1 })
	})
	NewCapture(out)
	in.SendOne(0, 0, 1)
	s.Drain()
	if !s.IterCapHit.Load() {
		t.Fatal("expected iteration cap to be hit")
	}
}

func TestWorkCounts(t *testing.T) {
	s := NewScope(2)
	in, col := NewInput[KV[int, int]](s)
	NewCapture(ReduceMin(col))
	ups := make([]Update[KV[int, int]], 0, 100)
	for i := 0; i < 100; i++ {
		ups = append(ups, Update[KV[int, int]]{KV[int, int]{i, i}, 1})
	}
	in.SendAt(0, ups)
	s.Drain()
	counts := s.WorkCounts()
	total := int64(0)
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		t.Fatal("no work recorded")
	}
	s.ResetWork()
	for _, c := range s.WorkCounts() {
		if c != 0 {
			t.Fatal("reset failed")
		}
	}
}
