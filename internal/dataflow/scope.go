package dataflow

import (
	"fmt"
	"hash/maphash"
	"sync"
	"sync/atomic"

	"graphsurge/internal/timestamp"
)

// DefaultMaxIter is the safety cap on fixpoint iterations; exceeding it sets
// Scope.IterCapHit instead of looping forever on a diverging computation.
const DefaultMaxIter = 1 << 20

// node is one stateful operator instance in a scope's dataflow graph.
// Stateless (linear) operators are fused into subscription closures and never
// become nodes.
type node interface {
	// run processes all pending work at exactly time t on worker w. It may
	// emit deltas at times ≥ t (in the partial order).
	run(w int, t timestamp.Time)
	// hasPending reports whether worker w has work at exactly time t.
	hasPending(w int, t timestamp.Time) bool
	// minPending returns worker w's lexicographically smallest pending time.
	minPending(w int) (timestamp.Time, bool)
	// reset drops all operator state — traces, pending deltas, dirty sets —
	// without touching the dataflow wiring, returning the node to its
	// just-built condition. Implementations swap state maps for fresh ones
	// (O(1) per shard) rather than clearing in place. Only called while the
	// scope is quiescent.
	reset()
	// name identifies the operator for diagnostics.
	name() string
}

// Scope owns a dataflow graph and its multi-worker scheduler. Build the graph
// with the operator constructors (Map, JoinMap, Reduce, Iterate, ...), feed
// versions through Inputs, and call Drain to run to quiescence.
//
// A Scope is not safe for concurrent use by multiple goroutines: graph
// construction, feeding and draining must happen from one driver goroutine.
type Scope struct {
	workers int
	seed    maphash.Seed
	nodes   []node

	// MaxIter caps fixpoint iterations (safety against divergence).
	MaxIter uint32
	// IterCapHit is set if any loop exceeded MaxIter; results for that
	// version are then incomplete.
	IterCapHit atomic.Bool

	// frontier is 1 + the last fully drained version; operator traces clamp
	// historical times below it lazily, when a key is touched.
	frontier atomic.Uint32

	// onReset holds reset hooks of graph elements that are not scheduler
	// nodes (inputs); ResetState invokes them after resetting every node.
	onReset []func()

	work []paddedCounter // per-worker records processed, for scaling proxies
}

type paddedCounter struct {
	n int64
	_ [7]int64 // avoid false sharing between worker counters
}

// NewScope creates a scope with the given worker count (minimum 1).
func NewScope(workers int) *Scope {
	if workers < 1 {
		workers = 1
	}
	return &Scope{
		workers: workers,
		seed:    maphash.MakeSeed(),
		MaxIter: DefaultMaxIter,
		work:    make([]paddedCounter, workers),
	}
}

// Workers returns the number of workers in the scope.
func (s *Scope) Workers() int { return s.workers }

func (s *Scope) addNode(n node) { s.nodes = append(s.nodes, n) }

// addResetHook registers a reset function for a non-node graph element (an
// input handle). Must be called during graph construction.
func (s *Scope) addResetHook(f func()) { s.onReset = append(s.onReset, f) }

// ResetState returns the scope to its just-built condition in place: every
// stateful operator drops its traces and pending work, inputs forget their
// version cursor, the compaction frontier rewinds, the iteration-cap flag
// and work counters zero. The dataflow graph itself — nodes, subscriptions,
// fused closures, worker shards — is untouched, so a reset scope re-executes
// from scratch without paying graph construction again; the cost is a few
// map allocations per operator, independent of how much state the previous
// run accumulated.
//
// Must be called from the driver goroutine while the scope is quiescent
// (after Drain); resetting with work in flight would discard deltas
// mid-computation.
func (s *Scope) ResetState() {
	for _, n := range s.nodes {
		n.reset()
	}
	for _, f := range s.onReset {
		f()
	}
	s.frontier.Store(0)
	s.IterCapHit.Store(false)
	s.ResetWork()
}

func (s *Scope) addWork(w int, n int) { s.work[w].n += int64(n) }

// WorkCounts returns per-worker counts of records processed by stateful
// operators since the last ResetWork. The maximum over workers is the
// critical-path proxy used by the scalability experiment.
func (s *Scope) WorkCounts() []int64 {
	out := make([]int64, s.workers)
	for w := range out {
		out[w] = s.work[w].n
	}
	return out
}

// ResetWork zeroes the per-worker work counters.
func (s *Scope) ResetWork() {
	for w := range s.work {
		s.work[w].n = 0
	}
}

// partition returns the worker owning a key.
func partition[K comparable](s *Scope, k K) int {
	if s.workers == 1 {
		return 0
	}
	return int(maphash.Comparable(s.seed, k) % uint64(s.workers))
}

// minPendingTime scans all nodes and workers for the smallest pending time.
// Only called while workers are idle.
func (s *Scope) minPendingTime() (timestamp.Time, bool) {
	var best timestamp.Time
	found := false
	for _, n := range s.nodes {
		for w := 0; w < s.workers; w++ {
			if t, ok := n.minPending(w); ok && (!found || t.LexLess(best)) {
				best, found = t, true
			}
		}
	}
	return best, found
}

// Drain processes all outstanding work, in lexicographic time order, until
// the scope is quiescent. Call after feeding inputs for a version.
func (s *Scope) Drain() {
	for {
		t, ok := s.minPendingTime()
		if !ok {
			return
		}
		s.drainTime(t)
	}
}

// drainTime runs rounds of worker-parallel processing at exactly time t until
// no node on any worker has pending work at t. Cross-worker deliveries made
// during a round are observed in the next round (the post-barrier check).
func (s *Scope) drainTime(t timestamp.Time) {
	if s.workers == 1 {
		for {
			progress := false
			for _, n := range s.nodes {
				if n.hasPending(0, t) {
					n.run(0, t)
					progress = true
				}
			}
			if !progress {
				return
			}
		}
	}
	for {
		var wg sync.WaitGroup
		for w := 0; w < s.workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for {
					progress := false
					for _, n := range s.nodes {
						if n.hasPending(w, t) {
							n.run(w, t)
							progress = true
						}
					}
					if !progress {
						return
					}
				}
			}(w)
		}
		wg.Wait()
		still := false
	check:
		for _, n := range s.nodes {
			for w := 0; w < s.workers; w++ {
				if n.hasPending(w, t) {
					still = true
					break check
				}
			}
		}
		if !still {
			return
		}
	}
}

// Compact marks all versions ≤ outer as complete: historical trace times
// with Outer < outer may be clamped to outer and merged. Sound once all
// future work happens at versions > outer, i.e. call it after draining
// version outer and before feeding version outer+1. This is the analogue of
// Differential Dataflow's arrangement compaction and keeps per-key trace
// sizes proportional to the number of distinct iteration depths rather than
// the number of views.
//
// Compaction is lazy: this call only advances the frontier; stateful
// operators clamp and merge a key's history the next time the key is
// touched, so quiescent keys cost nothing per version.
func (s *Scope) Compact(outer uint32) {
	for {
		cur := s.frontier.Load()
		if outer+1 <= cur || s.frontier.CompareAndSwap(cur, outer+1) {
			return
		}
	}
}

// compactionOuter returns the outer coordinate traces may clamp to, and
// whether any compaction has been requested.
func (s *Scope) compactionOuter() (uint32, bool) {
	f := s.frontier.Load()
	if f == 0 {
		return 0, false
	}
	return f - 1, true
}

// checkQuiescent panics if any pending work remains; used by tests.
func (s *Scope) checkQuiescent() {
	if t, ok := s.minPendingTime(); ok {
		panic(fmt.Sprintf("dataflow: scope not quiescent, pending work at %v", t))
	}
}
