package dataflow

// Linear operators are fused: they transform delta batches inline inside
// subscription closures and never materialize state or become scheduler
// nodes. This mirrors how Timely/Differential pipelines fuse map/filter
// chains between exchanges.

// Map applies f to every record, preserving times and diffs.
func Map[A comparable, B comparable](in *Collection[A], f func(A) B) *Collection[B] {
	out := newCollection[B](in.s)
	in.subscribe(func(w int, batch []Delta[A]) {
		ob := make([]Delta[B], len(batch))
		for i, d := range batch {
			ob[i] = Delta[B]{f(d.Rec), d.T, d.D}
		}
		out.emit(w, Consolidate(ob))
	})
	return out
}

// Filter keeps records satisfying pred.
func Filter[R comparable](in *Collection[R], pred func(R) bool) *Collection[R] {
	out := newCollection[R](in.s)
	in.subscribe(func(w int, batch []Delta[R]) {
		ob := make([]Delta[R], 0, len(batch))
		for _, d := range batch {
			if pred(d.Rec) {
				ob = append(ob, d)
			}
		}
		out.emit(w, ob)
	})
	return out
}

// FlatMap applies f to every record; f calls emit zero or more times per
// record. Each emitted record inherits the input's time and diff.
func FlatMap[A comparable, B comparable](in *Collection[A], f func(rec A, emit func(B))) *Collection[B] {
	out := newCollection[B](in.s)
	in.subscribe(func(w int, batch []Delta[A]) {
		ob := make([]Delta[B], 0, len(batch))
		for _, d := range batch {
			f(d.Rec, func(b B) {
				ob = append(ob, Delta[B]{b, d.T, d.D})
			})
		}
		out.emit(w, Consolidate(ob))
	})
	return out
}

// Concat merges two streams (multiset union).
func Concat[R comparable](a, b *Collection[R]) *Collection[R] {
	out := newCollection[R](a.s)
	fwd := func(w int, batch []Delta[R]) { out.emit(w, batch) }
	a.subscribe(fwd)
	b.subscribe(fwd)
	return out
}

// ConcatAll merges any number of streams.
func ConcatAll[R comparable](cols ...*Collection[R]) *Collection[R] {
	out := newCollection[R](cols[0].s)
	fwd := func(w int, batch []Delta[R]) { out.emit(w, batch) }
	for _, c := range cols {
		c.subscribe(fwd)
	}
	return out
}

// Negate flips the sign of every diff (multiset negation).
func Negate[R comparable](in *Collection[R]) *Collection[R] {
	out := newCollection[R](in.s)
	in.subscribe(func(w int, batch []Delta[R]) {
		ob := make([]Delta[R], len(batch))
		for i, d := range batch {
			ob[i] = Delta[R]{d.Rec, d.T, -d.D}
		}
		out.emit(w, ob)
	})
	return out
}

// Inspect invokes f on every delta flowing through, for debugging, and
// forwards the stream unchanged.
func Inspect[R comparable](in *Collection[R], f func(Delta[R])) *Collection[R] {
	out := newCollection[R](in.s)
	in.subscribe(func(w int, batch []Delta[R]) {
		for _, d := range batch {
			f(d)
		}
		out.emit(w, batch)
	})
	return out
}
