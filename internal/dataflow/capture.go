package dataflow

import (
	"graphsurge/internal/timestamp"
)

// Capture is a sink that accumulates a stream's deltas grouped by version
// (the Outer time coordinate), consolidating over iterations. It answers two
// questions the Graphsurge executor needs after each view: what changed at
// this version (VersionDiff), and what is the full result now (At).
//
// Read methods must only be called while the scope is quiescent (after
// Drain).
type Capture[R comparable] struct {
	s  *Scope
	p  *pendings[R]
	st []map[uint32]map[R]Diff // per worker, by version
}

// NewCapture attaches a capture sink to a collection.
func NewCapture[R comparable](in *Collection[R]) *Capture[R] {
	s := in.s
	c := &Capture[R]{
		s:  s,
		p:  newPendings[R](s.workers),
		st: make([]map[uint32]map[R]Diff, s.workers),
	}
	for w := 0; w < s.workers; w++ {
		c.st[w] = make(map[uint32]map[R]Diff)
	}
	in.subscribe(localSubscriber(c.p))
	s.addNode(c)
	return c
}

func (c *Capture[R]) name() string { return "capture" }

func (c *Capture[R]) run(w int, t timestamp.Time) {
	batch := c.p.take(w, t)
	if len(batch) == 0 {
		return
	}
	byv := c.st[w][t.Outer]
	if byv == nil {
		byv = make(map[R]Diff)
		c.st[w][t.Outer] = byv
	}
	for _, d := range batch {
		nd := byv[d.Rec] + d.D
		if nd == 0 {
			delete(byv, d.Rec)
		} else {
			byv[d.Rec] = nd
		}
	}
}

// reset discards the accumulated output history on every worker by swapping
// in fresh version maps.
func (c *Capture[R]) reset() {
	c.p.reset()
	for w := range c.st {
		c.st[w] = make(map[uint32]map[R]Diff)
	}
}

func (c *Capture[R]) hasPending(w int, t timestamp.Time) bool { return c.p.has(w, t) }

func (c *Capture[R]) minPending(w int) (timestamp.Time, bool) { return c.p.min(w) }

// VersionDiff returns the consolidated output difference set of version v:
// how the result multiset changed relative to version v−1.
func (c *Capture[R]) VersionDiff(v uint32) map[R]Diff {
	out := make(map[R]Diff)
	for w := range c.st {
		for r, d := range c.st[w][v] {
			nd := out[r] + d
			if nd == 0 {
				delete(out, r)
			} else {
				out[r] = nd
			}
		}
	}
	return out
}

// DiffCount returns the number of records whose multiplicity changed at
// version v (the size of the output difference set, the paper's |δ output|).
func (c *Capture[R]) DiffCount(v uint32) int {
	n := 0
	seen := make(map[R]Diff)
	for w := range c.st {
		for r, d := range c.st[w][v] {
			seen[r] += d
		}
	}
	for _, d := range seen {
		if d != 0 {
			n++
		}
	}
	return n
}

// At returns the accumulated result multiset at version v: the sum of all
// difference sets for versions ≤ v.
func (c *Capture[R]) At(v uint32) map[R]Diff {
	out := make(map[R]Diff)
	for w := range c.st {
		for ver, byv := range c.st[w] {
			if ver > v {
				continue
			}
			for r, d := range byv {
				nd := out[r] + d
				if nd == 0 {
					delete(out, r)
				} else {
					out[r] = nd
				}
			}
		}
	}
	return out
}

// Versions returns all versions with a nonempty difference set.
func (c *Capture[R]) Versions() []uint32 {
	seen := make(map[uint32]struct{})
	for w := range c.st {
		for ver := range c.st[w] {
			seen[ver] = struct{}{}
		}
	}
	out := make([]uint32, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	return out
}

// Drop folds difference sets for versions < v into version v, bounding
// memory during long collection runs. At(x) for x ≥ v and VersionDiff(x) for
// x > v are unaffected; finer-grained history below v is lost.
func (c *Capture[R]) Drop(v uint32) {
	for w := range c.st {
		var base map[R]Diff
		for ver, byv := range c.st[w] {
			if ver >= v {
				continue
			}
			if base == nil {
				base = c.st[w][v]
				if base == nil {
					base = make(map[R]Diff)
					c.st[w][v] = base
				}
			}
			for r, d := range byv {
				nd := base[r] + d
				if nd == 0 {
					delete(base, r)
				} else {
					base[r] = nd
				}
			}
			delete(c.st[w], ver)
		}
	}
}
