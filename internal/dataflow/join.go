package dataflow

import (
	"graphsurge/internal/timestamp"
)

// joinNode implements the bilinear differential join. A delta arriving at
// time a on one side pairs with every stored delta at time b on the other
// side, emitting at Join(a, b) with multiplied diffs; each (δA, δB) pair is
// counted exactly once because whichever delta is processed later does the
// pairing against the stored history of the other side.
// trace is one key's history on one side of a join.
type trace[V comparable] struct {
	list []vtd[V]
	adv  uint32 // 1 + the outer coordinate last advanced to
}

// advance lazily compacts the trace to the compaction frontier.
func (tr *trace[V]) advance(outer uint32) {
	if tr.adv >= outer+1 {
		return
	}
	tr.adv = outer + 1
	if l, changed := advanceVTD(tr.list, outer); changed {
		tr.list = l
	}
}

type joinNode[K comparable, A comparable, B comparable, O comparable] struct {
	s   *Scope
	out *Collection[O]
	f   func(K, A, B) O

	pl *pendings[KV[K, A]]
	pr *pendings[KV[K, B]]

	left  []map[K]*trace[A] // per-worker traces
	right []map[K]*trace[B]
}

// JoinMap joins two keyed streams, emitting f(k, a, b) for every matching
// pair. It is the engine's equivalent of DD's join_map and the JoinMsg
// operator in the paper's Bellman-Ford dataflow (Figure 2).
func JoinMap[K comparable, A comparable, B comparable, O comparable](
	l *Collection[KV[K, A]], r *Collection[KV[K, B]], f func(K, A, B) O,
) *Collection[O] {
	s := l.s
	n := &joinNode[K, A, B, O]{
		s:     s,
		out:   newCollection[O](s),
		f:     f,
		pl:    newPendings[KV[K, A]](s.workers),
		pr:    newPendings[KV[K, B]](s.workers),
		left:  make([]map[K]*trace[A], s.workers),
		right: make([]map[K]*trace[B], s.workers),
	}
	for w := 0; w < s.workers; w++ {
		n.left[w] = make(map[K]*trace[A])
		n.right[w] = make(map[K]*trace[B])
	}
	l.subscribe(keyedSubscriber(s, n.pl))
	r.subscribe(keyedSubscriber(s, n.pr))
	s.addNode(n)
	return n.out
}

// Semijoin keeps the (k, v) pairs of l whose key appears in the set r,
// multiplied by r's multiplicities (r should carry multiplicity one per key,
// e.g. a Distinct output).
func Semijoin[K comparable, V comparable](l *Collection[KV[K, V]], r *Collection[KV[K, struct{}]]) *Collection[KV[K, V]] {
	return JoinMap(l, r, func(k K, v V, _ struct{}) KV[K, V] { return KV[K, V]{k, v} })
}

// Antijoin keeps the (k, v) pairs of l whose key does NOT appear in the set
// r: l ⊖ (l ⋉ r). r must carry multiplicity one per present key (e.g. a
// DistinctKeys output), so the subtraction cancels exactly.
func Antijoin[K comparable, V comparable](l *Collection[KV[K, V]], r *Collection[KV[K, struct{}]]) *Collection[KV[K, V]] {
	return Concat(l, Negate(Semijoin(l, r)))
}

func (n *joinNode[K, A, B, O]) name() string { return "join" }

func (n *joinNode[K, A, B, O]) run(w int, t timestamp.Time) {
	lb := n.pl.take(w, t)
	rb := n.pr.take(w, t)
	if len(lb) == 0 && len(rb) == 0 {
		return
	}
	left, right := n.left[w], n.right[w]
	outer, compacting := n.s.compactionOuter()
	getL := func(k K) *trace[A] {
		tr := left[k]
		if tr == nil {
			tr = &trace[A]{}
			left[k] = tr
		}
		if compacting {
			tr.advance(outer)
		}
		return tr
	}
	getR := func(k K) *trace[B] {
		tr := right[k]
		if tr == nil {
			tr = &trace[B]{}
			right[k] = tr
		}
		if compacting {
			tr.advance(outer)
		}
		return tr
	}
	var ob []Delta[O]
	pairs := 0
	// New left deltas pair against the stored right history (which does not
	// yet include this round's right batch).
	for _, d := range lb {
		k := d.Rec.K
		for _, e := range getR(k).list {
			ob = append(ob, Delta[O]{n.f(k, d.Rec.V, e.v), t.Join(e.t), d.D * e.d})
			pairs++
		}
	}
	for _, d := range lb {
		k := d.Rec.K
		tr := getL(k)
		tr.list = append(tr.list, vtd[A]{d.Rec.V, t, d.D})
	}
	// New right deltas pair against the full left history, including this
	// round's left batch, so each (δL, δR) pair is counted exactly once.
	for _, d := range rb {
		k := d.Rec.K
		for _, e := range getL(k).list {
			ob = append(ob, Delta[O]{n.f(k, e.v, d.Rec.V), t.Join(e.t), e.d * d.D})
			pairs++
		}
	}
	for _, d := range rb {
		k := d.Rec.K
		tr := getR(k)
		tr.list = append(tr.list, vtd[B]{d.Rec.V, t, d.D})
	}
	n.s.addWork(w, len(lb)+len(rb)+pairs)
	n.out.emit(w, Consolidate(ob))
}

// reset drops both sides' traces by swapping in fresh per-worker maps —
// O(1) per worker regardless of accumulated trace size.
func (n *joinNode[K, A, B, O]) reset() {
	n.pl.reset()
	n.pr.reset()
	for w := range n.left {
		n.left[w] = make(map[K]*trace[A])
		n.right[w] = make(map[K]*trace[B])
	}
}

func (n *joinNode[K, A, B, O]) hasPending(w int, t timestamp.Time) bool {
	return n.pl.has(w, t) || n.pr.has(w, t)
}

func (n *joinNode[K, A, B, O]) minPending(w int) (timestamp.Time, bool) {
	lt, lok := n.pl.min(w)
	rt, rok := n.pr.min(w)
	switch {
	case lok && rok:
		if lt.LexLess(rt) {
			return lt, true
		}
		return rt, true
	case lok:
		return lt, true
	case rok:
		return rt, true
	}
	return timestamp.Time{}, false
}
