package dataflow

import (
	"graphsurge/internal/arrange"
	"graphsurge/internal/timestamp"
)

// joinNode implements the bilinear differential join. A delta arriving at
// time a on one side pairs with every stored delta at time b on the other
// side, emitting at Join(a, b) with multiplied diffs; each (δA, δB) pair is
// counted exactly once because whichever delta is processed later does the
// pairing against the stored history of the other side.
//
// Each side's history is an arrangement (internal/arrange): sorted columnar
// batches plus a bounded stage, per worker. Lookups binary-search the
// batches; compaction happens lazily when batches merge, clamping times
// below the scope's frontier exactly as the old per-key traces did — batch
// entries may therefore be clamped while stage entries are raw, which is
// indistinguishable to the join since it only Joins against times at or
// above the frontier.
type joinNode[K comparable, A comparable, B comparable, O comparable] struct {
	s   *Scope
	out *Collection[O]
	f   func(K, A, B) O

	pl *pendings[KV[K, A]]
	pr *pendings[KV[K, B]]

	left  []*arrange.Trace[K, A] // per-worker arrangements
	right []*arrange.Trace[K, B]
}

// JoinMap joins two keyed streams, emitting f(k, a, b) for every matching
// pair. It is the engine's equivalent of DD's join_map and the JoinMsg
// operator in the paper's Bellman-Ford dataflow (Figure 2).
func JoinMap[K comparable, A comparable, B comparable, O comparable](
	l *Collection[KV[K, A]], r *Collection[KV[K, B]], f func(K, A, B) O,
) *Collection[O] {
	s := l.s
	n := &joinNode[K, A, B, O]{
		s:     s,
		out:   newCollection[O](s),
		f:     f,
		pl:    newPendings[KV[K, A]](s.workers),
		pr:    newPendings[KV[K, B]](s.workers),
		left:  make([]*arrange.Trace[K, A], s.workers),
		right: make([]*arrange.Trace[K, B], s.workers),
	}
	for w := 0; w < s.workers; w++ {
		n.left[w] = arrange.NewTrace[K, A]()
		n.right[w] = arrange.NewTrace[K, B]()
	}
	l.subscribe(keyedSubscriber(s, n.pl))
	r.subscribe(keyedSubscriber(s, n.pr))
	s.addNode(n)
	return n.out
}

// Semijoin keeps the (k, v) pairs of l whose key appears in the set r,
// multiplied by r's multiplicities (r should carry multiplicity one per key,
// e.g. a Distinct output).
func Semijoin[K comparable, V comparable](l *Collection[KV[K, V]], r *Collection[KV[K, struct{}]]) *Collection[KV[K, V]] {
	return JoinMap(l, r, func(k K, v V, _ struct{}) KV[K, V] { return KV[K, V]{k, v} })
}

// Antijoin keeps the (k, v) pairs of l whose key does NOT appear in the set
// r: l ⊖ (l ⋉ r). r must carry multiplicity one per present key (e.g. a
// DistinctKeys output), so the subtraction cancels exactly.
func Antijoin[K comparable, V comparable](l *Collection[KV[K, V]], r *Collection[KV[K, struct{}]]) *Collection[KV[K, V]] {
	return Concat(l, Negate(Semijoin(l, r)))
}

func (n *joinNode[K, A, B, O]) name() string { return "join" }

func (n *joinNode[K, A, B, O]) run(w int, t timestamp.Time) {
	lb := n.pl.take(w, t)
	rb := n.pr.take(w, t)
	if len(lb) == 0 && len(rb) == 0 {
		return
	}
	left, right := n.left[w], n.right[w]
	if outer, compacting := n.s.compactionOuter(); compacting {
		left.Advance(outer)
		right.Advance(outer)
	}
	var ob []Delta[O]
	pairs := 0
	// New left deltas pair against the stored right history (which does not
	// yet include this round's right batch).
	for _, d := range lb {
		k, dd := d.Rec.K, d.D
		av := d.Rec.V
		pairs += right.Key(k, func(v B, et timestamp.Time, ed int64) {
			ob = append(ob, Delta[O]{n.f(k, av, v), t.Join(et), dd * ed})
		})
	}
	for _, d := range lb {
		left.Append(d.Rec.K, d.Rec.V, t, d.D)
	}
	// New right deltas pair against the full left history, including this
	// round's left batch, so each (δL, δR) pair is counted exactly once.
	for _, d := range rb {
		k, dd := d.Rec.K, d.D
		bv := d.Rec.V
		pairs += left.Key(k, func(v A, et timestamp.Time, ed int64) {
			ob = append(ob, Delta[O]{n.f(k, v, bv), t.Join(et), ed * dd})
		})
	}
	for _, d := range rb {
		right.Append(d.Rec.K, d.Rec.V, t, d.D)
	}
	n.s.addWork(w, len(lb)+len(rb)+pairs)
	n.out.emit(w, Consolidate(ob))
}

// reset drops both sides' arrangements by releasing their batch stacks by
// reference — O(1) per worker regardless of accumulated trace size, without
// even the map re-allocation the old per-key traces paid.
func (n *joinNode[K, A, B, O]) reset() {
	n.pl.reset()
	n.pr.reset()
	for w := range n.left {
		n.left[w].Reset()
		n.right[w].Reset()
	}
}

func (n *joinNode[K, A, B, O]) hasPending(w int, t timestamp.Time) bool {
	return n.pl.has(w, t) || n.pr.has(w, t)
}

func (n *joinNode[K, A, B, O]) minPending(w int) (timestamp.Time, bool) {
	lt, lok := n.pl.min(w)
	rt, rok := n.pr.min(w)
	switch {
	case lok && rok:
		if lt.LexLess(rt) {
			return lt, true
		}
		return rt, true
	case lok:
		return lt, true
	case rok:
		return rt, true
	}
	return timestamp.Time{}, false
}
