package dataflow

import (
	"sync"

	"graphsurge/internal/timestamp"
)

// pendings buffers undelivered deltas for one operator input, sharded per
// worker and grouped by timestamp. Producers on any worker may push into any
// shard (guarded by a per-shard mutex); only the owning worker drains it.
type pendings[R comparable] struct {
	mu []sync.Mutex
	q  []map[timestamp.Time][]Delta[R]
}

func newPendings[R comparable](workers int) *pendings[R] {
	p := &pendings[R]{
		mu: make([]sync.Mutex, workers),
		q:  make([]map[timestamp.Time][]Delta[R], workers),
	}
	for w := range p.q {
		p.q[w] = make(map[timestamp.Time][]Delta[R])
	}
	return p
}

// push appends a batch to worker w's shard, grouping by each delta's time.
// Zero diffs are dropped.
func (p *pendings[R]) push(w int, batch []Delta[R]) {
	if len(batch) == 0 {
		return
	}
	p.mu[w].Lock()
	q := p.q[w]
	for _, d := range batch {
		if d.D == 0 {
			continue
		}
		q[d.T] = append(q[d.T], d)
	}
	p.mu[w].Unlock()
}

// take removes and returns the consolidated batch at time t on worker w.
func (p *pendings[R]) take(w int, t timestamp.Time) []Delta[R] {
	p.mu[w].Lock()
	b := p.q[w][t]
	delete(p.q[w], t)
	p.mu[w].Unlock()
	return Consolidate(b)
}

func (p *pendings[R]) has(w int, t timestamp.Time) bool {
	p.mu[w].Lock()
	_, ok := p.q[w][t]
	p.mu[w].Unlock()
	return ok
}

// reset drops all buffered deltas on every shard. Shards are replaced with
// fresh empty maps rather than cleared in place: clear() walks every bucket
// a map ever grew, so on a shard that once held a large view it costs more
// than the graph construction a reset is meant to avoid.
func (p *pendings[R]) reset() {
	for w := range p.q {
		p.mu[w].Lock()
		p.q[w] = make(map[timestamp.Time][]Delta[R])
		p.mu[w].Unlock()
	}
}

// min returns the lexicographically smallest pending time on worker w.
func (p *pendings[R]) min(w int) (timestamp.Time, bool) {
	p.mu[w].Lock()
	defer p.mu[w].Unlock()
	var best timestamp.Time
	found := false
	for t := range p.q[w] {
		if !found || t.LexLess(best) {
			best, found = t, true
		}
	}
	return best, found
}
