package dataflow

import (
	"sync"

	"graphsurge/internal/arrange"
	"graphsurge/internal/timestamp"
)

// pendings buffers undelivered deltas for one operator input, sharded per
// worker and grouped by timestamp. Producers on any worker may push into any
// shard (guarded by a per-shard mutex); only the owning worker drains it.
// Each shard is a columnar arrange.Queue: buckets keep their records and
// diffs as parallel columns sorted by time, so min is O(1) instead of a map
// scan and reset releases the columns by reference.
type pendings[R comparable] struct {
	mu []sync.Mutex
	q  []arrange.Queue[R]
}

func newPendings[R comparable](workers int) *pendings[R] {
	return &pendings[R]{
		mu: make([]sync.Mutex, workers),
		q:  make([]arrange.Queue[R], workers),
	}
}

// push appends a batch to worker w's shard, grouping by each delta's time.
// Zero diffs are dropped (inside Queue.Push).
func (p *pendings[R]) push(w int, batch []Delta[R]) {
	if len(batch) == 0 {
		return
	}
	p.mu[w].Lock()
	for _, d := range batch {
		p.q[w].Push(d.Rec, d.T, d.D)
	}
	p.mu[w].Unlock()
}

// take removes and returns the consolidated batch at time t on worker w.
func (p *pendings[R]) take(w int, t timestamp.Time) []Delta[R] {
	p.mu[w].Lock()
	recs, diffs := p.q[w].Take(t)
	p.mu[w].Unlock()
	if len(recs) == 0 {
		return nil
	}
	b := make([]Delta[R], len(recs))
	for i, r := range recs {
		b[i] = Delta[R]{r, t, diffs[i]}
	}
	return Consolidate(b)
}

func (p *pendings[R]) has(w int, t timestamp.Time) bool {
	p.mu[w].Lock()
	ok := p.q[w].Has(t)
	p.mu[w].Unlock()
	return ok
}

// reset drops all buffered deltas on every shard by releasing the queue
// columns by reference — O(1) per shard regardless of how much a shard ever
// buffered, with the old columns left to the GC.
func (p *pendings[R]) reset() {
	for w := range p.q {
		p.mu[w].Lock()
		p.q[w].Reset()
		p.mu[w].Unlock()
	}
}

// min returns the lexicographically smallest pending time on worker w.
func (p *pendings[R]) min(w int) (timestamp.Time, bool) {
	p.mu[w].Lock()
	t, ok := p.q[w].Min()
	p.mu[w].Unlock()
	return t, ok
}
