package dataflow

import (
	"hash/maphash"

	"graphsurge/internal/timestamp"
)

// Input is a handle for feeding updates into a dataflow graph. Each call to
// SendAt introduces the updates at time (version, 0); the driver then calls
// Scope.Drain to process them. Versions must be fed in nondecreasing order —
// the engine's lexicographic scheduler relies on it.
type Input[R comparable] struct {
	s    *Scope
	col  *Collection[R]
	last uint32
	fed  bool
}

// NewInput creates an input and the collection carrying its updates.
func NewInput[R comparable](s *Scope) (*Input[R], *Collection[R]) {
	col := newCollection[R](s)
	in := &Input[R]{s: s, col: col}
	// Inputs are not scheduler nodes, so Scope.ResetState rewinds their
	// version cursor through a hook.
	s.addResetHook(func() { in.last, in.fed = 0, false })
	return in, col
}

// Collection returns the stream fed by this input.
func (in *Input[R]) Collection() *Collection[R] { return in.col }

// SendAt introduces updates at version v. Updates are spread across workers
// by record hash so stateless operator chains run in parallel; keyed
// operators re-route by key regardless.
func (in *Input[R]) SendAt(v uint32, ups []Update[R]) {
	if in.fed && v < in.last {
		panic("dataflow: input versions must be fed in nondecreasing order")
	}
	in.last, in.fed = v, true
	if len(ups) == 0 {
		return
	}
	t := timestamp.Outer(v)
	w := in.s.workers
	if w == 1 {
		batch := make([]Delta[R], 0, len(ups))
		for _, u := range ups {
			batch = append(batch, Delta[R]{u.Rec, t, u.D})
		}
		in.col.emit(0, batch)
		return
	}
	parts := make([][]Delta[R], w)
	for _, u := range ups {
		tw := int(maphash.Comparable(in.s.seed, u.Rec) % uint64(w))
		parts[tw] = append(parts[tw], Delta[R]{u.Rec, t, u.D})
	}
	for tw, pb := range parts {
		in.col.emit(tw, pb)
	}
}

// SendOne introduces a single update at version v.
func (in *Input[R]) SendOne(v uint32, rec R, d Diff) {
	in.SendAt(v, []Update[R]{{rec, d}})
}
