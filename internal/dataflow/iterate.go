package dataflow

import (
	"graphsurge/internal/timestamp"
)

// delayNode advances each delta by one iteration and feeds it into a target
// collection. It is the feedback edge of a loop: making it a scheduler node
// (rather than a fused closure) guarantees the cycle always yields to the
// scheduler, which processes iterations in order.
type delayNode[R comparable] struct {
	s      *Scope
	target *Collection[R]
	p      *pendings[R]
	// cut, when non-zero, drops deltas whose advanced Inner would exceed it
	// (fixed-iteration loops). Zero means run to fixpoint, bounded only by
	// Scope.MaxIter.
	cut uint32
}

func (n *delayNode[R]) name() string { return "delay" }

func (n *delayNode[R]) run(w int, t timestamp.Time) {
	batch := n.p.take(w, t)
	if len(batch) == 0 {
		return
	}
	limit := n.cut
	if limit == 0 {
		limit = n.s.MaxIter
		if t.Inner+1 > limit {
			n.s.IterCapHit.Store(true)
			return
		}
	} else if t.Inner+1 > limit {
		return
	}
	for i := range batch {
		batch[i].T = batch[i].T.Step()
	}
	n.target.emit(w, batch)
}

// reset drops any buffered feedback deltas; the loop's wiring (and its
// iteration cut) is structural and survives.
func (n *delayNode[R]) reset() { n.p.reset() }

func (n *delayNode[R]) hasPending(w int, t timestamp.Time) bool { return n.p.has(w, t) }

func (n *delayNode[R]) minPending(w int) (timestamp.Time, bool) { return n.p.min(w) }

// Iterate runs body to fixpoint within each version and returns the loop's
// result stream.
//
// It wires the differential variable X = I ⊕ delay(N) ⊖ delay(I), where I is
// the initial collection and N = body(X): cumulatively X at iteration i
// equals N at iteration i−1, so the loop computes N = body^i(I) until the
// deltas circulating through the feedback edge cancel out — automatic
// fixpoint detection, exactly as in Differential Dataflow. The result keeps
// its (version, iteration) times; consolidating over iterations (as Capture
// does) yields the per-version fixpoint.
//
// Several Iterate loops may be chained sequentially in one scope: they share
// the iteration coordinate, which changes the schedule but not the quiescent
// state, since differential operator equations hold at every time
// regardless. Body must contain at least one stateful operator (Reduce),
// which every converging fixpoint needs anyway.
func Iterate[R comparable](initial *Collection[R], body func(*Collection[R]) *Collection[R]) *Collection[R] {
	return iterate(initial, 0, body)
}

// IterateN runs exactly n applications of body per version (no fixpoint
// test), e.g. a fixed number of PageRank iterations. The result consolidates
// to body^n(I) at each version; differential sharing across versions still
// applies.
func IterateN[R comparable](initial *Collection[R], n uint32, body func(*Collection[R]) *Collection[R]) *Collection[R] {
	if n == 0 {
		return initial
	}
	if n == 1 {
		// A single application needs no feedback: X = I, N = body(I).
		return body(initial)
	}
	// delay forwards deltas with advanced Inner ≤ n−1, so the accumulated
	// result is body^n(I).
	return iterate(initial, n-1, body)
}

func iterate[R comparable](initial *Collection[R], cut uint32, body func(*Collection[R]) *Collection[R]) *Collection[R] {
	s := initial.s
	x := newCollection[R](s)
	delay := &delayNode[R]{s: s, target: x, p: newPendings[R](s.workers), cut: cut}
	s.addNode(delay)

	// X receives I directly...
	initial.subscribe(func(w int, batch []Delta[R]) { x.emit(w, batch) })
	// ...and −I through the delay,
	initial.subscribe(func(w int, batch []Delta[R]) {
		nb := make([]Delta[R], len(batch))
		for i, d := range batch {
			nb[i] = Delta[R]{d.Rec, d.T, -d.D}
		}
		delay.p.push(w, nb)
	})
	// ...and +N through the delay.
	n := body(x)
	n.subscribe(func(w int, batch []Delta[R]) { delay.p.push(w, batch) })
	return n
}
