// Package dataflow implements a multi-worker differential computation engine,
// the Go equivalent of the Timely Dataflow + Differential Dataflow substrate
// that Graphsurge is built on.
//
// Every stream is a multiset of (record, time, diff) updates with times drawn
// from the product lattice (version, iteration) (package timestamp). The
// engine maintains, for every operator and every time t, the invariant that
// the accumulated output Σ_{s≤t} δout_s equals the operator applied to the
// accumulated input Σ_{s≤t} δin_s. Linear operators (Map, Filter, FlatMap,
// Concat, Negate) transform deltas directly; Join is bilinear and pairs
// deltas across sides at the lattice join of their times; Reduce keeps per-key
// input/output histories and emits corrections at the join-closure of the
// key's times; Iterate builds the differential feedback loop
// X = I ⊕ delay(N) ⊖ delay(I) and runs to fixpoint, detected automatically by
// quiescence.
//
// Scheduling is a deliberate simplification of Timely's distributed progress
// tracking, sound for Graphsurge's batch-synchronous usage (one view version
// at a time): pending work is processed in lexicographic time order, a linear
// extension of the partial order, and every operator only emits at times ≥
// the time being processed, so all inputs at s ≤ t are present before any
// work at t is finalized.
//
// A Scope runs W workers. Keyed operators shard their state by key hash and
// route deltas to the owning worker; execution proceeds in rounds per
// timestamp with barriers until global quiescence, the moral equivalent of
// Timely workers exchanging data over channels.
package dataflow

import (
	"graphsurge/internal/timestamp"
)

// Diff is the signed multiplicity of a record update. Negative diffs are
// deletions.
type Diff = int64

// Delta is one update to a stream: record r changed by multiplicity D at
// logical time T.
type Delta[R comparable] struct {
	Rec R
	T   timestamp.Time
	D   Diff
}

// KV is a keyed record, the input shape of Join and Reduce.
type KV[K comparable, V comparable] struct {
	K K
	V V
}

// Update is a record-multiplicity pair without a time, used when feeding
// inputs (the time is supplied by the version being fed).
type Update[R comparable] struct {
	Rec R
	D   Diff
}

// VD is a value-multiplicity pair, the consolidated input handed to Reduce
// functions.
type VD[V comparable] struct {
	V V
	D Diff
}

type deltaKey[R comparable] struct {
	rec R
	t   timestamp.Time
}

// Consolidate sums the diffs of equal (record, time) pairs and drops zeros.
// The result order is unspecified. Small batches merge in place without
// allocating.
func Consolidate[R comparable](batch []Delta[R]) []Delta[R] {
	if len(batch) <= 1 {
		if len(batch) == 1 && batch[0].D == 0 {
			return nil
		}
		return batch
	}
	if len(batch) <= 32 {
		out := batch[:0]
		n := 0
	next:
		for _, d := range batch[0:] {
			for i := 0; i < n; i++ {
				if out[i].Rec == d.Rec && out[i].T == d.T {
					out[i].D += d.D
					continue next
				}
			}
			out = out[:n+1]
			out[n] = d
			n++
		}
		m := 0
		for i := 0; i < n; i++ {
			if out[i].D != 0 {
				out[m] = out[i]
				m++
			}
		}
		return out[:m]
	}
	acc := make(map[deltaKey[R]]Diff, len(batch))
	for _, d := range batch {
		acc[deltaKey[R]{d.Rec, d.T}] += d.D
	}
	out := batch[:0]
	for k, d := range acc {
		if d != 0 {
			out = append(out, Delta[R]{k.rec, k.t, d})
		}
	}
	return out
}

// vtd is a value-time-diff triple, the element of operator state traces.
type vtd[V comparable] struct {
	v V
	t timestamp.Time
	d Diff
}

type vtdKey[V comparable] struct {
	v V
	t timestamp.Time
}

// consolidateVTD merges trace entries with equal (value, time) and drops
// zeros, returning the compacted slice. Small traces (the common case for
// per-key histories) merge in place with a quadratic scan, avoiding map
// allocation on the hot path.
func consolidateVTD[V comparable](list []vtd[V]) []vtd[V] {
	if len(list) <= 1 {
		if len(list) == 1 && list[0].d == 0 {
			return list[:0]
		}
		return list
	}
	if len(list) <= 48 {
		out := list[:0]
		n := 0
	next:
		for _, e := range list[0:] {
			for i := 0; i < n; i++ {
				if out[i].v == e.v && out[i].t == e.t {
					out[i].d += e.d
					continue next
				}
			}
			out = out[:n+1]
			out[n] = e
			n++
		}
		// Drop zeroed entries.
		m := 0
		for i := 0; i < n; i++ {
			if out[i].d != 0 {
				out[m] = out[i]
				m++
			}
		}
		return out[:m]
	}
	acc := make(map[vtdKey[V]]Diff, len(list))
	for _, e := range list {
		acc[vtdKey[V]{e.v, e.t}] += e.d
	}
	out := list[:0]
	for k, d := range acc {
		if d != 0 {
			out = append(out, vtd[V]{k.v, k.t, d})
		}
	}
	return out
}

// advanceVTD clamps entry times with Outer < outer to the given outer
// coordinate and consolidates when anything was clamped. Sound once no
// future work can occur at any time with Outer ≤ outer: for any future time
// t, Leq and Join against the clamped time are unchanged. Returns the
// (possibly compacted) list and whether it changed.
func advanceVTD[V comparable](list []vtd[V], outer uint32) ([]vtd[V], bool) {
	clamped := false
	for i := range list {
		if list[i].t.Outer < outer {
			list[i].t.Outer = outer
			clamped = true
		}
	}
	if !clamped {
		return list, false
	}
	return consolidateVTD(list), true
}
