package dataflow

// Collection is a differential stream of records of type R: a multiset that
// evolves over the (version, iteration) time lattice. Collections are wiring
// points in the dataflow graph; they hold no data themselves. Operators
// subscribe to a collection and receive every delta batch emitted into it.
type Collection[R comparable] struct {
	s    *Scope
	subs []func(w int, batch []Delta[R])
}

func newCollection[R comparable](s *Scope) *Collection[R] {
	return &Collection[R]{s: s}
}

// Scope returns the scope the collection belongs to.
func (c *Collection[R]) Scope() *Scope { return c.s }

// subscribe registers a receiver. Must happen during graph construction,
// before any data flows.
func (c *Collection[R]) subscribe(f func(w int, batch []Delta[R])) {
	c.subs = append(c.subs, f)
}

// emit fans a batch out to all subscribers. Called by the producing operator
// on worker w; subscribers either transform-and-forward (fused linear
// operators) or enqueue into a node's pending shards.
func (c *Collection[R]) emit(w int, batch []Delta[R]) {
	if len(batch) == 0 {
		return
	}
	for _, f := range c.subs {
		f(w, batch)
	}
}

// keyedSubscriber returns a receiver that routes each delta to the worker
// owning its key and pushes it into p.
func keyedSubscriber[K comparable, V comparable](s *Scope, p *pendings[KV[K, V]]) func(int, []Delta[KV[K, V]]) {
	if s.workers == 1 {
		return func(_ int, batch []Delta[KV[K, V]]) { p.push(0, batch) }
	}
	return func(_ int, batch []Delta[KV[K, V]]) {
		parts := make([][]Delta[KV[K, V]], s.workers)
		for _, d := range batch {
			tw := partition(s, d.Rec.K)
			parts[tw] = append(parts[tw], d)
		}
		for tw, pb := range parts {
			p.push(tw, pb)
		}
	}
}

// localSubscriber returns a receiver that keeps deltas on the worker that
// produced them.
func localSubscriber[R comparable](p *pendings[R]) func(int, []Delta[R]) {
	return func(w int, batch []Delta[R]) { p.push(w, batch) }
}
