package dataflow

import (
	"cmp"

	"graphsurge/internal/timestamp"
)

// keyState is the per-key trace of a reduce: input history, output history,
// and the set of distinct times at which the key has been (or is scheduled to
// be) evaluated.
type keyState[V comparable, O comparable] struct {
	ins   []vtd[V]
	outs  []vtd[O]
	times []timestamp.Time
	adv   uint32 // 1 + the outer coordinate the trace was last advanced to
}

func (ks *keyState[V, O]) hasTime(t timestamp.Time) bool {
	for _, s := range ks.times {
		if s == t {
			return true
		}
	}
	return false
}

// advance lazily compacts the key's history to the scope's frontier. Must
// not run while the key has scheduled re-evaluations (its times would
// diverge from the dirty map), which cannot happen here: the frontier only
// moves between versions, when the scope is quiescent.
func (ks *keyState[V, O]) advance(outer uint32) {
	if ks.adv >= outer+1 {
		return
	}
	ks.adv = outer + 1
	ins, c1 := advanceVTD(ks.ins, outer)
	outs, c2 := advanceVTD(ks.outs, outer)
	if !c1 && !c2 {
		return
	}
	ks.ins, ks.outs = ins, outs
	seen := make(map[timestamp.Time]struct{}, len(ks.times))
	ks.times = ks.times[:0]
	for _, e := range ks.ins {
		seen[e.t] = struct{}{}
	}
	for _, e := range ks.outs {
		seen[e.t] = struct{}{}
	}
	for t := range seen {
		ks.times = append(ks.times, t)
	}
}

// reduceShard is one worker's share of a reduce's state.
type reduceShard[K comparable, V comparable, O comparable] struct {
	keys  map[K]*keyState[V, O]
	dirty map[timestamp.Time]map[K]struct{}
}

// reduceNode groups a keyed stream by key and applies a per-key multiset
// function. For each key with an input delta at time t, the node schedules
// re-evaluation at t and at the lattice-join closure of t with the key's
// existing times — the essential mechanism that lets differential computation
// combine changes arriving along the version axis with history recorded along
// the iteration axis. At each scheduled time it emits
// f(accumulated input ≤ t) − accumulated output ≤ t.
type reduceNode[K comparable, V comparable, O comparable] struct {
	s   *Scope
	out *Collection[KV[K, O]]
	f   func(K, []VD[V]) []O
	nm  string

	p  *pendings[KV[K, V]]
	st []*reduceShard[K, V, O]
}

// Reduce applies f to the consolidated multiset of values of each key. f
// returns the output records for the key, each with multiplicity one; an
// empty return means the key has no output. f must be deterministic and must
// not retain vals. Reduce is the engine's equivalent of DD's reduce/group and
// subsumes min, max, sum, count, distinct and threshold.
func Reduce[K comparable, V comparable, O comparable](
	in *Collection[KV[K, V]], name string, f func(k K, vals []VD[V]) []O,
) *Collection[KV[K, O]] {
	s := in.s
	n := &reduceNode[K, V, O]{
		s:   s,
		out: newCollection[KV[K, O]](s),
		f:   f,
		nm:  name,
		p:   newPendings[KV[K, V]](s.workers),
		st:  make([]*reduceShard[K, V, O], s.workers),
	}
	for w := 0; w < s.workers; w++ {
		n.st[w] = &reduceShard[K, V, O]{
			keys:  make(map[K]*keyState[V, O]),
			dirty: make(map[timestamp.Time]map[K]struct{}),
		}
	}
	in.subscribe(keyedSubscriber(s, n.p))
	s.addNode(n)
	return n.out
}

// ReduceMin keeps, per key, the minimum value present with positive
// multiplicity. The workhorse of label-propagation algorithms (WCC, BFS,
// shortest paths): the paper's UnionMin operator.
func ReduceMin[K comparable, V cmp.Ordered](in *Collection[KV[K, V]]) *Collection[KV[K, V]] {
	return Reduce(in, "min", func(_ K, vals []VD[V]) []V {
		var best V
		found := false
		for _, vd := range vals {
			if vd.D <= 0 {
				continue
			}
			if !found || vd.V < best {
				best, found = vd.V, true
			}
		}
		if !found {
			return nil
		}
		return []V{best}
	})
}

// ReduceMax keeps, per key, the maximum value present with positive
// multiplicity (used by the SCC coloring algorithm).
func ReduceMax[K comparable, V cmp.Ordered](in *Collection[KV[K, V]]) *Collection[KV[K, V]] {
	return Reduce(in, "max", func(_ K, vals []VD[V]) []V {
		var best V
		found := false
		for _, vd := range vals {
			if vd.D <= 0 {
				continue
			}
			if !found || vd.V > best {
				best, found = vd.V, true
			}
		}
		if !found {
			return nil
		}
		return []V{best}
	})
}

// ReduceSum emits, per key, the diff-weighted sum of the values (used by
// PageRank to accumulate rank contributions).
func ReduceSum[K comparable](in *Collection[KV[K, int64]]) *Collection[KV[K, int64]] {
	return Reduce(in, "sum", func(_ K, vals []VD[int64]) []int64 {
		var sum int64
		for _, vd := range vals {
			sum += vd.V * vd.D
		}
		return []int64{sum}
	})
}

// ReduceCount emits, per key, the total multiplicity of its values (e.g.
// vertex out-degrees from an edge stream keyed by source).
func ReduceCount[K comparable, V comparable](in *Collection[KV[K, V]]) *Collection[KV[K, int64]] {
	return Reduce(in, "count", func(_ K, vals []VD[V]) []int64 {
		var c int64
		for _, vd := range vals {
			c += vd.D
		}
		if c == 0 {
			return nil
		}
		return []int64{c}
	})
}

// Distinct reduces a stream to multiplicity one per record present with
// positive multiplicity.
func Distinct[R comparable](in *Collection[R]) *Collection[R] {
	keyed := Map(in, func(r R) KV[R, struct{}] { return KV[R, struct{}]{r, struct{}{}} })
	reduced := Reduce(keyed, "distinct", func(_ R, vals []VD[struct{}]) []struct{} {
		var c Diff
		for _, vd := range vals {
			c += vd.D
		}
		if c > 0 {
			return []struct{}{{}}
		}
		return nil
	})
	return Map(reduced, func(kv KV[R, struct{}]) R { return kv.K })
}

// DistinctKeys reduces a keyed stream to one (key, struct{}{}) record per key
// present, the shape Semijoin expects for its filter side.
func DistinctKeys[K comparable, V comparable](in *Collection[KV[K, V]]) *Collection[KV[K, struct{}]] {
	return Reduce(in, "distinct-keys", func(_ K, vals []VD[V]) []struct{} {
		var c Diff
		for _, vd := range vals {
			c += vd.D
		}
		if c > 0 {
			return []struct{}{{}}
		}
		return nil
	})
}

func (n *reduceNode[K, V, O]) name() string { return "reduce:" + n.nm }

func (n *reduceNode[K, V, O]) run(w int, t timestamp.Time) {
	sh := n.st[w]
	batch := n.p.take(w, t)
	work := len(batch)

	outer, compacting := n.s.compactionOuter()

	// Ingest new input deltas and schedule the join closure of t with each
	// touched key's known times.
	for _, d := range batch {
		k := d.Rec.K
		ks := sh.keys[k]
		if ks == nil {
			ks = &keyState[V, O]{}
			sh.keys[k] = ks
		}
		if compacting {
			ks.advance(outer)
		}
		ks.ins = append(ks.ins, vtd[V]{d.Rec.V, t, d.D})
		if ks.hasTime(t) {
			// Time already known; it is either this run (scheduled below) or
			// already scheduled.
			sh.mark(t, k)
			continue
		}
		// Compute the closure of {t} ∪ ks.times under Join.
		frontier := []timestamp.Time{t}
		for len(frontier) > 0 {
			nt := frontier[len(frontier)-1]
			frontier = frontier[:len(frontier)-1]
			if ks.hasTime(nt) {
				continue
			}
			for _, s := range ks.times {
				j := nt.Join(s)
				if j != nt && j != s && !ks.hasTime(j) {
					frontier = append(frontier, j)
				}
			}
			ks.times = append(ks.times, nt)
			sh.mark(nt, k)
		}
	}

	// Re-evaluate every key dirty at exactly t.
	dk := sh.dirty[t]
	if dk == nil {
		return
	}
	delete(sh.dirty, t)
	var ob []Delta[KV[K, O]]
	var vals []VD[V]
	var delta []VD[O]
	for k := range dk {
		ks := sh.keys[k]
		// Accumulate input at t. Small traces merge by linear scan; large
		// ones (hub vertices) through a map.
		vals = vals[:0]
		if len(ks.ins) <= 32 {
			for _, e := range ks.ins {
				if !e.t.Leq(t) {
					continue
				}
				found := false
				for i := range vals {
					if vals[i].V == e.v {
						vals[i].D += e.d
						found = true
						break
					}
				}
				if !found {
					vals = append(vals, VD[V]{e.v, e.d})
				}
			}
			m := 0
			for _, vd := range vals {
				if vd.D != 0 {
					vals[m] = vd
					m++
				}
			}
			vals = vals[:m]
		} else {
			accIn := make(map[V]Diff, len(ks.ins))
			for _, e := range ks.ins {
				if e.t.Leq(t) {
					accIn[e.v] += e.d
				}
			}
			for v, d := range accIn {
				if d != 0 {
					vals = append(vals, VD[V]{v, d})
				}
			}
		}
		// Desired output minus accumulated emitted output; output sets are
		// tiny (usually one record), so a linear merge suffices.
		delta = delta[:0]
		if len(vals) > 0 {
			for _, o := range n.f(k, vals) {
				mergeVD(&delta, o, 1)
			}
		}
		for _, e := range ks.outs {
			if e.t.Leq(t) {
				mergeVD(&delta, e.v, -e.d)
			}
		}
		for _, od := range delta {
			if od.D != 0 {
				ks.outs = append(ks.outs, vtd[O]{od.V, t, od.D})
				ob = append(ob, Delta[KV[K, O]]{KV[K, O]{k, od.V}, t, od.D})
			}
		}
		work += len(ks.ins)
	}
	n.s.addWork(w, work)
	n.out.emit(w, ob)
}

// mergeVD accumulates d into the entry for v, appending if absent.
func mergeVD[V comparable](list *[]VD[V], v V, d Diff) {
	for i := range *list {
		if (*list)[i].V == v {
			(*list)[i].D += d
			return
		}
	}
	*list = append(*list, VD[V]{v, d})
}

func (sh *reduceShard[K, V, O]) mark(t timestamp.Time, k K) {
	m := sh.dirty[t]
	if m == nil {
		m = make(map[K]struct{})
		sh.dirty[t] = m
	}
	m[k] = struct{}{}
}

// reset drops every shard's key traces and dirty sets by swapping in fresh
// maps — O(1) per shard regardless of how much state the previous run
// accumulated (clearing in place would walk every bucket), with the old
// state left to the GC.
func (n *reduceNode[K, V, O]) reset() {
	n.p.reset()
	for _, sh := range n.st {
		sh.keys = make(map[K]*keyState[V, O])
		sh.dirty = make(map[timestamp.Time]map[K]struct{})
	}
}

func (n *reduceNode[K, V, O]) hasPending(w int, t timestamp.Time) bool {
	if n.p.has(w, t) {
		return true
	}
	_, ok := n.st[w].dirty[t]
	return ok
}

func (n *reduceNode[K, V, O]) minPending(w int) (timestamp.Time, bool) {
	best, found := n.p.min(w)
	for t := range n.st[w].dirty {
		if !found || t.LexLess(best) {
			best, found = t, true
		}
	}
	return best, found
}
