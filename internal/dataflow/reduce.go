package dataflow

import (
	"cmp"

	"graphsurge/internal/arrange"
	"graphsurge/internal/timestamp"
)

// keyTimes is the per-key scheduling metadata of a reduce: the set of
// distinct times at which the key has been (or is scheduled to be)
// evaluated. The bulky input/output histories live in the shard's columnar
// arrangements; only this small set stays per-key.
type keyTimes struct {
	times []timestamp.Time
	adv   uint32 // 1 + the outer coordinate the set was last advanced to
}

func (kt *keyTimes) hasTime(t timestamp.Time) bool {
	for _, s := range kt.times {
		if s == t {
			return true
		}
	}
	return false
}

// advance clamps known times below the frontier and deduplicates. Must not
// run while the key has scheduled re-evaluations (a clamped time would
// diverge from the dirty map), which cannot happen here: the frontier only
// moves between versions, when the scope is quiescent, and every scheduled
// time has Outer at or above the version being drained.
func (kt *keyTimes) advance(outer uint32) {
	if kt.adv >= outer+1 {
		return
	}
	kt.adv = outer + 1
	clamped := false
	for i := range kt.times {
		if kt.times[i].Outer < outer {
			kt.times[i].Outer = outer
			clamped = true
		}
	}
	if !clamped {
		return
	}
	out := kt.times[:0]
	n := 0
next:
	for _, t := range kt.times[0:] {
		for i := 0; i < n; i++ {
			if out[i] == t {
				continue next
			}
		}
		out = out[:n+1]
		out[n] = t
		n++
	}
	kt.times = out[:n]
}

// reduceShard is one worker's share of a reduce's state: columnar input and
// output arrangements plus the per-key time sets and the dirty schedule.
type reduceShard[K comparable, V comparable, O comparable] struct {
	ins   *arrange.Trace[K, V]
	outs  *arrange.Trace[K, O]
	keys  map[K]*keyTimes
	dirty map[timestamp.Time]map[K]struct{}
}

// reduceNode groups a keyed stream by key and applies a per-key multiset
// function. For each key with an input delta at time t, the node schedules
// re-evaluation at t and at the lattice-join closure of t with the key's
// existing times — the essential mechanism that lets differential computation
// combine changes arriving along the version axis with history recorded along
// the iteration axis. At each scheduled time it emits
// f(accumulated input ≤ t) − accumulated output ≤ t.
type reduceNode[K comparable, V comparable, O comparable] struct {
	s   *Scope
	out *Collection[KV[K, O]]
	f   func(K, []VD[V]) []O
	nm  string

	p  *pendings[KV[K, V]]
	st []*reduceShard[K, V, O]
}

// Reduce applies f to the consolidated multiset of values of each key. f
// returns the output records for the key, each with multiplicity one; an
// empty return means the key has no output. f must be deterministic and must
// not retain vals. Reduce is the engine's equivalent of DD's reduce/group and
// subsumes min, max, sum, count, distinct and threshold.
func Reduce[K comparable, V comparable, O comparable](
	in *Collection[KV[K, V]], name string, f func(k K, vals []VD[V]) []O,
) *Collection[KV[K, O]] {
	s := in.s
	n := &reduceNode[K, V, O]{
		s:   s,
		out: newCollection[KV[K, O]](s),
		f:   f,
		nm:  name,
		p:   newPendings[KV[K, V]](s.workers),
		st:  make([]*reduceShard[K, V, O], s.workers),
	}
	for w := 0; w < s.workers; w++ {
		n.st[w] = &reduceShard[K, V, O]{
			ins:   arrange.NewTrace[K, V](),
			outs:  arrange.NewTrace[K, O](),
			keys:  make(map[K]*keyTimes),
			dirty: make(map[timestamp.Time]map[K]struct{}),
		}
	}
	in.subscribe(keyedSubscriber(s, n.p))
	s.addNode(n)
	return n.out
}

// ReduceMin keeps, per key, the minimum value present with positive
// multiplicity. The workhorse of label-propagation algorithms (WCC, BFS,
// shortest paths): the paper's UnionMin operator.
func ReduceMin[K comparable, V cmp.Ordered](in *Collection[KV[K, V]]) *Collection[KV[K, V]] {
	return Reduce(in, "min", func(_ K, vals []VD[V]) []V {
		var best V
		found := false
		for _, vd := range vals {
			if vd.D <= 0 {
				continue
			}
			if !found || vd.V < best {
				best, found = vd.V, true
			}
		}
		if !found {
			return nil
		}
		return []V{best}
	})
}

// ReduceMax keeps, per key, the maximum value present with positive
// multiplicity (used by the SCC coloring algorithm).
func ReduceMax[K comparable, V cmp.Ordered](in *Collection[KV[K, V]]) *Collection[KV[K, V]] {
	return Reduce(in, "max", func(_ K, vals []VD[V]) []V {
		var best V
		found := false
		for _, vd := range vals {
			if vd.D <= 0 {
				continue
			}
			if !found || vd.V > best {
				best, found = vd.V, true
			}
		}
		if !found {
			return nil
		}
		return []V{best}
	})
}

// ReduceSum emits, per key, the diff-weighted sum of the values (used by
// PageRank to accumulate rank contributions).
func ReduceSum[K comparable](in *Collection[KV[K, int64]]) *Collection[KV[K, int64]] {
	return Reduce(in, "sum", func(_ K, vals []VD[int64]) []int64 {
		var sum int64
		for _, vd := range vals {
			sum += vd.V * vd.D
		}
		return []int64{sum}
	})
}

// ReduceCount emits, per key, the total multiplicity of its values (e.g.
// vertex out-degrees from an edge stream keyed by source).
func ReduceCount[K comparable, V comparable](in *Collection[KV[K, V]]) *Collection[KV[K, int64]] {
	return Reduce(in, "count", func(_ K, vals []VD[V]) []int64 {
		var c int64
		for _, vd := range vals {
			c += vd.D
		}
		if c == 0 {
			return nil
		}
		return []int64{c}
	})
}

// Distinct reduces a stream to multiplicity one per record present with
// positive multiplicity.
func Distinct[R comparable](in *Collection[R]) *Collection[R] {
	keyed := Map(in, func(r R) KV[R, struct{}] { return KV[R, struct{}]{r, struct{}{}} })
	reduced := Reduce(keyed, "distinct", func(_ R, vals []VD[struct{}]) []struct{} {
		var c Diff
		for _, vd := range vals {
			c += vd.D
		}
		if c > 0 {
			return []struct{}{{}}
		}
		return nil
	})
	return Map(reduced, func(kv KV[R, struct{}]) R { return kv.K })
}

// DistinctKeys reduces a keyed stream to one (key, struct{}{}) record per key
// present, the shape Semijoin expects for its filter side.
func DistinctKeys[K comparable, V comparable](in *Collection[KV[K, V]]) *Collection[KV[K, struct{}]] {
	return Reduce(in, "distinct-keys", func(_ K, vals []VD[V]) []struct{} {
		var c Diff
		for _, vd := range vals {
			c += vd.D
		}
		if c > 0 {
			return []struct{}{{}}
		}
		return nil
	})
}

func (n *reduceNode[K, V, O]) name() string { return "reduce:" + n.nm }

func (n *reduceNode[K, V, O]) run(w int, t timestamp.Time) {
	sh := n.st[w]
	batch := n.p.take(w, t)
	work := len(batch)

	outer, compacting := n.s.compactionOuter()
	if compacting && len(batch) > 0 {
		// O(1): the arrangements clamp lazily, when their batches merge.
		sh.ins.Advance(outer)
		sh.outs.Advance(outer)
	}

	// Ingest new input deltas and schedule the join closure of t with each
	// touched key's known times.
	for _, d := range batch {
		k := d.Rec.K
		kt := sh.keys[k]
		if kt == nil {
			kt = &keyTimes{}
			sh.keys[k] = kt
		}
		if compacting {
			kt.advance(outer)
		}
		sh.ins.Append(k, d.Rec.V, t, d.D)
		if kt.hasTime(t) {
			// Time already known; it is either this run (scheduled below) or
			// already scheduled.
			sh.mark(t, k)
			continue
		}
		// Compute the closure of {t} ∪ kt.times under Join.
		frontier := []timestamp.Time{t}
		for len(frontier) > 0 {
			nt := frontier[len(frontier)-1]
			frontier = frontier[:len(frontier)-1]
			if kt.hasTime(nt) {
				continue
			}
			for _, s := range kt.times {
				j := nt.Join(s)
				if j != nt && j != s && !kt.hasTime(j) {
					frontier = append(frontier, j)
				}
			}
			kt.times = append(kt.times, nt)
			sh.mark(nt, k)
		}
	}

	// Re-evaluate every key dirty at exactly t.
	dk := sh.dirty[t]
	if dk == nil {
		return
	}
	delete(sh.dirty, t)
	var ob []Delta[KV[K, O]]
	var vals []VD[V]
	var delta []VD[O]
	for k := range dk {
		// Accumulate input at t from the arrangement. Small histories merge
		// by linear scan; large ones (hub vertices) spill to a map.
		vals = vals[:0]
		var spill map[V]Diff
		work += sh.ins.Key(k, func(v V, et timestamp.Time, ed int64) {
			if !et.Leq(t) {
				return
			}
			if spill != nil {
				spill[v] += ed
				return
			}
			for i := range vals {
				if vals[i].V == v {
					vals[i].D += ed
					return
				}
			}
			if len(vals) >= 32 {
				spill = make(map[V]Diff, 2*len(vals))
				for _, vd := range vals {
					spill[vd.V] += vd.D
				}
				spill[v] += ed
				return
			}
			vals = append(vals, VD[V]{v, ed})
		})
		if spill != nil {
			vals = vals[:0]
			for v, d := range spill {
				if d != 0 {
					vals = append(vals, VD[V]{v, d})
				}
			}
		} else {
			m := 0
			for _, vd := range vals {
				if vd.D != 0 {
					vals[m] = vd
					m++
				}
			}
			vals = vals[:m]
		}
		// Desired output minus accumulated emitted output; output sets are
		// tiny (usually one record), so a linear merge suffices.
		delta = delta[:0]
		if len(vals) > 0 {
			for _, o := range n.f(k, vals) {
				mergeVD(&delta, o, 1)
			}
		}
		sh.outs.Key(k, func(v O, et timestamp.Time, ed int64) {
			if et.Leq(t) {
				mergeVD(&delta, v, -ed)
			}
		})
		for _, od := range delta {
			if od.D != 0 {
				sh.outs.Append(k, od.V, t, od.D)
				ob = append(ob, Delta[KV[K, O]]{KV[K, O]{k, od.V}, t, od.D})
			}
		}
	}
	n.s.addWork(w, work)
	n.out.emit(w, ob)
}

// mergeVD accumulates d into the entry for v, appending if absent.
func mergeVD[V comparable](list *[]VD[V], v V, d Diff) {
	for i := range *list {
		if (*list)[i].V == v {
			(*list)[i].D += d
			return
		}
	}
	*list = append(*list, VD[V]{v, d})
}

func (sh *reduceShard[K, V, O]) mark(t timestamp.Time, k K) {
	m := sh.dirty[t]
	if m == nil {
		m = make(map[K]struct{})
		sh.dirty[t] = m
	}
	m[k] = struct{}{}
}

// reset drops every shard's arrangements by releasing their batch stacks by
// reference, and swaps the small scheduling maps for fresh ones — O(1) per
// shard regardless of how much state the previous run accumulated, with the
// old state left to the GC.
func (n *reduceNode[K, V, O]) reset() {
	n.p.reset()
	for _, sh := range n.st {
		sh.ins.Reset()
		sh.outs.Reset()
		sh.keys = make(map[K]*keyTimes)
		sh.dirty = make(map[timestamp.Time]map[K]struct{})
	}
}

func (n *reduceNode[K, V, O]) hasPending(w int, t timestamp.Time) bool {
	if n.p.has(w, t) {
		return true
	}
	_, ok := n.st[w].dirty[t]
	return ok
}

func (n *reduceNode[K, V, O]) minPending(w int) (timestamp.Time, bool) {
	best, found := n.p.min(w)
	for t := range n.st[w].dirty {
		if !found || t.LexLess(best) {
			best, found = t, true
		}
	}
	return best, found
}
