package dataflow

import (
	"fmt"
	"testing"
)

// labelGraph wires a small but representative dataflow — map/filter chains,
// a join, a min-reduce inside an Iterate loop, and a capture — over an edge
// input: the label-propagation core shared by WCC/BFS-style computations.
func labelGraph(workers int) (*Scope, *Input[KV[int, int]], *Capture[KV[int, int]]) {
	s := NewScope(workers)
	in, edges := NewInput[KV[int, int]](s)
	nodes := Distinct(FlatMap(edges, func(e KV[int, int], emit func(int)) {
		emit(e.K)
		emit(e.V)
	}))
	seeds := Map(nodes, func(n int) KV[int, int] { return KV[int, int]{n, n} })
	sym := FlatMap(edges, func(e KV[int, int], emit func(KV[int, int])) {
		emit(e)
		emit(KV[int, int]{e.V, e.K})
	})
	labels := Iterate(seeds, func(x *Collection[KV[int, int]]) *Collection[KV[int, int]] {
		msgs := JoinMap(x, sym, func(_ int, lbl int, dst int) KV[int, int] {
			return KV[int, int]{dst, lbl}
		})
		return ReduceMin(Concat(msgs, seeds))
	})
	return s, in, NewCapture(labels)
}

// resetTestEdges is a deterministic multi-version edge-update sequence: a
// path graph first, then edges flipping in and out across versions.
func resetTestEdges(v int) []Update[KV[int, int]] {
	switch v {
	case 0:
		ups := make([]Update[KV[int, int]], 0, 12)
		for i := 0; i < 12; i++ {
			ups = append(ups, Update[KV[int, int]]{KV[int, int]{i, i + 1}, 1})
		}
		return ups
	case 1:
		return []Update[KV[int, int]]{{KV[int, int]{6, 7}, -1}, {KV[int, int]{20, 21}, 1}}
	case 2:
		return []Update[KV[int, int]]{{KV[int, int]{6, 7}, 1}, {KV[int, int]{0, 20}, 1}}
	default:
		return nil
	}
}

// TestScopeResetStateEquivalence checks the core reset contract: after
// ResetState, re-feeding the same version sequence through the same scope
// produces byte-identical capture history to both the first pass and a
// freshly built scope — across single- and multi-worker configurations.
func TestScopeResetStateEquivalence(t *testing.T) {
	for _, workers := range []int{1, 3} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			run := func(s *Scope, in *Input[KV[int, int]], c *Capture[KV[int, int]]) ([]map[KV[int, int]]Diff, map[KV[int, int]]Diff) {
				diffs := make([]map[KV[int, int]]Diff, 3)
				for v := 0; v < 3; v++ {
					in.SendAt(uint32(v), resetTestEdges(v))
					s.Drain()
					s.Compact(uint32(v))
					diffs[v] = c.VersionDiff(uint32(v))
				}
				return diffs, c.At(2)
			}

			s, in, c := labelGraph(workers)
			firstDiffs, firstAt := run(s, in, c)

			s.ResetState()
			if s.IterCapHit.Load() {
				t.Fatal("IterCapHit survived reset")
			}
			for _, w := range s.WorkCounts() {
				if w != 0 {
					t.Fatalf("work counters survived reset: %v", s.WorkCounts())
				}
			}
			if len(c.Versions()) != 0 {
				t.Fatalf("capture history survived reset: %v", c.Versions())
			}
			resetDiffs, resetAt := run(s, in, c)

			fresh, fin, fc := labelGraph(workers)
			freshDiffs, freshAt := run(fresh, fin, fc)

			for v := range firstDiffs {
				if !equalDiffMaps(firstDiffs[v], resetDiffs[v]) {
					t.Fatalf("v%d: reset diff %v != first pass %v", v, resetDiffs[v], firstDiffs[v])
				}
				if !equalDiffMaps(firstDiffs[v], freshDiffs[v]) {
					t.Fatalf("v%d: fresh diff %v != first pass %v", v, freshDiffs[v], firstDiffs[v])
				}
			}
			if !equalDiffMaps(firstAt, resetAt) || !equalDiffMaps(firstAt, freshAt) {
				t.Fatalf("accumulated results diverge: first %v reset %v fresh %v", firstAt, resetAt, freshAt)
			}
		})
	}
}

// TestResetStateMidSequence pins that a reset scope restarts at version 0:
// feeding version 0 again after a run that ended at a later version does not
// trip the nondecreasing-version check.
func TestResetStateMidSequence(t *testing.T) {
	s, in, c := labelGraph(1)
	for v := 0; v < 3; v++ {
		in.SendAt(uint32(v), resetTestEdges(v))
		s.Drain()
		s.Compact(uint32(v))
	}
	s.ResetState()
	in.SendAt(0, resetTestEdges(0)) // would panic if the input cursor survived
	s.Drain()
	if n := c.DiffCount(0); n == 0 {
		t.Fatal("no output at version 0 after reset")
	}
}

func equalDiffMaps[R comparable](a, b map[R]Diff) bool {
	if len(a) != len(b) {
		return false
	}
	for r, d := range a {
		if b[r] != d {
			return false
		}
	}
	return true
}
