package dataflow

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"graphsurge/internal/arrange"
	"graphsurge/internal/timestamp"
)

// TestConsolidateMatchesMap checks the small-batch in-place consolidation
// path against the map-based definition.
func TestConsolidateMatchesMap(t *testing.T) {
	f := func(seed int64, size uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := int(size) % 40 // exercises both the quadratic and map paths
		batch := make([]Delta[int], 0, n)
		for i := 0; i < n; i++ {
			batch = append(batch, Delta[int]{
				Rec: r.Intn(5),
				T:   timestamp.Time{Outer: uint32(r.Intn(2)), Inner: uint32(r.Intn(2))},
				D:   int64(r.Intn(5) - 2),
			})
		}
		want := make(map[deltaKey[int]]Diff)
		for _, d := range batch {
			want[deltaKey[int]{d.Rec, d.T}] += d.D
		}
		got := Consolidate(append([]Delta[int](nil), batch...))
		acc := make(map[deltaKey[int]]Diff)
		for _, d := range got {
			if d.D == 0 {
				return false // zeros must be dropped
			}
			if _, dup := acc[deltaKey[int]{d.Rec, d.T}]; dup {
				return false // keys must be unique
			}
			acc[deltaKey[int]{d.Rec, d.T}] = d.D
		}
		for k, d := range want {
			if d != acc[k] {
				return false
			}
			delete(acc, k)
		}
		for _, d := range acc {
			if d != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestConsolidateVTDMatchesMap checks the trace consolidation fast path the
// same way.
func TestConsolidateVTDMatchesMap(t *testing.T) {
	f := func(seed int64, size uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := int(size) % 60
		list := make([]vtd[int], 0, n)
		for i := 0; i < n; i++ {
			list = append(list, vtd[int]{
				v: r.Intn(4),
				t: timestamp.Time{Outer: uint32(r.Intn(2)), Inner: uint32(r.Intn(3))},
				d: int64(r.Intn(3) - 1),
			})
		}
		want := make(map[vtdKey[int]]Diff)
		for _, e := range list {
			want[vtdKey[int]{e.v, e.t}] += e.d
		}
		got := consolidateVTD(append([]vtd[int](nil), list...))
		acc := make(map[vtdKey[int]]Diff)
		for _, e := range got {
			if e.d == 0 {
				return false
			}
			acc[vtdKey[int]{e.v, e.t}] += e.d
		}
		for k, d := range want {
			if d != acc[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// oracleGroupSum recomputes, per key, the diff-weighted sum of a multiset.
func oracleGroupSum(cur map[KV[int, int64]]int64) map[int]int64 {
	out := map[int]int64{}
	seen := map[int]bool{}
	for kv, mult := range cur {
		out[kv.K] += kv.V * mult
		seen[kv.K] = true
	}
	for k := range seen {
		if _, ok := out[k]; !ok {
			out[k] = 0
		}
	}
	return out
}

// TestReduceSumRandomSequences drives ReduceSum through random update
// sequences across versions and workers, checking cumulative results against
// a from-scratch oracle. This is the strongest single test of the reduce
// operator's join-closure machinery.
func TestReduceSumRandomSequences(t *testing.T) {
	run := func(seed int64, workers int) bool {
		r := rand.New(rand.NewSource(seed))
		s := NewScope(workers)
		in, col := NewInput[KV[int, int64]](s)
		c := NewCapture(ReduceSum(col))
		cur := map[KV[int, int64]]int64{}
		for v := uint32(0); v < 6; v++ {
			var ups []Update[KV[int, int64]]
			for i := 0; i < 12; i++ {
				kv := KV[int, int64]{r.Intn(4), int64(r.Intn(5))}
				d := int64(r.Intn(3) - 1)
				if cur[kv]+d < 0 {
					d = -cur[kv] // keep multiplicities non-negative
				}
				if d == 0 {
					continue
				}
				cur[kv] += d
				if cur[kv] == 0 {
					delete(cur, kv)
				}
				ups = append(ups, Update[KV[int, int64]]{kv, d})
			}
			in.SendAt(v, ups)
			s.Drain()
			got := c.At(v)
			want := oracleGroupSum(cur)
			keysWithRecords := map[int]bool{}
			for kv := range cur {
				keysWithRecords[kv.K] = true
			}
			for k, sum := range want {
				if !keysWithRecords[k] {
					continue
				}
				if got[KV[int, int64]{k, sum}] != 1 {
					return false
				}
			}
			// No spurious outputs.
			n := 0
			for _, d := range got {
				if d != 0 {
					n++
				}
			}
			if n != len(keysWithRecords) {
				return false
			}
			s.Compact(v)
		}
		return true
	}
	for seed := int64(0); seed < 25; seed++ {
		for _, workers := range []int{1, 2} {
			if !run(seed, workers) {
				t.Fatalf("seed %d workers %d", seed, workers)
			}
		}
	}
}

// TestWorkerCountInvariance checks that results are identical for any worker
// count on a join+reduce+iterate pipeline.
func TestWorkerCountInvariance(t *testing.T) {
	build := func(workers int) (*Input[edge], *Capture[KV[uint32, uint32]], *Scope) {
		s := NewScope(workers)
		ei, ecol := NewInput[edge](s)
		keyed := Map(ecol, func(e edge) KV[uint32, uint32] { return KV[uint32, uint32]{e.src, e.dst} })
		seeds := Distinct(Map(ecol, func(e edge) KV[uint32, uint32] { return KV[uint32, uint32]{e.src, e.src} }))
		labels := Iterate(seeds, func(x *Collection[KV[uint32, uint32]]) *Collection[KV[uint32, uint32]] {
			msgs := JoinMap(x, keyed, func(_ uint32, lab uint32, dst uint32) KV[uint32, uint32] {
				return KV[uint32, uint32]{dst, lab}
			})
			return ReduceMin(Concat(msgs, seeds))
		})
		return ei, NewCapture(labels), s
	}

	r := rand.New(rand.NewSource(77))
	var versions [][]Update[edge]
	cur := map[edge]bool{}
	for v := 0; v < 4; v++ {
		var ups []Update[edge]
		for i := 0; i < 15; i++ {
			e := edge{uint32(r.Intn(12)), uint32(r.Intn(12))}
			if cur[e] {
				cur[e] = false
				ups = append(ups, Update[edge]{e, -1})
			} else {
				cur[e] = true
				ups = append(ups, Update[edge]{e, 1})
			}
		}
		versions = append(versions, ups)
	}

	var reference map[KV[uint32, uint32]]Diff
	for _, workers := range []int{1, 2, 5} {
		in, c, s := build(workers)
		for v, ups := range versions {
			in.SendAt(uint32(v), ups)
			s.Drain()
			s.Compact(uint32(v))
		}
		got := c.At(uint32(len(versions) - 1))
		if reference == nil {
			reference = got
			continue
		}
		if len(got) != len(reference) {
			t.Fatalf("workers=%d: %d results vs %d", workers, len(got), len(reference))
		}
		for k, d := range reference {
			if got[k] != d {
				t.Fatalf("workers=%d: %v = %d, want %d", workers, k, got[k], d)
			}
		}
	}
}

func TestSemijoinAndDistinctKeys(t *testing.T) {
	s := NewScope(1)
	li, l := NewInput[KV[int, string]](s)
	ri, rcol := NewInput[KV[int, int]](s)
	filtered := Semijoin(l, DistinctKeys(rcol))
	c := NewCapture(filtered)

	li.SendAt(0, []Update[KV[int, string]]{{KV[int, string]{1, "a"}, 1}, {KV[int, string]{2, "b"}, 1}})
	ri.SendAt(0, []Update[KV[int, int]]{{KV[int, int]{1, 10}, 1}, {KV[int, int]{1, 20}, 1}})
	s.Drain()
	got := c.At(0)
	if len(got) != 1 || got[KV[int, string]{1, "a"}] != 1 {
		t.Fatalf("got %v", got)
	}
	// Removing one of key 1's two right records keeps the semijoin output;
	// removing both retracts it.
	ri.SendAt(1, []Update[KV[int, int]]{{KV[int, int]{1, 10}, -1}})
	s.Drain()
	if got := c.At(1); got[KV[int, string]{1, "a"}] != 1 {
		t.Fatalf("v1: got %v", got)
	}
	ri.SendAt(2, []Update[KV[int, int]]{{KV[int, int]{1, 20}, -1}})
	s.Drain()
	if got := c.At(2); len(got) != 0 {
		t.Fatalf("v2: got %v", got)
	}
}

func TestAntijoin(t *testing.T) {
	s := NewScope(1)
	li, l := NewInput[KV[int, string]](s)
	ri, r := NewInput[KV[int, int]](s)
	kept := Antijoin(l, DistinctKeys(r))
	c := NewCapture(kept)

	li.SendAt(0, []Update[KV[int, string]]{{KV[int, string]{1, "a"}, 1}, {KV[int, string]{2, "b"}, 1}})
	ri.SendAt(0, []Update[KV[int, int]]{{KV[int, int]{1, 10}, 1}})
	s.Drain()
	if got := c.At(0); len(got) != 1 || got[KV[int, string]{2, "b"}] != 1 {
		t.Fatalf("v0: %v", got)
	}
	// Key 1 leaves the filter set: its record reappears.
	ri.SendAt(1, []Update[KV[int, int]]{{KV[int, int]{1, 10}, -1}})
	s.Drain()
	if got := c.At(1); len(got) != 2 {
		t.Fatalf("v1: %v", got)
	}
	// Key 2 enters the filter set: its record disappears.
	ri.SendAt(2, []Update[KV[int, int]]{{KV[int, int]{2, 5}, 1}})
	s.Drain()
	if got := c.At(2); len(got) != 1 || got[KV[int, string]{1, "a"}] != 1 {
		t.Fatalf("v2: %v", got)
	}
}

func TestConcatAllAndInspect(t *testing.T) {
	s := NewScope(1)
	a, acol := NewInput[int](s)
	b, bcol := NewInput[int](s)
	cIn, ccol := NewInput[int](s)
	seen := 0
	merged := Inspect(ConcatAll(acol, bcol, ccol), func(Delta[int]) { seen++ })
	cap1 := NewCapture(merged)
	a.SendOne(0, 1, 1)
	b.SendOne(0, 2, 1)
	cIn.SendOne(0, 3, 1)
	s.Drain()
	if got := cap1.At(0); len(got) != 3 {
		t.Fatalf("got %v", got)
	}
	if seen != 3 {
		t.Fatalf("inspect saw %d deltas", seen)
	}
}

func TestCaptureVersionsAndDiffCounts(t *testing.T) {
	s := NewScope(2)
	in, col := NewInput[int](s)
	c := NewCapture(col)
	in.SendAt(0, []Update[int]{{1, 1}, {2, 1}})
	s.Drain()
	in.SendAt(2, []Update[int]{{1, -1}})
	s.Drain()
	vs := c.Versions()
	if len(vs) != 2 {
		t.Fatalf("versions %v", vs)
	}
	if c.DiffCount(0) != 2 || c.DiffCount(2) != 1 || c.DiffCount(1) != 0 {
		t.Fatalf("diff counts %d %d %d", c.DiffCount(0), c.DiffCount(1), c.DiffCount(2))
	}
	vd := c.VersionDiff(2)
	if vd[1] != -1 || len(vd) != 1 {
		t.Fatalf("version diff %v", vd)
	}
}

// TestPendingsBasics exercises the shard buffer directly.
func TestPendingsBasics(t *testing.T) {
	p := newPendings[int](2)
	t0 := timestamp.Outer(0)
	t1 := timestamp.Time{Outer: 0, Inner: 3}
	p.push(0, []Delta[int]{{1, t0, 1}, {1, t0, 1}, {2, t1, 0}})
	if !p.has(0, t0) {
		t.Fatal("has")
	}
	if p.has(0, t1) {
		t.Fatal("zero diffs must be dropped")
	}
	if p.has(1, t0) {
		t.Fatal("wrong worker")
	}
	mt, ok := p.min(0)
	if !ok || mt != t0 {
		t.Fatalf("min %v %v", mt, ok)
	}
	b := p.take(0, t0)
	if len(b) != 1 || b[0].D != 2 {
		t.Fatalf("take %v", b)
	}
	if _, ok := p.min(0); ok {
		t.Fatal("min after take")
	}
}

func TestIterateNZero(t *testing.T) {
	s := NewScope(1)
	in, col := NewInput[int](s)
	out := IterateN(col, 0, func(x *Collection[int]) *Collection[int] { return x })
	c := NewCapture(out)
	in.SendOne(0, 7, 1)
	s.Drain()
	if got := c.At(0); got[7] != 1 {
		t.Fatalf("got %v", got)
	}
}

// traceOracle is the pre-arrangement trace representation: per-key slices of
// (value, time, diff) entries, clamped eagerly by advanceVTD. It defines the
// semantics the columnar arrange.Trace must reproduce.
type traceOracle map[int][]vtd[int]

func (o traceOracle) clone() traceOracle {
	cp := make(traceOracle, len(o))
	for k, list := range o {
		cp[k] = append([]vtd[int](nil), list...)
	}
	return cp
}

// accumulated returns key k's multiset as a (value, time)->diff map with
// times clamped to outer — the view an operator sees when joining against
// times at or beyond the frontier. Zero-sum entries are dropped.
func (o traceOracle) accumulated(k int, outer uint32) map[vtdKey[int]]Diff {
	acc := map[vtdKey[int]]Diff{}
	for _, e := range o[k] {
		ts := e.t
		if ts.Outer < outer {
			ts.Outer = outer
		}
		acc[vtdKey[int]{e.v, ts}] += e.d
	}
	for kk, d := range acc {
		if d == 0 {
			delete(acc, kk)
		}
	}
	return acc
}

const oracleKeySpace = 6 // keys used by the arranged-trace property test

// compareArranged checks that tr holds exactly the oracle's multisets, key by
// key, after clamping both sides to outer. Also cross-checks Trace.Len
// against the tuples Key actually yields.
func compareArranged(tr *arrange.Trace[int, int], o traceOracle, outer uint32) error {
	visited := 0
	for k := 0; k < oracleKeySpace; k++ {
		got := map[vtdKey[int]]Diff{}
		visited += tr.Key(k, func(v int, ts timestamp.Time, d int64) {
			if ts.Outer < outer {
				ts.Outer = outer
			}
			got[vtdKey[int]{v, ts}] += d
		})
		for kk, d := range got {
			if d == 0 {
				delete(got, kk)
			}
		}
		want := o.accumulated(k, outer)
		if len(got) != len(want) {
			return fmt.Errorf("key %d: %d distinct (value, time) entries, want %d", k, len(got), len(want))
		}
		for kk, d := range want {
			if got[kk] != d {
				return fmt.Errorf("key %d, value %d at %v: diff %d, want %d", k, kk.v, kk.t, got[kk], d)
			}
		}
	}
	if visited != tr.Len() {
		return fmt.Errorf("Key visited %d tuples total, Len reports %d", visited, tr.Len())
	}
	return nil
}

// TestArrangedTraceMatchesMapTrace drives an arrange.Trace and the legacy
// map-of-vtd trace representation through identical random streams of
// appends, frontier advances, snapshots, and resets, asserting the
// accumulated per-key multisets stay identical throughout. The vtd machinery
// (consolidateVTD/advanceVTD) is the oracle: it is the representation the
// engine used before arrangements, so agreement here is the refactor's
// equivalence proof. Snapshots are checked at the end, after the original
// trace has kept sealing and merging, pinning the copy-on-write isolation.
func TestArrangedTraceMatchesMapTrace(t *testing.T) {
	type snapshot struct {
		tr     *arrange.Trace[int, int]
		oracle traceOracle
		outer  uint32
		step   int
	}
	run := func(seed int64) error {
		r := rand.New(rand.NewSource(seed))
		tr := arrange.NewTrace[int, int]()
		oracle := traceOracle{}
		outer := uint32(0)
		var snaps []snapshot
		steps := 600 + r.Intn(500) // enough appends to force seals and merges
		for i := 0; i < steps; i++ {
			switch op := r.Intn(100); {
			case op < 84: // append, occasionally with a zero diff (must be a no-op)
				k, v := r.Intn(oracleKeySpace), r.Intn(5)
				ts := timestamp.Time{Outer: outer + uint32(r.Intn(3)), Inner: uint32(r.Intn(3))}
				d := int64(r.Intn(5) - 2)
				tr.Append(k, v, ts, d)
				if d != 0 {
					oracle[k] = append(oracle[k], vtd[int]{v, ts, d})
				}
			case op < 92: // advance the compaction frontier on both sides
				outer += uint32(r.Intn(2) + 1)
				tr.Advance(outer)
				for k, list := range oracle {
					list, _ = advanceVTD(list, outer)
					if len(list) == 0 {
						delete(oracle, k)
					} else {
						oracle[k] = list
					}
				}
			case op < 97: // snapshot now, verify after the original moves on
				snaps = append(snaps, snapshot{tr.Snapshot(), oracle.clone(), outer, i})
			default: // reset drops all state
				tr.Reset()
				oracle = traceOracle{}
				outer = 0
			}
			if i%53 == 0 {
				if err := compareArranged(tr, oracle, outer); err != nil {
					return fmt.Errorf("step %d: %w", i, err)
				}
			}
		}
		if err := compareArranged(tr, oracle, outer); err != nil {
			return fmt.Errorf("final: %w", err)
		}
		for _, s := range snaps {
			if err := compareArranged(s.tr, s.oracle, s.outer); err != nil {
				return fmt.Errorf("snapshot taken at step %d: %w", s.step, err)
			}
		}
		return nil
	}
	for seed := int64(0); seed < 25; seed++ {
		if err := run(seed); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestNegativeAndZeroDiffHandling(t *testing.T) {
	s := NewScope(1)
	in, col := NewInput[KV[int, int]](s)
	c := NewCapture(ReduceMin(col))
	// A negative-only multiset yields no output.
	in.SendAt(0, []Update[KV[int, int]]{{KV[int, int]{1, 5}, 2}})
	s.Drain()
	in.SendAt(1, []Update[KV[int, int]]{{KV[int, int]{1, 5}, -2}})
	s.Drain()
	if got := c.At(1); len(got) != 0 {
		t.Fatalf("got %v", got)
	}
}
