package splitting

import (
	"testing"
	"time"
)

func TestPlanDiffOnly(t *testing.T) {
	p := PlanDiffOnly(5)
	if p.NumViews() != 5 || len(p.Segments) != 1 {
		t.Fatalf("plan: %+v", p)
	}
	if p.Segments[0] != (Segment{Start: 0, End: 5}) {
		t.Fatalf("segment: %+v", p.Segments[0])
	}
	if p.Splits() != 0 {
		t.Fatalf("splits: %d", p.Splits())
	}
	for _, m := range p.Modes {
		if m != ModeDiff {
			t.Fatalf("modes: %v", p.Modes)
		}
	}
	if empty := PlanDiffOnly(0); empty.NumViews() != 0 || len(empty.Segments) != 0 {
		t.Fatalf("empty plan: %+v", empty)
	}
}

func TestPlanScratch(t *testing.T) {
	p := PlanScratch(4)
	if p.NumViews() != 4 || len(p.Segments) != 4 {
		t.Fatalf("plan: %+v", p)
	}
	for i, s := range p.Segments {
		if s.Start != i || s.End != i+1 || s.Len() != 1 {
			t.Fatalf("segment %d: %+v", i, s)
		}
		if p.Modes[i] != ModeScratch {
			t.Fatalf("modes: %v", p.Modes)
		}
	}
	if p.Splits() != 3 {
		t.Fatalf("splits: %d", p.Splits())
	}
}

func TestPlanFromModes(t *testing.T) {
	modes := []Mode{ModeScratch, ModeDiff, ModeDiff, ModeScratch, ModeDiff, ModeScratch}
	p := PlanFromModes(modes)
	want := []Segment{{0, 3}, {3, 5}, {5, 6}}
	if len(p.Segments) != len(want) {
		t.Fatalf("segments: %+v", p.Segments)
	}
	for i, s := range want {
		if p.Segments[i] != s {
			t.Fatalf("segment %d: got %+v want %+v", i, p.Segments[i], s)
		}
	}
	if p.Splits() != 2 {
		t.Fatalf("splits: %d", p.Splits())
	}
}

// TestPlannerBootstrapAndSplit drives the incremental planner through the
// optimizer's bootstrap and a model-declared split, checking that segments
// open exactly at split points and cover the view range in order.
func TestPlannerBootstrap(t *testing.T) {
	pl := NewPlanner(&Optimizer{BatchSize: 2})

	mode, split := pl.Extend(100, 100)
	if mode != ModeScratch || !split {
		t.Fatalf("view 0: %v %v", mode, split)
	}
	mode, split = pl.Extend(100, 10)
	if mode != ModeDiff || split {
		t.Fatalf("view 1: %v %v", mode, split)
	}

	// Make differential execution look terrible and scratch cheap, so the
	// next batch decision declares a split.
	pl.Optimizer().ObserveScratch(100, 1*time.Millisecond)
	pl.Optimizer().ObserveDiff(10, 10*time.Second)
	mode, split = pl.Extend(100, 10)
	if mode != ModeScratch || !split {
		t.Fatalf("view 2: %v %v", mode, split)
	}

	p := pl.Plan()
	if p.NumViews() != 3 || len(p.Segments) != 2 {
		t.Fatalf("plan: %+v", p)
	}
	if p.Segments[0] != (Segment{0, 2}) || p.Segments[1] != (Segment{2, 3}) {
		t.Fatalf("segments: %+v", p.Segments)
	}

	// Segment coverage invariant: contiguous, in order, no gaps.
	next := 0
	for _, s := range p.Segments {
		if s.Start != next || s.End <= s.Start {
			t.Fatalf("coverage: %+v", p.Segments)
		}
		next = s.End
	}
	if next != p.NumViews() {
		t.Fatalf("coverage: %+v", p.Segments)
	}
}
