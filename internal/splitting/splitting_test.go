package splitting

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestModelNoData(t *testing.T) {
	var m Model
	if _, ok := m.Predict(5); ok {
		t.Fatal("prediction without data")
	}
	if m.Count() != 0 {
		t.Fatal("count")
	}
}

func TestModelOnePointProportional(t *testing.T) {
	var m Model
	m.Observe(10, 2)
	y, ok := m.Predict(20)
	if !ok || math.Abs(y-4) > 1e-9 {
		t.Fatalf("got %v %v", y, ok)
	}
}

func TestModelRecoverLine(t *testing.T) {
	// Property: a model fed points from y = a + b·x recovers the line.
	f := func(a8, b8 uint8) bool {
		a, b := float64(a8)/8, float64(b8)/16
		var m Model
		for x := 1.0; x <= 6; x++ {
			m.Observe(x, a+b*x)
		}
		y, ok := m.Predict(10)
		return ok && math.Abs(y-(a+b*10)) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestModelDegenerateX(t *testing.T) {
	var m Model
	m.Observe(5, 2)
	m.Observe(5, 4)
	y, ok := m.Predict(100)
	if !ok || math.Abs(y-3) > 1e-9 {
		t.Fatalf("got %v %v", y, ok)
	}
	// Predictions never go negative.
	m2 := Model{}
	m2.Observe(1, 10)
	m2.Observe(2, 1)
	if y, _ := m2.Predict(100); y < 0 {
		t.Fatalf("negative prediction %v", y)
	}
}

func TestBootstrapSequence(t *testing.T) {
	var o Optimizer
	if o.Decide(0, 100, 100) != ModeScratch {
		t.Fatal("view 0 must run from scratch")
	}
	if o.Decide(1, 100, 10) != ModeDiff {
		t.Fatal("view 1 must run differentially")
	}
}

func TestAdaptsToFasterScratch(t *testing.T) {
	// Differential runs cost 10x per diff unit vs scratch per size unit:
	// the optimizer should switch to scratch.
	o := Optimizer{BatchSize: 2}
	o.Decide(0, 100, 100)
	o.ObserveScratch(100, 100*time.Millisecond) // 1ms per size unit
	o.Decide(1, 100, 50)
	o.ObserveDiff(50, 500*time.Millisecond) // 10ms per diff unit

	m := o.Decide(2, 100, 50) // predicted: scratch 100ms, diff 500ms
	if m != ModeScratch {
		t.Fatalf("expected scratch, got %v", m)
	}
	// Batch: view 3 reuses the decision without consulting models.
	if o.Decide(3, 1, 1) != ModeScratch {
		t.Fatal("batched decision not sticky")
	}
}

func TestAdaptsToFasterDiff(t *testing.T) {
	o := Optimizer{BatchSize: 1}
	o.Decide(0, 1000, 1000)
	o.ObserveScratch(1000, time.Second)
	o.Decide(1, 1000, 10)
	o.ObserveDiff(10, 5*time.Millisecond)

	if m := o.Decide(2, 1000, 10); m != ModeDiff {
		t.Fatalf("expected diff, got %v", m)
	}
}

func TestDecisionUsesSizes(t *testing.T) {
	// Same models, different upcoming diff sizes flip the decision.
	o := Optimizer{BatchSize: 1}
	o.Decide(0, 100, 0)
	o.ObserveScratch(100, 100*time.Millisecond)
	o.Decide(1, 100, 10)
	o.ObserveDiff(10, 20*time.Millisecond) // 2ms per diff unit

	if m := o.Decide(2, 100, 10); m != ModeDiff { // 100ms vs 20ms
		t.Fatalf("small diff: got %v", m)
	}
	if m := o.Decide(3, 100, 200); m != ModeScratch { // 100ms vs 400ms
		t.Fatalf("large diff: got %v", m)
	}
}

func TestModeString(t *testing.T) {
	if ModeDiff.String() != "diff" || ModeScratch.String() != "scratch" {
		t.Fatal("Mode.String")
	}
}

func TestBatchExpiryAllowsModeSwitch(t *testing.T) {
	// After a batch window ends, new observations can flip the decision —
	// the mid-collection adaptation the paper's Caut experiment relies on.
	o := Optimizer{BatchSize: 3}
	o.Decide(0, 100, 0)
	o.ObserveScratch(100, 100*time.Millisecond)
	o.Decide(1, 100, 10)
	o.ObserveDiff(10, 10*time.Millisecond) // diff looks cheap

	if m := o.Decide(2, 100, 10); m != ModeDiff { // batch covers views 2-4
		t.Fatalf("view 2: %v", m)
	}
	// Differential turns out slow on the next observations.
	o.ObserveDiff(10, 900*time.Millisecond)
	if m := o.Decide(3, 100, 10); m != ModeDiff {
		t.Fatal("view 3 must reuse the batch decision")
	}
	o.ObserveDiff(10, 900*time.Millisecond)
	o.Decide(4, 100, 10)
	// New batch at view 5: the updated diff model flips the mode.
	if m := o.Decide(5, 100, 10); m != ModeScratch {
		t.Fatalf("view 5: %v (diff model should now predict ~600ms > 100ms)", m)
	}
}

func TestDefaultBatchSize(t *testing.T) {
	var o Optimizer
	o.Decide(0, 10, 0)
	o.Decide(1, 10, 5)
	o.ObserveScratch(10, time.Millisecond)
	o.ObserveDiff(5, 10*time.Millisecond)
	first := o.Decide(2, 10, 5)
	// Views 3..11 are inside the default ℓ=10 batch; the decision must not
	// be recomputed even as observations change.
	o.ObserveDiff(5, time.Microsecond)
	for i := 3; i < 12; i++ {
		if o.Decide(i, 10, 5) != first {
			t.Fatalf("view %d re-decided inside the default batch", i)
		}
	}
}

// TestPredictionAPI pins the scheduler-facing prediction surface: PredictScratch/
// PredictDiff mirror the fitted models, PeekMode matches what Decide would
// choose without advancing the decision state, and NextDecision/Batch expose
// the batch boundaries speculation simulates.
func TestPredictionAPI(t *testing.T) {
	o := &Optimizer{BatchSize: 3}
	if _, ok := o.PredictScratch(100); ok {
		t.Fatal("cold scratch model predicted")
	}
	if _, ok := o.PredictDiff(100); ok {
		t.Fatal("cold diff model predicted")
	}
	if o.Batch() != 3 {
		t.Fatalf("Batch() = %d", o.Batch())
	}
	// Cold models: PeekMode must fall back exactly as Decide does (diff).
	if o.PeekMode(100, 10) != ModeDiff {
		t.Fatal("cold PeekMode != ModeDiff")
	}

	// Scratch costs 1ms per unit size, diff 10ms per unit: scratch wins.
	o.ObserveScratch(100, 100*time.Millisecond)
	o.ObserveScratch(200, 200*time.Millisecond)
	o.ObserveDiff(10, 100*time.Millisecond)
	o.ObserveDiff(20, 200*time.Millisecond)

	st, ok := o.PredictScratch(300)
	if !ok || st < 250*time.Millisecond || st > 350*time.Millisecond {
		t.Fatalf("PredictScratch(300) = %v, %v", st, ok)
	}
	dt, ok := o.PredictDiff(50)
	if !ok || dt < 400*time.Millisecond || dt > 600*time.Millisecond {
		t.Fatalf("PredictDiff(50) = %v, %v", dt, ok)
	}

	// PeekMode must agree with Decide at a fresh decision point, and must
	// not advance the decision state the way Decide does.
	peek := o.PeekMode(300, 50)
	o.Decide(0, 0, 0) // bootstrap
	o.Decide(1, 0, 0)
	before := o.NextDecision()
	if before != 2 {
		t.Fatalf("NextDecision after bootstrap = %d", before)
	}
	if again := o.PeekMode(300, 50); again != peek {
		t.Fatalf("PeekMode unstable: %v then %v", peek, again)
	}
	if o.NextDecision() != before {
		t.Fatal("PeekMode advanced the decision state")
	}
	if got := o.Decide(2, 300, 50); got != peek {
		t.Fatalf("Decide(2) = %v, PeekMode said %v", got, peek)
	}
	if o.NextDecision() != 2+o.Batch() {
		t.Fatalf("NextDecision after Decide = %d", o.NextDecision())
	}
}
