// Package splitting implements Graphsurge's adaptive collection splitting
// optimizer (paper §5). Running every view of a collection differentially is
// not always fastest: unstable computations (PageRank) or dissimilar
// neighboring views can make differentially "fixing" the previous view's
// computation footprint slower than rerunning from scratch. Splitting the
// collection at view i means running view i from scratch (iterations are
// still shared differentially within the view) and continuing differentially
// from there.
//
// The optimizer observes two runtime signals — (|GV_i|, scratch time) and
// (|δC_i|, differential time) — fits a simple linear model to each, and picks
// the predicted-faster mode for each upcoming batch of ℓ views (ℓ = 10 by
// default, matching the paper; batching keeps the engine's indexing efficient
// when consecutive views run differentially). Bootstrap follows the paper:
// view 1 runs from scratch, view 2 differentially, and models take over from
// view 3.
package splitting

import "time"

// Model is an online simple linear regression y ≈ a + b·x. With a single
// observation it predicts proportionally through the origin; with none it
// cannot predict.
type Model struct {
	n                        int
	sumX, sumY, sumXY, sumXX float64
}

// Observe adds a data point.
func (m *Model) Observe(x, y float64) {
	m.n++
	m.sumX += x
	m.sumY += y
	m.sumXY += x * y
	m.sumXX += x * x
}

// Count returns the number of observations.
func (m *Model) Count() int { return m.n }

// Predict estimates y at x. ok is false with no observations.
func (m *Model) Predict(x float64) (y float64, ok bool) {
	switch {
	case m.n == 0:
		return 0, false
	case m.n == 1:
		if m.sumX == 0 {
			return m.sumY, true
		}
		return m.sumY / m.sumX * x, true
	}
	den := float64(m.n)*m.sumXX - m.sumX*m.sumX
	if den == 0 {
		// All observations at the same x: predict their mean.
		return m.sumY / float64(m.n), true
	}
	b := (float64(m.n)*m.sumXY - m.sumX*m.sumY) / den
	a := (m.sumY - b*m.sumX) / float64(m.n)
	p := a + b*x
	if p < 0 {
		p = 0
	}
	return p, true
}

// Mode is an execution mode for one view.
type Mode uint8

const (
	// ModeDiff runs the view differentially on top of the previous views.
	ModeDiff Mode = iota
	// ModeScratch splits the collection: fresh dataflow seeded with the full
	// view.
	ModeScratch
)

func (m Mode) String() string {
	if m == ModeScratch {
		return "scratch"
	}
	return "diff"
}

// DefaultBatchSize is ℓ, the number of views per splitting decision.
const DefaultBatchSize = 10

// Optimizer makes per-batch splitting decisions from observed runtimes.
type Optimizer struct {
	// BatchSize overrides ℓ when > 0.
	BatchSize int

	scratch Model
	diff    Model
	decided int // views whose mode has been decided so far
	mode    Mode
}

// ObserveScratch records a from-scratch run of a view with |GV| = size.
func (o *Optimizer) ObserveScratch(size int, d time.Duration) {
	o.scratch.Observe(float64(size), d.Seconds())
}

// ObserveDiff records a differential run of a view with |δC| = size.
func (o *Optimizer) ObserveDiff(size int, d time.Duration) {
	o.diff.Observe(float64(size), d.Seconds())
}

// Models exposes the fitted models (observability, tests).
func (o *Optimizer) Models() (scratch, diff *Model) { return &o.scratch, &o.diff }

// PredictScratch estimates the from-scratch runtime of a view with
// |GV| = size from the fitted scratch model. ok is false while the model is
// cold (no observations yet).
func (o *Optimizer) PredictScratch(size int) (time.Duration, bool) {
	y, ok := o.scratch.Predict(float64(size))
	return time.Duration(y * float64(time.Second)), ok
}

// PredictDiff estimates the differential runtime of a view with |δC| = size
// from the fitted diff model. ok is false while the model is cold.
func (o *Optimizer) PredictDiff(size int) (time.Duration, bool) {
	y, ok := o.diff.Predict(float64(size))
	return time.Duration(y * float64(time.Second)), ok
}

// PeekMode returns the mode the current models would choose for a view with
// the given sizes, without advancing the optimizer's decision state. Decide
// uses the same comparison; PeekMode is the read-only form schedulers use to
// anticipate upcoming decisions (speculative segment start).
func (o *Optimizer) PeekMode(viewSize, diffSize int) Mode {
	st, sok := o.scratch.Predict(float64(viewSize))
	dt, dok := o.diff.Predict(float64(diffSize))
	switch {
	case sok && dok:
		if st < dt {
			return ModeScratch
		}
		return ModeDiff
	case sok:
		return ModeScratch
	default:
		return ModeDiff
	}
}

// NextDecision returns the index of the next view at which the optimizer
// will make a fresh decision rather than reuse the current batch's mode.
// During bootstrap (before view 2) it reports the bootstrap position.
func (o *Optimizer) NextDecision() int { return o.decided }

// BatchMode returns the mode views before NextDecision inherit — the
// current batch's cached decision. Meaningful once the bootstrap views have
// been decided.
func (o *Optimizer) BatchMode() Mode { return o.mode }

// Batch returns the effective decision batch size ℓ.
func (o *Optimizer) Batch() int { return o.batch() }

func (o *Optimizer) batch() int {
	if o.BatchSize > 0 {
		return o.BatchSize
	}
	return DefaultBatchSize
}

// Decide returns the mode for view index i (0-based), given the view's full
// size and difference-set size. Views 0 and 1 are the bootstrap (scratch,
// then differential); afterwards one decision is made per batch of ℓ views by
// comparing the two models' predictions for the view opening the batch.
func (o *Optimizer) Decide(i, viewSize, diffSize int) Mode {
	switch i {
	case 0:
		o.mode, o.decided = ModeScratch, 1
		return ModeScratch
	case 1:
		o.mode, o.decided = ModeDiff, 2
		return ModeDiff
	}
	if i < o.decided {
		return o.mode
	}
	o.mode = o.PeekMode(viewSize, diffSize)
	o.decided = i + o.batch()
	return o.mode
}
