package splitting

// Segment is a maximal run of views executed on one dataflow instance: the
// first view seeds the dataflow (the initial load for the segment opening the
// collection, a from-scratch run for every later segment) and the remaining
// views run differentially on top of it. Segments are mutually independent —
// no dataflow state crosses a segment boundary — which is what makes them the
// unit of coarse-grained parallelism in the executor.
type Segment struct {
	Start, End int // half-open view range [Start, End)
}

// Len returns the number of views in the segment.
func (s Segment) Len() int { return s.End - s.Start }

// Plan is a complete execution plan for a k-view collection: the per-view
// modes chosen by the splitting strategy, grouped into independent segments.
// A new segment opens at view 0 and at every view whose mode is ModeScratch.
type Plan struct {
	Modes    []Mode
	Segments []Segment
}

// NumViews returns the number of views the plan covers.
func (p Plan) NumViews() int { return len(p.Modes) }

// Splits counts the from-scratch runs after view 0 — the number of times the
// collection is split, matching the paper's accounting (the initial load is
// not a split).
func (p Plan) Splits() int {
	n := 0
	for _, s := range p.Segments {
		if s.Start > 0 {
			n++
		}
	}
	return n
}

// PlanDiffOnly plans every view differentially: one segment spanning the
// whole collection.
func PlanDiffOnly(k int) Plan {
	p := Plan{Modes: make([]Mode, k)}
	if k > 0 {
		p.Segments = []Segment{{Start: 0, End: k}}
	}
	return p
}

// PlanScratch plans every view from scratch: k single-view segments, making
// the collection embarrassingly parallel.
func PlanScratch(k int) Plan {
	p := Plan{Modes: make([]Mode, k), Segments: make([]Segment, k)}
	for t := 0; t < k; t++ {
		p.Modes[t] = ModeScratch
		p.Segments[t] = Segment{Start: t, End: t + 1}
	}
	return p
}

// PlanFromModes groups an explicit per-view mode sequence into segments.
func PlanFromModes(modes []Mode) Plan {
	p := Plan{Modes: modes}
	for t, m := range modes {
		if t == 0 || m == ModeScratch {
			p.Segments = append(p.Segments, Segment{Start: t, End: t + 1})
		} else {
			p.Segments[len(p.Segments)-1].End = t + 1
		}
	}
	return p
}

// Planner converts the adaptive optimizer's one-at-a-time decisions into an
// incrementally growing plan. The executor consumes segments as split points
// are declared: each Extend call decides the next view and reports whether it
// opened a new segment, so a segment can be handed off for execution the
// moment the optimizer closes it.
//
// A Planner is not safe for concurrent use; callers that feed optimizer
// observations from executor goroutines must serialize Extend against the
// Observe* calls themselves.
type Planner struct {
	opt  *Optimizer
	plan Plan
}

// NewPlanner wraps an optimizer. The optimizer's models are shared: runtime
// observations fed to it between Extend calls inform later decisions.
func NewPlanner(opt *Optimizer) *Planner {
	return &Planner{opt: opt}
}

// Optimizer returns the wrapped optimizer, the sink for runtime observations.
func (p *Planner) Optimizer() *Optimizer { return p.opt }

// Extend decides the mode of the next undecided view given its full size and
// difference-set size, appends it to the plan, and reports whether the
// decision opened a new segment (view 0 always does; later views do exactly
// when the optimizer declares a split).
func (p *Planner) Extend(viewSize, diffSize int) (Mode, bool) {
	t := len(p.plan.Modes)
	mode := p.opt.Decide(t, viewSize, diffSize)
	p.plan.Modes = append(p.plan.Modes, mode)
	if t == 0 || mode == ModeScratch {
		p.plan.Segments = append(p.plan.Segments, Segment{Start: t, End: t + 1})
		return mode, true
	}
	p.plan.Segments[len(p.plan.Segments)-1].End = t + 1
	return mode, false
}

// Plan returns the plan built so far. The returned value shares backing
// arrays with the planner; callers should be done extending.
func (p *Planner) Plan() Plan { return p.plan }
