package experiments

import (
	"fmt"
	"time"

	"graphsurge/internal/analytics"
	"graphsurge/internal/core"
	"graphsurge/internal/datagen"
	"graphsurge/internal/gvdl"
	"graphsurge/internal/view"
)

// Fig10Row is one point of the scalability experiment.
type Fig10Row struct {
	Algorithm string
	Workers   int
	Runtime   time.Duration
	// MaxWork is the maximum per-worker record count, the critical-path
	// proxy for distributed scaling on single-core reproduction hardware
	// (see DESIGN.md).
	MaxWork int64
}

// Fig10 reproduces Figure 10 (§7.6): BFS and WCC over the 9-view social
// collection (same city/state/country × low/medium/high affinity), run with
// increasing worker counts standing in for the paper's 1-12 machines. The
// paper's shape is near-linear runtime scaling; on a single-core host the
// wall clock cannot improve, so the per-worker max-work proxy carries the
// scaling signal (it should fall near-linearly with workers), with wall
// clock reported for reference.
func Fig10(cfg Config) ([]Fig10Row, error) {
	edges := cfg.scaled(150_000)
	g := datagen.Social(datagen.SocialConfig{
		Nodes:     max(20, edges/15),
		Edges:     edges,
		Locations: 64,
		Seed:      77,
	})
	g.Name = "tw"

	var names []string
	var predSrcs []string
	for _, level := range []string{"city", "state", "country"} {
		for aff := 2; aff >= 0; aff-- {
			names = append(names, fmt.Sprintf("%s-aff%d", level, aff))
			predSrcs = append(predSrcs,
				fmt.Sprintf("src.%s = dst.%s and affinity >= %d", level, level, aff))
		}
	}
	preds := make([]gvdl.EdgePredicate, len(predSrcs))
	for i, src := range predSrcs {
		stmt, err := gvdl.Parse("create view v on tw edges where " + src)
		if err != nil {
			return nil, err
		}
		p, err := gvdl.CompileEdgePredicate(g, stmt.(*gvdl.CreateView).Where)
		if err != nil {
			return nil, err
		}
		preds[i] = p
	}
	col, err := view.MaterializeFromPredicates("social-9", g, names, preds,
		view.Options{Workers: cfg.workers()})
	if err != nil {
		return nil, err
	}

	algs := []temporalAlg{
		{"BFS", func() analytics.Computation { return analytics.BFS{Source: 0} }},
		{"WCC", func() analytics.Computation { return analytics.WCC{} }},
	}
	var rows []Fig10Row
	for _, a := range algs {
		for _, w := range []int{1, 2, 4, 8, 12} {
			res, err := core.RunCollection(col, a.mk(), core.RunOptions{Mode: core.DiffOnly, Workers: w})
			if err != nil {
				return nil, err
			}
			rows = append(rows, Fig10Row{
				Algorithm: a.name,
				Workers:   w,
				Runtime:   res.Total,
				MaxWork:   res.MaxWork(),
			})
		}
	}
	if cfg.Out != nil {
		fmt.Fprintf(cfg.Out, "Figure 10: scaling over workers, 9-view social collection (|E| = %d)\n", g.NumEdges())
		t := newTable(cfg.Out)
		t.row("Algorithm", "Workers", "runtime (s)", "max-work/worker", "work scaling vs 1")
		base := map[string]int64{}
		for _, r := range rows {
			if r.Workers == 1 {
				base[r.Algorithm] = r.MaxWork
			}
		}
		for _, r := range rows {
			scalingNote := "-"
			if b := base[r.Algorithm]; b > 0 && r.MaxWork > 0 {
				scalingNote = fmt.Sprintf("%.2fx", float64(b)/float64(r.MaxWork))
			}
			t.row(r.Algorithm, r.Workers, secs(r.Runtime), r.MaxWork, scalingNote)
		}
		t.flush()
	}
	return rows, nil
}
