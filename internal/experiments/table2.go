package experiments

import (
	"fmt"
	"time"

	"graphsurge/internal/analytics"
	"graphsurge/internal/core"
	"graphsurge/internal/datagen"
	"graphsurge/internal/view"
)

// Table2Row is one cell group of Table 2: an algorithm on a collection, run
// diff-only and from scratch.
type Table2Row struct {
	Collection string
	Algorithm  string
	DiffOnly   time.Duration
	Scratch    time.Duration
}

// Table2 reproduces Table 2 (§5): Bellman-Ford and PageRank over two
// synthetic view collections on an Orkut-like social graph — one with tiny
// difference sets (±500 edges per view), one with huge ones (+20% / −15% of
// the base view per view, the paper's 2M/1.5M on 10M edges). The paper's
// shape: BF wins differentially on both; PR wins differentially only on the
// similar collection and loses from-scratch on the dissimilar one.
func Table2(cfg Config) ([]Table2Row, error) {
	baseEdges := cfg.scaled(120_000)
	pool := baseEdges * 8 / 5
	nodes := baseEdges / 15
	const views = 20

	g := datagen.Social(datagen.SocialConfig{Nodes: nodes, Edges: pool, Seed: 42})
	g.Name = "orkut"

	// The paper's C1K perturbs ±500 edges of a 10M-edge view (0.005%); the
	// similar collection here scales that proportion to the generated graph
	// (0.01%) so the "highly similar views" regime is preserved. Cbig keeps
	// the paper's +20% / −15% (2M/1.5M on 10M).
	tiny := max(1, baseEdges/10000)
	small := view.NewCollection("Csmall", g,
		randomViewSequence(pool, baseEdges, views, tiny, tiny, 1))
	big := view.NewCollection("Cbig", g,
		randomViewSequence(pool, baseEdges, views, baseEdges/5, baseEdges*3/20, 2))

	algs := []struct {
		name string
		mk   func() analytics.Computation
	}{
		{"BF", func() analytics.Computation { return analytics.SSSP{Source: 0} }},
		{"PR", func() analytics.Computation { return analytics.PageRank{Iterations: 10} }},
	}

	var rows []Table2Row
	for _, col := range []*view.Collection{small, big} {
		for _, a := range algs {
			res, err := runModes(col, a.mk, core.RunOptions{Workers: cfg.workers(), WeightProp: "w"},
				[]core.ExecMode{core.DiffOnly, core.Scratch})
			if err != nil {
				return nil, err
			}
			rows = append(rows, Table2Row{
				Collection: col.Name,
				Algorithm:  a.name,
				DiffOnly:   res[core.DiffOnly].Total,
				Scratch:    res[core.Scratch].Total,
			})
		}
	}

	if cfg.Out != nil {
		fmt.Fprintf(cfg.Out, "Table 2: diff-only vs scratch, %d-view collections on social graph (|E| base = %d)\n", views, baseEdges)
		t := newTable(cfg.Out)
		t.row("|Diff Sets|", "Algorithm", "diff-only (s)", "scratch (s)", "diff/scratch")
		for _, r := range rows {
			t.row(r.Collection, r.Algorithm, secs(r.DiffOnly), secs(r.Scratch), ratio(r.DiffOnly, r.Scratch))
		}
		t.flush()
	}
	return rows, nil
}
