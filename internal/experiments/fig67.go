package experiments

import (
	"fmt"
	"time"

	"graphsurge/internal/analytics"
	"graphsurge/internal/core"
	"graphsurge/internal/datagen"
	"graphsurge/internal/graph"
	"graphsurge/internal/view"
)

// FigRow is one bar group of Figures 6/7: an algorithm on one collection,
// run in all three modes (diff-only, scratch, adaptive).
type FigRow struct {
	Algorithm string
	Window    string
	Views     int
	DiffOnly  time.Duration
	Scratch   time.Duration
	Adaptive  time.Duration
}

// temporalAlg pairs an algorithm name with its constructor.
type temporalAlg struct {
	name string
	mk   func() analytics.Computation
}

// temporalAlgs are the four algorithms of Figures 6 and 7.
func temporalAlgs() []temporalAlg {
	return []temporalAlg{
		{"WCC", func() analytics.Computation { return analytics.WCC{} }},
		{"BFS", func() analytics.Computation { return analytics.BFS{Source: 0} }},
		{"SCC", func() analytics.Computation { return &analytics.SCC{Phases: 6} }},
		{"PR", func() analytics.Computation { return analytics.PageRank{Iterations: 10} }},
	}
}

// temporalDays is the timestamp range of the SO-like graph; windows below
// are in these "days".
const temporalDays = 400

func newTemporalGraph(cfg Config) (*graph.Graph, int) {
	edges := cfg.scaled(40_000)
	g := datagen.Temporal(datagen.TemporalConfig{
		Nodes: max(20, edges/10),
		Edges: edges,
		Days:  temporalDays,
		Seed:  7,
	})
	g.Name = "so"
	dayCol, _ := g.EdgeProps.ColumnIndex("ts")
	return g, dayCol
}

func runFig(cfg Config, title string, collections []*view.Collection) ([]FigRow, error) {
	modes := []core.ExecMode{core.DiffOnly, core.Scratch, core.Adaptive}
	var rows []FigRow
	for _, a := range temporalAlgs() {
		for _, col := range collections {
			res, err := runModes(col, a.mk, core.RunOptions{Workers: cfg.workers()}, modes)
			if err != nil {
				return nil, err
			}
			rows = append(rows, FigRow{
				Algorithm: a.name,
				Window:    col.Name,
				Views:     col.Stream.NumViews(),
				DiffOnly:  res[core.DiffOnly].Total,
				Scratch:   res[core.Scratch].Total,
				Adaptive:  res[core.Adaptive].Total,
			})
		}
	}
	if cfg.Out != nil {
		fmt.Fprintln(cfg.Out, title)
		t := newTable(cfg.Out)
		t.row("Algorithm", "w", "views", "diff-only (s)", "scratch (s)", "adaptive (s)", "scratch/diff")
		for _, r := range rows {
			t.row(r.Algorithm, r.Window, r.Views, secs(r.DiffOnly), secs(r.Scratch), secs(r.Adaptive),
				ratio(r.Scratch, r.DiffOnly))
		}
		t.flush()
	}
	return rows, nil
}

// Fig6 reproduces Figure 6 (§7.2): the Csim collections — an initial
// half-range window expanded by w per view until the end of the dataset, for
// five window sizes. Smaller w means more, more-similar views; the paper's
// shape is an increasing diff-only advantage as w shrinks, with PageRank the
// least-stable exception, and adaptive tracking the better strategy.
func Fig6(cfg Config) ([]FigRow, error) {
	g, dayCol := newTemporalGraph(cfg)
	const start = temporalDays / 2
	var collections []*view.Collection
	for _, w := range []int{5, 10, 30, 60, 120} {
		var windows [][2]int64
		var names []string
		for hi := start; hi <= temporalDays; hi += w {
			windows = append(windows, [2]int64{0, int64(hi)})
			names = append(names, fmt.Sprintf("0..%d", hi))
		}
		col := view.NewCollection(fmt.Sprintf("w=%dd", w), g, windowStream(g, dayCol, windows, names))
		collections = append(collections, col)
	}
	return runFig(cfg, fmt.Sprintf("Figure 6: Csim expanding windows on temporal graph (|E| = %d)", g.NumEdges()), collections)
}

// Fig7 reproduces Figure 7 (§7.2): the Cno collections — completely
// non-overlapping sliding windows of size w. The paper's shape: scratch wins
// modestly (≤ ~2.5x) and the advantage does not grow with the number of
// views; adaptive tracks scratch.
func Fig7(cfg Config) ([]FigRow, error) {
	g, dayCol := newTemporalGraph(cfg)
	var collections []*view.Collection
	for _, w := range []int{40, 50, 80, 100, 200} {
		var windows [][2]int64
		var names []string
		for lo := 0; lo+w <= temporalDays; lo += w {
			windows = append(windows, [2]int64{int64(lo), int64(lo + w)})
			names = append(names, fmt.Sprintf("%d..%d", lo, lo+w))
		}
		col := view.NewCollection(fmt.Sprintf("w=%dd", w), g, windowStream(g, dayCol, windows, names))
		collections = append(collections, col)
	}
	return runFig(cfg, fmt.Sprintf("Figure 7: Cno non-overlapping windows on temporal graph (|E| = %d)", g.NumEdges()), collections)
}
