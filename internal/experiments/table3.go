package experiments

import (
	"fmt"
	"time"

	"graphsurge/internal/analytics"
	"graphsurge/internal/core"
	"graphsurge/internal/datagen"
	"graphsurge/internal/graph"
	"graphsurge/internal/gvdl"
	"graphsurge/internal/view"
)

// Table3Row is one cell group of Table 3: an algorithm on one of the three
// citation collections, in all three modes.
type Table3Row struct {
	Algorithm  string
	Collection string
	DiffOnly   time.Duration
	Scratch    time.Duration
	Adaptive   time.Duration
}

// citationCollections builds the paper's three PC-dataset collections via
// GVDL predicates over the citation graph's year/authors properties:
//
//	Csl        — a decade window sliding by 5 years, 16 views
//	Cex-sh-sl  — a window that expands, shrinks, then slides by 1 year
//	Caut       — the cartesian product of 5-year windows × author-count
//	             windows, whose year boundaries are natural split points
func citationCollections(cfg Config) (*graph.Graph, []*view.Collection, error) {
	papers := cfg.scaled(30_000)
	g := datagen.Citation(datagen.CitationConfig{
		Papers:   papers,
		AvgCites: 5,
		YearFrom: 1936,
		YearTo:   2020,
		Seed:     13,
	})
	g.Name = "pc"

	mk := func(name string, specs [][2]string) (*view.Collection, error) {
		names := make([]string, len(specs))
		preds := make([]gvdl.EdgePredicate, len(specs))
		for i, s := range specs {
			stmt, err := gvdl.Parse("create view v on pc edges where " + s[1])
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", name, s[0], err)
			}
			p, err := gvdl.CompileEdgePredicate(g, stmt.(*gvdl.CreateView).Where)
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", name, s[0], err)
			}
			names[i], preds[i] = s[0], p
		}
		return view.MaterializeFromPredicates(name, g, names, preds, view.Options{Workers: cfg.workers()})
	}

	yearWindow := func(from, to int) string {
		return fmt.Sprintf("src.year >= %d and src.year <= %d and dst.year >= %d and dst.year <= %d",
			from, to, from, to)
	}

	// Csl: [1936,1945], [1941,1950], ..., [2011,2020].
	var sl [][2]string
	for from := 1936; from+9 <= 2020; from += 5 {
		sl = append(sl, [2]string{fmt.Sprintf("%d-%d", from, from+9), yearWindow(from, from+9)})
	}
	csl, err := mk("Csl", sl)
	if err != nil {
		return nil, nil, err
	}

	// Cex-sh-sl: [1995,2000] expands to [1995,2005], shrinks to [2000,2005],
	// slides to [2005,2010], by one-year steps.
	var ess [][2]string
	for to := 2000; to <= 2005; to++ { // expand
		ess = append(ess, [2]string{fmt.Sprintf("1995-%d", to), yearWindow(1995, to)})
	}
	for from := 1996; from <= 2000; from++ { // shrink
		ess = append(ess, [2]string{fmt.Sprintf("%d-2005", from), yearWindow(from, 2005)})
	}
	for from := 2001; from <= 2005; from++ { // slide
		ess = append(ess, [2]string{fmt.Sprintf("%d-%d", from, from+5), yearWindow(from, from+5)})
	}
	cess, err := mk("Cex-sh-sl", ess)
	if err != nil {
		return nil, nil, err
	}

	// Caut: year windows [1996,2000]..[2016,2020] × author windows
	// [0,5]..[0,25].
	var aut [][2]string
	for from := 1996; from+4 <= 2020; from += 5 {
		for hi := 5; hi <= 25; hi += 5 {
			aut = append(aut, [2]string{
				fmt.Sprintf("%d-%dx0-%d", from, from+4, hi),
				yearWindow(from, from+4) +
					fmt.Sprintf(" and src.authors <= %d and dst.authors <= %d", hi, hi),
			})
		}
	}
	caut, err := mk("Caut", aut)
	if err != nil {
		return nil, nil, err
	}
	return g, []*view.Collection{csl, cess, caut}, nil
}

// Table3 reproduces Table 3 (§7.3): WCC, BFS, SCC and PageRank over the
// three citation-graph collections, comparing diff-only, scratch and the
// adaptive splitting optimizer. The paper's shape: adaptive matches or beats
// the better of the other two everywhere, and on Caut (which has natural
// split points where the year window slides) it beats both.
func Table3(cfg Config) ([]Table3Row, error) {
	_, collections, err := citationCollections(cfg)
	if err != nil {
		return nil, err
	}
	algs := []temporalAlg{
		{"WCC", func() analytics.Computation { return analytics.WCC{} }},
		{"BFS", func() analytics.Computation { return analytics.BFS{Source: 0} }},
		{"SCC", func() analytics.Computation { return &analytics.SCC{Phases: 6} }},
		{"PR", func() analytics.Computation { return analytics.PageRank{Iterations: 10} }},
	}
	modes := []core.ExecMode{core.DiffOnly, core.Scratch, core.Adaptive}
	var rows []Table3Row
	for _, a := range algs {
		for _, col := range collections {
			res, err := runModes(col, a.mk, core.RunOptions{Workers: cfg.workers(), WeightProp: "w"}, modes)
			if err != nil {
				return nil, err
			}
			rows = append(rows, Table3Row{
				Algorithm:  a.name,
				Collection: col.Name,
				DiffOnly:   res[core.DiffOnly].Total,
				Scratch:    res[core.Scratch].Total,
				Adaptive:   res[core.Adaptive].Total,
			})
		}
	}
	if cfg.Out != nil {
		fmt.Fprintln(cfg.Out, "Table 3: citation-graph collections, adaptive vs diff-only vs scratch")
		t := newTable(cfg.Out)
		t.row("Algorithm", "Collection", "diff (s)", "scratch (s)", "adaptive (s)", "diff/adapt", "scratch/adapt")
		for _, r := range rows {
			t.row(r.Algorithm, r.Collection, secs(r.DiffOnly), secs(r.Scratch), secs(r.Adaptive),
				ratio(r.DiffOnly, r.Adaptive), ratio(r.Scratch, r.Adaptive))
		}
		t.flush()
	}
	return rows, nil
}
