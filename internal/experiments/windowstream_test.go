package experiments

import (
	"math/rand"
	"testing"
	"testing/quick"

	"graphsurge/internal/datagen"
)

// TestWindowStreamMatchesDirectSelection: accumulating the window diff
// stream through view t yields exactly the edges whose timestamp falls in
// window t — for random window sequences, including overlapping, nested and
// disjoint ones.
func TestWindowStreamMatchesDirectSelection(t *testing.T) {
	g := datagen.Temporal(datagen.TemporalConfig{Nodes: 100, Edges: 2000, Days: 50, Seed: 12})
	dayCol, _ := g.EdgeProps.ColumnIndex("ts")
	days := g.EdgeProps.Cols[dayCol].Ints

	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k := 1 + r.Intn(6)
		windows := make([][2]int64, k)
		names := make([]string, k)
		for i := range windows {
			lo := int64(r.Intn(50))
			hi := lo + int64(r.Intn(30))
			windows[i] = [2]int64{lo, hi}
			names[i] = "w"
		}
		s := windowStream(g, dayCol, windows, names)
		present := make(map[uint32]bool)
		for t2 := 0; t2 < k; t2++ {
			for _, e := range s.Adds[t2] {
				if present[e] {
					return false
				}
				present[e] = true
			}
			for _, e := range s.Dels[t2] {
				if !present[e] {
					return false
				}
				delete(present, e)
			}
			for i := 0; i < g.NumEdges(); i++ {
				in := days[i] >= windows[t2][0] && days[i] < windows[t2][1]
				if present[uint32(i)] != in {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPerturbationPredicatesRemoveCommunities(t *testing.T) {
	g := datagen.Community(datagen.CommunityConfig{
		Nodes: 500, Communities: 6, IntraDeg: 3, InterDeg: 1, Seed: 13,
	})
	names, preds := perturbationPredicates(g, 4, 2)
	if len(names) != 6 { // C(4,2)
		t.Fatalf("%d views", len(names))
	}
	ci, _ := g.NodeProps.ColumnIndex("community")
	comm := g.NodeProps.Cols[ci].Ints
	// First subset is {0,1}: no surviving edge touches them.
	for i := 0; i < g.NumEdges(); i++ {
		if !preds[0](i) {
			continue
		}
		cs, cd := comm[g.Srcs[i]], comm[g.Dsts[i]]
		if cs == 0 || cs == 1 || cd == 0 || cd == 1 {
			t.Fatalf("edge %d (%d->%d) survived removal of its community", i, cs, cd)
		}
	}
	// Each view removes something.
	for vi, p := range preds {
		kept := 0
		for i := 0; i < g.NumEdges(); i++ {
			if p(i) {
				kept++
			}
		}
		if kept == 0 || kept == g.NumEdges() {
			t.Fatalf("view %d keeps %d/%d edges", vi, kept, g.NumEdges())
		}
	}
}
