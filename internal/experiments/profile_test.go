package experiments

import (
	"testing"

	"graphsurge/internal/analytics"
	"graphsurge/internal/core"
	"graphsurge/internal/datagen"
	"graphsurge/internal/view"
)

// BenchmarkPRDiffStep isolates the differential PageRank path for profiling:
// a small-diff collection over a social graph, diff-only.
func BenchmarkPRDiffStep(b *testing.B) {
	base := 30_000
	pool := base * 8 / 5
	g := datagen.Social(datagen.SocialConfig{Nodes: base / 15, Edges: pool, Seed: 42})
	g.Name = "orkut"
	col := view.NewCollection("Csmall", g, randomViewSequence(pool, base, 12, 15, 15, 1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := core.RunCollection(col, analytics.PageRank{Iterations: 10}, core.RunOptions{Mode: core.DiffOnly, WeightProp: "w"})
		if err != nil {
			b.Fatal(err)
		}
	}
}
