// Package experiments regenerates every table and figure of the Graphsurge
// paper's evaluation (§7) on the synthetic stand-in datasets described in
// DESIGN.md. Each experiment prints the same rows/series the paper reports;
// EXPERIMENTS.md records the paper-vs-measured comparison. Absolute numbers
// differ from the paper (different hardware, scaled datasets); the shapes —
// which strategy wins, by roughly what factor, where the crossovers fall —
// are the reproduction target.
package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"text/tabwriter"
	"time"

	"graphsurge/internal/analytics"
	"graphsurge/internal/core"
	"graphsurge/internal/graph"
	"graphsurge/internal/view"
)

// Config scales and directs an experiment run.
type Config struct {
	// Scale multiplies dataset sizes; 1.0 is the default experiment size
	// (minutes on a laptop core), benchmarks use ~0.1-0.3.
	Scale float64
	// Workers is the dataflow parallelism per run.
	Workers int
	// Out receives the result tables.
	Out io.Writer
}

func (c Config) scaled(base int) int {
	if c.Scale <= 0 {
		c.Scale = 1
	}
	n := int(float64(base) * c.Scale)
	if n < 1 {
		n = 1
	}
	return n
}

func (c Config) workers() int {
	if c.Workers < 1 {
		return 1
	}
	return c.Workers
}

// table is a small helper for aligned output.
type table struct {
	w *tabwriter.Writer
}

func newTable(out io.Writer) *table {
	return &table{w: tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)}
}

func (t *table) row(cells ...any) {
	for i, c := range cells {
		if i > 0 {
			fmt.Fprint(t.w, "\t")
		}
		fmt.Fprint(t.w, c)
	}
	fmt.Fprintln(t.w)
}

func (t *table) flush() { t.w.Flush() }

// secs formats a duration as seconds with 3 decimals.
func secs(d time.Duration) string { return fmt.Sprintf("%.3f", d.Seconds()) }

// ratio formats "a is X× of b" the way the paper's tables annotate runtimes.
func ratio(a, b time.Duration) string {
	if b == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1fx", float64(a)/float64(b))
}

// runModes executes a computation over a collection in each mode and returns
// the totals.
func runModes(col *view.Collection, mk func() analytics.Computation, opts core.RunOptions, modes []core.ExecMode) (map[core.ExecMode]*core.RunResult, error) {
	out := make(map[core.ExecMode]*core.RunResult, len(modes))
	for _, m := range modes {
		o := opts
		o.Mode = m
		res, err := core.RunCollection(col, mk(), o)
		if err != nil {
			return nil, err
		}
		out[m] = res
	}
	return out, nil
}

// subsetStream builds a difference stream from explicit per-view edge-index
// sets given as adds/dels relative to the previous view.
type streamBuilder struct {
	names []string
	adds  [][]uint32
	dels  [][]uint32
}

func (b *streamBuilder) view(name string, adds, dels []uint32) {
	b.names = append(b.names, name)
	b.adds = append(b.adds, adds)
	b.dels = append(b.dels, dels)
}

func (b *streamBuilder) stream() *view.DiffStream {
	return &view.DiffStream{Names: b.names, Adds: b.adds, Dels: b.dels}
}

// randomViewSequence generates k views over a pool of edges: the first view
// is the prefix [0, start); every later view removes `rem` random present
// edges and adds `add` random absent ones. Used by the Table 2 workload.
func randomViewSequence(pool int, start, k, add, rem int, seed int64) *view.DiffStream {
	r := rand.New(rand.NewSource(seed))
	present := make([]bool, pool)
	var presentList, absentList []uint32
	for i := 0; i < pool; i++ {
		if i < start {
			present[i] = true
			presentList = append(presentList, uint32(i))
		} else {
			absentList = append(absentList, uint32(i))
		}
	}
	b := &streamBuilder{}
	first := make([]uint32, len(presentList))
	copy(first, presentList)
	b.view("v0", first, nil)

	for t := 1; t < k; t++ {
		// Pick additions first so the deletions below cannot touch an edge
		// added in the same view (a view's adds and dels must be disjoint).
		var adds []uint32
		addedNow := make(map[uint32]bool, add)
		for len(adds) < add && len(absentList) > 0 {
			i := r.Intn(len(absentList))
			e := absentList[i]
			absentList[i] = absentList[len(absentList)-1]
			absentList = absentList[:len(absentList)-1]
			present[e] = true
			addedNow[e] = true
			adds = append(adds, e)
			presentList = append(presentList, e)
		}
		var dels []uint32
		for tries := 0; len(dels) < rem && len(presentList) > len(adds) && tries < 10*rem+100; tries++ {
			i := r.Intn(len(presentList))
			e := presentList[i]
			if addedNow[e] {
				continue
			}
			presentList[i] = presentList[len(presentList)-1]
			presentList = presentList[:len(presentList)-1]
			present[e] = false
			dels = append(dels, e)
			absentList = append(absentList, e)
		}
		b.view(fmt.Sprintf("v%d", t), adds, dels)
	}
	return b.stream()
}

// windowStream builds views selecting edges whose integer property value
// lies in [lo, hi) per view — the temporal window workloads. Edges must be
// classified by the caller via edgeDay.
func windowStream(g *graph.Graph, dayCol int, windows [][2]int64, names []string) *view.DiffStream {
	days := g.EdgeProps.Cols[dayCol].Ints
	b := &streamBuilder{}
	present := make([]bool, g.NumEdges())
	for vi, w := range windows {
		var adds, dels []uint32
		for i := 0; i < g.NumEdges(); i++ {
			in := days[i] >= w[0] && days[i] < w[1]
			if in && !present[i] {
				adds = append(adds, uint32(i))
				present[i] = true
			} else if !in && present[i] {
				dels = append(dels, uint32(i))
				present[i] = false
			}
		}
		b.view(names[vi], adds, dels)
	}
	return b.stream()
}
