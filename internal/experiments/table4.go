package experiments

import (
	"fmt"
	"time"

	"graphsurge/internal/analytics"
	"graphsurge/internal/core"
	"graphsurge/internal/datagen"
	"graphsurge/internal/graph"
	"graphsurge/internal/gvdl"
	"graphsurge/internal/view"
)

// Table4Row reports one ordering of one perturbation collection: total edge
// diffs and collection creation time (CCT).
type Table4Row struct {
	Dataset    string
	Collection string
	Order      string
	Diffs      int64
	CCT        time.Duration
}

// Fig89Row reports one algorithm × ordering, with adaptive splitting off and
// on (Figures 8 and 9).
type Fig89Row struct {
	Dataset    string
	Collection string
	Algorithm  string
	Order      string
	NoAdapt    time.Duration
	WithAdapt  time.Duration
}

// combinations enumerates k-subsets of {0..n-1}.
func combinations(n, k int) [][]int {
	var out [][]int
	cur := make([]int, 0, k)
	var rec func(start int)
	rec = func(start int) {
		if len(cur) == k {
			out = append(out, append([]int(nil), cur...))
			return
		}
		for i := start; i <= n-(k-len(cur)); i++ {
			cur = append(cur, i)
			rec(i + 1)
			cur = cur[:len(cur)-1]
		}
	}
	rec(0)
	return out
}

// perturbationPredicates builds one predicate per k-subset of the top-N
// communities: the view removes every edge with an endpoint in the subset
// (the paper's §7.4 contingency-analysis workload).
func perturbationPredicates(g *graph.Graph, n, k int) ([]string, []gvdl.EdgePredicate) {
	ci, _ := g.NodeProps.ColumnIndex("community")
	comm := g.NodeProps.Cols[ci].Ints
	srcs, dsts := g.Srcs, g.Dsts
	var names []string
	var preds []gvdl.EdgePredicate
	for _, subset := range combinations(n, k) {
		var mask uint32
		name := ""
		for _, c := range subset {
			mask |= 1 << uint(c)
			name += fmt.Sprintf("%d", c)
		}
		m := mask
		names = append(names, "rm"+name)
		preds = append(preds, func(i int) bool {
			return m&(1<<uint(comm[srcs[i]])) == 0 && m&(1<<uint(comm[dsts[i]])) == 0
		})
	}
	return names, preds
}

// communityDataset bundles a dataset's perturbation collections under every
// ordering.
type communityDataset struct {
	name string
	g    *graph.Graph
	// cols[collection][order] is the materialized collection.
	cols map[string]map[string]*view.Collection
	rows []Table4Row
}

// orderNames are the orderings compared in Table 4 and Figures 8/9.
var orderNames = []string{"Ord", "R1", "R2", "R3"}

func buildCommunityDataset(cfg Config, name string, nodes int, seed int64) (*communityDataset, error) {
	g := datagen.Community(datagen.CommunityConfig{
		Nodes:       nodes,
		Communities: 12,
		IntraDeg:    6,
		InterDeg:    1,
		Seed:        seed,
	})
	g.Name = name
	ds := &communityDataset{name: name, g: g, cols: make(map[string]map[string]*view.Collection)}
	specs := []struct {
		cname string
		n, k  int
	}{
		{"10C5", 10, 5},
		{"7C4", 7, 4},
	}
	for _, sp := range specs {
		names, preds := perturbationPredicates(g, sp.n, sp.k)
		ds.cols[sp.cname] = make(map[string]*view.Collection)
		for oi, oname := range orderNames {
			opts := view.Options{Workers: cfg.workers()}
			if oname == "Ord" {
				opts.Mode = view.OrderOptimized
			} else {
				opts.Mode = view.OrderRandom
				opts.Seed = int64(oi)
			}
			col, err := view.MaterializeFromPredicates(
				fmt.Sprintf("%s-%s-%s", name, sp.cname, oname), g, names, preds, opts)
			if err != nil {
				return nil, err
			}
			ds.cols[sp.cname][oname] = col
			ds.rows = append(ds.rows, Table4Row{
				Dataset:    name,
				Collection: sp.cname,
				Order:      oname,
				Diffs:      col.Stream.TotalDiffs(),
				CCT:        col.Timings.Total(),
			})
		}
	}
	return ds, nil
}

func ljDataset(cfg Config) (*communityDataset, error) {
	return buildCommunityDataset(cfg, "lj", cfg.scaled(3000), 31)
}

func wtcDataset(cfg Config) (*communityDataset, error) {
	return buildCommunityDataset(cfg, "wtc", cfg.scaled(1500), 32)
}

// Table4 reproduces Table 4 (§7.4): the number of edge diffs and the
// collection creation time of the optimizer's order vs three random orders,
// for the C(10,5) and C(7,4) community-removal collections on both
// community graphs. The paper's shape: the optimizer produces several-fold
// fewer diffs at a modest (1.1-1.7x) CCT overhead.
func Table4(cfg Config) ([]Table4Row, error) {
	var rows []Table4Row
	for _, build := range []func(Config) (*communityDataset, error){ljDataset, wtcDataset} {
		ds, err := build(cfg)
		if err != nil {
			return nil, err
		}
		rows = append(rows, ds.rows...)
	}
	if cfg.Out != nil {
		fmt.Fprintln(cfg.Out, "Table 4: #diffs and collection creation time, optimizer order vs random orders")
		t := newTable(cfg.Out)
		t.row("Dataset", "Collection", "Order", "#Diffs", "CCT (s)", "diffs vs Ord")
		byKey := map[string]int64{}
		for _, r := range rows {
			if r.Order == "Ord" {
				byKey[r.Dataset+r.Collection] = r.Diffs
			}
		}
		for _, r := range rows {
			base := byKey[r.Dataset+r.Collection]
			rel := "-"
			if base > 0 {
				rel = fmt.Sprintf("%.1fx", float64(r.Diffs)/float64(base))
			}
			t.row(r.Dataset, r.Collection, r.Order, r.Diffs, secs(r.CCT), rel)
		}
		t.flush()
	}
	return rows, nil
}

// fig89Algs are the algorithms of Figures 8 and 9. MPSP pairs are seeded on
// the graph's communities.
func fig89Algs(g *graph.Graph) []temporalAlg {
	n := uint64(g.NumNodes)
	pairs := []analytics.Pair{}
	for i := uint64(0); i < 5; i++ {
		pairs = append(pairs, analytics.Pair{Src: 0, Dst: (i*2797 + 31) % n})
	}
	return []temporalAlg{
		{"WCC", func() analytics.Computation { return analytics.WCC{} }},
		{"BFS", func() analytics.Computation { return analytics.BFS{Source: 0} }},
		{"MPSP", func() analytics.Computation { return analytics.MPSP{Pairs: pairs} }},
	}
}

func runFig89(cfg Config, ds *communityDataset, figure string) ([]Fig89Row, error) {
	var rows []Fig89Row
	for _, cname := range []string{"10C5", "7C4"} {
		for _, a := range fig89Algs(ds.g) {
			for _, oname := range orderNames {
				col := ds.cols[cname][oname]
				res, err := runModes(col, a.mk,
					core.RunOptions{Workers: cfg.workers(), WeightProp: "w"},
					[]core.ExecMode{core.DiffOnly, core.Adaptive})
				if err != nil {
					return nil, err
				}
				rows = append(rows, Fig89Row{
					Dataset:    ds.name,
					Collection: cname,
					Algorithm:  a.name,
					Order:      oname,
					NoAdapt:    res[core.DiffOnly].Total,
					WithAdapt:  res[core.Adaptive].Total,
				})
			}
		}
	}
	if cfg.Out != nil {
		fmt.Fprintf(cfg.Out, "%s: runtimes under collection orderings, adaptive off/on (%s)\n", figure, ds.name)
		t := newTable(cfg.Out)
		t.row("Collection", "Algorithm", "Order", "no adapt (s)", "with adapt (s)")
		for _, r := range rows {
			t.row(r.Collection, r.Algorithm, r.Order, secs(r.NoAdapt), secs(r.WithAdapt))
		}
		t.flush()
	}
	return rows, nil
}

// Fig8 reproduces Figure 8 (§7.4): WCC, BFS and MPSP on the LJ-like
// community graph under the optimizer's order vs random orders, with
// adaptive splitting off and on. The paper's shape: ordering wins big
// without adaptive splitting; adaptive narrows but does not erase the gap.
func Fig8(cfg Config) ([]Fig89Row, error) {
	ds, err := ljDataset(cfg)
	if err != nil {
		return nil, err
	}
	return runFig89(cfg, ds, "Figure 8")
}

// Fig9 reproduces Figure 9 (§7.4): the same experiment on the WTC-like
// graph.
func Fig9(cfg Config) ([]Fig89Row, error) {
	ds, err := wtcDataset(cfg)
	if err != nil {
		return nil, err
	}
	return runFig89(cfg, ds, "Figure 9")
}
