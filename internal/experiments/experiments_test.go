package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// tinyCfg runs experiments at a very small scale; these tests check
// structure and sanity, not performance shapes (the bench harness and
// EXPERIMENTS.md cover those).
func tinyCfg(buf *bytes.Buffer) Config {
	return Config{Scale: 0.02, Workers: 1, Out: buf}
}

func TestTable2Shape(t *testing.T) {
	var buf bytes.Buffer
	rows, err := Table2(tinyCfg(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.DiffOnly <= 0 || r.Scratch <= 0 {
			t.Fatalf("row %+v has zero runtime", r)
		}
	}
	if !strings.Contains(buf.String(), "Table 2") {
		t.Fatal("missing header")
	}
}

func TestFig6Shape(t *testing.T) {
	var buf bytes.Buffer
	rows, err := Fig6(tinyCfg(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4*5 {
		t.Fatalf("%d rows", len(rows))
	}
	// Smaller windows yield more views.
	if rows[0].Views <= rows[4].Views {
		t.Fatalf("views not decreasing with w: %+v vs %+v", rows[0], rows[4])
	}
}

func TestFig7Shape(t *testing.T) {
	var buf bytes.Buffer
	rows, err := Fig7(tinyCfg(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4*5 {
		t.Fatalf("%d rows", len(rows))
	}
}

func TestTable3Shape(t *testing.T) {
	var buf bytes.Buffer
	rows, err := Table3(tinyCfg(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4*3 {
		t.Fatalf("%d rows", len(rows))
	}
	seen := map[string]bool{}
	for _, r := range rows {
		seen[r.Collection] = true
	}
	for _, c := range []string{"Csl", "Cex-sh-sl", "Caut"} {
		if !seen[c] {
			t.Fatalf("missing collection %s", c)
		}
	}
}

func TestTable4Shape(t *testing.T) {
	var buf bytes.Buffer
	rows, err := Table4(tinyCfg(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2*2*4 {
		t.Fatalf("%d rows", len(rows))
	}
	// The optimizer's order should not produce more diffs than the worst
	// random order.
	byKey := map[string][]Table4Row{}
	for _, r := range rows {
		byKey[r.Dataset+r.Collection] = append(byKey[r.Dataset+r.Collection], r)
	}
	for k, rs := range byKey {
		var ord, worst int64
		for _, r := range rs {
			if r.Order == "Ord" {
				ord = r.Diffs
			} else if r.Diffs > worst {
				worst = r.Diffs
			}
		}
		if ord > worst {
			t.Fatalf("%s: optimizer order has %d diffs, worst random %d", k, ord, worst)
		}
	}
}

func TestFig89Shape(t *testing.T) {
	var buf bytes.Buffer
	rows, err := Fig8(tinyCfg(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2*3*4 {
		t.Fatalf("fig8: %d rows", len(rows))
	}
	rows9, err := Fig9(tinyCfg(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows9) != len(rows) {
		t.Fatalf("fig9: %d rows", len(rows9))
	}
}

func TestFig10Shape(t *testing.T) {
	var buf bytes.Buffer
	rows, err := Fig10(tinyCfg(&buf))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2*5 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.MaxWork <= 0 {
			t.Fatalf("row %+v has no work", r)
		}
	}
}

func TestCombinations(t *testing.T) {
	cs := combinations(5, 2)
	if len(cs) != 10 {
		t.Fatalf("%d combinations", len(cs))
	}
	cs = combinations(10, 5)
	if len(cs) != 252 {
		t.Fatalf("%d combinations", len(cs))
	}
}

func TestRandomViewSequenceConsistent(t *testing.T) {
	s := randomViewSequence(1000, 600, 10, 50, 30, 9)
	if s.NumViews() != 10 {
		t.Fatal("views")
	}
	present := map[uint32]bool{}
	for t2 := 0; t2 < 10; t2++ {
		for _, e := range s.Adds[t2] {
			if present[e] {
				t.Fatalf("view %d: double add of %d", t2, e)
			}
			present[e] = true
		}
		for _, e := range s.Dels[t2] {
			if !present[e] {
				t.Fatalf("view %d: delete of absent %d", t2, e)
			}
			delete(present, e)
		}
	}
	sizes := s.ViewSizes()
	if sizes[0] != 600 {
		t.Fatalf("first view size %d", sizes[0])
	}
}
