package schedule

import (
	"testing"
	"time"

	"graphsurge/internal/splitting"
)

func TestParsePolicy(t *testing.T) {
	for _, c := range []struct {
		in   string
		want Policy
	}{{"fifo", FIFO}, {"", FIFO}, {"lpt", LPT}} {
		got, err := ParsePolicy(c.in)
		if err != nil || got != c.want {
			t.Fatalf("ParsePolicy(%q) = %v, %v", c.in, got, err)
		}
	}
	if _, err := ParsePolicy("bogus"); err == nil {
		t.Fatal("expected error for unknown policy")
	}
	if FIFO.String() != "fifo" || LPT.String() != "lpt" {
		t.Fatal("policy String()")
	}
}

// TestEstimatorColdFallback: with cold models, SegmentCost is the raw size
// proxy (seed size plus diff sizes) and reports modeled=false, so LPT still
// orders a skewed collection by work.
func TestEstimatorColdFallback(t *testing.T) {
	var e Estimator
	cost, modeled := e.SegmentCost(1000, []int{10, 20})
	if modeled || cost != 1030 {
		t.Fatalf("cold SegmentCost = %v, modeled=%v", cost, modeled)
	}
	// Scratch warm but diff cold: a segment with successors must still fall
	// back wholesale — seconds and raw sizes must never be mixed.
	e.ObserveScratch(100, 50*time.Millisecond)
	if _, modeled := e.SegmentCost(1000, []int{10}); modeled {
		t.Fatal("mixed warm/cold segment reported modeled")
	}
	if cost, modeled := e.SegmentCost(1000, nil); !modeled || cost <= 0 {
		t.Fatalf("warm scratch-only SegmentCost = %v, modeled=%v", cost, modeled)
	}
}

// TestEstimatorModeledCosts: warm models predict in seconds, proportional to
// the fitted per-unit costs.
func TestEstimatorModeledCosts(t *testing.T) {
	var e Estimator
	e.ObserveScratch(100, 100*time.Millisecond)
	e.ObserveScratch(200, 200*time.Millisecond)
	e.ObserveDiff(10, 20*time.Millisecond)
	e.ObserveDiff(20, 40*time.Millisecond)
	if s, d := e.Observations(); s != 2 || d != 2 {
		t.Fatalf("Observations = %d, %d", s, d)
	}
	cost, modeled := e.SegmentCost(300, []int{30})
	if !modeled {
		t.Fatal("warm estimator not modeled")
	}
	want := 0.300 + 0.060 // 1ms/unit scratch + 2ms/unit diff
	if cost < want*0.9 || cost > want*1.1 {
		t.Fatalf("SegmentCost = %v, want ≈ %v", cost, want)
	}
}

func TestLPTOrder(t *testing.T) {
	order := LPTOrder([]float64{3, 9, 1, 9, 5})
	// Descending cost, ties in collection order: 9(idx1), 9(idx3), 5, 3, 1.
	want := []int{1, 3, 4, 0, 2}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("LPTOrder = %v, want %v", order, want)
		}
	}
	if len(LPTOrder(nil)) != 0 {
		t.Fatal("empty order")
	}
}

func TestPlanCosts(t *testing.T) {
	var e Estimator
	plan := splitting.PlanFromModes([]splitting.Mode{
		splitting.ModeScratch, splitting.ModeDiff, splitting.ModeScratch, splitting.ModeDiff,
	})
	costs := e.PlanCosts(plan, []int{100, 110, 50, 55}, []int{100, 30, 80, 10})
	if len(costs) != 2 {
		t.Fatalf("%d costs for 2 segments", len(costs))
	}
	// Cold proxy: seg0 = 100 + 30, seg1 = 50 + 10.
	if costs[0] != 130 || costs[1] != 60 {
		t.Fatalf("costs = %v", costs)
	}
}

// TestPredictSplit: the simulation walks only batch boundaries and returns
// the first one whose models prefer scratch — agreeing with what Decide
// does when the real decision arrives with unchanged models.
func TestPredictSplit(t *testing.T) {
	opt := &splitting.Optimizer{BatchSize: 2}
	// Bootstrap views 0 and 1 so NextDecision lands at 2.
	opt.Decide(0, 100, 100)
	opt.Decide(1, 100, 10)
	// Diff is cheap for small diffs, terrible for large ones; scratch flat.
	opt.ObserveScratch(100, 10*time.Millisecond)
	opt.ObserveDiff(10, 2*time.Millisecond)
	opt.ObserveDiff(20, 4*time.Millisecond)

	// Views 2..7: diffs stay small until view 6, which is a huge diff the
	// model prices above a scratch run.
	viewSizes := []int{100, 100, 100, 100, 100, 100, 100, 100}
	diffSizes := []int{100, 10, 10, 12, 11, 13, 500, 12}

	p, ok := PredictSplit(opt, 2, len(viewSizes), viewSizes, diffSizes)
	if !ok || p != 6 {
		t.Fatalf("PredictSplit = %d, %v, want 6 (the first batch boundary whose diff is priced above scratch)", p, ok)
	}
	// The real decisions, fed the same sizes with unchanged models, agree:
	// views 2..5 run differentially, view 6 opens a scratch batch (and view
	// 7, inside that batch, inherits its mode — a batch, not a boundary).
	for i := 2; i < 8; i++ {
		mode := opt.Decide(i, viewSizes[i], diffSizes[i])
		if want := i >= 6; want != (mode == splitting.ModeScratch) {
			t.Fatalf("Decide(%d) = %v, prediction said the scratch batch opens at 6", i, mode)
		}
	}

	// View 7 sits inside the scratch batch Decide(6) opened, so it splits
	// too and the prediction says so.
	if p, ok := PredictSplit(opt, 7, 8, viewSizes, diffSizes); !ok || p != 7 {
		t.Fatalf("PredictSplit(7) = %d, %v; view 7 is in the scratch batch", p, ok)
	}
	// Past the collection there is nothing to predict.
	if _, ok := PredictSplit(opt, 8, 8, viewSizes, diffSizes); ok {
		t.Fatal("split predicted past the collection end")
	}
}

// TestPredictSplitMidScratchBatch: inside a scratch batch every remaining
// view opens a segment, so the predicted split point is the very next view
// — not the next batch boundary, which would guarantee a discarded
// speculation at each intervening view.
func TestPredictSplitMidScratchBatch(t *testing.T) {
	opt := &splitting.Optimizer{BatchSize: 4}
	opt.Decide(0, 100, 100)
	opt.Decide(1, 100, 10)
	// Scratch priced far below diff: the decision at view 2 opens a scratch
	// batch covering views 2..5.
	opt.ObserveScratch(100, time.Millisecond)
	opt.ObserveDiff(10, 100*time.Millisecond)
	sizes := []int{100, 100, 100, 100, 100, 100, 100, 100}
	diffs := []int{100, 10, 10, 10, 10, 10, 10, 10}
	if mode := opt.Decide(2, sizes[2], diffs[2]); mode != splitting.ModeScratch {
		t.Fatalf("Decide(2) = %v", mode)
	}
	// From view 3, still inside the batch: predict 3, not boundary 6.
	for from := 3; from < 6; from++ {
		p, ok := PredictSplit(opt, from, len(sizes), sizes, diffs)
		if !ok || p != from {
			t.Fatalf("PredictSplit(from=%d) = %d, %v; want the next view of the scratch batch", from, p, ok)
		}
	}
	// Bootstrap guard: a scratch batch mode never predicts the bootstrap
	// diff view.
	fresh := &splitting.Optimizer{BatchSize: 4}
	fresh.Decide(0, 100, 100) // mode now scratch, decided=1
	if p, ok := PredictSplit(fresh, 1, len(sizes), sizes, diffs); ok && p < 2 {
		t.Fatalf("bootstrap view predicted as split: %d", p)
	}
}

// TestAssignLPT pins the multi-bin assignment: every segment lands in
// exactly one bin, within-bin order is collection order, the heaviest
// segment goes to a bin of its own when bins allow, and the assignment is
// deterministic.
func TestAssignLPT(t *testing.T) {
	costs := []float64{1, 10, 2, 3, 1, 1}
	assign, loads := AssignLPT(costs, 3)
	if len(assign) != 3 || len(loads) != 3 {
		t.Fatalf("got %d bins, %d loads", len(assign), len(loads))
	}
	seen := make([]bool, len(costs))
	for b, idxs := range assign {
		var load float64
		for i, si := range idxs {
			if seen[si] {
				t.Fatalf("segment %d assigned twice", si)
			}
			seen[si] = true
			if i > 0 && idxs[i-1] >= si {
				t.Fatalf("bin %d not in collection order: %v", b, idxs)
			}
			load += costs[si]
		}
		if load != loads[b] {
			t.Fatalf("bin %d load %v, reported %v", b, load, loads[b])
		}
	}
	for si, ok := range seen {
		if !ok {
			t.Fatalf("segment %d unassigned", si)
		}
	}
	// LPT places the dominant segment alone: its bin's load is exactly 10.
	for b, idxs := range assign {
		if len(idxs) == 1 && idxs[0] == 1 {
			if loads[b] != 10 {
				t.Fatalf("dominant bin load %v", loads[b])
			}
			return
		}
	}
	t.Fatalf("dominant segment shares a bin: %v", assign)
}

// TestAssignLPTEdges: more bins than segments leaves bins empty rather than
// failing; bins < 1 degrades to a single bin holding everything.
func TestAssignLPTEdges(t *testing.T) {
	assign, _ := AssignLPT([]float64{5}, 4)
	n := 0
	for _, idxs := range assign {
		n += len(idxs)
	}
	if n != 1 {
		t.Fatalf("%d assignments for 1 segment", n)
	}
	assign, loads := AssignLPT([]float64{1, 2}, 0)
	if len(assign) != 1 || len(assign[0]) != 2 || loads[0] != 3 {
		t.Fatalf("bins=0: %v %v", assign, loads)
	}
}
