// Package schedule is Graphsurge's cost-model segment scheduler. The
// splitting optimizer (paper §5) fits online linear models of scratch and
// differential cost to pick each view's execution mode; this package turns
// the same predictions into *scheduling* decisions:
//
//   - LPT ordering for static plans: predict each segment's cost (scratch
//     model on its seed size plus diff model on its successors' diff sizes,
//     falling back to the raw sizes while the models are cold) and dispatch
//     segments longest-predicted-first onto the replica pool. For skewed
//     collections this tightens the makespan the same way Longest Processing
//     Time tightens any list schedule — the largest segment can no longer
//     land last and serialize the tail.
//
//   - Split-point prediction for adaptive mode: simulate the optimizer's
//     upcoming batch decisions with its current models to name the view it
//     is most likely to run from scratch next, so an idle replica can seed
//     that segment speculatively while the planner is still deciding.
//
// The Estimator here is deliberately separate from the adaptive optimizer's
// per-run models: an engine keeps one Estimator per (computation, workers)
// across RunCollection calls, so a static-mode run can be scheduled with
// costs learned from earlier runs, while each adaptive run still bootstraps
// its own optimizer exactly as the paper describes.
package schedule

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"graphsurge/internal/obs"
	"graphsurge/internal/splitting"
)

// Policy selects the dispatch order for a static plan's segments.
type Policy uint8

const (
	// FIFO dispatches segments in collection order (the pre-scheduler
	// behavior).
	FIFO Policy = iota
	// LPT dispatches segments longest-predicted-first.
	LPT
)

func (p Policy) String() string {
	if p == LPT {
		return "lpt"
	}
	return "fifo"
}

// ParsePolicy parses a CLI policy name.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "fifo", "":
		return FIFO, nil
	case "lpt":
		return LPT, nil
	}
	return FIFO, fmt.Errorf("schedule: unknown policy %q (want fifo or lpt)", s)
}

// MarshalText encodes the policy as its name, so JSON request bodies carry
// "lpt" rather than an enum ordinal.
func (p Policy) MarshalText() ([]byte, error) { return []byte(p.String()), nil }

// UnmarshalText parses a policy name — the same names ParsePolicy accepts,
// so the HTTP API and the -schedule flag agree.
func (p *Policy) UnmarshalText(text []byte) error {
	parsed, err := ParsePolicy(string(text))
	if err != nil {
		return err
	}
	*p = parsed
	return nil
}

// Estimator is a concurrency-safe online cost model for segment scheduling:
// the same two simple linear regressions the splitting optimizer fits —
// (|GV|, scratch seconds) and (|δC|, differential seconds) — behind a mutex
// so segment executor goroutines can feed observations while a scheduler
// reads predictions. The zero value is a cold estimator, ready for use.
type Estimator struct {
	mu      sync.Mutex
	scratch splitting.Model
	diff    splitting.Model
}

// ObserveScratch records a from-scratch run of a view with |GV| = size.
// When the scratch model was already warm, the prediction it would have
// made for this view is scored against the measurement first — the
// estimator-accuracy signal /metrics exposes.
func (e *Estimator) ObserveScratch(size int, d time.Duration) {
	e.mu.Lock()
	pred, warm := e.scratch.Predict(float64(size))
	e.scratch.Observe(float64(size), d.Seconds())
	e.mu.Unlock()
	scorePrediction(pred, warm, d)
}

// ObserveDiff records a differential run of a view with |δC| = size,
// scoring the diff model's prediction like ObserveScratch.
func (e *Estimator) ObserveDiff(size int, d time.Duration) {
	e.mu.Lock()
	pred, warm := e.diff.Predict(float64(size))
	e.diff.Observe(float64(size), d.Seconds())
	e.mu.Unlock()
	scorePrediction(pred, warm, d)
}

// scorePrediction feeds |predicted−actual|/actual into the estimator
// error histogram. Sub-microsecond measurements are skipped: their
// relative error is all timer noise and would drown the signal.
func scorePrediction(pred float64, warm bool, actual time.Duration) {
	secs := actual.Seconds()
	if !warm || secs < 1e-6 {
		return
	}
	err := pred - secs
	if err < 0 {
		err = -err
	}
	obs.M.EstimatorError.Observe(err / secs)
}

// Observations reports how many scratch and differential runs the estimator
// has seen (observability, tests).
func (e *Estimator) Observations() (scratch, diff int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.scratch.Count(), e.diff.Count()
}

// SegmentCost predicts the wall time of one segment: the scratch cost of
// its seed view plus the diff cost of each differential successor. The
// returned cost is in seconds when modeled is true. When any needed model
// is still cold the whole segment falls back to the raw sizes as a unitless
// proxy — sizes and seconds must not be mixed within one cost, and for LPT
// only the relative order matters, which the size proxy preserves (cost
// grows with work either way).
func (e *Estimator) SegmentCost(seedSize int, diffSizes []int) (cost float64, modeled bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	total, ok := e.scratch.Predict(float64(seedSize))
	for _, d := range diffSizes {
		if !ok {
			break
		}
		dt, dok := e.diff.Predict(float64(d))
		total, ok = total+dt, dok
	}
	if ok {
		return total, true
	}
	proxy := float64(seedSize)
	for _, d := range diffSizes {
		proxy += float64(d)
	}
	return proxy, false
}

// PlanCosts predicts every segment's cost for a plan over a collection with
// the given per-view full sizes and difference-set sizes.
func (e *Estimator) PlanCosts(plan splitting.Plan, viewSizes, diffSizes []int) []float64 {
	costs := make([]float64, len(plan.Segments))
	for i, seg := range plan.Segments {
		costs[i], _ = e.SegmentCost(viewSizes[seg.Start], diffSizes[seg.Start+1:seg.End])
	}
	return costs
}

// LPTOrder returns a dispatch permutation over the segments, longest
// predicted cost first. Ties keep collection order (stable), so the
// permutation — and therefore dispatch — is deterministic for equal costs.
func LPTOrder(costs []float64) []int {
	order := make([]int, len(costs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return costs[order[a]] > costs[order[b]] })
	return order
}

// AssignLPT distributes segments across bins by multi-bin Longest Processing
// Time: segments are considered in descending predicted cost and each goes
// to the currently least-loaded bin. It returns the per-bin segment index
// lists (each ascending, i.e. collection order within a bin) and the per-bin
// predicted loads. LPT's classic 4/3-OPT makespan bound is exactly the
// guarantee a cross-machine dispatcher wants from a static assignment; ties
// break toward the lower bin index, keeping the assignment deterministic.
// bins < 1 is treated as 1.
func AssignLPT(costs []float64, bins int) (assign [][]int, loads []float64) {
	if bins < 1 {
		bins = 1
	}
	assign = make([][]int, bins)
	loads = make([]float64, bins)
	for _, si := range LPTOrder(costs) {
		best := 0
		for b := 1; b < bins; b++ {
			if loads[b] < loads[best] {
				best = b
			}
		}
		assign[best] = append(assign[best], si)
		loads[best] += costs[si]
	}
	for _, idxs := range assign {
		sort.Ints(idxs)
	}
	return assign, loads
}

// PredictSplit simulates the optimizer's upcoming decisions with its
// current models and returns the index ≥ from of the next view it is
// expected to run from scratch — the predicted next split point. Inside a
// scratch batch every remaining view runs from scratch (the planner opens
// a segment at each), so the prediction is simply the next view; otherwise
// fresh decisions happen only at batch boundaries (NextDecision, then
// every Batch views) and those are the candidate split points. ok is false
// when no split is predicted before the collection's k views end. The
// prediction is a snapshot: observations arriving between now and the real
// decision shift the models, which is exactly why callers treat a
// speculatively seeded segment as discardable.
func PredictSplit(opt *splitting.Optimizer, from, k int, viewSizes, diffSizes []int) (int, bool) {
	b := opt.NextDecision()
	if from >= 2 && from < b && from < k && opt.BatchMode() == splitting.ModeScratch {
		// Mid-batch with a cached scratch decision: view `from` itself will
		// split (from ≥ 2 excludes the fixed scratch/diff bootstrap views).
		return from, true
	}
	if b < 2 {
		// Bootstrap decisions (views 0 and 1) are fixed scratch/diff; the
		// first modeled decision is at view 2.
		b = 2
	}
	step := opt.Batch()
	for ; b < k; b += step {
		if b < from {
			continue
		}
		if opt.PeekMode(viewSizes[b], diffSizes[b]) == splitting.ModeScratch {
			return b, true
		}
	}
	return 0, false
}
