package graph

import "testing"

func TestColumnTypedAppendAndValue(t *testing.T) {
	for _, tc := range []struct {
		typ PropType
		v   Value
	}{
		{TypeInt, IntValue(42)},
		{TypeString, StringValue("hi")},
		{TypeBool, BoolValue(true)},
	} {
		c := Column{Type: tc.typ}
		if err := c.Append(tc.v); err != nil {
			t.Fatal(err)
		}
		if c.Len() != 1 || !c.Value(0).Equal(tc.v) {
			t.Fatalf("%v round trip failed", tc.v)
		}
		// Mismatched type is rejected.
		wrong := IntValue(1)
		if tc.typ == TypeInt {
			wrong = StringValue("x")
		}
		if err := c.Append(wrong); err == nil {
			t.Fatalf("type %v accepted %v", tc.typ, wrong)
		}
	}
}

func TestPropTableRowErrors(t *testing.T) {
	pt := NewPropTable([]PropDef{{Name: "a", Type: TypeInt}, {Name: "b", Type: TypeString}})
	if err := pt.AppendRow([]Value{IntValue(1)}); err == nil {
		t.Fatal("short row accepted")
	}
	if err := pt.AppendRow([]Value{StringValue("x"), StringValue("y")}); err == nil {
		t.Fatal("mistyped row accepted")
	}
	if err := pt.AppendRow([]Value{IntValue(1), StringValue("y")}); err != nil {
		t.Fatal(err)
	}
	if got := pt.Value(0, 1); got.S != "y" {
		t.Fatalf("got %v", got)
	}
}

func TestColumnIndexRebuild(t *testing.T) {
	// A table decoded from gob has no index; ColumnIndex must rebuild it.
	pt := &PropTable{
		Names: []string{"x", "y"},
		Cols:  []Column{{Type: TypeInt}, {Type: TypeBool}},
	}
	i, ok := pt.ColumnIndex("y")
	if !ok || i != 1 {
		t.Fatalf("got %d %v", i, ok)
	}
	if _, ok := pt.ColumnIndex("z"); ok {
		t.Fatal("phantom column")
	}
	var nilPT *PropTable
	if _, ok := nilPT.ColumnIndex("x"); ok {
		t.Fatal("nil table lookup")
	}
}
