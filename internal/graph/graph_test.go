package graph

import (
	"os"
	"path/filepath"
	"testing"
)

// writeFile is a test helper creating a file with contents.
func writeFile(t *testing.T, dir, name, contents string) string {
	t.Helper()
	p := filepath.Join(dir, name)
	if err := os.WriteFile(p, []byte(contents), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

const callNodes = `id,city:string,profession:string
1,LA,Engineer
2,LA,Doctor
3,LA,Engineer
4,NY,Lawyer
5,NY,Doctor
6,LA,Engineer
7,NY,Lawyer
8,LA,Lawyer
`

const callEdges = `src,dst,duration:int,year:int
1,2,7,2015
1,3,12,2017
2,5,19,2019
3,6,7,2018
4,7,4,2019
5,4,13,2019
6,1,1,2010
7,8,34,2019
8,5,18,2019
`

// LoadFig1 loads the paper's Figure 1 phone call graph fixture.
func loadFig1(t *testing.T) *Graph {
	t.Helper()
	dir := t.TempDir()
	np := writeFile(t, dir, "nodes.csv", callNodes)
	ep := writeFile(t, dir, "edges.csv", callEdges)
	g, err := LoadCSV("Calls", np, ep)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestLoadCSV(t *testing.T) {
	g := loadFig1(t)
	if g.NumNodes != 8 || g.NumEdges() != 9 {
		t.Fatalf("loaded %d nodes, %d edges", g.NumNodes, g.NumEdges())
	}
	ci, ok := g.NodeProps.ColumnIndex("city")
	if !ok {
		t.Fatal("no city column")
	}
	// External id "1" became internal 0.
	if got := g.NodeProps.Value(0, ci); got.S != "LA" {
		t.Fatalf("node 0 city = %v", got)
	}
	di, ok := g.EdgeProps.ColumnIndex("duration")
	if !ok || g.EdgeProps.Cols[di].Type != TypeInt {
		t.Fatal("duration column missing or not int")
	}
	if g.EdgeProps.Value(0, di).I != 7 {
		t.Fatalf("edge 0 duration = %v", g.EdgeProps.Value(0, di))
	}
}

func TestTripleAndWeightColumn(t *testing.T) {
	g := loadFig1(t)
	wc, err := g.WeightColumn("duration")
	if err != nil {
		t.Fatal(err)
	}
	tr := g.Triple(0, wc)
	if tr.W != 7 {
		t.Fatalf("weighted triple = %+v", tr)
	}
	tr = g.Triple(0, -1)
	if tr.W != 1 {
		t.Fatalf("unit triple = %+v", tr)
	}
	if _, err := g.WeightColumn("city"); err == nil {
		t.Fatal("expected error for non-edge property")
	}
	if _, err := g.WeightColumn("nope"); err == nil {
		t.Fatal("expected error for missing property")
	}
	if wc, err := g.WeightColumn(""); err != nil || wc != -1 {
		t.Fatalf("empty weight column: %d, %v", wc, err)
	}
}

func TestLoadCSVWithoutNodeFile(t *testing.T) {
	dir := t.TempDir()
	ep := writeFile(t, dir, "edges.csv", "src,dst,w:int\na,b,1\nb,c,2\n")
	g, err := LoadCSV("g", "", ep)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes != 3 || g.NumEdges() != 2 {
		t.Fatalf("got %d nodes %d edges", g.NumNodes, g.NumEdges())
	}
}

func TestLoadCSVErrors(t *testing.T) {
	dir := t.TempDir()
	cases := []struct {
		name         string
		nodes, edges string
	}{
		{"bad node header", "nope,city\n", "src,dst\n"},
		{"bad edge header", "id\nx\n", "source,dst\n"},
		{"bad type", "id,age:float\nx,1\n", "src,dst\n"},
		{"bad int", "id,age:int\nx,notanint\n", "src,dst\n"},
		{"bad bool", "id,ok:bool\nx,maybe\n", "src,dst\n"},
		{"missing endpoint", "id\na\n", "src,dst\na,zzz\n"},
		{"wrong field count", "id,age:int\na,1,extra\n", "src,dst\n"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			np := writeFile(t, dir, "n_"+c.name+".csv", c.nodes)
			ep := writeFile(t, dir, "e_"+c.name+".csv", c.edges)
			if _, err := LoadCSV("g", np, ep); err == nil {
				t.Fatalf("expected error for %s", c.name)
			}
		})
	}
}

func TestValidate(t *testing.T) {
	g := &Graph{Name: "bad", NumNodes: 2, Srcs: []uint64{0, 1}, Dsts: []uint64{1, 5}}
	if err := g.Validate(); err == nil {
		t.Fatal("expected out-of-range endpoint error")
	}
	g = &Graph{Name: "bad2", NumNodes: 2, Srcs: []uint64{0}, Dsts: []uint64{}}
	if err := g.Validate(); err == nil {
		t.Fatal("expected length mismatch error")
	}
}

func TestStorePersistence(t *testing.T) {
	dir := t.TempDir()
	st, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	g := loadFig1(t)
	if err := st.Add(g); err != nil {
		t.Fatal(err)
	}

	// A fresh store over the same directory finds the graph on disk.
	st2, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := st2.Graph("Calls")
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != g.NumEdges() || g2.NumNodes != g.NumNodes {
		t.Fatal("persisted graph differs")
	}
	ci, _ := g2.NodeProps.ColumnIndex("city")
	if g2.NodeProps.Value(0, ci).S != "LA" {
		t.Fatal("persisted node property differs")
	}
	if _, err := st2.Graph("nope"); err == nil {
		t.Fatal("expected error for unknown graph")
	}
	if got := st.Names(); len(got) != 1 || got[0] != "Calls" {
		t.Fatalf("Names = %v", got)
	}
}

func TestMemoryOnlyStore(t *testing.T) {
	st, err := NewStore("")
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Add(&Graph{}); err == nil {
		t.Fatal("expected error for unnamed graph")
	}
	g := &Graph{Name: "g", NumNodes: 1}
	if err := st.Add(g); err != nil {
		t.Fatal(err)
	}
	if got, err := st.Graph("g"); err != nil || got != g {
		t.Fatal("lookup failed")
	}
}

func TestValueHelpers(t *testing.T) {
	if IntValue(3).String() != "3" || StringValue("x").String() != "x" || BoolValue(true).String() != "true" {
		t.Fatal("value String()")
	}
	if !IntValue(3).Equal(IntValue(3)) || IntValue(3).Equal(IntValue(4)) {
		t.Fatal("value Equal()")
	}
	if TypeInt.String() != "int" || TypeString.String() != "string" || TypeBool.String() != "bool" {
		t.Fatal("PropType String()")
	}
}

// TestStoreRejectsTraversalNames pins the disk-path guard: graph names that
// would escape the store directory are refused by persist and the disk
// fallback (never reading or writing outside it), while subdirectory names
// without traversal keep working and memory-only stores are unrestricted.
func TestStoreRejectsTraversalNames(t *testing.T) {
	dir := t.TempDir()
	outside := t.TempDir()
	s, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(name string) *Graph {
		return &Graph{Name: name, NumNodes: 2, Srcs: []uint64{0}, Dsts: []uint64{1}}
	}
	for _, name := range []string{"../escape", "a/../../escape", `a\b`} {
		if err := s.Add(mk(name)); err == nil {
			t.Fatalf("Add accepted traversal name %q", name)
		}
		if _, err := s.Graph(name); err == nil {
			t.Fatalf("Graph resolved traversal name %q from disk", name)
		}
	}
	// Nothing escaped: a matching file outside the store stays unread and
	// the outside directory stays empty of writes.
	if entries, _ := os.ReadDir(outside); len(entries) != 0 {
		t.Fatalf("store wrote outside its directory: %v", entries)
	}
	// A failed Add leaves no phantom in-memory graph either.
	if _, err := s.Graph("../escape"); err == nil {
		t.Fatal("phantom graph registered despite rejected persist")
	}
	// Subdirectory names without traversal still work once the dir exists.
	if err := os.MkdirAll(filepath.Join(dir, "team"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(mk("team/g")); err != nil {
		t.Fatalf("subdirectory name rejected: %v", err)
	}
	if _, err := s.Graph("team/g"); err != nil {
		t.Fatal(err)
	}
	// Memory-only stores accept any name.
	mem, err := NewStore("")
	if err != nil {
		t.Fatal(err)
	}
	if err := mem.Add(mk("../whatever")); err != nil {
		t.Fatalf("memory-only store rejected a name: %v", err)
	}
}
