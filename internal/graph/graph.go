// Package graph implements Graphsurge's property graph store: directed
// graphs with arbitrary typed key-value properties on nodes and edges
// (string, integer and boolean, as in the paper), columnar property storage,
// CSV import with typed headers, and binary persistence.
//
// Upon loading, every node receives a dense internal 64-bit ID (0..N-1);
// external identifiers are retained for display. Edges are stored as a
// struct-of-arrays edge stream — the (sID, dID, key1, val1, ...) tuples of
// the paper — indexed by position so that views can reference base edges by
// index.
package graph

import "fmt"

// PropType enumerates the property value types Graphsurge supports.
type PropType uint8

const (
	TypeInt PropType = iota
	TypeString
	TypeBool
)

func (t PropType) String() string {
	switch t {
	case TypeInt:
		return "int"
	case TypeString:
		return "string"
	case TypeBool:
		return "bool"
	}
	return fmt.Sprintf("PropType(%d)", uint8(t))
}

// Value is a dynamically typed property value.
type Value struct {
	Type PropType
	I    int64
	S    string
	B    bool
}

// IntValue returns an integer Value.
func IntValue(i int64) Value { return Value{Type: TypeInt, I: i} }

// StringValue returns a string Value.
func StringValue(s string) Value { return Value{Type: TypeString, S: s} }

// BoolValue returns a boolean Value.
func BoolValue(b bool) Value { return Value{Type: TypeBool, B: b} }

func (v Value) String() string {
	switch v.Type {
	case TypeInt:
		return fmt.Sprintf("%d", v.I)
	case TypeString:
		return v.S
	case TypeBool:
		return fmt.Sprintf("%t", v.B)
	}
	return "?"
}

// Equal reports deep equality of two values (types must match).
func (v Value) Equal(o Value) bool { return v == o }

// PropDef declares one property column.
type PropDef struct {
	Name string
	Type PropType
}

// Column is one typed property column. Exactly one of the slices is
// populated, matching Type.
type Column struct {
	Type  PropType
	Ints  []int64
	Strs  []string
	Bools []bool
}

// Value returns the value at a row.
func (c *Column) Value(row int) Value {
	switch c.Type {
	case TypeInt:
		return IntValue(c.Ints[row])
	case TypeString:
		return StringValue(c.Strs[row])
	default:
		return BoolValue(c.Bools[row])
	}
}

// Append adds a value to the column; the value's type must match.
func (c *Column) Append(v Value) error {
	if v.Type != c.Type {
		return fmt.Errorf("graph: column type %v, value type %v", c.Type, v.Type)
	}
	switch c.Type {
	case TypeInt:
		c.Ints = append(c.Ints, v.I)
	case TypeString:
		c.Strs = append(c.Strs, v.S)
	default:
		c.Bools = append(c.Bools, v.B)
	}
	return nil
}

// Len returns the number of rows.
func (c *Column) Len() int {
	switch c.Type {
	case TypeInt:
		return len(c.Ints)
	case TypeString:
		return len(c.Strs)
	default:
		return len(c.Bools)
	}
}

// PropTable is a columnar table of properties; rows are node or edge
// indices.
type PropTable struct {
	Names []string
	Cols  []Column
	//lint:ignore wiretypes index is a derived lookup cache rebuilt on demand by ColumnIndex; gob dropping it is intended
	index map[string]int
}

// NewPropTable creates an empty table with the given columns.
func NewPropTable(defs []PropDef) *PropTable {
	pt := &PropTable{index: make(map[string]int, len(defs))}
	for _, d := range defs {
		pt.Names = append(pt.Names, d.Name)
		pt.Cols = append(pt.Cols, Column{Type: d.Type})
		pt.index[d.Name] = len(pt.Names) - 1
	}
	return pt
}

// ColumnIndex resolves a property name to its column position.
func (pt *PropTable) ColumnIndex(name string) (int, bool) {
	if pt == nil {
		return 0, false
	}
	if pt.index == nil {
		pt.rebuildIndex()
	}
	i, ok := pt.index[name]
	return i, ok
}

func (pt *PropTable) rebuildIndex() {
	pt.index = make(map[string]int, len(pt.Names))
	for i, n := range pt.Names {
		pt.index[n] = i
	}
}

// Value returns the property value at (row, column).
func (pt *PropTable) Value(row, col int) Value { return pt.Cols[col].Value(row) }

// AppendRow appends one row; vals must match the column order and types.
func (pt *PropTable) AppendRow(vals []Value) error {
	if len(vals) != len(pt.Cols) {
		return fmt.Errorf("graph: row has %d values, table has %d columns", len(vals), len(pt.Cols))
	}
	for i, v := range vals {
		if err := pt.Cols[i].Append(v); err != nil {
			return fmt.Errorf("column %q: %w", pt.Names[i], err)
		}
	}
	return nil
}

// Triple is the (source, destination, weight) projection of an edge, the
// record type consumed by analytics computations.
type Triple struct {
	Src, Dst uint64
	W        int64
}

// Graph is a directed property graph. Node IDs are dense internal IDs
// 0..NumNodes-1; edges are parallel arrays indexed by edge position.
//
// Graphs are mutable through ApplyMutation only: inserted edges append to
// the parallel arrays (edge indices grow monotonically) and deleted edges
// are tombstoned in place via DeadWords rather than compacted, so existing
// edge indices — the currency of views, EBM columns and difference streams —
// stay stable across mutations.
type Graph struct {
	Name     string
	NumNodes int
	ExtIDs   []string // external node identifiers from import, by node ID

	NodeProps *PropTable // rows are node IDs
	Srcs      []uint64
	Dsts      []uint64
	EdgeProps *PropTable // rows are edge indices

	// Version counts applied mutation batches, monotonically; 0 is the graph
	// as loaded or generated. Materialized artifacts record the version they
	// reflect, making staleness detectable.
	Version uint64
	// DeadWords is the tombstone bitmap over edge indices (bit set = edge
	// deleted). Nil or short bitmaps read as all-alive, so graphs persisted
	// before mutations existed load unchanged.
	DeadWords []uint64
	// NumDead is the number of tombstoned edges (popcount of DeadWords).
	NumDead int
}

// NumEdges returns the number of edge rows, including tombstoned ones —
// the valid edge-index range. Use LiveEdges for the live count.
func (g *Graph) NumEdges() int { return len(g.Srcs) }

// LiveEdges returns the number of non-tombstoned edges.
func (g *Graph) LiveEdges() int { return len(g.Srcs) - g.NumDead }

// EdgeAlive reports whether edge i is live (not tombstoned). Indices beyond
// the bitmap are alive — the bitmap only grows when deletions happen.
func (g *Graph) EdgeAlive(i int) bool {
	w := i >> 6
	if w >= len(g.DeadWords) {
		return true
	}
	return g.DeadWords[w]&(1<<(uint(i)&63)) == 0
}

// markDead tombstones edge i, growing the bitmap to cover it. The caller
// guarantees i is currently alive.
func (g *Graph) markDead(i int) {
	w := i >> 6
	for w >= len(g.DeadWords) {
		g.DeadWords = append(g.DeadWords, 0)
	}
	g.DeadWords[w] |= 1 << (uint(i) & 63)
	g.NumDead++
}

// Triple projects edge i using the given weight column (-1 for unit
// weights). The weight column must be an integer column.
func (g *Graph) Triple(i int, weightCol int) Triple {
	w := int64(1)
	if weightCol >= 0 {
		w = g.EdgeProps.Cols[weightCol].Ints[i]
	}
	return Triple{Src: g.Srcs[i], Dst: g.Dsts[i], W: w}
}

// WeightColumn resolves an edge property name to a weight column index.
// Empty name yields -1 (unit weights).
func (g *Graph) WeightColumn(prop string) (int, error) {
	if prop == "" {
		return -1, nil
	}
	c, ok := g.EdgeProps.ColumnIndex(prop)
	if !ok {
		return 0, fmt.Errorf("graph %s: no edge property %q", g.Name, prop)
	}
	if g.EdgeProps.Cols[c].Type != TypeInt {
		return 0, fmt.Errorf("graph %s: weight property %q is not an integer", g.Name, prop)
	}
	return c, nil
}

// Validate checks internal consistency (parallel array lengths, endpoint
// ranges) and returns the first violation found.
func (g *Graph) Validate() error {
	if len(g.Srcs) != len(g.Dsts) {
		return fmt.Errorf("graph %s: %d sources but %d destinations", g.Name, len(g.Srcs), len(g.Dsts))
	}
	if g.NodeProps != nil {
		for i, c := range g.NodeProps.Cols {
			if c.Len() != g.NumNodes {
				return fmt.Errorf("graph %s: node property %q has %d rows, want %d",
					g.Name, g.NodeProps.Names[i], c.Len(), g.NumNodes)
			}
		}
	}
	if g.EdgeProps != nil {
		for i, c := range g.EdgeProps.Cols {
			if c.Len() != len(g.Srcs) {
				return fmt.Errorf("graph %s: edge property %q has %d rows, want %d",
					g.Name, g.EdgeProps.Names[i], c.Len(), len(g.Srcs))
			}
		}
	}
	for i := range g.Srcs {
		if g.Srcs[i] >= uint64(g.NumNodes) || g.Dsts[i] >= uint64(g.NumNodes) {
			return fmt.Errorf("graph %s: edge %d (%d->%d) out of node range %d",
				g.Name, i, g.Srcs[i], g.Dsts[i], g.NumNodes)
		}
	}
	return nil
}
