package graph

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// CSV import, the paper's base-graph loading path: "Users import base input
// graphs to Graphsurge through csv files that contain the nodes and edges of
// the graphs and their properties."
//
// Node files have a header `id,prop:type,...`; edge files have a header
// `src,dst,prop:type,...` where type is one of int, string, bool (missing
// type defaults to string). External node IDs may be arbitrary strings; they
// are mapped to dense internal 64-bit IDs on load.

// parseHeader splits "name:type" header cells into property definitions.
func parseHeader(cells []string) ([]PropDef, error) {
	defs := make([]PropDef, 0, len(cells))
	for _, c := range cells {
		name, typ := c, "string"
		if i := strings.IndexByte(c, ':'); i >= 0 {
			name, typ = c[:i], c[i+1:]
		}
		name = strings.TrimSpace(name)
		if name == "" {
			return nil, fmt.Errorf("graph: empty property name in header cell %q", c)
		}
		var pt PropType
		switch strings.TrimSpace(typ) {
		case "int", "integer":
			pt = TypeInt
		case "string", "str":
			pt = TypeString
		case "bool", "boolean":
			pt = TypeBool
		default:
			return nil, fmt.Errorf("graph: unknown property type %q in header cell %q", typ, c)
		}
		defs = append(defs, PropDef{Name: name, Type: pt})
	}
	return defs, nil
}

func parseValue(s string, t PropType) (Value, error) {
	switch t {
	case TypeInt:
		i, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
		if err != nil {
			return Value{}, fmt.Errorf("graph: bad integer %q: %w", s, err)
		}
		return IntValue(i), nil
	case TypeBool:
		b, err := strconv.ParseBool(strings.TrimSpace(s))
		if err != nil {
			return Value{}, fmt.Errorf("graph: bad boolean %q: %w", s, err)
		}
		return BoolValue(b), nil
	default:
		return StringValue(s), nil
	}
}

// LoadCSV reads a property graph from node and edge CSV files. The node file
// may be empty (""), in which case nodes are inferred from edge endpoints and
// carry no properties.
func LoadCSV(name, nodesPath, edgesPath string) (*Graph, error) {
	g := &Graph{Name: name}
	ids := make(map[string]uint64)

	intern := func(ext string) uint64 {
		if id, ok := ids[ext]; ok {
			return id
		}
		id := uint64(len(ids))
		ids[ext] = id
		g.ExtIDs = append(g.ExtIDs, ext)
		return id
	}

	if nodesPath != "" {
		f, err := os.Open(nodesPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		if err := readNodes(g, f, intern); err != nil {
			return nil, fmt.Errorf("%s: %w", nodesPath, err)
		}
	}

	f, err := os.Open(edgesPath)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if err := readEdges(g, f, intern, nodesPath != ""); err != nil {
		return nil, fmt.Errorf("%s: %w", edgesPath, err)
	}

	g.NumNodes = len(ids)
	if g.NodeProps != nil {
		// Validate will catch nodes that appeared only in the edge file.
		for i, c := range g.NodeProps.Cols {
			if c.Len() != g.NumNodes {
				return nil, fmt.Errorf("graph %s: node property %q covers %d of %d nodes (edge file introduced unknown nodes?)",
					name, g.NodeProps.Names[i], c.Len(), g.NumNodes)
			}
		}
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

func readNodes(g *Graph, r io.Reader, intern func(string) uint64) error {
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return fmt.Errorf("reading header: %w", err)
	}
	if len(header) < 1 || strings.TrimSpace(header[0]) != "id" {
		return fmt.Errorf("node file header must start with \"id\", got %q", header)
	}
	defs, err := parseHeader(header[1:])
	if err != nil {
		return err
	}
	g.NodeProps = NewPropTable(defs)
	row := make([]Value, len(defs))
	rows := 0
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if len(rec) != len(defs)+1 {
			return fmt.Errorf("line %d: %d fields, want %d", line, len(rec), len(defs)+1)
		}
		if id := intern(rec[0]); int(id) != rows {
			return fmt.Errorf("line %d: duplicate node id %q", line, rec[0])
		}
		rows++
		for i, d := range defs {
			v, err := parseValue(rec[i+1], d.Type)
			if err != nil {
				return fmt.Errorf("line %d: %w", line, err)
			}
			row[i] = v
		}
		if err := g.NodeProps.AppendRow(row); err != nil {
			return fmt.Errorf("line %d: %w", line, err)
		}
	}
}

func readEdges(g *Graph, r io.Reader, intern func(string) uint64, nodesDeclared bool) error {
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return fmt.Errorf("reading header: %w", err)
	}
	if len(header) < 2 || strings.TrimSpace(header[0]) != "src" || strings.TrimSpace(header[1]) != "dst" {
		return fmt.Errorf("edge file header must start with \"src,dst\", got %q", header)
	}
	defs, err := parseHeader(header[2:])
	if err != nil {
		return err
	}
	g.EdgeProps = NewPropTable(defs)
	known := len(g.ExtIDs)
	row := make([]Value, len(defs))
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if len(rec) != len(defs)+2 {
			return fmt.Errorf("line %d: %d fields, want %d", line, len(rec), len(defs)+2)
		}
		if nodesDeclared {
			for _, cell := range rec[:2] {
				if int(intern(cell)) >= known {
					return fmt.Errorf("line %d: edge endpoint %q not in node file", line, cell)
				}
			}
		}
		g.Srcs = append(g.Srcs, intern(rec[0]))
		g.Dsts = append(g.Dsts, intern(rec[1]))
		for i, d := range defs {
			v, err := parseValue(rec[i+2], d.Type)
			if err != nil {
				return fmt.Errorf("line %d: %w", line, err)
			}
			row[i] = v
		}
		if err := g.EdgeProps.AppendRow(row); err != nil {
			return fmt.Errorf("line %d: %w", line, err)
		}
	}
}
