package graph

import (
	"bytes"
	"encoding/gob"
	"errors"
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

func sortedTriples(ts []Triple) []Triple {
	out := append([]Triple(nil), ts...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Src != out[j].Src {
			return out[i].Src < out[j].Src
		}
		if out[i].Dst != out[j].Dst {
			return out[i].Dst < out[j].Dst
		}
		return out[i].W < out[j].W
	})
	return out
}

func TestEdgeBatchSortsAndMaterializes(t *testing.T) {
	ts := []Triple{{5, 1, 2}, {1, 9, 1}, {5, 1, 1}, {1, 2, 3}, {5, 0, 7}}
	b := NewEdgeBatch(ts)
	if b.Len() != len(ts) {
		t.Fatalf("Len = %d, want %d", b.Len(), len(ts))
	}
	if got, want := b.Triples(), sortedTriples(ts); !reflect.DeepEqual(got, want) {
		t.Fatalf("Triples = %v, want %v", got, want)
	}
	var nilB *EdgeBatch
	if nilB.Len() != 0 || len(nilB.Triples()) != 0 {
		t.Fatal("nil batch must behave as empty")
	}
}

func TestEdgeBatchRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(200)
		ts := make([]Triple, n)
		constW := trial%2 == 0
		for i := range ts {
			ts[i] = Triple{Src: uint64(rng.Intn(50)), Dst: uint64(rng.Intn(50))}
			if constW {
				ts[i].W = 1
			} else {
				ts[i].W = rng.Int63n(9) - 4
			}
		}
		b := NewEdgeBatch(ts)
		data, err := b.MarshalBinary()
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		var got EdgeBatch
		if err := got.UnmarshalBinary(data); err != nil {
			t.Fatalf("unmarshal: %v", err)
		}
		if !reflect.DeepEqual(got.Triples(), b.Triples()) {
			t.Fatalf("trial %d: round trip mismatch", trial)
		}
	}
}

func TestEdgeBatchConstantWeightIsCompact(t *testing.T) {
	n := 1000
	ts := make([]Triple, n)
	for i := range ts {
		ts[i] = Triple{Src: uint64(i / 4), Dst: uint64(i % 251), W: 1}
	}
	unit, err := NewEdgeBatch(ts).MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	for i := range ts {
		ts[i].W = int64(i)
	}
	full, err := NewEdgeBatch(ts).MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if len(unit) >= len(full)-7*n {
		t.Fatalf("constant-weight encoding not compact: unit %d bytes, full %d bytes", len(unit), len(full))
	}
}

func TestEdgeBatchDecodeRejectsCorruption(t *testing.T) {
	b := NewEdgeBatch([]Triple{{1, 2, 3}, {4, 5, 6}, {4, 7, 1}})
	data, err := b.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}

	var e EdgeBatch
	if err := e.UnmarshalBinary(nil); !errors.Is(err, ErrEdgeCodec) {
		t.Fatalf("empty payload: err = %v, want ErrEdgeCodec", err)
	}

	bad := append([]byte(nil), data...)
	bad[0] = EdgeBatchCodecVersion + 1
	if err := e.UnmarshalBinary(bad); !errors.Is(err, ErrEdgeCodec) {
		t.Fatalf("version mismatch: err = %v, want ErrEdgeCodec", err)
	}

	// Every proper prefix must fail rather than decode garbage.
	for cut := 1; cut < len(data); cut++ {
		if err := e.UnmarshalBinary(data[:cut]); !errors.Is(err, ErrEdgeCodec) {
			t.Fatalf("truncation at %d: err = %v, want ErrEdgeCodec", cut, err)
		}
	}

	// A huge claimed count must be rejected before allocation.
	huge := []byte{EdgeBatchCodecVersion, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f}
	if err := e.UnmarshalBinary(huge); !errors.Is(err, ErrEdgeCodec) {
		t.Fatalf("huge count: err = %v, want ErrEdgeCodec", err)
	}
}

// TestEdgeBatchSmallerThanGobTriples pins the codec's reason to exist: the
// columnar encoding must be measurably smaller than gob's per-record
// encoding of the same triples — the wire format the cluster used before.
// Delta-varint sources plus the constant-weight shortcut more than pay for
// the fixed-width destination column at every graph scale (measured 16-26%
// smaller); the assertion demands at least 5% so codec tweaks cannot quietly
// regress below gob.
func TestEdgeBatchSmallerThanGobTriples(t *testing.T) {
	for _, tc := range []struct {
		name  string
		nodes uint64
		n     int
	}{
		{"small-ids", 2_000, 1_500},  // the cluster benchmark's shard shape
		{"mid-ids", 100_000, 5_000},  // gob varints grow, deltas stay short
		{"huge-ids", 1 << 32, 5_000}, // fixed64 dsts vs 5-byte gob varints
	} {
		t.Run(tc.name, func(t *testing.T) {
			r := rand.New(rand.NewSource(1))
			ts := make([]Triple, tc.n)
			for i := range ts {
				ts[i] = Triple{Src: r.Uint64() % tc.nodes, Dst: r.Uint64() % tc.nodes, W: 1}
			}
			enc, err := NewEdgeBatch(ts).MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := gob.NewEncoder(&buf).Encode(ts); err != nil {
				t.Fatal(err)
			}
			if len(enc)*100 > buf.Len()*95 {
				t.Fatalf("columnar %d bytes vs gob %d bytes: less than 5%% smaller", len(enc), buf.Len())
			}
		})
	}
}
