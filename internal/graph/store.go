package graph

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// ErrCorruptGraph marks a persisted graph that failed integrity checks on
// load — a snapshot that does not pass Validate, or a mutation journal with
// truncated or undecodable frames. The store fails closed: a corrupt graph
// is never served into seed materialization.
var ErrCorruptGraph = errors.New("graph: corrupt persisted graph")

// Store is Graphsurge's Graph Store: a catalog of named base graphs with
// optional binary persistence (the paper persists loaded edge streams in
// files). A Store with an empty directory is memory-only.
//
// Mutations persist as a journal next to the snapshot: each applied
// MutationBatch appends one length-prefixed gob frame to <name>.mutations.gob,
// and load replays the journal over the snapshot, so restarts recover the
// exact post-mutation graph (same version, same edge indices) without
// rewriting the snapshot on every batch. Re-adding a graph writes a fresh
// snapshot and truncates its journal.
type Store struct {
	mu     sync.RWMutex
	dir    string
	graphs map[string]*Graph
}

// NewStore creates a store. If dir is non-empty it is created and used for
// persistence.
func NewStore(dir string) (*Store, error) {
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, err
		}
	}
	return &Store{dir: dir, graphs: make(map[string]*Graph)}, nil
}

// Add registers a graph under its name, persisting it if the store has a
// directory. Re-adding a name replaces the previous graph. Persistence
// happens before registration so a failed persist (unwritable directory,
// name the disk layer rejects) never leaves a phantom in-memory graph the
// caller was told failed.
func (s *Store) Add(g *Graph) error {
	if g.Name == "" {
		return fmt.Errorf("graph: cannot store unnamed graph")
	}
	if err := g.Validate(); err != nil {
		return err
	}
	if s.dir != "" {
		if err := s.persist(g); err != nil {
			return err
		}
	}
	s.mu.Lock()
	s.graphs[g.Name] = g
	s.mu.Unlock()
	return nil
}

// Graph looks a graph up by name, falling back to disk when persisted. A
// missing graph (in memory and on disk) reports a not-found error; a graph
// that exists on disk but fails to load or validate reports that failure —
// wrapped in ErrCorruptGraph for integrity violations — instead of
// masquerading as not-found.
func (s *Store) Graph(name string) (*Graph, error) {
	s.mu.RLock()
	g, ok := s.graphs[name]
	s.mu.RUnlock()
	if ok {
		return g, nil
	}
	if s.dir != "" {
		g, err := s.load(name)
		switch {
		case err == nil:
			s.mu.Lock()
			// A concurrent load may have won the race; keep the registered one
			// so every caller shares a single *Graph.
			if prev, ok := s.graphs[name]; ok {
				g = prev
			} else {
				s.graphs[name] = g
			}
			s.mu.Unlock()
			return g, nil
		case !errors.Is(err, os.ErrNotExist):
			return nil, err
		}
	}
	return nil, fmt.Errorf("graph: no graph named %q", name)
}

// ApplyMutation validates a batch against a named graph, journals it, and
// commits it in memory, returning the applied effect. The order is
// plan → persist → commit: a batch that fails validation or journaling
// changes nothing anywhere, and a journaled batch is always the one that
// committed, so restart replay converges on the in-memory state.
//
// The store serializes mutations; concurrent readers of the *Graph are the
// engine's concern (it quiesces runs around mutations).
func (s *Store) ApplyMutation(name string, mb *MutationBatch) (Applied, error) {
	g, err := s.Graph(name)
	if err != nil {
		return Applied{}, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	p, err := mb.plan(g)
	if err != nil {
		return Applied{}, err
	}
	if s.dir != "" {
		if err := s.appendJournal(name, mb); err != nil {
			return Applied{}, err
		}
	}
	return p.commit(g), nil
}

// Names lists stored graph names in sorted order.
func (s *Store) Names() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.graphs))
	for n := range s.graphs {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// path validates that name stays inside the store directory when joined
// into a disk path. Unlike the view store, slash-separated subdirectory
// names are allowed — they have always been functional for graphs — but
// the joined path must remain under dir: ".." traversal escapes it, and
// backslashes are rejected for portability (a literal filename character
// on Unix becomes a separator on Windows). In-memory registration and
// lookup are unaffected; only the disk fallback refuses such names.
func (s *Store) path(name string) (string, error) { return s.pathFor(name, ".graph.gob") }

// journalPath is the mutation journal location for a graph name.
func (s *Store) journalPath(name string) (string, error) { return s.pathFor(name, ".mutations.gob") }

func (s *Store) pathFor(name, suffix string) (string, error) {
	if strings.Contains(name, `\`) {
		return "", fmt.Errorf("graph: invalid name %q: contains a path separator", name)
	}
	p := filepath.Join(s.dir, name+suffix)
	rel, err := filepath.Rel(s.dir, p)
	if err != nil || rel == ".." || strings.HasPrefix(rel, ".."+string(filepath.Separator)) {
		return "", fmt.Errorf("graph: invalid name %q: escapes the store directory", name)
	}
	return p, nil
}

func (s *Store) persist(g *Graph) error {
	path, err := s.path(g.Name)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := gob.NewEncoder(f).Encode(g); err != nil {
		return fmt.Errorf("graph: persisting %q: %w", g.Name, err)
	}
	// A fresh snapshot is a new journal epoch: drop any frames from the
	// graph previously stored under this name.
	jp, err := s.journalPath(g.Name)
	if err != nil {
		return err
	}
	if err := os.Remove(jp); err != nil && !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("graph: truncating journal for %q: %w", g.Name, err)
	}
	return nil
}

// appendJournal writes one mutation frame: uvarint payload length followed
// by the gob-encoded batch. Length prefixes make truncation detectable on
// replay instead of silently decoding garbage.
func (s *Store) appendJournal(name string, mb *MutationBatch) error {
	jp, err := s.journalPath(name)
	if err != nil {
		return err
	}
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(mb); err != nil {
		return fmt.Errorf("graph: journaling mutation for %q: %w", name, err)
	}
	frame := binary.AppendUvarint(nil, uint64(payload.Len()))
	frame = append(frame, payload.Bytes()...)
	f, err := os.OpenFile(jp, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(frame); err != nil {
		f.Close()
		return fmt.Errorf("graph: journaling mutation for %q: %w", name, err)
	}
	return f.Close()
}

// load reads a snapshot, replays its mutation journal, and validates the
// result. Every integrity failure — undecodable snapshot, truncated or
// invalid journal frame, a replayed graph that fails Validate — fails
// closed with ErrCorruptGraph.
func (s *Store) load(name string) (*Graph, error) {
	path, err := s.path(name)
	if err != nil {
		return nil, err
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var g Graph
	if err := gob.NewDecoder(f).Decode(&g); err != nil {
		return nil, fmt.Errorf("%w: %q: %v", ErrCorruptGraph, name, err)
	}
	if err := s.replayJournal(name, &g); err != nil {
		return nil, err
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %q: %v", ErrCorruptGraph, name, err)
	}
	return &g, nil
}

// replayJournal applies every journal frame to a freshly loaded snapshot.
// A missing journal means no mutations since the snapshot.
func (s *Store) replayJournal(name string, g *Graph) error {
	jp, err := s.journalPath(name)
	if err != nil {
		return err
	}
	data, err := os.ReadFile(jp)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil
		}
		return err
	}
	frame := 0
	for len(data) > 0 {
		n, k := binary.Uvarint(data)
		if k <= 0 || n > uint64(len(data)-k) {
			return fmt.Errorf("%w: %q: truncated mutation journal at frame %d", ErrCorruptGraph, name, frame)
		}
		data = data[k:]
		var mb MutationBatch
		if err := gob.NewDecoder(bytes.NewReader(data[:n])).Decode(&mb); err != nil {
			return fmt.Errorf("%w: %q: undecodable mutation journal frame %d: %v", ErrCorruptGraph, name, frame, err)
		}
		data = data[n:]
		if _, err := g.ApplyMutation(&mb); err != nil {
			return fmt.Errorf("%w: %q: replaying mutation journal frame %d: %v", ErrCorruptGraph, name, frame, err)
		}
		frame++
	}
	return nil
}
