package graph

import (
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Store is Graphsurge's Graph Store: a catalog of named base graphs with
// optional binary persistence (the paper persists loaded edge streams in
// files). A Store with an empty directory is memory-only.
type Store struct {
	mu     sync.RWMutex
	dir    string
	graphs map[string]*Graph
}

// NewStore creates a store. If dir is non-empty it is created and used for
// persistence.
func NewStore(dir string) (*Store, error) {
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, err
		}
	}
	return &Store{dir: dir, graphs: make(map[string]*Graph)}, nil
}

// Add registers a graph under its name, persisting it if the store has a
// directory. Re-adding a name replaces the previous graph. Persistence
// happens before registration so a failed persist (unwritable directory,
// name the disk layer rejects) never leaves a phantom in-memory graph the
// caller was told failed.
func (s *Store) Add(g *Graph) error {
	if g.Name == "" {
		return fmt.Errorf("graph: cannot store unnamed graph")
	}
	if err := g.Validate(); err != nil {
		return err
	}
	if s.dir != "" {
		if err := s.persist(g); err != nil {
			return err
		}
	}
	s.mu.Lock()
	s.graphs[g.Name] = g
	s.mu.Unlock()
	return nil
}

// Graph looks a graph up by name, falling back to disk when persisted.
func (s *Store) Graph(name string) (*Graph, error) {
	s.mu.RLock()
	g, ok := s.graphs[name]
	s.mu.RUnlock()
	if ok {
		return g, nil
	}
	if s.dir != "" {
		g, err := s.load(name)
		if err == nil {
			s.mu.Lock()
			s.graphs[name] = g
			s.mu.Unlock()
			return g, nil
		}
	}
	return nil, fmt.Errorf("graph: no graph named %q", name)
}

// Names lists stored graph names in sorted order.
func (s *Store) Names() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.graphs))
	for n := range s.graphs {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// path validates that name stays inside the store directory when joined
// into a disk path. Unlike the view store, slash-separated subdirectory
// names are allowed — they have always been functional for graphs — but
// the joined path must remain under dir: ".." traversal escapes it, and
// backslashes are rejected for portability (a literal filename character
// on Unix becomes a separator on Windows). In-memory registration and
// lookup are unaffected; only the disk fallback refuses such names.
func (s *Store) path(name string) (string, error) {
	if strings.Contains(name, `\`) {
		return "", fmt.Errorf("graph: invalid name %q: contains a path separator", name)
	}
	p := filepath.Join(s.dir, name+".graph.gob")
	rel, err := filepath.Rel(s.dir, p)
	if err != nil || rel == ".." || strings.HasPrefix(rel, ".."+string(filepath.Separator)) {
		return "", fmt.Errorf("graph: invalid name %q: escapes the store directory", name)
	}
	return p, nil
}

func (s *Store) persist(g *Graph) error {
	path, err := s.path(g.Name)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := gob.NewEncoder(f).Encode(g); err != nil {
		return fmt.Errorf("graph: persisting %q: %w", g.Name, err)
	}
	return nil
}

func (s *Store) load(name string) (*Graph, error) {
	path, err := s.path(name)
	if err != nil {
		return nil, err
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var g Graph
	if err := gob.NewDecoder(f).Decode(&g); err != nil {
		return nil, fmt.Errorf("graph: loading %q: %w", name, err)
	}
	return &g, nil
}
