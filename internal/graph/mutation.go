package graph

import (
	"errors"
	"fmt"
)

// ErrMutation marks a mutation batch the graph refused: unknown properties,
// endpoints outside the node range, delete pairs matching no live edge, or
// a schema mismatch. Nothing is changed when it is returned.
var ErrMutation = errors.New("graph: invalid mutation")

// EdgeInsert describes one edge to insert, with a value for every edge
// property column of the target graph.
type EdgeInsert struct {
	Src, Dst uint64
	Props    map[string]Value
}

// EdgePair names an edge to delete by its endpoints. Every live edge with
// these endpoints is tombstoned (parallel edges delete together).
type EdgePair struct {
	Src, Dst uint64
}

// MutationBatch is one transactional set of edge insertions and deletions,
// the unit of graph change: it applies entirely or not at all, and each
// applied batch bumps the graph version by exactly one. The columns reuse
// EdgeBatch — inserts ride as a sorted columnar batch with parallel
// property columns, deletes as a sorted endpoint batch — so the batch
// travels the wire (HTTP envelope, persistence journal) in the same
// codec-friendly shape the cluster layer already ships.
//
// Ins.Ws and Dels.Ws are sort/wire payload only and carry zeros; runs
// derive weights from the property columns, never from a batch.
type MutationBatch struct {
	Ins      *EdgeBatch
	InsProps []Column // parallel to the graph's edge property columns, rows parallel to Ins
	Dels     *EdgeBatch
}

// NewMutationBatch validates inserts and deletes against the graph's edge
// schema and builds the columnar batch. Each insert must supply exactly the
// graph's edge properties (no extras, no omissions); endpoints must be in
// node range. Delete pairs are validated against live edges at apply time,
// not here, so a batch can be built before the graph reaches the state it
// mutates.
func NewMutationBatch(g *Graph, ins []EdgeInsert, dels []EdgePair) (*MutationBatch, error) {
	if len(ins) == 0 && len(dels) == 0 {
		return nil, fmt.Errorf("%w: empty batch", ErrMutation)
	}
	var defs []PropDef
	if g.EdgeProps != nil {
		for i, n := range g.EdgeProps.Names {
			defs = append(defs, PropDef{Name: n, Type: g.EdgeProps.Cols[i].Type})
		}
	}
	mb := &MutationBatch{}
	if len(ins) > 0 {
		// Sort insert rows by (Src, Dst) ourselves: MakeEdgeBatch's internal
		// sort would desynchronize the parallel property rows.
		perm := make([]int, len(ins))
		for i := range perm {
			perm[i] = i
		}
		for i := 1; i < len(perm); i++ {
			for j := i; j > 0; j-- {
				a, b := ins[perm[j-1]], ins[perm[j]]
				if a.Src < b.Src || (a.Src == b.Src && a.Dst <= b.Dst) {
					break
				}
				perm[j-1], perm[j] = perm[j], perm[j-1]
			}
		}
		eb := &EdgeBatch{
			Srcs: make([]uint64, len(ins)),
			Dsts: make([]uint64, len(ins)),
			Ws:   make([]int64, len(ins)),
		}
		props := make([]Column, len(defs))
		for ci, d := range defs {
			props[ci] = Column{Type: d.Type}
		}
		for row, pi := range perm {
			e := ins[pi]
			if e.Src >= uint64(g.NumNodes) || e.Dst >= uint64(g.NumNodes) {
				return nil, fmt.Errorf("%w: insert %d->%d out of node range %d", ErrMutation, e.Src, e.Dst, g.NumNodes)
			}
			eb.Srcs[row], eb.Dsts[row] = e.Src, e.Dst
			if len(e.Props) != len(defs) {
				return nil, fmt.Errorf("%w: insert %d->%d has %d properties, graph %s has %d",
					ErrMutation, e.Src, e.Dst, len(e.Props), g.Name, len(defs))
			}
			for ci, d := range defs {
				v, ok := e.Props[d.Name]
				if !ok {
					return nil, fmt.Errorf("%w: insert %d->%d missing edge property %q", ErrMutation, e.Src, e.Dst, d.Name)
				}
				if err := props[ci].Append(v); err != nil {
					return nil, fmt.Errorf("%w: insert %d->%d property %q: %v", ErrMutation, e.Src, e.Dst, d.Name, err)
				}
			}
		}
		mb.Ins = eb
		mb.InsProps = props
	}
	if len(dels) > 0 {
		mb.Dels = MakeEdgeBatch(len(dels), func(i int) Triple {
			return Triple{Src: dels[i].Src, Dst: dels[i].Dst}
		})
	}
	return mb, nil
}

// Applied reports the effect of one committed mutation batch in edge-index
// terms, the currency downstream maintenance works in.
type Applied struct {
	Version   uint64   // graph version after the batch
	PrevEdges int      // edge rows before the batch; inserts occupy [PrevEdges, PrevEdges+Inserted)
	Inserted  int      // rows appended
	Deleted   []uint32 // tombstoned edge indices, ascending
}

// mutationPlan is a validated, side-effect-free application plan: commit is
// infallible, so callers can interleave a fallible persistence step between
// planning and committing and still be transactional.
type mutationPlan struct {
	mb   *MutationBatch
	dels []uint32
}

// plan validates the batch against the graph without changing anything.
func (mb *MutationBatch) plan(g *Graph) (*mutationPlan, error) {
	nIns := mb.Ins.Len()
	if nIns == 0 && mb.Dels.Len() == 0 {
		return nil, fmt.Errorf("%w: empty batch", ErrMutation)
	}
	nCols := 0
	if g.EdgeProps != nil {
		nCols = len(g.EdgeProps.Cols)
	}
	if nIns > 0 {
		if len(mb.InsProps) != nCols {
			return nil, fmt.Errorf("%w: batch has %d property columns, graph %s has %d",
				ErrMutation, len(mb.InsProps), g.Name, nCols)
		}
		for ci := range mb.InsProps {
			if mb.InsProps[ci].Type != g.EdgeProps.Cols[ci].Type {
				return nil, fmt.Errorf("%w: property column %q is %v, graph %s has %v",
					ErrMutation, g.EdgeProps.Names[ci], mb.InsProps[ci].Type, g.Name, g.EdgeProps.Cols[ci].Type)
			}
			if mb.InsProps[ci].Len() != nIns {
				return nil, fmt.Errorf("%w: property column %q has %d rows for %d inserts",
					ErrMutation, g.EdgeProps.Names[ci], mb.InsProps[ci].Len(), nIns)
			}
		}
		for i := 0; i < nIns; i++ {
			if mb.Ins.Srcs[i] >= uint64(g.NumNodes) || mb.Ins.Dsts[i] >= uint64(g.NumNodes) {
				return nil, fmt.Errorf("%w: insert %d->%d out of node range %d",
					ErrMutation, mb.Ins.Srcs[i], mb.Ins.Dsts[i], g.NumNodes)
			}
		}
	} else if len(mb.InsProps) != 0 {
		return nil, fmt.Errorf("%w: property columns without inserts", ErrMutation)
	}
	p := &mutationPlan{mb: mb}
	if nDel := mb.Dels.Len(); nDel > 0 {
		want := make(map[[2]uint64]bool, nDel)
		for i := 0; i < nDel; i++ {
			want[[2]uint64{mb.Dels.Srcs[i], mb.Dels.Dsts[i]}] = false
		}
		for i := 0; i < g.NumEdges(); i++ {
			if !g.EdgeAlive(i) {
				continue
			}
			key := [2]uint64{g.Srcs[i], g.Dsts[i]}
			if _, ok := want[key]; ok {
				want[key] = true
				p.dels = append(p.dels, uint32(i))
			}
		}
		for key, matched := range want {
			if !matched {
				return nil, fmt.Errorf("%w: delete %d->%d matches no live edge in graph %s",
					ErrMutation, key[0], key[1], g.Name)
			}
		}
	}
	return p, nil
}

// commit applies the plan to the graph. It cannot fail: all validation
// happened in plan, and the steps below only append and set bits.
func (p *mutationPlan) commit(g *Graph) Applied {
	a := Applied{PrevEdges: g.NumEdges(), Inserted: p.mb.Ins.Len(), Deleted: p.dels}
	for _, i := range p.dels {
		g.markDead(int(i))
	}
	if n := p.mb.Ins.Len(); n > 0 {
		g.Srcs = append(g.Srcs, p.mb.Ins.Srcs...)
		g.Dsts = append(g.Dsts, p.mb.Ins.Dsts...)
		for ci := range p.mb.InsProps {
			dst := &g.EdgeProps.Cols[ci]
			src := &p.mb.InsProps[ci]
			switch dst.Type {
			case TypeInt:
				dst.Ints = append(dst.Ints, src.Ints...)
			case TypeString:
				dst.Strs = append(dst.Strs, src.Strs...)
			default:
				dst.Bools = append(dst.Bools, src.Bools...)
			}
		}
	}
	g.Version++
	a.Version = g.Version
	return a
}

// ApplyMutation validates and applies a batch to an in-memory graph,
// bumping its version. Store.ApplyMutation adds journal persistence on top;
// use that for named, persisted graphs.
func (g *Graph) ApplyMutation(mb *MutationBatch) (Applied, error) {
	p, err := mb.plan(g)
	if err != nil {
		return Applied{}, err
	}
	return p.commit(g), nil
}
