package graph

import (
	"errors"
	"os"
	"testing"
)

// insertFor builds an EdgeInsert matching the Fig. 1 graph's edge schema
// (duration:int, year:int).
func insertFor(src, dst uint64, duration, year int64) EdgeInsert {
	return EdgeInsert{Src: src, Dst: dst, Props: map[string]Value{
		"duration": IntValue(duration),
		"year":     IntValue(year),
	}}
}

func TestApplyMutationInsertDelete(t *testing.T) {
	g := loadFig1(t)
	prevEdges := g.NumEdges()
	mb, err := NewMutationBatch(g,
		[]EdgeInsert{insertFor(2, 0, 5, 2020), insertFor(0, 4, 9, 2021)},
		[]EdgePair{{Src: 0, Dst: 1}}, // Fig.1 edge 1->2 is internal 0->1
	)
	if err != nil {
		t.Fatal(err)
	}
	a, err := g.ApplyMutation(mb)
	if err != nil {
		t.Fatal(err)
	}
	if a.Version != 1 || g.Version != 1 {
		t.Fatalf("version = %d/%d, want 1", a.Version, g.Version)
	}
	if a.PrevEdges != prevEdges || a.Inserted != 2 {
		t.Fatalf("applied = %+v", a)
	}
	if len(a.Deleted) != 1 {
		t.Fatalf("deleted = %v", a.Deleted)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != prevEdges+2 || g.LiveEdges() != prevEdges+1 {
		t.Fatalf("edges = %d live %d", g.NumEdges(), g.LiveEdges())
	}
	if g.EdgeAlive(int(a.Deleted[0])) {
		t.Fatal("deleted edge still alive")
	}
	// Tombstoned rows keep their data so index-based consumers still project.
	if tr := g.Triple(int(a.Deleted[0]), -1); tr.Src != 0 || tr.Dst != 1 {
		t.Fatalf("tombstoned triple = %+v", tr)
	}
	// Inserted rows land appended, sorted by (Src, Dst), with property rows.
	wc, err := g.WeightColumn("duration")
	if err != nil {
		t.Fatal(err)
	}
	first := g.Triple(prevEdges, wc)
	second := g.Triple(prevEdges+1, wc)
	if first.Src != 0 || first.Dst != 4 || first.W != 9 {
		t.Fatalf("first inserted = %+v", first)
	}
	if second.Src != 2 || second.Dst != 0 || second.W != 5 {
		t.Fatalf("second inserted = %+v", second)
	}
}

func TestApplyMutationRejectsBadBatches(t *testing.T) {
	g := loadFig1(t)
	cases := []struct {
		name string
		ins  []EdgeInsert
		dels []EdgePair
	}{
		{"empty", nil, nil},
		{"endpoint out of range", []EdgeInsert{insertFor(0, 99, 1, 2020)}, nil},
		{"missing property", []EdgeInsert{{Src: 0, Dst: 1, Props: map[string]Value{"duration": IntValue(1)}}}, nil},
		{"unknown property", []EdgeInsert{{Src: 0, Dst: 1, Props: map[string]Value{"duration": IntValue(1), "nope": IntValue(2)}}}, nil},
		{"wrong property type", []EdgeInsert{{Src: 0, Dst: 1, Props: map[string]Value{"duration": StringValue("x"), "year": IntValue(1)}}}, nil},
		{"delete matches nothing", nil, []EdgePair{{Src: 7, Dst: 0}}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			mb, err := NewMutationBatch(g, c.ins, c.dels)
			if err == nil {
				_, err = g.ApplyMutation(mb)
			}
			if !errors.Is(err, ErrMutation) {
				t.Fatalf("err = %v, want ErrMutation", err)
			}
			if g.Version != 0 {
				t.Fatal("rejected batch bumped the version")
			}
		})
	}
}

func TestApplyMutationDeletesParallelEdges(t *testing.T) {
	g := &Graph{Name: "p", NumNodes: 2, Srcs: []uint64{0, 0, 1}, Dsts: []uint64{1, 1, 0}}
	mb, err := NewMutationBatch(g, nil, []EdgePair{{Src: 0, Dst: 1}})
	if err != nil {
		t.Fatal(err)
	}
	a, err := g.ApplyMutation(mb)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Deleted) != 2 || g.LiveEdges() != 1 {
		t.Fatalf("deleted %v, live %d", a.Deleted, g.LiveEdges())
	}
	// A second delete of the same pair finds no live edge left.
	if _, err := g.ApplyMutation(mb); !errors.Is(err, ErrMutation) {
		t.Fatalf("re-delete err = %v", err)
	}
}

// TestStoreJournalReplay pins the restart contract: a store re-opened over
// the same directory replays journaled mutations and serves the exact
// post-mutation graph — same version, same edge indices, same tombstones.
func TestStoreJournalReplay(t *testing.T) {
	dir := t.TempDir()
	st, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Add(loadFig1(t)); err != nil {
		t.Fatal(err)
	}
	g, _ := st.Graph("Calls")
	mb1, err := NewMutationBatch(g, []EdgeInsert{insertFor(2, 0, 5, 2020)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.ApplyMutation("Calls", mb1); err != nil {
		t.Fatal(err)
	}
	mb2, err := NewMutationBatch(g, nil, []EdgePair{{Src: 0, Dst: 1}})
	if err != nil {
		t.Fatal(err)
	}
	a2, err := st.ApplyMutation("Calls", mb2)
	if err != nil {
		t.Fatal(err)
	}

	st2, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := st2.Graph("Calls")
	if err != nil {
		t.Fatal(err)
	}
	if g2.Version != 2 || g2.NumEdges() != g.NumEdges() || g2.LiveEdges() != g.LiveEdges() {
		t.Fatalf("replayed version %d edges %d live %d, want %d/%d/%d",
			g2.Version, g2.NumEdges(), g2.LiveEdges(), g.Version, g.NumEdges(), g.LiveEdges())
	}
	for _, d := range a2.Deleted {
		if g2.EdgeAlive(int(d)) {
			t.Fatalf("edge %d alive after replay", d)
		}
	}

	// Re-adding the graph snapshots fresh state and truncates the journal.
	if err := st2.Add(g2); err != nil {
		t.Fatal(err)
	}
	st3, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	g3, err := st3.Graph("Calls")
	if err != nil {
		t.Fatal(err)
	}
	if g3.Version != 2 || g3.LiveEdges() != g2.LiveEdges() {
		t.Fatalf("post-snapshot version %d live %d", g3.Version, g3.LiveEdges())
	}
}

// TestStoreFailsClosedOnCorruption pins satellite behavior: a snapshot or
// journal that fails integrity checks surfaces ErrCorruptGraph instead of
// being masked as "no graph named".
func TestStoreFailsClosedOnCorruption(t *testing.T) {
	t.Run("corrupt snapshot", func(t *testing.T) {
		dir := t.TempDir()
		st, _ := NewStore(dir)
		if err := st.Add(loadFig1(t)); err != nil {
			t.Fatal(err)
		}
		p, _ := st.path("Calls")
		if err := os.WriteFile(p, []byte("not a gob stream"), 0o644); err != nil {
			t.Fatal(err)
		}
		st2, _ := NewStore(dir)
		if _, err := st2.Graph("Calls"); !errors.Is(err, ErrCorruptGraph) {
			t.Fatalf("err = %v, want ErrCorruptGraph", err)
		}
	})
	t.Run("truncated journal", func(t *testing.T) {
		dir := t.TempDir()
		st, _ := NewStore(dir)
		if err := st.Add(loadFig1(t)); err != nil {
			t.Fatal(err)
		}
		g, _ := st.Graph("Calls")
		mb, err := NewMutationBatch(g, []EdgeInsert{insertFor(2, 0, 5, 2020)}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := st.ApplyMutation("Calls", mb); err != nil {
			t.Fatal(err)
		}
		jp, _ := st.journalPath("Calls")
		data, err := os.ReadFile(jp)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(jp, data[:len(data)-3], 0o644); err != nil {
			t.Fatal(err)
		}
		st2, _ := NewStore(dir)
		if _, err := st2.Graph("Calls"); !errors.Is(err, ErrCorruptGraph) {
			t.Fatalf("err = %v, want ErrCorruptGraph", err)
		}
	})
	t.Run("missing stays not-found", func(t *testing.T) {
		st, _ := NewStore(t.TempDir())
		if _, err := st.Graph("ghost"); err == nil || errors.Is(err, ErrCorruptGraph) {
			t.Fatalf("err = %v, want plain not-found", err)
		}
	})
}

func TestEdgeAliveDefaults(t *testing.T) {
	g := &Graph{Name: "g", NumNodes: 2, Srcs: []uint64{0, 1}, Dsts: []uint64{1, 0}}
	for i := 0; i < g.NumEdges(); i++ {
		if !g.EdgeAlive(i) {
			t.Fatalf("edge %d dead with nil bitmap", i)
		}
	}
	if g.LiveEdges() != 2 {
		t.Fatalf("LiveEdges = %d", g.LiveEdges())
	}
}
