package graph

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
)

// EdgeBatchCodecVersion is the wire-format version of EdgeBatch's binary
// codec. It is the first byte of every encoding; decoders reject any other
// value, so the format can evolve without silently misreading old payloads.
const EdgeBatchCodecVersion = 1

// ErrEdgeCodec marks an EdgeBatch payload that failed to decode — wrong
// codec version, truncated columns, or corrupt varints. The cluster wire
// layer wraps it (via gob) into its own typed ErrWire.
var ErrEdgeCodec = errors.New("graph: bad edge batch encoding")

// EdgeBatch is an immutable columnar edge multiset: parallel source,
// destination, and weight columns sorted by (Src, Dst, W). It is the
// engine's shipping and seeding unit for edge sets — a segment seed, a
// per-view difference set — shared by reference wherever the same edge set
// is needed twice (a pool replica and its speculative snapshot, a shard
// retained locally and shipped to a worker) instead of copying []Triple.
//
// The fields are exported for the wire codec and columnar consumers but
// must be treated as read-only after construction; sharing is only safe
// because nothing mutates a built batch.
//
// On the wire a batch travels as its own versioned binary format (see
// MarshalBinary) rather than per-record gob: sorted sources delta-encode
// into near-minimal varints, destinations and weights ride as fixed-width
// columns (with a one-value shortcut when every weight is equal, the
// unit-weight common case).
type EdgeBatch struct {
	Srcs []uint64
	Dsts []uint64
	Ws   []int64
}

// NewEdgeBatch builds a sorted batch from triples. The input slice is not
// retained or mutated.
func NewEdgeBatch(ts []Triple) *EdgeBatch {
	return MakeEdgeBatch(len(ts), func(i int) Triple { return ts[i] })
}

// MakeEdgeBatch builds a sorted batch from n triples produced by at — the
// single conversion point from edge indexes or triple slices to columns,
// without an intermediate []Triple.
func MakeEdgeBatch(n int, at func(i int) Triple) *EdgeBatch {
	b := &EdgeBatch{
		Srcs: make([]uint64, n),
		Dsts: make([]uint64, n),
		Ws:   make([]int64, n),
	}
	for i := 0; i < n; i++ {
		t := at(i)
		b.Srcs[i] = t.Src
		b.Dsts[i] = t.Dst
		b.Ws[i] = t.W
	}
	sort.Sort(edgeBatchSorter{b})
	return b
}

type edgeBatchSorter struct{ b *EdgeBatch }

func (s edgeBatchSorter) Len() int { return len(s.b.Srcs) }
func (s edgeBatchSorter) Less(i, j int) bool {
	b := s.b
	if b.Srcs[i] != b.Srcs[j] {
		return b.Srcs[i] < b.Srcs[j]
	}
	if b.Dsts[i] != b.Dsts[j] {
		return b.Dsts[i] < b.Dsts[j]
	}
	return b.Ws[i] < b.Ws[j]
}
func (s edgeBatchSorter) Swap(i, j int) {
	b := s.b
	b.Srcs[i], b.Srcs[j] = b.Srcs[j], b.Srcs[i]
	b.Dsts[i], b.Dsts[j] = b.Dsts[j], b.Dsts[i]
	b.Ws[i], b.Ws[j] = b.Ws[j], b.Ws[i]
}

// Len returns the number of edges; nil batches are empty.
func (b *EdgeBatch) Len() int {
	if b == nil {
		return 0
	}
	return len(b.Srcs)
}

// Triple returns edge i as a materialized triple.
func (b *EdgeBatch) Triple(i int) Triple {
	return Triple{Src: b.Srcs[i], Dst: b.Dsts[i], W: b.Ws[i]}
}

// Triples materializes the whole batch (tests and compatibility shims; hot
// paths iterate the columns via Len/Triple instead).
func (b *EdgeBatch) Triples() []Triple {
	out := make([]Triple, b.Len())
	for i := range out {
		out[i] = b.Triple(i)
	}
	return out
}

// MarshalBinary encodes the batch in the versioned columnar wire format:
//
//	byte     codec version (EdgeBatchCodecVersion)
//	uvarint  edge count n
//	n×uvarint source column, delta-encoded (sorted, so deltas are small)
//	n×8      destination column, fixed-width little-endian
//	byte     weight flag: 1 = constant column, 0 = full column
//	         flag 1: one zigzag-varint weight; flag 0: n×8 little-endian
//
// gob picks this up automatically for SegmentSpec fields, replacing
// per-record gob triples on the cluster wire.
func (b *EdgeBatch) MarshalBinary() ([]byte, error) {
	n := b.Len()
	out := make([]byte, 0, 1+binary.MaxVarintLen64+n+16*n)
	out = append(out, EdgeBatchCodecVersion)
	out = binary.AppendUvarint(out, uint64(n))
	if n == 0 {
		return out, nil
	}
	prev := uint64(0)
	for i, s := range b.Srcs {
		if i == 0 {
			out = binary.AppendUvarint(out, s)
		} else {
			out = binary.AppendUvarint(out, s-prev)
		}
		prev = s
	}
	for _, d := range b.Dsts {
		out = binary.LittleEndian.AppendUint64(out, d)
	}
	constW := true
	for _, w := range b.Ws[1:] {
		if w != b.Ws[0] {
			constW = false
			break
		}
	}
	if constW {
		out = append(out, 1)
		out = binary.AppendVarint(out, b.Ws[0])
	} else {
		out = append(out, 0)
		for _, w := range b.Ws {
			out = binary.LittleEndian.AppendUint64(out, uint64(w))
		}
	}
	return out, nil
}

// UnmarshalBinary decodes the columnar wire format, rejecting unknown
// versions and any truncation or varint corruption with ErrEdgeCodec.
func (b *EdgeBatch) UnmarshalBinary(data []byte) error {
	if len(data) < 1 {
		return fmt.Errorf("%w: empty payload", ErrEdgeCodec)
	}
	if data[0] != EdgeBatchCodecVersion {
		return fmt.Errorf("%w: codec version %d, want %d", ErrEdgeCodec, data[0], EdgeBatchCodecVersion)
	}
	data = data[1:]
	n64, k := binary.Uvarint(data)
	if k <= 0 {
		return fmt.Errorf("%w: bad edge count", ErrEdgeCodec)
	}
	data = data[k:]
	// Each edge costs at least one source byte plus eight destination bytes,
	// so an honest payload bounds n — checked before allocating columns.
	if n64 > uint64(len(data)) {
		return fmt.Errorf("%w: %d edges in %d payload bytes", ErrEdgeCodec, n64, len(data))
	}
	n := int(n64)
	b.Srcs = make([]uint64, n)
	b.Dsts = make([]uint64, n)
	b.Ws = make([]int64, n)
	if n == 0 {
		return nil
	}
	prev := uint64(0)
	for i := 0; i < n; i++ {
		d, k := binary.Uvarint(data)
		if k <= 0 {
			return fmt.Errorf("%w: truncated source column at %d/%d", ErrEdgeCodec, i, n)
		}
		data = data[k:]
		if i == 0 {
			prev = d
		} else {
			prev += d
		}
		b.Srcs[i] = prev
	}
	if len(data) < 8*n {
		return fmt.Errorf("%w: truncated destination column", ErrEdgeCodec)
	}
	for i := 0; i < n; i++ {
		b.Dsts[i] = binary.LittleEndian.Uint64(data[8*i:])
	}
	data = data[8*n:]
	if len(data) < 1 {
		return fmt.Errorf("%w: missing weight flag", ErrEdgeCodec)
	}
	flag := data[0]
	data = data[1:]
	switch flag {
	case 1:
		w, k := binary.Varint(data)
		if k <= 0 {
			return fmt.Errorf("%w: bad constant weight", ErrEdgeCodec)
		}
		for i := range b.Ws {
			b.Ws[i] = w
		}
	case 0:
		if len(data) < 8*n {
			return fmt.Errorf("%w: truncated weight column", ErrEdgeCodec)
		}
		for i := 0; i < n; i++ {
			b.Ws[i] = int64(binary.LittleEndian.Uint64(data[8*i:]))
		}
	default:
		return fmt.Errorf("%w: unknown weight flag %d", ErrEdgeCodec, flag)
	}
	return nil
}
