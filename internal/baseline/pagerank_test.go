package baseline

import (
	"math/rand"
	"testing"

	"graphsurge/internal/analytics"
	"graphsurge/internal/datagen"
	"graphsurge/internal/graph"
)

// prOracle recomputes the fixed-point PageRank from scratch with the exact
// arithmetic of analytics.PageRank.
func prOracle(edges map[graph.Triple]int64, iters int) map[uint64]int64 {
	verts := make(map[uint64]bool)
	deg := make(map[uint64]int64)
	for e, m := range edges {
		verts[e.Src], verts[e.Dst] = true, true
		deg[e.Src] += m
	}
	rank := make(map[uint64]int64, len(verts))
	for v := range verts {
		rank[v] = analytics.PRScale
	}
	for i := 0; i < iters; i++ {
		next := make(map[uint64]int64, len(verts))
		for v := range verts {
			next[v] = base
		}
		for e, m := range edges {
			next[e.Dst] += rank[e.Src] * 85 / 100 / deg[e.Src] * m
		}
		rank = next
	}
	return rank
}

func TestIncrementalPRMatchesOracle(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	p := NewIncrementalPR(6)
	cur := make(map[graph.Triple]int64)

	for step := 0; step < 25; step++ {
		var adds, dels []graph.Triple
		for i := 0; i < 10; i++ {
			e := graph.Triple{Src: uint64(r.Intn(20)), Dst: uint64(r.Intn(20)), W: 1}
			if r.Intn(3) == 0 && cur[e] > 0 {
				cur[e]--
				if cur[e] == 0 {
					delete(cur, e)
				}
				dels = append(dels, e)
			} else {
				cur[e]++
				adds = append(adds, e)
			}
		}
		p.Update(adds, dels)
		got := p.Ranks()
		want := prOracle(cur, 6)
		if len(got) != len(want) {
			t.Fatalf("step %d: %d ranks, oracle %d", step, len(got), len(want))
		}
		for v, rk := range want {
			if got[v] != rk {
				t.Fatalf("step %d: vertex %d = %d, oracle %d", step, v, got[v], rk)
			}
		}
	}
}

func TestIncrementalPRMatchesDifferentialEngine(t *testing.T) {
	// The specialized maintainer and the black-box differential engine
	// produce bit-identical ranks.
	g := datagen.Social(datagen.SocialConfig{Nodes: 150, Edges: 1200, Seed: 5})
	all := make([]graph.Triple, g.NumEdges())
	for i := range all {
		all[i] = g.Triple(i, -1)
	}
	p := NewIncrementalPR(8)
	inst, err := analytics.NewInstance(analytics.PageRank{Iterations: 8}, 1)
	if err != nil {
		t.Fatal(err)
	}
	p.Update(all[:1000], nil)
	inst.Step(all[:1000], nil)
	p.Update(all[1000:], all[:50])
	inst.Step(all[1000:], all[:50])

	want := make(map[uint64]int64)
	for vv, d := range inst.Results() {
		if d != 1 {
			t.Fatalf("multiplicity %d", d)
		}
		want[vv.V] = vv.Val
	}
	got := p.Ranks()
	if len(got) != len(want) {
		t.Fatalf("%d ranks vs engine %d", len(got), len(want))
	}
	for v, rk := range want {
		if got[v] != rk {
			t.Fatalf("vertex %d: baseline %d, engine %d", v, got[v], rk)
		}
	}
}

// BenchmarkGraphBoltStylePR reproduces the §7.5 comparison shape: PageRank
// maintained with algorithm-specific incremental code vs the black-box
// differential engine, over a stream of small edge deltas. GraphBolt's
// paper (and ours) expect the specialized maintainer to win by roughly an
// order of magnitude.
func BenchmarkGraphBoltStylePR(b *testing.B) {
	g := datagen.Social(datagen.SocialConfig{Nodes: 2_000, Edges: 20_000, Seed: 6})
	all := make([]graph.Triple, g.NumEdges())
	for i := range all {
		all[i] = g.Triple(i, -1)
	}
	base, deltas := all[:19_000], all[19_000:]

	b.Run("graphbolt-style", func(b *testing.B) {
		p := NewIncrementalPR(10)
		p.Update(base, nil)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e := deltas[i%len(deltas)]
			p.Update([]graph.Triple{e}, nil)
			p.Update(nil, []graph.Triple{e})
		}
	})
	b.Run("differential", func(b *testing.B) {
		inst, err := analytics.NewInstance(analytics.PageRank{Iterations: 10}, 1)
		if err != nil {
			b.Fatal(err)
		}
		inst.Step(base, nil)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e := deltas[i%len(deltas)]
			inst.Step([]graph.Triple{e}, nil)
			inst.Step(nil, []graph.Triple{e})
		}
	})
}
