// Package baseline implements algorithm-specific incremental maintenance
// baselines in the style of GraphBolt (Mariappan & Vora, EuroSys 2019),
// which the paper compares against in §7.5. GraphBolt asks users to write
// per-algorithm maintenance code (retract/propagate-delta functions); in
// exchange it avoids the generality costs of black-box differential
// maintenance. The paper reports (from GraphBolt's Figure 8) that such
// PageRank-specific maintenance beats Differential Dataflow by an order of
// magnitude; BenchmarkGraphBoltStylePR in this package reproduces that
// relative shape against our differential PageRank.
//
// IncrementalPR maintains the same fixed-iteration, fixed-point PageRank as
// analytics.PageRank — identical integer arithmetic, so results are
// bit-equal — using dependency-driven refinement: it stores the per-iteration
// contribution sums of every vertex and, on an edge change, re-evaluates a
// vertex at iteration i only if one of its in-neighbors changed at iteration
// i−1 (or its own base changed).
package baseline

import (
	"graphsurge/internal/analytics"
	"graphsurge/internal/graph"
)

// IncrementalPR maintains PageRank over an evolving edge multiset.
type IncrementalPR struct {
	iters   int
	damping int64

	// Graph state: adjacency with multiplicities.
	out map[uint64]map[uint64]int64 // src -> dst -> multiplicity
	in  map[uint64]map[uint64]int64 // dst -> src -> multiplicity
	deg map[uint64]int64            // out-degree (with multiplicity)

	// Per-iteration state: sums[i][v] = Σ_{u→v} share_{i-1}(u)·mult, where
	// share_i(u) = rank_i(u)·d/100/deg(u); rank_i(v) = base + sums[i][v].
	sums []map[uint64]int64
}

// NewIncrementalPR creates a maintainer matching analytics.PageRank with the
// given iteration count (0 means the default of 10).
func NewIncrementalPR(iters int) *IncrementalPR {
	if iters == 0 {
		iters = 10
	}
	p := &IncrementalPR{
		iters:   iters,
		damping: 85,
		out:     make(map[uint64]map[uint64]int64),
		in:      make(map[uint64]map[uint64]int64),
		deg:     make(map[uint64]int64),
		sums:    make([]map[uint64]int64, iters+1),
	}
	for i := range p.sums {
		p.sums[i] = make(map[uint64]int64)
	}
	return p
}

const base = (100 - 85) * analytics.PRScale / 100

// rank returns rank_i(v); vertices exist iff they have an incident edge.
func (p *IncrementalPR) rank(i int, v uint64) int64 {
	if i == 0 {
		return analytics.PRScale
	}
	return base + p.sums[i][v]
}

// share returns the contribution a single edge from u carries at iteration
// i (0 if u has no out-edges).
func (p *IncrementalPR) share(i int, u uint64) int64 {
	d := p.deg[u]
	if d == 0 {
		return 0
	}
	return p.rank(i, u) * p.damping / 100 / d
}

// Update applies edge additions and deletions and refines the per-iteration
// state. The work per iteration is proportional to the out-neighborhoods of
// the vertices whose rank (or degree) changed at the previous iteration —
// the dependency-driven refinement of GraphBolt — rather than to the whole
// graph.
func (p *IncrementalPR) Update(adds, dels []graph.Triple) {
	// Snapshot the old shares of vertices whose degree changes: all their
	// outgoing contributions change at every iteration.
	type edgeDelta struct {
		src, dst uint64
		d        int64
	}
	var deltas []edgeDelta
	for _, t := range adds {
		deltas = append(deltas, edgeDelta{t.Src, t.Dst, 1})
	}
	for _, t := range dels {
		deltas = append(deltas, edgeDelta{t.Src, t.Dst, -1})
	}
	if len(deltas) == 0 {
		return
	}

	// Vertices whose outgoing shares must be re-pushed at every iteration
	// because their degree or edge set changed.
	structurallyDirty := make(map[uint64]struct{})
	oldShares := make([][]int64, p.iters+1) // [i] aligned with dirtyList
	var dirtyList []uint64

	snapshot := func(u uint64) {
		if _, ok := structurallyDirty[u]; ok {
			return
		}
		structurallyDirty[u] = struct{}{}
		dirtyList = append(dirtyList, u)
		for i := 0; i <= p.iters; i++ {
			oldShares[i] = append(oldShares[i], p.share(i, u))
		}
	}
	for _, e := range deltas {
		snapshot(e.src)
		snapshot(e.dst) // dst may gain/lose existence; harmless to include
	}

	// Apply the structural change.
	bump := func(m map[uint64]map[uint64]int64, a, b uint64, d int64) {
		mm := m[a]
		if mm == nil {
			mm = make(map[uint64]int64)
			m[a] = mm
		}
		mm[b] += d
		if mm[b] == 0 {
			delete(mm, b)
		}
		if len(mm) == 0 {
			delete(m, a)
		}
	}
	for _, e := range deltas {
		bump(p.out, e.src, e.dst, e.d)
		bump(p.in, e.dst, e.src, e.d)
		p.deg[e.src] += e.d
		if p.deg[e.src] == 0 {
			delete(p.deg, e.src)
		}
	}

	dirtyIdx := make(map[uint64]int, len(dirtyList))
	for idx, u := range dirtyList {
		dirtyIdx[u] = idx
	}

	// Refine iteration by iteration. changed[u] holds u's *old* share at the
	// previous iteration; the correction to each downstream sum is
	//   Σ_u (newShare−oldShare)(u)·mult_new(u,v) + oldShare(u)·Δmult(u,v).
	changed := make(map[uint64]int64)
	for idx, u := range dirtyList {
		changed[u] = oldShares[0][idx]
	}
	for i := 1; i <= p.iters; i++ {
		// Seed the next frontier with the dirty vertices' old shares first,
		// so pushes below snapshot non-dirty vertices only.
		next := make(map[uint64]int64)
		for idx, u := range dirtyList {
			next[u] = oldShares[i][idx]
		}
		touch := func(v uint64) {
			if _, ok := next[v]; !ok {
				next[v] = p.share(i, v) // pre-update share of a clean vertex
			}
		}
		// Rank/degree corrections propagate along the *new* edge set.
		for u, oldShare := range changed {
			d := p.share(i-1, u) - oldShare
			if d == 0 {
				continue
			}
			for v, mult := range p.out[u] {
				touch(v)
				p.sums[i][v] += d * mult
				if p.sums[i][v] == 0 {
					delete(p.sums[i], v)
				}
			}
		}
		// Structural deltas carry the source's *old* previous-iteration
		// share (the new-share part is covered by the correction above).
		for _, e := range deltas {
			s := oldShares[i-1][dirtyIdx[e.src]]
			if s == 0 {
				continue
			}
			touch(e.dst)
			p.sums[i][e.dst] += e.d * s
			if p.sums[i][e.dst] == 0 {
				delete(p.sums[i], e.dst)
			}
		}
		changed = next
	}
}

// Ranks returns rank_N(v) for every vertex with an incident edge, matching
// analytics.PageRank's output exactly.
func (p *IncrementalPR) Ranks() map[uint64]int64 {
	verts := make(map[uint64]struct{})
	for u, outs := range p.out {
		verts[u] = struct{}{}
		for v := range outs {
			verts[v] = struct{}{}
		}
	}
	out := make(map[uint64]int64, len(verts))
	for v := range verts {
		out[v] = p.rank(p.iters, v)
	}
	return out
}
