package poolrelease_test

import (
	"testing"

	"graphsurge/internal/lint/analysistest"
	"graphsurge/internal/lint/poolrelease"
)

func TestPoolRelease(t *testing.T) {
	analysistest.Run(t, "testdata", poolrelease.Analyzer, "a", "ignored")
}
