// Fixture for the poolrelease analyzer: each function is one shape of
// acquire/release flow; `want` comments mark the leaks it must report.
package a

import (
	"context"
	"errors"

	"analytics"
)

var sink *analytics.Runner

// deferRelease is the canonical clean shape.
func deferRelease(ctx context.Context, p *analytics.Pool) error {
	r, _, err := p.Acquire(ctx)
	if err != nil {
		return err
	}
	defer p.Release(r)
	return r.Step()
}

// linearRelease releases on the single path through the function.
func linearRelease(ctx context.Context, p *analytics.Pool) {
	r, _, err := p.Acquire(ctx)
	if err != nil {
		return
	}
	_ = r.Step()
	p.Release(r)
}

// earlyReturnLeak exits between acquire and release.
func earlyReturnLeak(ctx context.Context, p *analytics.Pool, bad bool) error {
	r, _, err := p.Acquire(ctx) // want `replica acquired from analytics\.Pool\.Acquire is not released on every path`
	if err != nil {
		return err
	}
	if bad {
		return errors.New("forgot the replica")
	}
	p.Release(r)
	return nil
}

// branchRelease releases on both arms.
func branchRelease(ctx context.Context, p *analytics.Pool, fast bool) {
	r, _, err := p.Acquire(ctx)
	if err != nil {
		return
	}
	if fast {
		p.Release(r)
	} else {
		_ = r.Step()
		p.Release(r)
	}
}

// oneArmLeak releases on only one arm and falls off the end.
func oneArmLeak(ctx context.Context, p *analytics.Pool, fast bool) {
	r, _, err := p.Acquire(ctx) // want `replica acquired from analytics\.Pool\.Acquire is not released on every path`
	if err != nil {
		return
	}
	if fast {
		p.Release(r)
	}
}

// tryAcquireGuard is the if-init TryAcquire idiom, clean.
func tryAcquireGuard(p *analytics.Pool) {
	if r, _, ok := p.TryAcquire(); ok {
		defer p.Release(r)
		_ = r.Step()
	}
}

// tryAcquireLeak claims a slot in the success body and never returns it.
func tryAcquireLeak(p *analytics.Pool) {
	if r, _, ok := p.TryAcquire(); ok { // want `replica acquired from analytics\.Pool\.TryAcquire is not released on every path`
		_ = r.Step()
	}
}

// discarded can never be released.
func discarded(ctx context.Context, p *analytics.Pool) {
	p.Acquire(ctx) // want `result of analytics\.Pool\.Acquire is discarded`
}

// blankRunner throws the runner away but keeps the setup duration.
func blankRunner(p *analytics.Pool) {
	_, d, _ := p.TryAcquire() // want `runner from analytics\.Pool\.TryAcquire assigned to the blank identifier`
	_ = d
}

// escapeReturn transfers ownership to the caller: not this function's leak.
func escapeReturn(ctx context.Context, p *analytics.Pool) (*analytics.Runner, error) {
	r, _, err := p.Acquire(ctx)
	if err != nil {
		return nil, err
	}
	return r, nil
}

// escapeStore parks the runner in package state; released elsewhere.
func escapeStore(ctx context.Context, p *analytics.Pool) {
	r, _, err := p.Acquire(ctx)
	if err != nil {
		return
	}
	sink = r
}

// loopPerIteration releases inside each iteration, clean.
func loopPerIteration(ctx context.Context, p *analytics.Pool, n int) {
	for i := 0; i < n; i++ {
		r, _, err := p.Acquire(ctx)
		if err != nil {
			return
		}
		_ = r.Step()
		p.Release(r)
	}
}

// loopContinueLeak abandons an iteration's runner on continue.
func loopContinueLeak(ctx context.Context, p *analytics.Pool, n int) {
	for i := 0; i < n; i++ {
		r, _, err := p.Acquire(ctx) // want `replica acquired from analytics\.Pool\.Acquire is not released on every path`
		if err != nil {
			return
		}
		if r.Step() != nil {
			continue
		}
		p.Release(r)
	}
}

// breakThenRelease exits the loop first and releases after it, clean.
func breakThenRelease(ctx context.Context, p *analytics.Pool, n int) {
	r, _, err := p.Acquire(ctx)
	if err != nil {
		return
	}
	for i := 0; i < n; i++ {
		if r.Step() == nil {
			break
		}
	}
	p.Release(r)
}

// selectRelease releases in every comm case, clean.
func selectRelease(ctx context.Context, p *analytics.Pool, done chan struct{}) {
	r, _, err := p.Acquire(ctx)
	if err != nil {
		return
	}
	select {
	case <-done:
		p.Release(r)
	case <-ctx.Done():
		p.Release(r)
	}
}
