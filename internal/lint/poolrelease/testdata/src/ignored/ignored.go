// Fixture for //lint:ignore handling by the poolrelease analyzer: an
// honored suppression with a reason, and a malformed one that suppresses
// nothing and is itself reported.
package ignored

import (
	"context"

	"analytics"
)

// pinned deliberately keeps a replica out of rotation.
func pinned(ctx context.Context, p *analytics.Pool) {
	//lint:ignore poolrelease test pins a replica for the session lifetime
	r, _, err := p.Acquire(ctx)
	if err != nil {
		return
	}
	_ = r.Step()
}

// badDirective omits the reason, so the directive is malformed: it is
// reported itself and the leak it meant to suppress is still reported.
func badDirective(ctx context.Context, p *analytics.Pool) {
	//lint:ignore poolrelease // want `malformed //lint:ignore directive: missing reason`
	r, _, err := p.Acquire(ctx) // want `replica acquired from analytics\.Pool\.Acquire is not released on every path`
	if err != nil {
		return
	}
	_ = r.Step()
}
