// Stub of graphsurge/internal/analytics for fixture type-checking: the
// analyzer matches methods on a type named Pool in a package whose import
// path ends in "analytics", so this shape is all it needs.
package analytics

import (
	"context"
	"time"
)

type Runner struct{ ID int }

func (r *Runner) Step() error { return nil }

type Pool struct{}

func (p *Pool) Acquire(ctx context.Context) (*Runner, time.Duration, error) {
	return &Runner{}, 0, nil
}

func (p *Pool) TryAcquire() (*Runner, time.Duration, bool) {
	return &Runner{}, 0, true
}

func (p *Pool) Release(r *Runner) {}
