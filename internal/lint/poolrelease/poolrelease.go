// Package poolrelease enforces the replica-slot invariant that PRs 2 and 3
// each fixed leaks against by hand: every runner obtained from
// analytics.Pool.Acquire or TryAcquire must reach Pool.Release on every
// success path. A leaked slot is invisible until the pool's capacity pins
// and every later run queues forever — production-only symptoms the
// analyzer turns into vet failures.
//
// The analysis is intra-procedural and ownership-aware:
//
//   - An acquire whose runner value *escapes* the function — returned,
//     stored into a variable/struct/map/channel, captured by a closure, or
//     passed to any function other than Release — transfers ownership and
//     is not flagged; the executor's dispatch paths (internal/core's
//     segment states) hand runners between goroutines this way. Calling
//     methods on the runner and comparing it are uses, not escapes.
//
//   - Otherwise the runner is locally owned, and a path walk requires a
//     Release (directly or via defer) on every path from the acquire to
//     function exit. Each path's outcome is tracked as a set — a branch
//     that leaves via continue/break does not get credit for a release
//     later in the block. The failure branch of the acquire
//     (`if err != nil`, `if !ok`) is recognized and exempt — no runner
//     exists there.
//
//   - A runner assigned to the blank identifier, or an acquire used as a
//     bare expression statement, can never be released and is always
//     reported.
//
// Suppress a deliberate hold (e.g. a test pinning a slot) with
// //lint:ignore poolrelease <reason>.
package poolrelease

import (
	"go/ast"
	"go/token"
	"go/types"

	"graphsurge/internal/lint/analysis"
	"graphsurge/internal/lint/lintutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "poolrelease",
	Doc:  "every analytics.Pool.Acquire/TryAcquire success path must reach a Release (defer or all branches)",
	Run:  run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					analyzeBody(pass, n.Body)
				}
			case *ast.FuncLit:
				analyzeBody(pass, n.Body)
			}
			return true
		})
	}
	return nil, nil
}

// acquireSite is one Acquire/TryAcquire call bound to local variables.
type acquireSite struct {
	stmt   ast.Stmt // the assignment statement
	call   *ast.CallExpr
	method string       // Acquire or TryAcquire
	runner types.Object // the runner variable
	status types.Object // err (Acquire) or ok (TryAcquire); nil if blank
}

// analyzeBody checks every acquire lexically inside body but outside any
// nested function literal (literals are analyzed as their own bodies).
func analyzeBody(pass *analysis.Pass, body *ast.BlockStmt) {
	var sites []acquireSite
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok {
				if m, isAcq := acquireMethod(pass.TypesInfo, call); isAcq {
					pass.Reportf(call.Pos(), "result of analytics.Pool.%s is discarded — the replica slot can never be released", m)
				}
			}
		case *ast.AssignStmt:
			if len(n.Rhs) != 1 {
				return true
			}
			call, ok := n.Rhs[0].(*ast.CallExpr)
			if !ok {
				return true
			}
			m, isAcq := acquireMethod(pass.TypesInfo, call)
			if !isAcq || len(n.Lhs) != 3 {
				return true
			}
			site := acquireSite{stmt: n, call: call, method: m}
			site.runner = identObj(pass.TypesInfo, n.Lhs[0])
			site.status = identObj(pass.TypesInfo, n.Lhs[2])
			if site.runner == nil {
				pass.Reportf(call.Pos(), "runner from analytics.Pool.%s assigned to the blank identifier — the replica slot can never be released", m)
				return true
			}
			sites = append(sites, site)
		}
		return true
	})

	for _, site := range sites {
		if escapes(pass.TypesInfo, body, site) {
			continue
		}
		ev := &eval{info: pass.TypesInfo, site: site}
		found, st := ev.seek(body.List)
		if found && st&^released != 0 {
			pass.Reportf(site.call.Pos(),
				"replica acquired from analytics.Pool.%s is not released on every path — add a defer pool.Release or release on each exit", site.method)
		}
	}
}

// acquireMethod reports whether call invokes analytics.Pool.Acquire or
// TryAcquire.
func acquireMethod(info *types.Info, call *ast.CallExpr) (string, bool) {
	obj := lintutil.Callee(info, call)
	if obj == nil {
		return "", false
	}
	if lintutil.IsMethodOn(obj, "analytics", "Pool", "Acquire") {
		return "Acquire", true
	}
	if lintutil.IsMethodOn(obj, "analytics", "Pool", "TryAcquire") {
		return "TryAcquire", true
	}
	return "", false
}

func identObj(info *types.Info, e ast.Expr) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}

// isReleaseCall reports whether call is Pool.Release with the runner as an
// argument.
func isReleaseCall(info *types.Info, call *ast.CallExpr, runner types.Object) bool {
	obj := lintutil.Callee(info, call)
	if obj == nil || !lintutil.IsMethodOn(obj, "analytics", "Pool", "Release") {
		return false
	}
	for _, arg := range call.Args {
		if id, ok := ast.Unparen(arg).(*ast.Ident); ok && info.Uses[id] == runner {
			return true
		}
	}
	return false
}

// escapes reports whether the runner's ownership can leave the function:
// any use of the runner identifier other than method calls on it,
// comparisons, reassignment, or Release. Classification is by the use
// site's parent node; unknown contexts count as escapes, biasing toward
// silence over false leak reports.
func escapes(info *types.Info, body *ast.BlockStmt, site acquireSite) bool {
	esc := false
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		if esc {
			return true
		}
		id, ok := n.(*ast.Ident)
		if !ok || info.Uses[id] != site.runner {
			return true
		}
		if useEscapes(info, stack, id, site) {
			esc = true
		}
		return true
	})
	return esc
}

// useEscapes classifies one use of the runner identifier. stack holds the
// ancestors of id, innermost last (id itself on top).
func useEscapes(info *types.Info, stack []ast.Node, id *ast.Ident, site acquireSite) bool {
	// A reference from inside a function literal outlives this frame.
	for _, anc := range stack[:len(stack)-1] {
		if _, ok := anc.(*ast.FuncLit); ok {
			return true
		}
	}
	parent, grand := ancestors(stack)
	switch p := parent.(type) {
	case *ast.SelectorExpr:
		// r.Step() is a use; r.Step as a method value escapes.
		if call, ok := grand.(*ast.CallExpr); ok && ast.Unparen(call.Fun) == p {
			return false
		}
		return true
	case *ast.CallExpr:
		// The runner as an argument: only Release keeps ownership local.
		return !isReleaseCall(info, p, site.runner)
	case *ast.AssignStmt:
		for _, lhs := range p.Lhs {
			if ast.Unparen(lhs) == id {
				return false // reassignment of r itself
			}
		}
		return true // r on the right-hand side is stored somewhere
	case *ast.BinaryExpr:
		return false // comparison (r == nil)
	case *ast.SwitchStmt, *ast.CaseClause:
		return false // switch r { case other: } comparisons
	}
	return true
}

// ancestors returns id's parent and grandparent nodes, looking through
// parentheses.
func ancestors(stack []ast.Node) (parent, grand ast.Node) {
	nodes := make([]ast.Node, 0, 2)
	for i := len(stack) - 2; i >= 0 && len(nodes) < 2; i-- {
		if _, ok := stack[i].(*ast.ParenExpr); ok {
			continue
		}
		nodes = append(nodes, stack[i])
	}
	if len(nodes) > 0 {
		parent = nodes[0]
	}
	if len(nodes) > 1 {
		grand = nodes[1]
	}
	return parent, grand
}

// pathSet is a set of outcomes over the executions flowing from a point.
type pathSet uint8

const (
	fallthru pathSet = 1 << iota // control continues past the statement list
	released                     // a Release (or deferred Release) happened
	leaked                       // function exit without a Release
	broke                        // left the nearest loop/switch via break
	cont                         // ended the loop iteration via continue
)

// eval walks the post-acquire statements for one site.
type eval struct {
	info *types.Info
	site acquireSite
}

// seek locates the acquire statement within list (possibly nested) and
// returns the outcome set of all executions from just after it.
func (ev *eval) seek(list []ast.Stmt) (bool, pathSet) {
	for i, s := range list {
		if s == ev.site.stmt {
			return true, ev.checkStmts(list[i+1:])
		}
		if !containsNode(s, ev.site.stmt) {
			continue
		}
		found, st := ev.seekStmt(s)
		if !found {
			continue
		}
		if st&fallthru != 0 {
			st = (st &^ fallthru) | ev.checkStmts(list[i+1:])
		}
		return true, st
	}
	return false, 0
}

func (ev *eval) seekStmt(s ast.Stmt) (bool, pathSet) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return ev.seek(s.List)
	case *ast.LabeledStmt:
		return ev.seekStmt(s.Stmt)
	case *ast.IfStmt:
		if s.Init == ev.site.stmt {
			// if r, _, ok := pool.TryAcquire(); ok { ... }
			return true, ev.checkStmt(&ast.IfStmt{Cond: s.Cond, Body: s.Body, Else: s.Else})
		}
		if containsNode(s.Body, ev.site.stmt) {
			return ev.seek(s.Body.List)
		}
		if s.Else != nil && containsNode(s.Else, ev.site.stmt) {
			return ev.seekStmt(s.Else)
		}
		return false, 0
	case *ast.ForStmt:
		return ev.seekLoop(s.Body)
	case *ast.RangeStmt:
		return ev.seekLoop(s.Body)
	case *ast.SwitchStmt:
		return ev.seekCases(s.Body)
	case *ast.TypeSwitchStmt:
		return ev.seekCases(s.Body)
	case *ast.SelectStmt:
		return ev.seekCases(s.Body)
	}
	return false, 0
}

// seekLoop maps iteration outcomes to the loop boundary for an acquire
// inside the loop body: any way the iteration ends without a release —
// falling through to the next iteration, continue, or break (the runner
// is scoped to the iteration) — abandons that iteration's runner.
func (ev *eval) seekLoop(body *ast.BlockStmt) (bool, pathSet) {
	found, st := ev.seek(body.List)
	if !found {
		return false, 0
	}
	out := st & (released | leaked)
	if st&(fallthru|cont|broke) != 0 {
		out |= leaked
	}
	return true, out
}

// seekCases finds the case body holding the acquire; break exits the
// switch/select, so it becomes fallthru at this level.
func (ev *eval) seekCases(body *ast.BlockStmt) (bool, pathSet) {
	for _, clause := range body.List {
		stmts := clauseBody(clause)
		if stmts == nil || !containsClause(stmts, ev.site.stmt) {
			continue
		}
		found, st := ev.seek(stmts)
		if !found {
			continue
		}
		if st&broke != 0 {
			st = (st &^ broke) | fallthru
		}
		return true, st
	}
	return false, 0
}

// checkStmts computes the outcome set of a statement list: outcomes that
// stop a path (release, exit, break, continue) accumulate; only fallthru
// paths flow into the next statement.
func (ev *eval) checkStmts(list []ast.Stmt) pathSet {
	if len(list) == 0 {
		return fallthru
	}
	st := ev.checkStmt(list[0])
	out := st &^ fallthru
	if st&fallthru != 0 {
		out |= ev.checkStmts(list[1:])
	}
	return out
}

func (ev *eval) checkStmt(s ast.Stmt) pathSet {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok && isReleaseCall(ev.info, call, ev.site.runner) {
			return released
		}
		return fallthru
	case *ast.DeferStmt:
		if isReleaseCall(ev.info, s.Call, ev.site.runner) {
			return released
		}
		return fallthru
	case *ast.ReturnStmt:
		return leaked
	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			return broke
		case token.CONTINUE:
			return cont
		case token.GOTO:
			return leaked // cannot track the jump target
		}
		return fallthru
	case *ast.BlockStmt:
		return ev.checkStmts(s.List)
	case *ast.LabeledStmt:
		return ev.checkStmt(s.Stmt)
	case *ast.IfStmt:
		return ev.checkIf(s)
	case *ast.ForStmt:
		body := ev.checkStmts(s.Body.List)
		out := body & (leaked | released)
		// The loop is left unreleased when it can run zero times or an
		// iteration path exits it without a release.
		if s.Cond != nil || body&(fallthru|cont|broke) != 0 {
			out |= fallthru
		}
		if out == 0 {
			out = fallthru
		}
		return out
	case *ast.RangeStmt:
		body := ev.checkStmts(s.Body.List)
		return (body & (leaked | released)) | fallthru
	case *ast.SwitchStmt:
		return ev.checkCases(s.Body, hasDefaultCase(s.Body))
	case *ast.TypeSwitchStmt:
		return ev.checkCases(s.Body, hasDefaultCase(s.Body))
	case *ast.SelectStmt:
		// A select with no default still executes exactly one case.
		return ev.checkCases(s.Body, true)
	}
	return fallthru
}

// checkIf evaluates an if-statement after the acquire. The acquire's own
// status guard splits success from failure: failure paths carry no runner
// and are dropped from the outcome set entirely.
func (ev *eval) checkIf(s *ast.IfStmt) pathSet {
	switch ev.guardKind(s.Cond) {
	case guardFailure:
		if s.Else != nil {
			return ev.checkStmt(s.Else) // success lives in the else arm
		}
		return fallthru // success continues after the if
	case guardSuccess:
		return ev.checkStmts(s.Body.List)
	}
	out := ev.checkStmts(s.Body.List)
	if s.Else != nil {
		out |= ev.checkStmt(s.Else)
	} else {
		out |= fallthru
	}
	return out
}

func (ev *eval) checkCases(body *ast.BlockStmt, exhaustive bool) pathSet {
	var out pathSet
	seen := false
	for _, clause := range body.List {
		stmts := clauseBody(clause)
		if stmts == nil {
			continue
		}
		seen = true
		cs := ev.checkStmts(stmts)
		if cs&broke != 0 {
			cs = (cs &^ broke) | fallthru // break exits the switch
		}
		out |= cs
	}
	if !exhaustive || !seen {
		out |= fallthru
	}
	return out
}

type guardKind int

const (
	guardNone guardKind = iota
	guardFailure
	guardSuccess
)

// guardKind classifies an if condition relative to the acquire's status
// variable: `err != nil` / `!ok` guard the failure path, `err == nil` /
// `ok` the success path.
func (ev *eval) guardKind(cond ast.Expr) guardKind {
	obj := ev.site.status
	if obj == nil {
		return guardNone
	}
	switch c := ast.Unparen(cond).(type) {
	case *ast.BinaryExpr:
		var other ast.Expr
		if id, ok := ast.Unparen(c.X).(*ast.Ident); ok && ev.info.Uses[id] == obj {
			other = c.Y
		} else if id, ok := ast.Unparen(c.Y).(*ast.Ident); ok && ev.info.Uses[id] == obj {
			other = c.X
		} else {
			return guardNone
		}
		if !isNilIdent(ev.info, other) {
			return guardNone
		}
		switch c.Op {
		case token.NEQ:
			return guardFailure // err != nil
		case token.EQL:
			return guardSuccess // err == nil
		}
		return guardNone
	case *ast.UnaryExpr:
		if c.Op == token.NOT {
			if id, ok := ast.Unparen(c.X).(*ast.Ident); ok && ev.info.Uses[id] == obj {
				return guardFailure // !ok
			}
		}
	case *ast.Ident:
		if ev.info.Uses[c] == obj {
			return guardSuccess // ok
		}
	}
	return guardNone
}

func isNilIdent(info *types.Info, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := info.Uses[id].(*types.Nil)
	return isNil
}

func clauseBody(clause ast.Stmt) []ast.Stmt {
	switch c := clause.(type) {
	case *ast.CaseClause:
		return c.Body
	case *ast.CommClause:
		return c.Body
	}
	return nil
}

func containsNode(outer ast.Node, inner ast.Stmt) bool {
	return outer.Pos() <= inner.Pos() && inner.End() <= outer.End()
}

func containsClause(stmts []ast.Stmt, inner ast.Stmt) bool {
	for _, s := range stmts {
		if containsNode(s, inner) {
			return true
		}
	}
	return false
}

func hasDefaultCase(body *ast.BlockStmt) bool {
	for _, clause := range body.List {
		if c, ok := clause.(*ast.CaseClause); ok && c.List == nil {
			return true
		}
	}
	return false
}
