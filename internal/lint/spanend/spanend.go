// Package spanend enforces the span-lifecycle invariant the observability
// layer depends on: every span started with obs.StartSpan must reach
// Span.End on every path. An unended span stays open in its trace forever —
// the span tree renders it as "open", OpenSpans never returns to zero, and
// the cancellation tests that assert canceled runs close their spans turn
// red only if the leak happens to be on the exercised path. The analyzer
// turns the invariant into a vet failure at the unexercised ones too.
//
// The analysis mirrors poolrelease's ownership-aware path walk:
//
//   - A span that *escapes* the function — returned, stored into a
//     variable/struct/map/channel, captured by a closure, or passed to any
//     function — transfers ownership and is not flagged; the executor
//     stores segment spans on segmentExec and ends them in releaseSeg, the
//     single choke point every lifecycle path goes through.
//
//   - Otherwise the span is locally owned, and a path walk requires an End
//     (directly or via defer) on every path from the StartSpan to function
//     exit. Each path's outcome is tracked as a set — a branch that leaves
//     via continue/break does not get credit for an End later in the block.
//
//   - A span assigned to the blank identifier, or a StartSpan used as a
//     bare expression statement, can never be ended and is always reported.
//     (StartSpan returns a nil no-op span on untraced contexts and End is
//     nil-safe, so "it would be a no-op anyway" is never a reason to skip
//     the End.)
//
// Method calls on the span (SetAttr) and comparisons are uses, not escapes.
// Suppress a deliberate hold with //lint:ignore spanend <reason>.
package spanend

import (
	"go/ast"
	"go/token"
	"go/types"

	"graphsurge/internal/lint/analysis"
	"graphsurge/internal/lint/lintutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "spanend",
	Doc:  "every span from obs.StartSpan must reach Span.End on every path (defer or all branches)",
	Run:  run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					analyzeBody(pass, n.Body)
				}
			case *ast.FuncLit:
				analyzeBody(pass, n.Body)
			}
			return true
		})
	}
	return nil, nil
}

// startSite is one StartSpan call bound to a local span variable.
type startSite struct {
	stmt ast.Stmt // the assignment statement
	call *ast.CallExpr
	span types.Object // the span variable (Lhs[1])
}

// analyzeBody checks every StartSpan lexically inside body but outside any
// nested function literal (literals are analyzed as their own bodies).
func analyzeBody(pass *analysis.Pass, body *ast.BlockStmt) {
	var sites []startSite
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok && isStartSpan(pass.TypesInfo, call) {
				pass.Reportf(call.Pos(), "result of obs.StartSpan is discarded — the span can never be ended")
			}
		case *ast.AssignStmt:
			if len(n.Rhs) != 1 {
				return true
			}
			call, ok := n.Rhs[0].(*ast.CallExpr)
			if !ok || !isStartSpan(pass.TypesInfo, call) || len(n.Lhs) != 2 {
				return true
			}
			site := startSite{stmt: n, call: call, span: identObj(pass.TypesInfo, n.Lhs[1])}
			if site.span == nil {
				pass.Reportf(call.Pos(), "span from obs.StartSpan assigned to the blank identifier — the span can never be ended")
				return true
			}
			sites = append(sites, site)
		}
		return true
	})

	for _, site := range sites {
		if escapes(pass.TypesInfo, body, site) {
			continue
		}
		ev := &eval{info: pass.TypesInfo, site: site}
		found, st := ev.seek(body.List)
		if found && st&^ended != 0 {
			pass.Reportf(site.call.Pos(),
				"span started with obs.StartSpan is not ended on every path — add a defer span.End() or end on each exit")
		}
	}
}

// isStartSpan reports whether call invokes obs.StartSpan.
func isStartSpan(info *types.Info, call *ast.CallExpr) bool {
	obj := lintutil.Callee(info, call)
	fn, ok := obj.(*types.Func)
	if !ok || fn.Name() != "StartSpan" {
		return false
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return false
	}
	return lintutil.PkgHasSuffix(fn.Pkg(), "obs")
}

func identObj(info *types.Info, e ast.Expr) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}

// isEndCall reports whether call is span.End() on the site's span variable.
func isEndCall(info *types.Info, call *ast.CallExpr, span types.Object) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := lintutil.Callee(info, call)
	if obj == nil || !lintutil.IsMethodOn(obj, "obs", "Span", "End") {
		return false
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	return ok && info.Uses[id] == span
}

// escapes reports whether the span's ownership can leave the function: any
// use of the span identifier other than method calls on it, comparisons, or
// reassignment. Unknown contexts count as escapes, biasing toward silence
// over false leak reports — exactly poolrelease's posture.
func escapes(info *types.Info, body *ast.BlockStmt, site startSite) bool {
	esc := false
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		if esc {
			return true
		}
		id, ok := n.(*ast.Ident)
		if !ok || info.Uses[id] != site.span {
			return true
		}
		if useEscapes(stack, id) {
			esc = true
		}
		return true
	})
	return esc
}

// useEscapes classifies one use of the span identifier. stack holds the
// ancestors of id, innermost last (id itself on top).
func useEscapes(stack []ast.Node, id *ast.Ident) bool {
	// A reference from inside a function literal outlives this frame.
	for _, anc := range stack[:len(stack)-1] {
		if _, ok := anc.(*ast.FuncLit); ok {
			return true
		}
	}
	parent, grand := ancestors(stack)
	switch p := parent.(type) {
	case *ast.SelectorExpr:
		// span.End() / span.SetAttr(a) are uses; span.End as a method value
		// escapes.
		if call, ok := grand.(*ast.CallExpr); ok && ast.Unparen(call.Fun) == p {
			return false
		}
		return true
	case *ast.CallExpr:
		// The span as an argument transfers ownership to the callee —
		// releaseSeg-style choke points end spans for their callers.
		return true
	case *ast.AssignStmt:
		for _, lhs := range p.Lhs {
			if ast.Unparen(lhs) == id {
				return false // reassignment of the span variable itself
			}
		}
		return true // span on the right-hand side is stored somewhere
	case *ast.BinaryExpr:
		return false // comparison (span == nil)
	case *ast.SwitchStmt, *ast.CaseClause:
		return false
	}
	return true
}

// ancestors returns id's parent and grandparent nodes, looking through
// parentheses.
func ancestors(stack []ast.Node) (parent, grand ast.Node) {
	nodes := make([]ast.Node, 0, 2)
	for i := len(stack) - 2; i >= 0 && len(nodes) < 2; i-- {
		if _, ok := stack[i].(*ast.ParenExpr); ok {
			continue
		}
		nodes = append(nodes, stack[i])
	}
	if len(nodes) > 0 {
		parent = nodes[0]
	}
	if len(nodes) > 1 {
		grand = nodes[1]
	}
	return parent, grand
}

// pathSet is a set of outcomes over the executions flowing from a point.
type pathSet uint8

const (
	fallthru pathSet = 1 << iota // control continues past the statement list
	ended                        // an End (or deferred End) happened
	leaked                       // function exit without an End
	broke                        // left the nearest loop/switch via break
	cont                         // ended the loop iteration via continue
)

// eval walks the post-StartSpan statements for one site.
type eval struct {
	info *types.Info
	site startSite
}

// seek locates the StartSpan statement within list (possibly nested) and
// returns the outcome set of all executions from just after it.
func (ev *eval) seek(list []ast.Stmt) (bool, pathSet) {
	for i, s := range list {
		if s == ev.site.stmt {
			return true, ev.checkStmts(list[i+1:])
		}
		if !containsNode(s, ev.site.stmt) {
			continue
		}
		found, st := ev.seekStmt(s)
		if !found {
			continue
		}
		if st&fallthru != 0 {
			st = (st &^ fallthru) | ev.checkStmts(list[i+1:])
		}
		return true, st
	}
	return false, 0
}

func (ev *eval) seekStmt(s ast.Stmt) (bool, pathSet) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return ev.seek(s.List)
	case *ast.LabeledStmt:
		return ev.seekStmt(s.Stmt)
	case *ast.IfStmt:
		if s.Init == ev.site.stmt {
			return true, ev.checkStmt(&ast.IfStmt{Cond: s.Cond, Body: s.Body, Else: s.Else})
		}
		if containsNode(s.Body, ev.site.stmt) {
			return ev.seek(s.Body.List)
		}
		if s.Else != nil && containsNode(s.Else, ev.site.stmt) {
			return ev.seekStmt(s.Else)
		}
		return false, 0
	case *ast.ForStmt:
		return ev.seekLoop(s.Body)
	case *ast.RangeStmt:
		return ev.seekLoop(s.Body)
	case *ast.SwitchStmt:
		return ev.seekCases(s.Body)
	case *ast.TypeSwitchStmt:
		return ev.seekCases(s.Body)
	case *ast.SelectStmt:
		return ev.seekCases(s.Body)
	}
	return false, 0
}

// seekLoop maps iteration outcomes to the loop boundary for a StartSpan
// inside the loop body: any way the iteration ends without an End — falling
// through to the next iteration, continue, or break (the span is scoped to
// the iteration) — abandons that iteration's span.
func (ev *eval) seekLoop(body *ast.BlockStmt) (bool, pathSet) {
	found, st := ev.seek(body.List)
	if !found {
		return false, 0
	}
	out := st & (ended | leaked)
	if st&(fallthru|cont|broke) != 0 {
		out |= leaked
	}
	return true, out
}

// seekCases finds the case body holding the StartSpan; break exits the
// switch/select, so it becomes fallthru at this level.
func (ev *eval) seekCases(body *ast.BlockStmt) (bool, pathSet) {
	for _, clause := range body.List {
		stmts := clauseBody(clause)
		if stmts == nil || !containsClause(stmts, ev.site.stmt) {
			continue
		}
		found, st := ev.seek(stmts)
		if !found {
			continue
		}
		if st&broke != 0 {
			st = (st &^ broke) | fallthru
		}
		return true, st
	}
	return false, 0
}

// checkStmts computes the outcome set of a statement list: outcomes that
// stop a path (End, exit, break, continue) accumulate; only fallthru paths
// flow into the next statement.
func (ev *eval) checkStmts(list []ast.Stmt) pathSet {
	if len(list) == 0 {
		return fallthru
	}
	st := ev.checkStmt(list[0])
	out := st &^ fallthru
	if st&fallthru != 0 {
		out |= ev.checkStmts(list[1:])
	}
	return out
}

func (ev *eval) checkStmt(s ast.Stmt) pathSet {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok && isEndCall(ev.info, call, ev.site.span) {
			return ended
		}
		return fallthru
	case *ast.DeferStmt:
		if isEndCall(ev.info, s.Call, ev.site.span) {
			return ended
		}
		return fallthru
	case *ast.ReturnStmt:
		return leaked
	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			return broke
		case token.CONTINUE:
			return cont
		case token.GOTO:
			return leaked // cannot track the jump target
		}
		return fallthru
	case *ast.BlockStmt:
		return ev.checkStmts(s.List)
	case *ast.LabeledStmt:
		return ev.checkStmt(s.Stmt)
	case *ast.IfStmt:
		out := ev.checkStmts(s.Body.List)
		if s.Else != nil {
			out |= ev.checkStmt(s.Else)
		} else {
			out |= fallthru
		}
		return out
	case *ast.ForStmt:
		body := ev.checkStmts(s.Body.List)
		out := body & (leaked | ended)
		if s.Cond != nil || body&(fallthru|cont|broke) != 0 {
			out |= fallthru
		}
		if out == 0 {
			out = fallthru
		}
		return out
	case *ast.RangeStmt:
		body := ev.checkStmts(s.Body.List)
		return (body & (leaked | ended)) | fallthru
	case *ast.SwitchStmt:
		return ev.checkCases(s.Body, hasDefaultCase(s.Body))
	case *ast.TypeSwitchStmt:
		return ev.checkCases(s.Body, hasDefaultCase(s.Body))
	case *ast.SelectStmt:
		// A select with no default still executes exactly one case.
		return ev.checkCases(s.Body, true)
	}
	return fallthru
}

func (ev *eval) checkCases(body *ast.BlockStmt, exhaustive bool) pathSet {
	var out pathSet
	seen := false
	for _, clause := range body.List {
		stmts := clauseBody(clause)
		if stmts == nil {
			continue
		}
		seen = true
		cs := ev.checkStmts(stmts)
		if cs&broke != 0 {
			cs = (cs &^ broke) | fallthru // break exits the switch
		}
		out |= cs
	}
	if !exhaustive || !seen {
		out |= fallthru
	}
	return out
}

func clauseBody(clause ast.Stmt) []ast.Stmt {
	switch c := clause.(type) {
	case *ast.CaseClause:
		return c.Body
	case *ast.CommClause:
		return c.Body
	}
	return nil
}

func containsNode(outer ast.Node, inner ast.Stmt) bool {
	return outer.Pos() <= inner.Pos() && inner.End() <= outer.End()
}

func containsClause(stmts []ast.Stmt, inner ast.Stmt) bool {
	for _, s := range stmts {
		if containsNode(s, inner) {
			return true
		}
	}
	return false
}

func hasDefaultCase(body *ast.BlockStmt) bool {
	for _, clause := range body.List {
		if c, ok := clause.(*ast.CaseClause); ok && c.List == nil {
			return true
		}
	}
	return false
}
