// Fixture for //lint:ignore handling by the spanend analyzer: an honored
// suppression with a reason, and a malformed one that suppresses nothing
// and is itself reported.
package ignored

import (
	"context"

	"obs"
)

// held deliberately leaves the span open on the early path; the directive's
// reason documents why.
func held(ctx context.Context, draining bool) {
	//lint:ignore spanend process-lifetime span, closed by the shutdown hook
	_, span := obs.StartSpan(ctx, "lifetime")
	if draining {
		return
	}
	span.End()
}

// badDirective omits the reason, so the directive is malformed: it is
// reported itself and the leak it meant to suppress is still reported.
func badDirective(ctx context.Context, draining bool) {
	//lint:ignore spanend // want `malformed //lint:ignore directive: missing reason`
	_, span := obs.StartSpan(ctx, "lifetime") // want `span started with obs\.StartSpan is not ended on every path`
	if draining {
		return
	}
	span.End()
}
