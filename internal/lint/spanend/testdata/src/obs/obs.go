// Stub of graphsurge/internal/obs for the spanend fixtures: just enough
// surface to type-check. The analyzer matches the package by import-path
// suffix, so this "obs" stands in for the real package.
package obs

import "context"

// Attr is one span attribute.
type Attr struct {
	Key   string
	Value string
}

// String builds a string attribute.
func String(key, value string) Attr { return Attr{Key: key, Value: value} }

// Int builds an integer attribute.
func Int(key string, value int) Attr { return Attr{Key: key} }

// Span is one timed operation in a trace.
type Span struct{}

// End closes the span. Nil-safe.
func (s *Span) End() {}

// SetAttr attaches an attribute after the span started.
func (s *Span) SetAttr(a Attr) {}

// StartSpan opens a child span of the context's current span.
func StartSpan(ctx context.Context, name string, attrs ...Attr) (context.Context, *Span) {
	return ctx, nil
}
