// Fixture for the spanend analyzer: each function is one span-lifecycle
// shape, with // want comments on the ones that must be reported.
package a

import (
	"context"

	"obs"
)

// deferEnd is the canonical clean shape: End deferred right after StartSpan.
func deferEnd(ctx context.Context) {
	ctx, span := obs.StartSpan(ctx, "work")
	defer span.End()
	_ = ctx
}

// linearEnd ends the span on the single straight-line path.
func linearEnd(ctx context.Context) {
	_, span := obs.StartSpan(ctx, "work")
	span.End()
}

// earlyReturnLeak skips the End on the error path.
func earlyReturnLeak(ctx context.Context, err error) {
	_, span := obs.StartSpan(ctx, "work") // want `span started with obs\.StartSpan is not ended on every path`
	if err != nil {
		return
	}
	span.End()
}

// oneArmLeak ends the span in only one branch of an if/else.
func oneArmLeak(ctx context.Context, ok bool) {
	_, span := obs.StartSpan(ctx, "work") // want `span started with obs\.StartSpan is not ended on every path`
	if ok {
		span.End()
	} else {
		return
	}
}

// bothArmsEnd covers every branch, so the merge point is clean.
func bothArmsEnd(ctx context.Context, ok bool) {
	_, span := obs.StartSpan(ctx, "work")
	if ok {
		span.End()
		return
	}
	span.End()
}

// setAttrThenLeak: method calls on the span are uses, not ownership
// transfers — the early return still leaks.
func setAttrThenLeak(ctx context.Context, err error) {
	_, span := obs.StartSpan(ctx, "work") // want `span started with obs\.StartSpan is not ended on every path`
	span.SetAttr(obs.String("k", "v"))
	if err != nil {
		return
	}
	span.End()
}

// nilCheckClean: comparing the span is a use; the End still runs on every
// path so nothing is reported.
func nilCheckClean(ctx context.Context) {
	_, span := obs.StartSpan(ctx, "work")
	if span == nil {
		span.End()
		return
	}
	span.End()
}

type holder struct {
	span *obs.Span
}

// storeEscape hands the span to a struct field — ownership transfers (the
// executor stores segment spans on segmentExec and ends them in its release
// choke point), so the site is not flagged.
func storeEscape(ctx context.Context, h *holder) {
	_, span := obs.StartSpan(ctx, "work")
	h.span = span
}

func endLater(s *obs.Span) { s.End() }

// passEscape hands the span to a callee — same ownership transfer.
func passEscape(ctx context.Context) {
	_, span := obs.StartSpan(ctx, "work")
	endLater(span)
}

// closureEscape captures the span in a function literal that outlives the
// walkable paths of this frame.
func closureEscape(ctx context.Context) func() {
	_, span := obs.StartSpan(ctx, "work")
	return func() { span.End() }
}

// returnEscape returns the span to the caller.
func returnEscape(ctx context.Context) *obs.Span {
	_, span := obs.StartSpan(ctx, "work")
	return span
}

// blankSpan throws the span away at the assignment — it can never be ended.
func blankSpan(ctx context.Context) context.Context {
	ctx, _ = obs.StartSpan(ctx, "work") // want `span from obs\.StartSpan assigned to the blank identifier`
	return ctx
}

// discardedCall drops both results on the floor.
func discardedCall(ctx context.Context) {
	obs.StartSpan(ctx, "work") // want `result of obs\.StartSpan is discarded`
}

// loopIterLeak opens a span per iteration but continues past the End on the
// skip path, abandoning that iteration's span.
func loopIterLeak(ctx context.Context, items []int) {
	for _, it := range items {
		_, span := obs.StartSpan(ctx, "item") // want `span started with obs\.StartSpan is not ended on every path`
		if it < 0 {
			continue
		}
		span.End()
	}
}

// loopIterEnd ends the span before every way out of the iteration.
func loopIterEnd(ctx context.Context, items []int) {
	for _, it := range items {
		_, span := obs.StartSpan(ctx, "item")
		if it < 0 {
			span.End()
			continue
		}
		span.End()
	}
}

// switchLeak misses the End in one case of an exhaustive switch.
func switchLeak(ctx context.Context, mode int) {
	_, span := obs.StartSpan(ctx, "work") // want `span started with obs\.StartSpan is not ended on every path`
	switch mode {
	case 0:
		span.End()
	default:
		return
	}
}

// switchNonExhaustive falls through to a shared End when no case matches.
func switchNonExhaustive(ctx context.Context, mode int) {
	_, span := obs.StartSpan(ctx, "work")
	switch mode {
	case 0:
		span.End()
		return
	}
	span.End()
}
