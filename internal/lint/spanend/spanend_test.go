package spanend_test

import (
	"testing"

	"graphsurge/internal/lint/analysistest"
	"graphsurge/internal/lint/spanend"
)

func TestSpanEnd(t *testing.T) {
	analysistest.Run(t, "testdata", spanend.Analyzer, "a", "ignored")
}
