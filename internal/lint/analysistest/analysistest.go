// Package analysistest runs an analyzer over fixture packages and checks
// its diagnostics against expectations written in the fixtures themselves —
// the testing idiom of golang.org/x/tools/go/analysis/analysistest,
// reimplemented on the stdlib because x/tools is unavailable in this
// environment (see internal/lint/analysis).
//
// Fixtures live in GOPATH-style trees: testdata/src/<importpath>/*.go.
// A fixture line documents the diagnostics it must provoke with a trailing
// comment of quoted regular expressions:
//
//	p.Acquire(ctx) // want `replica acquired .* never released`
//
// Every `want` pattern must be matched by exactly one diagnostic on its
// line, and every diagnostic must be claimed by a pattern; either mismatch
// fails the test. Diagnostics pass through the same //lint:ignore filter
// the real driver applies, so fixtures can assert both honored and
// malformed suppressions.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"graphsurge/internal/lint/analysis"
	"graphsurge/internal/lint/ignore"
)

// Run loads each fixture package from testdata/src/<path>, applies the
// analyzer, filters diagnostics through //lint:ignore directives, and
// verifies them against the fixtures' want comments.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	ld := newLoader(filepath.Join(testdata, "src"))
	for _, path := range pkgPaths {
		pkg, err := ld.load(path)
		if err != nil {
			t.Fatalf("loading fixture package %s: %v", path, err)
		}
		var diags []analysis.Diagnostic
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      ld.fset,
			Files:     pkg.files,
			Pkg:       pkg.pkg,
			TypesInfo: pkg.info,
			Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
		}
		if _, err := a.Run(pass); err != nil {
			t.Fatalf("%s on %s: %v", a.Name, path, err)
		}
		dirs := ignore.Parse(ld.fset, pkg.files)
		diags = ignore.Filter(ld.fset, dirs, a.Name, diags)
		diags = append(diags, ignore.Malformed(dirs)...)
		check(t, ld.fset, pkg.files, diags)
	}
}

// check compares diagnostics against the want comments of the files.
func check(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	type key struct {
		file string
		line int
	}
	remaining := map[key][]analysis.Diagnostic{}
	for _, d := range diags {
		p := fset.Position(d.Pos)
		k := key{p.Filename, p.Line}
		remaining[k] = append(remaining[k], d)
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				patterns, ok := wantPatterns(c.Text)
				if !ok {
					continue
				}
				p := fset.Position(c.Pos())
				k := key{p.Filename, p.Line}
				for _, pat := range patterns {
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Errorf("%s:%d: bad want pattern %q: %v", p.Filename, p.Line, pat, err)
						continue
					}
					idx := -1
					for i, d := range remaining[k] {
						if re.MatchString(d.Message) {
							idx = i
							break
						}
					}
					if idx < 0 {
						t.Errorf("%s:%d: expected diagnostic matching %q, got none", p.Filename, p.Line, pat)
						continue
					}
					remaining[k] = append(remaining[k][:idx], remaining[k][idx+1:]...)
				}
			}
		}
	}
	var keys []key
	for k, ds := range remaining {
		if len(ds) > 0 {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].file != keys[j].file {
			return keys[i].file < keys[j].file
		}
		return keys[i].line < keys[j].line
	})
	for _, k := range keys {
		for _, d := range remaining[k] {
			t.Errorf("%s:%d: unexpected diagnostic: %s", k.file, k.line, d.Message)
		}
	}
}

// wantPatterns parses a `// want "re" `re“ comment into its patterns. The
// marker may start the comment or follow other text (e.g. appended to a
// //lint:ignore directive under test).
func wantPatterns(comment string) ([]string, bool) {
	i := strings.Index(comment, "// want")
	if i < 0 {
		return nil, false
	}
	rest := strings.TrimSpace(comment[i+len("// want"):])
	if rest == "" {
		return nil, false
	}
	var out []string
	for rest != "" {
		var quote byte
		switch rest[0] {
		case '"', '`':
			quote = rest[0]
		default:
			return nil, false
		}
		end := strings.IndexByte(rest[1:], quote)
		if end < 0 {
			return nil, false
		}
		lit := rest[:end+2]
		s, err := strconv.Unquote(lit)
		if err != nil {
			return nil, false
		}
		out = append(out, s)
		rest = strings.TrimSpace(rest[end+2:])
	}
	return out, true
}

// loadedPkg is one type-checked fixture package.
type loadedPkg struct {
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
}

// loader type-checks fixture packages from a GOPATH-style src tree,
// resolving imports first against the tree itself and then against the
// standard library via the stdlib source importer (no export data or
// network needed).
type loader struct {
	src   string
	fset  *token.FileSet
	std   types.Importer
	cache map[string]*loadedPkg
}

func newLoader(src string) *loader {
	fset := token.NewFileSet()
	return &loader{
		src:   src,
		fset:  fset,
		std:   importer.ForCompiler(fset, "source", nil),
		cache: map[string]*loadedPkg{},
	}
}

// Import implements types.Importer over the fixture tree + stdlib.
func (ld *loader) Import(path string) (*types.Package, error) {
	if p, err := ld.load(path); err == nil {
		return p.pkg, nil
	} else if !os.IsNotExist(err) {
		return nil, err
	}
	return ld.std.Import(path)
}

func (ld *loader) load(path string) (*loadedPkg, error) {
	if p, ok := ld.cache[path]; ok {
		return p, nil
	}
	dir := filepath.Join(ld.src, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("fixture package %s: no Go files in %s", path, dir)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: ld}
	pkg, err := conf.Check(path, ld.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", path, err)
	}
	lp := &loadedPkg{pkg: pkg, files: files, info: info}
	ld.cache[path] = lp
	return lp, nil
}
