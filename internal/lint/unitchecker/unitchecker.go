// Package unitchecker implements the driver side of the `go vet -vettool`
// protocol for the graphsurge analyzers — the role
// golang.org/x/tools/go/analysis/unitchecker plays for upstream vet tools,
// reimplemented on the stdlib because x/tools is unavailable in this
// environment (see internal/lint/analysis).
//
// The go command invokes the tool three ways:
//
//	tool -V=full        print a version line that identifies the tool
//	                    binary for build caching (hash of the executable)
//	tool -flags         print the tool's flag schema as JSON ([] here)
//	tool <file>.cfg     analyze one package described by the JSON config
//
// For each package, the config carries the file list and a map from import
// paths to gc export-data files; the package is loaded with the gc
// importer, the analyzers run over the type-checked syntax, //lint:ignore
// directives are applied, and diagnostics go to stderr as
// file:line:col: message (analyzer), with exit status 2 when any were
// reported — which fails the enclosing `go vet`.
package unitchecker

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"

	"graphsurge/internal/lint/analysis"
	"graphsurge/internal/lint/ignore"
)

// Config mirrors the JSON the go command writes for each vetted package
// (cmd/go's vetConfig); fields the graphsurge analyzers never consult are
// kept so the JSON decodes without loss.
type Config struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Main is the entry point for a vettool binary: it dispatches on the
// protocol flags and otherwise analyzes the single .cfg argument.
func Main(analyzers ...*analysis.Analyzer) {
	progname := filepath.Base(os.Args[0])
	if len(os.Args) == 2 {
		switch os.Args[1] {
		case "-V=full", "--V=full":
			fmt.Println(versionLine(progname))
			return
		case "-flags", "--flags":
			// No tool-specific flags: all analyzers always run.
			fmt.Println("[]")
			return
		case "help", "-help", "--help":
			usage(progname, analyzers)
			return
		}
	}
	if len(os.Args) != 2 || !strings.HasSuffix(os.Args[1], ".cfg") {
		usage(progname, analyzers)
		os.Exit(1)
	}
	diags, err := runPackage(os.Args[1], analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
		os.Exit(1)
	}
	if len(diags) > 0 {
		for _, d := range diags {
			fmt.Fprintln(os.Stderr, d)
		}
		os.Exit(2)
	}
}

func usage(progname string, analyzers []*analysis.Analyzer) {
	fmt.Fprintf(os.Stderr, "%s: graphsurge invariant analyzers; run via go vet -vettool=$(which %s) ./...\n\nAnalyzers:\n", progname, progname)
	for _, a := range analyzers {
		fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
	}
}

// versionLine identifies this tool build to the go command's cache: the
// line must change whenever the binary does, so it embeds a hash of the
// executable itself.
func versionLine(progname string) string {
	sum := "unknown"
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			h := sha256.New()
			if _, err := io.Copy(h, f); err == nil {
				sum = fmt.Sprintf("%x", h.Sum(nil))
			}
			f.Close()
		}
	}
	return fmt.Sprintf("%s version devel buildID=%s", progname, sum)
}

// runPackage analyzes the package described by the config file and returns
// rendered diagnostic lines.
func runPackage(cfgFile string, analyzers []*analysis.Analyzer) ([]string, error) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		return nil, err
	}
	var cfg Config
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", cfgFile, err)
	}

	// The go command requires the facts file to exist even though the
	// graphsurge analyzers exchange no facts.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			return nil, err
		}
	}
	if cfg.VetxOnly {
		// Dependency-only visit: facts written, no diagnostics wanted.
		return nil, nil
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return nil, nil
			}
			return nil, err
		}
		files = append(files, f)
	}

	pkg, info, err := typecheck(fset, files, &cfg)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return nil, nil
		}
		return nil, fmt.Errorf("typechecking %s: %w", cfg.ImportPath, err)
	}

	dirs := ignore.Parse(fset, files)
	var rendered []diagLine
	for _, a := range analyzers {
		var diags []analysis.Diagnostic
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
		}
		if _, err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, err)
		}
		diags = ignore.Filter(fset, dirs, a.Name, diags)
		for _, d := range diags {
			rendered = append(rendered, diagLine{fset.Position(d.Pos), d.Message, a.Name})
		}
	}
	// Malformed directives are reported once per package, not per analyzer.
	for _, d := range ignore.Malformed(dirs) {
		rendered = append(rendered, diagLine{fset.Position(d.Pos), d.Message, "lint"})
	}

	sort.Slice(rendered, func(i, j int) bool {
		a, b := rendered[i].pos, rendered[j].pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	out := make([]string, len(rendered))
	for i, d := range rendered {
		out[i] = fmt.Sprintf("%s: %s (%s)", d.pos, d.message, d.analyzer)
	}
	return out, nil
}

type diagLine struct {
	pos      token.Position
	message  string
	analyzer string
}

// typecheck loads the package from its parsed files, resolving imports
// through the gc export data files the go command listed in the config.
func typecheck(fset *token.FileSet, files []*ast.File, cfg *Config) (*types.Package, *types.Info, error) {
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	gc := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		if mapped, ok := cfg.ImportMap[importPath]; ok {
			importPath = mapped
		}
		if importPath == "unsafe" {
			return types.Unsafe, nil
		}
		return gc.Import(importPath)
	})
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	tc := types.Config{
		Importer: imp,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return nil, nil, err
	}
	return pkg, info, nil
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
