// Package lint registers the graphsurge invariant analyzers. The list here
// is the single source of truth consumed by cmd/graphsurge-vet and by the
// seeded-regression tests: adding an analyzer to the suite means adding it
// to Analyzers.
package lint

import (
	"graphsurge/internal/lint/analysis"
	"graphsurge/internal/lint/ctxflow"
	"graphsurge/internal/lint/lockhold"
	"graphsurge/internal/lint/poolrelease"
	"graphsurge/internal/lint/spanend"
	"graphsurge/internal/lint/wiretypes"
)

// Analyzers is the graphsurge invariant suite, in deterministic order.
var Analyzers = []*analysis.Analyzer{
	ctxflow.Analyzer,
	lockhold.Analyzer,
	poolrelease.Analyzer,
	spanend.Analyzer,
	wiretypes.Analyzer,
}
