// Package ignore implements the //lint:ignore suppression directive shared
// by every graphsurge analyzer driver (cmd/graphsurge-vet and the
// analysistest fixture runner).
//
// A directive has the form
//
//	//lint:ignore <analyzer> <reason>
//
// and suppresses diagnostics of the named analyzer on the directive's own
// line (trailing comment) or on the line immediately below it (standalone
// comment line). The reason is mandatory and non-empty: a suppression is a
// recorded engineering decision, not a mute button, and a directive without
// one is itself reported as a diagnostic. The analyzer name "all"
// suppresses every analyzer.
package ignore

import (
	"go/ast"
	"go/token"
	"strings"

	"graphsurge/internal/lint/analysis"
)

const prefix = "//lint:ignore"

// A Directive is one parsed //lint:ignore comment.
type Directive struct {
	Pos      token.Pos
	Analyzer string
	Reason   string
	// File and Lines locate the suppressed region: the comment's own line
	// and the one below it, within the comment's file.
	File  string
	Lines [2]int
	// Malformed carries the problem when the directive is unusable; a
	// malformed directive suppresses nothing.
	Malformed string
}

// Parse extracts every //lint:ignore directive from the files' comments.
func Parse(fset *token.FileSet, files []*ast.File) []Directive {
	var out []Directive
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				// Fixtures append expectations to the directive comment
				// itself ("//lint:ignore x // want ..."); the expectation
				// is not part of the directive.
				if i := strings.Index(text, "// want"); i > 0 {
					text = strings.TrimRight(text[:i], " \t")
				}
				if !strings.HasPrefix(text, prefix) {
					continue
				}
				rest := text[len(prefix):]
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // e.g. //lint:ignorexyz — not our directive
				}
				d := Directive{Pos: c.Pos()}
				pos := fset.Position(c.Pos())
				d.File = pos.Filename
				d.Lines = [2]int{pos.Line, pos.Line + 1}
				fields := strings.Fields(rest)
				switch {
				case len(fields) == 0:
					d.Malformed = "malformed //lint:ignore directive: missing analyzer name and reason"
				case len(fields) == 1:
					d.Analyzer = fields[0]
					d.Malformed = "malformed //lint:ignore directive: missing reason — a suppression must say why"
				default:
					d.Analyzer = fields[0]
					d.Reason = strings.Join(fields[1:], " ")
				}
				out = append(out, d)
			}
		}
	}
	return out
}

// Filter drops diagnostics of the named analyzer that a well-formed
// directive suppresses.
func Filter(fset *token.FileSet, dirs []Directive, analyzer string, diags []analysis.Diagnostic) []analysis.Diagnostic {
	if len(dirs) == 0 {
		return diags
	}
	type loc struct {
		file string
		line int
	}
	suppressed := make(map[loc]bool)
	for _, d := range dirs {
		if d.Malformed != "" || (d.Analyzer != analyzer && d.Analyzer != "all") {
			continue
		}
		suppressed[loc{d.File, d.Lines[0]}] = true
		suppressed[loc{d.File, d.Lines[1]}] = true
	}
	if len(suppressed) == 0 {
		return diags
	}
	kept := diags[:0]
	for _, dg := range diags {
		p := fset.Position(dg.Pos)
		if !suppressed[loc{p.Filename, p.Line}] {
			kept = append(kept, dg)
		}
	}
	return kept
}

// Malformed renders every malformed directive as a diagnostic. Drivers
// report these once per package, independent of which analyzers ran.
func Malformed(dirs []Directive) []analysis.Diagnostic {
	var out []analysis.Diagnostic
	for _, d := range dirs {
		if d.Malformed != "" {
			out = append(out, analysis.Diagnostic{Pos: d.Pos, Message: d.Malformed})
		}
	}
	return out
}
