// Package wiretypes verifies at vet time that every type crossing the
// cluster's net/rpc + gob wire stays gob-encodable, so wire breakage is a
// build failure instead of a runtime error in a cluster smoke (the class
// of failure PR 4's wire tests catch only for the shapes they enumerate).
//
// Roots are discovered per package:
//
//   - the argument types of calls to the cluster package's EncodeWire and
//     DecodeWire (the typed encode/decode boundary in cluster/wire.go);
//   - the argument types of encoding/gob Encoder.Encode and Decoder.Decode
//     calls (persistence files and journals are wire formats too), except
//     arguments whose static type is a bare empty interface — the cluster
//     wire boundary's own `v any` forwarding carries no type to root, so
//     its callers are the roots instead;
//   - every struct type declared in a net/rpc-importing package whose name
//     ends in Args or Reply (the net/rpc argument/reply convention).
//
// The whole field graph reachable from a root must be encodable:
//
//   - no func- or chan-typed fields (gob cannot encode them);
//   - no interface-typed fields unless the package gob.Registers at least
//     one concrete type implementing that interface;
//   - no unexported fields (gob silently drops them — data loss, not an
//     error — and a struct with only unexported fields fails encoding).
//
// Types implementing gob.GobEncoder or encoding.BinaryMarshaler (e.g.
// time.Time) encode themselves and end the walk — but a hand-rolled binary
// codec is itself a wire format, so such types get their own checks. Every
// type declared in the analyzed package that implements MarshalBinary is a
// binary-codec root (graph.EdgeBatch is the archetype: gob invokes its codec
// for every segment payload):
//
//   - it must also implement UnmarshalBinary, or gob encodes with the codec
//     and fails to decode on the receiving side;
//   - both method bodies must reference every exported field of the struct —
//     a field added to the struct but not to the codec is column/field
//     drift: the encoder silently drops it on the wire.
//
// Suppress with //lint:ignore wiretypes <reason>.
package wiretypes

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"graphsurge/internal/lint/analysis"
	"graphsurge/internal/lint/lintutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "wiretypes",
	Doc:  "types reachable from cluster wire roots (EncodeWire/DecodeWire, RPC Args/Reply structs) must be gob-encodable",
	Run:  run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	c := &checker{
		pass:         pass,
		seen:         map[types.Type]bool{},
		registered:   registeredGobTypes(pass),
		codecChecked: map[*types.Named]bool{},
	}
	importsRPC := false
	for _, imp := range pass.Pkg.Imports() {
		if imp.Path() == "net/rpc" {
			importsRPC = true
			break
		}
	}
	for _, file := range pass.Files {
		if lintutil.IsTestFile(pass.Fset.Position(file.Pos()).Filename) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.TypeSpec:
				if obj, ok := pass.TypesInfo.Defs[n.Name]; ok && obj != nil {
					if importsRPC && (strings.HasSuffix(n.Name.Name, "Args") || strings.HasSuffix(n.Name.Name, "Reply")) {
						if _, isStruct := obj.Type().Underlying().(*types.Struct); isStruct {
							c.checkRoot(obj.Type(), n.Pos())
						}
					}
					// Every locally declared binary-marshaling type is a
					// codec root, whether or not a wire call names it here.
					c.checkBinaryCodec(obj.Type(), n.Pos())
				}
			case *ast.CallExpr:
				if t, pos, ok := wireCallRoot(pass.TypesInfo, n); ok {
					c.checkRoot(t, pos)
				} else if t, pos, ok := gobCallRoot(pass.TypesInfo, n); ok {
					c.checkRoot(t, pos)
				}
			}
			return true
		})
	}
	return nil, nil
}

// wireCallRoot extracts the payload type of an EncodeWire/DecodeWire call.
func wireCallRoot(info *types.Info, call *ast.CallExpr) (types.Type, token.Pos, bool) {
	obj := lintutil.Callee(info, call)
	if obj == nil || !lintutil.PkgHasSuffix(obj.Pkg(), "cluster") {
		return nil, token.NoPos, false
	}
	var arg ast.Expr
	switch obj.Name() {
	case "EncodeWire":
		if len(call.Args) != 1 {
			return nil, token.NoPos, false
		}
		arg = call.Args[0]
	case "DecodeWire":
		if len(call.Args) != 2 {
			return nil, token.NoPos, false
		}
		arg = call.Args[1]
	default:
		return nil, token.NoPos, false
	}
	tv, ok := info.Types[arg]
	if !ok {
		return nil, token.NoPos, false
	}
	return tv.Type, call.Pos(), true
}

// gobCallRoot extracts the payload type of a gob Encoder.Encode or
// Decoder.Decode call. A call whose argument's static type is a bare empty
// interface is not a root: it is a forwarding boundary like the cluster's
// EncodeWire(v any), and the concrete types flow in at its call sites,
// which root the walk themselves.
func gobCallRoot(info *types.Info, call *ast.CallExpr) (types.Type, token.Pos, bool) {
	obj := lintutil.Callee(info, call)
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "encoding/gob" {
		return nil, token.NoPos, false
	}
	if fn.Name() != "Encode" && fn.Name() != "Decode" {
		return nil, token.NoPos, false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || len(call.Args) != 1 {
		return nil, token.NoPos, false
	}
	recv, ok := deref(sig.Recv().Type()).(*types.Named)
	if !ok || (recv.Obj().Name() != "Encoder" && recv.Obj().Name() != "Decoder") {
		return nil, token.NoPos, false
	}
	tv, ok := info.Types[call.Args[0]]
	if !ok {
		return nil, token.NoPos, false
	}
	if iface, ok := deref(tv.Type).Underlying().(*types.Interface); ok && iface.Empty() {
		return nil, token.NoPos, false
	}
	return tv.Type, call.Pos(), true
}

// registeredGobTypes collects the concrete types this package passes to
// gob.Register / gob.RegisterName.
func registeredGobTypes(pass *analysis.Pass) []types.Type {
	var out []types.Type
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			obj := lintutil.Callee(pass.TypesInfo, call)
			if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "encoding/gob" {
				return true
			}
			var arg ast.Expr
			switch obj.Name() {
			case "Register":
				if len(call.Args) == 1 {
					arg = call.Args[0]
				}
			case "RegisterName":
				if len(call.Args) == 2 {
					arg = call.Args[1]
				}
			}
			if arg != nil {
				if tv, ok := pass.TypesInfo.Types[arg]; ok {
					out = append(out, tv.Type)
				}
			}
			return true
		})
	}
	return out
}

type checker struct {
	pass         *analysis.Pass
	seen         map[types.Type]bool
	registered   []types.Type
	codecChecked map[*types.Named]bool
}

// checkRoot walks the field graph reachable from a wire root type.
func (c *checker) checkRoot(t types.Type, pos token.Pos) {
	t = deref(t)
	c.walk(t, typeName(t), pos)
}

func (c *checker) walk(t types.Type, path string, pos token.Pos) {
	t = deref(t)
	if c.seen[t] {
		return
	}
	c.seen[t] = true
	if selfEncoding(t) {
		c.checkBinaryCodec(t, pos)
		return
	}
	switch u := t.Underlying().(type) {
	case *types.Basic:
		// All gob-encodable (string, numbers, bool, complex).
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			f := u.Field(i)
			fpath := path + "." + f.Name()
			fpos := f.Pos()
			if !fpos.IsValid() {
				fpos = pos
			}
			if !f.Exported() {
				c.pass.Reportf(fpos, "wire type %s: unexported field %s is silently dropped by gob — exported fields only on wire types", path, fpath)
				continue
			}
			c.checkField(f.Type(), fpath, fpos)
		}
	case *types.Slice:
		c.walk(u.Elem(), path+"[]", pos)
	case *types.Array:
		c.walk(u.Elem(), path+"[]", pos)
	case *types.Map:
		c.walk(u.Key(), path+"[key]", pos)
		c.walk(u.Elem(), path+"[value]", pos)
	case *types.Pointer:
		c.walk(u.Elem(), path, pos)
	case *types.Chan:
		c.pass.Reportf(pos, "wire type %s is a chan — gob cannot encode channels", path)
	case *types.Signature:
		c.pass.Reportf(pos, "wire type %s is a func — gob cannot encode functions", path)
	case *types.Interface:
		c.checkInterface(u, path, pos)
	}
}

// checkField checks one exported struct field's type, reporting func/chan/
// interface problems with the field's path.
func (c *checker) checkField(t types.Type, path string, pos token.Pos) {
	ft := deref(t)
	if selfEncoding(ft) {
		c.checkBinaryCodec(ft, pos)
		return
	}
	switch u := ft.Underlying().(type) {
	case *types.Signature:
		c.pass.Reportf(pos, "wire type %s: field %s has func type — gob cannot encode it and the cluster RPC fails at runtime", typeRoot(path), path)
	case *types.Chan:
		c.pass.Reportf(pos, "wire type %s: field %s has chan type — gob cannot encode it and the cluster RPC fails at runtime", typeRoot(path), path)
	case *types.Interface:
		c.checkInterface(u, path, pos)
	default:
		c.walk(ft, path, pos)
	}
}

// checkInterface requires a gob.Register in this package for a concrete
// type satisfying the interface.
func (c *checker) checkInterface(iface *types.Interface, path string, pos token.Pos) {
	for _, reg := range c.registered {
		if types.Implements(reg, iface) || types.Implements(types.NewPointer(reg), iface) {
			return
		}
	}
	c.pass.Reportf(pos, "wire type %s: interface field %s has no gob.Register of an implementing concrete type in this package — gob will reject it at runtime", typeRoot(path), path)
}

// checkBinaryCodec checks a hand-rolled binary codec: a type implementing
// MarshalBinary must implement UnmarshalBinary too, and — when its methods
// are declared in the analyzed package — both bodies must reference every
// exported field, or the codec has drifted from the struct's columns.
func (c *checker) checkBinaryCodec(t types.Type, pos token.Pos) {
	named, ok := deref(t).(*types.Named)
	if !ok || c.codecChecked[named] {
		return
	}
	c.codecChecked[named] = true
	st, ok := named.Underlying().(*types.Struct)
	if !ok || hasMethod(named, "GobEncode") || !hasMethod(named, "MarshalBinary") {
		return
	}
	if !hasUnmarshal(named) {
		p := pos
		if named.Obj().Pkg() == c.pass.Pkg {
			p = named.Obj().Pos()
		}
		c.pass.Reportf(p, "wire type %s implements MarshalBinary without UnmarshalBinary — gob encodes it with the codec but cannot decode it on the receiving side", typeName(named))
	}
	if named.Obj().Pkg() != c.pass.Pkg {
		return // method bodies not in this package; drift is checked where they live
	}
	var fields []string
	for i := 0; i < st.NumFields(); i++ {
		if f := st.Field(i); f.Exported() {
			fields = append(fields, f.Name())
		}
	}
	if len(fields) == 0 {
		return
	}
	for _, m := range []string{"MarshalBinary", "UnmarshalBinary"} {
		decl := c.methodDecl(named, m)
		if decl == nil || decl.Body == nil {
			continue
		}
		used := map[string]bool{}
		ast.Inspect(decl.Body, func(n ast.Node) bool {
			if sel, ok := n.(*ast.SelectorExpr); ok {
				used[sel.Sel.Name] = true
			}
			return true
		})
		for _, f := range fields {
			if !used[f] {
				c.pass.Reportf(decl.Pos(), "wire codec %s.%s does not reference exported field %s — the hand-rolled encoding has drifted from the struct's columns", typeName(named), m, f)
			}
		}
	}
}

// methodDecl finds the FuncDecl in the analyzed package declaring method
// name on named (any receiver form).
func (c *checker) methodDecl(named *types.Named, name string) *ast.FuncDecl {
	for _, file := range c.pass.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Name.Name != name {
				continue
			}
			obj, ok := c.pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok || obj == nil {
				continue
			}
			recv := obj.Type().(*types.Signature).Recv()
			if recv == nil {
				continue
			}
			if rn, ok := deref(recv.Type()).(*types.Named); ok && rn.Obj() == named.Obj() {
				return fd
			}
		}
	}
	return nil
}

// hasUnmarshal reports an UnmarshalBinary([]byte) error method.
func hasUnmarshal(t types.Type) bool {
	obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(t), true, nil, "UnmarshalBinary")
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	sig := fn.Type().(*types.Signature)
	return sig.Params().Len() == 1 && sig.Results().Len() == 1
}

// selfEncoding reports whether the type encodes itself via gob.GobEncoder
// or encoding.BinaryMarshaler.
func selfEncoding(t types.Type) bool {
	return hasMethod(t, "GobEncode") || hasMethod(t, "MarshalBinary")
}

func hasMethod(t types.Type, name string) bool {
	obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(t), true, nil, name)
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	sig := fn.Type().(*types.Signature)
	// GobEncode/MarshalBinary: func() ([]byte, error).
	return sig.Params().Len() == 0 && sig.Results().Len() == 2
}

func deref(t types.Type) types.Type {
	for {
		ptr, ok := t.(*types.Pointer)
		if !ok {
			return t
		}
		t = ptr.Elem()
	}
}

func typeName(t types.Type) string {
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return t.String()
}

// typeRoot trims a field path back to its root type name for messages.
func typeRoot(path string) string {
	if i := strings.IndexAny(path, ".["); i > 0 {
		return path[:i]
	}
	return path
}
