// Package wiretypes verifies at vet time that every type crossing the
// cluster's net/rpc + gob wire stays gob-encodable, so wire breakage is a
// build failure instead of a runtime error in a cluster smoke (the class
// of failure PR 4's wire tests catch only for the shapes they enumerate).
//
// Roots are discovered per package:
//
//   - the argument types of calls to the cluster package's EncodeWire and
//     DecodeWire (the typed encode/decode boundary in cluster/wire.go);
//   - every struct type declared in a net/rpc-importing package whose name
//     ends in Args or Reply (the net/rpc argument/reply convention).
//
// The whole field graph reachable from a root must be encodable:
//
//   - no func- or chan-typed fields (gob cannot encode them);
//   - no interface-typed fields unless the package gob.Registers at least
//     one concrete type implementing that interface;
//   - no unexported fields (gob silently drops them — data loss, not an
//     error — and a struct with only unexported fields fails encoding).
//
// Types implementing gob.GobEncoder or encoding.BinaryMarshaler (e.g.
// time.Time) encode themselves and end the walk. Suppress with
// //lint:ignore wiretypes <reason>.
package wiretypes

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"graphsurge/internal/lint/analysis"
	"graphsurge/internal/lint/lintutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "wiretypes",
	Doc:  "types reachable from cluster wire roots (EncodeWire/DecodeWire, RPC Args/Reply structs) must be gob-encodable",
	Run:  run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	c := &checker{
		pass:       pass,
		seen:       map[types.Type]bool{},
		registered: registeredGobTypes(pass),
	}
	importsRPC := false
	for _, imp := range pass.Pkg.Imports() {
		if imp.Path() == "net/rpc" {
			importsRPC = true
			break
		}
	}
	for _, file := range pass.Files {
		if lintutil.IsTestFile(pass.Fset.Position(file.Pos()).Filename) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.TypeSpec:
				if importsRPC && (strings.HasSuffix(n.Name.Name, "Args") || strings.HasSuffix(n.Name.Name, "Reply")) {
					if obj, ok := pass.TypesInfo.Defs[n.Name]; ok && obj != nil {
						if _, isStruct := obj.Type().Underlying().(*types.Struct); isStruct {
							c.checkRoot(obj.Type(), n.Pos())
						}
					}
				}
			case *ast.CallExpr:
				if t, pos, ok := wireCallRoot(pass.TypesInfo, n); ok {
					c.checkRoot(t, pos)
				}
			}
			return true
		})
	}
	return nil, nil
}

// wireCallRoot extracts the payload type of an EncodeWire/DecodeWire call.
func wireCallRoot(info *types.Info, call *ast.CallExpr) (types.Type, token.Pos, bool) {
	obj := lintutil.Callee(info, call)
	if obj == nil || !lintutil.PkgHasSuffix(obj.Pkg(), "cluster") {
		return nil, token.NoPos, false
	}
	var arg ast.Expr
	switch obj.Name() {
	case "EncodeWire":
		if len(call.Args) != 1 {
			return nil, token.NoPos, false
		}
		arg = call.Args[0]
	case "DecodeWire":
		if len(call.Args) != 2 {
			return nil, token.NoPos, false
		}
		arg = call.Args[1]
	default:
		return nil, token.NoPos, false
	}
	tv, ok := info.Types[arg]
	if !ok {
		return nil, token.NoPos, false
	}
	return tv.Type, call.Pos(), true
}

// registeredGobTypes collects the concrete types this package passes to
// gob.Register / gob.RegisterName.
func registeredGobTypes(pass *analysis.Pass) []types.Type {
	var out []types.Type
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			obj := lintutil.Callee(pass.TypesInfo, call)
			if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "encoding/gob" {
				return true
			}
			var arg ast.Expr
			switch obj.Name() {
			case "Register":
				if len(call.Args) == 1 {
					arg = call.Args[0]
				}
			case "RegisterName":
				if len(call.Args) == 2 {
					arg = call.Args[1]
				}
			}
			if arg != nil {
				if tv, ok := pass.TypesInfo.Types[arg]; ok {
					out = append(out, tv.Type)
				}
			}
			return true
		})
	}
	return out
}

type checker struct {
	pass       *analysis.Pass
	seen       map[types.Type]bool
	registered []types.Type
}

// checkRoot walks the field graph reachable from a wire root type.
func (c *checker) checkRoot(t types.Type, pos token.Pos) {
	t = deref(t)
	c.walk(t, typeName(t), pos)
}

func (c *checker) walk(t types.Type, path string, pos token.Pos) {
	t = deref(t)
	if c.seen[t] {
		return
	}
	c.seen[t] = true
	if selfEncoding(t) {
		return
	}
	switch u := t.Underlying().(type) {
	case *types.Basic:
		// All gob-encodable (string, numbers, bool, complex).
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			f := u.Field(i)
			fpath := path + "." + f.Name()
			fpos := f.Pos()
			if !fpos.IsValid() {
				fpos = pos
			}
			if !f.Exported() {
				c.pass.Reportf(fpos, "wire type %s: unexported field %s is silently dropped by gob — exported fields only on wire types", path, fpath)
				continue
			}
			c.checkField(f.Type(), fpath, fpos)
		}
	case *types.Slice:
		c.walk(u.Elem(), path+"[]", pos)
	case *types.Array:
		c.walk(u.Elem(), path+"[]", pos)
	case *types.Map:
		c.walk(u.Key(), path+"[key]", pos)
		c.walk(u.Elem(), path+"[value]", pos)
	case *types.Pointer:
		c.walk(u.Elem(), path, pos)
	case *types.Chan:
		c.pass.Reportf(pos, "wire type %s is a chan — gob cannot encode channels", path)
	case *types.Signature:
		c.pass.Reportf(pos, "wire type %s is a func — gob cannot encode functions", path)
	case *types.Interface:
		c.checkInterface(u, path, pos)
	}
}

// checkField checks one exported struct field's type, reporting func/chan/
// interface problems with the field's path.
func (c *checker) checkField(t types.Type, path string, pos token.Pos) {
	ft := deref(t)
	if selfEncoding(ft) {
		return
	}
	switch u := ft.Underlying().(type) {
	case *types.Signature:
		c.pass.Reportf(pos, "wire type %s: field %s has func type — gob cannot encode it and the cluster RPC fails at runtime", typeRoot(path), path)
	case *types.Chan:
		c.pass.Reportf(pos, "wire type %s: field %s has chan type — gob cannot encode it and the cluster RPC fails at runtime", typeRoot(path), path)
	case *types.Interface:
		c.checkInterface(u, path, pos)
	default:
		c.walk(ft, path, pos)
	}
}

// checkInterface requires a gob.Register in this package for a concrete
// type satisfying the interface.
func (c *checker) checkInterface(iface *types.Interface, path string, pos token.Pos) {
	for _, reg := range c.registered {
		if types.Implements(reg, iface) || types.Implements(types.NewPointer(reg), iface) {
			return
		}
	}
	c.pass.Reportf(pos, "wire type %s: interface field %s has no gob.Register of an implementing concrete type in this package — gob will reject it at runtime", typeRoot(path), path)
}

// selfEncoding reports whether the type encodes itself via gob.GobEncoder
// or encoding.BinaryMarshaler.
func selfEncoding(t types.Type) bool {
	return hasMethod(t, "GobEncode") || hasMethod(t, "MarshalBinary")
}

func hasMethod(t types.Type, name string) bool {
	obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(t), true, nil, name)
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	sig := fn.Type().(*types.Signature)
	// GobEncode/MarshalBinary: func() ([]byte, error).
	return sig.Params().Len() == 0 && sig.Results().Len() == 2
}

func deref(t types.Type) types.Type {
	for {
		ptr, ok := t.(*types.Pointer)
		if !ok {
			return t
		}
		t = ptr.Elem()
	}
}

func typeName(t types.Type) string {
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return t.String()
}

// typeRoot trims a field path back to its root type name for messages.
func typeRoot(path string) string {
	if i := strings.IndexAny(path, ".["); i > 0 {
		return path[:i]
	}
	return path
}
