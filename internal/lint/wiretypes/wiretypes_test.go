package wiretypes_test

import (
	"testing"

	"graphsurge/internal/lint/analysistest"
	"graphsurge/internal/lint/wiretypes"
)

func TestWiretypes(t *testing.T) {
	analysistest.Run(t, "testdata", wiretypes.Analyzer, "a", "b", "codec", "gobwire")
}
