// Fixture for the wiretypes analyzer's binary-codec drift checks: types
// implementing MarshalBinary are codec roots even without a wire call in
// this package.
package codec

// GoodBatch's codec references every exported column in both directions —
// the negative case, no diagnostics.
type GoodBatch struct {
	Srcs []uint64
	Dsts []uint64
}

func (b *GoodBatch) MarshalBinary() ([]byte, error) {
	out := make([]byte, 0, len(b.Srcs)+len(b.Dsts))
	for range b.Srcs {
		out = append(out, 1)
	}
	for range b.Dsts {
		out = append(out, 2)
	}
	return out, nil
}

func (b *GoodBatch) UnmarshalBinary(data []byte) error {
	b.Srcs = nil
	b.Dsts = nil
	return nil
}

// DriftBatch grew a Ws column its codec never learned about.
type DriftBatch struct {
	Srcs []uint64
	Ws   []int64
}

func (b *DriftBatch) MarshalBinary() ([]byte, error) { // want `wire codec DriftBatch\.MarshalBinary does not reference exported field Ws`
	return []byte{byte(len(b.Srcs))}, nil
}

func (b *DriftBatch) UnmarshalBinary(data []byte) error { // want `wire codec DriftBatch\.UnmarshalBinary does not reference exported field Ws`
	b.Srcs = nil
	return nil
}

// HalfCodec encodes itself but cannot be decoded: gob accepts the encode
// and the receiving side fails at runtime.
type HalfCodec struct { // want `wire type HalfCodec implements MarshalBinary without UnmarshalBinary`
	N int
}

func (h HalfCodec) MarshalBinary() ([]byte, error) { return []byte{byte(h.N)}, nil }

// unexportedOnly has no exported columns; nothing to drift.
type unexportedOnly struct {
	n int
}

func (u *unexportedOnly) MarshalBinary() ([]byte, error)    { return []byte{byte(u.n)}, nil }
func (u *unexportedOnly) UnmarshalBinary(data []byte) error { u.n = int(data[0]); return nil }
