// Fixture for the wiretypes analyzer's net/rpc Args/Reply roots and the
// gob.Register requirement on interface fields.
package b

import (
	"encoding/gob"
	"net/rpc"
)

var _ rpc.Client

// Payload has a registered concrete implementation, so carrying it on the
// wire is fine.
type Payload interface{ Kind() string }

type ConcretePayload struct{ K string }

func (c ConcretePayload) Kind() string { return c.K }

// Handler has no registered implementation.
type Handler interface{ Handle() error }

func init() { gob.Register(ConcretePayload{}) }

type RunArgs struct {
	Spec []byte
	Body Payload
}

type RunReply struct {
	Err  string
	Done chan struct{} // want `field RunReply\.Done has chan type`
}

type StatusReply struct {
	Callback func() // want `field StatusReply\.Callback has func type`
}

type DispatchArgs struct {
	H Handler // want `interface field DispatchArgs\.H has no gob\.Register`
}

// helper is not an Args/Reply struct and is unreachable from one, so its
// unexported field is not a wire problem.
type helper struct {
	notWire chan int
}
