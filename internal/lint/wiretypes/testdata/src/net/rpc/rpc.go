// Stub of net/rpc for fixture type-checking: importing it marks a package
// as an RPC package so Args/Reply structs become wire roots, without the
// fixture loader having to type-check the real net/http dependency tree.
package rpc

type Client struct{}

func (c *Client) Call(serviceMethod string, args interface{}, reply interface{}) error {
	return nil
}
