// Stub of graphsurge/internal/cluster's wire boundary for fixture
// type-checking: the analyzer roots its walk at calls to these functions.
package cluster

func EncodeWire(v interface{}) ([]byte, error) { return nil, nil }

func DecodeWire(data []byte, v interface{}) error { return nil }
