// Fixture for the wiretypes analyzer's EncodeWire/DecodeWire roots.
package a

import (
	"cluster"
)

type Good struct {
	Name  string
	Count int
	Tags  []string
	Sub   *Good
	Table map[string][]int
}

type HasFunc struct {
	Name string
	Hook func() error // want `field HasFunc\.Hook has func type`
}

type HasChan struct {
	C chan int // want `field HasChan\.C has chan type`
}

type Mixed struct {
	Exported   int
	unexported int // want `unexported field Mixed\.unexported is silently dropped`
}

type Nested struct {
	Inner HasNested
}

type HasNested struct {
	hidden string // want `unexported field Nested\.Inner\.hidden is silently dropped`
}

func send() {
	var g Good
	_, _ = cluster.EncodeWire(g)
	var f HasFunc
	_, _ = cluster.EncodeWire(f)
	var c HasChan
	_, _ = cluster.EncodeWire(&c)
	var m Mixed
	_ = cluster.DecodeWire(nil, &m)
	var n Nested
	_, _ = cluster.EncodeWire(n)
}

type Held struct {
	//lint:ignore wiretypes raw stream is re-established on reconnect, not encoded
	Raw chan byte
}

func suppressed() {
	var h Held
	_, _ = cluster.EncodeWire(h)
}
