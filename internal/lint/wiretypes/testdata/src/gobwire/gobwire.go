// Fixture for the wiretypes analyzer's encoding/gob roots: the argument of
// an Encoder.Encode / Decoder.Decode call is a wire root, unless its static
// type is a bare empty interface (a forwarding boundary — its callers root
// the walk instead).
package gobwire

import (
	"bytes"
	"encoding/gob"
)

// Journal is a clean on-disk frame; encoding it provokes nothing.
type Journal struct {
	Frames [][]byte
	Cursor int
}

// BadFrame rides a channel into a journal file.
type BadFrame struct {
	Payload []byte
	Notify  chan struct{} // want `field BadFrame\.Notify has chan type`
}

// dropped reaches the wire through Decode's pointer argument.
type dropped struct {
	Payload []byte
	seq     int // want `unexported field dropped\.seq is silently dropped`
}

func persist() {
	var buf bytes.Buffer
	var j Journal
	_ = gob.NewEncoder(&buf).Encode(j)
	var b BadFrame
	_ = gob.NewEncoder(&buf).Encode(&b)
	var d dropped
	_ = gob.NewDecoder(&buf).Decode(&d)
}

// forward mirrors cluster.EncodeWire: the static argument type is a bare
// empty interface, so this call roots nothing — persist-style callers of
// forward carry the concrete types.
func forward(v interface{}) error {
	var buf bytes.Buffer
	return gob.NewEncoder(&buf).Encode(v)
}

var _ = forward

// fakeEncoder proves only encoding/gob's methods match: an Encode method
// elsewhere does not make its argument a wire root.
type fakeEncoder struct{}

func (fakeEncoder) Encode(v interface{}) error { return nil }

// notWire would diagnose its chan field if fake()'s call were a root.
type notWire struct {
	C chan int
}

func fake() {
	_ = fakeEncoder{}.Encode(notWire{})
}
