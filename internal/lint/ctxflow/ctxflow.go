// Package ctxflow enforces the repo's cancellation invariant: contexts
// threaded through core.Session.Do must reach every blocking callee, so no
// frame may sever the chain by minting a fresh root context.
//
// Two rules:
//
//  1. context.Background() and context.TODO() are forbidden outside
//     package main, test files, and explicitly annotated compat shims
//     (//lint:ignore ctxflow <reason>). PR 5 built end-to-end
//     cancellation on exactly this discipline; a single Background() in a
//     library frame silently breaks Engine.Close draining and Ctrl-C.
//
//  2. A function that receives a context.Context must never pass
//     context.Background()/TODO() to a callee instead of (a derivative
//     of) its own ctx — that is a context *drop*, the bug class
//     internal/cluster/worker.go shipped with, and it is reported even in
//     package main.
package ctxflow

import (
	"go/ast"
	"go/types"

	"graphsurge/internal/lint/analysis"
	"graphsurge/internal/lint/lintutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc: "forbid context.Background/TODO outside main, tests, and annotated shims; " +
		"a function holding a ctx must not replace it with a fresh root",
	Run: run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	if isTestPackage(pass.Pkg) {
		return nil, nil
	}
	isMain := pass.Pkg.Name() == "main"
	for _, file := range pass.Files {
		filename := pass.Fset.Position(file.Pos()).Filename
		if lintutil.IsTestFile(filename) {
			continue
		}
		// hasCtx tracks, along the enclosing-function stack, whether any
		// frame in scope received a context.Context parameter — a closure
		// inside such a function has the ctx available too.
		var walk func(n ast.Node, hasCtx bool)
		walk = func(n ast.Node, hasCtx bool) {
			ast.Inspect(n, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.FuncDecl:
					if n.Body == nil {
						return false
					}
					walk(n.Body, funcTakesCtx(pass.TypesInfo, n.Type))
					return false
				case *ast.FuncLit:
					walk(n.Body, hasCtx || funcTakesCtx(pass.TypesInfo, n.Type))
					return false
				case *ast.CallExpr:
					name, ok := rootCtxCall(pass.TypesInfo, n)
					if !ok {
						return true
					}
					switch {
					case hasCtx:
						pass.Reportf(n.Pos(),
							"function receives a context.Context but calls context.%s — thread the caller's ctx instead", name)
					case !isMain:
						pass.Reportf(n.Pos(),
							"context.%s outside main or tests severs the cancellation chain — accept a ctx, or annotate a deliberate root with //lint:ignore ctxflow <reason>", name)
					}
				}
				return true
			})
		}
		walk(file, false)
	}
	return nil, nil
}

// rootCtxCall reports whether call is context.Background() or
// context.TODO(), returning the function name.
func rootCtxCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	obj := lintutil.Callee(info, call)
	if obj == nil || !lintutil.PkgHasSuffix(obj.Pkg(), "context") {
		return "", false
	}
	if n := obj.Name(); n == "Background" || n == "TODO" {
		return n, true
	}
	return "", false
}

// funcTakesCtx reports whether the function type declares a
// context.Context parameter.
func funcTakesCtx(info *types.Info, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		if tv, ok := info.Types[field.Type]; ok && lintutil.IsContext(tv.Type) {
			return true
		}
	}
	return false
}

func isTestPackage(pkg *types.Package) bool {
	name := pkg.Name()
	return len(name) > 5 && name[len(name)-5:] == "_test"
}
