// Fixture for the ctxflow analyzer in a non-main library package: fresh
// root contexts are forbidden, and a function already holding a ctx must
// thread it rather than mint a new one.
package a

import "context"

func fresh() context.Context {
	return context.Background() // want `context\.Background outside main or tests severs the cancellation chain`
}

func todo() {
	ctx := context.TODO() // want `context\.TODO outside main or tests severs the cancellation chain`
	_ = ctx
}

func threaded(ctx context.Context) error {
	return work(ctx)
}

func dropped(ctx context.Context) error {
	return work(context.Background()) // want `function receives a context\.Context but calls context\.Background`
}

func work(ctx context.Context) error { return ctx.Err() }

// closureDrops: the literal inherits the enclosing function's ctx, so a
// fresh root inside it is a drop, not a standalone root.
func closureDrops(ctx context.Context) func() {
	return func() {
		_ = context.TODO() // want `function receives a context\.Context but calls context\.TODO`
	}
}

// annotatedShim is the sanctioned escape hatch for compat wrappers.
func annotatedShim() context.Context {
	//lint:ignore ctxflow compat shim for callers predating ctx plumbing
	return context.Background()
}

//lint:ignore ctxflow // want `malformed //lint:ignore directive: missing reason`
var badRoot = context.Background() // want `context\.Background outside main or tests severs the cancellation chain`
