// Fixture: package main may create root contexts, but a ctx-holding
// function dropping its ctx is reported even here.
package main

import "context"

func main() {
	ctx := context.Background() // a root belongs in main
	run(ctx)
}

func run(ctx context.Context) {
	relay(context.TODO(), 1) // want `function receives a context\.Context but calls context\.TODO`
}

func relay(ctx context.Context, n int) {
	_ = ctx
	_ = n
}
