package ctxflow_test

import (
	"testing"

	"graphsurge/internal/lint/analysistest"
	"graphsurge/internal/lint/ctxflow"
)

func TestCtxflow(t *testing.T) {
	analysistest.Run(t, "testdata", ctxflow.Analyzer, "a", "mainpkg")
}
