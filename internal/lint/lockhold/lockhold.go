// Package lockhold enforces lock discipline in the engine's concurrent
// packages (internal/analytics, internal/core, internal/cluster): no
// blocking operation while a sync.Mutex or sync.RWMutex is held.
//
// The engine's mutexes guard small state snapshots (pool slots, worker
// rosters, stat counters) and are taken on hot paths by many goroutines; a
// channel send, pool Acquire, RPC call, or sleep under one turns a
// bounded critical section into an unbounded convoy — and can deadlock
// outright when the blocking operation's completion needs the same lock
// (exactly how a replica-pool stall manifests). sync.Cond.Wait is exempt:
// waiting on a condition variable is *defined* to hold its mutex.
//
// Blocking operations recognized: channel send/receive (including range
// over a channel and select without a default), analytics.Pool.Acquire
// (TryAcquire is non-blocking and allowed), net/rpc Client.Call,
// sync.WaitGroup.Wait, and time.Sleep.
//
// The analysis is a per-function, block-structured scan: a lock set is
// carried forward across statements, copied into nested blocks (an unlock
// inside a branch releases only for that branch's remainder), and a
// deferred unlock keeps the mutex held to the end of the function.
// Function literals are not scanned under the caller's lock set — a
// closure built under a lock usually runs after it is released — and
// cross-function lock flow is out of scope. Suppress a deliberate
// blocking hold with //lint:ignore lockhold <reason>.
package lockhold

import (
	"go/ast"
	"go/token"
	"go/types"

	"graphsurge/internal/lint/analysis"
	"graphsurge/internal/lint/lintutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "lockhold",
	Doc:  "no blocking operation (channel op, Pool.Acquire, RPC call, WaitGroup.Wait, time.Sleep) while a sync mutex is held",
	Run:  run,
}

var scopedPackages = []string{"internal/analytics", "internal/core", "internal/cluster"}

func run(pass *analysis.Pass) (interface{}, error) {
	inScope := false
	for _, suffix := range scopedPackages {
		if lintutil.PkgHasSuffix(pass.Pkg, suffix) {
			inScope = true
			break
		}
	}
	if !inScope {
		return nil, nil
	}
	c := &checker{pass: pass}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					c.walkStmts(n.Body.List, map[string]token.Pos{})
				}
				return false
			case *ast.FuncLit:
				c.walkStmts(n.Body.List, map[string]token.Pos{})
				return false
			}
			return true
		})
	}
	return nil, nil
}

type checker struct {
	pass *analysis.Pass
}

// walkStmts scans one statement list with the given held-lock set. Nested
// blocks get a copy: their lock/unlock operations do not leak back into
// the enclosing list's state.
func (c *checker) walkStmts(stmts []ast.Stmt, held map[string]token.Pos) {
	for _, s := range stmts {
		c.walkStmt(s, held)
	}
}

func (c *checker) walkStmt(s ast.Stmt, held map[string]token.Pos) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if key, op, ok := c.mutexOp(s.X); ok {
			switch op {
			case "Lock", "RLock":
				held[key] = s.Pos()
			case "Unlock", "RUnlock":
				delete(held, key)
			}
			return
		}
		c.scanBlocking(s.X, held)
	case *ast.DeferStmt:
		// defer mu.Unlock() keeps the mutex held for the rest of the
		// function; any other deferred call runs after the critical
		// section and is not scanned under it.
		return
	case *ast.GoStmt:
		// The spawned goroutine does not run under the caller's locks;
		// only the call's argument expressions are evaluated here.
		for _, arg := range s.Call.Args {
			c.scanBlocking(arg, held)
		}
	case *ast.BlockStmt:
		c.walkStmts(s.List, copyHeld(held))
	case *ast.LabeledStmt:
		c.walkStmt(s.Stmt, held)
	case *ast.IfStmt:
		if s.Init != nil {
			c.walkStmt(s.Init, held)
		}
		c.scanBlocking(s.Cond, held)
		c.walkStmts(s.Body.List, copyHeld(held))
		if s.Else != nil {
			c.walkStmt(s.Else, copyHeld(held))
		}
	case *ast.ForStmt:
		if s.Init != nil {
			c.walkStmt(s.Init, held)
		}
		if s.Cond != nil {
			c.scanBlocking(s.Cond, held)
		}
		inner := copyHeld(held)
		if s.Post != nil {
			c.walkStmt(s.Post, inner)
		}
		c.walkStmts(s.Body.List, inner)
	case *ast.RangeStmt:
		if len(held) > 0 {
			if tv, ok := c.pass.TypesInfo.Types[s.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					c.report(s.Pos(), "range over a channel", held)
				}
			}
		}
		c.scanBlocking(s.X, held)
		c.walkStmts(s.Body.List, copyHeld(held))
	case *ast.SwitchStmt:
		if s.Init != nil {
			c.walkStmt(s.Init, held)
		}
		if s.Tag != nil {
			c.scanBlocking(s.Tag, held)
		}
		for _, cc := range s.Body.List {
			if cc, ok := cc.(*ast.CaseClause); ok {
				c.walkStmts(cc.Body, copyHeld(held))
			}
		}
	case *ast.TypeSwitchStmt:
		for _, cc := range s.Body.List {
			if cc, ok := cc.(*ast.CaseClause); ok {
				c.walkStmts(cc.Body, copyHeld(held))
			}
		}
	case *ast.SelectStmt:
		if len(held) > 0 && !selectHasDefault(s) {
			c.report(s.Pos(), "select with no default case", held)
		}
		for _, cc := range s.Body.List {
			if cc, ok := cc.(*ast.CommClause); ok {
				c.walkStmts(cc.Body, copyHeld(held))
			}
		}
	default:
		c.scanBlocking(s, held)
	}
}

// scanBlocking reports every blocking operation in the subtree while any
// lock is held. Function literals are skipped (they execute later).
func (c *checker) scanBlocking(n ast.Node, held map[string]token.Pos) {
	if n == nil || len(held) == 0 {
		return
	}
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SendStmt:
			c.report(n.Pos(), "channel send", held)
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				c.report(n.Pos(), "channel receive", held)
			}
		case *ast.CallExpr:
			if desc, ok := c.blockingCall(n); ok {
				c.report(n.Pos(), desc, held)
			}
		}
		return true
	})
}

// blockingCall classifies a call as one of the recognized blocking
// operations.
func (c *checker) blockingCall(call *ast.CallExpr) (string, bool) {
	obj := lintutil.Callee(c.pass.TypesInfo, call)
	if obj == nil {
		return "", false
	}
	switch {
	case obj.Pkg() != nil && lintutil.PkgHasSuffix(obj.Pkg(), "time") && obj.Name() == "Sleep":
		return "time.Sleep", true
	case lintutil.IsMethodOn(obj, "analytics", "Pool", "Acquire"):
		return "analytics.Pool.Acquire", true
	case lintutil.IsMethodOn(obj, "net/rpc", "Client", "Call"):
		return "rpc.Client.Call", true
	case lintutil.IsMethodOn(obj, "sync", "WaitGroup", "Wait"):
		return "sync.WaitGroup.Wait", true
	}
	return "", false
}

// mutexOp recognizes a direct Lock/RLock/Unlock/RUnlock call on a
// sync-package mutex (including one reached through an embedded field or
// the sync.Locker interface), returning a stable key for the lock
// expression.
func (c *checker) mutexOp(x ast.Expr) (key, op string, ok bool) {
	call, isCall := x.(*ast.CallExpr)
	if !isCall {
		return "", "", false
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	obj := lintutil.Callee(c.pass.TypesInfo, call)
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return "", "", false
	}
	switch obj.Name() {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", "", false
	}
	// Exclude sync.Cond: cond.L.Lock patterns resolve to Locker, fine,
	// but Cond itself has no Lock methods, so nothing to do.
	return types.ExprString(sel.X), obj.Name(), true
}

func (c *checker) report(pos token.Pos, what string, held map[string]token.Pos) {
	// Name one held mutex deterministically (the smallest key) so the
	// message is stable when several are held.
	var key string
	for k := range held {
		if key == "" || k < key {
			key = k
		}
	}
	lock := c.pass.Fset.Position(held[key])
	c.pass.Reportf(pos, "blocking %s while holding %s (locked at line %d)", what, key, lock.Line)
}

func copyHeld(held map[string]token.Pos) map[string]token.Pos {
	out := make(map[string]token.Pos, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}

func selectHasDefault(s *ast.SelectStmt) bool {
	for _, cc := range s.Body.List {
		if cc, ok := cc.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}
