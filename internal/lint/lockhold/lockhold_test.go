package lockhold_test

import (
	"testing"

	"graphsurge/internal/lint/analysistest"
	"graphsurge/internal/lint/lockhold"
)

func TestLockhold(t *testing.T) {
	analysistest.Run(t, "testdata", lockhold.Analyzer, "internal/core")
}
