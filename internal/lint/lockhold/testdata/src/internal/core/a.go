// Fixture for the lockhold analyzer: blocking operations under a held
// sync.Mutex/RWMutex are reported; unlock-then-block, TryAcquire, and
// sync.Cond.Wait are fine. The package path internal/core puts the fixture
// in the analyzer's scope.
package core

import (
	"context"
	"sync"
	"time"

	"analytics"
	"net/rpc"
)

type engine struct {
	mu    sync.Mutex
	state int
	ch    chan int
	pool  *analytics.Pool
	cli   *rpc.Client
}

func (e *engine) goodSnapshot() int {
	e.mu.Lock()
	v := e.state
	e.mu.Unlock()
	e.ch <- v // after the unlock: fine
	return v
}

func (e *engine) sendUnderDefer() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.ch <- 1 // want `blocking channel send while holding e\.mu`
}

func (e *engine) sleepUnderLock() {
	e.mu.Lock()
	time.Sleep(time.Millisecond) // want `blocking time\.Sleep while holding e\.mu`
	e.mu.Unlock()
}

func (e *engine) acquireUnderLock(ctx context.Context) {
	e.mu.Lock()
	defer e.mu.Unlock()
	r, _, err := e.pool.Acquire(ctx) // want `blocking analytics\.Pool\.Acquire while holding e\.mu`
	if err == nil {
		e.pool.Release(r)
	}
}

func (e *engine) tryUnderLock() {
	e.mu.Lock()
	defer e.mu.Unlock()
	if r, _, ok := e.pool.TryAcquire(); ok { // non-blocking: fine
		e.pool.Release(r)
	}
}

func (e *engine) rpcUnderLock() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.cli.Call("Worker.Ping", 1, nil) // want `blocking rpc\.Client\.Call while holding e\.mu`
}

func (e *engine) branchScoped() {
	e.mu.Lock()
	if e.state > 0 {
		e.mu.Unlock()
		e.ch <- 1 // this branch unlocked first: fine
		return
	}
	e.mu.Unlock()
}

func (e *engine) recvUnderRead(rw *sync.RWMutex) int {
	rw.RLock()
	v := <-e.ch // want `blocking channel receive while holding rw`
	rw.RUnlock()
	return v
}

func (e *engine) selectNoDefault(done chan struct{}) {
	e.mu.Lock()
	defer e.mu.Unlock()
	select { // want `blocking select with no default case while holding e\.mu`
	case <-done:
	case e.ch <- 1:
	}
}

func (e *engine) selectWithDefault() {
	e.mu.Lock()
	defer e.mu.Unlock()
	select {
	case e.ch <- 1: // a ready send inside a default-guarded select: fine
	default:
	}
}

func (e *engine) rangeChanUnderLock() {
	e.mu.Lock()
	defer e.mu.Unlock()
	for v := range e.ch { // want `blocking range over a channel while holding e\.mu`
		e.state += v
	}
}

func (e *engine) condWait(c *sync.Cond) {
	c.L.Lock()
	for e.state == 0 {
		c.Wait() // sync.Cond.Wait holds its mutex by design: fine
	}
	c.L.Unlock()
}

func (e *engine) wgUnderLock(wg *sync.WaitGroup) {
	e.mu.Lock()
	wg.Wait() // want `blocking sync\.WaitGroup\.Wait while holding e\.mu`
	e.mu.Unlock()
}

func (e *engine) goroutineNotUnderLock() {
	e.mu.Lock()
	defer e.mu.Unlock()
	go func() {
		e.ch <- 1 // runs outside the caller's critical section: fine
	}()
}

func (e *engine) annotated() {
	e.mu.Lock()
	defer e.mu.Unlock()
	//lint:ignore lockhold startup handshake is deliberately serialized under the roster lock
	time.Sleep(time.Millisecond)
}

func (e *engine) badAnnotation() {
	e.mu.Lock()
	defer e.mu.Unlock()
	//lint:ignore lockhold // want `malformed //lint:ignore directive: missing reason`
	time.Sleep(time.Millisecond) // want `blocking time\.Sleep while holding e\.mu`
}
