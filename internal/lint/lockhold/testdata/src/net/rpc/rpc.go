// Stub of net/rpc for fixture type-checking: the analyzer matches the
// Client.Call method shape; shadowing the real package keeps the fixture
// loader from type-checking the whole net/http dependency tree.
package rpc

type Client struct{}

func (c *Client) Call(serviceMethod string, args interface{}, reply interface{}) error {
	return nil
}
