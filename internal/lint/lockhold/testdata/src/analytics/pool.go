// Stub of graphsurge/internal/analytics for fixture type-checking.
package analytics

import (
	"context"
	"time"
)

type Runner struct{ ID int }

type Pool struct{}

func (p *Pool) Acquire(ctx context.Context) (*Runner, time.Duration, error) {
	return &Runner{}, 0, nil
}

func (p *Pool) TryAcquire() (*Runner, time.Duration, bool) {
	return &Runner{}, 0, true
}

func (p *Pool) Release(r *Runner) {}
