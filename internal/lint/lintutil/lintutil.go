// Package lintutil holds the small type-resolution helpers shared by the
// graphsurge analyzers: callee lookup through go/types and package/type
// identity checks that work both on the real module paths
// (graphsurge/internal/...) and on the short fixture paths the
// analysistest loader uses.
package lintutil

import (
	"go/ast"
	"go/types"
	"strings"
)

// Callee resolves the object a call expression invokes: a function, a
// method (through its selection), or nil when the call is a conversion,
// a builtin, or otherwise unresolvable.
func Callee(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			return sel.Obj()
		}
		// Qualified identifier (pkg.Func) or promoted selector.
		return info.Uses[fun.Sel]
	}
	return nil
}

// PkgHasSuffix reports whether the package's import path is exactly suffix
// or ends with "/"+suffix — "analytics" matches both the fixture path
// "analytics" and the real "graphsurge/internal/analytics".
func PkgHasSuffix(pkg *types.Package, suffix string) bool {
	if pkg == nil {
		return false
	}
	path := pkg.Path()
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// IsNamed reports whether t (after stripping pointers) is the named type
// pkgSuffix.name.
func IsNamed(t types.Type, pkgSuffix, name string) bool {
	for {
		ptr, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && PkgHasSuffix(obj.Pkg(), pkgSuffix)
}

// IsMethodOn reports whether obj is a method named name whose receiver
// (after stripping pointers) is the named type pkgSuffix.recvName.
func IsMethodOn(obj types.Object, pkgSuffix, recvName, name string) bool {
	fn, ok := obj.(*types.Func)
	if !ok || fn.Name() != name {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return IsNamed(sig.Recv().Type(), pkgSuffix, recvName)
}

// IsContext reports whether t is context.Context.
func IsContext(t types.Type) bool {
	return IsNamed(t, "context", "Context")
}

// IsTestFile reports whether the file name marks a test file.
func IsTestFile(filename string) bool {
	return strings.HasSuffix(filename, "_test.go")
}
