// Package analysis is a stdlib-only, API-compatible subset of
// golang.org/x/tools/go/analysis — the modular static-analysis framework
// the Go project's own vet is built on. The container this repo grows in
// has no module proxy access and an empty module cache, so the real
// x/tools dependency cannot be added; this package mirrors its core shapes
// (Analyzer, Pass, Diagnostic) exactly so the repo's analyzers are written
// against the upstream contract and become a drop-in import swap the day
// x/tools is available.
//
// Deliberately omitted from the subset: Facts (no cross-package analysis —
// every graphsurge analyzer is intra-package over export-data type info),
// Requires/ResultOf (no analyzer composition), and SuggestedFixes.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer describes one analysis function: its name, documentation,
// and its logic.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, CLI flags, and
	// //lint:ignore directives. It must be a valid Go identifier.
	Name string

	// Doc is the analyzer's documentation: one summary line, a blank
	// line, then the invariant it enforces and how to suppress findings.
	Doc string

	// Run applies the analyzer to a package. It returns an error only
	// for an internal failure of the analyzer itself; findings about the
	// code under analysis are reported via Pass.Report.
	Run func(*Pass) (interface{}, error)
}

func (a *Analyzer) String() string { return a.Name }

// A Pass provides information to an Analyzer's Run function about the
// single package under analysis and provides operations for reporting
// diagnostics.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report publishes one diagnostic. The driver owns delivery:
	// //lint:ignore filtering, output format, and exit status.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is a message associated with a source location.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}
