package aggregate

import (
	"testing"
)

// TestPredicateGroupPriority: when a node matches several group predicates,
// it belongs to the first (the GVDL list is ordered, like a CASE
// expression).
func TestPredicateGroupPriority(t *testing.T) {
	g := callsGraph()
	stmt := mustParseAgg(t, `create view overlap on Calls
nodes group by [
(city = 'LA'),
(profession = 'Lawyer')]
aggregate count(*)`)
	v, err := Evaluate(g, stmt, 1)
	if err != nil {
		t.Fatal(err)
	}
	// LA residents (5, including LA lawyer #7) go to group 0; only NY
	// lawyers (2) remain for group 1.
	sizes := map[uint64]int64{}
	for _, sn := range v.SuperNodes {
		sizes[sn.ID] = sn.Size
	}
	if sizes[0] != 5 || sizes[1] != 2 {
		t.Fatalf("sizes = %v", sizes)
	}
}

// TestEmptyGroups: predicates matching nothing produce no super-node.
func TestEmptyGroups(t *testing.T) {
	g := callsGraph()
	stmt := mustParseAgg(t, `create view none on Calls
nodes group by [(city = 'Atlantis')]
aggregate count(*)`)
	v, err := Evaluate(g, stmt, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(v.SuperNodes) != 0 || len(v.SuperEdges) != 0 {
		t.Fatalf("got %d/%d super nodes/edges", len(v.SuperNodes), len(v.SuperEdges))
	}
}

// TestMultiPropertyGrouping groups by two node properties at once.
func TestMultiPropertyGrouping(t *testing.T) {
	g := callsGraph()
	stmt := mustParseAgg(t, `create view cp on Calls
nodes group by city, profession aggregate count(*)`)
	v, err := Evaluate(g, stmt, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Distinct (city, profession) pairs in the fixture:
	// LA/Engineer, LA/Doctor, NY/Lawyer, NY/Doctor, LA/Lawyer = 5.
	if len(v.SuperNodes) != 5 {
		t.Fatalf("%d super nodes: %+v", len(v.SuperNodes), v.SuperNodes)
	}
	byKey := map[string]int64{}
	for _, sn := range v.SuperNodes {
		byKey[sn.Key] = sn.Size
	}
	if byKey["LA|Engineer"] != 3 || byKey["NY|Lawyer"] != 2 {
		t.Fatalf("group sizes: %v", byKey)
	}
}
