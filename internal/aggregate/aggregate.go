// Package aggregate implements Graphsurge's aggregate views (paper §6), the
// Graph OLAP-style summaries: nodes are grouped into super-nodes either by
// the values of a set of node properties or by membership in an ordered list
// of predicates, original edges are rolled up into super-edges between the
// groups, and aggregate properties (count, sum, min, max, avg) are computed
// on both. Evaluation runs as a dataflow over the engine at a single version,
// matching the paper's Timely-based aggregation operators.
package aggregate

import (
	"fmt"
	"sort"
	"strings"

	"graphsurge/internal/dataflow"
	"graphsurge/internal/graph"
	"graphsurge/internal/gvdl"
)

// SuperNode is one node group of an aggregate view.
type SuperNode struct {
	ID   uint64
	Key  string // property values ("LA") or predicate text for display
	Size int64  // number of member nodes
	Aggs []int64
}

// SuperEdge is the rollup of original edges between two groups.
type SuperEdge struct {
	Src, Dst uint64
	Count    int64 // number of original edges aggregated
	Aggs     []int64
}

// View is a materialized aggregate view.
type View struct {
	Name       string
	NodeAggs   []gvdl.Aggregation
	EdgeAggs   []gvdl.Aggregation
	SuperNodes []SuperNode
	SuperEdges []SuperEdge
}

// Evaluate computes an aggregate view over a graph.
func Evaluate(g *graph.Graph, stmt *gvdl.CreateAggView, workers int) (*View, error) {
	groups, keys, err := groupNodes(g, stmt)
	if err != nil {
		return nil, err
	}
	nodeCols, err := aggColumns(g, g.NodeProps, stmt.NodeAggs, "node")
	if err != nil {
		return nil, err
	}
	edgeCols, err := aggColumns(g, g.EdgeProps, stmt.EdgeAggs, "edge")
	if err != nil {
		return nil, err
	}

	v := &View{Name: stmt.Name, NodeAggs: stmt.NodeAggs, EdgeAggs: stmt.EdgeAggs}

	// Dataflow: one pass for node aggregates keyed by group, one for edge
	// aggregates keyed by (group(src), group(dst)).
	s := dataflow.NewScope(workers)
	type nodeRec struct {
		Group uint64
		Node  uint64
	}
	type edgeRec struct {
		Src, Dst uint64 // groups
		Edge     uint64 // edge index
	}
	nIn, nCol := dataflow.NewInput[nodeRec](s)
	eIn, eCol := dataflow.NewInput[edgeRec](s)

	nKeyed := dataflow.Map(nCol, func(r nodeRec) dataflow.KV[uint64, uint64] {
		return dataflow.KV[uint64, uint64]{K: r.Group, V: r.Node}
	})
	nAgg := dataflow.Reduce(nKeyed, "node-aggs", func(gid uint64, vals []dataflow.VD[uint64]) []aggRow {
		return []aggRow{aggregateRows(vals, stmt.NodeAggs, nodeCols)}
	})
	nCap := dataflow.NewCapture(nAgg)

	type gpair struct{ S, D uint64 }
	eKeyed := dataflow.Map(eCol, func(r edgeRec) dataflow.KV[gpair, uint64] {
		return dataflow.KV[gpair, uint64]{K: gpair{r.Src, r.Dst}, V: r.Edge}
	})
	eAgg := dataflow.Reduce(eKeyed, "edge-aggs", func(k gpair, vals []dataflow.VD[uint64]) []aggRow {
		return []aggRow{aggregateRows(vals, stmt.EdgeAggs, edgeCols)}
	})
	eCap := dataflow.NewCapture(eAgg)

	var nUps []dataflow.Update[nodeRec]
	for n := 0; n < g.NumNodes; n++ {
		if gid := groups[n]; gid >= 0 {
			nUps = append(nUps, dataflow.Update[nodeRec]{Rec: nodeRec{Group: uint64(gid), Node: uint64(n)}, D: 1})
		}
	}
	nIn.SendAt(0, nUps)
	var eUps []dataflow.Update[edgeRec]
	for i := 0; i < g.NumEdges(); i++ {
		if !g.EdgeAlive(i) {
			continue
		}
		gs, gd := groups[g.Srcs[i]], groups[g.Dsts[i]]
		if gs >= 0 && gd >= 0 {
			eUps = append(eUps, dataflow.Update[edgeRec]{Rec: edgeRec{Src: uint64(gs), Dst: uint64(gd), Edge: uint64(i)}, D: 1})
		}
	}
	eIn.SendAt(0, eUps)
	s.Drain()

	for kv := range nCap.At(0) {
		v.SuperNodes = append(v.SuperNodes, SuperNode{
			ID:   kv.K,
			Key:  keys[kv.K],
			Size: kv.V.Count,
			Aggs: kv.V.Values(),
		})
	}
	sort.Slice(v.SuperNodes, func(i, j int) bool { return v.SuperNodes[i].ID < v.SuperNodes[j].ID })
	for kv := range eCap.At(0) {
		v.SuperEdges = append(v.SuperEdges, SuperEdge{
			Src:   kv.K.S,
			Dst:   kv.K.D,
			Count: kv.V.Count,
			Aggs:  kv.V.Values(),
		})
	}
	sort.Slice(v.SuperEdges, func(i, j int) bool {
		if v.SuperEdges[i].Src != v.SuperEdges[j].Src {
			return v.SuperEdges[i].Src < v.SuperEdges[j].Src
		}
		return v.SuperEdges[i].Dst < v.SuperEdges[j].Dst
	})
	return v, nil
}

// aggRow is the fixed-size aggregate output of one group (comparable so it
// can flow through the engine).
type aggRow struct {
	Count int64
	N     int
	A     [4]int64 // up to 4 aggregations per clause
}

// Values returns the aggregation results as a slice.
func (r aggRow) Values() []int64 { return append([]int64(nil), r.A[:r.N]...) }

// MaxAggs is the maximum number of aggregations per aggregate clause.
const MaxAggs = 4

// aggColumns resolves aggregation property references to integer columns.
func aggColumns(g *graph.Graph, pt *graph.PropTable, aggs []gvdl.Aggregation, what string) ([]*graph.Column, error) {
	if len(aggs) > MaxAggs {
		return nil, fmt.Errorf("aggregate view: at most %d aggregations per clause, got %d", MaxAggs, len(aggs))
	}
	cols := make([]*graph.Column, len(aggs))
	for i, a := range aggs {
		if a.Prop == "" {
			if a.Func != gvdl.AggCount {
				return nil, fmt.Errorf("aggregate view: %s requires a property", a.Func)
			}
			continue
		}
		ci, ok := pt.ColumnIndex(a.Prop)
		if !ok {
			return nil, fmt.Errorf("aggregate view: no %s property %q on graph %s", what, a.Prop, g.Name)
		}
		col := &pt.Cols[ci]
		if col.Type != graph.TypeInt {
			return nil, fmt.Errorf("aggregate view: %s property %q must be an integer for %s", what, a.Prop, a.Func)
		}
		cols[i] = col
	}
	return cols, nil
}

// aggregateRows folds the rows (node or edge indices) of one group.
func aggregateRows(vals []dataflow.VD[uint64], aggs []gvdl.Aggregation, cols []*graph.Column) aggRow {
	row := aggRow{N: len(aggs)}
	type acc struct {
		sum, min, max, n int64
		seen             bool
	}
	accs := make([]acc, len(aggs))
	for _, vd := range vals {
		if vd.D <= 0 {
			continue
		}
		row.Count += vd.D
		for i, a := range aggs {
			if cols[i] == nil {
				continue
			}
			x := cols[i].Ints[vd.V]
			ac := &accs[i]
			ac.sum += x * vd.D
			ac.n += vd.D
			if !ac.seen || x < ac.min {
				ac.min = x
			}
			if !ac.seen || x > ac.max {
				ac.max = x
			}
			ac.seen = true
			_ = a
		}
	}
	for i, a := range aggs {
		switch a.Func {
		case gvdl.AggCount:
			row.A[i] = row.Count
		case gvdl.AggSum:
			row.A[i] = accs[i].sum
		case gvdl.AggMin:
			row.A[i] = accs[i].min
		case gvdl.AggMax:
			row.A[i] = accs[i].max
		case gvdl.AggAvg:
			if accs[i].n > 0 {
				row.A[i] = accs[i].sum / accs[i].n
			}
		}
	}
	return row
}

// groupNodes assigns every node to a super-node group, or -1 when dropped.
// Returns the mapping and per-group display keys.
func groupNodes(g *graph.Graph, stmt *gvdl.CreateAggView) ([]int32, map[uint64]string, error) {
	groups := make([]int32, g.NumNodes)
	keys := make(map[uint64]string)

	if len(stmt.Grouping.Predicates) > 0 {
		preds := make([]gvdl.NodePredicate, len(stmt.Grouping.Predicates))
		for i, e := range stmt.Grouping.Predicates {
			p, err := gvdl.CompileNodePredicate(g, e)
			if err != nil {
				return nil, nil, fmt.Errorf("aggregate view %s: %w", stmt.Name, err)
			}
			preds[i] = p
			keys[uint64(i)] = e.String()
		}
		for n := 0; n < g.NumNodes; n++ {
			groups[n] = -1
			for i, p := range preds {
				if p(n) {
					groups[n] = int32(i)
					break
				}
			}
		}
		return groups, keys, nil
	}

	cols := make([]*graph.Column, len(stmt.Grouping.Props))
	for i, prop := range stmt.Grouping.Props {
		ci, ok := g.NodeProps.ColumnIndex(prop)
		if !ok {
			return nil, nil, fmt.Errorf("aggregate view %s: no node property %q", stmt.Name, prop)
		}
		cols[i] = &g.NodeProps.Cols[ci]
	}
	ids := make(map[string]int32)
	var parts []string
	for n := 0; n < g.NumNodes; n++ {
		parts = parts[:0]
		for _, c := range cols {
			parts = append(parts, c.Value(n).String())
		}
		key := strings.Join(parts, "|")
		gid, ok := ids[key]
		if !ok {
			gid = int32(len(ids))
			ids[key] = gid
			keys[uint64(gid)] = key
		}
		groups[n] = gid
	}
	return groups, keys, nil
}
