package aggregate

import (
	"testing"

	"graphsurge/internal/graph"
	"graphsurge/internal/gvdl"
)

// callsGraph builds the paper's Figure 1 phone call graph.
func callsGraph() *graph.Graph {
	np := graph.NewPropTable([]graph.PropDef{
		{Name: "city", Type: graph.TypeString},
		{Name: "profession", Type: graph.TypeString},
	})
	nodes := []struct{ city, prof string }{
		{"LA", "Engineer"}, // 0 (paper node 1)
		{"LA", "Doctor"},   // 1 (paper node 2)
		{"LA", "Engineer"}, // 2 (paper node 3)
		{"NY", "Lawyer"},   // 3 (paper node 4)
		{"NY", "Doctor"},   // 4 (paper node 5)
		{"LA", "Engineer"}, // 5 (paper node 6)
		{"NY", "Lawyer"},   // 6 (paper node 7)
		{"LA", "Lawyer"},   // 7 (paper node 8)
	}
	for _, n := range nodes {
		if err := np.AppendRow([]graph.Value{graph.StringValue(n.city), graph.StringValue(n.prof)}); err != nil {
			panic(err)
		}
	}
	ep := graph.NewPropTable([]graph.PropDef{
		{Name: "duration", Type: graph.TypeInt},
		{Name: "year", Type: graph.TypeInt},
	})
	edges := []struct {
		s, d uint64
		dur  int64
		year int64
	}{
		{0, 1, 7, 2015},
		{0, 2, 12, 2017},
		{1, 4, 19, 2019},
		{2, 5, 7, 2018},
		{3, 6, 4, 2019},
		{4, 3, 13, 2019},
		{5, 0, 1, 2010},
		{6, 7, 34, 2019},
		{7, 4, 18, 2019},
	}
	g := &graph.Graph{Name: "Calls", NumNodes: len(nodes), NodeProps: np, EdgeProps: ep}
	for _, e := range edges {
		g.Srcs = append(g.Srcs, e.s)
		g.Dsts = append(g.Dsts, e.d)
		if err := ep.AppendRow([]graph.Value{graph.IntValue(e.dur), graph.IntValue(e.year)}); err != nil {
			panic(err)
		}
	}
	return g
}

func mustParseAgg(t *testing.T, src string) *gvdl.CreateAggView {
	t.Helper()
	s, err := gvdl.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return s.(*gvdl.CreateAggView)
}

func TestCityCallsCity(t *testing.T) {
	// Listing 4's second view: city super-nodes, call count and total
	// duration on super-edges.
	g := callsGraph()
	stmt := mustParseAgg(t, `create view City-Calls-City on Calls
nodes group by city aggregate num-phones: count(*)
edges aggregate total-duration: sum(duration)`)
	for _, workers := range []int{1, 3} {
		v, err := Evaluate(g, stmt, workers)
		if err != nil {
			t.Fatal(err)
		}
		if len(v.SuperNodes) != 2 {
			t.Fatalf("super nodes: %+v", v.SuperNodes)
		}
		byKey := map[string]SuperNode{}
		for _, sn := range v.SuperNodes {
			byKey[sn.Key] = sn
		}
		if byKey["LA"].Size != 5 || byKey["NY"].Size != 3 {
			t.Fatalf("group sizes: %+v", byKey)
		}
		if byKey["LA"].Aggs[0] != 5 || byKey["NY"].Aggs[0] != 3 {
			t.Fatalf("count aggs: %+v", byKey)
		}
		// Edges between groups: LA->LA {7,12,7,1}=27, LA->NY {19,18}=37,
		// NY->NY {4,13}=17, NY->LA {34}=34.
		la, ny := byKey["LA"].ID, byKey["NY"].ID
		want := map[[2]uint64]struct{ count, dur int64 }{
			{la, la}: {4, 27},
			{la, ny}: {2, 37},
			{ny, ny}: {2, 17},
			{ny, la}: {1, 34},
		}
		if len(v.SuperEdges) != len(want) {
			t.Fatalf("super edges: %+v", v.SuperEdges)
		}
		for _, se := range v.SuperEdges {
			w, ok := want[[2]uint64{se.Src, se.Dst}]
			if !ok || se.Count != w.count || se.Aggs[0] != w.dur {
				t.Fatalf("super edge %+v, want %+v", se, w)
			}
		}
	}
}

func TestPredicateGrouping(t *testing.T) {
	// Listing 4's first view: explicit predicate groups; nodes matching no
	// predicate are dropped, and so are their edges.
	g := callsGraph()
	stmt := mustParseAgg(t, `create view NY-Dr-LA-Lawyer on Calls
nodes group by [
(profession='Doctor' and city='NY'),
(profession='Lawyer' and city='LA'),
(profession='Lawyer' and city='NY')]
aggregate count(*)`)
	v, err := Evaluate(g, stmt, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Groups: 0 = NY doctors {4}, 1 = LA lawyers {7}, 2 = NY lawyers {3,6}.
	if len(v.SuperNodes) != 3 {
		t.Fatalf("super nodes: %+v", v.SuperNodes)
	}
	sizes := map[uint64]int64{}
	for _, sn := range v.SuperNodes {
		sizes[sn.ID] = sn.Size
	}
	if sizes[0] != 1 || sizes[1] != 1 || sizes[2] != 2 {
		t.Fatalf("sizes: %v", sizes)
	}
	// Surviving edges among {3,4,6,7}: 3->6 (g2->g2), 4->3 (g0->g2),
	// 6->7 (g2->g1), 7->4 (g1->g0).
	if len(v.SuperEdges) != 4 {
		t.Fatalf("super edges: %+v", v.SuperEdges)
	}
}

func TestMinMaxAvgAggregates(t *testing.T) {
	g := callsGraph()
	stmt := mustParseAgg(t, `create view stats on Calls
nodes group by city
edges aggregate lo: min(duration), hi: max(duration), mean: avg(duration)`)
	v, err := Evaluate(g, stmt, 1)
	if err != nil {
		t.Fatal(err)
	}
	var laToLA *SuperEdge
	var laID uint64
	for _, sn := range v.SuperNodes {
		if sn.Key == "LA" {
			laID = sn.ID
		}
	}
	for i := range v.SuperEdges {
		if v.SuperEdges[i].Src == laID && v.SuperEdges[i].Dst == laID {
			laToLA = &v.SuperEdges[i]
		}
	}
	if laToLA == nil {
		t.Fatal("no LA->LA super edge")
	}
	// LA->LA durations: {7, 12, 7, 1}.
	if laToLA.Aggs[0] != 1 || laToLA.Aggs[1] != 12 || laToLA.Aggs[2] != 6 {
		t.Fatalf("min/max/avg = %v", laToLA.Aggs)
	}
}

func TestEvaluateErrors(t *testing.T) {
	g := callsGraph()
	bad := []string{
		"create view v on Calls nodes group by nope",
		"create view v on Calls nodes group by city aggregate sum(city)",
		"create view v on Calls nodes group by city aggregate sum(nope)",
		"create view v on Calls nodes group by city edges aggregate sum(nope)",
		"create view v on Calls nodes group by [(src.city = 'LA')] aggregate count(*)",
		"create view v on Calls nodes group by city aggregate a: sum(duration), b: sum(duration), c: sum(duration), d: sum(duration), e: sum(duration)",
	}
	for _, src := range bad {
		stmt := mustParseAgg(t, src)
		if _, err := Evaluate(g, stmt, 1); err == nil {
			t.Fatalf("expected error for %q", src)
		}
	}
}
