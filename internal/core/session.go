package core

import (
	"context"
	"fmt"
	"time"

	"graphsurge/internal/analytics"
	"graphsurge/internal/gvdl"
	"graphsurge/internal/view"
)

// This file is Graphsurge's typed request API. A Session is a per-client
// handle over a shared Engine whose single entry point — Do(ctx, Request) —
// covers every operation the CLI performs: executing GVDL statements,
// loading graphs, running computations over collections and individual
// views, and reading pool statistics. Requests and responses are typed
// values rather than pre-formatted text, so programmatic callers consume
// structure directly, ctx cancels a run end to end (segment dispatch, pool
// waits, cluster RPCs), and the CLI and the HTTP server (internal/server)
// are both thin renderers over the same code path.

// Request is a typed operation a Session can perform. The concrete types —
// StatementsRequest, LoadGraphRequest, RunRequest, RunViewRequest,
// MutateRequest, PoolStatsRequest — are plain structs with JSON names, so
// the same values travel over HTTP unchanged.
type Request interface{ isRequest() }

// Response is the typed outcome of a Request. Each Request documents its
// Response type.
type Response interface{ isResponse() }

// CollectionRunner executes a computation over a materialized collection —
// the seam between a Session and where a run actually executes. The local
// Engine implements it (RunOn); the cluster Coordinator implements it by
// sharding across workers. A RunRequest carrying no Runner executes on the
// session's engine.
type CollectionRunner interface {
	RunOn(ctx context.Context, col *view.Collection, comp analytics.Computation, opts RunOptions) (*RunResult, error)
}

// StatementsRequest executes a batch of GVDL statements. Response:
// *StatementsResponse (partial on error — statements completed before the
// failure are reported alongside it).
type StatementsRequest struct {
	Src string `json:"src"`
}

func (*StatementsRequest) isRequest() {}

// StatementsResponse carries one typed result per completed statement.
type StatementsResponse struct {
	Results []gvdl.Result `json:"results"`
}

func (*StatementsResponse) isResponse() {}

// LoadGraphRequest imports a graph from CSV files on the engine's
// filesystem and registers it. Response: *GraphLoaded.
type LoadGraphRequest struct {
	Name string `json:"name"`
	// NodesPath is optional; EdgesPath is required.
	NodesPath string `json:"nodesPath,omitempty"`
	EdgesPath string `json:"edgesPath"`
}

func (*LoadGraphRequest) isRequest() {}

// GraphLoaded reports a registered graph.
type GraphLoaded struct {
	Name  string `json:"name"`
	Nodes int    `json:"nodes"`
	Edges int    `json:"edges"`
}

func (*GraphLoaded) isResponse() {}

// RunRequest executes a computation over a named materialized collection.
// Response: *RunResult.
//
// The computation is named by Algorithm (the analytics wire spec — the same
// identity the cluster ships to workers), so the request is serializable;
// an embedding caller holding a custom Computation sets Computation
// instead, which takes precedence and never travels over the wire. Runner
// selects where the run executes (nil = the session's engine).
type RunRequest struct {
	Collection string         `json:"collection"`
	Algorithm  analytics.Spec `json:"algorithm"`
	Options    RunOptions     `json:"options"`

	Computation analytics.Computation `json:"-"`
	Runner      CollectionRunner      `json:"-"`
}

func (*RunRequest) isRequest() {}

func (*RunResult) isResponse() {}

// RunViewRequest executes a computation once over an individual filtered
// view. Response: *ViewRunResult.
type RunViewRequest struct {
	View       string         `json:"view"`
	Algorithm  analytics.Spec `json:"algorithm"`
	Workers    int            `json:"workers,omitempty"`
	WeightProp string         `json:"weightProp,omitempty"`

	Computation analytics.Computation `json:"-"`
}

func (*RunViewRequest) isRequest() {}

// ViewRunResult reports a single-view run: identity, the view's edge count,
// the measured runtime, and the per-vertex results.
type ViewRunResult struct {
	Computation string        `json:"computation"`
	View        string        `json:"view"`
	Edges       int           `json:"edges"`
	Duration    time.Duration `json:"duration"`

	Results map[analytics.VertexValue]int64 `json:"-"`
}

func (*ViewRunResult) isResponse() {}

// EdgeChange is one edge in a mutation request: endpoints are the graph's
// internal dense node IDs; Props carries a value for every edge property on
// inserts (decoded JSON values — numbers for integer properties must be
// integral) and is ignored on deletes.
type EdgeChange struct {
	Src   uint64         `json:"src"`
	Dst   uint64         `json:"dst"`
	Props map[string]any `json:"props,omitempty"`
}

// MutateRequest applies one transactional mutation batch to a base graph:
// the inserts and deletes commit together, and every materialized view,
// collection and aggregate view over the graph is incrementally maintained
// before the response returns. Response: *MutationApplied.
type MutateRequest struct {
	Graph   string       `json:"graph"`
	Inserts []EdgeChange `json:"inserts,omitempty"`
	Deletes []EdgeChange `json:"deletes,omitempty"`
}

func (*MutateRequest) isRequest() {}

// MutationApplied reports a committed mutation batch: the graph's new
// monotonic version and how many edges and maintained artifacts the batch
// touched.
type MutationApplied struct {
	Graph      string `json:"graph"`
	Version    uint64 `json:"version"`
	Inserted   int    `json:"inserted"`
	Deleted    int    `json:"deleted"`
	Maintained int    `json:"maintained"`
}

func (*MutationApplied) isResponse() {}

// PoolStatsRequest reads the engine's warm runner pool statistics.
// Response: *PoolStatsResponse.
type PoolStatsRequest struct{}

func (*PoolStatsRequest) isRequest() {}

// PoolStatsResponse carries every pool's stats in deterministic order.
type PoolStatsResponse struct {
	Pools []PoolStat `json:"pools"`
}

func (*PoolStatsResponse) isResponse() {}

// Session is a per-client handle over a shared Engine. Sessions are cheap
// (a Session is a view, not a copy — all catalog and pool state stays on
// the engine) and safe for concurrent use; a server allocates one per
// connection or per request as it pleases.
type Session struct {
	eng *Engine
}

// NewSession opens a client handle on the engine.
func (e *Engine) NewSession() *Session { return &Session{eng: e} }

// Engine returns the engine the session is a handle over.
func (s *Session) Engine() *Engine { return s.eng }

// Do performs one typed request. ctx bounds the whole operation: statement
// batches stop between statements, collection runs cancel segment dispatch
// and pool waits (see Engine.RunCollection), cluster runs additionally
// abandon in-flight worker RPCs. Do never interprets the response — it
// returns the typed value for the caller (CLI, HTTP server, embedding
// code) to render.
func (s *Session) Do(ctx context.Context, req Request) (Response, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	switch r := req.(type) {
	case *StatementsRequest:
		results, err := s.eng.ExecuteContext(ctx, r.Src)
		return &StatementsResponse{Results: results}, err

	case *LoadGraphRequest:
		if r.Name == "" || r.EdgesPath == "" {
			return nil, fmt.Errorf("core: load request needs a graph name and an edges path")
		}
		g, err := s.eng.LoadGraphCSV(r.Name, r.NodesPath, r.EdgesPath)
		if err != nil {
			return nil, err
		}
		return &GraphLoaded{Name: g.Name, Nodes: g.NumNodes, Edges: g.NumEdges()}, nil

	case *RunRequest:
		comp, err := resolveComp(r.Computation, r.Algorithm)
		if err != nil {
			return nil, err
		}
		col, err := s.eng.LookupCollection(r.Collection)
		if err != nil {
			return nil, err
		}
		runner := r.Runner
		if runner == nil || r.Options.Incremental {
			// Incremental runs always execute on the session's engine: the
			// warm replica state lives there, and a cluster runner has no
			// equivalent.
			runner = s.eng
		}
		// The trace is created here, at the narrow waist, so cluster runs
		// (whose RunOn never reaches Engine.RunOn) are traced identically to
		// engine runs, and every front-end can look the trace up by the
		// result's RunID afterwards.
		ctx, tr, created := s.eng.ensureTrace(ctx)
		res, err := runner.RunOn(ctx, col, comp, r.Options)
		if created {
			s.eng.traces.Add(tr)
		}
		if err != nil {
			// A literal nil Response, never a typed-nil *RunResult wrapped in
			// a non-nil interface — callers may check resp != nil.
			return nil, err
		}
		stampRun(res, tr)
		return res, nil

	case *RunViewRequest:
		comp, err := resolveComp(r.Computation, r.Algorithm)
		if err != nil {
			return nil, err
		}
		fv, err := s.eng.LookupView(r.View)
		if err != nil {
			return nil, err
		}
		results, dur, err := RunView(ctx, fv, comp, r.Workers, r.WeightProp)
		if err != nil {
			return nil, err
		}
		return &ViewRunResult{
			Computation: comp.Name(),
			View:        r.View,
			Edges:       fv.NumEdges(),
			Duration:    dur,
			Results:     results,
		}, nil

	case *MutateRequest:
		res, err := s.eng.Mutate(r)
		if err != nil {
			return nil, err
		}
		return res, nil

	case *PoolStatsRequest:
		return &PoolStatsResponse{Pools: s.eng.PoolStats()}, nil
	}
	return nil, fmt.Errorf("core: unknown request type %T", req)
}

// resolveComp picks the request's computation: an explicitly supplied
// Computation wins; otherwise the algorithm spec resolves through the same
// registry cluster workers use.
func resolveComp(comp analytics.Computation, spec analytics.Spec) (analytics.Computation, error) {
	if comp != nil {
		return comp, nil
	}
	return spec.Resolve()
}
