package core

import (
	"context"
	"errors"
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"graphsurge/internal/analytics"
	"graphsurge/internal/datagen"
	"graphsurge/internal/graph"
	"graphsurge/internal/schedule"
	"graphsurge/internal/view"
)

// disjointCollection builds a k-view collection whose views are consecutive
// disjoint slices of the graph's edges: every diff replaces the whole view,
// so differential execution is maximally unprofitable and the adaptive
// optimizer reliably splits — the workload speculation and split-heavy
// executor paths need.
func disjointCollection(t testing.TB, k, perView int) *view.Collection {
	t.Helper()
	g := datagen.Temporal(datagen.TemporalConfig{Nodes: 400, Edges: k * perView, Days: 50, Seed: 19})
	g.Name = "dis"
	names := make([]string, k)
	adds := make([][]uint32, k)
	dels := make([][]uint32, k)
	for v := 0; v < k; v++ {
		names[v] = fmt.Sprintf("s%d", v)
		for e := v * perView; e < (v+1)*perView; e++ {
			adds[v] = append(adds[v], uint32(e))
			if v > 0 {
				dels[v] = append(dels[v], uint32(e-perView))
			}
		}
	}
	return view.NewCollection("dis-col", g, &view.DiffStream{Names: names, Adds: adds, Dels: dels})
}

// TestSeedCacheOutOfOrderDispatch pins the scan/dispatch decoupling: taking
// a late segment first builds and retains the seeds of the earlier segment
// starts the scan passes, and handing them out later still yields exactly
// the views an in-order scan produces.
func TestSeedCacheOutOfOrderDispatch(t *testing.T) {
	stream := &view.DiffStream{
		Names: []string{"a", "b", "c", "d"},
		Adds:  [][]uint32{{0, 2, 4}, {6}, {1}, {3}},
		Dels:  [][]uint32{nil, {0}, {6}, {2}},
	}
	inOrder := func(tt int) []uint32 {
		ss := newSeedScan(stream, 8, stream.ViewSizes())
		ss.advance(tt)
		return ss.at(tt)
	}
	// Indexes double as sources, so the batch columns mirror the index list.
	mat := func(idxs []uint32) *graph.EdgeBatch {
		return graph.MakeEdgeBatch(len(idxs), func(i int) graph.Triple {
			return graph.Triple{Src: uint64(idxs[i])}
		})
	}
	sc := newSeedCache(newSeedScan(stream, 8, stream.ViewSizes()), staticPlan(Scratch, 4), mat)
	for _, tt := range []int{3, 1, 0, 2} { // LPT-style permutation
		got, _ := sc.take(tt)
		want := inOrder(tt)
		if got.Len() != len(want) {
			t.Fatalf("seed %d: %v, want %v", tt, got.Srcs, want)
		}
		for i := range want {
			if got.Srcs[i] != uint64(want[i]) {
				t.Fatalf("seed %d: %v, want %v", tt, got.Srcs, want)
			}
		}
	}
	if len(sc.built) != 0 {
		t.Fatalf("%d seeds still retained after all were taken", len(sc.built))
	}
}

// TestLPTDeterminism: LPT dispatch must change only scheduling. Results,
// per-view stats sizes and the MaxWork aggregate (deterministic with one
// dataflow worker) match FIFO exactly, at any parallelism.
func TestLPTDeterminism(t *testing.T) {
	col := skewedCollection(t, 8, 41)
	base, err := RunCollection(col, analytics.WCC{}, RunOptions{Mode: Scratch, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{1, 4} {
		res, err := RunCollection(col, analytics.WCC{}, RunOptions{
			Mode: Scratch, Parallelism: par, Schedule: schedule.LPT,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.MaxWork() != base.MaxWork() {
			t.Fatalf("p=%d: LPT MaxWork %d != FIFO %d", par, res.MaxWork(), base.MaxWork())
		}
		got, want := res.FinalResults(), base.FinalResults()
		if len(got) != len(want) {
			t.Fatalf("p=%d: %d results, want %d", par, len(got), len(want))
		}
		for kv, d := range want {
			if got[kv] != d {
				t.Fatalf("p=%d: result %+v = %d, want %d", par, kv, got[kv], d)
			}
		}
		for i := range res.Stats {
			if res.Stats[i].ViewSize != base.Stats[i].ViewSize || res.Stats[i].Index != i {
				t.Fatalf("p=%d: stats[%d] corrupted under LPT: %+v", par, i, res.Stats[i])
			}
		}
		// Segment stats still tile the collection in order.
		next := 0
		for _, seg := range res.Segments {
			if seg.Start != next {
				t.Fatalf("p=%d: segments out of order: %+v", par, res.Segments)
			}
			next = seg.End
		}
	}
}

// skewedCollection builds a scratch-friendly collection with one view ~10x
// the rest, the shape where LPT beats FIFO dispatch.
func skewedCollection(t testing.TB, k int, seed int64) *view.Collection {
	t.Helper()
	small := 300
	g := datagen.Temporal(datagen.TemporalConfig{Nodes: 500, Edges: (k - 1 + 10) * small, Days: 50, Seed: seed})
	g.Name = "skew"
	names := make([]string, k)
	adds := make([][]uint32, k)
	dels := make([][]uint32, k)
	next := 0
	for v := 0; v < k; v++ {
		n := small
		if v == k-1 {
			n = 10 * small // the straggler view, last in collection order
		}
		names[v] = fmt.Sprintf("v%d", v)
		for e := next; e < next+n; e++ {
			adds[v] = append(adds[v], uint32(e))
		}
		for _, prev := range adds[v1(v)] {
			if v > 0 {
				dels[v] = append(dels[v], prev)
			}
		}
		next += n
	}
	return view.NewCollection("skew-col", g, &view.DiffStream{Names: names, Adds: adds, Dels: dels})
}

func v1(v int) int {
	if v == 0 {
		return 0
	}
	return v - 1
}

// TestEngineEstimatorWarmsAcrossRuns: the engine persists a cost estimator
// per (computation, workers); after one run its models are warm, so a later
// run's LPT ordering is driven by predicted seconds, not the size fallback.
func TestEngineEstimatorWarmsAcrossRuns(t *testing.T) {
	col := skewedCollection(t, 6, 43)
	e := engineWithCollection(t, Options{}, col)
	if _, err := e.RunCollection(context.Background(), col.Name, analytics.WCC{}, RunOptions{Mode: Scratch}); err != nil {
		t.Fatal(err)
	}
	var est *schedule.Estimator
	for _, en := range e.pools {
		est = en.est
	}
	if est == nil {
		t.Fatal("no estimator persisted")
	}
	s, _ := est.Observations()
	if s != col.Stream.NumViews() {
		t.Fatalf("estimator saw %d scratch observations, want %d", s, col.Stream.NumViews())
	}
	if _, modeled := est.SegmentCost(100, nil); !modeled {
		t.Fatal("estimator still cold after a full run")
	}
	// A second LPT run consumes the warm estimator and stays correct.
	res, err := e.RunCollection(context.Background(), col.Name, analytics.WCC{}, RunOptions{
		Mode: Scratch, Parallelism: 4, Schedule: schedule.LPT,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.FinalResults()) == 0 {
		t.Fatal("no results from warm-estimator LPT run")
	}
}

// TestSpeculativeAdaptive drives the speculation lifecycle on a collection
// that splits at every batch boundary: results must match the sequential
// baseline exactly, committed speculations must be marked on their
// segments, and on this split-heavy shape at least one speculation must
// both launch and hit.
func TestSpeculativeAdaptive(t *testing.T) {
	col := disjointCollection(t, 12, 400)
	base, err := RunCollection(col, analytics.WCC{}, RunOptions{Mode: Adaptive, Parallelism: 1, BatchSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunCollection(col, analytics.WCC{}, RunOptions{
		Mode: Adaptive, Parallelism: 4, BatchSize: 2, Speculate: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	got, want := res.FinalResults(), base.FinalResults()
	if len(got) != len(want) {
		t.Fatalf("%d results with speculation, baseline %d", len(got), len(want))
	}
	for kv, d := range want {
		if got[kv] != d {
			t.Fatalf("speculative result %+v = %d, baseline %d", kv, got[kv], d)
		}
	}
	specSegs := 0
	for _, seg := range res.Segments {
		if seg.Speculative {
			specSegs++
		}
	}
	if specSegs != res.SpecHits {
		t.Fatalf("%d speculative segments but %d hits", specSegs, res.SpecHits)
	}
	if res.SpecHits == 0 {
		t.Fatalf("no speculative hits on a split-every-batch collection (misses: %d, splits: %d)",
			res.SpecMisses, res.Splits)
	}
	// Per-view stats are complete, including speculatively executed seeds.
	for i, st := range res.Stats {
		if st.Index != i || st.Duration <= 0 || st.OutputDiffs <= 0 {
			t.Fatalf("stats[%d] not recorded: %+v", i, st)
		}
	}
}

// failComp injects pool-acquire failures: runner construction succeeds
// `builds` times and fails afterwards, and every built runner refuses to
// reset, so once the budget is spent an idle replica cannot be recycled
// either — Acquire deterministically errors from then on.
type failComp struct {
	builds *int32
}

func (failComp) Name() string                 { return "failing" }
func (c failComp) Build(b *analytics.Builder) { analytics.WCC{}.Build(b) }
func (c failComp) NewRunner(workers int) (analytics.Runner, error) {
	if atomic.AddInt32(c.builds, -1) < 0 {
		return nil, errors.New("injected build failure")
	}
	inst, err := analytics.NewInstance(c, workers)
	if err != nil {
		return nil, err
	}
	return failRunner{inst}, nil
}

// failRunner refuses to reset, forcing the pool down the rebuild path.
type failRunner struct {
	*analytics.Instance
}

func (failRunner) Reset() error { return errors.New("injected reset failure") }

// settleGoroutines waits for the goroutine count to drop back to the base,
// failing the test if executor goroutines leaked.
func settleGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d running, base %d", runtime.NumGoroutine(), base)
}

// TestRunStaticAcquireFailure: a mid-plan Acquire failure must surface the
// injected error, drain all dispatched segments, release every replica slot
// and leak no goroutine — in FIFO and LPT dispatch order.
func TestRunStaticAcquireFailure(t *testing.T) {
	col := randomCollection(t, 6, 23)
	for _, policy := range []schedule.Policy{schedule.FIFO, schedule.LPT} {
		base := runtime.NumGoroutine()
		builds := int32(2)
		comp := failComp{builds: &builds}
		pool := analytics.NewPool(comp, 1, 2)
		_, err := runCollection(context.Background(), col, comp, RunOptions{
			Mode: Scratch, Workers: 1, Parallelism: 2, Schedule: policy,
		}, pool)
		if err == nil {
			t.Fatalf("%v: expected injected failure, got nil", policy)
		}
		if pool.Live() != 0 {
			t.Fatalf("%v: %d replica slots leaked", policy, pool.Live())
		}
		settleGoroutines(t, base)
	}
}

// TestRunAdaptiveAcquireFailure: an Acquire failure at an adaptive split
// exercises the fail drain — already-dispatched segments finish, the error
// surfaces, and neither slots nor goroutines leak. The inline case
// (Parallelism=1) guarantees splits because every decision sees all
// observations; the parallel case uses speculation's paced planner for the
// same reason, and additionally drains async segments and resolves the
// outstanding speculation on the way out. (An unpaced parallel planner
// decides with cold models and never splits, so it cannot reach a failing
// acquire — there is nothing to test there.)
func TestRunAdaptiveAcquireFailure(t *testing.T) {
	col := disjointCollection(t, 8, 300)
	for _, c := range []struct {
		par       int
		speculate bool
	}{{1, false}, {2, true}} {
		name := fmt.Sprintf("p=%d/speculate=%v", c.par, c.speculate)
		base := runtime.NumGoroutine()
		builds := int32(1)
		comp := failComp{builds: &builds}
		pool := analytics.NewPool(comp, 1, c.par)
		_, err := runCollection(context.Background(), col, comp, RunOptions{
			Mode: Adaptive, Workers: 1, Parallelism: c.par, BatchSize: 2, Speculate: c.speculate,
		}, pool)
		if err == nil {
			t.Fatalf("%s: no error despite acquire failures at splits", name)
		}
		if pool.Live() != 0 {
			t.Fatalf("%s: %d replica slots leaked", name, pool.Live())
		}
		settleGoroutines(t, base)
	}
}

// TestConcurrentViewLoadSharesOneObject: concurrent disk-fallback misses on
// one view must converge on a single cached object (the double-checked cache
// fill), not clobber each other with distinct loads.
func TestConcurrentViewLoadSharesOneObject(t *testing.T) {
	dir := t.TempDir()
	e1, err := NewEngine(Options{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	g := datagen.Temporal(datagen.TemporalConfig{Nodes: 50, Edges: 400, Days: 20, Seed: 3})
	g.Name = "cg"
	if err := e1.AddGraph(g); err != nil {
		t.Fatal(err)
	}
	if _, err := e1.Execute("create view half on cg edges where ts < 10"); err != nil {
		t.Fatal(err)
	}

	e2, err := NewEngine(Options{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	const loaders = 8
	views := make([]*view.Filtered, loaders)
	var wg sync.WaitGroup
	for i := 0; i < loaders; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			views[i], _ = e2.View("half")
		}(i)
	}
	wg.Wait()
	for i, v := range views {
		if v == nil {
			t.Fatalf("loader %d got no view", i)
		}
		if v != views[0] {
			t.Fatalf("loader %d got a distinct object: cache fill clobbered", i)
		}
	}
}

// TestViewOverPersistedViewAfterRestart is the resolveTarget regression
// test: with a data directory, a view persisted by one engine must be a
// valid `create view ... on <view>` target in a fresh engine over the same
// directory — resolution goes through the disk fallback, not just the
// in-memory catalog.
func TestViewOverPersistedViewAfterRestart(t *testing.T) {
	dir := t.TempDir()
	e1, err := NewEngine(Options{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	g := datagen.Temporal(datagen.TemporalConfig{Nodes: 100, Edges: 800, Days: 40, Seed: 11})
	g.Name = "rg"
	if err := e1.AddGraph(g); err != nil {
		t.Fatal(err)
	}
	if _, err := e1.Execute("create view early on rg edges where ts < 20"); err != nil {
		t.Fatal(err)
	}

	// Restart: fresh engine, same data directory, view only on disk.
	e2, err := NewEngine(Options{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	out, err := e2.Execute("create view early-short on early edges where duration <= 10")
	if err != nil {
		t.Fatalf("view-over-view after restart: %v", err)
	}
	if len(out) != 1 {
		t.Fatalf("%d statements executed", len(out))
	}
	derived, ok := e2.View("early-short")
	if !ok {
		t.Fatal("derived view not materialized")
	}
	base, _ := e2.View("early")
	if derived.NumEdges() == 0 || derived.NumEdges() > base.NumEdges() {
		t.Fatalf("derived view has %d edges, base %d", derived.NumEdges(), base.NumEdges())
	}
	// Collections over persisted views restart too.
	if _, err := e2.Execute("create view collection cc on early [a: duration <= 5], [b: duration <= 30]"); err != nil {
		t.Fatalf("collection over persisted view after restart: %v", err)
	}
	// A name that is truly neither still says so.
	if _, err := e2.Execute("create view x on nothing edges where ts < 5"); err == nil {
		t.Fatal("expected error for unknown target")
	}
}

// TestCorruptViewStoreErrorsAreDistinct pins the load-error satellite: a
// corrupt persisted view must surface the decode failure, not dissolve into
// "not found" — and resolveTarget must report it rather than claiming the
// name is neither a graph nor a view.
func TestCorruptViewStoreErrorsAreDistinct(t *testing.T) {
	dir := t.TempDir()
	e, err := NewEngine(Options{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	g := datagen.Temporal(datagen.TemporalConfig{Nodes: 40, Edges: 200, Days: 10, Seed: 7})
	g.Name = "sg"
	if err := e.AddGraph(g); err != nil {
		t.Fatal(err)
	}
	if err := writeFile(dir+"/broken.view.gob", []byte("not a gob stream")); err != nil {
		t.Fatal(err)
	}
	if err := writeFile(dir+"/broken.collection.gob", []byte("also not a gob")); err != nil {
		t.Fatal(err)
	}

	_, err = e.LookupView("broken")
	if err == nil {
		t.Fatal("corrupt view loaded")
	}
	if errors.Is(err, ErrNotFound) {
		t.Fatalf("corrupt view reported as not-found: %v", err)
	}
	_, err = e.LookupCollection("broken")
	if err == nil || errors.Is(err, ErrNotFound) {
		t.Fatalf("corrupt collection error: %v", err)
	}
	// Absence is still ErrNotFound.
	if _, err := e.LookupView("missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing view error: %v", err)
	}
	if _, err := e.LookupCollection("missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing collection error: %v", err)
	}
	// resolveTarget surfaces the load failure instead of "neither a graph
	// nor a view".
	if _, err := e.Execute("create view v on broken edges where ts < 5"); err == nil {
		t.Fatal("create view over corrupt target succeeded")
	} else if errors.Is(err, ErrNotFound) {
		t.Fatalf("corrupt target misreported: %v", err)
	}
	// RunCollection reports the distinct error too.
	if _, err := e.RunCollection(context.Background(), "broken", analytics.WCC{}, RunOptions{}); err == nil || errors.Is(err, ErrNotFound) {
		t.Fatalf("RunCollection on corrupt collection: %v", err)
	}
}

func writeFile(path string, data []byte) error { return os.WriteFile(path, data, 0o644) }

// TestSlashyGraphNameStillResolves pins the review fix on LookupView's
// error classification: a *graph* whose name the view store refuses (path
// separators) must still resolve as a statement target on an engine with a
// data directory — an invalid view name means "no such view", never a load
// failure that aborts the graph-store fallback.
func TestSlashyGraphNameStillResolves(t *testing.T) {
	dir := t.TempDir()
	// The graph store persists to <name>.graph.gob, so the nested directory
	// must exist for a slashy graph name to register at all.
	if err := os.MkdirAll(dir+"/team", 0o755); err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(Options{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	g := datagen.Temporal(datagen.TemporalConfig{Nodes: 30, Edges: 100, Days: 10, Seed: 5})
	g.Name = "team/graph"
	if err := e.AddGraph(g); err != nil {
		t.Fatal(err)
	}
	resolved, fv, err := e.resolveTarget("team/graph")
	if err != nil {
		t.Fatalf("slashy graph name no longer resolves: %v", err)
	}
	if fv != nil || resolved != g {
		t.Fatalf("resolved %v, %v", resolved, fv)
	}
	if _, err := e.LookupView("../escape"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("invalid view name not classified as absence: %v", err)
	}
}

// TestAddCollectionPersistFailureLeavesNoPhantom: a failed persist must not
// leave the collection registered in memory.
func TestAddCollectionPersistFailureLeavesNoPhantom(t *testing.T) {
	e, err := NewEngine(Options{DataDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	col := randomCollection(t, 2, 3)
	col.Name = "a/b" // the view store rejects it
	if err := e.AddCollection(col); err == nil {
		t.Fatal("AddCollection accepted an unpersistable name")
	}
	e.mu.RLock()
	_, registered := e.collections["a/b"]
	e.mu.RUnlock()
	if registered {
		t.Fatal("phantom collection registered despite persist failure")
	}
}
