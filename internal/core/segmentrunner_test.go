package core

import (
	"context"
	"reflect"
	"testing"
	"time"

	"graphsurge/internal/analytics"
	"graphsurge/internal/graph"
	"graphsurge/internal/splitting"
)

// runViaShards executes a collection by slicing it into SegmentSpec shards
// and running every shard through a SegmentRunner — the cluster dispatch
// path without any wire in between.
func runViaShards(t *testing.T, e *Engine, colName string, mode ExecMode) *RunResult {
	t.Helper()
	col, err := e.LookupCollection(colName)
	if err != nil {
		t.Fatal(err)
	}
	spec, ok := analytics.SpecOf(analytics.WCC{})
	if !ok {
		t.Fatal("no wire spec for WCC")
	}
	plan := StaticPlan(mode, col.Stream.NumViews())
	var outcomes []*SegmentOutcome
	err = ForEachSegmentSpec(col, spec, RunOptions{Workers: 1}, plan, func(i int, sp *SegmentSpec) error {
		if err := sp.Validate(); err != nil {
			return err
		}
		out, err := e.RunSegment(context.Background(), sp)
		if err != nil {
			return err
		}
		outcomes = append(outcomes, out)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := MergeSegmentOutcomes("wcc", col.Name, mode, plan, outcomes, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestSegmentShardsMatchLocalRun: slicing a collection into self-contained
// shards, executing each via Engine.RunSegment and merging must reproduce
// the local executor exactly — results, per-view stats up to timing, and
// the aggregated work counters.
func TestSegmentShardsMatchLocalRun(t *testing.T) {
	col := randomCollection(t, 8, 51)
	e := engineWithCollection(t, Options{}, col)
	for _, mode := range []ExecMode{Scratch, DiffOnly} {
		local, err := e.RunCollection(context.Background(), col.Name, analytics.WCC{}, RunOptions{Mode: mode})
		if err != nil {
			t.Fatal(err)
		}
		sharded := runViaShards(t, e, col.Name, mode)
		if !reflect.DeepEqual(local.FinalResults(), sharded.FinalResults()) {
			t.Fatalf("%v: final results diverge", mode)
		}
		if len(local.Stats) != len(sharded.Stats) {
			t.Fatalf("%v: %d vs %d views", mode, len(local.Stats), len(sharded.Stats))
		}
		for i := range local.Stats {
			l, s := local.Stats[i], sharded.Stats[i]
			l.Duration, s.Duration = 0, 0
			if !reflect.DeepEqual(l, s) {
				t.Fatalf("%v view %d:\nlocal %+v\nshard %+v", mode, i, l, s)
			}
		}
		if local.MaxWork() != sharded.MaxWork() {
			t.Fatalf("%v: MaxWork %d vs %d", mode, local.MaxWork(), sharded.MaxWork())
		}
		if local.Splits != sharded.Splits {
			t.Fatalf("%v: splits %d vs %d", mode, local.Splits, sharded.Splits)
		}
	}
}

// TestRunSegmentReusesPool: consecutive shards for the same computation on
// one engine recycle warm replicas instead of rebuilding dataflows — the
// property that makes a long-lived worker process cheap per job.
func TestRunSegmentReusesPool(t *testing.T) {
	col := randomCollection(t, 4, 53)
	e := engineWithCollection(t, Options{}, col)
	runViaShards(t, e, col.Name, Scratch)
	for _, ps := range e.PoolStats() {
		if ps.Built != 1 {
			t.Fatalf("%d dataflows built for %d sequential shards, want 1 (reused %d)",
				ps.Built, col.Stream.NumViews(), ps.Reused)
		}
		if ps.Reused != col.Stream.NumViews()-1 {
			t.Fatalf("%d shards served by reset, want %d", ps.Reused, col.Stream.NumViews()-1)
		}
	}
}

// TestSegmentSpecValidate pins the refusal of inconsistent shards: bad
// ranges and per-view slices that disagree with the range must error before
// any dataflow is touched, and RunSegment must enforce it.
func TestSegmentSpecValidate(t *testing.T) {
	good := func() *SegmentSpec {
		return &SegmentSpec{
			Comp:  analytics.Spec{Algorithm: "wcc"},
			Start: 2, End: 4,
			Names:     []string{"a", "b"},
			Modes:     make([]splitting.Mode, 2),
			ViewSizes: []int{1, 2},
			DiffSizes: []int{1, 1},
			Adds:      make([]*graph.EdgeBatch, 1),
			Dels:      make([]*graph.EdgeBatch, 1),
		}
	}
	if err := good().Validate(); err != nil {
		t.Fatalf("consistent spec refused: %v", err)
	}
	mutations := map[string]func(*SegmentSpec){
		"empty range":    func(s *SegmentSpec) { s.End = s.Start },
		"negative start": func(s *SegmentSpec) { s.Start = -1 },
		"short names":    func(s *SegmentSpec) { s.Names = s.Names[:1] },
		"short modes":    func(s *SegmentSpec) { s.Modes = s.Modes[:1] },
		"short sizes":    func(s *SegmentSpec) { s.ViewSizes = nil },
		"short diffs":    func(s *SegmentSpec) { s.DiffSizes = nil },
		"short adds":     func(s *SegmentSpec) { s.Adds = nil },
		"extra dels":     func(s *SegmentSpec) { s.Dels = append(s.Dels, nil) },
	}
	e, err := NewEngine(Options{})
	if err != nil {
		t.Fatal(err)
	}
	for name, mutate := range mutations {
		sp := good()
		mutate(sp)
		if err := sp.Validate(); err == nil {
			t.Fatalf("%s: validated", name)
		}
		if _, err := e.RunSegment(context.Background(), sp); err == nil {
			t.Fatalf("%s: RunSegment accepted it", name)
		}
	}
}

// TestMergeRefusesBadCoverage: a lost or duplicated shard outcome is a
// dispatcher bug that must surface as an error, never as silent wrong
// results.
func TestMergeRefusesBadCoverage(t *testing.T) {
	col := randomCollection(t, 4, 57)
	e := engineWithCollection(t, Options{}, col)
	spec, _ := analytics.SpecOf(analytics.WCC{})
	plan := StaticPlan(Scratch, col.Stream.NumViews())
	var outcomes []*SegmentOutcome
	err := ForEachSegmentSpec(col, spec, RunOptions{Workers: 1}, plan, func(i int, sp *SegmentSpec) error {
		out, err := e.RunSegment(context.Background(), sp)
		if err != nil {
			return err
		}
		outcomes = append(outcomes, out)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := MergeSegmentOutcomes("wcc", col.Name, Scratch, plan, outcomes[1:], 0); err == nil {
		t.Fatal("merge accepted a missing shard")
	}
	if _, err := MergeSegmentOutcomes("wcc", col.Name, Scratch, plan, append(outcomes, outcomes[0]), 0); err == nil {
		t.Fatal("merge accepted a duplicated shard")
	}
	if _, err := MergeSegmentOutcomes("wcc", col.Name, Scratch, plan, outcomes, 0); err != nil {
		t.Fatalf("merge refused exact coverage: %v", err)
	}
}
