package core

import (
	"fmt"
	"testing"

	"graphsurge/internal/analytics"
	"graphsurge/internal/datagen"
	"graphsurge/internal/gvdl"
	"graphsurge/internal/view"
)

// mixedCollection builds a collection with alternating similar and
// dissimilar stretches — the workload where split placement matters.
func mixedCollection(b *testing.B) *view.Collection {
	b.Helper()
	g := datagen.Temporal(datagen.TemporalConfig{Nodes: 800, Edges: 8000, Days: 200, Seed: 11})
	g.Name = "t"
	dayCol, _ := g.EdgeProps.ColumnIndex("ts")
	days := g.EdgeProps.Cols[dayCol].Ints
	// Three disjoint eras, each expanded in four steps: expansions are
	// similar, era boundaries are natural split points (like Caut).
	var names []string
	var preds []gvdl.EdgePredicate
	for era := 0; era < 3; era++ {
		lo := int64(era * 66)
		for step := 1; step <= 4; step++ {
			hi := lo + int64(step*16)
			names = append(names, fmt.Sprintf("e%d-%d", era, step))
			preds = append(preds, func(i int) bool { return days[i] >= lo && days[i] < hi })
		}
	}
	col, err := view.MaterializeFromPredicates("mixed", g, names, preds, view.Options{})
	if err != nil {
		b.Fatal(err)
	}
	return col
}

// BenchmarkBatchSizeAblation quantifies the splitting optimizer's batch
// parameter ℓ (paper §5 uses 10): per-view decisions (ℓ=1) versus batched
// ones on a collection with natural split points.
func BenchmarkBatchSizeAblation(b *testing.B) {
	col := mixedCollection(b)
	for _, batch := range []int{1, 4, 10} {
		b.Run(fmt.Sprintf("l-%d", batch), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := RunCollection(col, analytics.WCC{}, RunOptions{Mode: Adaptive, BatchSize: batch})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.Splits), "splits")
			}
		})
	}
}

// BenchmarkModeAblation runs the same mixed collection under all three
// execution strategies, the micro version of Table 3.
func BenchmarkModeAblation(b *testing.B) {
	col := mixedCollection(b)
	for _, mode := range []ExecMode{DiffOnly, Scratch, Adaptive} {
		b.Run(mode.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := RunCollection(col, analytics.WCC{}, RunOptions{Mode: mode}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
