package core

import (
	"context"
	"fmt"
	"testing"

	"graphsurge/internal/analytics"
	"graphsurge/internal/datagen"
	"graphsurge/internal/splitting"
	"graphsurge/internal/view"
)

func newTestEngine(t *testing.T) *Engine {
	t.Helper()
	e, err := NewEngine(Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	g := datagen.Temporal(datagen.TemporalConfig{Nodes: 200, Edges: 2000, Days: 100, Seed: 7})
	g.Name = "so"
	if err := e.AddGraph(g); err != nil {
		t.Fatal(err)
	}
	return e
}

func TestExecuteFilteredViewAndViewOverView(t *testing.T) {
	e := newTestEngine(t)
	out, err := e.Execute(`create view early on so edges where ts < 50
create view early-short on early edges where duration <= 10`)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("out = %v", out)
	}
	early, ok := e.View("early")
	if !ok {
		t.Fatal("view early missing")
	}
	short, ok := e.View("early-short")
	if !ok {
		t.Fatal("view early-short missing")
	}
	if short.NumEdges() >= early.NumEdges() || short.NumEdges() == 0 {
		t.Fatalf("early=%d early-short=%d", early.NumEdges(), short.NumEdges())
	}
	// Every edge of the nested view satisfies both predicates.
	g, _ := e.Graph("so")
	tsCol, _ := g.EdgeProps.ColumnIndex("ts")
	durCol, _ := g.EdgeProps.ColumnIndex("duration")
	for _, idx := range short.Edges {
		if g.EdgeProps.Cols[tsCol].Ints[idx] >= 50 || g.EdgeProps.Cols[durCol].Ints[idx] > 10 {
			t.Fatalf("edge %d violates nested predicates", idx)
		}
	}
}

func TestExecuteCollectionAndRun(t *testing.T) {
	e := newTestEngine(t)
	src := "create view collection hist on so "
	for i := 1; i <= 5; i++ {
		if i > 1 {
			src += ", "
		}
		src += fmt.Sprintf("[w%d: ts < %d]", i, i*20)
	}
	if _, err := e.Execute(src); err != nil {
		t.Fatal(err)
	}
	col, ok := e.Collection("hist")
	if !ok {
		t.Fatal("collection missing")
	}
	if col.Stream.NumViews() != 5 {
		t.Fatal("views")
	}

	res, err := e.RunCollection(context.Background(), "hist", analytics.WCC{}, RunOptions{Mode: DiffOnly})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stats) != 5 || res.Total <= 0 {
		t.Fatalf("stats: %+v", res.Stats)
	}
	if res.IterCapHit() {
		t.Fatal("iteration cap hit")
	}
	if len(res.FinalResults()) == 0 {
		t.Fatal("no final results")
	}
	if _, err := e.RunCollection(context.Background(), "nope", analytics.WCC{}, RunOptions{}); err == nil {
		t.Fatal("expected error for unknown collection")
	}
}

func TestExecuteAggregateView(t *testing.T) {
	e, err := NewEngine(Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	g := datagen.Social(datagen.SocialConfig{Nodes: 300, Edges: 1500, Locations: 16, Seed: 8})
	g.Name = "tw"
	if err := e.AddGraph(g); err != nil {
		t.Fatal(err)
	}
	out, err := e.Execute(`create view cities on tw
nodes group by city aggregate count(*)
edges aggregate total-w: sum(w)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		t.Fatal("statement count")
	}
	av, ok := e.AggView("cities")
	if !ok {
		t.Fatal("aggregate view missing")
	}
	if len(av.SuperNodes) != 16 {
		t.Fatalf("%d super nodes", len(av.SuperNodes))
	}
	total := int64(0)
	for _, sn := range av.SuperNodes {
		total += sn.Size
	}
	if total != 300 {
		t.Fatalf("group sizes sum to %d", total)
	}
}

func TestExecuteErrors(t *testing.T) {
	e := newTestEngine(t)
	bad := []string{
		"create view v on nope edges where ts < 5",
		"create view v on so edges where nosuch = 1",
		"garbage",
	}
	for _, src := range bad {
		if _, err := e.Execute(src); err == nil {
			t.Fatalf("expected error for %q", src)
		}
	}
	// Aggregate views over filtered views are rejected.
	if _, err := e.Execute("create view fv on so edges where ts < 50"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Execute("create view agg on fv nodes group by city aggregate count(*)"); err == nil {
		t.Fatal("expected error for aggregate over filtered view")
	}
}

// TestModesAgreeOnResults is the executor-level equivalence check: diff-only,
// scratch and adaptive all produce identical final results.
func TestModesAgreeOnResults(t *testing.T) {
	e := newTestEngine(t)
	src := "create view collection c on so [a: ts < 30], [b: ts < 55], [c: duration <= 20], [d: ts < 90]"
	if _, err := e.Execute(src); err != nil {
		t.Fatal(err)
	}
	col, _ := e.Collection("c")

	var results []map[analytics.VertexValue]int64
	for _, mode := range []ExecMode{DiffOnly, Scratch, Adaptive} {
		res, err := RunCollection(col, analytics.SSSP{Source: 0}, RunOptions{Mode: mode, WeightProp: "duration", BatchSize: 2})
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, res.FinalResults())
		if mode == Scratch && res.Splits != col.Stream.NumViews()-1 {
			t.Fatalf("scratch mode: %d splits", res.Splits)
		}
		if mode == DiffOnly && res.Splits != 0 {
			t.Fatalf("diff-only mode: %d splits", res.Splits)
		}
	}
	for i := 1; i < len(results); i++ {
		if len(results[i]) != len(results[0]) {
			t.Fatalf("mode %d: %d results vs %d", i, len(results[i]), len(results[0]))
		}
		for k, v := range results[0] {
			if results[i][k] != v {
				t.Fatalf("mode %d: %+v = %d, want %d", i, k, results[i][k], v)
			}
		}
	}
}

func TestAdaptiveBootstrap(t *testing.T) {
	e := newTestEngine(t)
	src := "create view collection c on so [a: ts < 20], [b: ts < 40], [c: ts < 60], [d: ts < 80]"
	if _, err := e.Execute(src); err != nil {
		t.Fatal(err)
	}
	col, _ := e.Collection("c")
	res, err := RunCollection(col, analytics.BFS{Source: 0}, RunOptions{Mode: Adaptive, BatchSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats[0].Mode != splitting.ModeScratch {
		t.Fatal("view 0 should be scratch")
	}
	if res.Stats[1].Mode != splitting.ModeDiff {
		t.Fatal("view 1 should be diff (bootstrap)")
	}
}

func TestRunView(t *testing.T) {
	e := newTestEngine(t)
	if _, err := e.Execute("create view early on so edges where ts < 50"); err != nil {
		t.Fatal(err)
	}
	fv, _ := e.View("early")
	results, dur, err := RunView(context.Background(), fv, analytics.Degree{}, 1, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(results) == 0 || dur <= 0 {
		t.Fatal("no results")
	}
	if _, _, err := RunView(context.Background(), fv, analytics.Degree{}, 1, "nope"); err == nil {
		t.Fatal("expected weight property error")
	}
}

func TestViewStatsShape(t *testing.T) {
	e := newTestEngine(t)
	if _, err := e.Execute("create view collection c on so [a: ts < 30], [b: ts < 60]"); err != nil {
		t.Fatal(err)
	}
	col, _ := e.Collection("c")
	res, err := RunCollection(col, analytics.WCC{}, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sizes := col.Stream.ViewSizes()
	for i, st := range res.Stats {
		if st.ViewSize != sizes[i] || st.DiffSize != col.Stream.DiffSize(i) {
			t.Fatalf("stats[%d] = %+v", i, st)
		}
		if st.OutputDiffs <= 0 {
			t.Fatalf("stats[%d]: no output diffs", i)
		}
	}
	if res.MaxWork() <= 0 {
		t.Fatal("no work recorded")
	}
	if res.Mode.String() != "diff-only" {
		t.Fatal("mode string")
	}
}

func TestOrderingModesThroughEngine(t *testing.T) {
	// Engines configured with the ordering optimizer materialize
	// collections with (potentially) fewer diffs but identical view
	// contents.
	for _, mode := range []view.OrderingMode{view.OrderAsWritten, view.OrderOptimized} {
		e, err := NewEngine(Options{Workers: 1, Ordering: mode})
		if err != nil {
			t.Fatal(err)
		}
		g := datagen.Temporal(datagen.TemporalConfig{Nodes: 100, Edges: 800, Days: 50, Seed: 9})
		g.Name = "so"
		if err := e.AddGraph(g); err != nil {
			t.Fatal(err)
		}
		// Deliberately shuffled windows.
		if _, err := e.Execute("create view collection c on so [a: ts < 40], [b: ts < 10], [c: ts < 30], [d: ts < 20]"); err != nil {
			t.Fatal(err)
		}
		col, _ := e.Collection("c")
		res, err := RunCollection(col, analytics.WCC{}, RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.FinalResults()) == 0 {
			t.Fatal("no results")
		}
		if mode == view.OrderOptimized {
			// Nested windows: optimal order is monotone; total diffs must
			// equal the largest view plus the increments.
			if col.Stream.TotalDiffs() >= 2*int64(col.Stream.ViewSizes()[col.Stream.NumViews()-1]) {
				t.Fatalf("ordering optimizer ineffective: %d diffs", col.Stream.TotalDiffs())
			}
		}
	}
}
