package core

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"graphsurge/internal/analytics"
	"graphsurge/internal/datagen"
	"graphsurge/internal/graph"
	"graphsurge/internal/view"
)

// incTestEngine builds an engine with a small temporal graph and a
// four-view collection whose final view excludes some edges, so mutation
// deltas exercise both membership directions.
func incTestEngine(t *testing.T) (*Engine, *graph.Graph) {
	t.Helper()
	e, err := NewEngine(Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	g := datagen.Temporal(datagen.TemporalConfig{Nodes: 120, Edges: 900, Days: 20, Seed: 9})
	g.Name = "dyn"
	if err := e.AddGraph(g); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Execute(
		"create view collection roll on dyn [a: ts < 6], [b: ts < 12], [c: duration <= 30], [d: ts < 18]"); err != nil {
		t.Fatal(err)
	}
	return e, g
}

// randomBatch builds a seeded random mutation batch: nIns inserts with
// random endpoints and properties, nDel deletions of randomly chosen live
// edges (deduplicated by endpoint pair).
func randomBatch(t *testing.T, r *rand.Rand, g *graph.Graph, nIns, nDel int) *graph.MutationBatch {
	t.Helper()
	ins := make([]graph.EdgeInsert, nIns)
	for i := range ins {
		ins[i] = graph.EdgeInsert{
			Src: uint64(r.Intn(g.NumNodes)),
			Dst: uint64(r.Intn(g.NumNodes)),
			Props: map[string]graph.Value{
				"ts":       graph.IntValue(int64(r.Intn(20))),
				"duration": graph.IntValue(int64(1 + r.Intn(60))),
			},
		}
	}
	var live []int
	for i := 0; i < g.NumEdges(); i++ {
		if g.EdgeAlive(i) {
			live = append(live, i)
		}
	}
	seen := map[[2]uint64]bool{}
	var dels []graph.EdgePair
	for len(dels) < nDel && len(live) > 0 {
		i := live[r.Intn(len(live))]
		key := [2]uint64{g.Srcs[i], g.Dsts[i]}
		if seen[key] {
			continue
		}
		seen[key] = true
		dels = append(dels, graph.EdgePair{Src: key[0], Dst: key[1]})
	}
	mb, err := graph.NewMutationBatch(g, ins, dels)
	if err != nil {
		t.Fatal(err)
	}
	return mb
}

// TestIncrementalMatchesScratchAllBuiltins is the dynamic-graph equivalence
// check: over a sequence of randomized mutation batches, an incremental
// re-run on the warm replica produces final results identical to a
// from-scratch run over the maintained collection — for every registered
// built-in algorithm spec. Run under -race in CI.
func TestIncrementalMatchesScratchAllBuiltins(t *testing.T) {
	e, g := incTestEngine(t)
	defer e.Close()
	col, _ := e.Collection("roll")
	ctx := context.Background()

	cases := []struct {
		spec   analytics.Spec
		weight string
	}{
		{analytics.Spec{Algorithm: "wcc"}, ""},
		{analytics.Spec{Algorithm: "bfs", Source: 0}, ""},
		{analytics.Spec{Algorithm: "sssp", Source: 0}, "duration"},
		{analytics.Spec{Algorithm: "pagerank", Iterations: 4}, ""},
		{analytics.Spec{Algorithm: "scc"}, ""},
		{analytics.Spec{Algorithm: "degree"}, ""},
		{analytics.Spec{Algorithm: "mpsp", Pairs: []analytics.Pair{{Src: 0, Dst: 5}, {Src: 3, Dst: 9}}}, "duration"},
	}

	comps := make([]analytics.Computation, len(cases))
	for i, c := range cases {
		comp, err := c.spec.Resolve()
		if err != nil {
			t.Fatal(err)
		}
		comps[i] = comp
		// Cold build: the first incremental run absorbs the whole stream and
		// reports Incremental false.
		res, err := e.RunOn(ctx, col, comp, RunOptions{Incremental: true, WeightProp: c.weight})
		if err != nil {
			t.Fatalf("%s: cold run: %v", c.spec.Algorithm, err)
		}
		if res.Incremental {
			t.Fatalf("%s: cold run reported incremental", c.spec.Algorithm)
		}
		if len(res.Stats) != col.Stream.NumViews() {
			t.Fatalf("%s: cold run stats = %d, want %d", c.spec.Algorithm, len(res.Stats), col.Stream.NumViews())
		}
	}

	r := rand.New(rand.NewSource(41))
	for round := 1; round <= 3; round++ {
		mb := randomBatch(t, r, g, 10, 4)
		ma, err := e.ApplyMutation("dyn", mb)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if ma.Version != uint64(round) {
			t.Fatalf("round %d: version %d", round, ma.Version)
		}
		for i, c := range cases {
			inc, err := e.RunOn(ctx, col, comps[i], RunOptions{Incremental: true, WeightProp: c.weight})
			if err != nil {
				t.Fatalf("round %d %s: incremental: %v", round, c.spec.Algorithm, err)
			}
			if !inc.Incremental {
				t.Fatalf("round %d %s: warm run not incremental", round, c.spec.Algorithm)
			}
			if len(inc.Stats) != 1 || !strings.HasPrefix(inc.Stats[0].Name, "Δv") {
				t.Fatalf("round %d %s: warm stats %+v", round, c.spec.Algorithm, inc.Stats)
			}
			scratch, err := e.RunOn(ctx, col, comps[i], RunOptions{WeightProp: c.weight})
			if err != nil {
				t.Fatalf("round %d %s: scratch: %v", round, c.spec.Algorithm, err)
			}
			if !reflect.DeepEqual(inc.FinalResults(), scratch.FinalResults()) {
				t.Fatalf("round %d %s: incremental results diverge from scratch (%d vs %d vertices)",
					round, c.spec.Algorithm, len(inc.FinalResults()), len(scratch.FinalResults()))
			}
		}
	}
}

// TestIncrementalRunLifecycle pins the replica lifecycle: cold build, an
// idle warm run with nothing pending, delta-sized warm work after a
// mutation, and a cold rebuild after the collection is re-created.
func TestIncrementalRunLifecycle(t *testing.T) {
	e, g := incTestEngine(t)
	defer e.Close()
	col, _ := e.Collection("roll")
	ctx := context.Background()
	comp := analytics.WCC{}

	baseline, err := e.RunOn(ctx, col, comp, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cold, err := e.RunOn(ctx, col, comp, RunOptions{Incremental: true})
	if err != nil {
		t.Fatal(err)
	}
	if cold.Incremental {
		t.Fatal("cold build reported incremental")
	}
	if !reflect.DeepEqual(cold.FinalResults(), baseline.FinalResults()) {
		t.Fatal("cold incremental build diverges from plain run")
	}

	// Nothing pending: the warm run is a no-op with empty stats.
	idle, err := e.RunOn(ctx, col, comp, RunOptions{Incremental: true})
	if err != nil {
		t.Fatal(err)
	}
	if !idle.Incremental || len(idle.Stats) != 0 {
		t.Fatalf("idle warm run: incremental=%v stats=%d", idle.Incremental, len(idle.Stats))
	}
	if !reflect.DeepEqual(idle.FinalResults(), baseline.FinalResults()) {
		t.Fatal("idle warm run changed results")
	}

	// One mutation, one delta: warm stats carry the delta version and the
	// delta's diff size, and results track a fresh run.
	r := rand.New(rand.NewSource(17))
	if _, err := e.ApplyMutation("dyn", randomBatch(t, r, g, 6, 2)); err != nil {
		t.Fatal(err)
	}
	warm, err := e.RunOn(ctx, col, comp, RunOptions{Incremental: true})
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Incremental || len(warm.Stats) != 1 {
		t.Fatalf("warm run: incremental=%v stats=%d", warm.Incremental, len(warm.Stats))
	}
	if warm.Stats[0].Name != "Δv1" {
		t.Fatalf("warm stats name = %q", warm.Stats[0].Name)
	}
	if warm.Stats[0].DiffSize > g.NumEdges() {
		t.Fatalf("warm diff size %d exceeds graph", warm.Stats[0].DiffSize)
	}
	fresh, err := e.RunOn(ctx, col, comp, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(warm.FinalResults(), fresh.FinalResults()) {
		t.Fatal("warm run diverges from fresh run over the maintained collection")
	}

	// Re-creating the collection drops the replica: the next incremental
	// run rebuilds cold instead of serving state for the old object.
	if _, err := e.Execute(
		"create view collection roll on dyn [a: ts < 6], [b: ts < 12], [c: duration <= 30], [d: ts < 18]"); err != nil {
		t.Fatal(err)
	}
	col2, _ := e.Collection("roll")
	rebuilt, err := e.RunOn(ctx, col2, comp, RunOptions{Incremental: true})
	if err != nil {
		t.Fatal(err)
	}
	if rebuilt.Incremental {
		t.Fatal("run after collection re-creation did not rebuild cold")
	}
	if !reflect.DeepEqual(rebuilt.FinalResults(), fresh.FinalResults()) {
		t.Fatal("rebuilt replica diverges")
	}
}

// TestIncrementalRefusals pins the two refusals: unidentifiable
// computations (whose printed identity cannot key a replica) and empty
// collections.
func TestIncrementalRefusals(t *testing.T) {
	e, _ := incTestEngine(t)
	defer e.Close()
	col, _ := e.Collection("roll")
	ctx := context.Background()

	comp := funcComp{weight: func(w int64) int64 { return w }}
	if _, err := e.RunOn(ctx, col, comp, RunOptions{Incremental: true}); err == nil {
		t.Fatal("incremental run accepted an unidentifiable computation")
	}
	// The same computation still runs non-incrementally.
	if _, err := e.RunOn(ctx, col, comp, RunOptions{}); err != nil {
		t.Fatal(err)
	}
}

// TestIncrementalSessionRoutesLocal pins that a RunRequest with Incremental
// set executes on the session's engine even when a remote runner is
// configured — the warm replica state lives on the engine.
func TestIncrementalSessionRoutesLocal(t *testing.T) {
	e, _ := incTestEngine(t)
	defer e.Close()
	sess := e.NewSession()
	refuse := refusingRunner{}
	resp, err := sess.Do(context.Background(), &RunRequest{
		Collection: "roll",
		Algorithm:  analytics.Spec{Algorithm: "degree"},
		Options:    RunOptions{Incremental: true},
		Runner:     refuse,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.(*RunResult).Incremental {
		t.Fatal("first incremental run reported incremental")
	}
}

// refusingRunner fails every run; tests use it to prove a path never
// dispatches to the configured runner.
type refusingRunner struct{}

func (refusingRunner) RunOn(context.Context, *view.Collection, analytics.Computation, RunOptions) (*RunResult, error) {
	return nil, fmt.Errorf("refusingRunner invoked")
}
