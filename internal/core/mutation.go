package core

import (
	"errors"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"

	"graphsurge/internal/aggregate"
	"graphsurge/internal/graph"
	"graphsurge/internal/gvdl"
	"graphsurge/internal/view"
)

// This file is the engine's dynamic-graph path: Engine.ApplyMutation applies
// one transactional mutation batch to a base graph and incrementally
// maintains every materialized artifact over it — filtered views and
// collections re-evaluate their predicates only over the touched edges
// (view.MaintainFiltered/MaintainCollection), aggregate views re-evaluate
// from their retained statements, and each maintained collection's
// final-view membership delta is queued for the incremental run path
// (incremental.go). Mutations are serialized against runs by the engine's
// run barrier: a mutation waits for in-flight runs to drain and blocks new
// ones while it edits streams in place.

// ErrNotMaintainable reports a mutation refused because a materialized
// artifact over the target graph cannot be incrementally maintained — it
// was built programmatically, without retained predicate sources. The graph
// is left unmutated; drop or re-create the artifact through GVDL to
// proceed.
var ErrNotMaintainable = errors.New("core: artifact cannot be maintained incrementally")

// beginMutation admits one mutation: it waits for any other mutation to
// finish, then for in-flight runs to drain (beginRun blocks new runs while
// a mutation holds the flag). Every successful beginMutation is paired with
// an endMutation.
func (e *Engine) beginMutation() error {
	e.runMu.Lock()
	defer e.runMu.Unlock()
	for e.mutating {
		if e.closing {
			return ErrClosing
		}
		e.runDone.Wait()
	}
	if e.closing {
		return ErrClosing
	}
	e.mutating = true
	for e.active > 0 {
		e.runDone.Wait()
	}
	return nil
}

func (e *Engine) endMutation() {
	e.runMu.Lock()
	e.mutating = false
	e.runDone.Broadcast()
	e.runMu.Unlock()
}

// ApplyMutation applies one validated mutation batch to the named base
// graph and incrementally maintains every materialized view, collection and
// aggregate view over it. The batch commits transactionally in the graph
// store (journaled when the engine persists); maintenance then patches each
// artifact in place and re-persists it at the new graph version. Artifacts
// that cannot be maintained refuse the whole mutation with
// ErrNotMaintainable before anything commits.
func (e *Engine) ApplyMutation(graphName string, mb *graph.MutationBatch) (*MutationApplied, error) {
	if err := e.beginMutation(); err != nil {
		return nil, err
	}
	defer e.endMutation()

	g, err := e.store.Graph(graphName)
	if err != nil {
		return nil, err
	}
	// Pull every persisted artifact into the catalog first: an artifact left
	// on disk during maintenance would record the old graph version and fail
	// closed (view.ErrStale) on every later load.
	if err := e.loadAllArtifacts(); err != nil {
		return nil, fmt.Errorf("core: loading artifacts before mutating %s: %w", graphName, err)
	}
	plan, err := e.planMaintenance(g)
	if err != nil {
		return nil, err
	}
	applied, err := e.store.ApplyMutation(graphName, mb)
	if err != nil {
		return nil, err
	}
	maintained, err := e.runMaintenance(g, plan, applied)
	if err != nil {
		// The batch is committed and journaled; what failed is patching or
		// re-persisting an artifact. Memory and disk stay safe — a stale
		// on-disk artifact fails closed at its next load.
		return nil, fmt.Errorf("core: graph %s mutated to version %d, but view maintenance failed: %w",
			graphName, applied.Version, err)
	}
	return &MutationApplied{
		Graph:      graphName,
		Version:    applied.Version,
		Inserted:   applied.Inserted,
		Deleted:    len(applied.Deleted),
		Maintained: maintained,
	}, nil
}

// loadAllArtifacts loads every persisted view and collection in the data
// directory into the engine catalog (idempotent: already-cached names are
// kept). Load failures — corruption, missing base graphs, staleness from a
// mutation the view layer never saw — abort, since maintenance must see the
// complete artifact set to keep it consistent.
func (e *Engine) loadAllArtifacts() error {
	if e.opts.DataDir == "" {
		return nil
	}
	ents, err := os.ReadDir(e.opts.DataDir)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil
		}
		return err
	}
	for _, ent := range ents {
		name := ent.Name()
		switch {
		case strings.HasSuffix(name, ".view.gob"):
			if _, err := e.LookupView(strings.TrimSuffix(name, ".view.gob")); err != nil {
				return err
			}
		case strings.HasSuffix(name, ".collection.gob"):
			if _, err := e.LookupCollection(strings.TrimSuffix(name, ".collection.gob")); err != nil {
				return err
			}
		}
	}
	return nil
}

// maintPlan is the pre-commit maintenance plan for one mutation: every
// artifact over the target graph, with predicates parsed (and compiled once
// against the pre-mutation graph purely to validate them), so the
// post-commit patching phase cannot fail on malformed sources.
type maintPlan struct {
	views     []*view.Filtered // topologically ordered: parents before children
	viewExprs []gvdl.Expr
	cols      []*view.Collection
	colExprs  [][]gvdl.Expr
	aggs      []*gvdl.CreateAggView
}

// planMaintenance collects the artifacts over g and validates that each is
// maintainable. It fails with ErrNotMaintainable — before anything commits
// — when an artifact lacks predicate sources or its parent view is missing.
func (e *Engine) planMaintenance(g *graph.Graph) (*maintPlan, error) {
	e.mu.RLock()
	byName := make(map[string]*view.Filtered)
	for _, v := range e.views {
		if v.Base == g {
			byName[v.Name] = v
		}
	}
	var cols []*view.Collection
	for _, c := range e.collections {
		if c.Graph == g {
			cols = append(cols, c)
		}
	}
	var aggs []*gvdl.CreateAggView
	for name := range e.aggViews {
		if s, ok := e.aggStmts[name]; ok && s.On == g.Name {
			aggs = append(aggs, s)
		}
	}
	e.mu.RUnlock()

	p := &maintPlan{aggs: aggs}

	// Views, parents before children (the On chain), names breaking ties for
	// deterministic maintenance and persistence order.
	depth := func(v *view.Filtered) (int, error) {
		d := 0
		for v.On != "" {
			parent, ok := byName[v.On]
			if !ok {
				return 0, fmt.Errorf("core: view %q is defined over view %q, which is not materialized: %w",
					v.Name, v.On, ErrNotMaintainable)
			}
			v, d = parent, d+1
		}
		return d, nil
	}
	for _, v := range byName {
		p.views = append(p.views, v)
	}
	sort.Slice(p.views, func(i, j int) bool { return p.views[i].Name < p.views[j].Name })
	depths := make(map[string]int, len(p.views))
	for _, v := range p.views {
		d, err := depth(v)
		if err != nil {
			return nil, err
		}
		depths[v.Name] = d
	}
	sort.SliceStable(p.views, func(i, j int) bool { return depths[p.views[i].Name] < depths[p.views[j].Name] })

	for _, v := range p.views {
		if v.PredSrc == "" {
			return nil, fmt.Errorf("core: view %q over graph %s has no retained predicate source: %w",
				v.Name, g.Name, ErrNotMaintainable)
		}
		expr, err := gvdl.ParsePredicate(v.PredSrc)
		if err != nil {
			return nil, fmt.Errorf("core: view %q predicate source: %w", v.Name, err)
		}
		if _, err := gvdl.CompileEdgePredicate(g, expr); err != nil {
			return nil, fmt.Errorf("core: view %q predicate source: %w", v.Name, err)
		}
		p.viewExprs = append(p.viewExprs, expr)
	}

	sort.Slice(cols, func(i, j int) bool { return cols[i].Name < cols[j].Name })
	for _, c := range cols {
		k := c.Stream.NumViews()
		if len(c.PredSrcs) != k {
			return nil, fmt.Errorf("core: collection %q over graph %s has no retained predicate sources: %w",
				c.Name, g.Name, ErrNotMaintainable)
		}
		if c.On != "" {
			if _, ok := byName[c.On]; !ok {
				return nil, fmt.Errorf("core: collection %q is defined over view %q, which is not materialized: %w",
					c.Name, c.On, ErrNotMaintainable)
			}
		}
		exprs := make([]gvdl.Expr, k)
		for ci, src := range c.PredSrcs {
			expr, err := gvdl.ParsePredicate(src)
			if err != nil {
				return nil, fmt.Errorf("core: collection %q view %d predicate source: %w", c.Name, ci, err)
			}
			if _, err := gvdl.CompileEdgePredicate(g, expr); err != nil {
				return nil, fmt.Errorf("core: collection %q view %d predicate source: %w", c.Name, ci, err)
			}
			exprs[ci] = expr
		}
		p.cols = append(p.cols, c)
		p.colExprs = append(p.colExprs, exprs)
	}
	sort.Slice(p.aggs, func(i, j int) bool { return p.aggs[i].Name < p.aggs[j].Name })
	return p, nil
}

// runMaintenance patches every planned artifact for one committed batch.
// Predicates are recompiled here, against the post-mutation graph: compiled
// predicates close over the graph's column slice headers, which appends
// reallocate, so pre-mutation closures must never be evaluated at inserted
// indices. Compilation was validated pre-commit, so it cannot fail now.
func (e *Engine) runMaintenance(g *graph.Graph, p *maintPlan, a graph.Applied) (int, error) {
	maintained := 0
	byName := make(map[string]*view.Filtered, len(p.views))
	for i, v := range p.views {
		pred, err := gvdl.CompileEdgePredicate(g, p.viewExprs[i])
		if err != nil {
			return maintained, fmt.Errorf("recompiling view %q: %w", v.Name, err)
		}
		if v.On != "" {
			// The parent is earlier in topo order, already patched; composing
			// with its membership keeps views-over-views consistent.
			parent := byName[v.On]
			inner := pred
			pred = func(i int) bool { return parent.Contains(uint32(i)) && inner(i) }
		}
		view.MaintainFiltered(v, pred, a)
		byName[v.Name] = v
		if e.opts.DataDir != "" {
			if err := view.SaveFiltered(e.opts.DataDir, v); err != nil {
				return maintained, fmt.Errorf("persisting view %q: %w", v.Name, err)
			}
		}
		maintained++
	}
	for i, c := range p.cols {
		preds := make([]gvdl.EdgePredicate, len(p.colExprs[i]))
		for ci, expr := range p.colExprs[i] {
			pred, err := gvdl.CompileEdgePredicate(g, expr)
			if err != nil {
				return maintained, fmt.Errorf("recompiling collection %q view %d: %w", c.Name, ci, err)
			}
			if c.On != "" {
				parent := byName[c.On]
				inner := pred
				pred = func(i int) bool { return parent.Contains(uint32(i)) && inner(i) }
			}
			preds[ci] = pred
		}
		deltas, err := view.MaintainCollection(c, preds, a)
		if err != nil {
			return maintained, fmt.Errorf("maintaining collection %q: %w", c.Name, err)
		}
		if e.opts.DataDir != "" {
			if err := view.SaveCollection(e.opts.DataDir, c); err != nil {
				return maintained, fmt.Errorf("persisting collection %q: %w", c.Name, err)
			}
		}
		// The final ordered view's membership delta is what an incremental
		// re-run feeds into a warm replica as a new outer version.
		e.queueIncDelta(c, deltas[len(deltas)-1], a.Version)
		maintained++
	}
	for _, stmt := range p.aggs {
		av, err := aggregate.Evaluate(g, stmt, e.opts.Workers)
		if err != nil {
			return maintained, fmt.Errorf("re-evaluating aggregate view %q: %w", stmt.Name, err)
		}
		e.mu.Lock()
		e.aggViews[stmt.Name] = av
		e.mu.Unlock()
		maintained++
	}
	return maintained, nil
}

// applyStmt executes a GVDL apply statement: it validates the edge literals
// into a mutation batch against the target graph's schema and runs the
// batch through ApplyMutation (which takes the mutation barrier itself —
// apply statements are the one executeStmt case not admitted as a run).
func (e *Engine) applyStmt(s *gvdl.ApplyMutation) (gvdl.Result, error) {
	g, err := e.store.Graph(s.On)
	if err != nil {
		if _, verr := e.LookupView(s.On); verr == nil {
			return nil, fmt.Errorf("core: apply targets a base graph; %q is a filtered view", s.On)
		}
		return nil, err
	}
	ins := make([]graph.EdgeInsert, len(s.Inserts))
	for i, el := range s.Inserts {
		props := make(map[string]graph.Value, len(el.Props))
		for _, pl := range el.Props {
			props[pl.Name] = pl.Val
		}
		ins[i] = graph.EdgeInsert{Src: el.Src, Dst: el.Dst, Props: props}
	}
	dels := make([]graph.EdgePair, len(s.Deletes))
	for i, el := range s.Deletes {
		dels[i] = graph.EdgePair{Src: el.Src, Dst: el.Dst}
	}
	mb, err := graph.NewMutationBatch(g, ins, dels)
	if err != nil {
		return nil, err
	}
	ma, err := e.ApplyMutation(s.On, mb)
	if err != nil {
		return nil, err
	}
	return gvdl.GraphMutated{
		Graph:      ma.Graph,
		Version:    ma.Version,
		Inserted:   ma.Inserted,
		Deleted:    ma.Deleted,
		Maintained: ma.Maintained,
	}, nil
}

// Mutate is the typed-request form of ApplyMutation: it converts the wire
// edge changes (JSON property values) into a validated mutation batch
// against the graph's schema and applies it. Session.Do dispatches
// MutateRequest here.
func (e *Engine) Mutate(r *MutateRequest) (*MutationApplied, error) {
	if r.Graph == "" {
		return nil, fmt.Errorf("core: mutate request needs a graph name")
	}
	g, err := e.store.Graph(r.Graph)
	if err != nil {
		return nil, err
	}
	ins := make([]graph.EdgeInsert, len(r.Inserts))
	for i, ec := range r.Inserts {
		props := make(map[string]graph.Value, len(ec.Props))
		for name, raw := range ec.Props {
			v, err := wireValue(raw)
			if err != nil {
				return nil, fmt.Errorf("core: mutate %s: edge %d->%d property %q: %w",
					r.Graph, ec.Src, ec.Dst, name, err)
			}
			props[name] = v
		}
		ins[i] = graph.EdgeInsert{Src: ec.Src, Dst: ec.Dst, Props: props}
	}
	dels := make([]graph.EdgePair, len(r.Deletes))
	for i, ec := range r.Deletes {
		dels[i] = graph.EdgePair{Src: ec.Src, Dst: ec.Dst}
	}
	mb, err := graph.NewMutationBatch(g, ins, dels)
	if err != nil {
		return nil, err
	}
	return e.ApplyMutation(r.Graph, mb)
}

// wireValue converts a decoded JSON property value to a typed graph value.
// JSON numbers arrive as float64, so integer properties additionally demand
// integrality; programmatic callers may pass Go integers or graph.Value
// directly.
func wireValue(raw any) (graph.Value, error) {
	switch x := raw.(type) {
	case graph.Value:
		return x, nil
	case float64:
		if x != math.Trunc(x) || x < math.MinInt64 || x >= math.MaxInt64 {
			return graph.Value{}, fmt.Errorf("value %v is not an integer", x)
		}
		return graph.IntValue(int64(x)), nil
	case int:
		return graph.IntValue(int64(x)), nil
	case int64:
		return graph.IntValue(x), nil
	case string:
		return graph.StringValue(x), nil
	case bool:
		return graph.BoolValue(x), nil
	}
	return graph.Value{}, fmt.Errorf("unsupported property value type %T", raw)
}
