package core

import (
	"context"
	"fmt"
	"testing"

	"graphsurge/internal/analytics"
	"graphsurge/internal/datagen"
	"graphsurge/internal/graph"
	"graphsurge/internal/gvdl"
	"graphsurge/internal/view"
)

// TestCollectionFinalViewMatchesIndividualView is the end-to-end consistency
// check across the whole stack: running a computation differentially over a
// GVDL collection must leave exactly the result that running the same
// computation on the final view alone produces — for every algorithm,
// including the staged SCC and multi-worker execution.
func TestCollectionFinalViewMatchesIndividualView(t *testing.T) {
	e, err := NewEngine(Options{Workers: 2, Ordering: view.OrderAsWritten})
	if err != nil {
		t.Fatal(err)
	}
	g := datagen.Citation(datagen.CitationConfig{
		Papers: 1500, AvgCites: 3, YearFrom: 1990, YearTo: 2020, Seed: 21,
	})
	g.Name = "pc"
	if err := e.AddGraph(g); err != nil {
		t.Fatal(err)
	}
	// A collection whose last view is definable as an individual view too.
	if _, err := e.Execute(`create view collection c on pc
[a: src.year <= 2000 and dst.year <= 2000],
[b: src.authors <= 10 and dst.authors <= 10],
[final: src.year <= 2010 and dst.year <= 2010]
create view final-alone on pc edges where src.year <= 2010 and dst.year <= 2010`); err != nil {
		t.Fatal(err)
	}
	fv, _ := e.View("final-alone")

	comps := []analytics.Computation{
		analytics.WCC{},
		analytics.BFS{Source: 0},
		analytics.SSSP{Source: 0},
		analytics.PageRank{Iterations: 5},
		&analytics.SCC{Phases: 8},
		analytics.MPSP{Pairs: []analytics.Pair{{Src: 0, Dst: 99}, {Src: 1, Dst: 500}}},
		analytics.Degree{},
	}
	for _, comp := range comps {
		comp := comp
		t.Run(comp.Name(), func(t *testing.T) {
			res, err := e.RunCollection(context.Background(), "c", comp, RunOptions{Mode: DiffOnly, WeightProp: "w", Workers: 2})
			if err != nil {
				t.Fatal(err)
			}
			want, _, err := RunView(context.Background(), fv, comp, 2, "w")
			if err != nil {
				t.Fatal(err)
			}
			got := res.FinalResults()
			if len(got) != len(want) {
				t.Fatalf("collection end state has %d results, individual view %d", len(got), len(want))
			}
			for k, v := range want {
				if got[k] != v {
					t.Fatalf("%+v: collection %d, individual %d", k, got[k], v)
				}
			}
		})
	}
}

// TestViewStorePersistenceAcrossEngines: views and collections defined with
// a data directory survive into a fresh engine over the same directory —
// the paper's View Store.
func TestViewStorePersistenceAcrossEngines(t *testing.T) {
	dir := t.TempDir()
	e1, err := NewEngine(Options{DataDir: dir, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	g := datagen.Temporal(datagen.TemporalConfig{Nodes: 100, Edges: 1000, Days: 50, Seed: 17})
	g.Name = "so"
	if err := e1.AddGraph(g); err != nil {
		t.Fatal(err)
	}
	if _, err := e1.Execute(`create view early on so edges where ts < 25
create view collection c on so [a: ts < 20], [b: ts < 40]`); err != nil {
		t.Fatal(err)
	}

	e2, err := NewEngine(Options{DataDir: dir, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	fv, ok := e2.View("early")
	if !ok {
		t.Fatal("persisted view not found by fresh engine")
	}
	orig, _ := e1.View("early")
	if fv.NumEdges() != orig.NumEdges() {
		t.Fatalf("persisted view has %d edges, want %d", fv.NumEdges(), orig.NumEdges())
	}
	col, ok := e2.Collection("c")
	if !ok {
		t.Fatal("persisted collection not found by fresh engine")
	}
	res, err := RunCollection(col, analytics.WCC{}, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	origCol, _ := e1.Collection("c")
	origRes, err := RunCollection(origCol, analytics.WCC{}, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.FinalResults()) != len(origRes.FinalResults()) {
		t.Fatal("results differ across persistence round trip")
	}
	if _, ok := e2.View("nope"); ok {
		t.Fatal("phantom view")
	}
	if _, ok := e2.Collection("nope"); ok {
		t.Fatal("phantom collection")
	}
}

// TestOrderInvariance: the final view's results are independent of the
// collection order the optimizer picks.
func TestOrderInvariance(t *testing.T) {
	g := datagen.Community(datagen.CommunityConfig{
		Nodes: 600, Communities: 5, IntraDeg: 4, InterDeg: 1, Seed: 3,
	})
	g.Name = "cg"
	names, preds := communityViews(g, 4)

	var want map[analytics.VertexValue]int64
	for i, mode := range []view.OrderingMode{view.OrderAsWritten, view.OrderOptimized, view.OrderRandom} {
		col, err := view.MaterializeFromPredicates("c", g, names, preds, view.Options{Mode: mode, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunCollection(col, analytics.WCC{}, RunOptions{Mode: DiffOnly})
		if err != nil {
			t.Fatal(err)
		}
		// Compare at the position of the SAME final view: find where view
		// "keep3" landed in this order; only orders ending at the same view
		// have comparable final results, so compare against a fresh
		// individual run of that view instead.
		last := col.Order[len(col.Order)-1]
		fv := &view.Filtered{Name: names[last], Base: g}
		for idx := 0; idx < g.NumEdges(); idx++ {
			if preds[last](idx) {
				fv.Edges = append(fv.Edges, uint32(idx))
			}
		}
		single, _, err := RunView(context.Background(), fv, analytics.WCC{}, 1, "")
		if err != nil {
			t.Fatal(err)
		}
		got := res.FinalResults()
		if len(got) != len(single) {
			t.Fatalf("mode %d: %d vs %d results", i, len(got), len(single))
		}
		for k, v := range single {
			if got[k] != v {
				t.Fatalf("mode %d: %+v = %d want %d", i, k, got[k], v)
			}
		}
		_ = want
	}
}

// communityViews builds one "remove community i" predicate per community.
func communityViews(g *graph.Graph, k int) ([]string, []gvdl.EdgePredicate) {
	ci, _ := g.NodeProps.ColumnIndex("community")
	comm := g.NodeProps.Cols[ci].Ints
	names := make([]string, k)
	preds := make([]gvdl.EdgePredicate, k)
	for i := 0; i < k; i++ {
		c := int64(i)
		names[i] = fmt.Sprintf("rm%d", i)
		preds[i] = func(e int) bool {
			return comm[g.Srcs[e]] != c && comm[g.Dsts[e]] != c
		}
	}
	return names, preds
}
