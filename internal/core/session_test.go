package core

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"graphsurge/internal/analytics"
	"graphsurge/internal/dataflow"
	"graphsurge/internal/graph"
	"graphsurge/internal/gvdl"
)

// TestSessionDoTypedRequests drives every request type through one Session
// and checks the typed responses — the contract the CLI and the HTTP server
// both render from.
func TestSessionDoTypedRequests(t *testing.T) {
	col := randomCollection(t, 4, 31)
	e := engineWithCollection(t, Options{}, col)
	sess := e.NewSession()
	ctx := context.Background()

	resp, err := sess.Do(ctx, &StatementsRequest{Src: `create view early on rnd edges where ts < 40
create view collection cc on rnd [a: ts < 30], [b: ts < 60]`})
	if err != nil {
		t.Fatal(err)
	}
	results := resp.(*StatementsResponse).Results
	if len(results) != 2 {
		t.Fatalf("%d statement results, want 2", len(results))
	}
	vc, ok := results[0].(gvdl.ViewCreated)
	if !ok || vc.Name != "early" || vc.Edges <= 0 {
		t.Fatalf("first result = %#v, want ViewCreated{early, >0 edges}", results[0])
	}
	cc, ok := results[1].(gvdl.CollectionCreated)
	if !ok || cc.Name != "cc" || cc.Views != 2 {
		t.Fatalf("second result = %#v, want CollectionCreated{cc, 2 views}", results[1])
	}
	// The rendered form is the CLI line.
	if want := fmt.Sprintf("view early: %d edges", vc.Edges); vc.String() != want {
		t.Fatalf("ViewCreated renders %q, want %q", vc.String(), want)
	}

	rr, err := sess.Do(ctx, &RunRequest{
		Collection: col.Name,
		Algorithm:  analytics.Spec{Algorithm: "wcc"},
		Options:    RunOptions{Mode: Scratch, Parallelism: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	res := rr.(*RunResult)
	if res.Computation != "wcc" || len(res.Stats) != 4 || len(res.FinalResults()) == 0 {
		t.Fatalf("run result = %+v", res)
	}

	vr, err := sess.Do(ctx, &RunViewRequest{View: "early", Algorithm: analytics.Spec{Algorithm: "degree"}})
	if err != nil {
		t.Fatal(err)
	}
	view := vr.(*ViewRunResult)
	if view.Computation != "degree" || view.View != "early" || view.Edges != vc.Edges || len(view.Results) == 0 {
		t.Fatalf("view run result = %+v", view)
	}

	ps, err := sess.Do(ctx, &PoolStatsRequest{})
	if err != nil {
		t.Fatal(err)
	}
	pools := ps.(*PoolStatsResponse).Pools
	if len(pools) != 1 || pools[0].Computation != "wcc" || pools[0].Live != 0 {
		t.Fatalf("pool stats = %+v, want one quiescent wcc pool", pools)
	}

	if _, err := sess.Do(ctx, &RunRequest{Collection: "nope", Algorithm: analytics.Spec{Algorithm: "wcc"}}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("run over unknown collection: err = %v, want ErrNotFound", err)
	}
	if _, err := sess.Do(ctx, &RunRequest{Collection: col.Name, Algorithm: analytics.Spec{Algorithm: "bogus"}}); err == nil {
		t.Fatal("run with unknown algorithm: no error")
	}
	canceled, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := sess.Do(canceled, &PoolStatsRequest{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("Do on canceled ctx: err = %v", err)
	}
}

// TestSessionStatementsPartialOnError pins the partial-results contract: a
// failing batch reports the statements that completed before the failure.
func TestSessionStatementsPartialOnError(t *testing.T) {
	col := randomCollection(t, 2, 33)
	e := engineWithCollection(t, Options{}, col)
	resp, err := e.NewSession().Do(context.Background(), &StatementsRequest{
		Src: "create view ok on rnd edges where ts < 40\ncreate view broken on nothing edges where ts < 5",
	})
	if err == nil {
		t.Fatal("expected error for statement over unknown target")
	}
	results := resp.(*StatementsResponse).Results
	if len(results) != 1 || results[0].(gvdl.ViewCreated).Name != "ok" {
		t.Fatalf("partial results = %#v, want the one completed view", results)
	}
}

// TestSessionConcurrentDo hammers one engine through one Session from
// concurrent goroutines — GVDL creates racing collection runs — under the
// race detector, and checks the pools quiesce.
func TestSessionConcurrentDo(t *testing.T) {
	col := randomCollection(t, 4, 35)
	e := engineWithCollection(t, Options{}, col)
	sess := e.NewSession()
	ctx := context.Background()

	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			src := fmt.Sprintf("create view s%d on rnd edges where ts < %d", i, 20+10*i)
			resp, err := sess.Do(ctx, &StatementsRequest{Src: src})
			if err != nil {
				errs <- err
				return
			}
			if r := resp.(*StatementsResponse).Results; len(r) != 1 {
				errs <- fmt.Errorf("goroutine %d: %d results", i, len(r))
			}
		}(i)
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := sess.Do(ctx, &RunRequest{
				Collection: col.Name,
				Algorithm:  analytics.Spec{Algorithm: "wcc"},
				Options:    RunOptions{Mode: Scratch, Parallelism: 2},
			})
			if err != nil {
				errs <- err
				return
			}
			if len(resp.(*RunResult).FinalResults()) == 0 {
				errs <- fmt.Errorf("run %d: empty final results", i)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	for _, ps := range e.PoolStats() {
		if ps.Live != 0 {
			t.Fatalf("pool %s still has %d live replicas", ps.Ident, ps.Live)
		}
	}
}

// gatedComp is a computation whose operator blocks on a gate channel,
// letting tests freeze a run mid-step deterministically. The first record
// to reach the operator signals started. It captures channels, so it is
// deliberately unpoolable at the engine level (identifiableComp is false)
// and tests hand it a private pool.
type gatedComp struct {
	started chan struct{}
	gate    chan struct{}
	once    *sync.Once
}

func newGatedComp() gatedComp {
	return gatedComp{started: make(chan struct{}), gate: make(chan struct{}), once: &sync.Once{}}
}

func (gatedComp) Name() string { return "gated" }

func (c gatedComp) Build(b *analytics.Builder) {
	out := dataflow.Map(b.Edges(), func(tr graph.Triple) analytics.VertexValue {
		c.once.Do(func() { close(c.started) })
		<-c.gate
		return analytics.VertexValue{V: tr.Src, Val: 1}
	})
	b.Output(out)
}

// TestCancelMidRunReturnsReplicas is the cancellation contract: cancelling
// a run mid-flight fails it with ctx's error, stops segment dispatch, and
// returns every acquired replica — the pool's Live count drops to zero and
// every built replica is back idle, so nothing leaked.
func TestCancelMidRunReturnsReplicas(t *testing.T) {
	col := randomCollection(t, 6, 37)
	for _, tc := range []struct {
		name string
		opts RunOptions
	}{
		{"static", RunOptions{Mode: Scratch, Workers: 1, Parallelism: 2}},
		{"adaptive", RunOptions{Mode: Adaptive, Workers: 1, Parallelism: 2, Speculate: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			comp := newGatedComp()
			pool := analytics.NewPool(comp, 1, 2)
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			errCh := make(chan error, 1)
			go func() {
				_, err := runCollection(ctx, col, comp, tc.opts, pool)
				errCh <- err
			}()
			<-comp.started
			cancel()
			close(comp.gate)
			if err := <-errCh; !errors.Is(err, context.Canceled) {
				t.Fatalf("canceled run returned %v, want context.Canceled", err)
			}
			if live := pool.Live(); live != 0 {
				t.Fatalf("%d replicas still live after cancellation", live)
			}
			built, _ := pool.Counts()
			if idle := pool.Idle(); idle != built {
				t.Fatalf("%d idle replicas after cancellation, want all %d built back in the pool", idle, built)
			}
		})
	}
}

// TestCancelWhileWaitingForPoolSlot cancels a run whose dispatcher is
// blocked in the pool's Acquire wait — the wait must abort with ctx's
// error, not sit until a slot frees.
func TestCancelWhileWaitingForPoolSlot(t *testing.T) {
	comp := newGatedComp()
	pool := analytics.NewPool(comp, 1, 1)
	// Occupy the only slot so the next Acquire queues.
	held, _, err := pool.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		//lint:ignore poolrelease canceled Acquire hands out no runner; only the error is under test
		_, _, err := pool.Acquire(ctx)
		errCh <- err
	}()
	cancel()
	select {
	case err := <-errCh:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Acquire returned %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Acquire did not abort on cancellation")
	}
	pool.Release(held)
	if pool.Live() != 0 {
		t.Fatalf("%d live after release", pool.Live())
	}
}

// TestEngineCloseWaitsForActiveRuns pins the Close contract: Close blocks
// until in-flight runs finish, runs arriving while it drains are refused
// with ErrClosing, and the engine is usable again once Close returns. Run
// under -race, this also asserts Close cannot race an in-flight run's pool
// map accesses.
func TestEngineCloseWaitsForActiveRuns(t *testing.T) {
	col := randomCollection(t, 4, 39)
	e := engineWithCollection(t, Options{Parallelism: 2}, col)
	comp := newGatedComp()
	runDone := make(chan error, 1)
	go func() {
		_, err := e.RunOn(context.Background(), col, comp, RunOptions{Mode: Scratch})
		runDone <- err
	}()
	<-comp.started

	closeDone := make(chan struct{})
	go func() {
		e.Close()
		close(closeDone)
	}()
	// Wait until Close has started draining, then check admission is shut.
	deadline := time.Now().Add(5 * time.Second)
	for {
		e.runMu.Lock()
		closing := e.closing
		e.runMu.Unlock()
		if closing {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("Close never started draining")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := e.RunOn(context.Background(), col, analytics.WCC{}, RunOptions{}); !errors.Is(err, ErrClosing) {
		t.Fatalf("run during Close drain: err = %v, want ErrClosing", err)
	}
	select {
	case <-closeDone:
		t.Fatal("Close returned with a run still in flight")
	default:
	}

	close(comp.gate)
	if err := <-runDone; err != nil {
		t.Fatalf("in-flight run failed: %v", err)
	}
	select {
	case <-closeDone:
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not return after the run finished")
	}
	// The engine stays usable after Close.
	if _, err := e.RunOn(context.Background(), col, analytics.WCC{}, RunOptions{}); err != nil {
		t.Fatalf("post-Close run: %v", err)
	}
}

// TestOnSegmentStreams pins the progress hook: every segment of a static
// run is reported exactly once, before RunOn returns, and the reported
// ranges cover the collection.
func TestOnSegmentStreams(t *testing.T) {
	col := randomCollection(t, 5, 41)
	e := engineWithCollection(t, Options{}, col)
	var mu sync.Mutex
	var got []SegmentStats
	res, err := e.RunOn(context.Background(), col, analytics.WCC{}, RunOptions{
		Mode:        Scratch,
		Parallelism: 2,
		OnSegment: func(st SegmentStats) {
			mu.Lock()
			got = append(got, st)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(res.Segments) {
		t.Fatalf("OnSegment fired %d times, result has %d segments", len(got), len(res.Segments))
	}
	covered := 0
	for _, st := range got {
		covered += st.Len()
	}
	if covered != 5 {
		t.Fatalf("streamed segments cover %d views, want 5", covered)
	}
}

// TestExecModeTextRoundTrip pins the wire names of the execution modes.
func TestExecModeTextRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want ExecMode
	}{
		{"diff", DiffOnly}, {"diff-only", DiffOnly}, {"scratch", Scratch}, {"adaptive", Adaptive},
	} {
		var m ExecMode
		if err := m.UnmarshalText([]byte(tc.in)); err != nil || m != tc.want {
			t.Fatalf("UnmarshalText(%q) = %v, %v", tc.in, m, err)
		}
	}
	var m ExecMode
	if err := m.UnmarshalText([]byte("bogus")); err == nil || !strings.Contains(err.Error(), "bogus") {
		t.Fatalf("UnmarshalText(bogus) err = %v", err)
	}
	if b, _ := Scratch.MarshalText(); string(b) != "scratch" {
		t.Fatalf("MarshalText(Scratch) = %q", b)
	}
}
