package core

import "graphsurge/internal/graph"

// edgeBatcher returns a run's single conversion point from edge-index lists
// to columnar batches, resolving each index against the graph's weight
// column wc. The in-process executor, the speculative path and the cluster
// sharder all materialize through it, so a given edge set becomes the same
// sorted columns no matter which path builds it — the property the
// shard-vs-local equivalence tests pin — and a built batch is shared by
// reference wherever that edge set is used again.
func edgeBatcher(g *graph.Graph, wc int) func(idxs []uint32) *graph.EdgeBatch {
	return func(idxs []uint32) *graph.EdgeBatch {
		return graph.MakeEdgeBatch(len(idxs), func(i int) graph.Triple {
			return g.Triple(int(idxs[i]), wc)
		})
	}
}
