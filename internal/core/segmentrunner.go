package core

import (
	"context"
	"fmt"
	"sort"
	"time"

	"graphsurge/internal/analytics"
	"graphsurge/internal/graph"
	"graphsurge/internal/obs"
	"graphsurge/internal/splitting"
	"graphsurge/internal/view"
)

// This file is the segment-shard layer under cluster execution: a collection
// run sliced into self-contained SegmentSpec shards that any SegmentRunner —
// the local engine or a remote worker behind an RPC client — can execute
// without access to the collection, the graph, or each other. Segments share
// no dataflow state (see internal/splitting), which is what makes them the
// natural cross-machine distribution unit; a shard carries its seed and
// difference sets as materialized triples so the receiving process needs no
// graph store at all.

// SegmentSpec is one self-contained shard of a collection run: everything a
// process needs to execute the half-open view range [Start, End) of a
// collection and report a mergeable outcome. Edge data travels as columnar
// graph.EdgeBatch values — the weight column is resolved by the sharding
// side — so the spec is independent of any store state on the executing
// side. All fields are flat, exported, gob-encodable wire types; the edge
// batches ride inside the gob envelope as their own versioned binary codec
// (gob invokes EdgeBatch's BinaryMarshaler), so segment payloads ship
// delta-compressed columns instead of per-record gob triples.
type SegmentSpec struct {
	// Comp identifies the computation; the executing side resolves it back
	// into a built-in (closures cannot cross a process boundary).
	Comp analytics.Spec
	// Workers is the intra-dataflow worker count for the replica; 0 defers
	// to the executing engine's default, so a worker process sized with its
	// own -workers flag applies it to shards that don't pin a count.
	Workers int
	// Collection names the source collection (logs, observability).
	Collection string
	// Start and End delimit the shard's view range within the collection.
	Start, End int
	// Names, Modes, ViewSizes and DiffSizes are per-view metadata for the
	// range, indexed relative to Start (length End-Start); they let the
	// executing side fill complete ViewStats.
	Names     []string
	Modes     []splitting.Mode
	ViewSizes []int
	DiffSizes []int
	// Seed is the full edge batch of view Start — the from-scratch load that
	// opens the segment. A nil batch is an empty view.
	Seed *graph.EdgeBatch
	// Adds and Dels are the difference batches of the successor views
	// Start+1..End-1, indexed relative to Start+1 (length End-Start-1).
	// Elements must be non-nil (gob cannot encode nil slice elements);
	// empty difference sets are empty batches.
	Adds, Dels []*graph.EdgeBatch
}

// Validate checks the spec's internal consistency — range sanity and
// per-view slice lengths — so a corrupt or truncated wire payload fails
// loudly before any dataflow is built for it.
func (s *SegmentSpec) Validate() error {
	n := s.End - s.Start
	if s.Start < 0 || n < 1 {
		return fmt.Errorf("core: segment spec has invalid range [%d,%d)", s.Start, s.End)
	}
	if len(s.Names) != n || len(s.Modes) != n || len(s.ViewSizes) != n || len(s.DiffSizes) != n {
		return fmt.Errorf("core: segment spec [%d,%d) has %d/%d/%d/%d per-view entries, want %d",
			s.Start, s.End, len(s.Names), len(s.Modes), len(s.ViewSizes), len(s.DiffSizes), n)
	}
	if len(s.Adds) != n-1 || len(s.Dels) != n-1 {
		return fmt.Errorf("core: segment spec [%d,%d) has %d/%d difference sets, want %d",
			s.Start, s.End, len(s.Adds), len(s.Dels), n-1)
	}
	return nil
}

// SegmentOutcome is a completed shard's result, shaped for merging: per-view
// stats carrying their absolute collection indices, the segment's timing
// entry, the replica's work counters and iteration-cap flag (snapshotted
// before the replica was recycled), and the per-vertex results at the
// shard's last view — the collection's final results when the shard ends the
// collection.
type SegmentOutcome struct {
	Stats   []ViewStats
	Segment SegmentStats
	Work    []int64
	IterCap bool
	Final   map[analytics.VertexValue]int64
}

// SegmentRunner executes one self-contained collection shard. The local
// engine implements it directly (Engine.RunSegment) and the cluster layer
// implements it with an RPC client per remote worker, so a dispatch loop
// schedules over machines and local replicas through one interface. ctx
// bounds the shard: the local engine stops stepping at the next view
// boundary, the RPC implementation abandons the in-flight call.
type SegmentRunner interface {
	RunSegment(ctx context.Context, spec *SegmentSpec) (*SegmentOutcome, error)
}

// RunSegment executes one shard on this engine, drawing the replica from the
// engine's warm runner pool for (computation, workers) — a worker process
// serving many jobs for the same computation recycles its dataflows across
// them exactly as repeated local runs do. Workers defaults to the engine's
// option when the spec leaves it unset; the pool is grown to the engine's
// Parallelism so that many concurrent RunSegment calls (a coordinator keeps
// a worker's slots busy) each get their own replica. A canceled ctx aborts
// the shard at the next view boundary (and any pool wait immediately); the
// replica still returns to the pool.
func (e *Engine) RunSegment(ctx context.Context, spec *SegmentSpec) (*SegmentOutcome, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	comp, err := spec.Comp.Resolve()
	if err != nil {
		return nil, err
	}
	if err := e.beginRun(); err != nil {
		return nil, err
	}
	defer e.endRun()
	workers := spec.Workers
	if workers < 1 {
		workers = e.opts.Workers
	}
	pool, _ := e.runnerPool(comp, workers, e.opts.Parallelism)
	r, setup, err := pool.Acquire(ctx)
	if err != nil {
		return nil, err
	}
	defer pool.Release(r)
	out, err := execSegmentSpec(ctx, r, setup, spec)
	if err != nil {
		return nil, err
	}
	// The segment-latency histograms are observed where the time was spent:
	// a worker's /metrics reflects the shards it executed, while the
	// coordinator's reflects only its local segments (remote detail arrives
	// in the merged RunResult.Stats instead). The in-process executor path
	// observes in finishSegment and never comes through here.
	obs.M.SegmentSetup.Observe(out.Segment.Setup.Seconds())
	obs.M.SegmentDrain.Observe(out.Segment.Drain.Seconds())
	return out, nil
}

// execSegmentSpec steps a shard's views on an acquired replica, mirroring the
// in-process executor's accounting (runJob/finishSegment): a mid-collection
// seed view folds the replica setup cost into its duration, output history is
// dropped as versions complete, and the replica's counters are snapshotted
// into the outcome before the caller releases it. Cancellation is honored at
// view boundaries; a canceled shard returns ctx's error and no outcome.
func execSegmentSpec(ctx context.Context, r analytics.Runner, setup time.Duration, spec *SegmentSpec) (*SegmentOutcome, error) {
	n := spec.End - spec.Start
	out := &SegmentOutcome{Stats: make([]ViewStats, n)}
	jobStart := time.Now()
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		var dur time.Duration
		switch {
		case i == 0 && spec.Start > 0:
			// Split: setup and step are one measured duration, as the
			// sequential executor timed splits.
			start := time.Now()
			r.StepBatch(spec.Seed, nil)
			dur = setup + time.Since(start)
		case i == 0:
			// The collection's opening view: only the step is timed.
			dur = r.StepBatch(spec.Seed, nil)
		default:
			dur = r.StepBatch(spec.Adds[i-1], spec.Dels[i-1])
		}
		v, _ := r.Version()
		out.Stats[i] = ViewStats{
			Index:       spec.Start + i,
			Name:        spec.Names[i],
			Mode:        spec.Modes[i],
			Duration:    dur,
			ViewSize:    spec.ViewSizes[i],
			DiffSize:    spec.DiffSizes[i],
			OutputDiffs: r.OutputDiffs(v),
		}
		r.DropOutputsBefore(v)
	}
	out.Final = r.Results()
	out.Work = r.WorkCounts()
	out.IterCap = r.IterCapHit()
	out.Segment = SegmentStats{Start: spec.Start, End: spec.End, Setup: setup, Drain: time.Since(jobStart)}
	return out, nil
}

// StaticPlan returns the fully precomputable plan for a non-adaptive mode
// over a k-view collection — the plan a cluster coordinator shards. Adaptive
// plans are built online against live observations and cannot be sharded up
// front.
func StaticPlan(mode ExecMode, k int) splitting.Plan {
	return staticPlan(mode, k)
}

// ForEachSegmentSpec materializes a plan's segments as self-contained shards
// in collection order, invoking fn for each. The underlying membership scan
// is strictly forward, so shards are built one at a time; the caller decides
// retention (a dispatcher buffering shards for remote workers trades the
// sequential executor's peak-memory bound for shipping, exactly like the LPT
// seed cache does). A non-nil error from fn aborts the walk.
func ForEachSegmentSpec(col *view.Collection, comp analytics.Spec, opts RunOptions, plan splitting.Plan, fn func(i int, spec *SegmentSpec) error) error {
	g := col.Graph
	wc, err := g.WeightColumn(opts.WeightProp)
	if err != nil {
		return err
	}
	cols := edgeBatcher(g, wc)
	stream := col.Stream
	sizes := stream.ViewSizes()
	scan := newSeedScan(stream, g.NumEdges(), sizes)
	for i, seg := range plan.Segments {
		n := seg.End - seg.Start
		spec := &SegmentSpec{
			Comp:       comp,
			Workers:    opts.Workers,
			Collection: col.Name,
			Start:      seg.Start,
			End:        seg.End,
			Names:      make([]string, n),
			Modes:      make([]splitting.Mode, n),
			ViewSizes:  make([]int, n),
			DiffSizes:  make([]int, n),
		}
		scan.advance(seg.Start)
		spec.Seed = cols(scan.at(seg.Start))
		for t := seg.Start; t < seg.End; t++ {
			spec.Names[t-seg.Start] = stream.Names[t]
			spec.Modes[t-seg.Start] = plan.Modes[t]
			spec.ViewSizes[t-seg.Start] = sizes[t]
			spec.DiffSizes[t-seg.Start] = stream.DiffSize(t)
			if t > seg.Start {
				spec.Adds = append(spec.Adds, cols(stream.Adds[t]))
				spec.Dels = append(spec.Dels, cols(stream.Dels[t]))
			}
		}
		if err := fn(i, spec); err != nil {
			return err
		}
	}
	return nil
}

// MergeSegmentOutcomes assembles shard outcomes into the RunResult the local
// executor would have produced: ViewStats land at their collection indices,
// per-segment timings sort into collection order, work counters sum per
// worker index across every replica, the iteration-cap flag ORs, and the
// final results come from the shard that ends the collection. Outcomes may
// arrive in any order, but together they must cover the plan's views exactly
// once — a lost or duplicated shard is a dispatcher bug surfaced here rather
// than silently folded into wrong results.
func MergeSegmentOutcomes(computation, collection string, mode ExecMode, plan splitting.Plan, outcomes []*SegmentOutcome, wall time.Duration) (*RunResult, error) {
	k := plan.NumViews()
	res := &RunResult{
		Computation: computation,
		Collection:  collection,
		Mode:        mode,
		Stats:       make([]ViewStats, k),
		Wall:        wall,
		Splits:      plan.Splits(),
		final:       map[analytics.VertexValue]int64{},
	}
	covered := make([]bool, k)
	for _, o := range outcomes {
		for _, st := range o.Stats {
			if st.Index < 0 || st.Index >= k {
				return nil, fmt.Errorf("core: merged view index %d outside collection of %d views", st.Index, k)
			}
			if covered[st.Index] {
				return nil, fmt.Errorf("core: view %d covered by more than one segment outcome", st.Index)
			}
			covered[st.Index] = true
			res.Stats[st.Index] = st
			res.Total += st.Duration
		}
		res.Segments = append(res.Segments, o.Segment)
		for i, c := range o.Work {
			for len(res.work) <= i {
				res.work = append(res.work, 0)
			}
			res.work[i] += c
		}
		res.iterCap = res.iterCap || o.IterCap
		if o.Segment.End == k && o.Final != nil {
			res.final = o.Final
		}
	}
	for t, ok := range covered {
		if !ok {
			return nil, fmt.Errorf("core: view %d not covered by any segment outcome", t)
		}
	}
	sort.Slice(res.Segments, func(i, j int) bool { return res.Segments[i].Start < res.Segments[j].Start })
	return res, nil
}
