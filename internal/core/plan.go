package core

import (
	"graphsurge/internal/splitting"
	"graphsurge/internal/view"
)

// staticPlan maps a non-adaptive execution mode to its fully precomputable
// plan: diff-only is one segment spanning the collection, scratch is one
// single-view segment per view (embarrassingly parallel). Adaptive plans are
// built online by the planner as the optimizer's models mature; see
// runAdaptive.
func staticPlan(mode ExecMode, k int) splitting.Plan {
	if mode == Scratch {
		return splitting.PlanScratch(k)
	}
	return splitting.PlanDiffOnly(k)
}

// seedScan incrementally replays the difference stream to produce segment
// seeds: the full edge-index list of the view opening each segment. The scan
// is sequential and shared by the static and adaptive executors; seeds are
// built one at a time as segments are dispatched, so at most Parallelism
// seed lists are live at once — peak memory stays proportional to the
// largest view, not the sum of all views, matching the sequential executor.
type seedScan struct {
	stream *view.DiffStream
	sizes  []int
	member []bool
	next   int // next view index to fold into member
}

func newSeedScan(stream *view.DiffStream, numEdges int, sizes []int) *seedScan {
	return &seedScan{stream: stream, sizes: sizes, member: make([]bool, numEdges)}
}

// advance folds views up to and including t into the membership array. The
// sequential executor maintained membership outside its split timer, so
// callers advance untimed and time only the scan in at.
func (ss *seedScan) advance(t int) {
	for ; ss.next <= t; ss.next++ {
		for _, idx := range ss.stream.Adds[ss.next] {
			ss.member[idx] = true
		}
		for _, idx := range ss.stream.Dels[ss.next] {
			ss.member[idx] = false
		}
	}
}

// at returns the full edge-index list of view t, ascending. Successive calls
// must have non-decreasing t (segments are dispatched in collection order).
func (ss *seedScan) at(t int) []uint32 {
	if t == 0 && ss.next <= 1 && len(ss.stream.Dels[0]) == 0 {
		// Opening view (whether or not already folded): membership before it
		// is empty, so the full view is exactly the first difference set —
		// skip the full-graph scan.
		ss.advance(0)
		return ss.stream.Adds[0]
	}
	ss.advance(t)
	full := make([]uint32, 0, ss.sizes[t])
	for idx, in := range ss.member {
		if in {
			full = append(full, uint32(idx))
		}
	}
	return full
}
