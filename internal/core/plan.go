package core

import (
	"time"

	"graphsurge/internal/graph"
	"graphsurge/internal/splitting"
	"graphsurge/internal/view"
)

// staticPlan maps a non-adaptive execution mode to its fully precomputable
// plan: diff-only is one segment spanning the collection, scratch is one
// single-view segment per view (embarrassingly parallel). Adaptive plans are
// built online by the planner as the optimizer's models mature; see
// runAdaptive.
func staticPlan(mode ExecMode, k int) splitting.Plan {
	if mode == Scratch {
		return splitting.PlanScratch(k)
	}
	return splitting.PlanDiffOnly(k)
}

// seedScan incrementally replays the difference stream to produce segment
// seeds: the full edge-index list of the view opening each segment. The scan
// is sequential and shared by the static and adaptive executors; seeds are
// built one at a time as segments are dispatched, so at most Parallelism
// seed lists are live at once — peak memory stays proportional to the
// largest view, not the sum of all views, matching the sequential executor.
type seedScan struct {
	stream *view.DiffStream
	sizes  []int
	member []bool
	next   int // next view index to fold into member
}

func newSeedScan(stream *view.DiffStream, numEdges int, sizes []int) *seedScan {
	return &seedScan{stream: stream, sizes: sizes, member: make([]bool, numEdges)}
}

// advance folds views up to and including t into the membership array. The
// sequential executor maintained membership outside its split timer, so
// callers advance untimed and time only the scan in at.
func (ss *seedScan) advance(t int) {
	for ; ss.next <= t; ss.next++ {
		for _, idx := range ss.stream.Adds[ss.next] {
			ss.member[idx] = true
		}
		for _, idx := range ss.stream.Dels[ss.next] {
			ss.member[idx] = false
		}
	}
}

// fork returns an independent copy of the scan for speculative lookahead:
// the copy can advance past views the parent has not reached without
// disturbing it. Membership at any view depends only on the difference
// stream prefix, so a fork advanced to t produces exactly the seed the
// parent would.
func (ss *seedScan) fork() *seedScan {
	member := make([]bool, len(ss.member))
	copy(member, ss.member)
	return &seedScan{stream: ss.stream, sizes: ss.sizes, member: member, next: ss.next}
}

// at returns the full edge-index list of view t, ascending. Successive calls
// must have non-decreasing t (segments are dispatched in collection order).
func (ss *seedScan) at(t int) []uint32 {
	if t == 0 && ss.next <= 1 && len(ss.stream.Dels[0]) == 0 {
		// Opening view (whether or not already folded): membership before it
		// is empty, so the full view is exactly the first difference set —
		// skip the full-graph scan.
		ss.advance(0)
		return ss.stream.Adds[0]
	}
	ss.advance(t)
	full := make([]uint32, 0, ss.sizes[t])
	for idx, in := range ss.member {
		if in {
			full = append(full, uint32(idx))
		}
	}
	return full
}

// seedEntry is a seed built ahead of its segment's dispatch: the columnar
// edge batch plus the scan time spent building it, which is folded into that
// segment's setup cost when it is finally dispatched — the same attribution
// the in-order path gives a seed built at acquisition time. Retaining the
// batch (not an index list) means the segment that eventually takes it steps
// the very same columns, shared by reference.
type seedEntry struct {
	seed  *graph.EdgeBatch
	build time.Duration
}

// seedCache decouples seed *building* from segment *dispatch* order. The
// underlying seedScan replays the difference stream strictly forward, but an
// LPT scheduler dispatches segments out of collection order; the scan cannot
// rewind, so take(t) advances it to t and builds — and retains — the seed of
// every earlier still-undispatched segment start it passes, since those
// segments will be dispatched later. FIFO dispatch retains nothing and
// degenerates to the sequential scan; out-of-order dispatch pays for its
// reordering with retained-seed memory bounded by the sum of
// not-yet-dispatched seed sizes (see DESIGN.md).
//
// A seedCache is not safe for concurrent use; both executors call take from
// their single dispatch loop.
type seedCache struct {
	scan   *seedScan
	starts []int // ascending starts of segments not yet built
	built  map[int]seedEntry
	// mat materializes an edge-index list into the columnar batch the
	// segment will step (the run's edgeBatcher).
	mat func(idxs []uint32) *graph.EdgeBatch
}

// newSeedCache wraps a scan with the plan's segment starts. An empty plan
// (adaptive mode, where segment starts are discovered online and arrive in
// ascending order) leaves the cache a pass-through.
func newSeedCache(ss *seedScan, plan splitting.Plan, mat func(idxs []uint32) *graph.EdgeBatch) *seedCache {
	sc := &seedCache{scan: ss, built: make(map[int]seedEntry), mat: mat}
	for _, seg := range plan.Segments {
		sc.starts = append(sc.starts, seg.Start)
	}
	return sc
}

// take returns the seed batch of the segment starting at view t plus the
// time spent building it (the scan and the columnar materialization; the
// membership fold stays untimed in advance, matching the sequential
// executor, which updated membership per view outside the split timer).
func (sc *seedCache) take(t int) (*graph.EdgeBatch, time.Duration) {
	if e, ok := sc.built[t]; ok {
		delete(sc.built, t)
		return e.seed, e.build
	}
	for len(sc.starts) > 0 && sc.starts[0] < t {
		s := sc.starts[0]
		sc.starts = sc.starts[1:]
		sc.scan.advance(s)
		start := time.Now()
		sc.built[s] = seedEntry{seed: sc.mat(sc.scan.at(s)), build: time.Since(start)}
	}
	if len(sc.starts) > 0 && sc.starts[0] == t {
		sc.starts = sc.starts[1:]
	}
	sc.scan.advance(t)
	start := time.Now()
	seed := sc.mat(sc.scan.at(t))
	return seed, time.Since(start)
}

// fifoOrder is the identity dispatch permutation: collection order.
func fifoOrder(n int) []int {
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	return order
}
