package core

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"graphsurge/internal/analytics"
)

// TestReplayMatchesScratch pins the replay replica's correctness contract:
// absorbing a whole stream on a fresh replica yields exactly the final
// results a normal run produces, a second extend over an unchanged
// collection steps nothing and still answers correctly, and the CachedPrefix
// accounting reflects how much work was skipped.
func TestReplayMatchesScratch(t *testing.T) {
	e := newTestEngine(t)
	defer e.Close()
	if _, err := e.Execute(`create view collection days on so [d1: ts < 25], [d2: ts < 50], [d3: ts < 75], [d4: ts < 100]`); err != nil {
		t.Fatal(err)
	}
	col, err := e.LookupCollection("days")
	if err != nil {
		t.Fatal(err)
	}
	comp := analytics.WCC{}

	want, err := e.RunOn(context.Background(), col, comp, RunOptions{Mode: Scratch})
	if err != nil {
		t.Fatal(err)
	}

	rep := &Replay{}
	cold, err := e.ExtendReplay(context.Background(), rep, col, comp, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if cold.CachedPrefix != 0 || len(cold.Stats) != 4 {
		t.Fatalf("cold extend: prefix=%d stats=%d, want 0 and 4", cold.CachedPrefix, len(cold.Stats))
	}
	if !reflect.DeepEqual(cold.FinalResults(), want.FinalResults()) {
		t.Fatal("cold replay results differ from scratch run")
	}
	if rep.Pos() != 4 {
		t.Fatalf("replica pos = %d, want 4", rep.Pos())
	}

	// Nothing new to step: a warm extend over the same stream answers from
	// absorbed state, with an empty suffix.
	warm, err := e.ExtendReplay(context.Background(), rep, col, comp, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if warm.CachedPrefix != 4 || len(warm.Stats) != 0 {
		t.Fatalf("warm extend: prefix=%d stats=%d, want 4 and 0", warm.CachedPrefix, len(warm.Stats))
	}
	if !reflect.DeepEqual(warm.FinalResults(), want.FinalResults()) {
		t.Fatal("warm replay results differ from scratch run")
	}
}

// TestReplayStaleAfterMutation pins the fail-closed staleness check: a
// replica built before a mutation refuses to extend afterwards, because its
// absorbed diffs were edited in place underneath it.
func TestReplayStaleAfterMutation(t *testing.T) {
	e := newTestEngine(t)
	defer e.Close()
	if _, err := e.Execute(`create view collection days on so [d1: ts < 50], [d2: ts < 100]`); err != nil {
		t.Fatal(err)
	}
	col, err := e.LookupCollection("days")
	if err != nil {
		t.Fatal(err)
	}
	comp := analytics.WCC{}
	rep := &Replay{}
	if _, err := e.ExtendReplay(context.Background(), rep, col, comp, RunOptions{}); err != nil {
		t.Fatal(err)
	}

	if _, err := e.NewSession().Do(context.Background(), &MutateRequest{
		Graph:   "so",
		Inserts: []EdgeChange{{Src: 0, Dst: 1, Props: map[string]any{"ts": 10, "duration": 5}}},
	}); err != nil {
		t.Fatal(err)
	}
	col2, err := e.LookupCollection("days")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.ExtendReplay(context.Background(), rep, col2, comp, RunOptions{}); !errors.Is(err, ErrReplayStale) {
		t.Fatalf("post-mutation extend: %v, want ErrReplayStale", err)
	}
}
