package core

import (
	"fmt"
	"math/rand"
	"testing"

	"graphsurge/internal/analytics"
	"graphsurge/internal/datagen"
	"graphsurge/internal/schedule"
	"graphsurge/internal/view"
)

// randomCollection builds a seeded random k-view collection over a datagen
// graph: the first view is a random subset of the edges, and every later
// view flips a few random edges in and out.
func randomCollection(t testing.TB, k int, seed int64) *view.Collection {
	t.Helper()
	g := datagen.Temporal(datagen.TemporalConfig{Nodes: 300, Edges: 3000, Days: 100, Seed: seed})
	g.Name = "rnd"
	r := rand.New(rand.NewSource(seed))
	present := make([]bool, g.NumEdges())

	names := make([]string, 0, k)
	adds := make([][]uint32, 0, k)
	dels := make([][]uint32, 0, k)
	for t := 0; t < k; t++ {
		var a, d []uint32
		if t == 0 {
			for i := range present {
				if r.Intn(2) == 0 {
					present[i] = true
					a = append(a, uint32(i))
				}
			}
		} else {
			flips := make(map[int]bool, 200)
			for len(flips) < 200 {
				flips[r.Intn(g.NumEdges())] = true
			}
			for i := 0; i < g.NumEdges(); i++ {
				if !flips[i] {
					continue
				}
				if present[i] {
					present[i] = false
					d = append(d, uint32(i))
				} else {
					present[i] = true
					a = append(a, uint32(i))
				}
			}
		}
		names = append(names, fmt.Sprintf("v%d", t))
		adds = append(adds, a)
		dels = append(dels, d)
	}
	stream := &view.DiffStream{Names: names, Adds: adds, Dels: dels}
	return view.NewCollection("rnd-col", g, stream)
}

// TestSegmentParallelDeterminism is the parallel executor's equivalence
// check: for WCC and PageRank on a seeded random collection, FinalResults
// and the per-view ViewSize/DiffSize stats must be byte-identical across
// Parallelism ∈ {1, 4} × workers ∈ {1, 4}, in all three execution modes —
// and across the scheduler dimensions: LPT vs FIFO dispatch for static
// plans, speculation on and off for adaptive runs. Scheduling and
// speculation may only move work, never change it.
func TestSegmentParallelDeterminism(t *testing.T) {
	col := randomCollection(t, 8, 42)
	comps := []analytics.Computation{analytics.WCC{}, analytics.PageRank{}}
	type variant struct {
		mode      ExecMode
		sched     schedule.Policy
		speculate bool
	}
	variants := []variant{
		{mode: DiffOnly}, {mode: DiffOnly, sched: schedule.LPT},
		{mode: Scratch}, {mode: Scratch, sched: schedule.LPT},
		{mode: Adaptive}, {mode: Adaptive, speculate: true},
	}

	for _, comp := range comps {
		var baseline *RunResult
		for _, v := range variants {
			for _, par := range []int{1, 4} {
				for _, workers := range []int{1, 4} {
					name := fmt.Sprintf("%s/%s/sched=%s/spec=%v/p=%d/w=%d",
						comp.Name(), v.mode, v.sched, v.speculate, par, workers)
					res, err := RunCollection(col, comp, RunOptions{
						Mode:        v.mode,
						Workers:     workers,
						Parallelism: par,
						BatchSize:   2,
						Schedule:    v.sched,
						Speculate:   v.speculate,
					})
					if err != nil {
						t.Fatalf("%s: %v", name, err)
					}
					if res.IterCapHit() {
						t.Fatalf("%s: iteration cap hit", name)
					}
					if len(res.Stats) != col.Stream.NumViews() {
						t.Fatalf("%s: %d stats", name, len(res.Stats))
					}
					for i, st := range res.Stats {
						if st.Index != i || st.Name != col.Stream.Names[i] {
							t.Fatalf("%s: stats[%d] out of collection order: %+v", name, i, st)
						}
						if st.OutputDiffs <= 0 || st.Duration <= 0 {
							t.Fatalf("%s: stats[%d] not recorded: %+v", name, i, st)
						}
					}
					if baseline == nil {
						baseline = res
						continue
					}
					got, want := res.FinalResults(), baseline.FinalResults()
					if len(got) != len(want) {
						t.Fatalf("%s: %d results, baseline %d", name, len(got), len(want))
					}
					for kv, d := range want {
						if got[kv] != d {
							t.Fatalf("%s: result %+v = %d, baseline %d", name, kv, got[kv], d)
						}
					}
					for i := range res.Stats {
						if res.Stats[i].ViewSize != baseline.Stats[i].ViewSize ||
							res.Stats[i].DiffSize != baseline.Stats[i].DiffSize {
							t.Fatalf("%s: stats[%d] sizes diverge: %+v vs %+v",
								name, i, res.Stats[i], baseline.Stats[i])
						}
					}
				}
			}
		}
	}
}

// TestSeedScanOpeningView pins the opening-view fast path: the seed of view
// 0 is the first difference set itself (no full-graph scan), even when the
// view was already folded into the membership array, and later seeds replay
// the stream correctly.
func TestSeedScanOpeningView(t *testing.T) {
	stream := &view.DiffStream{
		Names: []string{"a", "b"},
		Adds:  [][]uint32{{1, 3, 5}, {2}},
		Dels:  [][]uint32{nil, {3}},
	}
	ss := newSeedScan(stream, 8, stream.ViewSizes())
	ss.advance(0) // acquireSegment folds untimed before scanning
	seed := ss.at(0)
	if len(seed) != 3 || &seed[0] != &stream.Adds[0][0] {
		t.Fatalf("opening seed not aliased to Adds[0]: %v", seed)
	}
	next := ss.at(1)
	if len(next) != 3 || next[0] != 1 || next[1] != 2 || next[2] != 5 {
		t.Fatalf("seed at view 1: %v", next)
	}
}

// TestScratchParallelSplits checks the plan accounting under parallel
// dispatch: scratch mode splits at every view after the first no matter how
// many replicas execute them.
func TestScratchParallelSplits(t *testing.T) {
	col := randomCollection(t, 6, 7)
	for _, par := range []int{1, 2, 4, 8} {
		res, err := RunCollection(col, analytics.WCC{}, RunOptions{Mode: Scratch, Parallelism: par})
		if err != nil {
			t.Fatal(err)
		}
		if res.Splits != col.Stream.NumViews()-1 {
			t.Fatalf("parallelism %d: %d splits", par, res.Splits)
		}
	}
}

// TestParallelOnSingleSegment checks that parallelism is harmless where no
// independence exists: diff-only has one segment, so extra replicas idle.
func TestParallelOnSingleSegment(t *testing.T) {
	col := randomCollection(t, 5, 11)
	res, err := RunCollection(col, analytics.WCC{}, RunOptions{Mode: DiffOnly, Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.Splits != 0 {
		t.Fatalf("%d splits in diff-only", res.Splits)
	}
	if len(res.FinalResults()) == 0 {
		t.Fatal("no results")
	}
}
