package core

import (
	"strings"
	"testing"
	"time"

	"graphsurge/internal/analytics"
	"graphsurge/internal/splitting"
)

// TestSortedResultsOrder pins the presentation order of vertex-value
// output: ascending vertex ID, regardless of map iteration order. Both the
// CLI's result listing and the server's NDJSON result stream enumerate
// through SortedResults, so this is the one place the order is defined.
func TestSortedResultsOrder(t *testing.T) {
	final := map[analytics.VertexValue]int64{
		{V: 9, Val: 1}: 1,
		{V: 2, Val: 7}: 1,
		{V: 5, Val: 3}: 1,
		{V: 1, Val: 9}: 1,
	}
	for round := 0; round < 10; round++ {
		items := SortedResults(final)
		var got []uint64
		for _, it := range items {
			got = append(got, it.V)
		}
		want := []uint64{1, 2, 5, 9}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("round %d: order %v, want %v", round, got, want)
			}
		}
	}
}

// TestWriteResultsFormat pins the exact bytes of the result listing —
// header, truncation to n, and the padded vertex lines.
func TestWriteResultsFormat(t *testing.T) {
	final := map[analytics.VertexValue]int64{
		{V: 3, Val: 30}:   1,
		{V: 1, Val: 10}:   1,
		{V: 200, Val: -2}: 1,
	}
	var sb strings.Builder
	WriteResults(&sb, final, 2)
	want := "results (3 vertices, first 2):\n" +
		"  vertex 1          value 10\n" +
		"  vertex 3          value 30\n"
	if sb.String() != want {
		t.Fatalf("WriteResults rendered:\n%q\nwant:\n%q", sb.String(), want)
	}
}

// TestWriteRunSummaryFormat pins the run summary rendering against a
// synthetic result: header line, segment lines interleaved at their start
// views, and the per-view lines.
func TestWriteRunSummaryFormat(t *testing.T) {
	res := &RunResult{
		Computation: "wcc",
		Collection:  "cc",
		Mode:        Scratch,
		Total:       3 * time.Millisecond,
		Wall:        2 * time.Millisecond,
		Splits:      1,
		Segments: []SegmentStats{
			{Start: 0, End: 1, Setup: time.Millisecond, Drain: time.Millisecond},
			{Start: 1, End: 2, Setup: time.Millisecond, Drain: time.Millisecond, Speculative: true},
		},
		Stats: []ViewStats{
			{Index: 0, Name: "a", Mode: splitting.ModeScratch, Duration: time.Millisecond, ViewSize: 10, DiffSize: 10, OutputDiffs: 4},
			{Index: 1, Name: "b", Mode: splitting.ModeScratch, Duration: 2 * time.Millisecond, ViewSize: 8, DiffSize: 5, OutputDiffs: 2},
		},
	}
	var sb strings.Builder
	WriteRunSummary(&sb, res)
	want := "wcc on cc (scratch): 3ms total, 2ms wall, 1 splits\n" +
		"  segment views [0,1): replica setup 1ms, drain 1ms\n" +
		"  view 0   a                scratch  |GV|=10       |dC|=10       out-diffs=4        1ms\n" +
		"  segment views [1,2): replica setup 1ms, drain 1ms, speculative\n" +
		"  view 1   b                scratch  |GV|=8        |dC|=5        out-diffs=2        2ms\n"
	if sb.String() != want {
		t.Fatalf("WriteRunSummary rendered:\n%q\nwant:\n%q", sb.String(), want)
	}
}
