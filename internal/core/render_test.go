package core

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"graphsurge/internal/analytics"
	"graphsurge/internal/splitting"
)

// TestSortedResultsOrder pins the presentation order of vertex-value
// output: ascending vertex ID, regardless of map iteration order. Both the
// CLI's result listing and the server's NDJSON result stream enumerate
// through SortedResults, so this is the one place the order is defined.
func TestSortedResultsOrder(t *testing.T) {
	final := map[analytics.VertexValue]int64{
		{V: 9, Val: 1}: 1,
		{V: 2, Val: 7}: 1,
		{V: 5, Val: 3}: 1,
		{V: 1, Val: 9}: 1,
	}
	for round := 0; round < 10; round++ {
		items := SortedResults(final)
		var got []uint64
		for _, it := range items {
			got = append(got, it.V)
		}
		want := []uint64{1, 2, 5, 9}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("round %d: order %v, want %v", round, got, want)
			}
		}
	}
}

// TestWriteResultsFormat pins the exact bytes of the result listing —
// header, truncation to n, and the padded vertex lines.
func TestWriteResultsFormat(t *testing.T) {
	final := map[analytics.VertexValue]int64{
		{V: 3, Val: 30}:   1,
		{V: 1, Val: 10}:   1,
		{V: 200, Val: -2}: 1,
	}
	var sb strings.Builder
	WriteResults(&sb, final, 2)
	want := "results (3 vertices, first 2):\n" +
		"  vertex 1          value 10\n" +
		"  vertex 3          value 30\n"
	if sb.String() != want {
		t.Fatalf("WriteResults rendered:\n%q\nwant:\n%q", sb.String(), want)
	}
}

// TestWriteRunSummaryFormat pins the run summary rendering against a
// synthetic result: header line, segment lines interleaved at their start
// views, and the per-view lines.
func TestWriteRunSummaryFormat(t *testing.T) {
	res := &RunResult{
		Computation: "wcc",
		Collection:  "cc",
		Mode:        Scratch,
		Total:       3 * time.Millisecond,
		Wall:        2 * time.Millisecond,
		Splits:      1,
		Segments: []SegmentStats{
			{Start: 0, End: 1, Setup: time.Millisecond, Drain: time.Millisecond},
			{Start: 1, End: 2, Setup: time.Millisecond, Drain: time.Millisecond, Speculative: true},
		},
		Stats: []ViewStats{
			{Index: 0, Name: "a", Mode: splitting.ModeScratch, Duration: time.Millisecond, ViewSize: 10, DiffSize: 10, OutputDiffs: 4},
			{Index: 1, Name: "b", Mode: splitting.ModeScratch, Duration: 2 * time.Millisecond, ViewSize: 8, DiffSize: 5, OutputDiffs: 2},
		},
	}
	var sb strings.Builder
	WriteRunSummary(&sb, res)
	want := "wcc on cc (scratch): 3ms total, 2ms wall, 1 splits\n" +
		"  segment views [0,1): replica setup 1ms, drain 1ms\n" +
		"  view 0   a                scratch  |GV|=10       |dC|=10       out-diffs=4        1ms\n" +
		"  segment views [1,2): replica setup 1ms, drain 1ms, speculative\n" +
		"  view 1   b                scratch  |GV|=8        |dC|=5        out-diffs=2        2ms\n"
	if sb.String() != want {
		t.Fatalf("WriteRunSummary rendered:\n%q\nwant:\n%q", sb.String(), want)
	}
}

// TestLockedWriterBlockAtomicity pins the interleaving contract the CLI's
// -progress mode depends on: with every renderer routed through one
// LockedWriter, concurrent multi-line blocks (run summaries, pool stats)
// and progress lines interleave only at block boundaries — the output is
// exactly a permutation of whole blocks, never sheared lines. The test
// renders distinguishable blocks from many goroutines and then re-parses
// the stream as a sequence of known blocks; any mid-block interleaving
// breaks the parse.
func TestLockedWriterBlockAtomicity(t *testing.T) {
	const writers = 8
	const rounds = 25

	summaryFor := func(i int) *RunResult {
		return &RunResult{
			Computation: "wcc",
			Collection:  fmt.Sprintf("c%d", i),
			Mode:        Scratch,
			Total:       time.Millisecond,
			Wall:        time.Millisecond,
			Splits:      1,
			Segments: []SegmentStats{
				{Start: 0, End: 2, Setup: time.Millisecond, Drain: time.Millisecond},
			},
			Stats: []ViewStats{
				{Index: 0, Name: "a", Mode: splitting.ModeScratch, Duration: time.Millisecond, ViewSize: 4, DiffSize: 4, OutputDiffs: 1},
				{Index: 1, Name: "b", Mode: splitting.ModeScratch, Duration: time.Millisecond, ViewSize: 3, DiffSize: 2, OutputDiffs: 1},
			},
		}
	}
	poolsFor := func(i int) []PoolStat {
		return []PoolStat{
			{Computation: "wcc", Workers: i, Capacity: 2, Live: 1, Idle: 1, Built: 3, Reused: 5},
			{Computation: "prank", Workers: i, Capacity: 2, Live: 2, Built: 2, Reused: 1, Dropped: 1},
		}
	}
	progressFor := func(i int) SegmentStats {
		return SegmentStats{Start: i, End: i + 1, Setup: time.Millisecond, Drain: 2 * time.Millisecond}
	}

	// Render each writer's three blocks once, single-threaded, to know the
	// exact byte sequences the concurrent phase must keep intact.
	var blocks []string
	for i := 0; i < writers; i++ {
		var summary, pools, progress strings.Builder
		WriteRunSummary(&summary, summaryFor(i))
		WritePoolStats(&pools, poolsFor(i))
		WriteSegmentProgress(&progress, progressFor(i))
		blocks = append(blocks, summary.String(), pools.String(), progress.String())
	}

	var buf bytes.Buffer
	out := NewLockedWriter(&buf)
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				WriteRunSummary(out, summaryFor(i))
				WritePoolStats(out, poolsFor(i))
				WriteSegmentProgress(out, progressFor(i))
			}
		}(i)
	}
	wg.Wait()

	rest := buf.String()
	parsed := 0
	for rest != "" {
		matched := false
		for _, b := range blocks {
			if strings.HasPrefix(rest, b) {
				rest = rest[len(b):]
				parsed++
				matched = true
				break
			}
		}
		if !matched {
			head := rest
			if len(head) > 200 {
				head = head[:200]
			}
			t.Fatalf("output sheared mid-block after %d whole blocks; next bytes:\n%q", parsed, head)
		}
	}
	if want := writers * rounds * 3; parsed != want {
		t.Fatalf("parsed %d whole blocks, want %d", parsed, want)
	}
}
