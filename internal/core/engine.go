// Package core ties Graphsurge together: the engine facade that owns the
// graph store and view catalogs, executes GVDL statements, and runs
// analytics computations over view collections with the paper's three
// execution strategies — diff-only, scratch, and the adaptive splitting
// optimizer (§3, §5, §7).
package core

import (
	"context"
	"errors"
	"fmt"
	"os"
	"reflect"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"graphsurge/internal/aggregate"
	"graphsurge/internal/analytics"
	"graphsurge/internal/graph"
	"graphsurge/internal/gvdl"
	"graphsurge/internal/obs"
	"graphsurge/internal/schedule"
	"graphsurge/internal/view"
)

// Options configures an Engine.
type Options struct {
	// DataDir persists graphs when non-empty.
	DataDir string
	// Workers is the default dataflow parallelism (minimum 1).
	Workers int
	// Parallelism is the default RunOptions.Parallelism for RunCollection —
	// the number of independent collection segments executed concurrently
	// per run (minimum 1).
	Parallelism int
	// Ordering is the default collection-ordering mode for Execute.
	Ordering view.OrderingMode
	// PoolMaxIdle is the per-pool idle-replica high-water mark: a replica
	// released beyond it is dropped instead of cached (0 = unlimited).
	PoolMaxIdle int
	// PoolIdleTTL drops warm replicas idle longer than this; the clock is
	// lazy — pools are swept on engine pool access (runnerPool, PoolStats),
	// no background goroutine (0 = no TTL).
	PoolIdleTTL time.Duration
}

// ErrNotFound reports that a name resolved to no view or collection, as
// opposed to one that exists but failed to load from the view store —
// callers branch on it with errors.Is (resolveTarget falls back to the
// graph store only on ErrNotFound, never on a load failure).
var ErrNotFound = errors.New("not found")

// ErrClosing reports a run rejected because Engine.Close is draining: Close
// waits for in-flight runs to finish before tearing the pools down, and a
// run arriving during that wait is refused rather than racing the teardown.
var ErrClosing = errors.New("core: engine is closing")

// Engine is a Graphsurge instance: graph store, view store, executors, and
// the warm runner pools that amortize dataflow construction across
// RunCollection calls (see DESIGN.md on the engine pool lifecycle).
type Engine struct {
	opts  Options
	store *graph.Store

	mu          sync.RWMutex
	views       map[string]*view.Filtered
	collections map[string]*view.Collection
	aggViews    map[string]*aggregate.View
	// aggStmts retains each aggregate view's defining statement so the view
	// can be re-evaluated when its base graph mutates (aggregate views are
	// memory-only; the statement is their only recoverable definition).
	aggStmts map[string]*gvdl.CreateAggView

	poolMu sync.Mutex
	pools  map[poolKey]*poolEntry

	// incMu guards the incremental replica map (incremental.go); per-state
	// locks serialize runs over one replica.
	incMu     sync.Mutex
	incStates map[incKey]*incState

	// runMu guards the active-run count, the closing flag and the mutating
	// flag; runDone is signalled as active reaches zero and as a mutation
	// finishes, so Close can wait for in-flight work instead of racing pool
	// map accesses and replica releases, and so runs and mutations mutually
	// exclude (a mutation edits views and difference streams in place).
	runMu    sync.Mutex
	runDone  *sync.Cond
	active   int
	closing  bool
	mutating bool

	// traces retains recent completed run traces keyed by run ID — what
	// `GET /v1/traces/<runID>` and `run -trace` read; runSeq numbers the
	// runs this engine admits.
	traces *obs.TraceStore
	runSeq atomic.Uint64
}

// poolEntry is one warm-pool map slot: the pool, its scheduling estimator,
// and the last time a run acquired through it — the recency the LRU
// eviction below orders by.
type poolEntry struct {
	pool    *analytics.Pool
	est     *schedule.Estimator
	lastUse time.Time
}

// maxEnginePools bounds the warm-pool map: parameterized computations (a
// bfs sweep over thousands of sources) would otherwise accumulate one pool
// of full-state replicas per parameterization, never reused. At the cap the
// least-recently-used pool — the coldest parameterization — is evicted to
// make room.
const maxEnginePools = 64

// poolKey identifies one warm runner pool: the computation's name, its full
// identity (name plus parameters, so bfs(source=1) and bfs(source=2) never
// share recycled dataflows) and the intra-dataflow worker count the
// replicas were built with. The name is a separate field so EvictPools
// never has to parse it back out of the composite identity.
type poolKey struct {
	name    string
	ident   string
	workers int
}

// compIdentity renders a computation's identity for pool keying. Built-in
// computations are plain parameter structs, so their Go-syntax
// representation (%#v — which, unlike %+v, quotes string fields, keeping
// adjacent fields unambiguous) is a faithful, deterministic identity.
func compIdentity(comp analytics.Computation) string {
	return fmt.Sprintf("%s|%#v", comp.Name(), comp)
}

// identifiableComp reports whether a computation's printed value faithfully
// identifies it. Funcs and channels print as addresses that don't
// distinguish captured state (two closures from one literal print
// identically), interface fields hide arbitrary dynamic types, and nested
// pointers print as raw addresses rather than pointee values — so
// computations carrying any of those are never pooled across runs: sharing
// a recycled dataflow between semantically different computations would
// silently return wrong results, and address-based keys would also leak one
// pool per allocation. Only the top-level pointer receiver is exempt,
// because fmt dereferences it (&{...}).
func identifiableComp(comp analytics.Computation) bool {
	t := reflect.TypeOf(comp)
	if t != nil && t.Kind() == reflect.Pointer {
		t = t.Elem()
	}
	return identifiableType(t, make(map[reflect.Type]bool))
}

func identifiableType(t reflect.Type, seen map[reflect.Type]bool) bool {
	if t == nil || seen[t] {
		return true
	}
	seen[t] = true
	switch t.Kind() {
	case reflect.Func, reflect.Chan, reflect.UnsafePointer, reflect.Uintptr,
		reflect.Interface, reflect.Pointer:
		return false
	case reflect.Slice, reflect.Array:
		return identifiableType(t.Elem(), seen)
	case reflect.Map:
		return identifiableType(t.Key(), seen) && identifiableType(t.Elem(), seen)
	case reflect.Struct:
		for i := 0; i < t.NumField(); i++ {
			if !identifiableType(t.Field(i).Type, seen) {
				return false
			}
		}
	}
	return true
}

// NewEngine creates an engine.
func NewEngine(opts Options) (*Engine, error) {
	if opts.Workers < 1 {
		opts.Workers = 1
	}
	if opts.Parallelism < 1 {
		opts.Parallelism = 1
	}
	st, err := graph.NewStore(opts.DataDir)
	if err != nil {
		return nil, err
	}
	e := &Engine{
		opts:        opts,
		store:       st,
		views:       make(map[string]*view.Filtered),
		collections: make(map[string]*view.Collection),
		aggViews:    make(map[string]*aggregate.View),
		aggStmts:    make(map[string]*gvdl.CreateAggView),
		pools:       make(map[poolKey]*poolEntry),
		incStates:   make(map[incKey]*incState),
		traces:      obs.NewTraceStore(0),
	}
	e.runDone = sync.NewCond(&e.runMu)
	return e, nil
}

// Traces returns the engine's completed-trace store. The HTTP server
// serves it at /v1/traces; the CLI renders from it after a -trace run.
func (e *Engine) Traces() *obs.TraceStore { return e.traces }

// ensureTrace returns a context carrying a run trace, creating one (with
// a fresh engine-scoped run ID) when the caller supplied none. created
// reports whether this call made the trace — the creator is responsible
// for adding it to the trace store once the run completes.
func (e *Engine) ensureTrace(ctx context.Context) (context.Context, *obs.Trace, bool) {
	if tr := obs.FromContext(ctx); tr != nil {
		return ctx, tr, false
	}
	tr := obs.NewTrace(fmt.Sprintf("run-%d", e.runSeq.Add(1)))
	return obs.WithTrace(ctx, tr), tr, true
}

// beginRun admits one run (RunOn, RunSegment, a materializing statement)
// against the engine's pools and catalogs, refusing with ErrClosing while
// Close is draining and waiting while a mutation holds the barrier (the
// mutation edits views and streams the run would read). Every successful
// beginRun is paired with an endRun.
func (e *Engine) beginRun() error {
	e.runMu.Lock()
	defer e.runMu.Unlock()
	for e.mutating {
		if e.closing {
			return ErrClosing
		}
		e.runDone.Wait()
	}
	if e.closing {
		return ErrClosing
	}
	e.active++
	return nil
}

// Admit runs fn under the engine's run barrier: fn executes only while no
// mutation is editing catalog artifacts in place, and any mutation arriving
// meanwhile waits for fn to return. Serving middleware (internal/tenant)
// uses it to read collection difference streams — for cache fingerprinting —
// race-free against incremental maintenance. fn must not re-enter the
// engine's run or mutation paths (RunOn, ExtendReplay, ApplyMutation): a
// nested admission would deadlock behind a mutation waiting for this one to
// drain. Refuses with ErrClosing while Close is draining.
func (e *Engine) Admit(fn func() error) error {
	if err := e.beginRun(); err != nil {
		return err
	}
	defer e.endRun()
	return fn()
}

func (e *Engine) endRun() {
	e.runMu.Lock()
	e.active--
	if e.active == 0 {
		e.runDone.Broadcast()
	}
	e.runMu.Unlock()
}

// Options returns the engine's effective configuration (defaults applied).
func (e *Engine) Options() Options { return e.opts }

// runnerPool returns the engine's warm runner pool and scheduling cost
// estimator for (computation, workers), creating them on first use and
// growing the pool's replica capacity to at least parallelism. Pools are
// shared by concurrent RunCollection calls: the pool is the global
// admission control (at most capacity replicas live across all runs), each
// run additionally self-limits to its own Parallelism, and released
// replicas are recycled across calls via in-place reset. The estimator
// persists alongside the pool so later runs' LPT scheduling uses costs
// learned from earlier ones. Every lookup also lazily sweeps the idle-TTL
// policy across all pools — the engine's clock is its own call traffic.
func (e *Engine) runnerPool(comp analytics.Computation, workers, parallelism int) (*analytics.Pool, *schedule.Estimator) {
	if !identifiableComp(comp) {
		// No faithful identity to key on: give the run a private pool so a
		// replica can never be recycled into a different computation (and a
		// private estimator, since costs learned for one closure could
		// describe a semantically different one).
		return analytics.NewPool(comp, workers, parallelism), nil
	}
	key := poolKey{name: comp.Name(), ident: compIdentity(comp), workers: workers}
	e.poolMu.Lock()
	defer e.poolMu.Unlock()
	now := time.Now()
	if e.opts.PoolIdleTTL > 0 {
		for _, en := range e.pools {
			en.pool.Prune(now)
		}
	}
	en := e.pools[key]
	if en != nil && compIdentity(en.pool.Computation()) != key.ident {
		// The cached computation object was mutated after submission (a
		// pointer computation whose fields changed), so the pool would build
		// replicas that contradict its key. Drop the stale pool and rebuild.
		en.pool.DropIdle()
		en = nil
		delete(e.pools, key)
	}
	if en == nil {
		if len(e.pools) >= maxEnginePools {
			// Evict the least-recently-acquired pool: the coldest
			// parameterization is the one least likely to be asked for again.
			var victim poolKey
			var oldest time.Time
			first := true
			for k, old := range e.pools {
				if first || old.lastUse.Before(oldest) {
					victim, oldest, first = k, old.lastUse, false
				}
			}
			e.pools[victim].pool.DropIdle()
			delete(e.pools, victim)
		}
		p := analytics.NewPool(comp, workers, parallelism)
		p.SetPolicy(e.opts.PoolMaxIdle, e.opts.PoolIdleTTL)
		en = &poolEntry{pool: p, est: &schedule.Estimator{}}
		e.pools[key] = en
	} else {
		en.pool.Grow(parallelism)
	}
	en.lastUse = now
	return en.pool, en.est
}

// EvictPools drops every warm runner pool whose computation has the given
// name (all parameterizations and worker counts), releasing their replica
// memory. In-flight runs keep their already-acquired replicas; their
// releases land in the evicted pools, which are collected once those runs
// finish.
func (e *Engine) EvictPools(computation string) {
	e.poolMu.Lock()
	defer e.poolMu.Unlock()
	for key, en := range e.pools {
		if key.name == computation {
			en.pool.DropIdle()
			delete(e.pools, key)
		}
	}
}

// Close releases engine-held resources: it waits for in-flight runs to
// complete (runs that arrive while it is waiting are refused with
// ErrClosing — Close never races the pool map or a replica release), then
// drops every warm runner pool. The engine remains usable once Close
// returns — a later RunCollection simply rebuilds its pools — so Close is
// also the "quiesce and evict everything" path for memory pressure.
func (e *Engine) Close() error {
	e.runMu.Lock()
	e.closing = true
	for e.active > 0 || e.mutating {
		e.runDone.Wait()
	}
	e.poolMu.Lock()
	for key, en := range e.pools {
		en.pool.DropIdle()
		delete(e.pools, key)
	}
	e.poolMu.Unlock()
	e.incMu.Lock()
	for key := range e.incStates {
		delete(e.incStates, key)
	}
	e.incMu.Unlock()
	e.closing = false
	e.runMu.Unlock()
	return nil
}

// PoolStat is one warm runner pool's externally visible state: identity,
// capacity and occupancy, and the lifetime effectiveness counters
// (built/reused acquisitions, policy-dropped idle replicas).
type PoolStat struct {
	Computation string `json:"computation"` // computation name
	Ident       string `json:"ident"`       // full identity (name plus parameters)
	Workers     int    `json:"workers"`
	Capacity    int    `json:"capacity"`
	Live        int    `json:"live"`
	Idle        int    `json:"idle"`
	Built       int    `json:"built"`
	Reused      int    `json:"reused"`
	Dropped     int    `json:"dropped"`
}

// PoolStats reports every warm runner pool's state, sorted by computation
// identity then workers for deterministic output — the metrics export for
// pool sizing (cmd/graphsurge prints it after runs). The call also sweeps
// the idle-TTL policy, so a stats poller doubles as the lazy clock.
func (e *Engine) PoolStats() []PoolStat {
	e.poolMu.Lock()
	defer e.poolMu.Unlock()
	now := time.Now()
	stats := make([]PoolStat, 0, len(e.pools))
	for key, en := range e.pools {
		p := en.pool
		if e.opts.PoolIdleTTL > 0 {
			p.Prune(now)
		}
		built, reused := p.Counts()
		stats = append(stats, PoolStat{
			Computation: key.name,
			Ident:       key.ident,
			Workers:     key.workers,
			Capacity:    p.Size(),
			Live:        p.Live(),
			Idle:        p.Idle(),
			Built:       built,
			Reused:      reused,
			Dropped:     p.Dropped(),
		})
	}
	sort.Slice(stats, func(i, j int) bool {
		if stats[i].Ident != stats[j].Ident {
			return stats[i].Ident < stats[j].Ident
		}
		return stats[i].Workers < stats[j].Workers
	})
	return stats
}

// LoadGraphCSV imports a graph from CSV files and registers it.
func (e *Engine) LoadGraphCSV(name, nodesPath, edgesPath string) (*graph.Graph, error) {
	g, err := graph.LoadCSV(name, nodesPath, edgesPath)
	if err != nil {
		return nil, err
	}
	if err := e.store.Add(g); err != nil {
		return nil, err
	}
	return g, nil
}

// AddGraph registers an in-memory graph (datagen, tests).
func (e *Engine) AddGraph(g *graph.Graph) error { return e.store.Add(g) }

// AddCollection registers a prebuilt materialized collection (datagen,
// benchmarks, embedding callers that materialize outside GVDL). It is
// persisted like a GVDL-created collection when the engine has a data
// directory.
func (e *Engine) AddCollection(col *view.Collection) error {
	// Persist first: a failed save must not leave a phantom collection
	// registered in memory that the caller was told failed and that would
	// silently vanish on restart.
	if e.opts.DataDir != "" {
		if err := view.SaveCollection(e.opts.DataDir, col); err != nil {
			return err
		}
	}
	e.mu.Lock()
	e.collections[col.Name] = col
	e.mu.Unlock()
	e.dropIncStates(col.Name)
	return nil
}

// Graph looks up a base graph.
func (e *Engine) Graph(name string) (*graph.Graph, error) { return e.store.Graph(name) }

// LookupView returns the materialized filtered view with the given name,
// falling back to the view store on disk when the engine has a data
// directory. A name that resolves to nothing returns an error wrapping
// ErrNotFound; a view that exists on disk but fails to load — corrupt gob,
// out-of-range edge indices, missing base graph — returns the load error
// itself, so corruption is never silently indistinguishable from absence.
func (e *Engine) LookupView(name string) (*view.Filtered, error) {
	e.mu.RLock()
	v, ok := e.views[name]
	e.mu.RUnlock()
	if ok {
		return v, nil
	}
	if e.opts.DataDir == "" {
		return nil, fmt.Errorf("core: no view named %q: %w", name, ErrNotFound)
	}
	loaded, err := view.LoadFiltered(e.opts.DataDir, name, e.store.Graph)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, fmt.Errorf("core: no view named %q: %w", name, ErrNotFound)
		}
		if errors.Is(err, view.ErrInvalidName) {
			// A name the store refuses can never be a stored view: absence,
			// not failure — resolveTarget may still find a graph by it.
			return nil, fmt.Errorf("core: %v: %w", err, ErrNotFound)
		}
		return nil, fmt.Errorf("core: loading view %q from the view store: %w", name, err)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if v, ok := e.views[name]; ok {
		// A concurrent miss won the load race; keep the cached object so
		// every caller shares one view instance instead of the last loader
		// clobbering the rest.
		return v, nil
	}
	e.views[name] = loaded
	return loaded, nil
}

// View looks up a materialized filtered view, falling back to the view
// store on disk when the engine has a data directory. It is the boolean
// convenience over LookupView; callers that must distinguish a missing view
// from a failed disk load use LookupView directly.
func (e *Engine) View(name string) (*view.Filtered, bool) {
	v, err := e.LookupView(name)
	return v, err == nil
}

// LookupCollection returns the materialized view collection with the given
// name, falling back to the view store on disk when the engine has a data
// directory. Error semantics match LookupView: ErrNotFound for absence, the
// underlying load error for a collection that exists but cannot be loaded.
func (e *Engine) LookupCollection(name string) (*view.Collection, error) {
	e.mu.RLock()
	c, ok := e.collections[name]
	e.mu.RUnlock()
	if ok {
		return c, nil
	}
	if e.opts.DataDir == "" {
		return nil, fmt.Errorf("core: no collection named %q: %w", name, ErrNotFound)
	}
	loaded, err := view.LoadCollection(e.opts.DataDir, name, e.store.Graph)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, fmt.Errorf("core: no collection named %q: %w", name, ErrNotFound)
		}
		if errors.Is(err, view.ErrInvalidName) {
			return nil, fmt.Errorf("core: %v: %w", err, ErrNotFound)
		}
		return nil, fmt.Errorf("core: loading collection %q from the view store: %w", name, err)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if c, ok := e.collections[name]; ok {
		return c, nil
	}
	e.collections[name] = loaded
	return loaded, nil
}

// Collection looks up a materialized view collection, falling back to the
// view store on disk when the engine has a data directory.
func (e *Engine) Collection(name string) (*view.Collection, bool) {
	c, err := e.LookupCollection(name)
	return c, err == nil
}

// AggView looks up a materialized aggregate view.
func (e *Engine) AggView(name string) (*aggregate.View, bool) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	v, ok := e.aggViews[name]
	return v, ok
}

// resolveTarget resolves a statement's "on" clause to a base graph plus an
// optional edge restriction (when the target is itself a filtered view —
// GVDL supports views over views). Resolution goes through LookupView, so a
// view persisted by an earlier engine over the same data directory is a
// valid target after a restart; a view-store load failure is surfaced
// rather than misreported as "neither a graph nor a view".
func (e *Engine) resolveTarget(name string) (*graph.Graph, *view.Filtered, error) {
	fv, err := e.LookupView(name)
	if err == nil {
		return fv.Base, fv, nil
	}
	if !errors.Is(err, ErrNotFound) {
		return nil, nil, err
	}
	g, gerr := e.store.Graph(name)
	if gerr != nil {
		return nil, nil, fmt.Errorf("core: target %q is neither a graph nor a view", name)
	}
	return g, nil, nil
}

// restrictPredicate limits a compiled predicate to a view's edge subset.
func restrictPredicate(p gvdl.EdgePredicate, fv *view.Filtered, numEdges int) gvdl.EdgePredicate {
	if fv == nil {
		return p
	}
	member := view.NewBitset(numEdges)
	for _, idx := range fv.Edges {
		member.Set(int(idx))
	}
	return func(i int) bool { return member.Get(i) && p(i) }
}

// Execute parses and runs GVDL statements, materializing the views they
// define. It returns a short description per statement — the rendered form
// of the typed results ExecuteContext produces; both are one code path.
func (e *Engine) Execute(src string) ([]string, error) {
	//lint:ignore ctxflow compat shim: pre-Session API with no ctx parameter; ExecuteContext is the cancelable path
	results, err := e.ExecuteContext(context.Background(), src)
	out := make([]string, 0, len(results))
	for _, r := range results {
		out = append(out, r.String())
	}
	return out, err
}

// ExecuteContext parses and runs GVDL statements, materializing the views
// they define, and returns one typed gvdl.Result per completed statement —
// the programmatic form Session.Do and the HTTP server consume. ctx is
// checked between statements: a canceled batch stops before its next
// statement and returns the results of those already executed alongside
// ctx's error (statement execution itself is one uninterruptible
// materialization).
func (e *Engine) ExecuteContext(ctx context.Context, src string) ([]gvdl.Result, error) {
	stmts, err := gvdl.ParseAll(src)
	if err != nil {
		return nil, err
	}
	var out []gvdl.Result
	for _, stmt := range stmts {
		if err := ctx.Err(); err != nil {
			return out, err
		}
		res, err := e.executeStmt(stmt)
		if err != nil {
			return out, err
		}
		out = append(out, res)
	}
	return out, nil
}

func (e *Engine) executeStmt(stmt gvdl.Statement) (gvdl.Result, error) {
	if s, ok := stmt.(*gvdl.ApplyMutation); ok {
		// Mutations take the mutation barrier themselves; every other
		// statement is admitted as a run below, so materializations never
		// read graph columns mid-append.
		return e.applyStmt(s)
	}
	if err := e.beginRun(); err != nil {
		return nil, err
	}
	defer e.endRun()
	switch s := stmt.(type) {
	case *gvdl.CreateView:
		g, fv, err := e.resolveTarget(s.On)
		if err != nil {
			return nil, err
		}
		pred, err := gvdl.CompileEdgePredicate(g, s.Where)
		if err != nil {
			return nil, fmt.Errorf("view %s: %w", s.Name, err)
		}
		pred = restrictPredicate(pred, fv, g.NumEdges())
		mv := &view.Filtered{Name: s.Name, Base: g, PredSrc: s.Where.String(), Version: g.Version}
		if fv != nil {
			mv.On = s.On
		}
		for i := 0; i < g.NumEdges(); i++ {
			if g.EdgeAlive(i) && pred(i) {
				mv.Edges = append(mv.Edges, uint32(i))
			}
		}
		e.mu.Lock()
		e.views[s.Name] = mv
		e.mu.Unlock()
		if e.opts.DataDir != "" {
			if err := view.SaveFiltered(e.opts.DataDir, mv); err != nil {
				return nil, err
			}
		}
		return gvdl.ViewCreated{Name: s.Name, Edges: mv.NumEdges()}, nil

	case *gvdl.CreateCollection:
		g, fv, err := e.resolveTarget(s.On)
		if err != nil {
			return nil, err
		}
		names := make([]string, len(s.Views))
		preds := make([]gvdl.EdgePredicate, len(s.Views))
		for i, v := range s.Views {
			p, err := gvdl.CompileEdgePredicate(g, v.Pred)
			if err != nil {
				return nil, fmt.Errorf("collection %s, view %s: %w", s.Name, v.Name, err)
			}
			names[i], preds[i] = v.Name, restrictPredicate(p, fv, g.NumEdges())
		}
		col, err := view.MaterializeFromPredicates(s.Name, g, names, preds, view.Options{
			Workers: e.opts.Workers,
			Mode:    e.opts.Ordering,
		})
		if err != nil {
			return nil, err
		}
		srcs := make([]string, len(s.Views))
		for i, v := range s.Views {
			srcs[i] = v.Pred.String()
		}
		col.PredSrcs = srcs
		if fv != nil {
			col.On = s.On
		}
		e.mu.Lock()
		e.collections[s.Name] = col
		e.mu.Unlock()
		// A re-created collection invalidates any incremental replica state
		// accumulated under its name.
		e.dropIncStates(s.Name)
		if e.opts.DataDir != "" {
			if err := view.SaveCollection(e.opts.DataDir, col); err != nil {
				return nil, err
			}
		}
		return gvdl.CollectionCreated{
			Name:    s.Name,
			Views:   col.Stream.NumViews(),
			Diffs:   col.Stream.TotalDiffs(),
			Elapsed: col.Timings.Total(),
		}, nil

	case *gvdl.CreateAggView:
		g, fv, err := e.resolveTarget(s.On)
		if err != nil {
			return nil, err
		}
		if fv != nil {
			return nil, fmt.Errorf("aggregate view %s: aggregate views over filtered views are not supported; target a base graph", s.Name)
		}
		av, err := aggregate.Evaluate(g, s, e.opts.Workers)
		if err != nil {
			return nil, err
		}
		e.mu.Lock()
		e.aggViews[s.Name] = av
		e.aggStmts[s.Name] = s
		e.mu.Unlock()
		return gvdl.AggViewCreated{
			Name:       s.Name,
			SuperNodes: len(av.SuperNodes),
			SuperEdges: len(av.SuperEdges),
		}, nil
	}
	return nil, fmt.Errorf("core: unknown statement type %T", stmt)
}
