// Package core ties Graphsurge together: the engine facade that owns the
// graph store and view catalogs, executes GVDL statements, and runs
// analytics computations over view collections with the paper's three
// execution strategies — diff-only, scratch, and the adaptive splitting
// optimizer (§3, §5, §7).
package core

import (
	"fmt"
	"sync"

	"graphsurge/internal/aggregate"
	"graphsurge/internal/graph"
	"graphsurge/internal/gvdl"
	"graphsurge/internal/view"
)

// Options configures an Engine.
type Options struct {
	// DataDir persists graphs when non-empty.
	DataDir string
	// Workers is the default dataflow parallelism (minimum 1).
	Workers int
	// Ordering is the default collection-ordering mode for Execute.
	Ordering view.OrderingMode
}

// Engine is a Graphsurge instance: graph store, view store, executors.
type Engine struct {
	opts  Options
	store *graph.Store

	mu          sync.RWMutex
	views       map[string]*view.Filtered
	collections map[string]*view.Collection
	aggViews    map[string]*aggregate.View
}

// NewEngine creates an engine.
func NewEngine(opts Options) (*Engine, error) {
	if opts.Workers < 1 {
		opts.Workers = 1
	}
	st, err := graph.NewStore(opts.DataDir)
	if err != nil {
		return nil, err
	}
	return &Engine{
		opts:        opts,
		store:       st,
		views:       make(map[string]*view.Filtered),
		collections: make(map[string]*view.Collection),
		aggViews:    make(map[string]*aggregate.View),
	}, nil
}

// LoadGraphCSV imports a graph from CSV files and registers it.
func (e *Engine) LoadGraphCSV(name, nodesPath, edgesPath string) (*graph.Graph, error) {
	g, err := graph.LoadCSV(name, nodesPath, edgesPath)
	if err != nil {
		return nil, err
	}
	if err := e.store.Add(g); err != nil {
		return nil, err
	}
	return g, nil
}

// AddGraph registers an in-memory graph (datagen, tests).
func (e *Engine) AddGraph(g *graph.Graph) error { return e.store.Add(g) }

// Graph looks up a base graph.
func (e *Engine) Graph(name string) (*graph.Graph, error) { return e.store.Graph(name) }

// View looks up a materialized filtered view, falling back to the view
// store on disk when the engine has a data directory.
func (e *Engine) View(name string) (*view.Filtered, bool) {
	e.mu.RLock()
	v, ok := e.views[name]
	e.mu.RUnlock()
	if ok || e.opts.DataDir == "" {
		return v, ok
	}
	loaded, err := view.LoadFiltered(e.opts.DataDir, name, e.store.Graph)
	if err != nil {
		return nil, false
	}
	e.mu.Lock()
	e.views[name] = loaded
	e.mu.Unlock()
	return loaded, true
}

// Collection looks up a materialized view collection, falling back to the
// view store on disk when the engine has a data directory.
func (e *Engine) Collection(name string) (*view.Collection, bool) {
	e.mu.RLock()
	c, ok := e.collections[name]
	e.mu.RUnlock()
	if ok || e.opts.DataDir == "" {
		return c, ok
	}
	loaded, err := view.LoadCollection(e.opts.DataDir, name, e.store.Graph)
	if err != nil {
		return nil, false
	}
	e.mu.Lock()
	e.collections[name] = loaded
	e.mu.Unlock()
	return loaded, true
}

// AggView looks up a materialized aggregate view.
func (e *Engine) AggView(name string) (*aggregate.View, bool) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	v, ok := e.aggViews[name]
	return v, ok
}

// resolveTarget resolves a statement's "on" clause to a base graph plus an
// optional edge restriction (when the target is itself a filtered view —
// GVDL supports views over views).
func (e *Engine) resolveTarget(name string) (*graph.Graph, *view.Filtered, error) {
	e.mu.RLock()
	fv, ok := e.views[name]
	e.mu.RUnlock()
	if ok {
		return fv.Base, fv, nil
	}
	g, err := e.store.Graph(name)
	if err != nil {
		return nil, nil, fmt.Errorf("core: target %q is neither a graph nor a view", name)
	}
	return g, nil, nil
}

// restrictPredicate limits a compiled predicate to a view's edge subset.
func restrictPredicate(p gvdl.EdgePredicate, fv *view.Filtered, numEdges int) gvdl.EdgePredicate {
	if fv == nil {
		return p
	}
	member := view.NewBitset(numEdges)
	for _, idx := range fv.Edges {
		member.Set(int(idx))
	}
	return func(i int) bool { return member.Get(i) && p(i) }
}

// Execute parses and runs GVDL statements, materializing the views they
// define. It returns a short description per statement.
func (e *Engine) Execute(src string) ([]string, error) {
	stmts, err := gvdl.ParseAll(src)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, stmt := range stmts {
		desc, err := e.executeStmt(stmt)
		if err != nil {
			return out, err
		}
		out = append(out, desc)
	}
	return out, nil
}

func (e *Engine) executeStmt(stmt gvdl.Statement) (string, error) {
	switch s := stmt.(type) {
	case *gvdl.CreateView:
		g, fv, err := e.resolveTarget(s.On)
		if err != nil {
			return "", err
		}
		pred, err := gvdl.CompileEdgePredicate(g, s.Where)
		if err != nil {
			return "", fmt.Errorf("view %s: %w", s.Name, err)
		}
		pred = restrictPredicate(pred, fv, g.NumEdges())
		mv := &view.Filtered{Name: s.Name, Base: g}
		for i := 0; i < g.NumEdges(); i++ {
			if pred(i) {
				mv.Edges = append(mv.Edges, uint32(i))
			}
		}
		e.mu.Lock()
		e.views[s.Name] = mv
		e.mu.Unlock()
		if e.opts.DataDir != "" {
			if err := view.SaveFiltered(e.opts.DataDir, mv); err != nil {
				return "", err
			}
		}
		return fmt.Sprintf("view %s: %d edges", s.Name, mv.NumEdges()), nil

	case *gvdl.CreateCollection:
		g, fv, err := e.resolveTarget(s.On)
		if err != nil {
			return "", err
		}
		names := make([]string, len(s.Views))
		preds := make([]gvdl.EdgePredicate, len(s.Views))
		for i, v := range s.Views {
			p, err := gvdl.CompileEdgePredicate(g, v.Pred)
			if err != nil {
				return "", fmt.Errorf("collection %s, view %s: %w", s.Name, v.Name, err)
			}
			names[i], preds[i] = v.Name, restrictPredicate(p, fv, g.NumEdges())
		}
		col, err := view.MaterializeFromPredicates(s.Name, g, names, preds, view.Options{
			Workers: e.opts.Workers,
			Mode:    e.opts.Ordering,
		})
		if err != nil {
			return "", err
		}
		e.mu.Lock()
		e.collections[s.Name] = col
		e.mu.Unlock()
		if e.opts.DataDir != "" {
			if err := view.SaveCollection(e.opts.DataDir, col); err != nil {
				return "", err
			}
		}
		return fmt.Sprintf("collection %s: %d views, %d diffs (created in %v)",
			s.Name, col.Stream.NumViews(), col.Stream.TotalDiffs(), col.Timings.Total()), nil

	case *gvdl.CreateAggView:
		g, fv, err := e.resolveTarget(s.On)
		if err != nil {
			return "", err
		}
		if fv != nil {
			return "", fmt.Errorf("aggregate view %s: aggregate views over filtered views are not supported; target a base graph", s.Name)
		}
		av, err := aggregate.Evaluate(g, s, e.opts.Workers)
		if err != nil {
			return "", err
		}
		e.mu.Lock()
		e.aggViews[s.Name] = av
		e.mu.Unlock()
		return fmt.Sprintf("aggregate view %s: %d super-nodes, %d super-edges",
			s.Name, len(av.SuperNodes), len(av.SuperEdges)), nil
	}
	return "", fmt.Errorf("core: unknown statement type %T", stmt)
}
