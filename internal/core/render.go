package core

import (
	"bytes"
	"fmt"
	"io"
	"sort"
	"sync"

	"graphsurge/internal/analytics"
)

// This file renders typed responses as the CLI's text output. Rendering
// lives behind the typed Response layer so every front-end — cmd/graphsurge
// and the HTTP server's text projections alike — prints identical bytes
// from identical results, and the output format is pinned by tests against
// the types rather than against ad-hoc printf calls scattered in main.
//
// Every renderer assembles its block in a buffer and issues exactly ONE
// Write. Combined with a LockedWriter that serializes Write calls, blocks
// from concurrent producers (an OnSegment progress callback firing from a
// segment goroutine while the main goroutine prints pool stats) can
// interleave only at block boundaries, never mid-line.

// A LockedWriter serializes Write calls from concurrent renderers onto one
// underlying writer. Each renderer's whole block is a single Write, so
// routing all of a front-end's output through one LockedWriter pins block
// atomicity: run summaries, pool stats and progress lines never shear.
type LockedWriter struct {
	mu sync.Mutex
	w  io.Writer
}

// NewLockedWriter wraps w. The zero value is not usable; all of a
// process's renderers must share one LockedWriter for the ordering
// guarantee to mean anything.
func NewLockedWriter(w io.Writer) *LockedWriter { return &LockedWriter{w: w} }

// Write forwards one block to the underlying writer under the lock.
func (lw *LockedWriter) Write(p []byte) (int, error) {
	lw.mu.Lock()
	defer lw.mu.Unlock()
	return lw.w.Write(p)
}

// WriteRunSummary renders a collection run: the header line followed by the
// per-segment and per-view lines, segments interleaved at the view that
// opens them, exactly as `graphsurge run` prints them.
func WriteRunSummary(w io.Writer, res *RunResult) {
	var buf bytes.Buffer
	mode := res.Mode.String()
	if res.Incremental {
		mode += ", incremental"
	}
	fmt.Fprintf(&buf, "%s on %s (%s): %v total, %v wall, %d splits\n",
		res.Computation, res.Collection, mode, res.Total.Round(1000), res.Wall.Round(1000), res.Splits)
	segAt := make(map[int]SegmentStats, len(res.Segments))
	for _, seg := range res.Segments {
		segAt[seg.Start] = seg
	}
	for _, st := range res.Stats {
		if seg, ok := segAt[st.Index]; ok {
			spec := ""
			if seg.Speculative {
				spec = ", speculative"
			}
			fmt.Fprintf(&buf, "  segment views [%d,%d): replica setup %v, drain %v%s\n",
				seg.Start, seg.End, seg.Setup.Round(1000), seg.Drain.Round(1000), spec)
		}
		fmt.Fprintf(&buf, "  view %-3d %-16s %-8s |GV|=%-8d |dC|=%-8d out-diffs=%-8d %v\n",
			st.Index, st.Name, st.Mode, st.ViewSize, st.DiffSize, st.OutputDiffs, st.Duration.Round(1000))
	}
	w.Write(buf.Bytes())
}

// WriteSpeculation renders the speculation hit/miss line.
func WriteSpeculation(w io.Writer, res *RunResult) {
	fmt.Fprintf(w, "speculation: %d hits, %d misses\n", res.SpecHits, res.SpecMisses)
}

// WritePoolStats renders per-pool replica statistics, one line per pool in
// the given (already deterministic) order — one Write for the whole block.
func WritePoolStats(w io.Writer, stats []PoolStat) {
	var buf bytes.Buffer
	for _, ps := range stats {
		fmt.Fprintf(&buf, "pool %s/w=%d: capacity=%d live=%d idle=%d built=%d reused=%d dropped=%d\n",
			ps.Computation, ps.Workers, ps.Capacity, ps.Live, ps.Idle, ps.Built, ps.Reused, ps.Dropped)
	}
	w.Write(buf.Bytes())
}

// WriteSegmentProgress renders one segment's completion line — the
// streaming form of a run summary's segment line, printed by `run
// -progress` as OnSegment fires from concurrent segment goroutines.
func WriteSegmentProgress(w io.Writer, st SegmentStats) {
	fmt.Fprintf(w, "segment views [%d,%d) done: replica setup %v, drain %v\n",
		st.Start, st.End, st.Setup.Round(1000), st.Drain.Round(1000))
}

// WriteMutation renders an applied mutation batch's one-line summary — the
// same line the GVDL apply statement's typed result prints, so the two
// mutation front-ends (typed request, statement) read identically.
func WriteMutation(w io.Writer, res *MutationApplied) {
	fmt.Fprintf(w, "graph %s: +%d/-%d edges, %d views maintained, now at version %d\n",
		res.Graph, res.Inserted, res.Deleted, res.Maintained, res.Version)
}

// WriteViewRun renders a single-view run's header line.
func WriteViewRun(w io.Writer, res *ViewRunResult) {
	fmt.Fprintf(w, "%s on view %s (%d edges): %v, %d result vertices\n",
		res.Computation, res.View, res.Edges, res.Duration.Round(1000), len(res.Results))
}

// SortedResults returns the per-vertex results ordered by ascending vertex
// ID — the pinned presentation order every front-end uses, so the CLI's
// result listing and the server's NDJSON result stream enumerate vertices
// identically.
func SortedResults(final map[analytics.VertexValue]int64) []analytics.VertexValue {
	items := make([]analytics.VertexValue, 0, len(final))
	for v := range final {
		items = append(items, v)
	}
	sort.Slice(items, func(i, j int) bool { return items[i].V < items[j].V })
	return items
}

// WriteResults renders up to n per-vertex results in SortedResults order.
func WriteResults(w io.Writer, final map[analytics.VertexValue]int64, n int) {
	items := SortedResults(final)
	if n > len(items) {
		n = len(items)
	}
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "results (%d vertices, first %d):\n", len(items), n)
	for _, it := range items[:n] {
		fmt.Fprintf(&buf, "  vertex %-10d value %d\n", it.V, it.Val)
	}
	w.Write(buf.Bytes())
}
