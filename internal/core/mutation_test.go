package core

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"graphsurge/internal/datagen"
	"graphsurge/internal/graph"
	"graphsurge/internal/gvdl"
	"graphsurge/internal/view"
)

// liveEdgeWhere returns the first live edge index whose ts satisfies want.
func liveEdgeWhere(t *testing.T, g *graph.Graph, want func(ts int64) bool) int {
	t.Helper()
	tsCol, ok := g.EdgeProps.ColumnIndex("ts")
	if !ok {
		t.Fatal("no ts column")
	}
	for i := 0; i < g.NumEdges(); i++ {
		if g.EdgeAlive(i) && want(g.EdgeProps.Cols[tsCol].Ints[i]) {
			return i
		}
	}
	t.Fatal("no live edge matches")
	return -1
}

// streamMembership reconstructs each ordered view's member set by walking
// the collection's difference stream cumulatively.
func streamMembership(c *view.Collection) []map[uint32]bool {
	k := c.Stream.NumViews()
	out := make([]map[uint32]bool, k)
	cur := map[uint32]bool{}
	for t := 0; t < k; t++ {
		for _, e := range c.Stream.Adds[t] {
			cur[e] = true
		}
		for _, e := range c.Stream.Dels[t] {
			delete(cur, e)
		}
		snap := make(map[uint32]bool, len(cur))
		for e := range cur {
			snap[e] = true
		}
		out[t] = snap
	}
	return out
}

// TestApplyMutationMaintainsViewsAndCollections is the maintenance
// equivalence check: after a GVDL apply statement, every maintained view and
// collection holds exactly the membership a from-scratch rematerialization
// against the mutated graph would produce.
func TestApplyMutationMaintainsViewsAndCollections(t *testing.T) {
	e := newTestEngine(t)
	if _, err := e.Execute(`create view recent on so edges where ts >= 50
create view recent-short on recent edges where duration <= 10
create view collection hist on so [w1: ts < 20], [w2: ts < 40], [w3: ts < 60], [w4: ts < 80], [w5: ts < 100]`); err != nil {
		t.Fatal(err)
	}
	g, _ := e.Graph("so")
	tsCol, _ := g.EdgeProps.ColumnIndex("ts")
	durCol, _ := g.EdgeProps.ColumnIndex("duration")
	ts := func(i int) int64 { return g.EdgeProps.Cols[tsCol].Ints[i] }
	dur := func(i int) int64 { return g.EdgeProps.Cols[durCol].Ints[i] }

	// One deletion inside the recent view, one outside it.
	dIn := liveEdgeWhere(t, g, func(v int64) bool { return v >= 50 })
	dOut := liveEdgeWhere(t, g, func(v int64) bool { return v < 50 })
	prevEdges := g.NumEdges()

	src := fmt.Sprintf(
		"apply insert 1->2 [ts = 75, duration = 3], 4->5 [ts = 10, duration = 50] delete %d->%d, %d->%d to so",
		g.Srcs[dIn], g.Dsts[dIn], g.Srcs[dOut], g.Dsts[dOut])
	out, err := e.Execute(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		t.Fatalf("out = %v", out)
	}

	if g.Version != 1 {
		t.Fatalf("graph version = %d", g.Version)
	}
	if g.NumEdges() != prevEdges+2 {
		t.Fatalf("edges = %d, want %d", g.NumEdges(), prevEdges+2)
	}
	if g.EdgeAlive(dIn) || g.EdgeAlive(dOut) {
		t.Fatal("deleted edges still alive")
	}
	if !g.EdgeAlive(prevEdges) || !g.EdgeAlive(prevEdges+1) {
		t.Fatal("inserted edges not alive")
	}

	// Views: maintained membership equals brute-force predicate evaluation
	// over the mutated graph's live edges.
	recent, _ := e.View("recent")
	short, _ := e.View("recent-short")
	if recent.Version != 1 || short.Version != 1 {
		t.Fatalf("view versions %d, %d", recent.Version, short.Version)
	}
	for i := 0; i < g.NumEdges(); i++ {
		wantRecent := g.EdgeAlive(i) && ts(i) >= 50
		wantShort := wantRecent && dur(i) <= 10
		if recent.Contains(uint32(i)) != wantRecent {
			t.Fatalf("edge %d: recent membership %v, want %v", i, !wantRecent, wantRecent)
		}
		if short.Contains(uint32(i)) != wantShort {
			t.Fatalf("edge %d: recent-short membership %v, want %v", i, !wantShort, wantShort)
		}
	}

	// Collection: the patched stream and EBM agree with per-view predicate
	// evaluation at every ordered position.
	col, _ := e.Collection("hist")
	if col.Version != 1 {
		t.Fatalf("collection version = %d", col.Version)
	}
	members := streamMembership(col)
	for pos, ci := range col.Order {
		bound := int64(20 * (ci + 1))
		for i := 0; i < g.NumEdges(); i++ {
			want := g.EdgeAlive(i) && ts(i) < bound
			if members[pos][uint32(i)] != want {
				t.Fatalf("view %d (ts < %d): edge %d stream membership %v, want %v",
					pos, bound, i, !want, want)
			}
			if col.EBM.Cols[ci].Get(i) != want {
				t.Fatalf("view %d (ts < %d): edge %d EBM bit %v, want %v",
					pos, bound, i, !want, want)
			}
		}
	}
}

// TestMutateRequestMaintainsAggregates drives the typed MutateRequest
// through Session.Do and checks that a retained aggregate-view statement is
// re-evaluated over the mutated graph.
func TestMutateRequestMaintainsAggregates(t *testing.T) {
	e, err := NewEngine(Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	g := datagen.Social(datagen.SocialConfig{Nodes: 120, Edges: 800, Locations: 8, Seed: 5})
	g.Name = "tw"
	if err := e.AddGraph(g); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Execute(`create view cities on tw
nodes group by city aggregate count(*)
edges aggregate total-w: sum(w)`); err != nil {
		t.Fatal(err)
	}
	superEdgeCount := func() int64 {
		av, ok := e.AggView("cities")
		if !ok {
			t.Fatal("aggregate view missing")
		}
		var n int64
		for _, se := range av.SuperEdges {
			n += se.Count
		}
		return n
	}
	pre := superEdgeCount()

	sess := e.NewSession()
	resp, err := sess.Do(context.Background(), &MutateRequest{
		Graph: "tw",
		Inserts: []EdgeChange{
			{Src: 0, Dst: 1, Props: map[string]any{"w": 7, "affinity": 1}},
			{Src: 2, Dst: 3, Props: map[string]any{"w": float64(9), "affinity": 0}},
		},
		Deletes: []EdgeChange{{Src: g.Srcs[0], Dst: g.Dsts[0]}},
	})
	if err != nil {
		t.Fatal(err)
	}
	ma, ok := resp.(*MutationApplied)
	if !ok {
		t.Fatalf("response type %T", resp)
	}
	if ma.Graph != "tw" || ma.Version != 1 || ma.Inserted != 2 || ma.Deleted < 1 || ma.Maintained != 1 {
		t.Fatalf("applied = %+v", ma)
	}
	// Group-by-property assigns every node, so the super-edge counts sum to
	// the live edge count — re-evaluation must reflect the batch exactly.
	if got, want := superEdgeCount(), pre+2-int64(ma.Deleted); got != want {
		t.Fatalf("aggregated edges = %d, want %d", got, want)
	}
}

// TestMutationPersistenceAndRestart pins the journaled restart path: a
// second engine over the same data directory replays the mutation journal
// and loads the maintained, version-stamped artifacts, and a further
// mutation on the restarted engine — whose collection was loaded without an
// EBM — still maintains correctly via the stream-walk path.
func TestMutationPersistenceAndRestart(t *testing.T) {
	dir := t.TempDir()
	e1, err := NewEngine(Options{Workers: 1, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	g := datagen.Temporal(datagen.TemporalConfig{Nodes: 60, Edges: 400, Days: 10, Seed: 3})
	g.Name = "dyn"
	if err := e1.AddGraph(g); err != nil {
		t.Fatal(err)
	}
	if _, err := e1.Execute(`create view fresh on dyn edges where ts >= 5
create view collection days on dyn [d3: ts < 3], [d6: ts < 6], [d9: ts < 9]`); err != nil {
		t.Fatal(err)
	}
	del := liveEdgeWhere(t, g, func(int64) bool { return true })
	if _, err := e1.NewSession().Do(context.Background(), &MutateRequest{
		Graph:   "dyn",
		Inserts: []EdgeChange{{Src: 7, Dst: 8, Props: map[string]any{"ts": 6, "duration": 4}}},
		Deletes: []EdgeChange{{Src: g.Srcs[del], Dst: g.Dsts[del]}},
	}); err != nil {
		t.Fatal(err)
	}
	v1, _ := e1.View("fresh")
	c1, _ := e1.Collection("days")
	wantEdges := append([]uint32(nil), v1.Edges...)
	wantMembers := streamMembership(c1)
	if err := e1.Close(); err != nil {
		t.Fatal(err)
	}

	e2, err := NewEngine(Options{Workers: 1, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	g2, err := e2.Graph("dyn")
	if err != nil {
		t.Fatal(err)
	}
	if g2.Version != 1 || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("replayed graph: version %d, %d edges", g2.Version, g2.NumEdges())
	}
	v2, err := e2.LookupView("fresh")
	if err != nil {
		t.Fatal(err)
	}
	if v2.Version != 1 || len(v2.Edges) != len(wantEdges) {
		t.Fatalf("reloaded view: version %d, %d edges, want %d", v2.Version, len(v2.Edges), len(wantEdges))
	}
	for i := range wantEdges {
		if v2.Edges[i] != wantEdges[i] {
			t.Fatalf("reloaded view edge %d = %d, want %d", i, v2.Edges[i], wantEdges[i])
		}
	}
	c2, err := e2.LookupCollection("days")
	if err != nil {
		t.Fatal(err)
	}
	if c2.Version != 1 {
		t.Fatalf("reloaded collection version = %d", c2.Version)
	}

	// Mutate again on the restarted engine: the loaded collection has no
	// EBM, so old membership reconstructs from the stream.
	tsCol, _ := g2.EdgeProps.ColumnIndex("ts")
	del2 := liveEdgeWhere(t, g2, func(int64) bool { return true })
	if _, err := e2.NewSession().Do(context.Background(), &MutateRequest{
		Graph:   "dyn",
		Inserts: []EdgeChange{{Src: 1, Dst: 2, Props: map[string]any{"ts": 2, "duration": 9}}},
		Deletes: []EdgeChange{{Src: g2.Srcs[del2], Dst: g2.Dsts[del2]}},
	}); err != nil {
		t.Fatal(err)
	}
	if g2.Version != 2 {
		t.Fatalf("graph version = %d", g2.Version)
	}
	members := streamMembership(c2)
	bounds := []int64{3, 6, 9}
	for pos, ci := range c2.Order {
		for i := 0; i < g2.NumEdges(); i++ {
			want := g2.EdgeAlive(i) && g2.EdgeProps.Cols[tsCol].Ints[i] < bounds[ci]
			if members[pos][uint32(i)] != want {
				t.Fatalf("after restart+mutate: view %d edge %d membership %v, want %v",
					pos, i, !want, want)
			}
		}
	}
	_ = wantMembers
	if err := e2.Close(); err != nil {
		t.Fatal(err)
	}

	// A third engine sees both journal frames replayed.
	e3, err := NewEngine(Options{Workers: 1, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	g3, err := e3.Graph("dyn")
	if err != nil {
		t.Fatal(err)
	}
	if g3.Version != 2 || g3.NumEdges() != g2.NumEdges() {
		t.Fatalf("second replay: version %d, %d edges", g3.Version, g3.NumEdges())
	}
}

// TestMutationNotMaintainableFailsClosed pins the refusal: a programmatic
// collection (no retained predicate sources) over the target graph refuses
// the whole mutation before anything commits.
func TestMutationNotMaintainableFailsClosed(t *testing.T) {
	e := newTestEngine(t)
	g, _ := e.Graph("so")
	pred, err := gvdl.CompileEdgePredicate(g, mustParsePred(t, "ts < 50"))
	if err != nil {
		t.Fatal(err)
	}
	col, err := view.MaterializeFromPredicates("prog", g, []string{"a"}, []gvdl.EdgePredicate{pred}, view.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.AddCollection(col); err != nil {
		t.Fatal(err)
	}
	prevEdges := g.NumEdges()
	mb, err := graph.NewMutationBatch(g, nil, []graph.EdgePair{{Src: g.Srcs[0], Dst: g.Dsts[0]}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.ApplyMutation("so", mb); !errors.Is(err, ErrNotMaintainable) {
		t.Fatalf("err = %v, want ErrNotMaintainable", err)
	}
	if g.Version != 0 || g.NumEdges() != prevEdges || !g.EdgeAlive(0) {
		t.Fatal("refused mutation changed the graph")
	}
}

func mustParsePred(t *testing.T, src string) gvdl.Expr {
	t.Helper()
	expr, err := gvdl.ParsePredicate(src)
	if err != nil {
		t.Fatal(err)
	}
	return expr
}

// TestMutationErrors covers the request- and statement-level refusals.
func TestMutationErrors(t *testing.T) {
	e := newTestEngine(t)
	g, _ := e.Graph("so")
	sess := e.NewSession()
	ctx := context.Background()

	// Apply must target a base graph, not a view.
	if _, err := e.Execute("create view v on so edges where ts < 50"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Execute("apply insert 0->1 [ts = 1, duration = 1] to v"); err == nil {
		t.Fatal("apply to a view succeeded")
	}

	cases := []*MutateRequest{
		{Graph: "nope", Inserts: []EdgeChange{{Src: 0, Dst: 1, Props: map[string]any{"ts": 1, "duration": 1}}}},
		{Graph: "so"}, // empty batch
		{Graph: "so", Inserts: []EdgeChange{{Src: 0, Dst: 1, Props: map[string]any{"ts": 1.5, "duration": 1}}}},
		{Graph: "so", Inserts: []EdgeChange{{Src: 0, Dst: 1, Props: map[string]any{"ts": 1}}}},                                 // missing duration
		{Graph: "so", Inserts: []EdgeChange{{Src: uint64(g.NumNodes), Dst: 1, Props: map[string]any{"ts": 1, "duration": 1}}}}, // out of range
		{Graph: "so", Deletes: []EdgeChange{{Src: 999999, Dst: 999998}}},                                                       // matches no live edge
	}
	for i, req := range cases {
		if _, err := sess.Do(ctx, req); err == nil {
			t.Fatalf("case %d: mutate succeeded", i)
		}
	}
	if g.Version != 0 {
		t.Fatalf("failed mutations bumped version to %d", g.Version)
	}
}
