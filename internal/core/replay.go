package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"graphsurge/internal/analytics"
	"graphsurge/internal/obs"
	"graphsurge/internal/splitting"
	"graphsurge/internal/view"
)

// Serving-layer replay replicas (the warm half of the multi-tenant result
// cache, internal/tenant): a Replay is a single dataflow runner that has
// absorbed a prefix of some collection's difference stream, exactly the way
// an incremental replica (incremental.go) absorbs a whole stream. When a
// later run arrives over a collection that extends the absorbed prefix by k
// views — a redefinition that appends views, or a sibling collection sharing
// the prefix — Engine.ExtendReplay steps only the k-view suffix, so the run
// costs its delta rather than the collection. RunResult.CachedPrefix records
// the skipped prefix.
//
// The engine does not own Replays: the caller (the tenant middleware) keys,
// stores, bounds and invalidates them, and is responsible for only extending
// a replica over a stream whose absorbed prefix is byte-identical — the
// engine re-checks the graph version under the run barrier (ErrReplayStale)
// but cannot re-derive the caller's content fingerprints.

// ErrReplayStale reports that a replay replica's absorbed state predates the
// collection's current graph version — a mutation committed between the
// caller's fingerprint check and admission — so extending it would step new
// diffs onto state computed from edited ones. The caller drops the replica
// and re-executes from scratch; nothing stale is ever served.
var ErrReplayStale = errors.New("core: replay replica is stale")

// Replay is a warm serving replica. The zero value is ready: the first
// ExtendReplay builds the runner and absorbs the stream from view zero.
// A Replay is single-threaded — the owner serializes extends.
type Replay struct {
	runner  analytics.Runner
	pos     int    // stream views absorbed so far
	version uint64 // graph version the absorbed diffs were read at
}

// Pos returns how many stream views the replica has absorbed.
func (r *Replay) Pos() int { return r.pos }

// Version returns the graph version the replica's state reflects (zero
// before the first extend).
func (r *Replay) Version() uint64 { return r.version }

// ExtendReplay steps the suffix [rep.Pos(), n) of col's difference stream
// into the replay replica under the engine's run barrier and returns a
// result whose CachedPrefix records the skipped prefix; FinalResults are the
// accumulated per-vertex values of the collection's last view, identical to
// any other execution mode's (the determinism the incremental-equivalence
// tests pin). Stats and work counters cover only the suffix. Only
// opts.Workers and opts.WeightProp matter — a replay is one replica stepping
// diffs, so Mode, Parallelism and scheduling options have nothing to select.
//
// A replica whose state predates col's current graph version refuses with
// ErrReplayStale. A canceled or failed extend poisons the replica (its state
// is part-stepped); the caller must discard it.
func (e *Engine) ExtendReplay(ctx context.Context, rep *Replay, col *view.Collection, comp analytics.Computation, opts RunOptions) (*RunResult, error) {
	if err := e.beginRun(); err != nil {
		return nil, err
	}
	defer e.endRun()
	if opts.Workers == 0 {
		opts.Workers = e.opts.Workers
	}
	normalizeRunOptions(&opts)
	if col.Stream == nil || col.Stream.NumViews() == 0 {
		return nil, fmt.Errorf("core: collection %q has no views to replay", col.Name)
	}
	ctx, tr, created := e.ensureTrace(ctx)
	ctx, span := obs.StartSpan(ctx, "replay",
		obs.String("collection", col.Name),
		obs.String("computation", comp.Name()),
		obs.Int("prefix", rep.pos))
	obs.M.RunsStarted.Inc()
	obs.M.RunsInflight.Add(1)
	res, err := e.extendReplay(ctx, rep, col, comp, opts)
	span.End()
	obs.M.RunsInflight.Add(-1)
	if err != nil {
		obs.M.RunsCanceled.Inc()
	} else {
		obs.M.RunsFinished.Inc()
		stampRun(res, tr)
	}
	if created {
		e.traces.Add(tr)
	}
	return res, err
}

func (e *Engine) extendReplay(ctx context.Context, rep *Replay, col *view.Collection, comp analytics.Computation, opts RunOptions) (*RunResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if rep.runner != nil && rep.version != col.Version {
		return nil, fmt.Errorf("core: replica at graph version %d, collection at %d: %w",
			rep.version, col.Version, ErrReplayStale)
	}
	wc, err := col.Graph.WeightColumn(opts.WeightProp)
	if err != nil {
		return nil, err
	}
	if rep.runner == nil {
		runner, err := analytics.NewRunner(comp, opts.Workers)
		if err != nil {
			return nil, err
		}
		rep.runner, rep.pos = runner, 0
	}
	runner := rep.runner
	preWork := append([]int64(nil), runner.WorkCounts()...)
	cols := edgeBatcher(col.Graph, wc)
	stream := col.Stream
	k := stream.NumViews()
	sizes := stream.ViewSizes()
	start := rep.pos
	stats := make([]ViewStats, 0, k-start)
	wallStart := time.Now()
	for t := start; t < k; t++ {
		if err := ctx.Err(); err != nil {
			// The replica is part-stepped; poison it so the owner rebuilds
			// instead of serving a half-extended state.
			rep.runner = nil
			return nil, err
		}
		dur := runner.StepBatch(cols(stream.Adds[t]), cols(stream.Dels[t]))
		stats = append(stats, ViewStats{
			Index:       t,
			Name:        stream.Names[t],
			Mode:        splitting.ModeDiff,
			Duration:    dur,
			ViewSize:    sizes[t],
			DiffSize:    stream.DiffSize(t),
			OutputDiffs: runner.OutputDiffs(uint32(t)),
		})
		runner.DropOutputsBefore(uint32(t))
	}
	rep.pos = k
	rep.version = col.Version

	work := runner.WorkCounts()
	delta := make([]int64, len(work))
	for i := range work {
		delta[i] = work[i]
		if i < len(preWork) {
			delta[i] -= preWork[i]
		}
	}
	final := make(map[analytics.VertexValue]int64)
	for kk, v := range runner.Results() {
		final[kk] = v
	}
	res := &RunResult{
		Computation:  comp.Name(),
		Collection:   col.Name,
		Mode:         DiffOnly,
		Stats:        stats,
		Wall:         time.Since(wallStart),
		CachedPrefix: start,
		final:        final,
		work:         delta,
		iterCap:      runner.IterCapHit(),
	}
	for _, st := range stats {
		res.Total += st.Duration
	}
	return res, nil
}
