package core

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"graphsurge/internal/analytics"
	"graphsurge/internal/view"
)

// engineWithCollection registers a prebuilt collection on a fresh engine.
func engineWithCollection(t testing.TB, opts Options, col *view.Collection) *Engine {
	t.Helper()
	e, err := NewEngine(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.AddGraph(col.Graph); err != nil {
		t.Fatal(err)
	}
	e.mu.Lock()
	e.collections[col.Name] = col
	e.mu.Unlock()
	return e
}

// TestEnginePoolReusesRunnersAcrossRuns is the engine-pooling contract: a
// second RunCollection call on the same (computation, workers) builds no new
// dataflow — every replica, including the one that served the first run's
// final view, returned to the pool and is recycled via in-place reset.
func TestEnginePoolReusesRunnersAcrossRuns(t *testing.T) {
	col := randomCollection(t, 5, 21)
	e := engineWithCollection(t, Options{}, col)

	res1, err := e.RunCollection(context.Background(), col.Name, analytics.WCC{}, RunOptions{Mode: Scratch})
	if err != nil {
		t.Fatal(err)
	}
	if len(e.pools) != 1 {
		t.Fatalf("%d pools after first run", len(e.pools))
	}
	var pool *analytics.Pool
	for _, en := range e.pools {
		pool = en.pool
	}
	built1, _ := pool.Counts()
	if built1 != 1 {
		t.Fatalf("first sequential run built %d runners, want 1", built1)
	}
	if pool.Live() != 0 {
		t.Fatalf("%d replicas still live after the run", pool.Live())
	}
	if pool.Idle() != 1 {
		t.Fatalf("%d idle replicas after the run, want 1 (the final runner returned)", pool.Idle())
	}

	res2, err := e.RunCollection(context.Background(), col.Name, analytics.WCC{}, RunOptions{Mode: Scratch})
	if err != nil {
		t.Fatal(err)
	}
	built2, reused2 := pool.Counts()
	if built2 != built1 {
		t.Fatalf("second run built %d new runners", built2-built1)
	}
	if reused2 == 0 {
		t.Fatal("second run reused no runners")
	}

	// Different parameterizations of the same-named computation must not
	// share recycled dataflows.
	if _, err := e.RunCollection(context.Background(), col.Name, analytics.BFS{Source: 1}, RunOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.RunCollection(context.Background(), col.Name, analytics.BFS{Source: 2}, RunOptions{}); err != nil {
		t.Fatal(err)
	}
	if len(e.pools) != 3 {
		t.Fatalf("%d pools, want 3 (wcc, bfs@1, bfs@2)", len(e.pools))
	}

	// Recycled runners produce identical results.
	got, want := res2.FinalResults(), res1.FinalResults()
	if len(got) != len(want) {
		t.Fatalf("%d results on reused runner, first run %d", len(got), len(want))
	}
	for kv, d := range want {
		if got[kv] != d {
			t.Fatalf("reused result %+v = %d, first run %d", kv, got[kv], d)
		}
	}
}

// funcComp is a computation whose parameters include a func: its printed
// value cannot distinguish captured state, so the engine must not pool it.
type funcComp struct {
	weight func(int64) int64
}

func (funcComp) Name() string { return "custom-func" }
func (c funcComp) Build(b *analytics.Builder) {
	analytics.WCC{}.Build(b)
}

// ptrComp carries a nested pointer parameter, which prints as an address.
type ptrComp struct {
	cfg *int64
}

func (ptrComp) Name() string { return "custom-ptr" }
func (c ptrComp) Build(b *analytics.Builder) {
	analytics.WCC{}.Build(b)
}

// TestUnidentifiableComputationNotPooled pins the keying guard: two
// parameterizations of a func-carrying computation print identically, so
// sharing a pool would silently recycle one's dataflow into the other. The
// engine gives such computations a private per-run pool instead.
func TestUnidentifiableComputationNotPooled(t *testing.T) {
	if identifiableComp(funcComp{}) {
		t.Fatal("func-carrying computation reported identifiable")
	}
	// Nested pointers print as addresses, not pointee values; only the
	// top-level pointer receiver (which fmt dereferences) is identifiable.
	if identifiableComp(ptrComp{cfg: new(int64)}) {
		t.Fatal("nested-pointer computation reported identifiable")
	}
	if !identifiableComp(analytics.BFS{Source: 1}) || !identifiableComp(&analytics.SCC{}) {
		t.Fatal("built-in computation reported unidentifiable")
	}
	col := randomCollection(t, 3, 29)
	e := engineWithCollection(t, Options{}, col)
	mk := func(scale int64) funcComp {
		return funcComp{weight: func(w int64) int64 { return w * scale }}
	}
	if _, err := e.RunCollection(context.Background(), col.Name, mk(1), RunOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.RunCollection(context.Background(), col.Name, mk(2), RunOptions{}); err != nil {
		t.Fatal(err)
	}
	if len(e.pools) != 0 {
		t.Fatalf("func-carrying computation was pooled: %d pools", len(e.pools))
	}
}

// TestEngineConcurrentRunsSharePool runs several RunCollection calls
// concurrently on one engine (the production API-server shape) and checks
// they share one pool race-free with identical results. The race detector
// covers the pool's internal synchronization.
func TestEngineConcurrentRunsSharePool(t *testing.T) {
	col := randomCollection(t, 6, 33)
	e := engineWithCollection(t, Options{}, col)

	baseline, err := e.RunCollection(context.Background(), col.Name, analytics.WCC{}, RunOptions{Mode: Scratch})
	if err != nil {
		t.Fatal(err)
	}

	const runs = 4
	results := make([]*RunResult, runs)
	errs := make([]error, runs)
	var wg sync.WaitGroup
	for i := 0; i < runs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Mixed parallelism: the pool grows to the largest request while
			// each run self-limits to its own.
			results[i], errs[i] = e.RunCollection(context.Background(), col.Name, analytics.WCC{}, RunOptions{
				Mode:        Scratch,
				Parallelism: 1 + i%3,
			})
		}(i)
	}
	wg.Wait()

	if len(e.pools) != 1 {
		t.Fatalf("%d pools, want 1", len(e.pools))
	}
	var pool *analytics.Pool
	for _, en := range e.pools {
		pool = en.pool
	}
	if pool.Size() < 3 {
		t.Fatalf("pool did not grow to the largest parallelism: size %d", pool.Size())
	}
	if pool.Live() != 0 {
		t.Fatalf("%d replicas leaked", pool.Live())
	}
	want := baseline.FinalResults()
	for i := 0; i < runs; i++ {
		if errs[i] != nil {
			t.Fatalf("run %d: %v", i, errs[i])
		}
		got := results[i].FinalResults()
		if len(got) != len(want) {
			t.Fatalf("run %d: %d results, baseline %d", i, len(got), len(want))
		}
		for kv, d := range want {
			if got[kv] != d {
				t.Fatalf("run %d: result %+v = %d, baseline %d", i, kv, got[kv], d)
			}
		}
	}
}

// TestEmptyCollectionLeaksNoSlot pins the empty-collection fix: runs over a
// zero-view collection acquire no replica slot, so repeated runs on an
// engine-level pool neither deadlock nor leak capacity, in every mode.
func TestEmptyCollectionLeaksNoSlot(t *testing.T) {
	full := randomCollection(t, 3, 5)
	empty := view.NewCollection("empty", full.Graph, &view.DiffStream{})
	e, err := NewEngine(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.AddGraph(full.Graph); err != nil {
		t.Fatal(err)
	}
	e.mu.Lock()
	e.collections[full.Name] = full
	e.collections[empty.Name] = empty
	e.mu.Unlock()

	for _, mode := range []ExecMode{DiffOnly, Scratch, Adaptive} {
		// More runs than the pool has slots: a leaked slot would deadlock.
		for i := 0; i < 3; i++ {
			res, err := e.RunCollection(context.Background(), empty.Name, analytics.WCC{}, RunOptions{Mode: mode})
			if err != nil {
				t.Fatalf("%s run %d: %v", mode, i, err)
			}
			if len(res.FinalResults()) != 0 || len(res.Stats) != 0 || len(res.Segments) != 0 {
				t.Fatalf("%s: empty collection produced %+v", mode, res)
			}
			if res.MaxWork() != 0 || res.IterCapHit() {
				t.Fatalf("%s: empty collection recorded work", mode)
			}
		}
	}
	for _, en := range e.pools {
		if en.pool.Live() != 0 {
			t.Fatalf("%d slots leaked", en.pool.Live())
		}
	}
	// The shared pool still serves a real run afterwards.
	res, err := e.RunCollection(context.Background(), full.Name, analytics.WCC{}, RunOptions{Mode: Scratch})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.FinalResults()) == 0 {
		t.Fatal("no results after empty-collection runs")
	}
}

// TestMaxWorkAggregatesAcrossSegments pins the Figure-10 accounting fix:
// with one dataflow worker the per-run work aggregate is deterministic, so a
// Parallelism=4 scratch run must report exactly the sequential run's
// aggregate — not just the last segment's counters.
func TestMaxWorkAggregatesAcrossSegments(t *testing.T) {
	col := randomCollection(t, 8, 17)
	seq, err := RunCollection(col, analytics.WCC{}, RunOptions{Mode: Scratch, Workers: 1, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunCollection(col, analytics.WCC{}, RunOptions{Mode: Scratch, Workers: 1, Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if seq.MaxWork() == 0 {
		t.Fatal("no work recorded")
	}
	if par.MaxWork() != seq.MaxWork() {
		t.Fatalf("parallel MaxWork %d != sequential aggregate %d", par.MaxWork(), seq.MaxWork())
	}
	// The aggregate covers all segments: strictly more than any single
	// segment's share on this multi-segment plan.
	if len(seq.Segments) != col.Stream.NumViews() {
		t.Fatalf("%d segments for scratch, want %d", len(seq.Segments), col.Stream.NumViews())
	}
}

// TestSegmentStatsRecorded checks per-segment timings: ranges tile the
// collection in order and every segment drained for a measurable time.
func TestSegmentStatsRecorded(t *testing.T) {
	col := randomCollection(t, 6, 9)
	for _, mode := range []ExecMode{DiffOnly, Scratch, Adaptive} {
		for _, par := range []int{1, 3} {
			res, err := RunCollection(col, analytics.WCC{}, RunOptions{Mode: mode, Parallelism: par, BatchSize: 2})
			if err != nil {
				t.Fatal(err)
			}
			name := fmt.Sprintf("%s/p=%d", mode, par)
			if len(res.Segments) == 0 {
				t.Fatalf("%s: no segment stats", name)
			}
			next := 0
			for i, seg := range res.Segments {
				if seg.Start != next || seg.End <= seg.Start {
					t.Fatalf("%s: segment %d range [%d,%d) does not tile from %d", name, i, seg.Start, seg.End, next)
				}
				next = seg.End
				if seg.Drain <= 0 {
					t.Fatalf("%s: segment %d drain not recorded: %+v", name, i, seg)
				}
				if seg.Start > 0 && seg.Setup <= 0 {
					t.Fatalf("%s: split segment %d setup not recorded: %+v", name, i, seg)
				}
			}
			if next != col.Stream.NumViews() {
				t.Fatalf("%s: segments end at %d, want %d", name, next, col.Stream.NumViews())
			}
		}
	}
}

// TestEngineParallelismDefault checks Options.Parallelism is applied when
// RunOptions leaves Parallelism unset, and that an explicit RunOptions value
// overrides it (the CLI -parallel path).
func TestEngineParallelismDefault(t *testing.T) {
	col := randomCollection(t, 4, 3)
	e := engineWithCollection(t, Options{Parallelism: 3}, col)
	if _, err := e.RunCollection(context.Background(), col.Name, analytics.WCC{}, RunOptions{Mode: Scratch}); err != nil {
		t.Fatal(err)
	}
	var pool *analytics.Pool
	for _, en := range e.pools {
		pool = en.pool
	}
	if pool.Size() != 3 {
		t.Fatalf("pool size %d, want engine default 3", pool.Size())
	}
	if _, err := e.RunCollection(context.Background(), col.Name, analytics.WCC{}, RunOptions{Mode: Scratch, Parallelism: 5}); err != nil {
		t.Fatal(err)
	}
	if pool.Size() != 5 {
		t.Fatalf("pool size %d, want explicit override 5", pool.Size())
	}
}

// TestMutatedComputationDropsStalePool pins the self-healing identity check:
// mutating a pointer computation after submission leaves a pool whose cached
// computation contradicts its key; the next lookup under that key must
// rebuild the pool instead of building replicas from the mutated object.
func TestMutatedComputationDropsStalePool(t *testing.T) {
	col := randomCollection(t, 3, 31)
	e := engineWithCollection(t, Options{}, col)
	c := &analytics.SCC{Phases: 3}
	if _, err := e.RunCollection(context.Background(), col.Name, c, RunOptions{}); err != nil {
		t.Fatal(err)
	}
	key := poolKey{name: c.Name(), ident: compIdentity(c), workers: 1}
	stale := e.pools[key]
	if stale == nil {
		t.Fatal("no pool under the Phases:3 key")
	}
	c.Phases = 8 // mutate after submission: the cached object no longer matches its key
	if _, err := e.RunCollection(context.Background(), col.Name, &analytics.SCC{Phases: 3}, RunOptions{}); err != nil {
		t.Fatal(err)
	}
	if e.pools[key] == stale {
		t.Fatal("stale pool with mutated computation was reused")
	}
	if got := e.pools[key].pool.Computation().(*analytics.SCC).Phases; got != 3 {
		t.Fatalf("rebuilt pool builds Phases=%d runners under the Phases:3 key", got)
	}
}

// TestEnginePoolCountBounded pins the pool-map cap: a sweep over many
// parameterizations (one pool key each) must not accumulate unbounded warm
// pools on a long-lived engine.
func TestEnginePoolCountBounded(t *testing.T) {
	col := randomCollection(t, 2, 37)
	e := engineWithCollection(t, Options{}, col)
	for src := 0; src < maxEnginePools+8; src++ {
		if _, err := e.RunCollection(context.Background(), col.Name, analytics.BFS{Source: uint64(src)}, RunOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	if len(e.pools) > maxEnginePools {
		t.Fatalf("%d pools, cap %d", len(e.pools), maxEnginePools)
	}
}

// TestEnginePoolLRUEviction pins the eviction *order* at the pool-map cap:
// the least-recently-acquired parameterization goes, not an arbitrary map
// entry. Pools are created without running (runnerPool alone registers the
// key), so the test exercises pure map policy.
func TestEnginePoolLRUEviction(t *testing.T) {
	e, err := NewEngine(Options{})
	if err != nil {
		t.Fatal(err)
	}
	for src := 0; src < maxEnginePools; src++ {
		e.runnerPool(analytics.BFS{Source: uint64(src)}, 1, 1)
	}
	if len(e.pools) != maxEnginePools {
		t.Fatalf("%d pools, want the cap %d", len(e.pools), maxEnginePools)
	}
	// Re-acquire Source:0, making Source:1 the coldest entry.
	e.runnerPool(analytics.BFS{Source: 0}, 1, 1)
	// The next new key must evict Source:1 and keep everything else.
	e.runnerPool(analytics.BFS{Source: uint64(maxEnginePools)}, 1, 1)
	if len(e.pools) != maxEnginePools {
		t.Fatalf("%d pools after eviction, want %d", len(e.pools), maxEnginePools)
	}
	evicted := poolKey{name: "bfs", ident: compIdentity(analytics.BFS{Source: 1}), workers: 1}
	if _, ok := e.pools[evicted]; ok {
		t.Fatal("LRU kept the coldest pool")
	}
	for _, src := range []uint64{0, 2, uint64(maxEnginePools)} {
		key := poolKey{name: "bfs", ident: compIdentity(analytics.BFS{Source: src}), workers: 1}
		if _, ok := e.pools[key]; !ok {
			t.Fatalf("LRU evicted a warmer pool (Source:%d)", src)
		}
	}
}

// TestEngineCloseAndEvict checks the pool lifecycle teardown paths.
func TestEngineCloseAndEvict(t *testing.T) {
	col := randomCollection(t, 3, 13)
	e := engineWithCollection(t, Options{}, col)
	if _, err := e.RunCollection(context.Background(), col.Name, analytics.WCC{}, RunOptions{}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.RunCollection(context.Background(), col.Name, analytics.BFS{Source: 1}, RunOptions{}); err != nil {
		t.Fatal(err)
	}
	if len(e.pools) != 2 {
		t.Fatalf("%d pools", len(e.pools))
	}
	e.EvictPools("wcc")
	if len(e.pools) != 1 {
		t.Fatalf("%d pools after evicting wcc", len(e.pools))
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if len(e.pools) != 0 {
		t.Fatalf("%d pools after Close", len(e.pools))
	}
	// The engine stays usable: the next run rebuilds its pool.
	if _, err := e.RunCollection(context.Background(), col.Name, analytics.WCC{}, RunOptions{}); err != nil {
		t.Fatal(err)
	}
	if len(e.pools) != 1 {
		t.Fatalf("%d pools after post-Close run", len(e.pools))
	}
}
