package core

import (
	"context"
	"fmt"
	"sync"
	"time"

	"graphsurge/internal/analytics"
	"graphsurge/internal/graph"
	"graphsurge/internal/obs"
	"graphsurge/internal/splitting"
	"graphsurge/internal/view"
)

// Incremental re-runs (the dynamic-graph half of the run path): instead of
// draining a collection's difference stream from version zero, an
// incremental run keeps a private warm replica per (collection,
// computation, workers, weight) whose dataflow has already absorbed the
// stream, and feeds each mutation's final-view membership delta — queued by
// Engine.ApplyMutation as views are maintained — as one new outer version.
// The replica's differential state makes the step's cost proportional to
// the delta, not the graph: RunResult.Incremental reports true and the work
// counters cover only the delta steps.
//
// Incremental replicas are deliberately not pool slots: a pooled replica is
// reset between runs, while an incremental replica's accumulated state is
// the whole point. They live in their own LRU-bounded map and die with
// Close.

// incKey identifies one incremental replica: collection name, computation
// identity (bfs(source=1) and bfs(source=2) never share state), worker
// count, and the weight property the batches were resolved with.
type incKey struct {
	collection string
	ident      string
	workers    int
	weight     string
}

// incDelta is one queued mutation delta: the final ordered view's
// membership change as columnar batches, stamped with the graph version the
// collection reached when it was maintained.
type incDelta struct {
	version    uint64
	adds, dels *graph.EdgeBatch
}

// incState is one incremental replica. mu serializes runs over the same
// state; the engine's run/mutation barrier already excludes delta queueing
// from runs, so pending is only ever appended while no run holds mu.
type incState struct {
	mu      sync.Mutex
	col     *view.Collection // identity guard: same name ≠ same collection
	runner  analytics.Runner
	version uint64 // graph version the replica reflects
	next    uint32 // next outer dataflow version to feed
	pending []incDelta
	lastUse time.Time
}

// maxIncStates bounds the incremental replica map the way maxEnginePools
// bounds the warm pools: at the cap the least-recently-run replica is
// dropped (a later incremental run on its key simply rebuilds cold).
const maxIncStates = 64

// incStateFor returns the incremental replica state for the run's key,
// creating it (or replacing one that tracked a different collection object
// of the same name) as needed.
func (e *Engine) incStateFor(col *view.Collection, comp analytics.Computation, opts RunOptions) *incState {
	key := incKey{collection: col.Name, ident: compIdentity(comp), workers: opts.Workers, weight: opts.WeightProp}
	e.incMu.Lock()
	defer e.incMu.Unlock()
	st := e.incStates[key]
	if st != nil && st.col != col {
		st = nil
	}
	if st == nil {
		if len(e.incStates) >= maxIncStates {
			var victim incKey
			var oldest time.Time
			first := true
			for k, old := range e.incStates {
				if first || old.lastUse.Before(oldest) {
					victim, oldest, first = k, old.lastUse, false
				}
			}
			delete(e.incStates, victim)
		}
		st = &incState{col: col}
		e.incStates[key] = st
	}
	st.lastUse = time.Now()
	return st
}

// queueIncDelta appends one maintained collection's final-view delta to
// every incremental replica tracking it. Called from runMaintenance under
// the mutation barrier, so no run holds a state's mutex concurrently; the
// lock is still taken for the race detector's benefit.
func (e *Engine) queueIncDelta(c *view.Collection, d view.ViewDelta, version uint64) {
	e.incMu.Lock()
	defer e.incMu.Unlock()
	for key, st := range e.incStates {
		if key.collection != c.Name || st.col != c {
			continue
		}
		wc, err := c.Graph.WeightColumn(key.weight)
		if err != nil {
			// The mutation cannot have removed a column; defensive only.
			continue
		}
		cols := edgeBatcher(c.Graph, wc)
		st.mu.Lock()
		// An empty delta still queues: the version chain must stay
		// contiguous for the warm-path staleness check.
		st.pending = append(st.pending, incDelta{version: version, adds: cols(d.Adds), dels: cols(d.Dels)})
		st.mu.Unlock()
	}
}

// dropIncStates discards every incremental replica for a collection name —
// re-creating a collection invalidates accumulated differential state.
func (e *Engine) dropIncStates(collection string) {
	e.incMu.Lock()
	defer e.incMu.Unlock()
	for key := range e.incStates {
		if key.collection == collection {
			delete(e.incStates, key)
		}
	}
}

// runIncremental executes an Incremental run (RunOptions.Incremental). The
// first run on a key is cold: it steps the whole stream, view by view, on a
// fresh private replica (Incremental reports false — full work was done).
// Later runs are warm: they feed only the pending mutation deltas, and the
// result's stats and work counters are delta-sized. A warm replica whose
// pending chain does not reach the collection's current version (the state
// predates a maintenance pass that could not see it) rebuilds cold rather
// than serving a stale answer.
func (e *Engine) runIncremental(ctx context.Context, col *view.Collection, comp analytics.Computation, opts RunOptions) (*RunResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if !identifiableComp(comp) {
		return nil, fmt.Errorf("core: incremental runs need an identifiable computation (no closures or interface fields); run non-incrementally instead")
	}
	if col.Stream == nil || col.Stream.NumViews() == 0 {
		return nil, fmt.Errorf("core: collection %q has no views to run incrementally", col.Name)
	}
	st := e.incStateFor(col, comp, opts)
	st.mu.Lock()
	defer st.mu.Unlock()

	warm := st.runner != nil
	if warm {
		expected := st.version
		for _, d := range st.pending {
			expected = d.version
		}
		if expected != col.Version {
			warm = false
		}
	}
	if !warm {
		// A miss: the replica is absent or stale and rebuilds from the
		// whole stream.
		obs.M.IncrementalCold.Inc()
		ictx, span := obs.StartSpan(ctx, "incremental-cold")
		res, err := e.incColdRun(ictx, st, col, comp, opts)
		span.End()
		return res, err
	}
	obs.M.IncrementalWarm.Inc()
	ictx, span := obs.StartSpan(ctx, "incremental-warm", obs.Int("pending", len(st.pending)))
	res, err := e.incWarmRun(ictx, st, col, comp, opts)
	span.End()
	return res, err
}

// incColdRun builds the replica: a fresh runner absorbs the entire
// difference stream in order, leaving its differential state at the
// collection's current version.
func (e *Engine) incColdRun(ctx context.Context, st *incState, col *view.Collection, comp analytics.Computation, opts RunOptions) (*RunResult, error) {
	st.runner, st.pending = nil, nil
	wc, err := col.Graph.WeightColumn(opts.WeightProp)
	if err != nil {
		return nil, err
	}
	runner, err := analytics.NewRunner(comp, opts.Workers)
	if err != nil {
		return nil, err
	}
	cols := edgeBatcher(col.Graph, wc)
	stream := col.Stream
	k := stream.NumViews()
	sizes := stream.ViewSizes()
	stats := make([]ViewStats, k)
	wallStart := time.Now()
	for t := 0; t < k; t++ {
		if err := ctx.Err(); err != nil {
			// The replica is part-built; leave st empty so the next run
			// rebuilds from the start.
			return nil, err
		}
		dur := runner.StepBatch(cols(stream.Adds[t]), cols(stream.Dels[t]))
		stats[t] = ViewStats{
			Index:       t,
			Name:        stream.Names[t],
			Mode:        splitting.ModeDiff,
			Duration:    dur,
			ViewSize:    sizes[t],
			DiffSize:    stream.DiffSize(t),
			OutputDiffs: runner.OutputDiffs(uint32(t)),
		}
		runner.DropOutputsBefore(uint32(t))
	}
	st.runner = runner
	st.version = col.Version
	st.next = uint32(k)
	return incResult(col, comp, stats, wallStart, runner, runner.WorkCounts(), false), nil
}

// incWarmRun feeds the pending mutation deltas into the warm replica, one
// outer version each. Fed deltas are consumed as they go, so a canceled run
// resumes cleanly with the remainder.
func (e *Engine) incWarmRun(ctx context.Context, st *incState, col *view.Collection, comp analytics.Computation, opts RunOptions) (*RunResult, error) {
	runner := st.runner
	preWork := append([]int64(nil), runner.WorkCounts()...)
	finalSize := col.Stream.ViewSizes()[col.Stream.NumViews()-1]
	var stats []ViewStats
	wallStart := time.Now()
	for len(st.pending) > 0 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		d := st.pending[0]
		dur := runner.StepBatch(d.adds, d.dels)
		v := st.next
		stats = append(stats, ViewStats{
			Index:       int(v),
			Name:        fmt.Sprintf("Δv%d", d.version),
			Mode:        splitting.ModeDiff,
			Duration:    dur,
			ViewSize:    finalSize,
			DiffSize:    d.adds.Len() + d.dels.Len(),
			OutputDiffs: runner.OutputDiffs(v),
		})
		runner.DropOutputsBefore(v)
		st.next++
		st.version = d.version
		st.pending = st.pending[1:]
	}
	work := runner.WorkCounts()
	delta := make([]int64, len(work))
	for i := range work {
		delta[i] = work[i]
		if i < len(preWork) {
			delta[i] -= preWork[i]
		}
	}
	return incResult(col, comp, stats, wallStart, runner, delta, true), nil
}

// incResult assembles the RunResult shared by the cold and warm paths. The
// final results map is copied out of the runner — the replica outlives the
// run, so the result must not alias its internal state.
func incResult(col *view.Collection, comp analytics.Computation, stats []ViewStats, wallStart time.Time, runner analytics.Runner, work []int64, incremental bool) *RunResult {
	final := make(map[analytics.VertexValue]int64)
	for k, v := range runner.Results() {
		final[k] = v
	}
	res := &RunResult{
		Computation: comp.Name(),
		Collection:  col.Name,
		Mode:        DiffOnly,
		Stats:       stats,
		Wall:        time.Since(wallStart),
		Incremental: incremental,
		final:       final,
		work:        append([]int64(nil), work...),
		iterCap:     runner.IterCapHit(),
	}
	for _, st := range stats {
		res.Total += st.Duration
	}
	return res
}
