package core

import (
	"context"
	"fmt"
	"time"

	"graphsurge/internal/analytics"
	"graphsurge/internal/obs"
	"graphsurge/internal/schedule"
	"graphsurge/internal/splitting"
	"graphsurge/internal/view"
)

// ExecMode selects the collection execution strategy (paper §5, §7.2-7.3).
type ExecMode uint8

const (
	// DiffOnly runs every view differentially on top of its predecessors.
	DiffOnly ExecMode = iota
	// Scratch runs every view from scratch (iterations still shared
	// differentially within each view).
	Scratch
	// Adaptive lets the splitting optimizer choose per batch of views.
	Adaptive
)

func (m ExecMode) String() string {
	switch m {
	case DiffOnly:
		return "diff-only"
	case Scratch:
		return "scratch"
	case Adaptive:
		return "adaptive"
	}
	return fmt.Sprintf("ExecMode(%d)", uint8(m))
}

// MarshalText encodes the mode as its name, so JSON request/response bodies
// carry "scratch" rather than an opaque enum ordinal.
func (m ExecMode) MarshalText() ([]byte, error) { return []byte(m.String()), nil }

// UnmarshalText parses a mode name. The CLI's short alias "diff" is accepted
// alongside the canonical names, so HTTP requests and -mode agree.
func (m *ExecMode) UnmarshalText(text []byte) error {
	switch string(text) {
	case "diff", "diff-only", "":
		*m = DiffOnly
	case "scratch":
		*m = Scratch
	case "adaptive":
		*m = Adaptive
	default:
		return fmt.Errorf("core: unknown execution mode %q", text)
	}
	return nil
}

// RunOptions configures a computation run over a collection. The exported
// fields are plain values with JSON names, so the struct doubles as the wire
// options of a Session RunRequest (internal/server); the non-serializable
// hooks (Estimator, OnSegment) are local-caller extensions excluded from the
// wire form.
type RunOptions struct {
	Mode ExecMode `json:"mode"`
	// Workers overrides the engine default when > 0.
	Workers int `json:"workers,omitempty"`
	// Parallelism is the number of independent collection segments executed
	// concurrently, each on its own dataflow replica (see DESIGN.md). The
	// default of 1 preserves strictly sequential execution. Segments only
	// exist where the plan splits, so DiffOnly gains nothing, Scratch becomes
	// embarrassingly parallel, and Adaptive overlaps segments as the
	// optimizer declares split points.
	Parallelism int `json:"parallelism,omitempty"`
	// WeightProp names the integer edge property used as edge weight; empty
	// means unit weights.
	WeightProp string `json:"weightProp,omitempty"`
	// Incremental runs on the engine's warm incremental replica for
	// (collection, computation, workers, weightProp) instead of draining the
	// difference stream: the first run on a key absorbs the whole stream
	// (RunResult.Incremental false), later runs feed only the mutation
	// deltas queued since (RunResult.Incremental true, delta-sized work
	// counters). Only Engine runs support it; Mode, Parallelism, Schedule
	// and Speculate are ignored — an incremental run is a single replica
	// stepping diffs.
	Incremental bool `json:"incremental,omitempty"`
	// BatchSize overrides the adaptive optimizer's ℓ (default 10).
	BatchSize int `json:"batchSize,omitempty"`
	// Schedule selects the dispatch order of a static plan's segments (see
	// internal/schedule): FIFO preserves collection order; LPT dispatches
	// longest-predicted-first, tightening the makespan on skewed collections.
	// Results are identical either way — only scheduling changes. Adaptive
	// mode plans online and ignores it.
	Schedule schedule.Policy `json:"schedule,omitempty"`
	// Speculate enables speculative segment start in Adaptive mode with
	// Parallelism > 1: while the planner is still deciding, the predicted
	// next split point's segment is seeded on an idle replica, committed if
	// the prediction hits and discarded (the replica is released and reset)
	// if it misses. It also paces the planner to at most one view ahead of
	// execution so decisions — and therefore predictions — come from warm
	// models; split points may shift versus the unpaced planner, which is
	// already true run-to-run. Results are unaffected; only replica idle
	// time and split placement are.
	Speculate bool `json:"speculate,omitempty"`
	// Estimator, when non-nil, is the cost model LPT scheduling consults and
	// every run's per-view observations warm. Engine.RunCollection supplies
	// one persisted per (computation, workers) so later static runs are
	// scheduled with learned costs; nil gives the run a private, initially
	// cold estimator that falls back to view/diff sizes.
	Estimator *schedule.Estimator `json:"-"`
	// OnSegment, when set, is invoked once per completed segment with its
	// stats, as the segment finishes — from the executor goroutine that
	// finished it, concurrently with other segments and before the run
	// returns. The HTTP server streams these as NDJSON progress events; the
	// callback must be safe for concurrent use and should not block for
	// long, since it runs on the segment's dispatch path. Cluster runs
	// invoke it on the coordinator as each shard outcome arrives.
	OnSegment func(SegmentStats) `json:"-"`
}

// ViewStats records one view's execution.
type ViewStats struct {
	Index       int            `json:"index"`
	Name        string         `json:"name"`
	Mode        splitting.Mode `json:"mode"`
	Duration    time.Duration  `json:"duration"`
	ViewSize    int            `json:"viewSize"`    // |GV|
	DiffSize    int            `json:"diffSize"`    // |δC|
	OutputDiffs int            `json:"outputDiffs"` // output difference-set size
}

// SegmentStats records one segment's execution: the half-open view range it
// covered, the time spent acquiring its replica (building or resetting the
// dataflow, plus the seed membership scan), the wall-clock time the replica
// spent stepping the segment's views, and whether the segment was opened by
// a committed speculation (its seed view ran before the planner declared the
// split; see RunOptions.Speculate).
type SegmentStats struct {
	Start       int           `json:"start"`
	End         int           `json:"end"`
	Setup       time.Duration `json:"setup"`
	Drain       time.Duration `json:"drain"`
	Speculative bool          `json:"speculative,omitempty"`
	// WireBytes is the encoded size of the shard's SegmentSpec payload when
	// the segment was dispatched to a cluster worker — what actually crossed
	// the network under the columnar codec. Zero for in-process segments.
	WireBytes int `json:"wireBytes,omitempty"`
}

// Len returns the number of views the segment executed.
func (s SegmentStats) Len() int { return s.End - s.Start }

// RunResult summarizes a collection run.
type RunResult struct {
	Computation string      `json:"computation"`
	Collection  string      `json:"collection"`
	Mode        ExecMode    `json:"mode"`
	Stats       []ViewStats `json:"views"`
	// Segments records per-segment replica setup and drain timings, in
	// collection order (one entry per from-scratch run).
	Segments []SegmentStats `json:"segments"`
	// Total is the summed per-view compute time. With Parallelism > 1
	// segments overlap, so Total exceeds elapsed time; Wall is the run's
	// actual wall-clock duration (Total ≈ Wall when sequential).
	Total  time.Duration `json:"total"`
	Wall   time.Duration `json:"wall"`
	Splits int           `json:"splits"` // number of from-scratch runs after view 0
	// SpecHits counts speculatively seeded segments the planner committed
	// (the prediction named the split point the optimizer then declared);
	// SpecMisses counts seeded segments it discarded. Both are zero unless
	// RunOptions.Speculate was set on an adaptive run with Parallelism > 1.
	SpecHits   int `json:"specHits,omitempty"`
	SpecMisses int `json:"specMisses,omitempty"`
	// Incremental reports that this run executed only the mutation deltas
	// pending on a warm incremental replica (RunOptions.Incremental on a
	// previously built key); the work counters and stats are delta-sized. A
	// cold incremental run — the replica build — reports false.
	Incremental bool `json:"incremental,omitempty"`
	// CacheStatus reports how the serving cache (internal/tenant) satisfied
	// the run: empty for runs executed outside a cache, "miss" for a run the
	// cache executed and stored, "hit" for a stored result served without
	// execution, "dedup" for a request coalesced onto a concurrent identical
	// run, "replay" for a differential suffix replay on a warm replica.
	CacheStatus string `json:"cacheStatus,omitempty"`
	// CachedPrefix is the number of leading collection views whose
	// differential state a warm serving replica had already absorbed when
	// this run executed — the run stepped only the remaining suffix, so the
	// stats and work counters are suffix-sized (see Engine.ExtendReplay).
	CachedPrefix int `json:"cachedPrefix,omitempty"`
	// RunID names the run's trace: `graphsurge run -trace` renders it and
	// `GET /v1/traces/<runID>` on a serve process replays it as NDJSON.
	RunID string `json:"runId,omitempty"`
	// Metrics is the process metrics snapshot (obs.Default) taken as the run
	// completed — the same counters /metrics exposes, so the CLI, HTTP
	// responses, and BENCH.json all read one set of numbers. Counters are
	// process-lifetime values, not per-run deltas.
	Metrics map[string]float64 `json:"metrics,omitempty"`

	final   map[analytics.VertexValue]int64
	work    []int64
	iterCap bool
}

// FinalResults returns the per-vertex results of the last view. The results
// are snapshotted when the run completes — the replicas that produced them
// have already been returned to the pool.
func (r *RunResult) FinalResults() map[analytics.VertexValue]int64 { return r.final }

// CloneShared returns a shallow copy sharing the result's payload — the
// stats slices, the final-results map and the work counters. The serving
// cache hands one to each caller of a cached run so per-response stamps
// (CacheStatus) never mutate the stored entry; the shared payload is treated
// as read-only by every consumer (renderers and the HTTP server only
// iterate it).
func (r *RunResult) CloneShared() *RunResult {
	cp := *r
	return &cp
}

// MaxWork returns the maximum per-worker work counter aggregated across
// every segment replica of the run, a critical-path proxy for distributed
// scaling (see DESIGN.md on Figure 10). Each replica's counters are
// snapshotted as its segment completes and summed per worker, so the proxy
// covers the whole run at any Parallelism — a Parallelism=4 scratch run
// reports the same aggregate as the sequential run.
func (r *RunResult) MaxWork() int64 {
	var m int64
	for _, c := range r.work {
		if c > m {
			m = c
		}
	}
	return m
}

// IterCapHit reports whether any fixpoint on any segment replica hit the
// safety cap during the run.
func (r *RunResult) IterCapHit() bool { return r.iterCap }

// RunCollection executes a computation over a named materialized collection.
// Workers and Parallelism default to the engine's Options when unset, the
// run draws its dataflow replicas from the engine's warm runner pool for
// (computation, workers), so repeated and concurrent calls amortize dataflow
// construction (see DESIGN.md on the engine pool lifecycle), and — unless
// the caller supplied its own — the run is scheduled with the engine's
// persistent cost estimator for that key, so LPT dispatch orders segments
// by costs learned from earlier runs.
//
// ctx cancels the run: segment dispatch stops, replicas waiting for pool
// slots abandon the wait, and every already-acquired replica returns to the
// pool once its in-flight view step completes (a differential step cannot be
// interrupted mid-fixpoint). A canceled run returns ctx's error and no
// result.
func (e *Engine) RunCollection(ctx context.Context, collection string, comp analytics.Computation, opts RunOptions) (*RunResult, error) {
	col, err := e.LookupCollection(collection)
	if err != nil {
		return nil, err
	}
	return e.RunOn(ctx, col, comp, opts)
}

// RunOn executes a computation over a materialized collection value with the
// engine's pools, estimators and option defaults — RunCollection without the
// catalog lookup. Embedding callers holding a Collection (and the cluster
// coordinator's local-degradation path) use it to get engine-amortized
// execution for collections that were never registered. Cancellation
// semantics match RunCollection.
func (e *Engine) RunOn(ctx context.Context, col *view.Collection, comp analytics.Computation, opts RunOptions) (*RunResult, error) {
	if err := e.beginRun(); err != nil {
		return nil, err
	}
	defer e.endRun()
	if opts.Workers == 0 {
		opts.Workers = e.opts.Workers
	}
	if opts.Parallelism == 0 {
		opts.Parallelism = e.opts.Parallelism
	}
	normalizeRunOptions(&opts)
	ctx, tr, created := e.ensureTrace(ctx)
	ctx, span := obs.StartSpan(ctx, "run",
		obs.String("collection", col.Name),
		obs.String("computation", comp.Name()),
		obs.String("mode", opts.Mode.String()))
	obs.M.RunsStarted.Inc()
	obs.M.RunsInflight.Add(1)
	var res *RunResult
	var err error
	if opts.Incremental {
		// Incremental runs keep private warm replicas (incremental.go) —
		// never pool slots, whose in-place reset would discard exactly the
		// accumulated state an incremental run exists to reuse.
		res, err = e.runIncremental(ctx, col, comp, opts)
	} else {
		pool, est := e.runnerPool(comp, opts.Workers, opts.Parallelism)
		if opts.Estimator == nil {
			opts.Estimator = est
		}
		res, err = runCollection(ctx, col, comp, opts, pool)
	}
	span.End()
	obs.M.RunsInflight.Add(-1)
	if err != nil {
		obs.M.RunsCanceled.Inc()
	} else {
		obs.M.RunsFinished.Inc()
		stampRun(res, tr)
	}
	if created {
		e.traces.Add(tr)
	}
	return res, err
}

// stampRun attaches the run's trace identity and the process metrics
// snapshot to a completed result — one place, so the engine path and the
// cluster coordinator stamp identically.
func stampRun(res *RunResult, tr *obs.Trace) {
	if res == nil {
		return
	}
	if tr != nil {
		res.RunID = tr.RunID()
	}
	res.Metrics = obs.Default.Snapshot()
}

// CostEstimator returns the engine's persistent scheduling cost estimator
// for (computation, workers) — the model every run over that key warms and
// LPT dispatch consults. A cluster coordinator schedules cross-machine
// assignment with it, so segment placement learns from every prior run on
// this engine. Computations without a faithful identity (closures) get a
// fresh private estimator, never a shared one. Workers defaults to the
// engine's option when < 1.
func (e *Engine) CostEstimator(comp analytics.Computation, workers int) *schedule.Estimator {
	if workers < 1 {
		workers = e.opts.Workers
	}
	_, est := e.runnerPool(comp, workers, 1)
	if est == nil {
		est = &schedule.Estimator{}
	}
	return est
}

func normalizeRunOptions(opts *RunOptions) {
	if opts.Workers < 1 {
		opts.Workers = 1
	}
	if opts.Parallelism < 1 {
		opts.Parallelism = 1
	}
}

// RunCollection executes a computation over all views of a materialized
// collection, sharing computation across views according to the chosen mode.
//
// Execution is a plan → execute pipeline (see DESIGN.md): the splitting
// strategy's per-view decisions are grouped into segments — each one
// from-scratch view plus its differential successors — and independent
// segments are dispatched onto a pool of up to opts.Parallelism dataflow
// replicas. Within a segment, views run strictly in collection order;
// ViewStats land in collection order regardless of which replica ran them.
// FinalResults are snapshotted from the runner that executed the last view,
// and MaxWork/IterCapHit aggregate every segment replica's counters, so the
// result is self-contained and all replicas return to the pool.
func RunCollection(col *view.Collection, comp analytics.Computation, opts RunOptions) (*RunResult, error) {
	//lint:ignore ctxflow compat shim: ctx-free entry point kept for callers without a cancellation chain
	return RunCollectionContext(context.Background(), col, comp, opts)
}

// RunCollectionContext is RunCollection with a cancellation context —
// semantics match Engine.RunCollection, on a private replica pool.
func RunCollectionContext(ctx context.Context, col *view.Collection, comp analytics.Computation, opts RunOptions) (*RunResult, error) {
	normalizeRunOptions(&opts)
	return runCollection(ctx, col, comp, opts, analytics.NewPool(comp, opts.Workers, opts.Parallelism))
}

// runCollection is the shared executor body. The replica pool may be private
// to this run (package-level RunCollection) or engine-owned and shared with
// concurrent runs; either way a per-run admission limiter caps this run's
// concurrently live replicas at opts.Parallelism, and every replica —
// including the one that ran the final view — returns to the pool when the
// run completes, after its results have been snapshotted into the RunResult.
func runCollection(ctx context.Context, col *view.Collection, comp analytics.Computation, opts RunOptions, shared *analytics.Pool) (*RunResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	g := col.Graph
	wc, err := g.WeightColumn(opts.WeightProp)
	if err != nil {
		return nil, err
	}
	stream := col.Stream
	k := stream.NumViews()

	est := opts.Estimator
	if est == nil {
		est = &schedule.Estimator{}
	}
	cr := &collectionRun{
		stream:    stream,
		sizes:     stream.ViewSizes(),
		stats:     make([]ViewStats, k),
		estimator: est,
		progress:  opts.OnSegment,
		cols:      edgeBatcher(g, wc),
	}
	pool := newRunPool(shared, opts.Parallelism)
	scan := newSeedScan(stream, g.NumEdges(), cr.sizes)
	wallStart := time.Now()

	var plan splitting.Plan
	if opts.Mode == Adaptive {
		// Adaptive mode plans online, interleaved with execution — its
		// planning cost is inside the run span, not a separate plan span.
		plan, err = cr.runAdaptive(ctx, opts, pool, scan)
	} else {
		_, planSpan := obs.StartSpan(ctx, "plan",
			obs.String("schedule", opts.Schedule.String()),
			obs.Int("views", k))
		plan = staticPlan(opts.Mode, k)
		order := fifoOrder(len(plan.Segments))
		if opts.Schedule == schedule.LPT {
			diffs := make([]int, k)
			for t := range diffs {
				diffs[t] = stream.DiffSize(t)
			}
			order = schedule.LPTOrder(est.PlanCosts(plan, cr.sizes, diffs))
		}
		seeds := newSeedCache(scan, plan, cr.cols)
		planSpan.End()
		err = cr.runStatic(ctx, plan, seeds, pool, order)
	}
	if err != nil {
		return nil, err
	}

	res := &RunResult{
		Computation: comp.Name(),
		Collection:  col.Name,
		Mode:        opts.Mode,
		Stats:       cr.stats,
		Segments:    cr.segmentStats(),
		Wall:        time.Since(wallStart),
		Splits:      plan.Splits(),
		SpecHits:    cr.specHits,
		SpecMisses:  cr.specMisses,
		final:       map[analytics.VertexValue]int64{},
		work:        cr.work,
		iterCap:     cr.iterCap,
	}
	if cr.finalRes != nil {
		// The final view's results were snapshotted by finishSegment before
		// its replica returned to the pool: warm replicas survive the run,
		// which is what lets an engine-owned pool amortize dataflow
		// construction across calls (an empty collection snapshots nothing).
		res.final = cr.finalRes
	}
	for _, st := range cr.stats {
		res.Total += st.Duration
	}
	return res, nil
}

// RunView executes a computation once over an individual filtered view and
// returns its results and runtime. ctx is checked before the dataflow is
// built; a single view's step is one uninterruptible unit of work.
func RunView(ctx context.Context, fv *view.Filtered, comp analytics.Computation, workers int, weightProp string) (map[analytics.VertexValue]int64, time.Duration, error) {
	if err := ctx.Err(); err != nil {
		return nil, 0, err
	}
	if workers < 1 {
		workers = 1
	}
	wc, err := fv.Base.WeightColumn(weightProp)
	if err != nil {
		return nil, 0, err
	}
	runner, err := analytics.NewRunner(comp, workers)
	if err != nil {
		return nil, 0, err
	}
	dur := runner.StepBatch(edgeBatcher(fv.Base, wc)(fv.Edges), nil)
	return runner.Results(), dur, nil
}
