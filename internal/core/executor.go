package core

import (
	"fmt"
	"time"

	"graphsurge/internal/analytics"
	"graphsurge/internal/graph"
	"graphsurge/internal/splitting"
	"graphsurge/internal/view"
)

// ExecMode selects the collection execution strategy (paper §5, §7.2-7.3).
type ExecMode uint8

const (
	// DiffOnly runs every view differentially on top of its predecessors.
	DiffOnly ExecMode = iota
	// Scratch runs every view from scratch (iterations still shared
	// differentially within each view).
	Scratch
	// Adaptive lets the splitting optimizer choose per batch of views.
	Adaptive
)

func (m ExecMode) String() string {
	switch m {
	case DiffOnly:
		return "diff-only"
	case Scratch:
		return "scratch"
	case Adaptive:
		return "adaptive"
	}
	return fmt.Sprintf("ExecMode(%d)", uint8(m))
}

// RunOptions configures a computation run over a collection.
type RunOptions struct {
	Mode ExecMode
	// Workers overrides the engine default when > 0.
	Workers int
	// WeightProp names the integer edge property used as edge weight; empty
	// means unit weights.
	WeightProp string
	// BatchSize overrides the adaptive optimizer's ℓ (default 10).
	BatchSize int
	// KeepOutputs retains full per-version output history (memory grows
	// with the collection; default folds history as versions complete).
	KeepOutputs bool
}

// ViewStats records one view's execution.
type ViewStats struct {
	Index       int
	Name        string
	Mode        splitting.Mode
	Duration    time.Duration
	ViewSize    int // |GV|
	DiffSize    int // |δC|
	OutputDiffs int // output difference-set size
}

// RunResult summarizes a collection run.
type RunResult struct {
	Computation string
	Collection  string
	Mode        ExecMode
	Stats       []ViewStats
	Total       time.Duration
	Splits      int // number of from-scratch runs after view 0

	runner analytics.Runner
}

// FinalResults returns the per-vertex results of the last view.
func (r *RunResult) FinalResults() map[analytics.VertexValue]int64 { return r.runner.Results() }

// MaxWork returns the maximum per-worker work counter of the final runner, a
// critical-path proxy for distributed scaling (see DESIGN.md on Figure 10).
func (r *RunResult) MaxWork() int64 {
	var m int64
	for _, c := range r.runner.WorkCounts() {
		if c > m {
			m = c
		}
	}
	return m
}

// IterCapHit reports whether any fixpoint hit the safety cap during the run.
func (r *RunResult) IterCapHit() bool { return r.runner.IterCapHit() }

// RunCollection executes a computation over a named materialized collection.
func (e *Engine) RunCollection(collection string, comp analytics.Computation, opts RunOptions) (*RunResult, error) {
	col, ok := e.Collection(collection)
	if !ok {
		return nil, fmt.Errorf("core: no collection named %q", collection)
	}
	if opts.Workers == 0 {
		opts.Workers = e.opts.Workers
	}
	return RunCollection(col, comp, opts)
}

// RunCollection executes a computation over all views of a materialized
// collection, in the collection's order, sharing computation across views
// according to the chosen mode.
func RunCollection(col *view.Collection, comp analytics.Computation, opts RunOptions) (*RunResult, error) {
	if opts.Workers < 1 {
		opts.Workers = 1
	}
	g := col.Graph
	wc, err := g.WeightColumn(opts.WeightProp)
	if err != nil {
		return nil, err
	}
	stream := col.Stream
	k := stream.NumViews()
	sizes := stream.ViewSizes()

	runner, err := analytics.NewRunner(comp, opts.Workers)
	if err != nil {
		return nil, err
	}
	res := &RunResult{
		Computation: comp.Name(),
		Collection:  col.Name,
		Mode:        opts.Mode,
		Stats:       make([]ViewStats, 0, k),
		runner:      runner,
	}
	optimizer := &splitting.Optimizer{BatchSize: opts.BatchSize}

	// Current view membership, for seeding from-scratch runs.
	member := make([]bool, g.NumEdges())

	triples := func(idxs []uint32) []graph.Triple {
		out := make([]graph.Triple, len(idxs))
		for i, idx := range idxs {
			out[i] = g.Triple(int(idx), wc)
		}
		return out
	}

	for t := 0; t < k; t++ {
		adds, dels := stream.Adds[t], stream.Dels[t]
		for _, idx := range adds {
			member[idx] = true
		}
		for _, idx := range dels {
			member[idx] = false
		}

		var mode splitting.Mode
		switch opts.Mode {
		case DiffOnly:
			mode = splitting.ModeDiff
		case Scratch:
			mode = splitting.ModeScratch
		case Adaptive:
			mode = optimizer.Decide(t, sizes[t], stream.DiffSize(t))
		}

		var dur time.Duration
		if mode == splitting.ModeScratch && t > 0 {
			// Split: fresh dataflow seeded with the full view. Construction
			// time is part of the cost of splitting and is measured.
			start := time.Now()
			fresh, err := analytics.NewRunner(comp, opts.Workers)
			if err != nil {
				return nil, err
			}
			full := make([]uint32, 0, sizes[t])
			for idx, in := range member {
				if in {
					full = append(full, uint32(idx))
				}
			}
			fresh.Step(triples(full), nil)
			dur = time.Since(start)
			runner = fresh
			res.runner = fresh
			res.Splits++
		} else {
			// View 0 always loads the first view in full; it counts as the
			// initial from-scratch run for the optimizer's bootstrap.
			dur = runner.Step(triples(adds), triples(dels))
		}

		v, _ := runner.Version()
		st := ViewStats{
			Index:       t,
			Name:        stream.Names[t],
			Mode:        mode,
			Duration:    dur,
			ViewSize:    sizes[t],
			DiffSize:    stream.DiffSize(t),
			OutputDiffs: runner.OutputDiffs(v),
		}
		res.Stats = append(res.Stats, st)
		res.Total += dur

		if opts.Mode == Adaptive {
			if mode == splitting.ModeScratch || t == 0 {
				optimizer.ObserveScratch(sizes[t], dur)
			} else {
				optimizer.ObserveDiff(stream.DiffSize(t), dur)
			}
		}
		if !opts.KeepOutputs {
			runner.DropOutputsBefore(v)
		}
	}
	return res, nil
}

// RunView executes a computation once over an individual filtered view and
// returns its results and runtime.
func RunView(fv *view.Filtered, comp analytics.Computation, workers int, weightProp string) (map[analytics.VertexValue]int64, time.Duration, error) {
	if workers < 1 {
		workers = 1
	}
	wc, err := fv.Base.WeightColumn(weightProp)
	if err != nil {
		return nil, 0, err
	}
	runner, err := analytics.NewRunner(comp, workers)
	if err != nil {
		return nil, 0, err
	}
	ts := make([]graph.Triple, len(fv.Edges))
	for i, idx := range fv.Edges {
		ts[i] = fv.Base.Triple(int(idx), wc)
	}
	dur := runner.Step(ts, nil)
	return runner.Results(), dur, nil
}
