package core

import (
	"context"
	"sort"
	"sync"
	"time"

	"graphsurge/internal/analytics"
	"graphsurge/internal/graph"
	"graphsurge/internal/obs"
	"graphsurge/internal/schedule"
	"graphsurge/internal/splitting"
	"graphsurge/internal/view"
)

// runPool adapts a (possibly shared, engine-owned) replica pool to one run's
// admission limit: the pool's capacity may exceed this run's Parallelism
// when another concurrent run asked for more, so a local semaphore keeps
// this run's concurrently live replicas at exactly opts.Parallelism — a
// Parallelism=1 run stays strictly sequential no matter how large the
// shared pool has grown.
type runPool struct {
	pool *analytics.Pool
	sem  chan struct{}
}

func newRunPool(p *analytics.Pool, parallelism int) *runPool {
	return &runPool{pool: p, sem: make(chan struct{}, parallelism)}
}

// Acquire claims one of this run's admission slots and a pool replica,
// waiting for both under ctx: a canceled run abandons the wait instead of
// queueing for capacity it will never use.
func (rp *runPool) Acquire(ctx context.Context) (analytics.Runner, time.Duration, error) {
	select {
	case rp.sem <- struct{}{}:
	case <-ctx.Done():
		return nil, 0, ctx.Err()
	}
	r, setup, err := rp.pool.Acquire(ctx)
	if err != nil {
		<-rp.sem
		return nil, 0, err
	}
	return r, setup, nil
}

func (rp *runPool) Release(r analytics.Runner) {
	rp.pool.Release(r)
	<-rp.sem
}

// Free reports how many of this run's admission slots are currently
// unclaimed — the cheap gate speculation checks before bothering to spawn an
// acquisition. The answer can be stale by the time it is used; TryAcquire is
// the authoritative, non-blocking claim.
func (rp *runPool) Free() int { return cap(rp.sem) - len(rp.sem) }

// TryAcquire is the non-blocking form of Acquire used by speculation: it
// returns ok=false immediately when the run's admission limit is reached,
// the shared pool has no free replica slot (another run may hold them all),
// or replica construction fails — instead of stalling or failing the run.
// A speculation that cannot get a replica simply doesn't happen.
func (rp *runPool) TryAcquire() (analytics.Runner, time.Duration, bool) {
	select {
	case rp.sem <- struct{}{}:
	default:
		return nil, 0, false
	}
	r, setup, ok := rp.pool.TryAcquire()
	if !ok {
		<-rp.sem
		return nil, 0, false
	}
	return r, setup, true
}

// viewJob is one view handed to a segment executor: the view's index, its
// mode label for stats, and — on a segment's first view only — the columnar
// edge batch seeding the segment's fresh dataflow. The batch is built once
// (by the seed cache or the speculative path) and handed to whichever
// segment steps it; the job shares it by reference, never copies it.
type viewJob struct {
	t    int
	mode splitting.Mode
	seed *graph.EdgeBatch // non-nil exactly on the segment's first view
}

// collectionRun is the shared context of one RunCollection call: read-only
// inputs plus the per-view stats slots the segment executors fill in.
// Segments cover disjoint view ranges, so their stats writes never alias; the
// joins (channel closes, WaitGroup waits) publish them to the caller, keeping
// stats collection race-free without locks. The cross-segment aggregates —
// per-worker work counters, the iteration-cap flag, per-segment timings —
// are folded in under accMu as each segment finishes, because replicas are
// recycled (and reset) after their segment, so the run result must not read
// them lazily.
type collectionRun struct {
	stream *view.DiffStream
	sizes  []int
	// cols is the run's single edge-index → columnar-batch conversion point
	// (see edgeBatcher).
	cols  func(idxs []uint32) *graph.EdgeBatch
	stats []ViewStats

	accMu      sync.Mutex
	work       []int64 // per-worker counters summed over segment replicas
	iterCap    bool
	segStats   []SegmentStats
	specHits   int
	specMisses int
	finalRes   map[analytics.VertexValue]int64 // snapshotted from the final view's segment

	// estimator receives every view's measured runtime for the engine's
	// scheduling cost model (LPT ordering of later runs). It is
	// mutex-guarded internally, so segment goroutines feed it directly.
	estimator *schedule.Estimator

	// progress, when set (RunOptions.OnSegment), receives each segment's
	// stats as finishSegment records them — the streaming hook the HTTP
	// server uses. Called from segment goroutines, outside accMu.
	progress func(SegmentStats)

	// observe, when set (adaptive mode), receives each view's measured
	// runtime for the optimizer's online models. It must be safe to call
	// from segment goroutines.
	observe func(j viewJob, dur time.Duration)
}

// segmentExec is one segment's execution state: its runner replica, the
// pending replica construction/reset plus seed-build cost, and, when
// executing asynchronously, the queue the planner feeds and the drain signal.
// setup is folded into the seed view's duration so a split still pays for
// dataflow construction and the membership scan, exactly what the sequential
// executor timed; the collection's opening view never pays it (its runner
// was built before the clock started there too).
type segmentExec struct {
	r     analytics.Runner
	setup time.Duration
	jobs  chan viewJob
	done  chan struct{}

	start     int           // first view index, for SegmentStats
	setupStat time.Duration // setup cost, surviving the fold into the seed view
	drain     time.Duration // summed wall time of the segment's Steps
	spec      bool          // opened by a committed speculation

	// span covers the segment from replica acquisition to release. It is
	// ended by releaseSeg — the one choke point every lifecycle path
	// (finish, cancel, speculation discard) already goes through — so a
	// canceled run closes its spans exactly as reliably as it releases its
	// replicas. Nil when the run carries no trace.
	span *obs.Span
}

// runJob executes one view on the segment's runner and records its stats.
func (cr *collectionRun) runJob(s *segmentExec, j viewJob) {
	jobStart := time.Now()
	var dur time.Duration
	switch {
	case j.seed != nil && j.t > 0:
		// Split: the step is timed together with the setup cost (which
		// already includes building the seed batch), as the sequential
		// executor measured splits.
		start := time.Now()
		s.r.StepBatch(j.seed, nil)
		dur = s.setup + time.Since(start)
		s.setup = 0
	case j.seed != nil:
		// The collection's opening view: only the step itself is timed.
		dur = s.r.StepBatch(j.seed, nil)
	default:
		dur = s.r.StepBatch(cr.cols(cr.stream.Adds[j.t]), cr.cols(cr.stream.Dels[j.t]))
	}
	v, _ := s.r.Version()
	cr.stats[j.t] = ViewStats{
		Index:       j.t,
		Name:        cr.stream.Names[j.t],
		Mode:        j.mode,
		Duration:    dur,
		ViewSize:    cr.sizes[j.t],
		DiffSize:    cr.stream.DiffSize(j.t),
		OutputDiffs: s.r.OutputDiffs(v),
	}
	if j.seed != nil {
		cr.estimator.ObserveScratch(cr.sizes[j.t], dur)
	} else {
		cr.estimator.ObserveDiff(cr.stream.DiffSize(j.t), dur)
	}
	if cr.observe != nil {
		cr.observe(j, dur)
	}
	// Fold output history as versions complete: the run result snapshots
	// what it needs, and the replica returns to a pool where retained
	// history would just sit until the next reset.
	s.r.DropOutputsBefore(v)
	s.drain += time.Since(jobStart)
}

// consume drains the segment's queued views in order and signals completion.
// After ctx is canceled, queued views are discarded instead of executed: the
// queue still drains to completion (the planner may be blocked sending into
// it), but no further dataflow steps start.
func (cr *collectionRun) consume(ctx context.Context, s *segmentExec) {
	for j := range s.jobs {
		if ctx.Err() != nil {
			continue
		}
		cr.runJob(s, j)
	}
	close(s.done)
}

// finishSegment folds a completed segment into the run's aggregates: its
// replica's work counters and iteration-cap flag (snapshotted now, because
// the replica is about to be released and reset for reuse), its
// SegmentStats entry, and — when the segment contains the collection's
// final view — the per-vertex results the RunResult reports. Snapshotting
// here lets every replica return to the pool uniformly no matter the
// dispatch order (under LPT the final segment can finish first). Must be
// called exactly once per segment, after its last view and before its
// replica is released.
func (cr *collectionRun) finishSegment(s *segmentExec, end int) {
	wc := s.r.WorkCounts()
	hit := s.r.IterCapHit()
	var finalRes map[analytics.VertexValue]int64
	if end == cr.stream.NumViews() {
		finalRes = s.r.Results()
	}
	st := SegmentStats{
		Start:       s.start,
		End:         end,
		Setup:       s.setupStat,
		Drain:       s.drain,
		Speculative: s.spec,
	}
	cr.accMu.Lock()
	if cr.work == nil {
		cr.work = make([]int64, len(wc))
	}
	for i, c := range wc {
		cr.work[i] += c
	}
	cr.iterCap = cr.iterCap || hit
	cr.segStats = append(cr.segStats, st)
	if finalRes != nil {
		cr.finalRes = finalRes
	}
	cr.accMu.Unlock()
	obs.M.SegmentSetup.Observe(st.Setup.Seconds())
	obs.M.SegmentDrain.Observe(st.Drain.Seconds())
	if cr.progress != nil {
		// Outside accMu: the callback may write to a network client and must
		// never hold the run's aggregation lock while it does.
		cr.progress(st)
	}
}

// releaseSeg ends the segment's span and returns its replica to the
// pool — the single release path, so spans and replicas can never leak
// independently.
func (cr *collectionRun) releaseSeg(pool *runPool, s *segmentExec) {
	s.span.End()
	pool.Release(s.r)
}

// segmentStats returns the per-segment timings in collection order. Segments
// finish out of order under parallel dispatch; all executor goroutines have
// joined by the time this is called.
func (cr *collectionRun) segmentStats() []SegmentStats {
	sort.Slice(cr.segStats, func(i, j int) bool { return cr.segStats[i].Start < cr.segStats[j].Start })
	return cr.segStats
}

// acquireSegment takes a replica from the pool and builds the seed batch for
// a segment opening at view t, folding the seed build time into the setup
// cost the seed view will report (the cache attributes a seed built ahead
// of dispatch to the segment that uses it).
func acquireSegment(ctx context.Context, pool *runPool, seeds *seedCache, t int) (*segmentExec, *graph.EdgeBatch, error) {
	_, span := obs.StartSpan(ctx, "segment", obs.Int("start", t))
	r, setup, err := pool.Acquire(ctx)
	if err != nil {
		span.End()
		return nil, nil, err
	}
	seed, build := seeds.take(t)
	setup += build
	return &segmentExec{r: r, setup: setup, start: t, setupStat: setup, span: span}, seed, nil
}

// runStatic dispatches a fully precomputed plan's segments onto the pool in
// the scheduler's dispatch order — collection order under FIFO, longest
// predicted cost first under LPT (order is a permutation of the segment
// indices). Segments share no dataflow state, so up to the run's admission
// limit execute concurrently (Acquire provides the backpressure, making the
// dispatch a list schedule in the given order). Every segment's replica
// returns to the pool as it finishes — the final collection segment's
// results are snapshotted by finishSegment before its release, so even when
// LPT dispatches (and finishes) that segment first, its replica slot frees
// for the remaining segments rather than deadlocking a Parallelism=1 run.
// An empty collection acquires nothing.
//
// Cancellation stops dispatch at the next acquire (Acquire itself aborts a
// blocked wait) and makes every in-flight segment goroutine stop stepping
// after its current view; aborted segments release their replicas without a
// finishSegment entry — the run is returning an error, so partial aggregates
// would never be read.
func (cr *collectionRun) runStatic(ctx context.Context, plan splitting.Plan, seeds *seedCache, pool *runPool, order []int) error {
	var wg sync.WaitGroup
	for _, si := range order {
		seg := plan.Segments[si]
		s, seed, err := acquireSegment(ctx, pool, seeds, seg.Start)
		if err != nil {
			wg.Wait()
			return err
		}
		wg.Add(1)
		go func(seg splitting.Segment, s *segmentExec, seed *graph.EdgeBatch) {
			defer wg.Done()
			defer cr.releaseSeg(pool, s)
			cr.runJob(s, viewJob{t: seg.Start, mode: plan.Modes[seg.Start], seed: seed})
			for t := seg.Start + 1; t < seg.End; t++ {
				if ctx.Err() != nil {
					return
				}
				cr.runJob(s, viewJob{t: t, mode: plan.Modes[t]})
			}
			cr.finishSegment(s, seg.End)
		}(seg, s, seed)
	}
	wg.Wait()
	return ctx.Err()
}

// speculation is one in-flight speculative segment start: the predicted
// split view, the replica seeded with it (nil when no idle replica could be
// claimed or construction failed), and the seed view's stats, published via
// the done channel.
type speculation struct {
	t    int
	done chan struct{}
	s    *segmentExec // set only if a replica was acquired and seeded
	st   ViewStats    // the speculatively executed seed view's stats
}

// speculate predicts the planner's next split point from the optimizer's
// current models and, when this run has an idle replica slot, seeds that
// segment on it ahead of the decision: the replica is acquired, the seed
// built on a fork of the scan (the parent scan cannot rewind if the
// prediction misses short), and the predicted view stepped from scratch.
// The segment is independent dataflow state, so the work is correct
// whether or not the planner later declares the split — a hit converts
// replica idle time into overlap, a miss releases the replica (its state
// is discarded by the pool's reset on the next acquire). Returns nil when
// no split is predicted.
func (cr *collectionRun) speculate(ctx context.Context, opt *splitting.Optimizer, mu *sync.Mutex, pool *runPool, scan *seedScan, from, k int, diffs []int) *speculation {
	mu.Lock()
	p, ok := schedule.PredictSplit(opt, from, k, cr.sizes, diffs)
	mu.Unlock()
	if !ok {
		return nil
	}
	sp := &speculation{t: p, done: make(chan struct{})}
	fork := scan.fork() // fork on the planner goroutine: the scan is not concurrency-safe
	go func() {
		defer close(sp.done)
		r, setup, ok := pool.TryAcquire()
		if !ok {
			return
		}
		_, span := obs.StartSpan(ctx, "segment",
			obs.Int("start", p), obs.String("speculative", "true"))
		jobStart := time.Now()
		fork.advance(p)
		scanStart := time.Now()
		seed := cr.cols(fork.at(p))
		setup += time.Since(scanStart)
		// Mirror runJob's split timing: replica setup, seed scan, batch
		// build and the step are one measured duration.
		stepStart := time.Now()
		r.StepBatch(seed, nil)
		dur := setup + time.Since(stepStart)
		v, _ := r.Version()
		sp.st = ViewStats{
			Index:       p,
			Name:        cr.stream.Names[p],
			Mode:        splitting.ModeScratch,
			Duration:    dur,
			ViewSize:    cr.sizes[p],
			DiffSize:    cr.stream.DiffSize(p),
			OutputDiffs: r.OutputDiffs(v),
		}
		r.DropOutputsBefore(v)
		sp.s = &segmentExec{r: r, start: p, setupStat: setup, drain: time.Since(jobStart), spec: true, span: span}
	}()
	return sp
}

// runAdaptive interleaves online planning with segment execution. The
// planner walks views in collection order, deciding each view's mode with
// the optimizer; segments are handed off to pool replicas as the model
// declares split points.
//
// With Parallelism=1 each view executes inline before the next decision, so
// every decision sees all prior observations — exactly the sequential
// executor's behavior. With Parallelism>1 the open segment's views are
// executed by a dedicated goroutine consuming a queue: when a split closes a
// segment, its tail can still be draining while the next segment seeds on a
// fresh replica, overlapping independent sub-collections. Decisions then use
// whatever observations have arrived (the models are merely less warm, never
// wrong), so split points — but not results — may vary with timing, just as
// they already vary with machine load sequentially.
//
// With Speculate additionally set, an idle replica is seeded with the
// predicted next split point's segment while the planner is still deciding
// (see speculate); stats and model observations for a speculative seed view
// are recorded only if its segment commits, so a miss leaves the run's
// results, ViewStats and work aggregates exactly as if it never happened.
func (cr *collectionRun) runAdaptive(ctx context.Context, opts RunOptions, pool *runPool, scan *seedScan) (splitting.Plan, error) {
	k := cr.stream.NumViews()
	opt := &splitting.Optimizer{BatchSize: opts.BatchSize}
	planner := splitting.NewPlanner(opt)
	seeds := newSeedCache(scan, splitting.Plan{}, cr.cols)

	// One mutex serializes planner decisions against observations arriving
	// from segment goroutines; the optimizer is not safe for concurrent use.
	var mu sync.Mutex
	cr.observe = func(j viewJob, dur time.Duration) {
		mu.Lock()
		defer mu.Unlock()
		if j.seed != nil {
			opt.ObserveScratch(cr.sizes[j.t], dur)
		} else {
			opt.ObserveDiff(cr.stream.DiffSize(j.t), dur)
		}
	}

	// Inline is this run's parallelism, not the pool's capacity: a shared
	// engine pool may be larger than this run is allowed to use.
	inline := opts.Parallelism == 1
	speculating := opts.Speculate && !inline
	var diffs []int
	if speculating {
		diffs = make([]int, k)
		for t := range diffs {
			diffs[t] = cr.stream.DiffSize(t)
		}
	}
	var segs []*segmentExec // asynchronously executing segments, in order
	var cur *segmentExec
	var spec *speculation
	// handoffs tracks the goroutines finishing closed segments; they must be
	// joined before returning, or their finishSegment aggregation would race
	// with the caller reading the run's work counters and segment stats.
	var handoffs sync.WaitGroup
	// resolveSpec joins the outstanding speculation, if any, and returns it
	// when it seeded the segment the planner just opened at commitAt (a
	// hit); any other outcome — no split at the predicted view, a split
	// elsewhere (commitAt -1), or a speculation that never got a replica —
	// discards it, releasing the replica for the pool to reset.
	resolveSpec := func(commitAt int) *speculation {
		if spec == nil {
			return nil
		}
		sp := spec
		spec = nil
		<-sp.done
		if sp.s == nil {
			return nil
		}
		if sp.t == commitAt {
			return sp
		}
		cr.releaseSeg(pool, sp.s)
		cr.accMu.Lock()
		cr.specMisses++
		cr.accMu.Unlock()
		return nil
	}
	// fail drains the already-dispatched segments before returning; it is
	// only reached from the acquire path, where every segment so far —
	// including the one just closed by the split — has a closed queue.
	fail := func(err error) (splitting.Plan, error) {
		for _, s := range segs {
			<-s.done
		}
		handoffs.Wait()
		resolveSpec(-1)
		return planner.Plan(), err
	}
	for t := 0; t < k; t++ {
		if err := ctx.Err(); err != nil {
			// Canceled: stop planning, drain the open segments (their
			// consumers discard queued views once they see the canceled ctx),
			// discard any speculation, and release the still-open segment's
			// replica — handoff goroutines own the replicas of segments
			// already closed at split points.
			if cur != nil && !inline {
				close(cur.jobs)
			}
			for _, s := range segs {
				<-s.done
			}
			handoffs.Wait()
			resolveSpec(-1)
			if cur != nil {
				cr.releaseSeg(pool, cur)
			}
			return planner.Plan(), err
		}
		mu.Lock()
		mode, split := planner.Extend(cr.sizes[t], cr.stream.DiffSize(t))
		mu.Unlock()
		var seed *graph.EdgeBatch
		committed := false
		if split {
			if cur != nil {
				if inline {
					cr.finishSegment(cur, t)
					cr.releaseSeg(pool, cur)
				} else {
					// Hand the closed segment off: it keeps draining while
					// the new segment seeds; its replica returns to the pool
					// once drained.
					close(cur.jobs)
					handoffs.Add(1)
					go func(s *segmentExec, end int) {
						defer handoffs.Done()
						<-s.done
						cr.finishSegment(s, end)
						cr.releaseSeg(pool, s)
					}(cur, t)
				}
			}
			if sp := resolveSpec(t); sp != nil {
				// Hit: the segment's seed view already ran on the
				// speculative replica. Publish its stats and feed the models
				// now — exactly what runJob would have done had the view run
				// after the decision.
				cur = sp.s
				cr.stats[t] = sp.st
				cr.estimator.ObserveScratch(cr.sizes[t], sp.st.Duration)
				mu.Lock()
				opt.ObserveScratch(cr.sizes[t], sp.st.Duration)
				mu.Unlock()
				cr.accMu.Lock()
				cr.specHits++
				cr.accMu.Unlock()
				committed = true
			} else {
				var err error
				cur, seed, err = acquireSegment(ctx, pool, seeds, t)
				if err != nil {
					return fail(err)
				}
			}
			if !inline {
				// Speculative mode paces the planner: an unbuffered queue
				// keeps it at most one view ahead of execution, so decisions
				// see near-sequential observations — the "pending decision"
				// whose replica idle time speculation converts into overlap.
				// Without speculation the queue is deep and the planner runs
				// ahead, deciding with whatever observations have arrived.
				bufCap := k - t
				if speculating {
					bufCap = 0
				}
				cur.jobs = make(chan viewJob, bufCap)
				cur.done = make(chan struct{})
				segs = append(segs, cur)
				go cr.consume(ctx, cur)
			}
		} else if spec != nil && t >= spec.t {
			// The predicted split point passed without a split: a miss.
			resolveSpec(-1)
		}
		if !committed {
			j := viewJob{t: t, mode: mode, seed: seed}
			if inline {
				cr.runJob(cur, j)
			} else {
				cur.jobs <- j
			}
		}
		if speculating && spec == nil && pool.Free() > 0 {
			spec = cr.speculate(ctx, opt, &mu, pool, scan, t+1, k, diffs)
		}
	}
	if cur == nil {
		// Empty collection: nothing ran, nothing to acquire.
		return planner.Plan(), nil
	}
	if !inline {
		close(cur.jobs)
		for _, s := range segs {
			<-s.done
		}
		handoffs.Wait()
	}
	resolveSpec(-1)
	cr.finishSegment(cur, k)
	cr.releaseSeg(pool, cur)
	// A cancellation that lands during the tail drain still fails the run:
	// consumers discard queued views after cancel, so the stats would be
	// partial even though every queue closed normally.
	return planner.Plan(), ctx.Err()
}
