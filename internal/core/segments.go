package core

import (
	"sort"
	"sync"
	"time"

	"graphsurge/internal/analytics"
	"graphsurge/internal/graph"
	"graphsurge/internal/splitting"
	"graphsurge/internal/view"
)

// runPool adapts a (possibly shared, engine-owned) replica pool to one run's
// admission limit: the pool's capacity may exceed this run's Parallelism
// when another concurrent run asked for more, so a local semaphore keeps
// this run's concurrently live replicas at exactly opts.Parallelism — a
// Parallelism=1 run stays strictly sequential no matter how large the
// shared pool has grown.
type runPool struct {
	pool *analytics.Pool
	sem  chan struct{}
}

func newRunPool(p *analytics.Pool, parallelism int) *runPool {
	return &runPool{pool: p, sem: make(chan struct{}, parallelism)}
}

func (rp *runPool) Acquire() (analytics.Runner, time.Duration, error) {
	rp.sem <- struct{}{}
	r, setup, err := rp.pool.Acquire()
	if err != nil {
		<-rp.sem
		return nil, 0, err
	}
	return r, setup, nil
}

func (rp *runPool) Release(r analytics.Runner) {
	rp.pool.Release(r)
	<-rp.sem
}

// viewJob is one view handed to a segment executor: the view's index, its
// mode label for stats, and — on a segment's first view only — the full edge
// list seeding the segment's fresh dataflow.
type viewJob struct {
	t    int
	mode splitting.Mode
	seed []uint32 // non-nil exactly on the segment's first view
}

// collectionRun is the shared context of one RunCollection call: read-only
// inputs plus the per-view stats slots the segment executors fill in.
// Segments cover disjoint view ranges, so their stats writes never alias; the
// joins (channel closes, WaitGroup waits) publish them to the caller, keeping
// stats collection race-free without locks. The cross-segment aggregates —
// per-worker work counters, the iteration-cap flag, per-segment timings —
// are folded in under accMu as each segment finishes, because replicas are
// recycled (and reset) after their segment, so the run result must not read
// them lazily.
type collectionRun struct {
	stream  *view.DiffStream
	sizes   []int
	triples func(idxs []uint32) []graph.Triple
	stats   []ViewStats

	accMu    sync.Mutex
	work     []int64 // per-worker counters summed over segment replicas
	iterCap  bool
	segStats []SegmentStats

	// observe, when set (adaptive mode), receives each view's measured
	// runtime for the optimizer's online models. It must be safe to call
	// from segment goroutines.
	observe func(j viewJob, dur time.Duration)
}

// segmentExec is one segment's execution state: its runner replica, the
// pending replica construction/reset plus seed-build cost, and, when
// executing asynchronously, the queue the planner feeds and the drain signal.
// setup is folded into the seed view's duration so a split still pays for
// dataflow construction and the membership scan, exactly what the sequential
// executor timed; the collection's opening view never pays it (its runner
// was built before the clock started there too).
type segmentExec struct {
	r     analytics.Runner
	setup time.Duration
	jobs  chan viewJob
	done  chan struct{}

	start     int           // first view index, for SegmentStats
	setupStat time.Duration // setup cost, surviving the fold into the seed view
	drain     time.Duration // summed wall time of the segment's Steps
}

// runJob executes one view on the segment's runner and records its stats.
func (cr *collectionRun) runJob(s *segmentExec, j viewJob) {
	jobStart := time.Now()
	var dur time.Duration
	switch {
	case j.seed != nil && j.t > 0:
		// Split: the triple materialization and the step are timed together
		// with the setup cost, as the sequential executor measured splits.
		start := time.Now()
		s.r.Step(cr.triples(j.seed), nil)
		dur = s.setup + time.Since(start)
		s.setup = 0
	case j.seed != nil:
		// The collection's opening view: only the step itself is timed.
		dur = s.r.Step(cr.triples(j.seed), nil)
	default:
		dur = s.r.Step(cr.triples(cr.stream.Adds[j.t]), cr.triples(cr.stream.Dels[j.t]))
	}
	v, _ := s.r.Version()
	cr.stats[j.t] = ViewStats{
		Index:       j.t,
		Name:        cr.stream.Names[j.t],
		Mode:        j.mode,
		Duration:    dur,
		ViewSize:    cr.sizes[j.t],
		DiffSize:    cr.stream.DiffSize(j.t),
		OutputDiffs: s.r.OutputDiffs(v),
	}
	if cr.observe != nil {
		cr.observe(j, dur)
	}
	// Fold output history as versions complete: the run result snapshots
	// what it needs, and the replica returns to a pool where retained
	// history would just sit until the next reset.
	s.r.DropOutputsBefore(v)
	s.drain += time.Since(jobStart)
}

// consume drains the segment's queued views in order and signals completion.
func (cr *collectionRun) consume(s *segmentExec) {
	for j := range s.jobs {
		cr.runJob(s, j)
	}
	close(s.done)
}

// finishSegment folds a completed segment into the run's aggregates: its
// replica's work counters and iteration-cap flag (snapshotted now, because
// the replica is about to be released and reset for reuse) and its
// SegmentStats entry. Must be called exactly once per segment, after its
// last view and before its replica is released.
func (cr *collectionRun) finishSegment(s *segmentExec, end int) {
	wc := s.r.WorkCounts()
	hit := s.r.IterCapHit()
	cr.accMu.Lock()
	if cr.work == nil {
		cr.work = make([]int64, len(wc))
	}
	for i, c := range wc {
		cr.work[i] += c
	}
	cr.iterCap = cr.iterCap || hit
	cr.segStats = append(cr.segStats, SegmentStats{
		Start: s.start,
		End:   end,
		Setup: s.setupStat,
		Drain: s.drain,
	})
	cr.accMu.Unlock()
}

// segmentStats returns the per-segment timings in collection order. Segments
// finish out of order under parallel dispatch; all executor goroutines have
// joined by the time this is called.
func (cr *collectionRun) segmentStats() []SegmentStats {
	sort.Slice(cr.segStats, func(i, j int) bool { return cr.segStats[i].Start < cr.segStats[j].Start })
	return cr.segStats
}

// acquireSegment takes a replica from the pool and builds the seed for a
// segment opening at view t, folding the seed scan's time into the setup
// cost the seed view will report. The membership fold happens untimed first,
// matching the sequential executor, which updated membership per view
// outside the split timer and timed only the final scan.
func acquireSegment(pool *runPool, ss *seedScan, t int) (*segmentExec, []uint32, error) {
	r, setup, err := pool.Acquire()
	if err != nil {
		return nil, nil, err
	}
	ss.advance(t)
	start := time.Now()
	seed := ss.at(t)
	setup += time.Since(start)
	return &segmentExec{r: r, setup: setup, start: t, setupStat: setup}, seed, nil
}

// runStatic dispatches a fully precomputed plan's segments onto the pool, in
// collection order. Segments share no dataflow state, so up to the run's
// admission limit execute concurrently (Acquire provides the backpressure).
// Every segment's replica returns to the pool as it finishes except the
// final segment's, which is returned by the caller after snapshotting the
// run's results from it. An empty collection acquires nothing and returns a
// nil runner.
func (cr *collectionRun) runStatic(plan splitting.Plan, ss *seedScan, pool *runPool) (analytics.Runner, error) {
	if len(plan.Segments) == 0 {
		return nil, nil
	}
	last := len(plan.Segments) - 1
	var wg sync.WaitGroup
	var final analytics.Runner
	for si := range plan.Segments {
		seg := plan.Segments[si]
		s, seed, err := acquireSegment(pool, ss, seg.Start)
		if err != nil {
			wg.Wait()
			return nil, err
		}
		if si == last {
			final = s.r
		}
		wg.Add(1)
		go func(si int, seg splitting.Segment, s *segmentExec, seed []uint32) {
			defer wg.Done()
			cr.runJob(s, viewJob{t: seg.Start, mode: plan.Modes[seg.Start], seed: seed})
			for t := seg.Start + 1; t < seg.End; t++ {
				cr.runJob(s, viewJob{t: t, mode: plan.Modes[t]})
			}
			cr.finishSegment(s, seg.End)
			if si != last {
				pool.Release(s.r)
			}
		}(si, seg, s, seed)
	}
	wg.Wait()
	return final, nil
}

// runAdaptive interleaves online planning with segment execution. The
// planner walks views in collection order, deciding each view's mode with
// the optimizer; segments are handed off to pool replicas as the model
// declares split points.
//
// With Parallelism=1 each view executes inline before the next decision, so
// every decision sees all prior observations — exactly the sequential
// executor's behavior. With Parallelism>1 the open segment's views are
// executed by a dedicated goroutine consuming a queue: when a split closes a
// segment, its tail can still be draining while the next segment seeds on a
// fresh replica, overlapping independent sub-collections. Decisions then use
// whatever observations have arrived (the models are merely less warm, never
// wrong), so split points — but not results — may vary with timing, just as
// they already vary with machine load sequentially.
func (cr *collectionRun) runAdaptive(opts RunOptions, pool *runPool, ss *seedScan) (analytics.Runner, splitting.Plan, error) {
	k := cr.stream.NumViews()
	opt := &splitting.Optimizer{BatchSize: opts.BatchSize}
	planner := splitting.NewPlanner(opt)

	// One mutex serializes planner decisions against observations arriving
	// from segment goroutines; the optimizer is not safe for concurrent use.
	var mu sync.Mutex
	cr.observe = func(j viewJob, dur time.Duration) {
		mu.Lock()
		defer mu.Unlock()
		if j.seed != nil {
			opt.ObserveScratch(cr.sizes[j.t], dur)
		} else {
			opt.ObserveDiff(cr.stream.DiffSize(j.t), dur)
		}
	}

	// Inline is this run's parallelism, not the pool's capacity: a shared
	// engine pool may be larger than this run is allowed to use.
	inline := opts.Parallelism == 1
	var segs []*segmentExec // asynchronously executing segments, in order
	var cur *segmentExec
	// handoffs tracks the goroutines finishing closed segments; they must be
	// joined before returning, or their finishSegment aggregation would race
	// with the caller reading the run's work counters and segment stats.
	var handoffs sync.WaitGroup
	// fail drains the already-dispatched segments before returning; it is
	// only reached from the acquire path, where every segment so far —
	// including the one just closed by the split — has a closed queue.
	fail := func(err error) (analytics.Runner, splitting.Plan, error) {
		for _, s := range segs {
			<-s.done
		}
		handoffs.Wait()
		return nil, planner.Plan(), err
	}
	for t := 0; t < k; t++ {
		mu.Lock()
		mode, split := planner.Extend(cr.sizes[t], cr.stream.DiffSize(t))
		mu.Unlock()
		var seed []uint32
		if split {
			if cur != nil {
				if inline {
					cr.finishSegment(cur, t)
					pool.Release(cur.r)
				} else {
					// Hand the closed segment off: it keeps draining while
					// the new segment seeds; its replica returns to the pool
					// once drained.
					close(cur.jobs)
					handoffs.Add(1)
					go func(s *segmentExec, end int) {
						defer handoffs.Done()
						<-s.done
						cr.finishSegment(s, end)
						pool.Release(s.r)
					}(cur, t)
				}
			}
			var err error
			cur, seed, err = acquireSegment(pool, ss, t)
			if err != nil {
				return fail(err)
			}
			if !inline {
				cur.jobs = make(chan viewJob, k-t)
				cur.done = make(chan struct{})
				segs = append(segs, cur)
				go cr.consume(cur)
			}
		}
		j := viewJob{t: t, mode: mode, seed: seed}
		if inline {
			cr.runJob(cur, j)
		} else {
			cur.jobs <- j
		}
	}
	if cur == nil {
		// Empty collection: nothing ran, nothing to acquire.
		return nil, planner.Plan(), nil
	}
	if !inline {
		close(cur.jobs)
		for _, s := range segs {
			<-s.done
		}
		handoffs.Wait()
	}
	cr.finishSegment(cur, k)
	return cur.r, planner.Plan(), nil
}
