package core

import (
	"sync"
	"time"

	"graphsurge/internal/analytics"
	"graphsurge/internal/graph"
	"graphsurge/internal/splitting"
	"graphsurge/internal/view"
)

// viewJob is one view handed to a segment executor: the view's index, its
// mode label for stats, and — on a segment's first view only — the full edge
// list seeding the segment's fresh dataflow.
type viewJob struct {
	t    int
	mode splitting.Mode
	seed []uint32 // non-nil exactly on the segment's first view
}

// collectionRun is the shared context of one RunCollection call: read-only
// inputs plus the per-view stats slots the segment executors fill in.
// Segments cover disjoint view ranges, so their stats writes never alias; the
// joins (channel closes, WaitGroup waits) publish them to the caller, keeping
// stats collection race-free without locks.
type collectionRun struct {
	stream  *view.DiffStream
	sizes   []int
	triples func(idxs []uint32) []graph.Triple
	keep    bool
	stats   []ViewStats

	// observe, when set (adaptive mode), receives each view's measured
	// runtime for the optimizer's online models. It must be safe to call
	// from segment goroutines.
	observe func(j viewJob, dur time.Duration)
}

// segmentExec is one segment's execution state: its runner replica, the
// pending replica construction/reset plus seed-build cost, and, when
// executing asynchronously, the queue the planner feeds and the drain signal.
// setup is folded into the seed view's duration so a split still pays for
// dataflow construction and the membership scan, exactly what the sequential
// executor timed; the collection's opening view never pays it (its runner
// was built before the clock started there too).
type segmentExec struct {
	r     analytics.Runner
	setup time.Duration
	jobs  chan viewJob
	done  chan struct{}
}

// runJob executes one view on the segment's runner and records its stats.
func (cr *collectionRun) runJob(s *segmentExec, j viewJob) {
	var dur time.Duration
	switch {
	case j.seed != nil && j.t > 0:
		// Split: the triple materialization and the step are timed together
		// with the setup cost, as the sequential executor measured splits.
		start := time.Now()
		s.r.Step(cr.triples(j.seed), nil)
		dur = s.setup + time.Since(start)
		s.setup = 0
	case j.seed != nil:
		// The collection's opening view: only the step itself is timed.
		dur = s.r.Step(cr.triples(j.seed), nil)
	default:
		dur = s.r.Step(cr.triples(cr.stream.Adds[j.t]), cr.triples(cr.stream.Dels[j.t]))
	}
	v, _ := s.r.Version()
	cr.stats[j.t] = ViewStats{
		Index:       j.t,
		Name:        cr.stream.Names[j.t],
		Mode:        j.mode,
		Duration:    dur,
		ViewSize:    cr.sizes[j.t],
		DiffSize:    cr.stream.DiffSize(j.t),
		OutputDiffs: s.r.OutputDiffs(v),
	}
	if cr.observe != nil {
		cr.observe(j, dur)
	}
	if !cr.keep {
		s.r.DropOutputsBefore(v)
	}
}

// work consumes the segment's queued views in order and signals completion.
func (cr *collectionRun) work(s *segmentExec) {
	for j := range s.jobs {
		cr.runJob(s, j)
	}
	close(s.done)
}

// acquireSegment takes a replica from the pool and builds the seed for a
// segment opening at view t, folding the seed scan's time into the setup
// cost the seed view will report. The membership fold happens untimed first,
// matching the sequential executor, which updated membership per view
// outside the split timer and timed only the final scan.
func acquireSegment(pool *analytics.Pool, ss *seedScan, t int) (*segmentExec, []uint32, error) {
	r, setup, err := pool.Acquire()
	if err != nil {
		return nil, nil, err
	}
	ss.advance(t)
	start := time.Now()
	seed := ss.at(t)
	return &segmentExec{r: r, setup: setup + time.Since(start)}, seed, nil
}

// runStatic dispatches a fully precomputed plan's segments onto the pool, in
// collection order. Segments share no dataflow state, so up to the pool's
// replica count execute concurrently (Acquire provides the backpressure);
// the final segment's runner is detached and returned because the run result
// keeps answering FinalResults/MaxWork/IterCapHit from it.
func (cr *collectionRun) runStatic(plan splitting.Plan, ss *seedScan, pool *analytics.Pool) (analytics.Runner, error) {
	if len(plan.Segments) == 0 {
		// Empty collection: keep a live (never-stepped) runner so result
		// accessors behave as they always have.
		r, _, err := pool.Acquire()
		return r, err
	}
	last := len(plan.Segments) - 1
	var wg sync.WaitGroup
	var final analytics.Runner
	for si := range plan.Segments {
		seg := plan.Segments[si]
		s, seed, err := acquireSegment(pool, ss, seg.Start)
		if err != nil {
			wg.Wait()
			return nil, err
		}
		if si == last {
			final = s.r
		}
		wg.Add(1)
		go func(si int, seg splitting.Segment, s *segmentExec, seed []uint32) {
			defer wg.Done()
			cr.runJob(s, viewJob{t: seg.Start, mode: plan.Modes[seg.Start], seed: seed})
			for t := seg.Start + 1; t < seg.End; t++ {
				cr.runJob(s, viewJob{t: t, mode: plan.Modes[t]})
			}
			if si == last {
				pool.Detach()
			} else {
				pool.Release(s.r)
			}
		}(si, seg, s, seed)
	}
	wg.Wait()
	return final, nil
}

// runAdaptive interleaves online planning with segment execution. The
// planner walks views in collection order, deciding each view's mode with
// the optimizer; segments are handed off to pool replicas as the model
// declares split points.
//
// With Parallelism=1 each view executes inline before the next decision, so
// every decision sees all prior observations — exactly the sequential
// executor's behavior. With Parallelism>1 the open segment's views are
// executed by a dedicated goroutine consuming a queue: when a split closes a
// segment, its tail can still be draining while the next segment seeds on a
// fresh replica, overlapping independent sub-collections. Decisions then use
// whatever observations have arrived (the models are merely less warm, never
// wrong), so split points — but not results — may vary with timing, just as
// they already vary with machine load sequentially.
func (cr *collectionRun) runAdaptive(opts RunOptions, pool *analytics.Pool, ss *seedScan) (analytics.Runner, splitting.Plan, error) {
	k := cr.stream.NumViews()
	opt := &splitting.Optimizer{BatchSize: opts.BatchSize}
	planner := splitting.NewPlanner(opt)

	// One mutex serializes planner decisions against observations arriving
	// from segment goroutines; the optimizer is not safe for concurrent use.
	var mu sync.Mutex
	cr.observe = func(j viewJob, dur time.Duration) {
		mu.Lock()
		defer mu.Unlock()
		if j.seed != nil {
			opt.ObserveScratch(cr.sizes[j.t], dur)
		} else {
			opt.ObserveDiff(cr.stream.DiffSize(j.t), dur)
		}
	}

	inline := pool.Size() == 1
	var segs []*segmentExec // asynchronously executing segments, in order
	var cur *segmentExec
	// fail drains the already-dispatched segments before returning; it is
	// only reached from the acquire path, where every segment so far —
	// including the one just closed by the split — has a closed queue.
	fail := func(err error) (analytics.Runner, splitting.Plan, error) {
		for _, s := range segs {
			<-s.done
		}
		return nil, planner.Plan(), err
	}
	for t := 0; t < k; t++ {
		mu.Lock()
		mode, split := planner.Extend(cr.sizes[t], cr.stream.DiffSize(t))
		mu.Unlock()
		var seed []uint32
		if split {
			if cur != nil {
				if inline {
					pool.Release(cur.r)
				} else {
					// Hand the closed segment off: it keeps draining while
					// the new segment seeds; its replica returns to the pool
					// once drained.
					close(cur.jobs)
					go func(s *segmentExec) { <-s.done; pool.Release(s.r) }(cur)
				}
			}
			var err error
			cur, seed, err = acquireSegment(pool, ss, t)
			if err != nil {
				return fail(err)
			}
			if !inline {
				cur.jobs = make(chan viewJob, k-t)
				cur.done = make(chan struct{})
				segs = append(segs, cur)
				go cr.work(cur)
			}
		}
		j := viewJob{t: t, mode: mode, seed: seed}
		if inline {
			cr.runJob(cur, j)
		} else {
			cur.jobs <- j
		}
	}
	if cur == nil {
		// Empty collection; see runStatic.
		r, _, err := pool.Acquire()
		return r, planner.Plan(), err
	}
	if !inline {
		close(cur.jobs)
		for _, s := range segs {
			<-s.done
		}
	}
	pool.Detach()
	return cur.r, planner.Plan(), nil
}
