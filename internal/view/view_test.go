package view

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"graphsurge/internal/graph"
	"graphsurge/internal/gvdl"
	"graphsurge/internal/ordering"
)

// chainGraph builds a graph with n edges and an integer edge property "w"
// equal to the edge index.
func chainGraph(n int) *graph.Graph {
	ep := graph.NewPropTable([]graph.PropDef{{Name: "w", Type: graph.TypeInt}})
	g := &graph.Graph{Name: "chain", NumNodes: n + 1, EdgeProps: ep}
	for i := 0; i < n; i++ {
		g.Srcs = append(g.Srcs, uint64(i))
		g.Dsts = append(g.Dsts, uint64(i+1))
		ep.Cols[0].Ints = append(ep.Cols[0].Ints, int64(i))
	}
	return g
}

func TestBitset(t *testing.T) {
	b := NewBitset(130)
	b.Set(0)
	b.Set(64)
	b.Set(129)
	if !b.Get(0) || !b.Get(64) || !b.Get(129) || b.Get(1) {
		t.Fatal("get/set")
	}
	if b.Count() != 3 {
		t.Fatalf("count = %d", b.Count())
	}
	o := NewBitset(130)
	o.Set(0)
	o.Set(100)
	if d := b.HammingDistance(o); d != 3 {
		t.Fatalf("hamming = %d", d)
	}
	if b.Len() != 130 {
		t.Fatal("len")
	}
}

func TestMaterializeView(t *testing.T) {
	g := chainGraph(10)
	stmt, err := gvdl.Parse("create view small on chain edges where w < 3")
	if err != nil {
		t.Fatal(err)
	}
	f, err := MaterializeView(g, stmt.(*gvdl.CreateView))
	if err != nil {
		t.Fatal(err)
	}
	if f.NumEdges() != 3 {
		t.Fatalf("view has %d edges", f.NumEdges())
	}
	for i, e := range f.Edges {
		if int(e) != i {
			t.Fatalf("edges %v", f.Edges)
		}
	}
}

func TestBuildEBMParallelMatchesSerial(t *testing.T) {
	g := chainGraph(1000)
	var names []string
	var preds []gvdl.EdgePredicate
	for j := 0; j < 7; j++ {
		j := j
		names = append(names, fmt.Sprintf("v%d", j))
		preds = append(preds, func(i int) bool { return i%(j+2) == 0 })
	}
	serial := BuildEBM(g, names, preds, 1)
	parallel := BuildEBM(g, names, preds, 4)
	for j := range preds {
		if serial.Cols[j].Count() != parallel.Cols[j].Count() {
			t.Fatalf("column %d differs: %d vs %d", j, serial.Cols[j].Count(), parallel.Cols[j].Count())
		}
		for i := 0; i < g.NumEdges(); i++ {
			if serial.Cols[j].Get(i) != parallel.Cols[j].Get(i) {
				t.Fatalf("column %d bit %d differs", j, i)
			}
		}
	}
}

// diffsOracle recomputes a view's edge set from the diff stream prefix.
func diffsOracle(d *DiffStream, t int) map[uint32]bool {
	cur := make(map[uint32]bool)
	for s := 0; s <= t; s++ {
		for _, e := range d.Adds[s] {
			if cur[e] {
				panic("double add")
			}
			cur[e] = true
		}
		for _, e := range d.Dels[s] {
			if !cur[e] {
				panic("delete of absent edge")
			}
			delete(cur, e)
		}
	}
	return cur
}

func TestMaterializeDiffsRoundTrip(t *testing.T) {
	// Property: accumulating the diff stream through view t reproduces
	// exactly the EBM column of the view at position t, for random EBMs and
	// random orders.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nEdges := 1 + r.Intn(200)
		k := 1 + r.Intn(8)
		m := &EBM{NumEdges: nEdges}
		for j := 0; j < k; j++ {
			m.Names = append(m.Names, fmt.Sprintf("v%d", j))
			col := NewBitset(nEdges)
			for i := 0; i < nEdges; i++ {
				if r.Intn(2) == 1 {
					col.Set(i)
				}
			}
			m.Cols = append(m.Cols, col)
		}
		order := r.Perm(k)
		d := MaterializeDiffs(m, order)
		for pos, c := range order {
			got := diffsOracle(d, pos)
			for i := 0; i < nEdges; i++ {
				if got[uint32(i)] != m.Cols[c].Get(i) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// cbCount counts consecutive blocks of a boolean row.
func cbCount(row []bool) int {
	cb := 0
	prev := false
	for _, b := range row {
		if b && !prev {
			cb++
		}
		prev = b
	}
	return cb
}

// dsCount counts the diffs a row contributes (transitions in the 0-padded
// row).
func dsCount(row []bool) int {
	ds := 0
	prev := false
	for _, b := range row {
		if b != prev {
			ds++
		}
		prev = b
	}
	return ds
}

// TestTheorem41Identity verifies the exact accounting identity behind the
// paper's NP-hardness reduction (Theorem 4.1): stacking B on its complement
// Bᶜ ties the difference-set objective to consecutive blocks exactly:
//
//	ds(B∘Bᶜ, σ) = 2·cb(B∘Bᶜ, σ) − rows(B)
//
// because for any row r, ds(r) + ds(rᶜ) = 1 + 2T and cb(r) + cb(rᶜ) = 1 + T,
// where T is the number of internal transitions of r under σ. (The paper's
// in-proof per-row count of 4·cb(r)−1 overstates rows like (1 0 0 1); the
// identity above is the exact form, and the order that minimizes one side
// minimizes the other, which is all the reduction needs.)
func TestTheorem41Identity(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rows := 1 + r.Intn(20)
		k := 1 + r.Intn(7)
		var ds, cbStacked int
		for i := 0; i < rows; i++ {
			row := make([]bool, k)
			comp := make([]bool, k)
			transitions := 0
			for j := range row {
				row[j] = r.Intn(2) == 1
				comp[j] = !row[j]
				if j > 0 && row[j] != row[j-1] {
					transitions++
				}
			}
			rowDS := dsCount(row) + dsCount(comp)
			rowCB := cbCount(row) + cbCount(comp)
			if rowDS != 1+2*transitions || rowCB != 1+transitions {
				return false
			}
			ds += rowDS
			cbStacked += rowCB
		}
		return ds == 2*cbStacked-rows
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestOptimizeOrderBeatsRandomOnStructuredCollections(t *testing.T) {
	// Nested-window views shuffled out of order: the optimizer should
	// recover (close to) the nested order and produce far fewer diffs than
	// the shuffled order.
	g := chainGraph(280)
	k := 7
	names := make([]string, k)
	preds := make([]gvdl.EdgePredicate, k)
	perm := rand.New(rand.NewSource(5)).Perm(k)
	for pos, width := range perm {
		limit := (width + 1) * 40
		names[pos] = fmt.Sprintf("w%d", limit)
		preds[pos] = func(i int) bool { return i < limit }
	}
	m := BuildEBM(g, names, preds, 1)

	asWritten := make([]int, k)
	for i := range asWritten {
		asWritten[i] = i
	}
	shuffledDiffs := MaterializeDiffs(m, asWritten).TotalDiffs()
	opt := OptimizeOrder(m)
	optDiffs := MaterializeDiffs(m, opt).TotalDiffs()
	if optDiffs >= shuffledDiffs {
		t.Fatalf("optimizer did not help: %d vs %d", optDiffs, shuffledDiffs)
	}
	// The optimal order of nested windows yields exactly max-window + k-1
	// diff entries... compute the true optimum by brute force for certainty.
	best := ordering.BruteForce(k, func(o []int) int64 { return MaterializeDiffs(m, o).TotalDiffs() })
	bestDiffs := MaterializeDiffs(m, best).TotalDiffs()
	if float64(optDiffs) > 1.6*float64(bestDiffs) {
		t.Fatalf("optimizer %d diffs, optimal %d", optDiffs, bestDiffs)
	}
}

func TestMaterializeEndToEnd(t *testing.T) {
	g := chainGraph(100)
	src := `create view collection c on chain
[a: w < 30],
[b: w < 60],
[c: w < 90]`
	stmt, err := gvdl.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	col, err := Materialize(g, stmt.(*gvdl.CreateCollection), Options{Workers: 2, Mode: OrderAsWritten})
	if err != nil {
		t.Fatal(err)
	}
	if col.Stream.NumViews() != 3 {
		t.Fatal("views")
	}
	sizes := col.Stream.ViewSizes()
	if sizes[0] != 30 || sizes[1] != 60 || sizes[2] != 90 {
		t.Fatalf("sizes = %v", sizes)
	}
	if col.Stream.TotalDiffs() != 90 {
		t.Fatalf("total diffs = %d", col.Stream.TotalDiffs())
	}
	if col.Timings.Total() <= 0 {
		t.Fatal("timings not recorded")
	}

	// Optimized and random orders keep per-view contents identical.
	for _, mode := range []OrderingMode{OrderOptimized, OrderRandom} {
		c2, err := Materialize(g, stmt.(*gvdl.CreateCollection), Options{Mode: mode, Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		for pos, c := range c2.Order {
			acc := diffsOracle(c2.Stream, pos)
			want := c2.EBM.Cols[c]
			for i := 0; i < g.NumEdges(); i++ {
				if acc[uint32(i)] != want.Get(i) {
					t.Fatalf("mode %d: view %d content mismatch", mode, pos)
				}
			}
		}
	}
}

func TestMaterializeErrors(t *testing.T) {
	g := chainGraph(5)
	stmt, err := gvdl.Parse("create view collection c on chain [a: nope = 1]")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Materialize(g, stmt.(*gvdl.CreateCollection), Options{}); err == nil {
		t.Fatal("expected error for unknown property")
	}
	if _, err := MaterializeFromPredicates("c", g, []string{"a"}, nil, Options{}); err == nil {
		t.Fatal("expected error for mismatched lengths")
	}
	if _, err := MaterializeFromPredicates("c", g, nil, nil, Options{}); err == nil {
		t.Fatal("expected error for empty collection")
	}
}
