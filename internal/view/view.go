// Package view implements Graphsurge's view and view-collection executors:
// materializing individual filtered views, building Edge Boolean Matrices
// (EBM), ordering collections, and computing the edge difference streams that
// drive differential execution (paper §3.1-§3.2).
package view

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"graphsurge/internal/graph"
	"graphsurge/internal/gvdl"
	"graphsurge/internal/ordering"
)

// Filtered is a materialized individual filtered view: the subset of a base
// graph's edges satisfying a predicate.
type Filtered struct {
	Name  string
	Base  *graph.Graph
	Edges []uint32 // indices into the base graph's edge arrays, ascending

	// PredSrc is the view's predicate in re-parseable GVDL source form,
	// retained so the view can be incrementally maintained when its base
	// graph mutates (predicates are compiled closures over the graph's
	// column slices and must be recompiled after appends). Empty for
	// programmatic views, which are not maintainable.
	PredSrc string
	// On names the parent filtered view when this is a view over a view;
	// empty when the view filters the base graph directly.
	On string
	// Version is the base graph version this materialization reflects.
	Version uint64
}

// NumEdges returns the view's edge count.
func (f *Filtered) NumEdges() int { return len(f.Edges) }

// Contains reports whether base edge index e is in the view (binary search
// over the ascending edge list).
func (f *Filtered) Contains(e uint32) bool {
	lo, hi := 0, len(f.Edges)
	for lo < hi {
		mid := (lo + hi) / 2
		if f.Edges[mid] < e {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(f.Edges) && f.Edges[lo] == e
}

// MaterializeView evaluates a filtered-view statement against its base
// graph. Tombstoned edges are never members.
func MaterializeView(g *graph.Graph, stmt *gvdl.CreateView) (*Filtered, error) {
	pred, err := gvdl.CompileEdgePredicate(g, stmt.Where)
	if err != nil {
		return nil, fmt.Errorf("view %s: %w", stmt.Name, err)
	}
	f := &Filtered{Name: stmt.Name, Base: g, PredSrc: stmt.Where.String(), Version: g.Version}
	for i := 0; i < g.NumEdges(); i++ {
		if g.EdgeAlive(i) && pred(i) {
			f.Edges = append(f.Edges, uint32(i))
		}
	}
	return f, nil
}

// EBM is the Edge Boolean Matrix of a collection: column j records which
// edges of the base graph satisfy view j's predicate (paper §3.2, step 1).
type EBM struct {
	NumEdges int
	Names    []string
	Cols     []*Bitset
}

// NumViews returns the number of columns.
func (m *EBM) NumViews() int { return len(m.Cols) }

// BuildEBM evaluates every view predicate over every edge, in parallel
// across edge ranges — the embarrassingly parallel step 1 of collection
// materialization.
func BuildEBM(g *graph.Graph, names []string, preds []gvdl.EdgePredicate, workers int) *EBM {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	m := &EBM{NumEdges: g.NumEdges(), Names: names}
	for range preds {
		m.Cols = append(m.Cols, NewBitset(g.NumEdges()))
	}
	nE := g.NumEdges()
	if workers > nE {
		workers = 1
	}
	var wg sync.WaitGroup
	// Round chunks up to a multiple of 64 so no two workers touch the same
	// bitset word.
	chunk := ((nE+workers-1)/workers + 63) &^ 63
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := min(lo+chunk, nE)
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for j, p := range preds {
				col := m.Cols[j]
				// Word-aligned ranges per worker make concurrent writes to
				// distinct words safe. Tombstoned edges are never members.
				for i := lo; i < hi; i++ {
					if g.EdgeAlive(i) && p(i) {
						col.Set(i)
					}
				}
			}
		}(lo, hi)
	}
	wg.Wait()
	return m
}

// DiffStream is the materialized edge difference stream of an ordered
// collection (paper §3.2, step 3): per view, the edge indices added and
// removed relative to the previous view in the order.
type DiffStream struct {
	Names []string   // view names in execution order
	Adds  [][]uint32 // per view, ascending edge indices entering
	Dels  [][]uint32 // per view, ascending edge indices leaving
}

// NumViews returns the number of views in the stream.
func (d *DiffStream) NumViews() int { return len(d.Names) }

// DiffSize returns |δC_t| for view t: the number of added plus removed
// edges.
func (d *DiffStream) DiffSize(t int) int { return len(d.Adds[t]) + len(d.Dels[t]) }

// TotalDiffs returns the sum of all difference-set sizes, the objective of
// the collection ordering problem.
func (d *DiffStream) TotalDiffs() int64 {
	var n int64
	for t := range d.Adds {
		n += int64(d.DiffSize(t))
	}
	return n
}

// ViewSizes returns |GV_t| for every view (accumulated edge counts).
func (d *DiffStream) ViewSizes() []int {
	out := make([]int, d.NumViews())
	cur := 0
	for t := range d.Adds {
		cur += len(d.Adds[t]) - len(d.Dels[t])
		out[t] = cur
	}
	return out
}

// MaterializeDiffs walks each edge's row of the EBM in the given column
// order and emits ±1 transitions, yielding the difference stream. Per-edge
// work is independent (embarrassingly parallel).
//
// Degenerate collections short-circuit: a single-view collection's stream
// is just that view's members as the first add set (no transitions to
// walk), and a collection whose views are all empty has an all-empty
// stream — both skip the per-edge row walk entirely.
func MaterializeDiffs(m *EBM, order []int) *DiffStream {
	k := len(order)
	d := &DiffStream{
		Names: make([]string, k),
		Adds:  make([][]uint32, k),
		Dels:  make([][]uint32, k),
	}
	for t, c := range order {
		d.Names[t] = m.Names[c]
	}
	if k == 0 {
		return d
	}
	if k == 1 {
		col := m.Cols[order[0]]
		d.Adds[0] = make([]uint32, 0, col.Count())
		for i := 0; i < m.NumEdges; i++ {
			if col.Get(i) {
				d.Adds[0] = append(d.Adds[0], uint32(i))
			}
		}
		return d
	}
	allEmpty := true
	for _, c := range order {
		if m.Cols[c].Count() != 0 {
			allEmpty = false
			break
		}
	}
	if allEmpty {
		return d
	}
	for i := 0; i < m.NumEdges; i++ {
		prev := false
		for t, c := range order {
			cur := m.Cols[c].Get(i)
			if cur && !prev {
				d.Adds[t] = append(d.Adds[t], uint32(i))
			} else if !cur && prev {
				d.Dels[t] = append(d.Dels[t], uint32(i))
			}
			prev = cur
		}
	}
	return d
}

// OptimizeOrder runs the collection ordering optimizer (Algorithm 1): pad a
// zero column, compute pairwise Hamming distances between EBM columns, and
// order via the CBMP1.5/Christofides reduction.
//
// Degenerate inputs skip the Hamming matrix and the solver entirely: zero
// or one view has only one possible order, and all-empty views make every
// order cost zero, so the written order is returned as-is.
func OptimizeOrder(m *EBM) []int {
	k := m.NumViews()
	switch k {
	case 0:
		return []int{}
	case 1:
		return []int{0}
	}
	allEmpty := true
	for _, c := range m.Cols {
		if c.Count() != 0 {
			allEmpty = false
			break
		}
	}
	if allEmpty {
		order := make([]int, k)
		for i := range order {
			order[i] = i
		}
		return order
	}
	// Distance matrix over k view columns plus the zero column (index k).
	dist := make([][]int64, k+1)
	for i := range dist {
		dist[i] = make([]int64, k+1)
	}
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			d := int64(m.Cols[i].HammingDistance(m.Cols[j]))
			dist[i][j], dist[j][i] = d, d
		}
		d := int64(m.Cols[i].Count()) // distance to the zero column
		dist[i][k], dist[k][i] = d, d
	}
	return ordering.Order(k, func(i, j int) int64 { return dist[i][j] })
}

// RandomOrder returns a seeded random permutation of the k views, the
// baseline ordering used in the paper's Table 4.
func RandomOrder(k int, seed int64) []int {
	r := rand.New(rand.NewSource(seed))
	return r.Perm(k)
}

// OrderingMode selects how a collection's views are ordered before
// materializing the difference stream.
type OrderingMode uint8

const (
	// OrderAsWritten keeps the user's order from the GVDL statement.
	OrderAsWritten OrderingMode = iota
	// OrderOptimized runs the collection ordering optimizer.
	OrderOptimized
	// OrderRandom shuffles with the seed in Options.Seed.
	OrderRandom
)

// Options configures collection materialization.
type Options struct {
	Workers int
	Mode    OrderingMode
	Seed    int64
}

// Timings records the duration of each materialization step; their sum is
// the paper's collection creation time (CCT).
type Timings struct {
	EBM      time.Duration
	Ordering time.Duration
	Diffs    time.Duration
}

// Total returns the collection creation time.
func (t Timings) Total() time.Duration { return t.EBM + t.Ordering + t.Diffs }

// Collection is a fully materialized view collection ready for differential
// execution.
type Collection struct {
	Name    string
	Graph   *graph.Graph
	EBM     *EBM
	Order   []int // column order used
	Stream  *DiffStream
	Timings Timings

	// PredSrcs holds each view's predicate in re-parseable GVDL source form,
	// parallel to the EBM columns (pre-order view index), retained for
	// incremental maintenance. Nil for programmatic collections, which are
	// not maintainable.
	PredSrcs []string
	// On names the parent filtered view when the collection was declared
	// over a view; empty when it filters the base graph directly.
	On string
	// Version is the base graph version this materialization reflects.
	Version uint64
}

// NewCollection wraps a pre-computed difference stream as a materialized
// collection, for programmatic workloads (experiments, tests) that construct
// view sequences directly instead of through GVDL predicates. The order is
// the stream's own.
func NewCollection(name string, g *graph.Graph, stream *DiffStream) *Collection {
	order := make([]int, stream.NumViews())
	for i := range order {
		order[i] = i
	}
	return &Collection{Name: name, Graph: g, Order: order, Stream: stream, Version: g.Version}
}

// Materialize runs the three-step pipeline of §3.2: EBM computation,
// collection ordering, difference stream computation.
func Materialize(g *graph.Graph, stmt *gvdl.CreateCollection, opts Options) (*Collection, error) {
	names := make([]string, len(stmt.Views))
	preds := make([]gvdl.EdgePredicate, len(stmt.Views))
	srcs := make([]string, len(stmt.Views))
	for i, v := range stmt.Views {
		p, err := gvdl.CompileEdgePredicate(g, v.Pred)
		if err != nil {
			return nil, fmt.Errorf("collection %s, view %s: %w", stmt.Name, v.Name, err)
		}
		names[i], preds[i] = v.Name, p
		srcs[i] = v.Pred.String()
	}
	c, err := materialize(stmt.Name, g, names, preds, opts)
	if err != nil {
		return nil, err
	}
	c.PredSrcs = srcs
	return c, nil
}

// MaterializeFromPredicates materializes a collection from pre-compiled
// predicates, for programmatic callers (experiments, tests).
func MaterializeFromPredicates(name string, g *graph.Graph, names []string, preds []gvdl.EdgePredicate, opts Options) (*Collection, error) {
	if len(names) != len(preds) {
		return nil, fmt.Errorf("collection %s: %d names but %d predicates", name, len(names), len(preds))
	}
	return materialize(name, g, names, preds, opts)
}

func materialize(name string, g *graph.Graph, names []string, preds []gvdl.EdgePredicate, opts Options) (*Collection, error) {
	if len(preds) == 0 {
		return nil, fmt.Errorf("collection %s: no views", name)
	}
	c := &Collection{Name: name, Graph: g, Version: g.Version}

	start := time.Now()
	c.EBM = BuildEBM(g, names, preds, opts.Workers)
	c.Timings.EBM = time.Since(start)

	start = time.Now()
	switch opts.Mode {
	case OrderOptimized:
		c.Order = OptimizeOrder(c.EBM)
	case OrderRandom:
		c.Order = RandomOrder(c.EBM.NumViews(), opts.Seed)
	default:
		c.Order = make([]int, c.EBM.NumViews())
		for i := range c.Order {
			c.Order[i] = i
		}
	}
	c.Timings.Ordering = time.Since(start)

	start = time.Now()
	c.Stream = MaterializeDiffs(c.EBM, c.Order)
	c.Timings.Diffs = time.Since(start)
	return c, nil
}
