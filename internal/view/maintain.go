// Incremental view maintenance: when a base graph absorbs a mutation
// batch, every materialized view and collection re-evaluates its
// predicates only over the touched edges — the tombstoned indices and the
// appended index range — patching the EBM columns and editing the
// difference stream in place instead of rematerializing (the dynamic-graph
// follow-on to the paper; see DESIGN.md "Dynamic graphs").
//
// The edit discipline rests on two invariants of the mutation layer:
// deleted edges keep their (stable) indices as tombstones, so their stream
// entries can be located and removed by binary search; inserted edges take
// indices strictly greater than every pre-existing one, so their entries
// append to the tail of each sorted add/del set without merging.
package view

import (
	"fmt"

	"graphsurge/internal/graph"
	"graphsurge/internal/gvdl"
)

// ViewDelta is one view's membership change under a mutation batch: the
// base-graph edge indices that entered and left the view, ascending. The
// delta for a collection's final ordered view is what the incremental run
// path feeds into a warm replica as a new outer version.
type ViewDelta struct {
	Name string
	Adds []uint32
	Dels []uint32
}

// Empty reports a no-op delta.
func (d ViewDelta) Empty() bool { return len(d.Adds) == 0 && len(d.Dels) == 0 }

// MaintainFiltered patches a filtered view in place for one applied
// mutation: deleted edges leave, inserted edges satisfying the (freshly
// recompiled, parent-composed) predicate enter. Untouched edges keep their
// membership — predicates depend only on edge properties, which are
// immutable for existing rows.
func MaintainFiltered(f *Filtered, pred gvdl.EdgePredicate, a graph.Applied) ViewDelta {
	delta := ViewDelta{Name: f.Name}
	var rem []uint32
	for _, d := range a.Deleted {
		if f.Contains(d) {
			rem = append(rem, d)
		}
	}
	if len(rem) > 0 {
		f.Edges = removeSorted(f.Edges, rem)
		delta.Dels = rem
	}
	for i := a.PrevEdges; i < a.PrevEdges+a.Inserted; i++ {
		if pred(i) {
			f.Edges = append(f.Edges, uint32(i))
			delta.Adds = append(delta.Adds, uint32(i))
		}
	}
	f.Version = a.Version
	return delta
}

// MaintainCollection patches a materialized collection in place for one
// applied mutation and returns each ordered view's membership delta.
// preds holds one freshly recompiled predicate per EBM column (pre-order
// view index), already composed with the parent view's patched membership
// when the collection is declared over a view.
//
// Only touched edges are visited: a deleted edge's old row is read from
// the EBM when it is in memory, or reconstructed by walking its
// transitions in the difference stream when the collection was loaded from
// disk (the EBM is not persisted); an inserted edge's new row is the
// predicates evaluated at its index. The stream is then edited — stale
// transition entries removed, new ones appended — and the EBM grown and
// patched, leaving exactly the state a from-scratch rematerialization
// would have produced.
func MaintainCollection(c *Collection, preds []gvdl.EdgePredicate, a graph.Applied) ([]ViewDelta, error) {
	if c.Stream == nil {
		return nil, fmt.Errorf("view: collection %s has no difference stream", c.Name)
	}
	k := c.Stream.NumViews()
	if len(preds) != k {
		return nil, fmt.Errorf("view: collection %s has %d views, got %d predicates", c.Name, k, len(preds))
	}
	deltas := make([]ViewDelta, k)
	for t := range deltas {
		deltas[t].Name = c.Stream.Names[t]
	}
	remAdds := make([][]uint32, k)
	remDels := make([][]uint32, k)

	oldRow := make([]bool, k)
	for _, e := range a.Deleted {
		c.oldMembership(e, oldRow)
		prev := false
		for t, mem := range oldRow {
			if mem && !prev {
				remAdds[t] = append(remAdds[t], e)
			} else if !mem && prev {
				remDels[t] = append(remDels[t], e)
			}
			if mem {
				deltas[t].Dels = append(deltas[t].Dels, e)
			}
			prev = mem
		}
	}
	for t := range remAdds {
		if len(remAdds[t]) > 0 {
			c.Stream.Adds[t] = removeSorted(c.Stream.Adds[t], remAdds[t])
		}
		if len(remDels[t]) > 0 {
			c.Stream.Dels[t] = removeSorted(c.Stream.Dels[t], remDels[t])
		}
	}

	newN := a.PrevEdges + a.Inserted
	if c.EBM != nil {
		for _, col := range c.EBM.Cols {
			col.Grow(newN)
		}
		c.EBM.NumEdges = newN
		for _, e := range a.Deleted {
			for _, ci := range c.Order {
				c.EBM.Cols[ci].Clear(int(e))
			}
		}
	}
	for i := a.PrevEdges; i < newN; i++ {
		prev := false
		for t, ci := range c.Order {
			mem := preds[ci](i)
			if mem && !prev {
				c.Stream.Adds[t] = append(c.Stream.Adds[t], uint32(i))
			} else if !mem && prev {
				c.Stream.Dels[t] = append(c.Stream.Dels[t], uint32(i))
			}
			if mem {
				deltas[t].Adds = append(deltas[t].Adds, uint32(i))
				if c.EBM != nil {
					c.EBM.Cols[ci].Set(i)
				}
			}
			prev = mem
		}
	}
	c.Version = a.Version
	return deltas, nil
}

// oldMembership fills row with edge e's pre-mutation membership per ordered
// view position, reading the EBM when present and otherwise replaying the
// edge's add/del transitions along the stream order.
func (c *Collection) oldMembership(e uint32, row []bool) {
	if c.EBM != nil {
		for t, ci := range c.Order {
			row[t] = c.EBM.Cols[ci].Get(int(e))
		}
		return
	}
	mem := false
	for t := range row {
		if containsSorted(c.Stream.Adds[t], e) {
			mem = true
		} else if containsSorted(c.Stream.Dels[t], e) {
			mem = false
		}
		row[t] = mem
	}
}

// containsSorted reports membership of v in an ascending slice.
func containsSorted(s []uint32, v uint32) bool {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := (lo + hi) / 2
		if s[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(s) && s[lo] == v
}

// removeSorted filters the ascending entries of rem out of the ascending
// list, in place. Every rem entry is known present (callers only schedule
// removals for transitions they observed).
func removeSorted(list, rem []uint32) []uint32 {
	out := list[:0]
	j := 0
	for _, v := range list {
		for j < len(rem) && rem[j] < v {
			j++
		}
		if j < len(rem) && rem[j] == v {
			continue
		}
		out = append(out, v)
	}
	return out
}
