package view

import "math/bits"

// Bitset is a fixed-length bit vector; one column of the edge boolean
// matrix.
type Bitset struct {
	n     int
	words []uint64
}

// NewBitset creates a bitset of n bits, all zero.
func NewBitset(n int) *Bitset {
	return &Bitset{n: n, words: make([]uint64, (n+63)/64)}
}

// Len returns the number of bits.
func (b *Bitset) Len() int { return b.n }

// Set sets bit i.
func (b *Bitset) Set(i int) { b.words[i>>6] |= 1 << (uint(i) & 63) }

// Get reports bit i.
func (b *Bitset) Get(i int) bool { return b.words[i>>6]&(1<<(uint(i)&63)) != 0 }

// Clear clears bit i.
func (b *Bitset) Clear(i int) { b.words[i>>6] &^= 1 << (uint(i) & 63) }

// Grow extends the bitset to n bits (no-op if already that long); new bits
// are zero. Used when maintenance appends edges to a base graph.
func (b *Bitset) Grow(n int) {
	if n <= b.n {
		return
	}
	words := (n + 63) / 64
	for len(b.words) < words {
		b.words = append(b.words, 0)
	}
	b.n = n
}

// Count returns the number of set bits.
func (b *Bitset) Count() int {
	c := 0
	for _, w := range b.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// HammingDistance returns the number of positions where b and o differ.
// Both bitsets must have the same length.
func (b *Bitset) HammingDistance(o *Bitset) int {
	c := 0
	for i, w := range b.words {
		c += bits.OnesCount64(w ^ o.words[i])
	}
	return c
}
