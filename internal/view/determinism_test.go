package view

import (
	"fmt"
	"testing"

	"graphsurge/internal/gvdl"
	"graphsurge/internal/ordering"
)

// windowEBM builds an EBM of shuffled nested-window views.
func windowEBM(k, edges int) *EBM {
	g := chainGraph(edges)
	names := make([]string, k)
	preds := make([]gvdl.EdgePredicate, k)
	for i := 0; i < k; i++ {
		limit := ((i*7)%k + 1) * edges / k
		names[i] = fmt.Sprintf("v%d", i)
		preds[i] = func(e int) bool { return e < limit }
	}
	return BuildEBM(g, names, preds, 1)
}

// TestOptimizeOrderDeterministic: identical EBMs yield identical orders —
// the optimizer has no hidden randomness, so collection builds are
// reproducible.
func TestOptimizeOrderDeterministic(t *testing.T) {
	m := windowEBM(9, 360)
	first := OptimizeOrder(m)
	for i := 0; i < 5; i++ {
		got := OptimizeOrder(m)
		for j := range first {
			if got[j] != first[j] {
				t.Fatalf("run %d differs: %v vs %v", i, got, first)
			}
		}
	}
}

// TestRandomOrderSeeded: the random baseline is reproducible by seed and
// differs across seeds.
func TestRandomOrderSeeded(t *testing.T) {
	a := RandomOrder(20, 1)
	b := RandomOrder(20, 1)
	c := RandomOrder(20, 2)
	same := true
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different orders")
		}
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical orders")
	}
}

// TestOrderedDiffsNeverWorseThanWorstRandom is the optimizer's practical
// guarantee on nested-window workloads.
func TestOrderedDiffsNeverWorseThanWorstRandom(t *testing.T) {
	m := windowEBM(8, 320)
	opt := MaterializeDiffs(m, OptimizeOrder(m)).TotalDiffs()
	for seed := int64(0); seed < 10; seed++ {
		rnd := MaterializeDiffs(m, RandomOrder(m.NumViews(), seed)).TotalDiffs()
		if opt > rnd {
			t.Fatalf("optimizer %d diffs worse than random seed %d with %d", opt, seed, rnd)
		}
	}
	// And within 1.6x of the true optimum for this small instance.
	best := ordering.BruteForce(m.NumViews(), func(o []int) int64 {
		return MaterializeDiffs(m, o).TotalDiffs()
	})
	bestDiffs := MaterializeDiffs(m, best).TotalDiffs()
	if float64(opt) > 1.6*float64(bestDiffs) {
		t.Fatalf("optimizer %d vs optimal %d", opt, bestDiffs)
	}
}
