package view

import (
	"encoding/gob"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"graphsurge/internal/graph"
)

// The paper's View Store persists materialized views alongside the graph
// store ("The output of the program is materialized as a stream in the View
// Store"). Filtered views and collections serialize compactly: a view is its
// base graph's name plus edge indices; a collection is its name, order and
// difference stream.

// ErrInvalidName marks a view/collection name the store refuses to join
// into a path. Callers with a fallback (the engine's target resolution
// tries the graph store next) branch on it with errors.Is: an invalid name
// can never correspond to a stored view, so for lookup it means absence,
// not failure.
var ErrInvalidName = errors.New("invalid name")

// ErrStale marks a persisted view or collection whose recorded base-graph
// version no longer matches the graph's: the graph mutated while this
// artifact was not being maintained (for example, mutations applied through
// a store the view layer never saw). Serving it would silently mix
// versions, so loads fail closed; re-create the artifact to clear it.
var ErrStale = errors.New("stale artifact")

// validName rejects view/collection names that could escape the data
// directory when joined into a path: empty names, the dot paths "." and
// "..", and names containing either flavor of path separator (both are
// rejected on every OS so persisted data stays portable). Checked on both
// save and load — a crafted name must fail no matter which side sees it
// first (`run -view '../x'` must not read outside the data directory).
func validName(name string) error {
	if name == "" || name == "." || name == ".." || strings.ContainsAny(name, `/\`) {
		return fmt.Errorf("view: %w %q: must be non-empty and contain no path separators", ErrInvalidName, name)
	}
	return nil
}

// filteredGob is the on-disk form of a Filtered view. PredSrc, On and
// Version ride along for incremental maintenance; pre-mutation files decode
// them to zero values (not maintainable, version 0), which still load
// cleanly against a never-mutated base graph.
type filteredGob struct {
	Name    string
	Base    string
	Edges   []uint32
	PredSrc string
	On      string
	Version uint64
}

// SaveFiltered persists a filtered view under dir.
func SaveFiltered(dir string, f *Filtered) error {
	if err := validName(f.Name); err != nil {
		return err
	}
	if f.Base == nil || f.Base.Name == "" {
		return fmt.Errorf("view: cannot persist view %q without a named base graph", f.Name)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	file, err := os.Create(filepath.Join(dir, f.Name+".view.gob"))
	if err != nil {
		return err
	}
	defer file.Close()
	return gob.NewEncoder(file).Encode(filteredGob{
		Name: f.Name, Base: f.Base.Name, Edges: f.Edges,
		PredSrc: f.PredSrc, On: f.On, Version: f.Version,
	})
}

// LoadFiltered loads a persisted filtered view, resolving its base graph
// through lookup (typically graph.Store.Graph).
func LoadFiltered(dir, name string, lookup func(string) (*graph.Graph, error)) (*Filtered, error) {
	if err := validName(name); err != nil {
		return nil, err
	}
	file, err := os.Open(filepath.Join(dir, name+".view.gob"))
	if err != nil {
		return nil, err
	}
	defer file.Close()
	var fg filteredGob
	if err := gob.NewDecoder(file).Decode(&fg); err != nil {
		return nil, fmt.Errorf("view: loading %q: %w", name, err)
	}
	base, err := lookup(fg.Base)
	if err != nil {
		return nil, fmt.Errorf("view %q: %w", name, err)
	}
	if fg.Version != base.Version {
		return nil, fmt.Errorf("view %q: %w: reflects graph %s at version %d, graph is at %d",
			name, ErrStale, base.Name, fg.Version, base.Version)
	}
	f := &Filtered{Name: fg.Name, Base: base, Edges: fg.Edges, PredSrc: fg.PredSrc, On: fg.On, Version: fg.Version}
	for _, e := range f.Edges {
		if int(e) >= base.NumEdges() {
			return nil, fmt.Errorf("view %q: edge index %d out of range for graph %s", name, e, base.Name)
		}
	}
	return f, nil
}

// collectionGob is the on-disk form of a materialized collection: the
// difference stream is the compact representation the paper materializes.
type collectionGob struct {
	Name  string
	Base  string
	Order []int
	Names []string
	Adds  [][]uint32
	Dels  [][]uint32
	EBMs  int // number of views, for validation
	// Maintenance metadata; zero-valued in pre-mutation files.
	PredSrcs []string
	On       string
	Version  uint64
}

// SaveCollection persists a materialized collection's difference stream
// (the EBM is not retained — it is only needed for ordering, which has
// already happened).
func SaveCollection(dir string, c *Collection) error {
	if err := validName(c.Name); err != nil {
		return err
	}
	if c.Graph == nil || c.Graph.Name == "" {
		return fmt.Errorf("view: cannot persist collection %q without a named base graph", c.Name)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	file, err := os.Create(filepath.Join(dir, c.Name+".collection.gob"))
	if err != nil {
		return err
	}
	defer file.Close()
	return gob.NewEncoder(file).Encode(collectionGob{
		Name:     c.Name,
		Base:     c.Graph.Name,
		Order:    c.Order,
		Names:    c.Stream.Names,
		Adds:     c.Stream.Adds,
		Dels:     c.Stream.Dels,
		EBMs:     c.Stream.NumViews(),
		PredSrcs: c.PredSrcs,
		On:       c.On,
		Version:  c.Version,
	})
}

// LoadCollection loads a persisted collection.
func LoadCollection(dir, name string, lookup func(string) (*graph.Graph, error)) (*Collection, error) {
	if err := validName(name); err != nil {
		return nil, err
	}
	file, err := os.Open(filepath.Join(dir, name+".collection.gob"))
	if err != nil {
		return nil, err
	}
	defer file.Close()
	var cg collectionGob
	if err := gob.NewDecoder(file).Decode(&cg); err != nil {
		return nil, fmt.Errorf("view: loading collection %q: %w", name, err)
	}
	base, err := lookup(cg.Base)
	if err != nil {
		return nil, fmt.Errorf("collection %q: %w", name, err)
	}
	if len(cg.Names) != cg.EBMs || len(cg.Adds) != cg.EBMs || len(cg.Dels) != cg.EBMs {
		return nil, fmt.Errorf("view: collection %q is corrupt (%d/%d/%d views, want %d)",
			name, len(cg.Names), len(cg.Adds), len(cg.Dels), cg.EBMs)
	}
	if cg.Version != base.Version {
		return nil, fmt.Errorf("collection %q: %w: reflects graph %s at version %d, graph is at %d",
			name, ErrStale, base.Name, cg.Version, base.Version)
	}
	return &Collection{
		Name:     cg.Name,
		Graph:    base,
		Order:    cg.Order,
		Stream:   &DiffStream{Names: cg.Names, Adds: cg.Adds, Dels: cg.Dels},
		PredSrcs: cg.PredSrcs,
		On:       cg.On,
		Version:  cg.Version,
	}, nil
}
