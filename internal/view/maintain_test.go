package view

import (
	"reflect"
	"testing"

	"graphsurge/internal/graph"
	"graphsurge/internal/gvdl"
)

// TestOptimizeOrderDegenerate pins the optimizer's fast paths: zero or one
// view and all-empty views skip the Hamming matrix and the solver, returning
// the written order.
func TestOptimizeOrderDegenerate(t *testing.T) {
	if got := OptimizeOrder(&EBM{}); len(got) != 0 {
		t.Fatalf("empty EBM order = %v", got)
	}
	one := &EBM{NumEdges: 10, Names: []string{"a"}, Cols: []*Bitset{NewBitset(10)}}
	one.Cols[0].Set(3)
	if got := OptimizeOrder(one); !reflect.DeepEqual(got, []int{0}) {
		t.Fatalf("single-view order = %v", got)
	}
	empty := &EBM{NumEdges: 10, Names: []string{"a", "b", "c"},
		Cols: []*Bitset{NewBitset(10), NewBitset(10), NewBitset(10)}}
	if got := OptimizeOrder(empty); !reflect.DeepEqual(got, []int{0, 1, 2}) {
		t.Fatalf("all-empty order = %v", got)
	}
}

// TestMaterializeDiffsDegenerate pins the diff materializer's fast paths: a
// single-view collection's stream is the view's members as one add set, and
// all-empty views produce an all-empty stream — neither walks edge rows.
func TestMaterializeDiffsDegenerate(t *testing.T) {
	d := MaterializeDiffs(&EBM{}, nil)
	if d.NumViews() != 0 {
		t.Fatalf("empty stream has %d views", d.NumViews())
	}

	one := &EBM{NumEdges: 8, Names: []string{"a"}, Cols: []*Bitset{NewBitset(8)}}
	one.Cols[0].Set(1)
	one.Cols[0].Set(5)
	d = MaterializeDiffs(one, []int{0})
	if !reflect.DeepEqual(d.Adds[0], []uint32{1, 5}) || len(d.Dels[0]) != 0 {
		t.Fatalf("single-view stream: adds %v, dels %v", d.Adds[0], d.Dels[0])
	}
	if d.Names[0] != "a" || d.ViewSizes()[0] != 2 {
		t.Fatalf("single-view stream: names %v, sizes %v", d.Names, d.ViewSizes())
	}

	empty := &EBM{NumEdges: 8, Names: []string{"a", "b"}, Cols: []*Bitset{NewBitset(8), NewBitset(8)}}
	d = MaterializeDiffs(empty, []int{1, 0})
	if d.NumViews() != 2 || d.TotalDiffs() != 0 {
		t.Fatalf("all-empty stream: %d views, %d diffs", d.NumViews(), d.TotalDiffs())
	}
	if d.Names[0] != "b" || d.Names[1] != "a" {
		t.Fatalf("all-empty stream names %v", d.Names)
	}
}

// mutateChain applies one batch to a chain graph: inserts with the given w
// values (endpoints 0->1) and deletions of the given edge indices.
func mutateChain(t *testing.T, g *graph.Graph, insW []int64, delIdx []int) graph.Applied {
	t.Helper()
	var ins []graph.EdgeInsert
	for _, w := range insW {
		ins = append(ins, graph.EdgeInsert{Src: 0, Dst: 1, Props: map[string]graph.Value{"w": graph.IntValue(w)}})
	}
	var dels []graph.EdgePair
	for _, i := range delIdx {
		dels = append(dels, graph.EdgePair{Src: g.Srcs[i], Dst: g.Dsts[i]})
	}
	mb, err := graph.NewMutationBatch(g, ins, dels)
	if err != nil {
		t.Fatal(err)
	}
	a, err := g.ApplyMutation(mb)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// wPred returns a predicate on the chain graph's "w" property that reads the
// column at call time, so it stays valid across appends.
func wPred(g *graph.Graph, bound int64) gvdl.EdgePredicate {
	return func(i int) bool { return g.EdgeProps.Cols[0].Ints[i] < bound }
}

func TestMaintainFiltered(t *testing.T) {
	g := chainGraph(10) // w = edge index
	stmt, err := gvdl.Parse("create view small on chain edges where w < 5")
	if err != nil {
		t.Fatal(err)
	}
	f, err := MaterializeView(g, stmt.(*gvdl.CreateView))
	if err != nil {
		t.Fatal(err)
	}

	// Insert one member (w=3) and one non-member (w=9); delete one member
	// (edge 2) and one non-member (edge 7).
	a := mutateChain(t, g, []int64{3, 9}, []int{2, 7})
	delta := MaintainFiltered(f, wPred(g, 5), a)

	if f.Version != a.Version {
		t.Fatalf("view version %d, want %d", f.Version, a.Version)
	}
	for i := 0; i < g.NumEdges(); i++ {
		want := g.EdgeAlive(i) && g.EdgeProps.Cols[0].Ints[i] < 5
		if f.Contains(uint32(i)) != want {
			t.Fatalf("edge %d membership %v, want %v", i, !want, want)
		}
	}
	if !reflect.DeepEqual(delta.Adds, []uint32{uint32(a.PrevEdges)}) {
		t.Fatalf("delta adds %v", delta.Adds)
	}
	if !reflect.DeepEqual(delta.Dels, []uint32{2}) {
		t.Fatalf("delta dels %v", delta.Dels)
	}
	if delta.Empty() {
		t.Fatal("non-empty delta reports empty")
	}
}

// maintainedEqualsFresh checks a maintained collection's stream (and EBM,
// when present) against a from-scratch materialization of the same
// predicates over the mutated graph.
func maintainedEqualsFresh(t *testing.T, g *graph.Graph, c *Collection, preds []gvdl.EdgePredicate, names []string) {
	t.Helper()
	fresh, err := MaterializeFromPredicates("fresh", g, names, preds, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < c.Stream.NumViews(); v++ {
		if !reflect.DeepEqual(c.Stream.Adds[v], fresh.Stream.Adds[v]) && !(len(c.Stream.Adds[v]) == 0 && len(fresh.Stream.Adds[v]) == 0) {
			t.Fatalf("view %d adds: maintained %v, fresh %v", v, c.Stream.Adds[v], fresh.Stream.Adds[v])
		}
		if !reflect.DeepEqual(c.Stream.Dels[v], fresh.Stream.Dels[v]) && !(len(c.Stream.Dels[v]) == 0 && len(fresh.Stream.Dels[v]) == 0) {
			t.Fatalf("view %d dels: maintained %v, fresh %v", v, c.Stream.Dels[v], fresh.Stream.Dels[v])
		}
	}
	if c.EBM != nil {
		if c.EBM.NumEdges != g.NumEdges() {
			t.Fatalf("EBM covers %d edges, graph has %d", c.EBM.NumEdges, g.NumEdges())
		}
		for ci := range c.EBM.Cols {
			for i := 0; i < g.NumEdges(); i++ {
				if c.EBM.Cols[ci].Get(i) != fresh.EBM.Cols[ci].Get(i) {
					t.Fatalf("EBM col %d edge %d differs from fresh", ci, i)
				}
			}
		}
	}
}

func TestMaintainCollectionWithEBM(t *testing.T) {
	g := chainGraph(12)
	names := []string{"a", "b", "c"}
	preds := []gvdl.EdgePredicate{wPred(g, 3), wPred(g, 6), wPred(g, 9)}
	c, err := MaterializeFromPredicates("roll", g, names, preds, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}

	a := mutateChain(t, g, []int64{1, 7, 40}, []int{0, 5, 10})
	deltas, err := MaintainCollection(c, preds, a)
	if err != nil {
		t.Fatal(err)
	}
	if c.Version != a.Version {
		t.Fatalf("collection version %d, want %d", c.Version, a.Version)
	}
	if len(deltas) != 3 {
		t.Fatalf("%d deltas", len(deltas))
	}
	// View "a" (w < 3): gains the w=1 insert, loses deleted edge 0.
	if !reflect.DeepEqual(deltas[0].Adds, []uint32{uint32(a.PrevEdges)}) || !reflect.DeepEqual(deltas[0].Dels, []uint32{0}) {
		t.Fatalf("view a delta %+v", deltas[0])
	}
	maintainedEqualsFresh(t, g, c, preds, names)
}

func TestMaintainCollectionStreamWalk(t *testing.T) {
	g := chainGraph(12)
	names := []string{"a", "b", "c"}
	preds := []gvdl.EdgePredicate{wPred(g, 3), wPred(g, 6), wPred(g, 9)}
	c, err := MaterializeFromPredicates("roll", g, names, preds, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	// A collection loaded from disk has no EBM: old membership reconstructs
	// by walking each deleted edge's stream transitions.
	c.EBM = nil

	a := mutateChain(t, g, []int64{2, 8}, []int{1, 4, 7})
	if _, err := MaintainCollection(c, preds, a); err != nil {
		t.Fatal(err)
	}
	if c.EBM != nil {
		t.Fatal("maintenance resurrected the EBM")
	}
	maintainedEqualsFresh(t, g, c, preds, names)

	// A second batch over the already-maintained stream still converges.
	a = mutateChain(t, g, []int64{5}, []int{int(a.PrevEdges)})
	if _, err := MaintainCollection(c, preds, a); err != nil {
		t.Fatal(err)
	}
	maintainedEqualsFresh(t, g, c, preds, names)
}

func TestMaintainCollectionErrors(t *testing.T) {
	g := chainGraph(5)
	preds := []gvdl.EdgePredicate{wPred(g, 3)}
	c, err := MaterializeFromPredicates("one", g, []string{"a"}, preds, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	a := mutateChain(t, g, []int64{1}, nil)
	if _, err := MaintainCollection(c, nil, a); err == nil {
		t.Fatal("predicate count mismatch accepted")
	}
	c.Stream = nil
	if _, err := MaintainCollection(c, preds, a); err == nil {
		t.Fatal("nil stream accepted")
	}
}
