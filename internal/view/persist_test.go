package view

import (
	"fmt"
	"path/filepath"
	"testing"

	"graphsurge/internal/graph"
	"graphsurge/internal/gvdl"
)

func TestFilteredPersistence(t *testing.T) {
	dir := t.TempDir()
	g := chainGraph(50)
	f := &Filtered{Name: "small", Base: g, Edges: []uint32{1, 3, 5}}
	if err := SaveFiltered(dir, f); err != nil {
		t.Fatal(err)
	}
	lookup := func(name string) (*graph.Graph, error) {
		if name != "chain" {
			return nil, fmt.Errorf("no graph %q", name)
		}
		return g, nil
	}
	got, err := LoadFiltered(dir, "small", lookup)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "small" || got.NumEdges() != 3 || got.Edges[1] != 3 {
		t.Fatalf("round trip: %+v", got)
	}
	if _, err := LoadFiltered(dir, "missing", lookup); err == nil {
		t.Fatal("expected error for missing file")
	}
	// Unnamed base rejected on save.
	if err := SaveFiltered(dir, &Filtered{Name: "bad", Base: &graph.Graph{}}); err == nil {
		t.Fatal("expected error for unnamed base")
	}
	// Out-of-range edge index detected on load.
	bad := &Filtered{Name: "oob", Base: g, Edges: []uint32{9999}}
	if err := SaveFiltered(dir, bad); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFiltered(dir, "oob", lookup); err == nil {
		t.Fatal("expected out-of-range error")
	}
}

func TestCollectionPersistence(t *testing.T) {
	dir := t.TempDir()
	g := chainGraph(100)
	stmt, err := gvdl.Parse("create view collection c on chain [a: w < 40], [b: w < 80]")
	if err != nil {
		t.Fatal(err)
	}
	col, err := Materialize(g, stmt.(*gvdl.CreateCollection), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := SaveCollection(dir, col); err != nil {
		t.Fatal(err)
	}
	lookup := func(string) (*graph.Graph, error) { return g, nil }
	got, err := LoadCollection(dir, "c", lookup)
	if err != nil {
		t.Fatal(err)
	}
	if got.Stream.NumViews() != 2 || got.Stream.TotalDiffs() != col.Stream.TotalDiffs() {
		t.Fatalf("round trip: %d views, %d diffs", got.Stream.NumViews(), got.Stream.TotalDiffs())
	}
	sizes := got.Stream.ViewSizes()
	if sizes[0] != 40 || sizes[1] != 80 {
		t.Fatalf("sizes %v", sizes)
	}
	if _, err := LoadCollection(dir, "missing", lookup); err == nil {
		t.Fatal("expected error for missing collection")
	}
	badLookup := func(string) (*graph.Graph, error) { return nil, fmt.Errorf("gone") }
	if _, err := LoadCollection(dir, "c", badLookup); err == nil {
		t.Fatal("expected error for missing base graph")
	}
}

// TestPersistNameValidation pins the path-traversal guard: names that would
// escape the data directory when joined into a path are rejected on both
// save and load, before any filesystem access.
func TestPersistNameValidation(t *testing.T) {
	dir := t.TempDir()
	g := chainGraph(10)
	lookup := func(string) (*graph.Graph, error) { return g, nil }
	bad := []string{"", ".", "..", "../escape", "a/b", `a\b`, "/abs", `..\win`}
	for _, name := range bad {
		if err := SaveFiltered(dir, &Filtered{Name: name, Base: g}); err == nil {
			t.Fatalf("SaveFiltered accepted %q", name)
		}
		if _, err := LoadFiltered(dir, name, lookup); err == nil {
			t.Fatalf("LoadFiltered accepted %q", name)
		}
		if err := SaveCollection(dir, &Collection{Name: name, Graph: g, Stream: &DiffStream{}}); err == nil {
			t.Fatalf("SaveCollection accepted %q", name)
		}
		if _, err := LoadCollection(dir, name, lookup); err == nil {
			t.Fatalf("LoadCollection accepted %q", name)
		}
	}
	// A traversal name must not read files outside the data directory even
	// when a matching file exists there.
	outside := t.TempDir()
	f := &Filtered{Name: "x", Base: g, Edges: []uint32{1}}
	if err := SaveFiltered(outside, f); err != nil {
		t.Fatal(err)
	}
	rel, err := filepath.Rel(dir, filepath.Join(outside, "x"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFiltered(dir, rel, lookup); err == nil {
		t.Fatal("traversal name read a view outside the data directory")
	}
	// Ordinary names (including dots inside) still round-trip.
	ok := &Filtered{Name: "v1.2-ok", Base: g, Edges: []uint32{0}}
	if err := SaveFiltered(dir, ok); err != nil {
		t.Fatal(err)
	}
	if got, err := LoadFiltered(dir, "v1.2-ok", lookup); err != nil || got.NumEdges() != 1 {
		t.Fatalf("round trip of dotted name: %v, %+v", err, got)
	}
}
