package timestamp

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func randTime(r *rand.Rand) Time {
	return Time{Outer: uint32(r.Intn(8)), Inner: uint32(r.Intn(8))}
}

func TestLeqReflexiveAntisymmetric(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		a, b := randTime(r), randTime(r)
		if !a.Leq(a) {
			t.Fatalf("Leq not reflexive for %v", a)
		}
		if a.Leq(b) && b.Leq(a) && a != b {
			t.Fatalf("Leq not antisymmetric for %v, %v", a, b)
		}
	}
}

func TestJoinIsLeastUpperBound(t *testing.T) {
	f := func(ao, ai, bo, bi uint8) bool {
		a := Time{uint32(ao), uint32(ai)}
		b := Time{uint32(bo), uint32(bi)}
		j := a.Join(b)
		if !a.Leq(j) || !b.Leq(j) {
			return false
		}
		// Least: any common upper bound c satisfies j ≤ c. Check against a
		// few candidates derived from a and b.
		for _, c := range []Time{j, {j.Outer + 1, j.Inner}, {j.Outer, j.Inner + 1}} {
			if a.Leq(c) && b.Leq(c) && !j.Leq(c) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMeetIsGreatestLowerBound(t *testing.T) {
	f := func(ao, ai, bo, bi uint8) bool {
		a := Time{uint32(ao), uint32(ai)}
		b := Time{uint32(bo), uint32(bi)}
		m := a.Meet(b)
		return m.Leq(a) && m.Leq(b) && a.Join(b).Join(m) == a.Join(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestJoinCommutativeAssociativeIdempotent(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 1000; i++ {
		a, b, c := randTime(r), randTime(r), randTime(r)
		if a.Join(b) != b.Join(a) {
			t.Fatal("join not commutative")
		}
		if a.Join(b).Join(c) != a.Join(b.Join(c)) {
			t.Fatal("join not associative")
		}
		if a.Join(a) != a {
			t.Fatal("join not idempotent")
		}
	}
}

func TestLexExtendsPartialOrder(t *testing.T) {
	// The scheduler's soundness hinges on this: lex order is a linear
	// extension of the product partial order.
	f := func(ao, ai, bo, bi uint8) bool {
		a := Time{uint32(ao), uint32(ai)}
		b := Time{uint32(bo), uint32(bi)}
		if a.Less(b) && !a.LexLess(b) {
			return false
		}
		// Totality.
		return a == b || a.LexLess(b) || b.LexLess(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStepAndOuter(t *testing.T) {
	if Outer(3) != (Time{3, 0}) {
		t.Fatal("Outer")
	}
	if (Time{1, 2}).Step() != (Time{1, 3}) {
		t.Fatal("Step")
	}
	if got := (Time{1, 2}).String(); got != "(1,2)" {
		t.Fatalf("String = %q", got)
	}
}
