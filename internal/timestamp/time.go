// Package timestamp defines the partially ordered logical timestamps used by
// the differential dataflow engine.
//
// A Time is a point in the product lattice (Outer, Inner). Outer identifies a
// view version within a view collection (the paper's "graph updates"
// dimension), Inner identifies an iteration of a fixpoint loop (the paper's
// "B-Ford iterations" dimension, Table 1 of the Graphsurge paper). Times are
// compared componentwise: two times can be incomparable, e.g. (0,5) and
// (1,3), which is what lets differential computation share work across both
// versions and iterations at once.
package timestamp

import "fmt"

// Time is a two-dimensional logical timestamp <version, iteration>.
type Time struct {
	Outer uint32 // view version within a collection
	Inner uint32 // iteration of a fixpoint computation
}

// Outer returns the time at version v, iteration 0.
func Outer(v uint32) Time { return Time{Outer: v} }

// Leq reports whether t precedes or equals o in the product partial order.
func (t Time) Leq(o Time) bool { return t.Outer <= o.Outer && t.Inner <= o.Inner }

// Less reports whether t strictly precedes o in the product partial order.
func (t Time) Less(o Time) bool { return t.Leq(o) && t != o }

// Join returns the least upper bound of t and o.
func (t Time) Join(o Time) Time {
	if o.Outer > t.Outer {
		t.Outer = o.Outer
	}
	if o.Inner > t.Inner {
		t.Inner = o.Inner
	}
	return t
}

// Meet returns the greatest lower bound of t and o.
func (t Time) Meet(o Time) Time {
	if o.Outer < t.Outer {
		t.Outer = o.Outer
	}
	if o.Inner < t.Inner {
		t.Inner = o.Inner
	}
	return t
}

// LexLess orders times lexicographically (Outer first). Lexicographic order
// is a linear extension of the product partial order, which is what makes it
// a valid processing order for the scheduler: if t.Leq(o) then t.LexLess(o)
// or t == o.
func (t Time) LexLess(o Time) bool {
	if t.Outer != o.Outer {
		return t.Outer < o.Outer
	}
	return t.Inner < o.Inner
}

// Step returns the time advanced by one iteration.
func (t Time) Step() Time { return Time{Outer: t.Outer, Inner: t.Inner + 1} }

func (t Time) String() string { return fmt.Sprintf("(%d,%d)", t.Outer, t.Inner) }
