package server

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"graphsurge/internal/obs"
)

// TestServeMetricsEndpoint: /metrics serves Prometheus text exposition, the
// core run counters appear, and counters move when runs execute.
func TestServeMetricsEndpoint(t *testing.T) {
	e := testEngine(t, 4)
	ts := httptest.NewServer(New(e, Options{}).Handler())
	defer ts.Close()

	scrape := func() string {
		t.Helper()
		resp, err := http.Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("metrics status %d", resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
			t.Fatalf("metrics content type %q", ct)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}

	before := scrape()
	for _, series := range []string{
		"graphsurge_runs_started_total",
		"graphsurge_runs_finished_total",
		"graphsurge_pool_built_total",
		"graphsurge_segment_setup_seconds_bucket",
	} {
		if !strings.Contains(before, series) {
			t.Fatalf("/metrics missing series %s:\n%s", series, before)
		}
	}

	started := func(body string) float64 {
		t.Helper()
		for _, line := range strings.Split(body, "\n") {
			if v, ok := strings.CutPrefix(line, "graphsurge_runs_started_total "); ok {
				f, err := strconv.ParseFloat(strings.TrimSpace(v), 64)
				if err != nil {
					t.Fatalf("bad counter value %q: %v", v, err)
				}
				return f
			}
		}
		t.Fatalf("no graphsurge_runs_started_total sample in:\n%s", body)
		return 0
	}

	b0 := started(before)
	resp := postJSON(t, ts.URL, `{"run":{"collection":"cc","algorithm":{"algorithm":"wcc"},"options":{"mode":"scratch"}}}`)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if b1 := started(scrape()); b1 < b0+1 {
		t.Fatalf("runs_started_total did not advance: %v -> %v", b0, b1)
	}
}

// TestServeTraceEndpoint: a run's summary carries its RunID; GET
// /v1/traces/<id> replays the trace as NDJSON with a root run span; unknown
// IDs 404.
func TestServeTraceEndpoint(t *testing.T) {
	e := testEngine(t, 4)
	ts := httptest.NewServer(New(e, Options{}).Handler())
	defer ts.Close()

	resp := postJSON(t, ts.URL, `{"run":{"collection":"cc","algorithm":{"algorithm":"wcc"},"options":{"mode":"scratch"}}}`)
	var runID string
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		var ev struct {
			Event string `json:"event"`
			Run   *struct {
				RunID string `json:"runId"`
			} `json:"run"`
		}
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatal(err)
		}
		if ev.Event == "summary" {
			if ev.Run == nil || ev.Run.RunID == "" {
				t.Fatalf("summary carries no runId: %s", sc.Text())
			}
			runID = ev.Run.RunID
		}
	}
	resp.Body.Close()
	if runID == "" {
		t.Fatal("no summary event")
	}

	tresp, err := http.Get(ts.URL + "/v1/traces/" + runID)
	if err != nil {
		t.Fatal(err)
	}
	defer tresp.Body.Close()
	if tresp.StatusCode != http.StatusOK {
		t.Fatalf("trace status %d", tresp.StatusCode)
	}
	if ct := tresp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("trace content type %q", ct)
	}
	var recs []obs.SpanRecord
	tsc := bufio.NewScanner(tresp.Body)
	tsc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for tsc.Scan() {
		var r obs.SpanRecord
		if err := json.Unmarshal(tsc.Bytes(), &r); err != nil {
			t.Fatalf("bad trace line %q: %v", tsc.Text(), err)
		}
		recs = append(recs, r)
	}
	names := make(map[string]int)
	for _, r := range recs {
		names[r.Name]++
		if r.End == 0 {
			t.Fatalf("span %q still open in a finished run's trace", r.Name)
		}
	}
	if names["run"] != 1 || names["segment"] != 4 {
		t.Fatalf("span names = %v, want 1 run and 4 segment spans", names)
	}

	// Unknown run IDs 404.
	nresp, err := http.Get(ts.URL + "/v1/traces/run-does-not-exist")
	if err != nil {
		t.Fatal(err)
	}
	nresp.Body.Close()
	if nresp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown trace status %d, want 404", nresp.StatusCode)
	}
}

// TestServePprofGate: /debug/pprof/ is absent by default and present when
// EnablePprof asks for it.
func TestServePprofGate(t *testing.T) {
	e := testEngine(t, 2)
	off := httptest.NewServer(New(e, Options{}).Handler())
	defer off.Close()
	resp, err := http.Get(off.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof mounted without opt-in: status %d", resp.StatusCode)
	}

	on := httptest.NewServer(New(e, Options{EnablePprof: true}).Handler())
	defer on.Close()
	resp, err = http.Get(on.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof index status %d with EnablePprof", resp.StatusCode)
	}
}
