// Package server exposes a core.Session over HTTP: one endpoint accepting
// the same typed Request values Session.Do consumes, JSON-encoded, with
// collection-run responses streamed as NDJSON — per-segment stats as the
// segments finish and final vertex values one record at a time, so a large
// result is never buffered whole in the response path. Cancellation is the
// transport's: a client that disconnects mid-run cancels the request
// context, which stops segment dispatch (local and cluster) and returns
// every replica to its pool.
//
// The server trusts its callers the way the CLI does — a LoadGraphRequest
// reads CSV paths on the server's filesystem — so it belongs behind the
// same boundary as the data directory, not on the open internet.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"log/slog"
	"net/http"
	"sync"
	"time"

	"graphsurge/internal/analytics"
	"graphsurge/internal/core"
	"graphsurge/internal/gvdl"
	"graphsurge/internal/obs"
	"graphsurge/internal/tenant"
)

// TenantHeader names the request header carrying the caller's tenant
// identity for admission control and quota accounting. Absent or empty
// means tenant.DefaultTenant. The server trusts the header the way it
// trusts the rest of the API — tenancy here is fairness isolation between
// cooperating clients, not an authentication boundary.
const TenantHeader = "X-Graphsurge-Tenant"

// maxRequestBytes bounds a request body; statements and run requests are
// small (data travels via server-side paths, not request bodies).
const maxRequestBytes = 1 << 20

// Options configures a Server.
type Options struct {
	// Runner, when set, executes collection runs — a cluster Coordinator
	// shards them across workers. Nil runs on the engine, locally.
	Runner core.CollectionRunner
	// Logger receives the server's structured request and run events (run
	// started/finished with run IDs, request failures). nil discards them.
	Logger *slog.Logger
	// EnablePprof mounts net/http/pprof under /debug/pprof/ — opt-in because
	// the profiles expose process internals and belong behind the same trust
	// boundary as the rest of the API only when an operator asks for them.
	EnablePprof bool
	// Tenant, when set, routes every request through the multi-tenant
	// middleware: per-tenant admission control (quota failures map to 429
	// and 503) and the serving result cache (run summaries carry
	// cacheStatus). Nil serves every request directly, uncached.
	Tenant *tenant.Middleware
}

// Server serves a Session over HTTP. One Server multiplexes concurrent
// requests onto one shared engine; each request gets its own Session.
type Server struct {
	eng    *core.Engine
	runner core.CollectionRunner
	log    *slog.Logger
	pprof  bool
	tenant *tenant.Middleware
}

// New creates a server over an engine.
func New(eng *core.Engine, opts Options) *Server {
	log := opts.Logger
	if log == nil {
		log = obs.Discard()
	}
	return &Server{eng: eng, runner: opts.Runner, log: log, pprof: opts.EnablePprof, tenant: opts.Tenant}
}

// do dispatches one typed request: through the tenant middleware when
// configured (the request header selects the tenant), directly on a fresh
// session otherwise.
func (s *Server) do(r *http.Request, req core.Request) (core.Response, error) {
	if s.tenant != nil {
		return s.tenant.Do(r.Context(), r.Header.Get(TenantHeader), req)
	}
	return s.eng.NewSession().Do(r.Context(), req)
}

// Handler returns the HTTP handler: POST /v1/do for requests, GET /healthz
// for liveness (scripts wait on it before issuing requests), GET /metrics
// for Prometheus text exposition, and GET /v1/traces/{id} for a finished
// run's span records as NDJSON. /debug/pprof/ mounts only when
// Options.EnablePprof asked for it.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/do", s.handleDo)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		io.WriteString(w, "ok\n")
	})
	mux.Handle("GET /metrics", obs.MetricsHandler())
	mux.HandleFunc("GET /v1/traces/{id}", s.handleTrace)
	if s.pprof {
		obs.RegisterPprof(mux)
	}
	return mux
}

// handleTrace streams one run's span records as NDJSON, looked up by the
// RunID a run response carried. Traces are retained in a bounded FIFO, so an
// old run's ID eventually 404s.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	tr := s.eng.Traces().Get(id)
	if tr == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("server: no trace for run %q", id))
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	obs.WriteNDJSON(w, tr.Records())
}

// Envelope is the wire form of a core.Request: exactly one field set. The
// field payloads are the core request types themselves — the HTTP API has
// no second schema.
type Envelope struct {
	Statements *core.StatementsRequest `json:"statements,omitempty"`
	Load       *core.LoadGraphRequest  `json:"load,omitempty"`
	Run        *core.RunRequest        `json:"run,omitempty"`
	RunView    *core.RunViewRequest    `json:"runView,omitempty"`
	Mutate     *core.MutateRequest     `json:"mutate,omitempty"`
	PoolStats  *core.PoolStatsRequest  `json:"poolStats,omitempty"`
}

// Request returns the envelope's single request, or an error when zero or
// several fields are set.
func (e *Envelope) Request() (core.Request, error) {
	var req core.Request
	n := 0
	for _, r := range []struct {
		ok  bool
		req core.Request
	}{
		{e.Statements != nil, e.Statements},
		{e.Load != nil, e.Load},
		{e.Run != nil, e.Run},
		{e.RunView != nil, e.RunView},
		{e.Mutate != nil, e.Mutate},
		{e.PoolStats != nil, e.PoolStats},
	} {
		if r.ok {
			req = r.req
			n++
		}
	}
	if n != 1 {
		return nil, fmt.Errorf("server: request envelope must set exactly one of statements, load, run, runView, mutate, poolStats (got %d)", n)
	}
	return req, nil
}

// statementResult is one statement's wire record: the discriminator, the
// CLI's text line, and the typed payload.
type statementResult struct {
	Kind   string      `json:"kind"`
	Text   string      `json:"text"`
	Result gvdl.Result `json:"result"`
}

func wireStatements(results []gvdl.Result) []statementResult {
	out := make([]statementResult, len(results))
	for i, r := range results {
		out[i] = statementResult{Kind: r.Kind(), Text: r.String(), Result: r}
	}
	return out
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// statusFor classifies a Session.Do failure. A tenant over its rate or
// queue deadline should back off and retry later (429); a full admission
// queue or an engine draining toward Close is a transient server condition
// clients should retry (503); a filesystem fault underneath the catalog —
// failed view-store save, corrupt on-disk view — is the server's problem
// (500); everything else is treated as a malformed or unsatisfiable
// request (400).
func statusFor(err error) int {
	var pathErr *fs.PathError
	switch {
	case errors.Is(err, tenant.ErrOverQuota):
		return http.StatusTooManyRequests
	case errors.Is(err, tenant.ErrQueueFull), errors.Is(err, core.ErrClosing):
		return http.StatusServiceUnavailable
	case errors.As(err, &pathErr) && !errors.Is(err, fs.ErrNotExist):
		return http.StatusInternalServerError
	default:
		return http.StatusBadRequest
	}
}

func (s *Server) handleDo(w http.ResponseWriter, r *http.Request) {
	var env Envelope
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&env); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("server: decoding request: %w", err))
		return
	}
	req, err := env.Request()
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if run, ok := req.(*core.RunRequest); ok {
		s.serveRun(w, r, run)
		return
	}
	resp, err := s.do(r, req)
	if err != nil {
		s.log.Warn("server: request failed", slog.String("type", fmt.Sprintf("%T", req)), slog.Any("error", err))
		if sr, ok := resp.(*core.StatementsResponse); ok && len(sr.Results) > 0 {
			// A failed batch still reports the statements that completed —
			// they materialized; pretending otherwise would misdescribe the
			// catalog.
			writeJSON(w, statusFor(err), map[string]any{
				"error":   err.Error(),
				"results": wireStatements(sr.Results),
			})
			return
		}
		writeError(w, statusFor(err), err)
		return
	}
	switch resp := resp.(type) {
	case *core.StatementsResponse:
		writeJSON(w, http.StatusOK, map[string]any{"results": wireStatements(resp.Results)})
	case *core.ViewRunResult:
		// The per-vertex map is keyed by a struct and deliberately excluded
		// from the JSON form; project it through the pinned sort order.
		writeJSON(w, http.StatusOK, map[string]any{
			"view":    resp,
			"results": wireResults(resp.Results),
		})
	default:
		writeJSON(w, http.StatusOK, resp)
	}
}

// resultRecord is one vertex's final value on the wire.
type resultRecord struct {
	Vertex uint64 `json:"vertex"`
	Value  int64  `json:"value"`
}

func wireResults(final map[analytics.VertexValue]int64) []resultRecord {
	items := core.SortedResults(final)
	out := make([]resultRecord, len(items))
	for i, it := range items {
		out[i] = resultRecord{Vertex: it.V, Value: it.Val}
	}
	return out
}

// Streamed NDJSON events for a run. Every line is one JSON object with an
// "event" discriminator; consumers switch on it.
type segmentEvent struct {
	Event   string            `json:"event"` // "segment"
	Segment core.SegmentStats `json:"segment"`
}

type summaryEvent struct {
	Event string          `json:"event"` // "summary"
	Run   *core.RunResult `json:"run"`
}

type resultEvent struct {
	Event  string `json:"event"` // "result"
	Vertex uint64 `json:"vertex"`
	Value  int64  `json:"value"`
}

type doneEvent struct {
	Event   string `json:"event"` // "done"
	Results int    `json:"results"`
}

type errorEvent struct {
	Event string `json:"event"` // "error"
	Error string `json:"error"`
}

// serveRun executes a collection run and streams its progress and results
// as NDJSON: segment events as segments finish (concurrently with the run),
// one summary event, then one result event per vertex of the final view in
// the pinned sort order, and a terminal done (or error) event. The
// request's context cancels the run end to end.
func (s *Server) serveRun(w http.ResponseWriter, r *http.Request, req *core.RunRequest) {
	flusher, _ := w.(http.Flusher)
	var mu sync.Mutex
	wrote := false
	// The NDJSON header (and with it the implicit 200) is written lazily on
	// the first event: a request the tenant middleware refuses before any
	// execution — rate limit, full queue, queue deadline — still has the
	// status line available and returns a real 429/503 JSON error.
	writeEvent := func(v any, flush bool) {
		b, err := json.Marshal(v)
		if err != nil {
			// Marshal of these event structs cannot fail; keep the stream
			// well-formed if it ever does.
			b = []byte(`{"event":"error","error":"event encoding failure"}`)
		}
		mu.Lock()
		defer mu.Unlock()
		if !wrote {
			w.Header().Set("Content-Type", "application/x-ndjson")
			wrote = true
		}
		w.Write(b)
		io.WriteString(w, "\n")
		if flush && flusher != nil {
			flusher.Flush()
		}
	}

	// Progress streams as the run executes; segment completions arrive from
	// executor goroutines, serialized by writeEvent's mutex.
	req.Runner = s.runner
	req.Options.OnSegment = func(st core.SegmentStats) {
		writeEvent(segmentEvent{Event: "segment", Segment: st}, true)
	}
	s.log.Info("server: run started",
		slog.String("collection", req.Collection), slog.String("algorithm", req.Algorithm.Algorithm))
	start := time.Now()
	resp, err := s.do(r, req)
	if err != nil {
		s.log.Warn("server: run failed", slog.String("collection", req.Collection),
			slog.Duration("elapsed", time.Since(start)), slog.Any("error", err))
		mu.Lock()
		streaming := wrote
		mu.Unlock()
		if !streaming && (errors.Is(err, tenant.ErrOverQuota) || errors.Is(err, tenant.ErrQueueFull)) {
			// Admission refusals happen before execution, so nothing has
			// streamed and the status line is still available: return a real
			// 429/503 clients can back off on. Execution failures keep the
			// established in-band error event.
			writeError(w, statusFor(err), err)
			return
		}
		writeEvent(errorEvent{Event: "error", Error: err.Error()}, true)
		return
	}
	res := resp.(*core.RunResult)
	s.log.Info("server: run finished", obs.RunID(res.RunID),
		slog.String("collection", req.Collection), slog.Duration("elapsed", time.Since(start)))
	writeEvent(summaryEvent{Event: "summary", Run: res}, true)
	n := 0
	for _, vv := range core.SortedResults(res.FinalResults()) {
		// Unflushed per record: the ResponseWriter's own buffering bounds
		// memory, so a million-vertex result streams instead of
		// accumulating.
		writeEvent(resultEvent{Event: "result", Vertex: vv.V, Value: vv.Val}, false)
		n++
	}
	writeEvent(doneEvent{Event: "done", Results: n}, true)
}
