package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"graphsurge/internal/analytics"
	"graphsurge/internal/core"
	"graphsurge/internal/datagen"
	"graphsurge/internal/view"
)

// testEngine builds an engine holding a temporal graph and a k-view
// collection over it, created through GVDL so the server test exercises the
// same catalog the CLI would.
func testEngine(t *testing.T, k int) *core.Engine {
	t.Helper()
	e, err := core.NewEngine(core.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	g := datagen.Temporal(datagen.TemporalConfig{Nodes: 150, Edges: 1500, Days: 100, Seed: 7})
	g.Name = "g"
	if err := e.AddGraph(g); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	sb.WriteString("create view collection cc on g ")
	for i := 0; i < k; i++ {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "[v%d: ts < %d]", i, 100*(i+1)/k)
	}
	if _, err := e.Execute(sb.String()); err != nil {
		t.Fatal(err)
	}
	return e
}

func postJSON(t *testing.T, url, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url+"/v1/do", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// event is the decoded union of the NDJSON stream records.
type event struct {
	Event   string             `json:"event"`
	Segment *core.SegmentStats `json:"segment"`
	Run     *json.RawMessage   `json:"run"`
	Vertex  uint64             `json:"vertex"`
	Value   int64              `json:"value"`
	Results int                `json:"results"`
	Error   string             `json:"error"`
}

func readEvents(t *testing.T, r *http.Response) []event {
	t.Helper()
	defer r.Body.Close()
	var out []event
	sc := bufio.NewScanner(r.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		var ev event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		out = append(out, ev)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestServeStatementsAndRunStream drives the HTTP API end to end:
// statements return typed results, a run streams segment events, a summary,
// sorted result records and a done marker — and the streamed values equal a
// direct engine run's.
func TestServeStatementsAndRunStream(t *testing.T) {
	const k = 6
	e := testEngine(t, k)
	ts := httptest.NewServer(New(e, Options{}).Handler())
	defer ts.Close()

	// Statements.
	resp := postJSON(t, ts.URL, `{"statements":{"src":"create view early on g edges where ts < 30"}}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("statements status %d", resp.StatusCode)
	}
	var stmts struct {
		Results []struct {
			Kind   string          `json:"kind"`
			Text   string          `json:"text"`
			Result json.RawMessage `json:"result"`
		} `json:"results"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stmts); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(stmts.Results) != 1 || stmts.Results[0].Kind != "view" ||
		!strings.HasPrefix(stmts.Results[0].Text, "view early: ") {
		t.Fatalf("statement results = %+v", stmts.Results)
	}

	// Run, streamed.
	resp = postJSON(t, ts.URL, `{"run":{"collection":"cc","algorithm":{"algorithm":"wcc"},"options":{"mode":"scratch","parallelism":2,"schedule":"lpt"}}}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("run status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("run content type %q", ct)
	}
	events := readEvents(t, resp)

	want, err := e.RunCollection(context.Background(), "cc", analytics.WCC{}, core.RunOptions{Mode: core.Scratch, Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	wantSorted := core.SortedResults(want.FinalResults())

	var segments, results int
	var summary *json.RawMessage
	var done *event
	lastVertex := -1
	ri := 0
	for i := range events {
		ev := events[i]
		switch ev.Event {
		case "segment":
			segments++
			if summary != nil {
				t.Fatal("segment event after the summary")
			}
		case "summary":
			summary = ev.Run
		case "result":
			if int64(ev.Vertex) <= int64(lastVertex) {
				t.Fatalf("result vertices not ascending: %d after %d", ev.Vertex, lastVertex)
			}
			lastVertex = int(ev.Vertex)
			if ri >= len(wantSorted) || wantSorted[ri].V != ev.Vertex || wantSorted[ri].Val != ev.Value {
				t.Fatalf("result %d = (%d,%d), want (%d,%d)", ri, ev.Vertex, ev.Value, wantSorted[ri].V, wantSorted[ri].Val)
			}
			results++
			ri++
		case "done":
			done = &events[i]
		case "error":
			t.Fatalf("run streamed an error: %s", ev.Error)
		}
	}
	if segments != k {
		t.Fatalf("%d segment events, want %d (scratch: one per view)", segments, k)
	}
	if summary == nil {
		t.Fatal("no summary event")
	}
	var sum core.RunResult
	if err := json.Unmarshal(*summary, &sum); err != nil {
		t.Fatal(err)
	}
	if sum.Computation != "wcc" || sum.Collection != "cc" || len(sum.Stats) != k || sum.Mode != core.Scratch {
		t.Fatalf("summary = %+v", sum)
	}
	if done == nil || done.Results != results || results != len(wantSorted) {
		t.Fatalf("done=%v results=%d want %d", done, results, len(wantSorted))
	}
	if events[len(events)-1].Event != "done" {
		t.Fatalf("stream does not end with done: %s", events[len(events)-1].Event)
	}

	// Single-view run.
	resp = postJSON(t, ts.URL, `{"runView":{"view":"early","algorithm":{"algorithm":"degree"}}}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("runView status %d", resp.StatusCode)
	}
	var vr struct {
		View struct {
			Computation string `json:"computation"`
			Edges       int    `json:"edges"`
		} `json:"view"`
		Results []struct {
			Vertex uint64 `json:"vertex"`
			Value  int64  `json:"value"`
		} `json:"results"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&vr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if vr.View.Computation != "degree" || vr.View.Edges == 0 || len(vr.Results) == 0 {
		t.Fatalf("runView response = %+v", vr)
	}

	// Pool stats — the run above left a quiescent wcc pool.
	resp = postJSON(t, ts.URL, `{"poolStats":{}}`)
	var ps core.PoolStatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&ps); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(ps.Pools) == 0 || ps.Pools[0].Live != 0 {
		t.Fatalf("pool stats = %+v", ps.Pools)
	}
}

// TestServeRequestValidation pins the error paths: malformed JSON, empty
// and ambiguous envelopes, unknown names.
func TestServeRequestValidation(t *testing.T) {
	e := testEngine(t, 2)
	ts := httptest.NewServer(New(e, Options{}).Handler())
	defer ts.Close()

	for name, body := range map[string]string{
		"malformed": `{"run":`,
		"empty":     `{}`,
		"ambiguous": `{"poolStats":{},"statements":{"src":"x"}}`,
		"unknown":   `{"bogus":{}}`,
	} {
		resp := postJSON(t, ts.URL, body)
		var e struct {
			Error string `json:"error"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest || e.Error == "" {
			t.Fatalf("%s: status %d error %q", name, resp.StatusCode, e.Error)
		}
	}

	// A run over an unknown collection reports the error as an NDJSON error
	// event (the stream already started).
	resp := postJSON(t, ts.URL, `{"run":{"collection":"nope","algorithm":{"algorithm":"wcc"}}}`)
	events := readEvents(t, resp)
	if len(events) != 1 || events[0].Event != "error" || !strings.Contains(events[0].Error, "nope") {
		t.Fatalf("unknown-collection run events = %+v", events)
	}

	// A failing statement batch returns the completed prefix.
	resp = postJSON(t, ts.URL, `{"statements":{"src":"create view ok on g edges where ts < 10\ncreate view bad on missing edges where ts < 1"}}`)
	var partial struct {
		Error   string            `json:"error"`
		Results []json.RawMessage `json:"results"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&partial); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest || partial.Error == "" || len(partial.Results) != 1 {
		t.Fatalf("partial batch: status %d %+v", resp.StatusCode, partial)
	}
}

// blockingRunner parks every run until its ctx cancels — the deterministic
// probe for the server's cancellation plumbing.
type blockingRunner struct {
	entered chan struct{}
	done    chan error
}

func (r *blockingRunner) RunOn(ctx context.Context, _ *view.Collection, _ analytics.Computation, _ core.RunOptions) (*core.RunResult, error) {
	close(r.entered)
	<-ctx.Done()
	r.done <- ctx.Err()
	return nil, ctx.Err()
}

// TestServeCancelPropagates: cancelling the HTTP request cancels the run's
// ctx — the chain client → request context → Session.Do → runner holds.
func TestServeCancelPropagates(t *testing.T) {
	e := testEngine(t, 2)
	runner := &blockingRunner{entered: make(chan struct{}), done: make(chan error, 1)}
	ts := httptest.NewServer(New(e, Options{Runner: runner}).Handler())
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "POST", ts.URL+"/v1/do",
		bytes.NewReader([]byte(`{"run":{"collection":"cc","algorithm":{"algorithm":"wcc"}}}`)))
	if err != nil {
		t.Fatal(err)
	}
	go http.DefaultClient.Do(req) //nolint:errcheck // the request is expected to fail by cancellation
	select {
	case <-runner.entered:
	case <-time.After(5 * time.Second):
		t.Fatal("run never started")
	}
	cancel()
	select {
	case err := <-runner.done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("runner ctx ended with %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("request cancellation did not reach the runner")
	}
}

// TestServeDisconnectQuiesces: a client that walks away mid-stream leaves
// no live replicas behind — the engine's pools return to quiescence and the
// engine serves the next request normally.
func TestServeDisconnectQuiesces(t *testing.T) {
	e := testEngine(t, 12)
	ts := httptest.NewServer(New(e, Options{}).Handler())
	defer ts.Close()

	resp := postJSON(t, ts.URL, `{"run":{"collection":"cc","algorithm":{"algorithm":"wcc"},"options":{"mode":"scratch"}}}`)
	sc := bufio.NewScanner(resp.Body)
	if !sc.Scan() {
		t.Fatal("no first event")
	}
	resp.Body.Close() // disconnect mid-run

	deadline := time.Now().Add(10 * time.Second)
	for {
		live := 0
		for _, ps := range e.PoolStats() {
			live += ps.Live
		}
		if live == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("%d replicas still live after client disconnect", live)
		}
		time.Sleep(10 * time.Millisecond)
	}
	// The engine still serves.
	resp = postJSON(t, ts.URL, `{"poolStats":{}}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-disconnect status %d", resp.StatusCode)
	}
	resp.Body.Close()
}
