package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"graphsurge/internal/tenant"
)

// postTenant posts a request body with a tenant header.
func postTenant(t *testing.T, url, tenantID, body string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url+"/v1/do", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if tenantID != "" {
		req.Header.Set(TenantHeader, tenantID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// metricValue scrapes /metrics and returns one counter's value.
func metricValue(t *testing.T, url, name string) float64 {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(string(body), "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			var v float64
			if _, err := fmt.Sscanf(rest, "%g", &v); err != nil {
				t.Fatalf("parsing %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("metric %s not exposed", name)
	return 0
}

// TestServeTenantQuota pins the HTTP quota surface: a tenant whose token
// bucket drains gets 429 (on the run path too, where the NDJSON header is
// written lazily), the rejection counter is scraped on /metrics, and
// another tenant's bucket is unaffected.
func TestServeTenantQuota(t *testing.T) {
	e := testEngine(t, 3)
	defer e.Close()
	mw := tenant.New(e, tenant.Options{
		Limits:       tenant.Limits{RatePerSec: 1e-9, Burst: 1},
		CacheEntries: 16,
	})
	ts := httptest.NewServer(New(e, Options{Tenant: mw}).Handler())
	defer ts.Close()

	runBody := `{"run": {"collection": "cc", "algorithm": {"algorithm": "wcc"}, "options": {"mode": "scratch"}}}`

	resp := postTenant(t, ts.URL, "acme", runBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first run: status %d", resp.StatusCode)
	}
	resp.Body.Close()

	rejectedBefore := metricValue(t, ts.URL, "graphsurge_tenant_admission_rejected_total")
	resp = postTenant(t, ts.URL, "acme", runBody)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota run: status %d, want 429", resp.StatusCode)
	}
	var errBody map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&errBody); err != nil {
		t.Fatalf("429 body is not a JSON error object: %v", err)
	}
	resp.Body.Close()
	if errBody["error"] == "" {
		t.Fatal("429 carried no error message")
	}
	if got := metricValue(t, ts.URL, "graphsurge_tenant_admission_rejected_total"); got != rejectedBefore+1 {
		t.Fatalf("rejected counter = %g, want %g", got, rejectedBefore+1)
	}

	// Tenant isolation: a different header owns a fresh bucket.
	resp = postTenant(t, ts.URL, "umbrella", runBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("isolated tenant: status %d", resp.StatusCode)
	}
	resp.Body.Close()
}

// TestServeCacheStatus pins the cache surface on the wire: the first run
// reports cacheStatus miss, an identical second run reports hit with
// byte-identical result events, and the hit/miss counters land on /metrics.
func TestServeCacheStatus(t *testing.T) {
	e := testEngine(t, 4)
	defer e.Close()
	mw := tenant.New(e, tenant.Options{CacheEntries: 16})
	ts := httptest.NewServer(New(e, Options{Tenant: mw}).Handler())
	defer ts.Close()

	runBody := `{"run": {"collection": "cc", "algorithm": {"algorithm": "wcc"}, "options": {"mode": "scratch"}}}`

	type runSummary struct {
		CacheStatus string `json:"cacheStatus"`
	}
	summaryStatus := func(evs []event) string {
		for _, ev := range evs {
			if ev.Event == "summary" {
				var s runSummary
				if err := json.Unmarshal(*ev.Run, &s); err != nil {
					t.Fatal(err)
				}
				return s.CacheStatus
			}
		}
		t.Fatal("no summary event")
		return ""
	}
	resultLines := func(evs []event) []event {
		var out []event
		for _, ev := range evs {
			if ev.Event == "result" {
				out = append(out, ev)
			}
		}
		return out
	}

	missBefore := metricValue(t, ts.URL, "graphsurge_tenant_cache_misses_total")
	first := readEvents(t, postJSON(t, ts.URL, runBody))
	if got := summaryStatus(first); got != "miss" {
		t.Fatalf("first run cacheStatus = %q, want miss", got)
	}
	second := readEvents(t, postJSON(t, ts.URL, runBody))
	if got := summaryStatus(second); got != "hit" {
		t.Fatalf("second run cacheStatus = %q, want hit", got)
	}
	a, b := resultLines(first), resultLines(second)
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("result events: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("result %d differs between miss and hit: %+v vs %+v", i, a[i], b[i])
		}
	}
	if hits := metricValue(t, ts.URL, "graphsurge_tenant_cache_hits_total"); hits < 1 {
		t.Fatalf("cache hits counter = %g", hits)
	}
	if miss := metricValue(t, ts.URL, "graphsurge_tenant_cache_misses_total"); miss != missBefore+1 {
		t.Fatalf("cache misses counter = %g, want %g", miss, missBefore+1)
	}
}
