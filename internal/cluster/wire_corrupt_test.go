package cluster

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"graphsurge/internal/core"
	"graphsurge/internal/graph"
)

// TestWireCorruptBatchPayload pins the typed-error path through the nested
// codec: the columnar edge batches ride inside the gob envelope as their own
// binary format, and corrupting *that* layer — not the gob framing — must
// still surface as an error wrapping ErrWire, never a panic or a silently
// wrong batch.
func TestWireCorruptBatchPayload(t *testing.T) {
	spec := sampleSpec()
	good, err := EncodeWire(spec)
	if err != nil {
		t.Fatal(err)
	}
	seedBytes, err := spec.Seed.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	at := bytes.Index(good, seedBytes)
	if at < 0 {
		t.Fatal("encoded spec does not embed the seed batch's binary encoding")
	}

	// Flip the batch codec's version byte: the batch decoder must reject it
	// and the failure must propagate out of DecodeWire as ErrWire, carrying
	// the batch codec's diagnosis through the gob layer.
	bad := append([]byte(nil), good...)
	bad[at] ^= 0xff
	var out core.SegmentSpec
	err = DecodeWire(bad, &out)
	if !errors.Is(err, ErrWire) {
		t.Fatalf("flipped batch version byte: err = %v, want ErrWire", err)
	}
	if !strings.Contains(err.Error(), graph.ErrEdgeCodec.Error()) {
		t.Fatalf("error %q does not surface the batch codec failure", err)
	}

	// Corrupt the batch's edge count upward: the decoder's bounds check must
	// refuse the truncated columns.
	bad = append([]byte(nil), good...)
	bad[at+1] = 0xf0
	if err := DecodeWire(bad, &out); !errors.Is(err, ErrWire) {
		t.Fatalf("inflated batch edge count: err = %v, want ErrWire", err)
	}
}

// TestWireBitFlipsNeverPanic sweeps a single-bit flip across every byte of a
// good payload. Any individual flip may still decode (gob and the batch
// codec cannot checksum every bit), but the contract is: DecodeWire either
// succeeds or fails with an error wrapping ErrWire — no panics, no other
// error types.
func TestWireBitFlipsNeverPanic(t *testing.T) {
	good, err := EncodeWire(sampleSpec())
	if err != nil {
		t.Fatal(err)
	}
	for i := range good {
		bad := append([]byte(nil), good...)
		bad[i] ^= 0x40
		var out core.SegmentSpec
		if err := DecodeWire(bad, &out); err != nil && !errors.Is(err, ErrWire) {
			t.Fatalf("flip at byte %d: error %v does not wrap ErrWire", i, err)
		}
	}
}

// FuzzDecodeWireSegmentSpec fuzzes the full decode boundary a worker exposes
// to the network: arbitrary payloads must produce either a decoded spec or a
// typed ErrWire, never a panic. Seeds cover the valid encoding plus the
// classic corruptions.
func FuzzDecodeWireSegmentSpec(f *testing.F) {
	good, err := EncodeWire(sampleSpec())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add(good[:len(good)/2])
	f.Add([]byte{})
	f.Add([]byte("\x07\xffnot a gob stream"))
	tail := append([]byte(nil), good...)
	tail[len(tail)-1] ^= 0xff
	f.Add(tail)
	f.Fuzz(func(t *testing.T, data []byte) {
		var out core.SegmentSpec
		if err := DecodeWire(data, &out); err != nil && !errors.Is(err, ErrWire) {
			t.Fatalf("error %v does not wrap ErrWire", err)
		}
	})
}
