package cluster

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"reflect"
	"testing"
	"time"

	"graphsurge/internal/analytics"
	"graphsurge/internal/core"
	"graphsurge/internal/datagen"
	"graphsurge/internal/view"
)

// skewedCollection builds a k-view collection whose first view dominates:
// view 0 holds most of the graph's edges and every later view flips a small
// random set — the shape where segment distribution matters (one fat
// segment, many thin ones under scratch mode).
func skewedCollection(t testing.TB, k int, seed int64) *view.Collection {
	t.Helper()
	g := datagen.Temporal(datagen.TemporalConfig{Nodes: 200, Edges: 2400, Days: 60, Seed: seed})
	g.Name = "skew"
	r := rand.New(rand.NewSource(seed))
	present := make([]bool, g.NumEdges())

	names := make([]string, 0, k)
	adds := make([][]uint32, 0, k)
	dels := make([][]uint32, 0, k)
	for t := 0; t < k; t++ {
		var a, d []uint32
		if t == 0 {
			for i := range present {
				if r.Intn(4) != 0 {
					present[i] = true
					a = append(a, uint32(i))
				}
			}
		} else {
			flips := make(map[int]bool, 60)
			for len(flips) < 60 {
				flips[r.Intn(g.NumEdges())] = true
			}
			for i := 0; i < g.NumEdges(); i++ {
				if !flips[i] {
					continue
				}
				if present[i] {
					present[i] = false
					d = append(d, uint32(i))
				} else {
					present[i] = true
					a = append(a, uint32(i))
				}
			}
		}
		names = append(names, fmt.Sprintf("v%d", t))
		adds = append(adds, a)
		dels = append(dels, d)
	}
	return view.NewCollection("skew-col", g, &view.DiffStream{Names: names, Adds: adds, Dels: dels})
}

// startWorker spins up an in-process worker server on a localhost port.
func startWorker(t *testing.T, capacity int) *Server {
	t.Helper()
	eng, err := core.NewEngine(core.Options{Workers: 1, Parallelism: capacity})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(eng, capacity)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv.Start(l)
	t.Cleanup(func() { srv.Close() })
	return srv
}

// newTestCoordinator wires a coordinator with a fresh local engine to the
// given workers, with test-speed failure detection.
func newTestCoordinator(t *testing.T, servers ...*Server) *Coordinator {
	t.Helper()
	eng, err := core.NewEngine(core.Options{Workers: 1, Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	coord := NewCoordinator(eng, Options{JobTimeout: 30 * time.Second, Heartbeat: 100 * time.Millisecond})
	for _, srv := range servers {
		if err := coord.AddWorker(context.Background(), srv.Addr().String()); err != nil {
			t.Fatal(err)
		}
	}
	t.Cleanup(func() { coord.Close() })
	return coord
}

// assertSameRun asserts a cluster run reproduced a local run exactly:
// identical final results and identical per-view stats up to timing.
func assertSameRun(t *testing.T, local, clustered *core.RunResult) {
	t.Helper()
	if !reflect.DeepEqual(local.FinalResults(), clustered.FinalResults()) {
		t.Fatalf("final results diverge:\nlocal   %v\ncluster %v", local.FinalResults(), clustered.FinalResults())
	}
	if len(local.Stats) != len(clustered.Stats) {
		t.Fatalf("%d local views vs %d clustered", len(local.Stats), len(clustered.Stats))
	}
	for i := range local.Stats {
		l, c := local.Stats[i], clustered.Stats[i]
		l.Duration, c.Duration = 0, 0
		if !reflect.DeepEqual(l, c) {
			t.Fatalf("view %d stats diverge:\nlocal   %+v\ncluster %+v", i, l, c)
		}
	}
	if local.MaxWork() != clustered.MaxWork() {
		t.Fatalf("MaxWork %d locally, %d clustered", local.MaxWork(), clustered.MaxWork())
	}
	if local.IterCapHit() != clustered.IterCapHit() {
		t.Fatal("IterCapHit diverges")
	}
	if local.Splits != clustered.Splits {
		t.Fatalf("%d local splits vs %d clustered", local.Splits, clustered.Splits)
	}
}

// TestClusterMatchesLocal: a coordinator with two localhost workers must
// produce results identical to a Parallelism=2 local run on the same skewed
// collection, with both workers actually participating.
func TestClusterMatchesLocal(t *testing.T) {
	col := skewedCollection(t, 10, 11)
	localEng, err := core.NewEngine(core.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	local, err := localEng.RunOn(context.Background(), col, analytics.WCC{}, core.RunOptions{Mode: core.Scratch, Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}

	w1, w2 := startWorker(t, 1), startWorker(t, 1)
	coord := newTestCoordinator(t, w1, w2)
	clustered, err := coord.RunCollection(context.Background(), col, analytics.WCC{}, core.RunOptions{Mode: core.Scratch})
	if err != nil {
		t.Fatal(err)
	}
	assertSameRun(t, local, clustered)

	stats := coord.Stats()
	if len(stats.Remote) != 2 {
		t.Fatalf("expected both workers to run shards, got %v", stats.Remote)
	}
	total := stats.Local
	for _, n := range stats.Remote {
		total += n
	}
	if total != col.Stream.NumViews() { // scratch: one shard per view
		t.Fatalf("%d shards accounted for, want %d", total, col.Stream.NumViews())
	}
	if stats.Requeued != 0 || len(stats.Dead) != 0 {
		t.Fatalf("healthy run reported failures: %+v", stats)
	}

	// A second run over the same cluster reuses worker pools and the warmed
	// estimator; results stay identical.
	again, err := coord.RunCollection(context.Background(), col, analytics.WCC{}, core.RunOptions{Mode: core.Scratch})
	if err != nil {
		t.Fatal(err)
	}
	assertSameRun(t, local, again)

	// A fully-local fallback run (adaptive plans online) must reset the
	// distribution stats — Stats() reports the most recent run, never a
	// stale sharded one.
	if _, err := coord.RunCollection(context.Background(), col, analytics.WCC{}, core.RunOptions{Mode: core.Adaptive}); err != nil {
		t.Fatal(err)
	}
	if stats := coord.Stats(); len(stats.Remote) != 0 || stats.Local != 0 || stats.Requeued != 0 {
		t.Fatalf("local fallback left stale distribution stats: %+v", stats)
	}
}

// TestClusterWorkerAppliesOwnWorkers: a run that leaves Workers unset ships
// Workers=0, and each worker applies its own engine default — the worker's
// -workers flag — rather than inheriting the coordinator's.
func TestClusterWorkerAppliesOwnWorkers(t *testing.T) {
	col := skewedCollection(t, 6, 61)
	wEng, err := core.NewEngine(core.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(wEng, 1)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv.Start(l)
	t.Cleanup(func() { srv.Close() })

	coord := newTestCoordinator(t, srv)
	if _, err := coord.RunCollection(context.Background(), col, analytics.WCC{}, core.RunOptions{Mode: core.Scratch}); err != nil {
		t.Fatal(err)
	}
	stats := wEng.PoolStats()
	if len(stats) != 1 {
		t.Fatalf("%d worker pools, want 1", len(stats))
	}
	if stats[0].Workers != 2 {
		t.Fatalf("worker built replicas with %d dataflow workers, want its own default 2", stats[0].Workers)
	}
}

// TestClusterSurvivesWorkerKill: killing one worker while it is mid-shard
// re-queues its work onto the coordinator's engine and the run completes
// with results identical to a local run. The kill is deterministic: the
// victim's first shard blocks inside the worker until the server is closed
// under it.
func TestClusterSurvivesWorkerKill(t *testing.T) {
	col := skewedCollection(t, 8, 23)
	localEng, err := core.NewEngine(core.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	local, err := localEng.RunOn(context.Background(), col, analytics.WCC{}, core.RunOptions{Mode: core.Scratch, Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}

	w1 := startWorker(t, 1)
	victim := startWorker(t, 1)
	entered := make(chan struct{})
	release := make(chan struct{})
	var once bool
	victim.svc.beforeRun = func(*core.SegmentSpec) {
		if once {
			return
		}
		once = true
		close(entered)
		<-release
	}

	coord := newTestCoordinator(t, w1, victim)
	done := make(chan struct{})
	var clustered *core.RunResult
	var runErr error
	go func() {
		defer close(done)
		clustered, runErr = coord.RunCollection(context.Background(), col, analytics.WCC{}, core.RunOptions{Mode: core.Scratch})
	}()

	<-entered      // the victim is mid-shard
	victim.Close() // kill it: its connections sever, the in-flight call fails
	close(release)
	<-done

	if runErr != nil {
		t.Fatal(runErr)
	}
	assertSameRun(t, local, clustered)
	stats := coord.Stats()
	if stats.Requeued == 0 {
		t.Fatalf("no shard re-queued after worker kill: %+v", stats)
	}
	if len(stats.Dead) != 1 || stats.Dead[0] != victim.Addr().String() {
		t.Fatalf("dead workers %v, want the victim", stats.Dead)
	}
	if stats.Local == 0 {
		t.Fatal("re-queued shards did not run locally")
	}
}

// TestClusterJobDeadline: a worker that accepts a shard and never finishes
// (but keeps answering heartbeats — net/rpc serves requests concurrently)
// is cut off by the per-job deadline and its shard re-queues locally.
func TestClusterJobDeadline(t *testing.T) {
	col := skewedCollection(t, 6, 31)
	hang := startWorker(t, 1)
	release := make(chan struct{})
	defer close(release)
	var once bool
	hang.svc.beforeRun = func(*core.SegmentSpec) {
		if once {
			return
		}
		once = true
		<-release
	}

	eng, err := core.NewEngine(core.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	coord := NewCoordinator(eng, Options{JobTimeout: 150 * time.Millisecond, Heartbeat: time.Hour})
	if err := coord.AddWorker(context.Background(), hang.Addr().String()); err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	res, err := coord.RunCollection(context.Background(), col, analytics.WCC{}, core.RunOptions{Mode: core.Scratch})
	if err != nil {
		t.Fatal(err)
	}
	localEng, err := core.NewEngine(core.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	local, err := localEng.RunOn(context.Background(), col, analytics.WCC{}, core.RunOptions{Mode: core.Scratch})
	if err != nil {
		t.Fatal(err)
	}
	assertSameRun(t, local, res)
	if stats := coord.Stats(); stats.Requeued == 0 || stats.Local != col.Stream.NumViews() {
		t.Fatalf("deadline did not push the run local: %+v", stats)
	}
}

// TestClusterDegradesToLocal: runs that cannot be sharded — adaptive mode,
// computations without a wire spec — fall back to the coordinator's engine
// and still return correct results.
func TestClusterDegradesToLocal(t *testing.T) {
	col := skewedCollection(t, 6, 41)
	w := startWorker(t, 1)
	coord := newTestCoordinator(t, w)

	local, err := core.RunCollection(col, analytics.WCC{}, core.RunOptions{Mode: core.Adaptive})
	if err != nil {
		t.Fatal(err)
	}
	adaptive, err := coord.RunCollection(context.Background(), col, analytics.WCC{}, core.RunOptions{Mode: core.Adaptive})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(local.FinalResults(), adaptive.FinalResults()) {
		t.Fatal("adaptive fallback diverges from local adaptive run")
	}
	if w.Jobs() != 0 {
		t.Fatalf("adaptive run shipped %d shards; it must plan online, locally", w.Jobs())
	}

	localScratch, err := core.RunCollection(col, customWCC{}, core.RunOptions{Mode: core.Scratch})
	if err != nil {
		t.Fatal(err)
	}
	custom, err := coord.RunCollection(context.Background(), col, customWCC{}, core.RunOptions{Mode: core.Scratch})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(localScratch.FinalResults(), custom.FinalResults()) {
		t.Fatal("custom-computation fallback diverges")
	}
	if w.Jobs() != 0 {
		t.Fatal("a computation without a wire spec was shipped to a worker")
	}
}

// customWCC is WCC under a name outside the built-in registry: correct to
// run, impossible to describe over the wire.
type customWCC struct{ analytics.WCC }

func (customWCC) Name() string { return "custom-wcc" }

// TestClusterRedialsDeadWorkers: a worker that dies is degraded around for
// that run, but the next run redials it — a restarted worker process on the
// same address rejoins the cluster without re-registration.
func TestClusterRedialsDeadWorkers(t *testing.T) {
	col := skewedCollection(t, 6, 53)
	w := startWorker(t, 1)
	addr := w.Addr().String()
	coord := newTestCoordinator(t, w)

	if _, err := coord.RunCollection(context.Background(), col, analytics.WCC{}, core.RunOptions{Mode: core.Scratch}); err != nil {
		t.Fatal(err)
	}
	if stats := coord.Stats(); stats.Remote[addr] == 0 {
		t.Fatalf("healthy worker ran no shards: %+v", stats)
	}

	w.Close()
	if _, err := coord.RunCollection(context.Background(), col, analytics.WCC{}, core.RunOptions{Mode: core.Scratch}); err != nil {
		t.Fatal(err)
	}
	if ws := coord.Workers(); len(ws) != 1 || ws[0].Alive {
		t.Fatalf("killed worker still listed alive: %+v", ws)
	}

	// Restart a fresh worker process on the same address, advertising a
	// different capacity — redial must pick both up.
	eng2, err := core.NewEngine(core.Options{Workers: 1, Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	srv2 := NewServer(eng2, 2)
	var l net.Listener
	for i := 0; ; i++ {
		if l, err = net.Listen("tcp", addr); err == nil {
			break
		}
		if i >= 100 {
			t.Fatalf("could not rebind %s: %v", addr, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	srv2.Start(l)
	t.Cleanup(func() { srv2.Close() })

	res, err := coord.RunCollection(context.Background(), col, analytics.WCC{}, core.RunOptions{Mode: core.Scratch})
	if err != nil {
		t.Fatal(err)
	}
	if stats := coord.Stats(); stats.Remote[addr] == 0 {
		t.Fatalf("redialed worker ran no shards: %+v", stats)
	}
	ws := coord.Workers()
	if len(ws) != 1 || !ws[0].Alive || ws[0].Capacity != 2 {
		t.Fatalf("redialed worker roster %+v, want alive with refreshed capacity 2", ws)
	}
	local, err := core.RunCollection(col, analytics.WCC{}, core.RunOptions{Mode: core.Scratch})
	if err != nil {
		t.Fatal(err)
	}
	assertSameRun(t, local, res)
}

// TestClusterCancelMidRun: cancelling a cluster run's ctx stops shard
// dispatch, abandons the in-flight worker call without declaring the worker
// dead, and leaks neither coordinator goroutines nor worker replicas — the
// worker finishes its shard on its own and stays usable for the next run.
func TestClusterCancelMidRun(t *testing.T) {
	col := skewedCollection(t, 8, 59)
	wEng, err := core.NewEngine(core.Options{Workers: 1, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(wEng, 1)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv.Start(l)
	t.Cleanup(func() { srv.Close() })

	entered := make(chan struct{})
	release := make(chan struct{})
	var once bool
	srv.svc.beforeRun = func(*core.SegmentSpec) {
		if once {
			return
		}
		once = true
		close(entered)
		<-release
	}

	coord := newTestCoordinator(t, srv)
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, err := coord.RunCollection(ctx, col, analytics.WCC{}, core.RunOptions{Mode: core.Scratch})
		errCh <- err
	}()
	<-entered // the worker is mid-shard
	cancel()
	select {
	case err := <-errCh:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("canceled cluster run returned %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("canceled cluster run did not return while its worker was stalled")
	}
	// Cancellation is not failure: the stalled worker must not be executed.
	if ws := coord.Workers(); !ws[0].Alive {
		t.Fatal("cancellation marked the worker dead")
	}
	if stats := coord.Stats(); len(stats.Dead) != 0 {
		t.Fatalf("cancellation recorded dead workers: %+v", stats)
	}

	// Let the abandoned shard finish; the worker's replica must return to
	// its pool even though nobody is waiting for the reply.
	close(release)
	deadline := time.Now().Add(5 * time.Second)
	for {
		live := 0
		for _, ps := range wEng.PoolStats() {
			live += ps.Live
		}
		if live == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("worker still holds %d live replicas after the abandoned shard finished", live)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The same coordinator and worker serve the next run normally.
	res, err := coord.RunCollection(context.Background(), col, analytics.WCC{}, core.RunOptions{Mode: core.Scratch})
	if err != nil {
		t.Fatal(err)
	}
	local, err := core.RunCollection(col, analytics.WCC{}, core.RunOptions{Mode: core.Scratch})
	if err != nil {
		t.Fatal(err)
	}
	assertSameRun(t, local, res)
}

// TestHandshakeRejectsVersionMismatch: a worker speaking another protocol
// version is refused at registration.
func TestHandshakeRejectsVersionMismatch(t *testing.T) {
	w := startWorker(t, 1)
	eng, err := core.NewEngine(core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	coord := NewCoordinator(eng, Options{})
	defer coord.Close()
	if err := coord.AddWorker(context.Background(), w.Addr().String()); err != nil {
		t.Fatalf("matching version refused: %v", err)
	}

	var reply HelloReply
	wc := coord.aliveWorkers()[0]
	if err := wc.call(context.Background(), ServiceName+".Hello", &HelloArgs{Version: ProtocolVersion + 1}, &reply, time.Second); err == nil {
		t.Fatal("worker accepted a mismatched protocol version")
	}
}
