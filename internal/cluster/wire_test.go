package cluster

import (
	"errors"
	"reflect"
	"testing"
	"time"

	"graphsurge/internal/analytics"
	"graphsurge/internal/core"
	"graphsurge/internal/graph"
	"graphsurge/internal/splitting"
)

// sampleSpec builds a fully populated shard for round-trip tests.
func sampleSpec() core.SegmentSpec {
	return core.SegmentSpec{
		Comp:       analytics.Spec{Algorithm: "bfs", Source: 3},
		Workers:    2,
		Collection: "col",
		Start:      4,
		End:        6,
		Names:      []string{"v4", "v5"},
		Modes:      []splitting.Mode{splitting.ModeScratch, splitting.ModeDiff},
		ViewSizes:  []int{3, 4},
		DiffSizes:  []int{3, 1},
		Seed:       graph.NewEdgeBatch([]graph.Triple{{Src: 0, Dst: 1, W: 1}, {Src: 1, Dst: 2, W: 5}, {Src: 2, Dst: 0, W: 2}}),
		Adds:       []*graph.EdgeBatch{graph.NewEdgeBatch([]graph.Triple{{Src: 0, Dst: 2, W: 7}})},
		// An empty difference set is an empty batch, never a nil element (gob
		// cannot encode nil pointers inside slices).
		Dels: []*graph.EdgeBatch{graph.NewEdgeBatch(nil)},
	}
}

// TestWireRoundTrip pins gob round trips for every type that crosses the
// coordinator/worker boundary: the segment shard (with its seed), per-view
// and per-segment stats, computation params, and a full outcome.
func TestWireRoundTrip(t *testing.T) {
	cases := []struct {
		name    string
		in, out any
	}{
		{"SegmentSpec", sampleSpec(), &core.SegmentSpec{}},
		{"ViewStats",
			core.ViewStats{Index: 2, Name: "v2", Mode: splitting.ModeDiff, Duration: 3 * time.Millisecond, ViewSize: 9, DiffSize: 4, OutputDiffs: 2},
			&core.ViewStats{}},
		{"SegmentStats",
			core.SegmentStats{Start: 1, End: 4, Setup: time.Millisecond, Drain: 2 * time.Millisecond, Speculative: true},
			&core.SegmentStats{}},
		{"ComputationSpec",
			analytics.Spec{Algorithm: "mpsp", Pairs: []analytics.Pair{{Src: 1, Dst: 2}}},
			&analytics.Spec{}},
		{"SegmentOutcome",
			core.SegmentOutcome{
				Stats:   []core.ViewStats{{Index: 0, Name: "v0", ViewSize: 3}},
				Segment: core.SegmentStats{Start: 0, End: 1},
				Work:    []int64{5, 7},
				IterCap: true,
				Final:   map[analytics.VertexValue]int64{{V: 1, Val: 2}: 1},
			},
			&core.SegmentOutcome{}},
	}
	for _, tc := range cases {
		data, err := EncodeWire(tc.in)
		if err != nil {
			t.Fatalf("%s: encode: %v", tc.name, err)
		}
		if err := DecodeWire(data, tc.out); err != nil {
			t.Fatalf("%s: decode: %v", tc.name, err)
		}
		got := reflect.ValueOf(tc.out).Elem().Interface()
		if !reflect.DeepEqual(got, tc.in) {
			t.Fatalf("%s round trip:\n in  %#v\n out %#v", tc.name, tc.in, got)
		}
	}
}

// TestWireCorruptStream: a corrupt or truncated payload must return an error
// wrapping ErrWire — typed, branchable, and never a panic.
func TestWireCorruptStream(t *testing.T) {
	good, err := EncodeWire(sampleSpec())
	if err != nil {
		t.Fatal(err)
	}
	payloads := map[string][]byte{
		"garbage":   []byte("\x07\xffnot a gob stream at all"),
		"truncated": good[:len(good)/2],
		"empty":     nil,
	}
	for name, data := range payloads {
		var spec core.SegmentSpec
		err := DecodeWire(data, &spec)
		if err == nil {
			t.Fatalf("%s payload decoded without error", name)
		}
		if !errors.Is(err, ErrWire) {
			t.Fatalf("%s payload error %v does not wrap ErrWire", name, err)
		}
	}
}

// TestWireDecodedSpecValidates: a payload that decodes but is internally
// inconsistent (per-view slices shorter than the range) is refused by
// Validate before any dataflow is built for it.
func TestWireDecodedSpecValidates(t *testing.T) {
	bad := sampleSpec()
	bad.Names = bad.Names[:1] // inconsistent with [Start, End)
	data, err := EncodeWire(bad)
	if err != nil {
		t.Fatal(err)
	}
	var spec core.SegmentSpec
	if err := DecodeWire(data, &spec); err != nil {
		t.Fatalf("structurally valid gob refused: %v", err)
	}
	if err := spec.Validate(); err == nil {
		t.Fatal("inconsistent spec passed validation")
	}
}
