package cluster

import (
	"errors"
	"fmt"
	"net"
	"net/rpc"
	"sync"
	"time"

	"graphsurge/internal/analytics"
	"graphsurge/internal/core"
	"graphsurge/internal/schedule"
	"graphsurge/internal/view"
)

// Options configures a Coordinator's failure detection.
type Options struct {
	// JobTimeout bounds one shard RPC; a worker that blows it is marked
	// dead and the shard re-queues locally (0 = the 10-minute default; < 0
	// disables the deadline).
	JobTimeout time.Duration
	// Heartbeat is the ping interval per worker; a missed ping kills the
	// worker's connection, failing its in-flight shards immediately (0 = the
	// 2-second default; < 0 disables heartbeats).
	Heartbeat time.Duration
	// DialTimeout bounds AddWorker's dial and handshake (0 = 5 seconds).
	DialTimeout time.Duration
}

func (o *Options) defaults() {
	if o.JobTimeout == 0 {
		o.JobTimeout = 10 * time.Minute
	}
	if o.Heartbeat == 0 {
		o.Heartbeat = 2 * time.Second
	}
	if o.DialTimeout == 0 {
		o.DialTimeout = 5 * time.Second
	}
}

// errWorkerDead marks a shard sent to a worker already known dead; the
// dispatch loop re-queues it without another kill.
var errWorkerDead = errors.New("cluster: worker is dead")

// workerConn is one registered worker: its RPC client, advertised capacity,
// and liveness. It implements core.SegmentRunner, which is what makes remote
// workers and the local engine interchangeable behind the dispatch loop.
type workerConn struct {
	addr       string
	capacity   int
	jobTimeout time.Duration

	mu     sync.Mutex
	client *rpc.Client
	dead   bool
}

func (w *workerConn) alive() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return !w.dead && w.client != nil
}

// kill marks the worker dead and closes its client, which terminates every
// in-flight call on it — the dispatch loop sees those calls fail and
// re-queues their shards. Idempotent.
func (w *workerConn) kill() {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.dead {
		return
	}
	w.dead = true
	if w.client != nil {
		w.client.Close()
	}
}

// call issues one RPC with a deadline. A timeout returns an error without
// waiting further; the caller kills the worker, which also terminates the
// abandoned in-flight call.
func (w *workerConn) call(method string, args, reply any, timeout time.Duration) error {
	w.mu.Lock()
	client, dead := w.client, w.dead
	w.mu.Unlock()
	if dead || client == nil {
		return errWorkerDead
	}
	call := client.Go(method, args, reply, make(chan *rpc.Call, 1))
	if timeout <= 0 {
		<-call.Done
		return call.Error
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case <-call.Done:
		return call.Error
	case <-timer.C:
		return fmt.Errorf("cluster: %s to %s exceeded job deadline %v", method, w.addr, timeout)
	}
}

// RunSegment implements core.SegmentRunner over the wire: the shard is
// encoded once, shipped, executed on the worker's engine, and its outcome
// returned for merging.
func (w *workerConn) RunSegment(spec *core.SegmentSpec) (*core.SegmentOutcome, error) {
	payload, err := EncodeWire(spec)
	if err != nil {
		return nil, err
	}
	var reply RunSegmentReply
	if err := w.call(ServiceName+".RunSegment", &RunSegmentArgs{Spec: payload}, &reply, w.jobTimeout); err != nil {
		return nil, err
	}
	return &reply.Outcome, nil
}

// RunStats describes how the last RunCollection was distributed —
// observability for operators and the integration tests' requeue assertions.
type RunStats struct {
	// Remote counts shards completed per worker address.
	Remote map[string]int
	// Local counts shards the coordinator's own engine ran (re-queues and
	// local degradation both land here only via the requeue path; a fully
	// local fallback run records nothing).
	Local int
	// Requeued counts shards that failed on a worker and were re-dispatched.
	Requeued int
	// Dead lists workers declared dead during the run.
	Dead []string
}

// Coordinator shards collection runs across registered workers. It owns a
// local engine that serves three jobs: the degradation target when a run
// cannot be sharded at all (adaptive mode plans online; closure computations
// cannot cross the wire; no workers are registered), the re-queue executor
// for shards whose worker died, and the keeper of the persistent cost
// estimator that drives cross-machine LPT assignment.
type Coordinator struct {
	eng  *core.Engine
	opts Options

	mu      sync.Mutex
	workers []*workerConn
	stats   RunStats
}

// NewCoordinator creates a coordinator around a local engine.
func NewCoordinator(eng *core.Engine, opts Options) *Coordinator {
	opts.defaults()
	return &Coordinator{eng: eng, opts: opts}
}

// AddWorker dials and registers a worker. The Hello handshake pins the
// protocol version and learns the worker's capacity — how many shards may
// be in flight on it concurrently.
func (c *Coordinator) AddWorker(addr string) error {
	conn, err := net.DialTimeout("tcp", addr, c.opts.DialTimeout)
	if err != nil {
		return fmt.Errorf("cluster: dialing worker %s: %w", addr, err)
	}
	w := &workerConn{addr: addr, client: rpc.NewClient(conn), jobTimeout: c.opts.JobTimeout}
	var hello HelloReply
	if err := w.call(ServiceName+".Hello", &HelloArgs{Version: ProtocolVersion}, &hello, c.opts.DialTimeout); err != nil {
		w.kill()
		return fmt.Errorf("cluster: handshake with worker %s: %w", addr, err)
	}
	if hello.Version != ProtocolVersion {
		w.kill()
		return fmt.Errorf("cluster: worker %s speaks protocol %d, coordinator %d", addr, hello.Version, ProtocolVersion)
	}
	w.capacity = hello.Capacity
	if w.capacity < 1 {
		w.capacity = 1
	}
	c.mu.Lock()
	c.workers = append(c.workers, w)
	c.mu.Unlock()
	return nil
}

// WorkerInfo describes one registered worker.
type WorkerInfo struct {
	Addr     string
	Capacity int
	Alive    bool
}

// Workers lists the registered workers and their liveness.
func (c *Coordinator) Workers() []WorkerInfo {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]WorkerInfo, len(c.workers))
	for i, w := range c.workers {
		out[i] = WorkerInfo{Addr: w.addr, Capacity: w.capacity, Alive: w.alive()}
	}
	return out
}

// Stats returns how the most recent RunCollection was distributed. The
// returned value is a deep copy; callers may hold it across later runs.
func (c *Coordinator) Stats() RunStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := c.stats
	out.Remote = make(map[string]int, len(c.stats.Remote))
	for addr, n := range c.stats.Remote {
		out.Remote[addr] = n
	}
	out.Dead = append([]string(nil), c.stats.Dead...)
	return out
}

// Close disconnects every worker. Worker processes are unaffected — they
// keep serving other coordinators.
func (c *Coordinator) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, w := range c.workers {
		w.kill()
	}
	return nil
}

// aliveWorkers snapshots the currently usable workers.
func (c *Coordinator) aliveWorkers() []*workerConn {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []*workerConn
	for _, w := range c.workers {
		if w.alive() {
			out = append(out, w)
		}
	}
	return out
}

// RunCollection executes a computation over a collection across the cluster
// and returns the same RunResult the local executor produces: ViewStats in
// collection order, FinalResults from the view that ends the collection,
// MaxWork and IterCapHit aggregated across every replica on every machine.
//
// The static plan's segments are assigned to worker slots by multi-bin LPT
// over the engine's persistent cost estimator (size fallback while cold) and
// shipped as self-contained shards; shards stream to workers in collection
// order as their seeds are built, so building and remote execution pipeline.
// Runs that cannot be sharded — adaptive mode (its plan emerges online from
// live observations), computations without a wire spec, an empty collection,
// or no live workers — degrade to the local engine, full stop. Worker
// failure mid-run re-queues the failed worker's shards on the local engine,
// so the run completes with local semantics rather than erroring.
func (c *Coordinator) RunCollection(col *view.Collection, comp analytics.Computation, ropts core.RunOptions) (*core.RunResult, error) {
	start := time.Now()
	wireSpec, ok := analytics.SpecOf(comp)
	alive := c.aliveWorkers()
	k := col.Stream.NumViews()
	if !ok || ropts.Mode == core.Adaptive || len(alive) == 0 || k == 0 {
		// The whole run is local: reset the distribution stats so Stats()
		// never reports a previous sharded run as this one's.
		c.mu.Lock()
		c.stats = RunStats{Remote: map[string]int{}}
		c.mu.Unlock()
		return c.eng.RunOn(col, comp, ropts)
	}
	// ropts.Workers is shipped as-is: 0 means "the executing engine's
	// default", letting each worker apply its own -workers setting; an
	// explicit value pins every replica's dataflow parallelism cluster-wide.
	if ropts.Workers < 0 {
		ropts.Workers = 0
	}

	plan := core.StaticPlan(ropts.Mode, k)
	est := ropts.Estimator
	if est == nil {
		est = c.eng.CostEstimator(comp, ropts.Workers)
	}
	sizes := col.Stream.ViewSizes()
	diffs := make([]int, k)
	for t := range diffs {
		diffs[t] = col.Stream.DiffSize(t)
	}

	// One dispatch slot per unit of advertised worker capacity; LPT assigns
	// each segment to a slot up front, so the only queueing is each slot's
	// own backlog.
	type slot struct {
		w  *workerConn
		ch chan *core.SegmentSpec
	}
	var slots []*slot
	for _, w := range alive {
		for i := 0; i < w.capacity; i++ {
			slots = append(slots, &slot{w: w})
		}
	}
	assign, _ := schedule.AssignLPT(est.PlanCosts(plan, sizes, diffs), len(slots))
	slotOf := make([]int, len(plan.Segments))
	for b, idxs := range assign {
		// Buffered to the slot's full assignment: the shard builder never
		// blocks on a slow or dead worker.
		slots[b].ch = make(chan *core.SegmentSpec, len(idxs))
		for _, si := range idxs {
			slotOf[si] = b
		}
	}

	stats := RunStats{Remote: make(map[string]int)}
	var resMu sync.Mutex
	var outcomes []*core.SegmentOutcome
	var firstErr error
	// Re-queued shards execute on the local engine — the coordinator
	// degrades to single-process behavior for exactly the shards that need
	// it. Buffered to the plan so slot goroutines never block on it.
	retryCh := make(chan *core.SegmentSpec, len(plan.Segments))
	requeue := func(sp *core.SegmentSpec) {
		resMu.Lock()
		stats.Requeued++
		resMu.Unlock()
		retryCh <- sp
	}

	// Drain re-queues with the local engine's own parallelism: a dead
	// worker's whole LPT bin lands here, and serializing it would double the
	// degraded run's tail for no reason.
	drainers := c.eng.Options().Parallelism
	if drainers < 1 {
		drainers = 1
	}
	var drainWG sync.WaitGroup
	for d := 0; d < drainers; d++ {
		drainWG.Add(1)
		go func() {
			defer drainWG.Done()
			for sp := range retryCh {
				out, err := c.eng.RunSegment(sp)
				resMu.Lock()
				if err != nil {
					if firstErr == nil {
						firstErr = err
					}
				} else {
					outcomes = append(outcomes, out)
					stats.Local++
				}
				resMu.Unlock()
			}
		}()
	}

	// Heartbeats: a worker that stops answering pings is killed, which also
	// fails its in-flight shard calls immediately — the job deadline is the
	// backstop for a worker that answers pings but never finishes work. Two
	// consecutive misses (each given two intervals) are required: one slow
	// ping on a loaded machine must not execute a healthy worker.
	hbStop := make(chan struct{})
	var hbWG sync.WaitGroup
	if c.opts.Heartbeat > 0 {
		for _, w := range alive {
			hbWG.Add(1)
			go func(w *workerConn) {
				defer hbWG.Done()
				ticker := time.NewTicker(c.opts.Heartbeat)
				defer ticker.Stop()
				misses := 0
				for {
					select {
					case <-hbStop:
						return
					case <-ticker.C:
						if !w.alive() {
							return
						}
						var reply PingReply
						if err := w.call(ServiceName+".Ping", &PingArgs{}, &reply, 2*c.opts.Heartbeat); err != nil {
							if misses++; misses >= 2 {
								w.kill()
								return
							}
						} else {
							misses = 0
						}
					}
				}
			}(w)
		}
	}

	var slotWG sync.WaitGroup
	for _, s := range slots {
		slotWG.Add(1)
		go func(s *slot) {
			defer slotWG.Done()
			for sp := range s.ch {
				if !s.w.alive() {
					requeue(sp)
					continue
				}
				out, err := s.w.RunSegment(sp)
				if err != nil {
					// Connection failure, deadline, or a worker-side error:
					// this worker is done for the run, its shard re-queues.
					s.w.kill()
					requeue(sp)
					continue
				}
				resMu.Lock()
				outcomes = append(outcomes, out)
				stats.Remote[s.w.addr]++
				resMu.Unlock()
			}
		}(s)
	}

	// Build shards on this goroutine, streaming each to its slot as its seed
	// is scanned — remote execution overlaps shard building.
	berr := core.ForEachSegmentSpec(col, wireSpec, ropts, plan, func(i int, sp *core.SegmentSpec) error {
		slots[slotOf[i]].ch <- sp
		return nil
	})
	for _, s := range slots {
		close(s.ch)
	}
	slotWG.Wait()
	close(retryCh)
	drainWG.Wait()
	close(hbStop)
	hbWG.Wait()

	for _, w := range alive {
		if !w.alive() {
			stats.Dead = append(stats.Dead, w.addr)
		}
	}
	c.mu.Lock()
	c.stats = stats
	c.mu.Unlock()

	if berr != nil {
		return nil, berr
	}
	if firstErr != nil {
		return nil, firstErr
	}
	res, err := core.MergeSegmentOutcomes(comp.Name(), col.Name, ropts.Mode, plan, outcomes, time.Since(start))
	if err != nil {
		return nil, err
	}
	// Feed the measured per-view runtimes back into the scheduling
	// estimator, exactly as a local run would: the next assignment is
	// predicted from real costs, wherever the views actually ran.
	starts := make(map[int]bool, len(plan.Segments))
	for _, seg := range plan.Segments {
		starts[seg.Start] = true
	}
	for _, st := range res.Stats {
		if starts[st.Index] {
			est.ObserveScratch(st.ViewSize, st.Duration)
		} else {
			est.ObserveDiff(st.DiffSize, st.Duration)
		}
	}
	return res, nil
}
