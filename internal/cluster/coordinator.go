package cluster

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/rpc"
	"sync"
	"time"

	"graphsurge/internal/analytics"
	"graphsurge/internal/core"
	"graphsurge/internal/obs"
	"graphsurge/internal/schedule"
	"graphsurge/internal/view"
)

// Options configures a Coordinator's failure detection.
type Options struct {
	// JobTimeout bounds one shard RPC; a worker that blows it is marked
	// dead and the shard re-queues locally (0 = the 10-minute default; < 0
	// disables the deadline).
	JobTimeout time.Duration
	// Heartbeat is the ping interval per worker; a missed ping kills the
	// worker's connection, failing its in-flight shards immediately (0 = the
	// 2-second default; < 0 disables heartbeats).
	Heartbeat time.Duration
	// DialTimeout bounds AddWorker's dial and handshake (0 = 5 seconds).
	DialTimeout time.Duration
	// Logger receives the coordinator's structured membership and failure
	// events (worker registered/killed/redialed, shards re-queued). nil
	// discards them.
	Logger *slog.Logger
}

func (o *Options) defaults() {
	if o.JobTimeout == 0 {
		o.JobTimeout = 10 * time.Minute
	}
	if o.Heartbeat == 0 {
		o.Heartbeat = 2 * time.Second
	}
	if o.DialTimeout == 0 {
		o.DialTimeout = 5 * time.Second
	}
}

// errWorkerDead marks a shard sent to a worker already known dead; the
// dispatch loop re-queues it without another kill.
var errWorkerDead = errors.New("cluster: worker is dead")

// workerConn is one registered worker: its RPC client, advertised capacity,
// and liveness. It implements core.SegmentRunner, which is what makes remote
// workers and the local engine interchangeable behind the dispatch loop.
type workerConn struct {
	addr       string
	capacity   int
	jobTimeout time.Duration

	mu     sync.Mutex
	client *rpc.Client
	dead   bool
	// lastRedial stamps the most recent failed redial attempt; while a host
	// stays down, at most one run per DialTimeout window pays the dial
	// stall instead of every run.
	lastRedial time.Time
}

func (w *workerConn) alive() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return !w.dead && w.client != nil
}

// cap returns the worker's advertised capacity. Guarded because a redial
// can refresh it (a restarted worker may advertise a different -parallel)
// while another goroutine reads Workers().
func (w *workerConn) cap() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.capacity
}

// revive installs a fresh client on a worker previously marked dead — the
// redial path. A worker that was never killed keeps its existing client and
// the new one is closed.
func (w *workerConn) revive(client *rpc.Client, capacity int) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if !w.dead {
		client.Close()
		return
	}
	w.client = client
	w.dead = false
	if capacity >= 1 {
		w.capacity = capacity
	}
}

// kill marks the worker dead and closes its client, which terminates every
// in-flight call on it — the dispatch loop sees those calls fail and
// re-queues their shards. Idempotent. Used by teardown paths (Close,
// handshake failure) that own the worker outright; failure observers use
// killClient so a stale failure can never execute a freshly redialed
// connection.
func (w *workerConn) kill() {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.dead {
		return
	}
	w.dead = true
	if w.client != nil {
		w.client.Close()
	}
}

// killClient kills the worker only if the given client — the connection the
// caller actually observed failing — is still the worker's current one. A
// failure on a connection that has since been replaced by a redial belongs
// to the old connection; the revived worker is left alone.
func (w *workerConn) killClient(client *rpc.Client) {
	if client == nil {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.dead || w.client != client {
		return
	}
	w.dead = true
	client.Close()
}

// currentClient snapshots the worker's live connection.
func (w *workerConn) currentClient() (*rpc.Client, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.dead || w.client == nil {
		return nil, errWorkerDead
	}
	return w.client, nil
}

// callClient issues one RPC on an explicit client, bounded by ctx and a
// deadline. A timeout returns an error without waiting further; the caller
// kills the connection it observed failing, which also terminates the
// abandoned in-flight call. A canceled ctx abandons the call the same way
// but returns ctx's error, so the caller can tell cancellation (leave the
// worker alone) from failure (kill it).
func callClient(ctx context.Context, client *rpc.Client, addr, method string, args, reply any, timeout time.Duration) error {
	call := client.Go(method, args, reply, make(chan *rpc.Call, 1))
	var timeC <-chan time.Time
	if timeout > 0 {
		timer := time.NewTimer(timeout)
		defer timer.Stop()
		timeC = timer.C
	}
	select {
	case <-call.Done:
		return call.Error
	case <-ctx.Done():
		return ctx.Err()
	case <-timeC:
		return fmt.Errorf("cluster: %s to %s exceeded job deadline %v", method, addr, timeout)
	}
}

// call issues one RPC on the worker's current connection.
func (w *workerConn) call(ctx context.Context, method string, args, reply any, timeout time.Duration) error {
	client, err := w.currentClient()
	if err != nil {
		return err
	}
	return callClient(ctx, client, w.addr, method, args, reply, timeout)
}

// RunSegment implements core.SegmentRunner over the wire: the shard is
// encoded once, shipped, executed on the worker's engine, and its outcome
// returned for merging. Cancellation abandons the in-flight call — the
// worker finishes the shard on its own engine and returns the replica to
// its pool; the coordinator just stops waiting.
func (w *workerConn) RunSegment(ctx context.Context, spec *core.SegmentSpec) (*core.SegmentOutcome, error) {
	out, _, err := w.runSegment(ctx, spec)
	return out, err
}

// runSegment is RunSegment plus the connection the call actually used, so a
// failure observer can kill exactly that connection (killClient) and never
// a redialed replacement.
func (w *workerConn) runSegment(ctx context.Context, spec *core.SegmentSpec) (*core.SegmentOutcome, *rpc.Client, error) {
	payload, err := EncodeWire(spec)
	if err != nil {
		return nil, nil, err
	}
	client, err := w.currentClient()
	if err != nil {
		return nil, nil, err
	}
	var reply RunSegmentReply
	args := &RunSegmentArgs{Spec: payload, TimeoutMillis: w.jobTimeout.Milliseconds()}
	tr := obs.FromContext(ctx)
	if tr != nil {
		// Ship the trace context (the caller's shard span) so the worker's
		// spans come back parented under it.
		args.RunID = tr.RunID()
		args.Trace = obs.CurrentSpanContext(ctx)
	}
	obs.M.WireBytes.Add(int64(len(payload)))
	if err := callClient(ctx, client, w.addr, ServiceName+".RunSegment", args, &reply, w.jobTimeout); err != nil {
		return nil, client, err
	}
	if tr != nil {
		tr.AddRecords(reply.Spans)
	}
	// Stamp what actually crossed the network: the encoded spec size, under
	// the columnar edge codec. The worker can't know it (it sees the payload
	// after transport), so the coordinator records it on the way back.
	reply.Outcome.Segment.WireBytes = len(payload)
	return &reply.Outcome, client, nil
}

// RunStats describes how the last RunCollection was distributed —
// observability for operators and the integration tests' requeue assertions.
type RunStats struct {
	// Remote counts shards completed per worker address.
	Remote map[string]int
	// Local counts shards the coordinator's own engine ran (re-queues and
	// local degradation both land here only via the requeue path; a fully
	// local fallback run records nothing).
	Local int
	// Requeued counts shards that failed on a worker and were re-dispatched.
	Requeued int
	// Dead lists workers declared dead during the run.
	Dead []string
	// WireBytes totals the encoded shard payload bytes shipped to workers
	// (re-queued shards count their original shipment; local shards ship
	// nothing).
	WireBytes int
}

// Coordinator shards collection runs across registered workers. It owns a
// local engine that serves three jobs: the degradation target when a run
// cannot be sharded at all (adaptive mode plans online; closure computations
// cannot cross the wire; no workers are registered), the re-queue executor
// for shards whose worker died, and the keeper of the persistent cost
// estimator that drives cross-machine LPT assignment.
type Coordinator struct {
	eng  *core.Engine
	opts Options
	log  *slog.Logger

	mu      sync.Mutex
	workers []*workerConn
	stats   RunStats
}

// NewCoordinator creates a coordinator around a local engine.
func NewCoordinator(eng *core.Engine, opts Options) *Coordinator {
	opts.defaults()
	log := opts.Logger
	if log == nil {
		log = obs.Discard()
	}
	return &Coordinator{eng: eng, opts: opts, log: log}
}

// dialWorker dials an address and completes the Hello handshake, returning
// the connected client and the worker's advertised capacity — shared by
// initial registration (AddWorker) and per-run redial of dead workers. ctx
// bounds the dial and handshake alongside DialTimeout, so a canceled run
// stops redialing immediately.
func (c *Coordinator) dialWorker(ctx context.Context, addr string) (*rpc.Client, int, error) {
	dialer := net.Dialer{Timeout: c.opts.DialTimeout}
	conn, err := dialer.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, 0, fmt.Errorf("cluster: dialing worker %s: %w", addr, err)
	}
	client := rpc.NewClient(conn)
	probe := &workerConn{addr: addr, client: client}
	var hello HelloReply
	if err := probe.call(ctx, ServiceName+".Hello", &HelloArgs{Version: ProtocolVersion}, &hello, c.opts.DialTimeout); err != nil {
		client.Close()
		return nil, 0, fmt.Errorf("cluster: handshake with worker %s: %w", addr, err)
	}
	if hello.Version != ProtocolVersion {
		client.Close()
		return nil, 0, fmt.Errorf("cluster: worker %s speaks protocol %d, coordinator %d", addr, hello.Version, ProtocolVersion)
	}
	capacity := hello.Capacity
	if capacity < 1 {
		capacity = 1
	}
	return client, capacity, nil
}

// AddWorker dials and registers a worker. The Hello handshake pins the
// protocol version and learns the worker's capacity — how many shards may
// be in flight on it concurrently. ctx bounds the dial and handshake.
func (c *Coordinator) AddWorker(ctx context.Context, addr string) error {
	client, capacity, err := c.dialWorker(ctx, addr)
	if err != nil {
		return err
	}
	w := &workerConn{addr: addr, client: client, capacity: capacity, jobTimeout: c.opts.JobTimeout}
	c.mu.Lock()
	c.workers = append(c.workers, w)
	c.mu.Unlock()
	c.log.Info("cluster: worker registered", obs.WorkerID(addr), slog.Int("capacity", capacity))
	return nil
}

// redialDead attempts to re-register every dead worker — called at the
// start of each run, so a worker that crashed (or was restarted) during one
// run rejoins the cluster on the next instead of being dropped for the
// coordinator's lifetime. Dials run concurrently (one crashed endpoint
// costs one DialTimeout regardless of how many are down) and are skipped
// entirely when ctx is already canceled. Failures are silent: the worker
// simply stays dead for this run and is retried on the next one.
func (c *Coordinator) redialDead(ctx context.Context) {
	if ctx.Err() != nil {
		return
	}
	now := time.Now()
	c.mu.Lock()
	var dead []*workerConn
	for _, w := range c.workers {
		if w.alive() {
			continue
		}
		w.mu.Lock()
		recent := !w.lastRedial.IsZero() && now.Sub(w.lastRedial) < c.opts.DialTimeout
		w.mu.Unlock()
		if !recent {
			dead = append(dead, w)
		}
	}
	c.mu.Unlock()
	var wg sync.WaitGroup
	for _, w := range dead {
		wg.Add(1)
		go func(w *workerConn) {
			defer wg.Done()
			client, capacity, err := c.dialWorker(ctx, w.addr)
			if err != nil {
				w.mu.Lock()
				w.lastRedial = now
				w.mu.Unlock()
				return
			}
			if ctx.Err() != nil {
				client.Close()
				return
			}
			w.revive(client, capacity)
			obs.M.WorkerRedials.Inc()
			c.log.Info("cluster: worker redialed", obs.WorkerID(w.addr), slog.Int("capacity", capacity))
		}(w)
	}
	wg.Wait()
}

// WorkerInfo describes one registered worker.
type WorkerInfo struct {
	Addr     string
	Capacity int
	Alive    bool
}

// Workers lists the registered workers and their liveness.
func (c *Coordinator) Workers() []WorkerInfo {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]WorkerInfo, len(c.workers))
	for i, w := range c.workers {
		out[i] = WorkerInfo{Addr: w.addr, Capacity: w.cap(), Alive: w.alive()}
	}
	return out
}

// Stats returns how the most recent RunCollection was distributed. The
// returned value is a deep copy; callers may hold it across later runs.
func (c *Coordinator) Stats() RunStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := c.stats
	out.Remote = make(map[string]int, len(c.stats.Remote))
	for addr, n := range c.stats.Remote {
		out.Remote[addr] = n
	}
	out.Dead = append([]string(nil), c.stats.Dead...)
	return out
}

// WriteStats renders the coordinator's worker roster and the last run's
// shard distribution as the CLI's text lines — the cluster part of the
// typed-response rendering layer (see core's render.go).
func (c *Coordinator) WriteStats(w io.Writer) {
	cs := c.Stats()
	for _, wi := range c.Workers() {
		state := "alive"
		if !wi.Alive {
			state = "dead"
		}
		fmt.Fprintf(w, "cluster worker %s: capacity=%d %s, %d shards\n",
			wi.Addr, wi.Capacity, state, cs.Remote[wi.Addr])
	}
	fmt.Fprintf(w, "cluster: %d shards local, %d re-queued, %d bytes shipped\n", cs.Local, cs.Requeued, cs.WireBytes)
}

// Close disconnects every worker. Worker processes are unaffected — they
// keep serving other coordinators.
func (c *Coordinator) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, w := range c.workers {
		w.kill()
	}
	return nil
}

// aliveWorkers snapshots the currently usable workers.
func (c *Coordinator) aliveWorkers() []*workerConn {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []*workerConn
	for _, w := range c.workers {
		if w.alive() {
			out = append(out, w)
		}
	}
	return out
}

// RunOn implements core.CollectionRunner, so a Session RunRequest can name
// the coordinator as its runner and shard through the same typed API the
// local engine serves.
func (c *Coordinator) RunOn(ctx context.Context, col *view.Collection, comp analytics.Computation, ropts core.RunOptions) (*core.RunResult, error) {
	return c.RunCollection(ctx, col, comp, ropts)
}

// RunCollection executes a computation over a collection across the cluster
// and returns the same RunResult the local executor produces: ViewStats in
// collection order, FinalResults from the view that ends the collection,
// MaxWork and IterCapHit aggregated across every replica on every machine.
//
// Workers that died in earlier runs are redialed on entry, so a restarted
// worker process rejoins the cluster without re-registering. The static
// plan's segments are assigned to worker slots by multi-bin LPT over the
// engine's persistent cost estimator (size fallback while cold) and
// shipped as self-contained shards; shards stream to workers in collection
// order as their seeds are built, so building and remote execution pipeline.
// Runs that cannot be sharded — adaptive mode (its plan emerges online from
// live observations), computations without a wire spec, an empty collection,
// or no live workers — degrade to the local engine, full stop. Worker
// failure mid-run re-queues the failed worker's shards on the local engine,
// so the run completes with local semantics rather than erroring.
//
// Cancelling ctx stops the run everywhere the coordinator controls it:
// shard building aborts, undispatched shards are discarded instead of sent,
// in-flight worker RPCs are abandoned (the workers finish those shards on
// their own engines and keep their replicas pooled; they are not marked
// dead), and locally re-queued shards cancel through the engine's own ctx
// path. A canceled run returns ctx's error and no result.
func (c *Coordinator) RunCollection(ctx context.Context, col *view.Collection, comp analytics.Computation, ropts core.RunOptions) (res *core.RunResult, err error) {
	start := time.Now()
	wireSpec, ok := analytics.SpecOf(comp)
	k := col.Stream.NumViews()
	if ok && ropts.Mode != core.Adaptive && k != 0 {
		// Only a run that can actually shard pays for redialing dead
		// workers: adaptive and custom-computation runs execute locally no
		// matter what the roster says.
		c.redialDead(ctx)
	}
	alive := c.aliveWorkers()
	if !ok || ropts.Mode == core.Adaptive || len(alive) == 0 || k == 0 {
		// The whole run is local: reset the distribution stats so Stats()
		// never reports a previous sharded run as this one's.
		c.mu.Lock()
		c.stats = RunStats{Remote: map[string]int{}}
		c.mu.Unlock()
		c.log.Info("cluster: run degraded to local engine",
			slog.String("collection", col.Name), slog.Bool("shardable", ok),
			slog.Int("views", k), slog.Int("workers_alive", len(alive)))
		return c.eng.RunOn(ctx, col, comp, ropts)
	}
	// The sharded path is a run in its own right: it gets the same root
	// span and run counters the local executor gives engine runs, so shard
	// spans nest under "run" and /metrics on a coordinator process counts
	// cluster runs. (The degrade branch above went through the engine,
	// which instruments itself.)
	ctx, span := obs.StartSpan(ctx, "run",
		obs.String("collection", col.Name),
		obs.String("computation", comp.Name()),
		obs.String("mode", ropts.Mode.String()))
	obs.M.RunsStarted.Inc()
	obs.M.RunsInflight.Add(1)
	defer func() {
		span.End()
		obs.M.RunsInflight.Add(-1)
		if err != nil {
			obs.M.RunsCanceled.Inc()
		} else {
			obs.M.RunsFinished.Inc()
		}
	}()

	// ropts.Workers is shipped as-is: 0 means "the executing engine's
	// default", letting each worker apply its own -workers setting; an
	// explicit value pins every replica's dataflow parallelism cluster-wide.
	if ropts.Workers < 0 {
		ropts.Workers = 0
	}

	plan := core.StaticPlan(ropts.Mode, k)
	est := ropts.Estimator
	if est == nil {
		est = c.eng.CostEstimator(comp, ropts.Workers)
	}
	sizes := col.Stream.ViewSizes()
	diffs := make([]int, k)
	for t := range diffs {
		diffs[t] = col.Stream.DiffSize(t)
	}

	// One dispatch slot per unit of advertised worker capacity; LPT assigns
	// each segment to a slot up front, so the only queueing is each slot's
	// own backlog.
	type slot struct {
		w  *workerConn
		ch chan *core.SegmentSpec
	}
	var slots []*slot
	for _, w := range alive {
		for i := 0; i < w.cap(); i++ {
			slots = append(slots, &slot{w: w})
		}
	}
	assign, _ := schedule.AssignLPT(est.PlanCosts(plan, sizes, diffs), len(slots))
	runID := ""
	if tr := obs.FromContext(ctx); tr != nil {
		runID = tr.RunID()
	}
	c.log.Info("cluster: run sharded", obs.RunID(runID),
		slog.String("collection", col.Name), slog.Int("segments", len(plan.Segments)),
		slog.Int("workers", len(alive)), slog.Int("slots", len(slots)))
	slotOf := make([]int, len(plan.Segments))
	for b, idxs := range assign {
		// Buffered to the slot's full assignment: the shard builder never
		// blocks on a slow or dead worker.
		slots[b].ch = make(chan *core.SegmentSpec, len(idxs))
		for _, si := range idxs {
			slotOf[si] = b
		}
	}

	stats := RunStats{Remote: make(map[string]int)}
	var resMu sync.Mutex
	var outcomes []*core.SegmentOutcome
	var firstErr error
	// record publishes one completed shard outcome and streams its segment
	// stats to the run's progress hook, exactly as the local executor's
	// finishSegment would — the hook is called outside resMu so a slow
	// consumer never stalls other slots' bookkeeping.
	record := func(out *core.SegmentOutcome, tally func()) {
		resMu.Lock()
		outcomes = append(outcomes, out)
		tally()
		resMu.Unlock()
		if ropts.OnSegment != nil {
			ropts.OnSegment(out.Segment)
		}
	}
	// Re-queued shards execute on the local engine — the coordinator
	// degrades to single-process behavior for exactly the shards that need
	// it. Buffered to the plan so slot goroutines never block on it.
	retryCh := make(chan *core.SegmentSpec, len(plan.Segments))
	requeue := func(sp *core.SegmentSpec) {
		resMu.Lock()
		stats.Requeued++
		resMu.Unlock()
		retryCh <- sp
	}

	// Drain re-queues with the local engine's own parallelism: a dead
	// worker's whole LPT bin lands here, and serializing it would double the
	// degraded run's tail for no reason.
	drainers := c.eng.Options().Parallelism
	if drainers < 1 {
		drainers = 1
	}
	var drainWG sync.WaitGroup
	for d := 0; d < drainers; d++ {
		drainWG.Add(1)
		go func() {
			defer drainWG.Done()
			for sp := range retryCh {
				if ctx.Err() != nil {
					continue // canceled: discard the backlog, the run is failing with ctx's error
				}
				out, err := c.eng.RunSegment(ctx, sp)
				if err != nil {
					resMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					resMu.Unlock()
					continue
				}
				record(out, func() { stats.Local++ })
			}
		}()
	}

	// Heartbeats: a worker that stops answering pings is killed, which also
	// fails its in-flight shard calls immediately — the job deadline is the
	// backstop for a worker that answers pings but never finishes work. Two
	// consecutive misses (each given two intervals) are required: one slow
	// ping on a loaded machine must not execute a healthy worker.
	hbStop := make(chan struct{})
	var hbWG sync.WaitGroup
	if c.opts.Heartbeat > 0 {
		for _, w := range alive {
			hbWG.Add(1)
			go func(w *workerConn) {
				defer hbWG.Done()
				ticker := time.NewTicker(c.opts.Heartbeat)
				defer ticker.Stop()
				misses := 0
				var observed *rpc.Client
				for {
					select {
					case <-hbStop:
						return
					case <-ticker.C:
						client, err := w.currentClient()
						if err != nil {
							return // dead
						}
						if client != observed {
							// A redial replaced the connection mid-sequence;
							// misses counted against the old one don't carry.
							observed, misses = client, 0
						}
						var reply PingReply
						// Heartbeats deliberately ignore the run's ctx: a
						// canceled run must drain quietly, not fail pings and
						// execute healthy workers that later runs still need.
						//lint:ignore ctxflow heartbeat liveness is bounded by its own interval, not the run's ctx
						if err := callClient(context.Background(), client, w.addr, ServiceName+".Ping", &PingArgs{}, &reply, 2*c.opts.Heartbeat); err != nil {
							if misses++; misses >= 2 {
								obs.M.HeartbeatFailures.Inc()
								c.log.Warn("cluster: worker killed after missed heartbeats", obs.WorkerID(w.addr), slog.Int("misses", misses))
								w.killClient(client)
								return
							}
						} else {
							misses = 0
						}
					}
				}
			}(w)
		}
	}

	var slotWG sync.WaitGroup
	for _, s := range slots {
		slotWG.Add(1)
		go func(s *slot) {
			defer slotWG.Done()
			for sp := range s.ch {
				if ctx.Err() != nil {
					continue // canceled: drain undispatched shards without sending
				}
				if !s.w.alive() {
					requeue(sp)
					continue
				}
				// The shard span is the wire boundary: runSegment ships its
				// context to the worker, whose returned spans stitch in as its
				// children. Ended per iteration (never deferred in the loop) so
				// a long slot backlog can't hold spans open.
				sctx, span := obs.StartSpan(ctx, "shard",
					obs.String("worker", s.w.addr), obs.Int("start", sp.Start), obs.Int("end", sp.End))
				out, observed, err := s.w.runSegment(sctx, sp)
				span.End()
				if err != nil {
					if ctx.Err() != nil {
						// Cancellation, not failure: the in-flight call is
						// abandoned but the worker is healthy — leave it
						// registered and don't re-queue work the run no
						// longer wants.
						continue
					}
					// Connection failure, deadline, or a worker-side error:
					// this worker is done for the run, its shard re-queues.
					// Only the connection observed failing is killed — a
					// concurrent run's redial may already have installed a
					// fresh one.
					s.w.killClient(observed)
					c.log.Warn("cluster: shard failed on worker, re-queueing locally",
						obs.WorkerID(s.w.addr), slog.Int("start", sp.Start), slog.Int("end", sp.End), slog.Any("error", err))
					requeue(sp)
					continue
				}
				record(out, func() {
					stats.Remote[s.w.addr]++
					stats.WireBytes += out.Segment.WireBytes
				})
			}
		}(s)
	}

	// Build shards on this goroutine, streaming each to its slot as its seed
	// is scanned — remote execution overlaps shard building. Cancellation
	// aborts the walk before the next seed scan.
	berr := core.ForEachSegmentSpec(col, wireSpec, ropts, plan, func(i int, sp *core.SegmentSpec) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		slots[slotOf[i]].ch <- sp
		return nil
	})
	for _, s := range slots {
		close(s.ch)
	}
	slotWG.Wait()
	close(retryCh)
	drainWG.Wait()
	close(hbStop)
	hbWG.Wait()

	for _, w := range alive {
		if !w.alive() {
			stats.Dead = append(stats.Dead, w.addr)
		}
	}
	c.mu.Lock()
	c.stats = stats
	c.mu.Unlock()

	if err := ctx.Err(); err != nil {
		// Canceled: everything has drained and joined; the partial outcomes
		// are discarded rather than merged into a run that claims coverage.
		return nil, err
	}
	if berr != nil {
		return nil, berr
	}
	if firstErr != nil {
		return nil, firstErr
	}
	res, err = core.MergeSegmentOutcomes(comp.Name(), col.Name, ropts.Mode, plan, outcomes, time.Since(start))
	if err != nil {
		return nil, err
	}
	// Feed the measured per-view runtimes back into the scheduling
	// estimator, exactly as a local run would: the next assignment is
	// predicted from real costs, wherever the views actually ran.
	starts := make(map[int]bool, len(plan.Segments))
	for _, seg := range plan.Segments {
		starts[seg.Start] = true
	}
	for _, st := range res.Stats {
		if starts[st.Index] {
			est.ObserveScratch(st.ViewSize, st.Duration)
		} else {
			est.ObserveDiff(st.DiffSize, st.Duration)
		}
	}
	return res, nil
}
