package cluster

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"graphsurge/internal/analytics"
	"graphsurge/internal/core"
	"graphsurge/internal/obs"
)

// TestClusterTracePropagation: a traced cluster run over real localhost RPC
// stitches worker-side spans into the coordinator's trace — every record
// carries the coordinator's trace ID, every worker span parents under a
// shard span, and the remote span IDs live in the worker band so stitching
// can never collide with coordinator-assigned IDs.
func TestClusterTracePropagation(t *testing.T) {
	col := skewedCollection(t, 8, 17)
	w1, w2 := startWorker(t, 1), startWorker(t, 1)
	coord := newTestCoordinator(t, w1, w2)

	tr := obs.NewTrace("trace-prop")
	ctx := obs.WithTrace(context.Background(), tr)
	if _, err := coord.RunCollection(ctx, col, analytics.WCC{}, core.RunOptions{Mode: core.Scratch}); err != nil {
		t.Fatal(err)
	}
	if n := tr.OpenSpans(); n != 0 {
		t.Fatalf("%d spans still open after the run finished", n)
	}

	recs := tr.Records()
	shards := make(map[uint64]bool) // shard span IDs
	var workers []obs.SpanRecord
	for _, r := range recs {
		if r.TraceID != tr.TraceID() {
			t.Fatalf("span %q carries trace %q, want the coordinator's %q", r.Name, r.TraceID, tr.TraceID())
		}
		if r.End == 0 {
			t.Fatalf("span %q never ended", r.Name)
		}
		switch r.Name {
		case "shard":
			shards[r.ID] = true
		case "worker":
			workers = append(workers, r)
		}
	}
	if len(shards) != col.Stream.NumViews() { // scratch: one shard per view
		t.Fatalf("%d shard spans, want %d", len(shards), col.Stream.NumViews())
	}
	if len(workers) != col.Stream.NumViews() {
		t.Fatalf("%d worker spans stitched in, want %d", len(workers), col.Stream.NumViews())
	}
	for _, r := range workers {
		if !shards[r.Parent] {
			t.Fatalf("worker span %d parents under %d, which is not a shard span", r.ID, r.Parent)
		}
		if r.ID < 1<<32 {
			t.Fatalf("worker span ID %d is below the remote band (1<<32): may collide with coordinator IDs", r.ID)
		}
	}
}

// TestClusterUntracedRunShipsNoTrace: without a trace on ctx the wire args
// stay zero and the reply carries no spans — tracing is strictly opt-in and
// costs untraced runs nothing on the wire.
func TestClusterUntracedRunShipsNoTrace(t *testing.T) {
	col := skewedCollection(t, 4, 23)
	w := startWorker(t, 1)
	coord := newTestCoordinator(t, w)
	if _, err := coord.RunCollection(context.Background(), col, analytics.WCC{}, core.RunOptions{Mode: core.Scratch}); err != nil {
		t.Fatal(err)
	}
	// Reach one worker directly with empty trace context: the reply must not
	// fabricate spans.
	wc := coord.aliveWorkers()[0]
	var spec *core.SegmentSpec
	wireSpec, _ := analytics.SpecOf(analytics.WCC{})
	err := core.ForEachSegmentSpec(col, wireSpec, core.RunOptions{Mode: core.Scratch}, core.StaticPlan(core.Scratch, col.Stream.NumViews()), func(i int, sp *core.SegmentSpec) error {
		if i == 0 {
			spec = sp
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	payload, err := EncodeWire(spec)
	if err != nil {
		t.Fatal(err)
	}
	var reply RunSegmentReply
	if err := wc.call(context.Background(), ServiceName+".RunSegment", &RunSegmentArgs{Spec: payload}, &reply, 30*time.Second); err != nil {
		t.Fatal(err)
	}
	if len(reply.Spans) != 0 {
		t.Fatalf("untraced call returned %d spans, want 0", len(reply.Spans))
	}
}

// TestClusterCancelClosesSpans: a canceled traced cluster run must close
// every span it opened — the shard span wrapping the abandoned in-flight
// call included — so a trace read after cancellation never shows open spans.
func TestClusterCancelClosesSpans(t *testing.T) {
	col := skewedCollection(t, 8, 31)
	wEng, err := core.NewEngine(core.Options{Workers: 1, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(wEng, 1)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv.Start(l)
	t.Cleanup(func() { srv.Close() })

	entered := make(chan struct{})
	release := make(chan struct{})
	var once bool
	srv.svc.beforeRun = func(*core.SegmentSpec) {
		if once {
			return
		}
		once = true
		close(entered)
		<-release
	}
	t.Cleanup(func() {
		select {
		case <-release:
		default:
			close(release)
		}
	})

	coord := newTestCoordinator(t, srv)
	tr := obs.NewTrace("trace-cancel")
	ctx, cancel := context.WithCancel(obs.WithTrace(context.Background(), tr))
	defer cancel()
	errCh := make(chan error, 1)
	go func() {
		_, err := coord.RunCollection(ctx, col, analytics.WCC{}, core.RunOptions{Mode: core.Scratch})
		errCh <- err
	}()
	<-entered // the worker is stalled mid-shard
	cancel()
	select {
	case err := <-errCh:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("canceled run returned %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("canceled cluster run did not return")
	}
	if n := tr.OpenSpans(); n != 0 {
		t.Fatalf("canceled run left %d spans open", n)
	}
	for _, r := range tr.Records() {
		if r.End == 0 {
			t.Fatalf("canceled run left span %q unended", r.Name)
		}
	}
}
