package cluster

import (
	"context"
	"fmt"
	"log/slog"
	"net"
	"net/rpc"
	"sync"
	"time"

	"graphsurge/internal/core"
	"graphsurge/internal/obs"
)

// service is the RPC surface a worker exposes. It is deliberately thin:
// decode the shard, hand it to the engine, return the outcome. All warm
// state (runner pools, estimators) lives in the engine, shared across jobs.
type service struct {
	eng      *core.Engine
	capacity int
	log      *slog.Logger

	// ctx is the server's shutdown context: Server.Close cancels it, which
	// aborts an in-flight segment at its next view boundary so the replica
	// returns to the pool instead of computing for a coordinator that is
	// gone.
	ctx context.Context

	mu   sync.Mutex
	jobs int

	// beforeRun, when set (tests), runs at the top of every RunSegment call —
	// the hook integration tests use to stall a worker and kill it mid-job.
	beforeRun func(spec *core.SegmentSpec)
}

// Hello implements the registration handshake.
func (s *service) Hello(args *HelloArgs, reply *HelloReply) error {
	if args.Version != ProtocolVersion {
		return fmt.Errorf("cluster: protocol version %d, worker speaks %d", args.Version, ProtocolVersion)
	}
	reply.Version = ProtocolVersion
	reply.Capacity = s.capacity
	return nil
}

// Ping implements the heartbeat.
func (s *service) Ping(_ *PingArgs, reply *PingReply) error {
	s.mu.Lock()
	reply.Jobs = s.jobs
	s.mu.Unlock()
	return nil
}

// RunSegment executes one shard on the worker's engine.
func (s *service) RunSegment(args *RunSegmentArgs, reply *RunSegmentReply) error {
	var spec core.SegmentSpec
	if err := DecodeWire(args.Spec, &spec); err != nil {
		return err
	}
	if hook := s.beforeRun; hook != nil {
		hook(&spec)
	}
	// net/rpc carries no per-call context, so the server's shutdown context
	// stands in, bounded by the coordinator's shipped job deadline: a worker
	// being closed aborts the shard at its next view boundary, and a call
	// the coordinator has timed out cannot pin a replica past the deadline.
	ctx := s.ctx
	if args.TimeoutMillis > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(args.TimeoutMillis)*time.Millisecond)
		defer cancel()
	}
	// When the coordinator shipped trace context, the worker's spans join
	// that trace: the remote Trace parents new spans under the coordinator's
	// shard span, and its records travel back in the reply to be stitched in.
	var tr *obs.Trace
	if args.RunID != "" && args.Trace.TraceID != "" {
		ctx, tr = obs.WithRemoteParent(ctx, args.RunID, args.Trace)
	}
	wctx, span := obs.StartSpan(ctx, "worker",
		obs.Int("start", spec.Start), obs.Int("end", spec.End), obs.String("collection", spec.Collection))
	out, err := s.eng.RunSegment(wctx, &spec)
	span.End()
	if err != nil {
		s.log.Warn("cluster: shard failed", obs.RunID(args.RunID),
			slog.Int("start", spec.Start), slog.Int("end", spec.End), slog.Any("error", err))
		return err
	}
	if tr != nil {
		reply.Spans = tr.Records()
	}
	reply.Outcome = *out
	s.mu.Lock()
	s.jobs++
	s.mu.Unlock()
	s.log.Debug("cluster: shard completed", obs.RunID(args.RunID),
		slog.Int("start", spec.Start), slog.Int("end", spec.End))
	return nil
}

// Server is a running worker: an RPC server wrapping an engine, tracking
// its connections so Close can sever in-flight calls — which is what lets a
// coordinator detect a killed worker immediately instead of waiting out the
// job deadline.
type Server struct {
	svc    *service
	rpc    *rpc.Server
	cancel context.CancelFunc // cancels svc.ctx; fired by Close

	mu     sync.Mutex
	l      net.Listener
	conns  map[net.Conn]struct{}
	closed bool
}

// NewServer creates a worker server around an engine. capacity is the
// number of shards the worker advertises it can run concurrently (minimum
// 1); it should match the engine's Parallelism so concurrent jobs each get
// a replica instead of queuing on the pool.
func NewServer(eng *core.Engine, capacity int) *Server {
	if capacity < 1 {
		capacity = 1
	}
	//lint:ignore ctxflow server lifetime root: Close cancels it, no caller ctx outlives the server
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		svc:    &service{eng: eng, capacity: capacity, ctx: ctx, log: obs.Discard()},
		rpc:    rpc.NewServer(),
		cancel: cancel,
		conns:  make(map[net.Conn]struct{}),
	}
	if err := s.rpc.RegisterName(ServiceName, s.svc); err != nil {
		// Registration only fails for a malformed service type — a
		// programming error, not a runtime condition.
		panic(err)
	}
	return s
}

// SetLogger routes the worker's structured job events to log (nil
// discards). Call before Start/Serve; the logger is read by RPC handler
// goroutines.
func (s *Server) SetLogger(log *slog.Logger) {
	if log == nil {
		log = obs.Discard()
	}
	s.svc.log = log
}

// Jobs returns the number of shards completed over the server's lifetime.
func (s *Server) Jobs() int {
	s.svc.mu.Lock()
	defer s.svc.mu.Unlock()
	return s.svc.jobs
}

// Start begins accepting connections on l in a background goroutine and
// returns immediately. The listener is owned by the server from here on:
// Close closes it.
func (s *Server) Start(l net.Listener) {
	s.mu.Lock()
	s.l = l
	s.mu.Unlock()
	go s.acceptLoop(l)
}

// Serve accepts connections on l until Close (or a fatal listener error) —
// the blocking form of Start, used by the CLI worker subcommand.
func (s *Server) Serve(l net.Listener) {
	s.mu.Lock()
	s.l = l
	s.mu.Unlock()
	s.acceptLoop(l)
}

// Addr returns the listen address (nil before Start/ListenAndServe).
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.l == nil {
		return nil
	}
	return s.l.Addr()
}

func (s *Server) acceptLoop(l net.Listener) {
	for {
		conn, err := l.Accept()
		if err != nil {
			// Listener closed (Close) or fatal accept error: stop serving.
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		go func() {
			s.rpc.ServeConn(conn)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
			conn.Close()
		}()
	}
}

// Close stops the server: the shutdown context is canceled (aborting any
// in-flight segment at its next view boundary, returning its replica), the
// listener closes, every open connection is severed (in-flight calls on the
// coordinator side fail immediately), and the accept loop exits. Connection
// goroutines finish on their own as their severed connections drain. The
// engine is left to the caller — its pools stay warm for a restarted
// server.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.cancel()
	l := s.l
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	var err error
	if l != nil {
		err = l.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	return err
}
