package cluster

import (
	"context"
	"errors"
	"testing"
	"time"

	"graphsurge/internal/analytics"
	"graphsurge/internal/core"
	"graphsurge/internal/view"
)

// oneSegmentSpec shards col as a single DiffOnly segment covering every view
// — the longest-running shard shape, with a cancellation point at each view
// boundary.
func oneSegmentSpec(t *testing.T, col *view.Collection) *core.SegmentSpec {
	t.Helper()
	spec, ok := analytics.SpecOf(analytics.WCC{})
	if !ok {
		t.Fatal("no wire spec for WCC")
	}
	plan := core.StaticPlan(core.DiffOnly, col.Stream.NumViews())
	if len(plan.Segments) != 1 {
		t.Fatalf("DiffOnly plan has %d segments, want 1", len(plan.Segments))
	}
	var out *core.SegmentSpec
	err := core.ForEachSegmentSpec(col, spec, core.RunOptions{Workers: 1}, plan, func(_ int, sp *core.SegmentSpec) error {
		out = sp
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestWorkerCloseAbortsRunningSegment: closing a worker server cancels its
// shutdown context, which must abort an in-flight segment at its next view
// boundary with context.Canceled — and the aborted segment's replica must
// land back in the engine's pool, not leak with the dead job.
func TestWorkerCloseAbortsRunningSegment(t *testing.T) {
	col := skewedCollection(t, 120, 73)
	eng, err := core.NewEngine(core.Options{Workers: 1, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	srv := NewServer(eng, 1)
	defer srv.Close()

	payload, err := EncodeWire(oneSegmentSpec(t, col))
	if err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() {
		errCh <- srv.svc.RunSegment(&RunSegmentArgs{Spec: payload}, &RunSegmentReply{})
	}()

	// Wait until the segment holds a replica — it is genuinely running, not
	// queued on the pool.
	deadline := time.Now().Add(10 * time.Second)
	for live(eng) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("segment never acquired a replica")
		}
		time.Sleep(200 * time.Microsecond)
	}

	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errCh:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("segment on a closed worker returned %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("segment kept running after the worker closed")
	}
	// RunSegment releases via defer before returning, so the replica must
	// already be back.
	if n := live(eng); n != 0 {
		t.Fatalf("%d replicas still live after the aborted segment returned", n)
	}
	// Jobs counts completed shards only; an aborted shard is not one.
	if srv.Jobs() != 0 {
		t.Fatalf("aborted segment counted as %d completed jobs", srv.Jobs())
	}
}

// live sums live replicas across the engine's pools.
func live(e *core.Engine) int {
	n := 0
	for _, ps := range e.PoolStats() {
		n += ps.Live
	}
	return n
}
