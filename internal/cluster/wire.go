// Package cluster shards a view-collection run across processes: a
// Coordinator splits a static plan into self-contained segment shards
// (internal/core's SegmentSpec — seed and difference sets as columnar
// graph.EdgeBatch payloads, so workers hold no graph or view state), assigns them to
// registered workers with the cost-model scheduler's multi-bin LPT, ships
// them over net/rpc, and merges the returned outcomes in collection order
// exactly as the local executor does. Workers are thin: a worker process
// wraps an Engine whose warm runner pools amortize dataflow construction
// across jobs, exactly as they do across local runs.
//
// Failure handling is degrade-don't-fail: a worker that misses heartbeats,
// breaks its connection, or blows the per-job deadline is marked dead and
// every shard it still owed is re-queued onto the coordinator's own engine,
// so a cluster run finishes with single-process semantics rather than an
// error. See DESIGN.md ("Cluster execution").
package cluster

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"

	"graphsurge/internal/core"
	"graphsurge/internal/obs"
)

// ProtocolVersion guards coordinator/worker compatibility: the Hello
// handshake rejects a peer speaking a different version, so a stale worker
// binary fails loudly at registration instead of corrupting a run.
//
// Version 2 switched segment edge payloads from per-record gob triples to
// the columnar graph.EdgeBatch binary codec (delta-encoded source column,
// fixed-width destinations, constant-weight shortcut); a v1 peer cannot
// decode those specs, so the bump is mandatory.
const ProtocolVersion = 2

// ServiceName is the rpc service name workers register under.
const ServiceName = "Graphsurge"

// ErrWire marks a wire payload that failed to decode — a truncated or
// corrupt gob stream, or a payload whose decoded content fails validation.
// It is the typed boundary error: callers branch with errors.Is instead of
// string-matching gob internals, and a corrupt stream can never panic a
// worker.
var ErrWire = errors.New("cluster: bad wire payload")

// EncodeWire gob-encodes a wire value. The coordinator encodes each shard
// once at dispatch; a shard re-shipped after a worker failure reuses the
// original in-memory spec, not the encoding.
func EncodeWire(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, fmt.Errorf("cluster: encoding %T: %w", v, err)
	}
	return buf.Bytes(), nil
}

// DecodeWire decodes a wire payload into v, converting every failure mode —
// gob decode errors and any decoder panic — into an error wrapping ErrWire.
func DecodeWire(data []byte, v any) (err error) {
	defer func() {
		// gob is documented to return errors rather than panic, but a decode
		// panic on a hostile stream must cost one RPC, not the worker
		// process.
		if r := recover(); r != nil {
			err = fmt.Errorf("%w: decode panic for %T: %v", ErrWire, v, r)
		}
	}()
	if derr := gob.NewDecoder(bytes.NewReader(data)).Decode(v); derr != nil {
		return fmt.Errorf("%w: decoding %T: %v", ErrWire, v, derr)
	}
	return nil
}

// HelloArgs opens the coordinator→worker handshake.
type HelloArgs struct {
	Version int
}

// HelloReply advertises the worker's protocol version and capacity — the
// number of shards the coordinator may keep in flight on it concurrently
// (the worker engine's Parallelism).
type HelloReply struct {
	Version  int
	Capacity int
}

// PingArgs is the heartbeat request.
type PingArgs struct{}

// PingReply reports worker liveness plus the lifetime completed-job count
// (observability; the coordinator only needs the reply to arrive).
type PingReply struct {
	Jobs int
}

// RunSegmentArgs carries one shard. The spec travels as an opaque gob
// payload (EncodeWire of a core.SegmentSpec) so the worker's decode boundary
// is explicit and typed — see DecodeWire.
type RunSegmentArgs struct {
	Spec []byte
	// TimeoutMillis is the coordinator's per-job deadline. The worker bounds
	// the shard's execution with it so a call the coordinator has already
	// timed out cannot pin a replica indefinitely; 0 means no deadline.
	TimeoutMillis int64
	// RunID and Trace carry the coordinator's trace context: the worker opens
	// its spans under Trace (the coordinator's shard span) so the returned
	// records stitch into the coordinator's trace. Zero values mean the run is
	// untraced. gob tolerates these fields being absent on an older peer, so
	// they ride on protocol version 2.
	RunID string
	Trace obs.SpanContext
}

// RunSegmentReply carries the shard's outcome back, plus the worker-side
// span records for the coordinator to stitch into its trace (empty when the
// call carried no trace context).
type RunSegmentReply struct {
	Outcome core.SegmentOutcome
	Spans   []obs.SpanRecord
}
