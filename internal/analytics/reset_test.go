package analytics

import (
	"fmt"
	"testing"

	"graphsurge/internal/graph"
)

// resetSeq builds a deterministic multi-view edge-update sequence over a
// small vertex universe with a simple LCG: view 0 loads a base edge set,
// later views add and delete a few edges each. Weights are small positive
// integers so SSSP exercises real weighted relaxation.
type viewDelta struct {
	adds, dels []graph.Triple
}

func resetSeq() []viewDelta {
	const vertices = 24
	rng := uint64(0x9e3779b97f4a7c15)
	next := func(n uint64) uint64 {
		rng = rng*6364136223846793005 + 1442695040888963407
		return (rng >> 33) % n
	}
	triple := func() graph.Triple {
		src := next(vertices)
		dst := next(vertices)
		if dst == src {
			dst = (src + 1) % vertices
		}
		return graph.Triple{Src: src, Dst: dst, W: int64(next(9)) + 1}
	}
	var base []graph.Triple
	seen := map[graph.Triple]bool{}
	// Guarantee the BFS/SSSP source (vertex 1) is present and a cycle exists
	// so SCC has nontrivial components.
	for _, t := range []graph.Triple{{Src: 1, Dst: 2, W: 1}, {Src: 2, Dst: 3, W: 2}, {Src: 3, Dst: 1, W: 1}} {
		base = append(base, t)
		seen[t] = true
	}
	for len(base) < 40 {
		tr := triple()
		if !seen[tr] {
			seen[tr] = true
			base = append(base, tr)
		}
	}
	seq := []viewDelta{{adds: base}}
	live := append([]graph.Triple(nil), base...)
	for v := 0; v < 3; v++ {
		var d viewDelta
		for i := 0; i < 4; i++ {
			// Delete a live edge (deterministically chosen), add a fresh one.
			di := int(next(uint64(len(live))))
			d.dels = append(d.dels, live[di])
			live = append(live[:di], live[di+1:]...)
			tr := triple()
			for seen[tr] {
				tr = triple()
			}
			seen[tr] = true
			d.adds = append(d.adds, tr)
			live = append(live, tr)
		}
		seq = append(seq, d)
	}
	return seq
}

// runSeq feeds the full view sequence to a runner and snapshots everything
// the executor reads: per-version output-diff counts, final results, and the
// iteration-cap flag.
func runSeq(r Runner, seq []viewDelta) ([]int, map[VertexValue]int64, bool) {
	diffs := make([]int, len(seq))
	for v, d := range seq {
		r.Step(d.adds, d.dels)
		diffs[v] = r.OutputDiffs(uint32(v))
	}
	return diffs, r.Results(), r.IterCapHit()
}

// TestResetEquivalence is the recycled-runner contract for every built-in
// algorithm, including the staged SCC runner: after running an arbitrary
// warm-up sequence and resetting, a runner must be indistinguishable from a
// freshly built one — identical Results, per-version OutputDiffs, and
// IterCapHit over the same view sequence.
func TestResetEquivalence(t *testing.T) {
	comps := []Computation{
		WCC{},
		Degree{},
		BFS{Source: 1},
		SSSP{Source: 1},
		PageRank{},
		&SCC{Phases: 4},
	}
	seq := resetSeq()
	for _, comp := range comps {
		for _, workers := range []int{1, 2} {
			t.Run(fmt.Sprintf("%s/w=%d", comp.Name(), workers), func(t *testing.T) {
				fresh, err := NewRunner(comp, workers)
				if err != nil {
					t.Fatal(err)
				}
				wantDiffs, wantResults, wantCap := runSeq(fresh, seq)

				reused, err := NewRunner(comp, workers)
				if err != nil {
					t.Fatal(err)
				}
				// Dirty the runner with a different prefix, then reset.
				reused.Step(seq[0].adds[:10], nil)
				reused.Step(seq[1].adds, nil)
				rs, ok := reused.(Resettable)
				if !ok {
					t.Fatalf("%T is not Resettable", reused)
				}
				if err := rs.Reset(); err != nil {
					t.Fatal(err)
				}
				if _, ok := reused.Version(); ok {
					t.Fatal("reset runner still has a version")
				}
				gotDiffs, gotResults, gotCap := runSeq(reused, seq)

				for v := range wantDiffs {
					if gotDiffs[v] != wantDiffs[v] {
						t.Fatalf("OutputDiffs(%d) = %d, fresh %d", v, gotDiffs[v], wantDiffs[v])
					}
				}
				if gotCap != wantCap {
					t.Fatalf("IterCapHit = %v, fresh %v", gotCap, wantCap)
				}
				if len(gotResults) != len(wantResults) {
					t.Fatalf("%d results, fresh %d", len(gotResults), len(wantResults))
				}
				for vv, d := range wantResults {
					if gotResults[vv] != d {
						t.Fatalf("result %+v = %d, fresh %d", vv, gotResults[vv], d)
					}
				}
			})
		}
	}
}
