package analytics

import "fmt"

// Spec is the wire form of a built-in computation: a flat, gob-encodable
// identity (algorithm name plus parameters) that can cross a process
// boundary and be resolved back into a Computation on the other side. The
// cluster layer ships Specs to workers — a Computation itself cannot travel,
// because Build wires operator closures — and the CLI resolves its
// -algorithm flag through the same registry, so the set of algorithms a
// coordinator can shard is exactly the set the CLI can name.
//
// Computations outside the built-in library (embedding callers passing
// custom Build functions) have no Spec; SpecOf reports ok=false for them and
// the cluster layer keeps such runs on the local engine.
type Spec struct {
	// Algorithm is the canonical algorithm name: wcc, bfs, sssp, pagerank,
	// scc, degree or mpsp (the CLI aliases bellman-ford and pr are accepted
	// by Resolve but never produced by SpecOf). The JSON names are the HTTP
	// API's wire schema (core.RunRequest); gob ignores them.
	Algorithm string `json:"algorithm"`
	// Source is the source vertex for bfs and sssp.
	Source uint64 `json:"source,omitempty"`
	// Iterations is PageRank's iteration count (0 = the default).
	Iterations uint32 `json:"iterations,omitempty"`
	// Phases is SCC's staged phase count (0 = the default).
	Phases int `json:"phases,omitempty"`
	// Pairs are MPSP's source-destination queries.
	Pairs []Pair `json:"pairs,omitempty"`
}

// Resolve instantiates the computation a Spec describes.
func (s Spec) Resolve() (Computation, error) {
	switch s.Algorithm {
	case "wcc":
		return WCC{}, nil
	case "bfs":
		return BFS{Source: s.Source}, nil
	case "sssp", "bellman-ford":
		return SSSP{Source: s.Source}, nil
	case "pagerank", "pr":
		return PageRank{Iterations: s.Iterations}, nil
	case "scc":
		return &SCC{Phases: s.Phases}, nil
	case "degree":
		return Degree{}, nil
	case "mpsp":
		return MPSP{Pairs: s.Pairs}, nil
	}
	return nil, fmt.Errorf("analytics: unknown algorithm %q", s.Algorithm)
}

// SpecOf returns the Spec describing a built-in computation, inverting
// Resolve. ok is false for computations outside the built-in library, whose
// dataflows only exist as Go closures and therefore cannot be described to
// another process.
func SpecOf(comp Computation) (Spec, bool) {
	switch c := comp.(type) {
	case WCC:
		return Spec{Algorithm: "wcc"}, true
	case BFS:
		return Spec{Algorithm: "bfs", Source: c.Source}, true
	case SSSP:
		return Spec{Algorithm: "sssp", Source: c.Source}, true
	case PageRank:
		return Spec{Algorithm: "pagerank", Iterations: c.Iterations}, true
	case *SCC:
		return Spec{Algorithm: "scc", Phases: c.Phases}, true
	case Degree:
		return Spec{Algorithm: "degree"}, true
	case MPSP:
		return Spec{Algorithm: "mpsp", Pairs: c.Pairs}, true
	}
	return Spec{}, false
}
