package analytics

import (
	"testing"
	"time"

	"graphsurge/internal/graph"
)

func poolTriples() []graph.Triple {
	return []graph.Triple{
		{Src: 1, Dst: 2, W: 1},
		{Src: 2, Dst: 3, W: 1},
		{Src: 4, Dst: 5, W: 1},
	}
}

func TestInstanceReset(t *testing.T) {
	inst, err := NewInstance(WCC{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	scope := inst.Scope()
	inst.Step(poolTriples(), nil)
	if len(inst.Results()) != 5 {
		t.Fatalf("results: %v", inst.Results())
	}
	if err := inst.Reset(); err != nil {
		t.Fatal(err)
	}
	// The reset is in place: the same dataflow (same scope) is reused, not
	// rebuilt through NewInstance.
	if inst.Scope() != scope {
		t.Fatal("Reset rebuilt the dataflow instead of resetting in place")
	}
	if _, ok := inst.Version(); ok {
		t.Fatal("reset instance still has a version")
	}
	if len(inst.Results()) != 0 {
		t.Fatalf("reset instance has results: %v", inst.Results())
	}
	// A reset instance runs from scratch and reproduces the same answer.
	inst.Step(poolTriples(), nil)
	if len(inst.Results()) != 5 {
		t.Fatalf("results after reset: %v", inst.Results())
	}
}

func TestPoolReusesResettableRunners(t *testing.T) {
	p := NewPool(WCC{}, 1, 2)
	if p.Size() != 2 {
		t.Fatalf("size: %d", p.Size())
	}
	r1, _, err := p.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	r1.Step(poolTriples(), nil)
	p.Release(r1)
	if p.Idle() != 1 {
		t.Fatalf("idle after release: %d", p.Idle())
	}
	r2, _, err := p.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Fatal("pool did not recycle the released runner")
	}
	if _, ok := r2.Version(); ok {
		t.Fatal("recycled runner was not reset")
	}
	built, reused := p.Counts()
	if built != 1 || reused != 1 {
		t.Fatalf("counts: built=%d reused=%d", built, reused)
	}
	p.Release(r2)
}

func TestPoolBoundsConcurrency(t *testing.T) {
	p := NewPool(WCC{}, 1, 1)
	r, _, err := p.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	if p.Live() != 1 {
		t.Fatalf("live: %d", p.Live())
	}
	acquired := make(chan Runner)
	go func() {
		r2, _, err := p.Acquire()
		if err != nil {
			t.Error(err)
		}
		acquired <- r2
	}()
	select {
	case <-acquired:
		t.Fatal("second Acquire did not block on a full pool")
	case <-time.After(20 * time.Millisecond):
	}
	p.Release(r)
	select {
	case r2 := <-acquired:
		p.Release(r2)
	case <-time.After(time.Second):
		t.Fatal("Acquire did not wake after Release")
	}
}

// TestPoolGrowUnblocksWaiters checks the engine-level resize path: a caller
// blocked on a full pool proceeds once another caller grows the capacity.
func TestPoolGrowUnblocksWaiters(t *testing.T) {
	p := NewPool(WCC{}, 1, 1)
	r1, _, err := p.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	acquired := make(chan Runner)
	go func() {
		r2, _, err := p.Acquire()
		if err != nil {
			t.Error(err)
		}
		acquired <- r2
	}()
	select {
	case <-acquired:
		t.Fatal("Acquire did not block at capacity 1")
	case <-time.After(20 * time.Millisecond):
	}
	p.Grow(2)
	var r2 Runner
	select {
	case r2 = <-acquired:
	case <-time.After(time.Second):
		t.Fatal("Acquire did not wake after Grow")
	}
	p.Grow(1) // never shrinks
	if p.Size() != 2 {
		t.Fatalf("size after Grow(1): %d", p.Size())
	}
	p.Release(r1)
	p.Release(r2)
}

// TestPoolRecyclesStagedSCCRunner pins that the staged SCC runner is
// Resettable, so Release keeps it warm instead of dropping it.
func TestPoolRecyclesStagedSCCRunner(t *testing.T) {
	p := NewPool(&SCC{Phases: 3}, 1, 1)
	r1, _, err := p.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	r1.Step(poolTriples(), nil)
	p.Release(r1)
	r2, _, err := p.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Fatal("staged SCC runner was not recycled")
	}
	if _, ok := r2.Version(); ok {
		t.Fatal("recycled SCC runner was not reset")
	}
	if len(r2.Results()) != 0 {
		t.Fatalf("recycled SCC runner kept results: %v", r2.Results())
	}
	p.Release(r2)
}

func TestPoolDropIdle(t *testing.T) {
	p := NewPool(WCC{}, 1, 1)
	r, _, err := p.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	p.Release(r)
	if p.Idle() != 1 {
		t.Fatalf("idle: %d", p.Idle())
	}
	p.DropIdle()
	if p.Idle() != 0 {
		t.Fatalf("idle after drop: %d", p.Idle())
	}
	r2, _, err := p.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	if r2 == r {
		t.Fatal("dropped runner was recycled")
	}
	p.Release(r2)
}
