package analytics

import (
	"context"
	"testing"
	"time"

	"graphsurge/internal/graph"
)

func poolTriples() []graph.Triple {
	return []graph.Triple{
		{Src: 1, Dst: 2, W: 1},
		{Src: 2, Dst: 3, W: 1},
		{Src: 4, Dst: 5, W: 1},
	}
}

func TestInstanceReset(t *testing.T) {
	inst, err := NewInstance(WCC{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	scope := inst.Scope()
	inst.Step(poolTriples(), nil)
	if len(inst.Results()) != 5 {
		t.Fatalf("results: %v", inst.Results())
	}
	if err := inst.Reset(); err != nil {
		t.Fatal(err)
	}
	// The reset is in place: the same dataflow (same scope) is reused, not
	// rebuilt through NewInstance.
	if inst.Scope() != scope {
		t.Fatal("Reset rebuilt the dataflow instead of resetting in place")
	}
	if _, ok := inst.Version(); ok {
		t.Fatal("reset instance still has a version")
	}
	if len(inst.Results()) != 0 {
		t.Fatalf("reset instance has results: %v", inst.Results())
	}
	// A reset instance runs from scratch and reproduces the same answer.
	inst.Step(poolTriples(), nil)
	if len(inst.Results()) != 5 {
		t.Fatalf("results after reset: %v", inst.Results())
	}
}

func TestPoolReusesResettableRunners(t *testing.T) {
	p := NewPool(WCC{}, 1, 2)
	if p.Size() != 2 {
		t.Fatalf("size: %d", p.Size())
	}
	r1, _, err := p.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	r1.Step(poolTriples(), nil)
	p.Release(r1)
	if p.Idle() != 1 {
		t.Fatalf("idle after release: %d", p.Idle())
	}
	r2, _, err := p.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Fatal("pool did not recycle the released runner")
	}
	if _, ok := r2.Version(); ok {
		t.Fatal("recycled runner was not reset")
	}
	built, reused := p.Counts()
	if built != 1 || reused != 1 {
		t.Fatalf("counts: built=%d reused=%d", built, reused)
	}
	p.Release(r2)
}

func TestPoolBoundsConcurrency(t *testing.T) {
	p := NewPool(WCC{}, 1, 1)
	r, _, err := p.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if p.Live() != 1 {
		t.Fatalf("live: %d", p.Live())
	}
	acquired := make(chan Runner)
	go func() {
		r2, _, err := p.Acquire(context.Background())
		if err != nil {
			t.Error(err)
		}
		acquired <- r2
	}()
	select {
	case <-acquired:
		t.Fatal("second Acquire did not block on a full pool")
	case <-time.After(20 * time.Millisecond):
	}
	p.Release(r)
	select {
	case r2 := <-acquired:
		p.Release(r2)
	case <-time.After(time.Second):
		t.Fatal("Acquire did not wake after Release")
	}
}

// TestPoolGrowUnblocksWaiters checks the engine-level resize path: a caller
// blocked on a full pool proceeds once another caller grows the capacity.
func TestPoolGrowUnblocksWaiters(t *testing.T) {
	p := NewPool(WCC{}, 1, 1)
	r1, _, err := p.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	acquired := make(chan Runner)
	go func() {
		r2, _, err := p.Acquire(context.Background())
		if err != nil {
			t.Error(err)
		}
		acquired <- r2
	}()
	select {
	case <-acquired:
		t.Fatal("Acquire did not block at capacity 1")
	case <-time.After(20 * time.Millisecond):
	}
	p.Grow(2)
	var r2 Runner
	select {
	case r2 = <-acquired:
	case <-time.After(time.Second):
		t.Fatal("Acquire did not wake after Grow")
	}
	p.Grow(1) // never shrinks
	if p.Size() != 2 {
		t.Fatalf("size after Grow(1): %d", p.Size())
	}
	p.Release(r1)
	p.Release(r2)
}

// TestPoolRecyclesStagedSCCRunner pins that the staged SCC runner is
// Resettable, so Release keeps it warm instead of dropping it.
func TestPoolRecyclesStagedSCCRunner(t *testing.T) {
	p := NewPool(&SCC{Phases: 3}, 1, 1)
	r1, _, err := p.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	r1.Step(poolTriples(), nil)
	p.Release(r1)
	r2, _, err := p.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Fatal("staged SCC runner was not recycled")
	}
	if _, ok := r2.Version(); ok {
		t.Fatal("recycled SCC runner was not reset")
	}
	if len(r2.Results()) != 0 {
		t.Fatalf("recycled SCC runner kept results: %v", r2.Results())
	}
	p.Release(r2)
}

func TestPoolDropIdle(t *testing.T) {
	p := NewPool(WCC{}, 1, 1)
	r, _, err := p.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	p.Release(r)
	if p.Idle() != 1 {
		t.Fatalf("idle: %d", p.Idle())
	}
	p.DropIdle()
	if p.Idle() != 0 {
		t.Fatalf("idle after drop: %d", p.Idle())
	}
	r2, _, err := p.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if r2 == r {
		t.Fatal("dropped runner was recycled")
	}
	p.Release(r2)
}

// TestPoolIdleHighWaterMark pins the sizing policy's Release path: beyond
// maxIdle warm replicas, released runners are dropped instead of cached.
func TestPoolIdleHighWaterMark(t *testing.T) {
	p := NewPool(WCC{}, 1, 4)
	p.SetPolicy(2, 0)
	var rs []Runner
	for i := 0; i < 4; i++ {
		r, _, err := p.Acquire(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		rs = append(rs, r)
	}
	for _, r := range rs {
		p.Release(r)
	}
	if p.Idle() != 2 {
		t.Fatalf("%d idle, high-water mark 2", p.Idle())
	}
	if p.Dropped() != 2 {
		t.Fatalf("%d dropped, want 2", p.Dropped())
	}
	if p.Live() != 0 {
		t.Fatalf("%d live", p.Live())
	}
	// The retained replicas still serve acquisitions via reset.
	r, _, err := p.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if _, reused := p.Counts(); reused != 1 {
		t.Fatalf("reused %d, want 1", reused)
	}
	p.Release(r)
}

// TestPoolIdleTTL pins the lazy-clock TTL: Prune drops replicas idle longer
// than the TTL at the passed time and keeps younger ones, without touching
// acquired slots.
func TestPoolIdleTTL(t *testing.T) {
	p := NewPool(WCC{}, 1, 3)
	p.SetPolicy(0, time.Minute)
	r1, _, _ := p.Acquire(context.Background())
	r2, _, _ := p.Acquire(context.Background())
	held, _, err := p.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	p.Release(r1)
	p.Release(r2)
	if n := p.Prune(time.Now()); n != 0 {
		t.Fatalf("fresh replicas pruned: %d", n)
	}
	if n := p.Prune(time.Now().Add(2 * time.Minute)); n != 2 {
		t.Fatalf("expired prune dropped %d, want 2", n)
	}
	if p.Idle() != 0 || p.Dropped() != 2 {
		t.Fatalf("idle=%d dropped=%d after prune", p.Idle(), p.Dropped())
	}
	if p.Live() != 1 {
		t.Fatalf("acquired slot touched by prune: live=%d", p.Live())
	}
	p.Release(held)
	// No TTL configured: Prune is a no-op.
	p.SetPolicy(0, 0)
	if n := p.Prune(time.Now().Add(time.Hour)); n != 0 {
		t.Fatalf("prune without TTL dropped %d", n)
	}
	if p.Idle() != 1 {
		t.Fatalf("idle=%d", p.Idle())
	}
}

// TestPoolTryAcquireNonBlocking: TryAcquire must refuse immediately while
// all slots are live — it is what keeps speculative work from queuing
// behind other runs — and succeed once a slot frees.
func TestPoolTryAcquireNonBlocking(t *testing.T) {
	p := NewPool(WCC{}, 1, 1)
	r, _, err := p.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		//lint:ignore poolrelease failure-path probe: all slots are live, so no runner is handed out
		if _, _, ok := p.TryAcquire(); ok {
			t.Error("TryAcquire succeeded with all slots live")
		}
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("TryAcquire blocked")
	}
	p.Release(r)
	r2, _, ok := p.TryAcquire()
	if !ok {
		t.Fatal("TryAcquire failed with a free slot")
	}
	if _, reused := p.Counts(); reused != 1 {
		t.Fatalf("reused %d, want the warm replica recycled", reused)
	}
	p.Release(r2)
}

// TestPoolPruneReleasesBackingReferences: pruned entries must be zeroed in
// the backing array, or the dropped replicas' dataflow memory stays
// reachable — defeating the TTL's purpose.
func TestPoolPruneReleasesBackingReferences(t *testing.T) {
	p := NewPool(WCC{}, 1, 3)
	p.SetPolicy(0, time.Minute)
	var rs []Runner
	for i := 0; i < 3; i++ {
		r, _, err := p.Acquire(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		rs = append(rs, r)
	}
	for _, r := range rs {
		p.Release(r)
	}
	if n := p.Prune(time.Now().Add(2 * time.Minute)); n != 3 {
		t.Fatalf("pruned %d, want 3", n)
	}
	backing := p.idle[:cap(p.idle)]
	for i, e := range backing {
		if e.r != nil || !e.since.IsZero() {
			t.Fatalf("backing slot %d still pins a pruned replica: %+v", i, e)
		}
	}
}
