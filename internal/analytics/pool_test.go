package analytics

import (
	"testing"
	"time"

	"graphsurge/internal/graph"
)

func poolTriples() []graph.Triple {
	return []graph.Triple{
		{Src: 1, Dst: 2, W: 1},
		{Src: 2, Dst: 3, W: 1},
		{Src: 4, Dst: 5, W: 1},
	}
}

func TestInstanceReset(t *testing.T) {
	inst, err := NewInstance(WCC{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	inst.Step(poolTriples(), nil)
	if len(inst.Results()) != 5 {
		t.Fatalf("results: %v", inst.Results())
	}
	if err := inst.Reset(); err != nil {
		t.Fatal(err)
	}
	if _, ok := inst.Version(); ok {
		t.Fatal("reset instance still has a version")
	}
	if len(inst.Results()) != 0 {
		t.Fatalf("reset instance has results: %v", inst.Results())
	}
	// A reset instance runs from scratch and reproduces the same answer.
	inst.Step(poolTriples(), nil)
	if len(inst.Results()) != 5 {
		t.Fatalf("results after reset: %v", inst.Results())
	}
}

func TestPoolReusesResettableRunners(t *testing.T) {
	p := NewPool(WCC{}, 1, 2)
	if p.Size() != 2 {
		t.Fatalf("size: %d", p.Size())
	}
	r1, _, err := p.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	r1.Step(poolTriples(), nil)
	p.Release(r1)
	r2, _, err := p.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Fatal("pool did not recycle the released runner")
	}
	if _, ok := r2.Version(); ok {
		t.Fatal("recycled runner was not reset")
	}
	p.Release(r2)
}

func TestPoolBoundsConcurrency(t *testing.T) {
	p := NewPool(WCC{}, 1, 1)
	r, _, err := p.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	acquired := make(chan Runner)
	go func() {
		r2, _, err := p.Acquire()
		if err != nil {
			t.Error(err)
		}
		acquired <- r2
	}()
	select {
	case <-acquired:
		t.Fatal("second Acquire did not block on a full pool")
	case <-time.After(20 * time.Millisecond):
	}
	p.Release(r)
	select {
	case r2 := <-acquired:
		p.Release(r2)
	case <-time.After(time.Second):
		t.Fatal("Acquire did not wake after Release")
	}
}

func TestPoolDetachKeepsRunnerUsable(t *testing.T) {
	p := NewPool(WCC{}, 1, 1)
	r, _, err := p.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	r.Step(poolTriples(), nil)
	p.Detach()
	// The slot is free again, and the detached runner's state is untouched.
	r2, _, err := p.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	if r2 == r {
		t.Fatal("detached runner was recycled")
	}
	if len(r.Results()) != 5 {
		t.Fatalf("detached runner lost state: %v", r.Results())
	}
	p.Release(r2)
}
