package analytics

// Plain-Go reference implementations used to validate the differential
// algorithms. Each oracle recomputes from scratch on an explicit edge list.

import (
	"graphsurge/internal/graph"
)

// wccOracle labels every endpoint vertex with the minimum vertex ID of its
// undirected component (union-find).
func wccOracle(edges []graph.Triple) map[uint64]int64 {
	parent := make(map[uint64]uint64)
	var find func(x uint64) uint64
	find = func(x uint64) uint64 {
		p, ok := parent[x]
		if !ok || p == x {
			parent[x] = x
			return x
		}
		r := find(p)
		parent[x] = r
		return r
	}
	union := func(a, b uint64) { parent[find(a)] = find(b) }
	for _, e := range edges {
		union(e.Src, e.Dst)
	}
	minOf := make(map[uint64]uint64)
	for v := range parent {
		r := find(v)
		if m, ok := minOf[r]; !ok || v < m {
			minOf[r] = v
		}
	}
	out := make(map[uint64]int64)
	for v := range parent {
		out[v] = int64(minOf[find(v)])
	}
	return out
}

// spOracle computes shortest-path distances from src (Bellman-Ford over the
// explicit edge list). weighted=false counts hops.
func spOracle(edges []graph.Triple, src uint64, weighted bool) map[uint64]int64 {
	present := false
	for _, e := range edges {
		if e.Src == src || e.Dst == src {
			present = true
			break
		}
	}
	if !present {
		return map[uint64]int64{}
	}
	dist := map[uint64]int64{src: 0}
	for {
		changed := false
		for _, e := range edges {
			d, ok := dist[e.Src]
			if !ok {
				continue
			}
			w := int64(1)
			if weighted {
				w = e.W
			}
			if nd, ok2 := dist[e.Dst]; !ok2 || d+w < nd {
				dist[e.Dst] = d + w
				changed = true
			}
		}
		if !changed {
			return dist
		}
	}
}

// prOracle mirrors PageRank's integer fixed-point arithmetic exactly.
func prOracle(edges []graph.Triple, iters int) map[uint64]int64 {
	verts := make(map[uint64]bool)
	deg := make(map[uint64]int64)
	for _, e := range edges {
		verts[e.Src], verts[e.Dst] = true, true
		deg[e.Src]++
	}
	rank := make(map[uint64]int64, len(verts))
	for v := range verts {
		rank[v] = PRScale
	}
	base := int64(15 * PRScale / 100)
	for i := 0; i < iters; i++ {
		next := make(map[uint64]int64, len(verts))
		for v := range verts {
			next[v] = base
		}
		for _, e := range edges {
			// Matches the dataflow: share is computed once per source and
			// sent along each edge; integer division happens before fan-out.
			next[e.Dst] += rank[e.Src] * 85 / 100 / deg[e.Src]
		}
		rank = next
	}
	return rank
}

// sccOracle labels every endpoint vertex with the maximum vertex ID of its
// strongly connected component (iterative Tarjan).
func sccOracle(edges []graph.Triple) map[uint64]int64 {
	adj := make(map[uint64][]uint64)
	verts := make(map[uint64]bool)
	for _, e := range edges {
		adj[e.Src] = append(adj[e.Src], e.Dst)
		verts[e.Src], verts[e.Dst] = true, true
	}
	index := make(map[uint64]int)
	low := make(map[uint64]int)
	onStack := make(map[uint64]bool)
	var stack []uint64
	next := 0
	comp := make(map[uint64]int64)

	type frame struct {
		v  uint64
		ei int
	}
	for v0 := range verts {
		if _, seen := index[v0]; seen {
			continue
		}
		var call []frame
		call = append(call, frame{v0, 0})
		index[v0], low[v0] = next, next
		next++
		stack = append(stack, v0)
		onStack[v0] = true
		for len(call) > 0 {
			f := &call[len(call)-1]
			if f.ei < len(adj[f.v]) {
				w := adj[f.v][f.ei]
				f.ei++
				if _, seen := index[w]; !seen {
					index[w], low[w] = next, next
					next++
					stack = append(stack, w)
					onStack[w] = true
					call = append(call, frame{w, 0})
				} else if onStack[w] && index[w] < low[f.v] {
					low[f.v] = index[w]
				}
				continue
			}
			if low[f.v] == index[f.v] {
				var members []uint64
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					members = append(members, w)
					if w == f.v {
						break
					}
				}
				maxID := members[0]
				for _, m := range members {
					if m > maxID {
						maxID = m
					}
				}
				for _, m := range members {
					comp[m] = int64(maxID)
				}
			}
			call = call[:len(call)-1]
			if len(call) > 0 {
				p := call[len(call)-1].v
				if low[f.v] < low[p] {
					low[p] = low[f.v]
				}
			}
		}
	}
	return comp
}

// degreeOracle counts out-degrees.
func degreeOracle(edges []graph.Triple) map[uint64]int64 {
	out := make(map[uint64]int64)
	for _, e := range edges {
		out[e.Src]++
	}
	return out
}
