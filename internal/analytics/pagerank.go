package analytics

import (
	"graphsurge/internal/dataflow"
	"graphsurge/internal/graph"
)

// PRScale is the fixed-point scale of PageRank values: an output value of
// PRScale corresponds to a rank of 1.0. Integer fixed-point keeps the
// computation exactly consolidatable in the differential engine (floating
// point would make retractions inexact). The precision is deliberately
// moderate (2^-12): rank perturbations below one quantum truncate away,
// which bounds how far a small edge change cascades — the role float
// rounding plays in the original system — while still distinguishing ranks
// ~4000 apart in the graphs this reproduction targets.
const PRScale = 1 << 12

// PageRank runs a fixed number of unnormalized PageRank iterations:
// rank(v) = (1-d) + d·Σ_{u→v} rank(u)/deg(u), with damping d = 0.85.
//
// PageRank is the paper's canonical *unstable* computation: a single edge
// change at u alters deg(u) and therefore every message u sends, so its
// differential footprint between similar views is much larger than
// Bellman-Ford's — the effect behind Table 2 and the splitting optimizer.
// Vertices with no outgoing edges leak rank (the usual simplification in
// dataflow implementations).
type PageRank struct {
	// Iterations is the number of rank updates; 0 means the default of 10.
	Iterations uint32
}

// Name implements Computation.
func (PageRank) Name() string { return "pagerank" }

// Build implements Computation.
func (c PageRank) Build(b *Builder) {
	iters := c.Iterations
	if iters == 0 {
		iters = 10
	}
	const damping = 85 // percent

	edges := edgesBySrc(b.Edges())
	verts := nodes(b.Edges())
	degrees := dataflow.ReduceCount(dataflow.Map(b.Edges(), func(t graph.Triple) dataflow.KV[uint64, uint64] {
		return dataflow.KV[uint64, uint64]{K: t.Src, V: t.Dst}
	}))
	// Every vertex contributes a constant (1-d) base rank each iteration.
	base := dataflow.Map(verts, func(v uint64) dataflow.KV[uint64, int64] {
		return dataflow.KV[uint64, int64]{K: v, V: (100 - damping) * PRScale / 100}
	})
	initial := dataflow.Map(verts, func(v uint64) dataflow.KV[uint64, int64] {
		return dataflow.KV[uint64, int64]{K: v, V: PRScale}
	})

	ranks := dataflow.IterateN(initial, iters, func(x *dataflow.Collection[dataflow.KV[uint64, int64]]) *dataflow.Collection[dataflow.KV[uint64, int64]] {
		// Divide each vertex's damped rank by its out-degree...
		shares := dataflow.JoinMap(x, degrees, func(v uint64, rank int64, deg int64) dataflow.KV[uint64, int64] {
			return dataflow.KV[uint64, int64]{K: v, V: rank * damping / 100 / deg}
		})
		// ...send the share along every out-edge...
		contribs := dataflow.JoinMap(shares, edges, func(_ uint64, share int64, e dstW) dataflow.KV[uint64, int64] {
			return dataflow.KV[uint64, int64]{K: e.Dst, V: share}
		})
		// ...and accumulate with the base rank.
		return dataflow.ReduceSum(dataflow.Concat(base, contribs))
	})
	b.Output(dataflow.Map(ranks, func(kv dataflow.KV[uint64, int64]) VertexValue {
		return VertexValue{V: kv.K, Val: kv.V}
	}))
}
