package analytics

import (
	"time"

	"graphsurge/internal/dataflow"
	"graphsurge/internal/graph"
)

// SCC computes strongly connected components with the doubly-iterative
// coloring algorithm (Orzan) the paper uses: repeatedly (1) propagate the
// maximum vertex ID forward along edges to a fixpoint, coloring every vertex
// with the largest vertex that reaches it; (2) from each color root (a
// vertex whose color is its own ID), collect the vertices of the same color
// that reach the root by walking edges backwards — exactly the root's SCC;
// (3) remove the confirmed SCCs and repeat on the remainder.
//
// The engine supports one iteration dimension per dataflow, so the outer
// loop is *staged*: each phase is its own differential dataflow, fed the
// settled per-version output of the previous phase (the alive vertex set).
// This is the engineering substitution for Differential Dataflow's nested
// iterative scopes described in DESIGN.md: every phase remains fully
// incremental across view versions, and phases never observe each other's
// transient fixpoint states.
//
// The output value of a vertex is its SCC's coloring ID (the maximum vertex
// ID in the component). Vertices still unassigned after Phases phases (very
// long chains of SCCs) are reported by RemainingCount; raise Phases if it is
// ever nonzero.
type SCC struct {
	// Phases is the number of staged outer iterations; 0 means the default
	// of 10.
	Phases int
}

// Name implements Computation and Program.
func (*SCC) Name() string { return "scc" }

// Build implements Computation for interface completeness; SCC always runs
// through its staged Runner.
func (c *SCC) Build(b *Builder) {
	panic("analytics: SCC must run through NewRunner, not a single Instance")
}

// NewRunner implements Program.
func (c *SCC) NewRunner(workers int) (Runner, error) {
	phases := c.Phases
	if phases == 0 {
		phases = 10
	}
	r := &sccRunner{
		stages:  make([]*sccStage, phases),
		nodeDeg: make(map[uint64]int64),
		alive:   make([]map[uint64]bool, phases+1),
		done:    make([]map[uint64]uint64, phases),
	}
	for p := 0; p < phases; p++ {
		r.stages[p] = newSCCStage(workers)
		r.alive[p] = make(map[uint64]bool)
		r.done[p] = make(map[uint64]uint64)
	}
	r.alive[phases] = make(map[uint64]bool)
	return r, nil
}

// sccMatch pairs a candidate backward-propagated color with the vertex's
// actual color.
type sccMatch struct {
	Node   uint64
	Cand   uint64
	Actual uint64
}

// sccStage is one phase's dataflow: inputs are the view's edges and the
// phase's alive vertex set; output is the set of (vertex, color) assignments
// confirmed in this phase.
type sccStage struct {
	scope   *dataflow.Scope
	edgeIn  *dataflow.Input[graph.Triple]
	aliveIn *dataflow.Input[uint64]
	done    *dataflow.Capture[dataflow.KV[uint64, uint64]]
}

func newSCCStage(workers int) *sccStage {
	s := dataflow.NewScope(workers)
	edgeIn, edgesT := dataflow.NewInput[graph.Triple](s)
	aliveIn, aliveCol := dataflow.NewInput[uint64](s)

	alive := dataflow.Map(aliveCol, func(v uint64) dataflow.KV[uint64, struct{}] {
		return dataflow.KV[uint64, struct{}]{K: v}
	})
	allEdges := dataflow.Map(edgesT, func(t graph.Triple) dataflow.KV[uint64, uint64] {
		return dataflow.KV[uint64, uint64]{K: t.Src, V: t.Dst}
	})
	// Keep only edges with both endpoints alive.
	byDst := dataflow.JoinMap(allEdges, alive, func(src uint64, dst uint64, _ struct{}) dataflow.KV[uint64, uint64] {
		return dataflow.KV[uint64, uint64]{K: dst, V: src}
	})
	edges := dataflow.JoinMap(byDst, alive, func(dst uint64, src uint64, _ struct{}) dataflow.KV[uint64, uint64] {
		return dataflow.KV[uint64, uint64]{K: src, V: dst}
	})
	// Restriction may produce duplicate (src,dst) records for parallel
	// edges; that only multiplies message multiplicities, which max/min
	// reduces ignore.

	seeds := dataflow.Map(alive, func(kv dataflow.KV[uint64, struct{}]) dataflow.KV[uint64, uint64] {
		return dataflow.KV[uint64, uint64]{K: kv.K, V: kv.K}
	})
	// Forward fixpoint: color(v) = max(v, colors of in-neighbors).
	colors := dataflow.Iterate(seeds, func(x *dataflow.Collection[dataflow.KV[uint64, uint64]]) *dataflow.Collection[dataflow.KV[uint64, uint64]] {
		msgs := dataflow.JoinMap(x, edges, func(_ uint64, color uint64, dst uint64) dataflow.KV[uint64, uint64] {
			return dataflow.KV[uint64, uint64]{K: dst, V: color}
		})
		return dataflow.ReduceMax(dataflow.Concat(msgs, seeds))
	})

	roots := dataflow.Filter(colors, func(kv dataflow.KV[uint64, uint64]) bool { return kv.K == kv.V })
	rev := dataflow.Map(edges, func(kv dataflow.KV[uint64, uint64]) dataflow.KV[uint64, uint64] {
		return dataflow.KV[uint64, uint64]{K: kv.V, V: kv.K}
	})

	// Backward fixpoint within the color class: done(v) iff v reaches its
	// color root through same-colored vertices.
	done := dataflow.Iterate(roots, func(x *dataflow.Collection[dataflow.KV[uint64, uint64]]) *dataflow.Collection[dataflow.KV[uint64, uint64]] {
		msgs := dataflow.JoinMap(x, rev, func(_ uint64, color uint64, pred uint64) dataflow.KV[uint64, uint64] {
			return dataflow.KV[uint64, uint64]{K: pred, V: color}
		})
		matched := dataflow.JoinMap(msgs, colors, func(n uint64, cand uint64, actual uint64) sccMatch {
			return sccMatch{Node: n, Cand: cand, Actual: actual}
		})
		confirmed := dataflow.FlatMap(matched, func(m sccMatch, emit func(dataflow.KV[uint64, uint64])) {
			if m.Cand == m.Actual {
				emit(dataflow.KV[uint64, uint64]{K: m.Node, V: m.Cand})
			}
		})
		return dataflow.ReduceMin(dataflow.Concat(confirmed, roots))
	})

	return &sccStage{
		scope:   s,
		edgeIn:  edgeIn,
		aliveIn: aliveIn,
		done:    dataflow.NewCapture(done),
	}
}

// sccRunner drives the staged phases and maintains the alive sets between
// them.
type sccRunner struct {
	stages []*sccStage
	next   uint32

	nodeDeg map[uint64]int64    // edge-incidence count per vertex
	alive   []map[uint64]bool   // alive[p] is phase p's input vertex set
	done    []map[uint64]uint64 // done[p] is phase p's confirmed assignment

	// outputDiffs[v] is the merged output difference count per version.
	outputDiffs map[uint32]int
}

func (r *sccRunner) Step(adds, dels []graph.Triple) time.Duration {
	return r.step(len(adds), func(i int) graph.Triple { return adds[i] },
		len(dels), func(i int) graph.Triple { return dels[i] })
}

// StepBatch implements Runner over columnar batches.
func (r *sccRunner) StepBatch(adds, dels *graph.EdgeBatch) time.Duration {
	return r.step(adds.Len(), adds.Triple, dels.Len(), dels.Triple)
}

func (r *sccRunner) step(na int, addAt func(int) graph.Triple, nd int, delAt func(int) graph.Triple) time.Duration {
	start := time.Now()
	v := r.next
	r.next++

	edgeUps := make([]dataflow.Update[graph.Triple], 0, na+nd)
	var aliveDiff []dataflow.Update[uint64]
	bump := func(n uint64, by int64) {
		old := r.nodeDeg[n]
		nw := old + by
		if nw == 0 {
			delete(r.nodeDeg, n)
		} else {
			r.nodeDeg[n] = nw
		}
		if old == 0 && nw > 0 {
			aliveDiff = append(aliveDiff, dataflow.Update[uint64]{Rec: n, D: 1})
			r.alive[0][n] = true
		} else if old > 0 && nw == 0 {
			aliveDiff = append(aliveDiff, dataflow.Update[uint64]{Rec: n, D: -1})
			delete(r.alive[0], n)
		}
	}
	for i := 0; i < na; i++ {
		t := addAt(i)
		edgeUps = append(edgeUps, dataflow.Update[graph.Triple]{Rec: t, D: 1})
		bump(t.Src, 1)
		bump(t.Dst, 1)
	}
	for i := 0; i < nd; i++ {
		t := delAt(i)
		edgeUps = append(edgeUps, dataflow.Update[graph.Triple]{Rec: t, D: -1})
		bump(t.Src, -1)
		bump(t.Dst, -1)
	}

	merged := make(map[VertexValue]int64)
	for p, st := range r.stages {
		st.edgeIn.SendAt(v, edgeUps)
		st.aliveIn.SendAt(v, aliveDiff)
		st.scope.Drain()
		st.scope.Compact(v)

		// Settle this phase's output and derive the next phase's alive set
		// incrementally from the two difference sets.
		doneDiff := st.done.VersionDiff(v)
		candidates := make(map[uint64]struct{}, len(doneDiff)+len(aliveDiff))
		for kv, d := range doneDiff {
			merged[VertexValue{V: kv.K, Val: int64(kv.V)}] += d
			candidates[kv.K] = struct{}{}
			if d > 0 {
				r.done[p][kv.K] = kv.V
			} else if cur, ok := r.done[p][kv.K]; ok && cur == kv.V {
				// Only a retraction of the current color removes the entry;
				// a color change arrives as {+new, -old} in map order.
				delete(r.done[p], kv.K)
			}
		}
		for _, u := range aliveDiff {
			candidates[u.Rec] = struct{}{}
		}
		aliveP, aliveNext := r.alive[p], r.alive[p+1]
		var nextDiff []dataflow.Update[uint64]
		for n := range candidates {
			_, isDone := r.done[p][n]
			newMember := aliveP[n] && !isDone
			if newMember && !aliveNext[n] {
				aliveNext[n] = true
				nextDiff = append(nextDiff, dataflow.Update[uint64]{Rec: n, D: 1})
			} else if !newMember && aliveNext[n] {
				delete(aliveNext, n)
				nextDiff = append(nextDiff, dataflow.Update[uint64]{Rec: n, D: -1})
			}
		}
		aliveDiff = nextDiff
	}
	if r.outputDiffs == nil {
		r.outputDiffs = make(map[uint32]int)
	}
	n := 0
	for _, d := range merged {
		if d != 0 {
			n++
		}
	}
	r.outputDiffs[v] = n
	return time.Since(start)
}

// Reset implements Resettable: every stage's dataflow resets in place (the
// stage inputs rewind through the scopes' reset hooks) and the runner's
// inter-stage bookkeeping — degree counts, alive sets, confirmed
// assignments, merged output-diff counts — is dropped for fresh maps. The
// pool can therefore recycle staged SCC runners exactly like
// single-dataflow instances, instead of rebuilding one dataflow per phase.
func (r *sccRunner) Reset() error {
	for _, st := range r.stages {
		st.scope.ResetState()
	}
	r.nodeDeg = make(map[uint64]int64)
	for p := range r.alive {
		r.alive[p] = make(map[uint64]bool)
	}
	for p := range r.done {
		r.done[p] = make(map[uint64]uint64)
	}
	r.outputDiffs = nil
	r.next = 0
	return nil
}

func (r *sccRunner) Version() (uint32, bool) {
	if r.next == 0 {
		return 0, false
	}
	return r.next - 1, true
}

func (r *sccRunner) OutputDiffs(v uint32) int { return r.outputDiffs[v] }

func (r *sccRunner) Results() map[VertexValue]int64 {
	out := make(map[VertexValue]int64)
	for _, d := range r.done {
		for n, color := range d {
			out[VertexValue{V: n, Val: int64(color)}] = 1
		}
	}
	return out
}

func (r *sccRunner) DropOutputsBefore(v uint32) {
	for _, st := range r.stages {
		st.done.Drop(v)
	}
	for ver := range r.outputDiffs {
		if ver < v {
			delete(r.outputDiffs, ver)
		}
	}
}

// RemainingCount returns the number of vertices not assigned to any SCC
// after the last phase; nonzero means Phases is too small for this graph.
func (r *sccRunner) RemainingCount() int { return len(r.alive[len(r.stages)]) }

func (r *sccRunner) WorkCounts() []int64 {
	var out []int64
	for _, st := range r.stages {
		wc := st.scope.WorkCounts()
		if out == nil {
			out = make([]int64, len(wc))
		}
		for i, c := range wc {
			out[i] += c
		}
	}
	return out
}

func (r *sccRunner) IterCapHit() bool {
	for _, st := range r.stages {
		if st.scope.IterCapHit.Load() {
			return true
		}
	}
	return false
}
