package analytics

import (
	"graphsurge/internal/dataflow"
	"graphsurge/internal/graph"
)

// WCC computes weakly connected components by undirected minimum-label
// propagation: every vertex starts labeled with its own ID and iteratively
// adopts the minimum label among itself and its neighbors, to fixpoint. The
// output value of a vertex is its component's minimum vertex ID.
type WCC struct{}

// Name implements Computation.
func (WCC) Name() string { return "wcc" }

// Build implements Computation.
func (WCC) Build(b *Builder) {
	adj := edgesSymmetric(b.Edges())
	seeds := dataflow.Map(nodes(b.Edges()), func(v uint64) dataflow.KV[uint64, uint64] {
		return dataflow.KV[uint64, uint64]{K: v, V: v}
	})
	labels := dataflow.Iterate(seeds, func(x *dataflow.Collection[dataflow.KV[uint64, uint64]]) *dataflow.Collection[dataflow.KV[uint64, uint64]] {
		msgs := dataflow.JoinMap(x, adj, func(_ uint64, label uint64, nbr uint64) dataflow.KV[uint64, uint64] {
			return dataflow.KV[uint64, uint64]{K: nbr, V: label}
		})
		return dataflow.ReduceMin(dataflow.Concat(msgs, seeds))
	})
	b.Output(dataflow.Map(labels, func(kv dataflow.KV[uint64, uint64]) VertexValue {
		return VertexValue{V: kv.K, Val: int64(kv.V)}
	}))
}

// Degree computes each vertex's out-degree — the paper's example of a
// non-iterative computation ("computing the max degree of a graph").
type Degree struct{}

// Name implements Computation.
func (Degree) Name() string { return "degree" }

// Build implements Computation.
func (Degree) Build(b *Builder) {
	bySrc := dataflow.Map(b.Edges(), func(t graph.Triple) dataflow.KV[uint64, uint64] {
		return dataflow.KV[uint64, uint64]{K: t.Src, V: t.Dst}
	})
	counts := dataflow.ReduceCount(bySrc)
	b.Output(dataflow.Map(counts, func(kv dataflow.KV[uint64, int64]) VertexValue {
		return VertexValue{V: kv.K, Val: kv.V}
	}))
}
