package analytics

import (
	"context"
	"sync"
	"time"

	"graphsurge/internal/obs"
)

// Resettable is implemented by runners that can return themselves to their
// just-built condition in place, ready for a new from-scratch execution. A
// Pool recycles resettable runners across segments and across RunCollection
// calls instead of dropping them; runners without Reset are simply rebuilt
// on the next Acquire.
//
// Reset is in-place: it drops operator traces, pending work and output
// history through dataflow.Scope.ResetState without reconstructing the
// dataflow graph, so recycling a runner skips graph construction entirely —
// the infrastructure-reuse optimization the paper's shared-dataflow design
// motivates (§5). Because the graph (including the computation's fused
// operator closures) is reused, Reset can only restore runners whose
// Computation.Build wired stateless operator functions; state hidden in
// closures survives a reset.
type Resettable interface {
	Reset() error
}

// Reset returns the instance to its just-built condition in place: every
// operator's state, the output history, the input's version cursor, work
// counters and the iteration-cap flag are cleared, while the dataflow graph
// itself is reused. The instance then serves a new from-scratch run starting
// at version 0.
func (inst *Instance) Reset() error {
	inst.scope.ResetState()
	inst.next = 0
	return nil
}

// Pool hands out up to its size in concurrently live runner replicas for one
// computation. It is the admission control for segment-level parallelism —
// Acquire blocks while all replica slots are busy, so at most `size`
// dataflows are stepping at once — and the warm-replica cache for an engine:
// released resettable runners are kept idle and recycled by later acquires,
// amortizing dataflow construction across segments, RunCollection calls and
// concurrent callers.
//
// All methods are safe for concurrent use.
// idleReplica is a warm replica waiting for reuse, stamped with the time it
// went idle so the TTL policy can age it out.
type idleReplica struct {
	r     Runner
	since time.Time
}

type Pool struct {
	comp    Computation
	workers int

	mu   sync.Mutex
	cond *sync.Cond
	size int
	live int
	idle []idleReplica // append order = idle-since order: oldest first

	maxIdle int           // idle-replica high-water mark; 0 = unlimited
	idleTTL time.Duration // idle age dropped by Prune; 0 = no TTL

	built   int // runners constructed from scratch
	reused  int // acquisitions served by resetting an idle runner
	dropped int // idle replicas discarded by the sizing policy
}

// NewPool creates a pool of up to size replicas (minimum 1), each built with
// the given intra-dataflow worker count.
func NewPool(comp Computation, workers, size int) *Pool {
	if size < 1 {
		size = 1
	}
	p := &Pool{comp: comp, workers: workers, size: size}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// Computation returns the computation the pool builds replicas for.
func (p *Pool) Computation() Computation { return p.comp }

// Size returns the current replica capacity.
func (p *Pool) Size() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.size
}

// Grow raises the replica capacity to at least size. Capacity never shrinks:
// concurrent runs admitted under a larger capacity keep their slots, and an
// engine-level pool serves the largest parallelism any caller asked for.
func (p *Pool) Grow(size int) {
	p.mu.Lock()
	if size > p.size {
		p.size = size
		p.cond.Broadcast()
	}
	p.mu.Unlock()
}

// Live returns the number of currently acquired replica slots.
func (p *Pool) Live() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.live
}

// Idle returns the number of warm replicas waiting for reuse.
func (p *Pool) Idle() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.idle)
}

// Counts reports how many acquisitions built a runner from scratch and how
// many were served by resetting a warm replica — the pool's effectiveness
// metric (BenchmarkPoolReuse measures the per-acquisition gap).
func (p *Pool) Counts() (built, reused int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.built, p.reused
}

// Dropped returns how many idle replicas the sizing policy has discarded
// (high-water mark on Release plus TTL expiry in Prune).
func (p *Pool) Dropped() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.dropped
}

// SetPolicy bounds the warm-replica cache. maxIdle caps how many idle
// replicas are retained — a Release beyond the high-water mark drops the
// replica instead of caching it (0 = unlimited). ttl is the idle age beyond
// which Prune discards a replica (0 = no TTL). The clock is lazy: the owner
// passes now into Prune on its own access paths (the engine sweeps its pools
// on pool lookup and stats export), so no background goroutine is needed —
// an untouched engine holds its replicas, which is fine because nothing is
// competing for the memory until the next call arrives.
func (p *Pool) SetPolicy(maxIdle int, ttl time.Duration) {
	p.mu.Lock()
	p.maxIdle = maxIdle
	p.idleTTL = ttl
	p.mu.Unlock()
}

// Prune drops idle replicas that have been idle longer than the TTL at the
// given time, returning how many were dropped. Acquired slots are
// untouched. With no TTL configured it is a no-op.
func (p *Pool) Prune(now time.Time) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.idleTTL <= 0 {
		return 0
	}
	// idle is ordered oldest-first, so expired replicas form a prefix.
	cut := 0
	for cut < len(p.idle) && now.Sub(p.idle[cut].since) > p.idleTTL {
		cut++
	}
	if cut > 0 {
		n := copy(p.idle, p.idle[cut:])
		// Zero the vacated tail: the whole point of the TTL is releasing
		// replica memory on an idle engine, and the backing array would
		// otherwise keep every dropped runner reachable indefinitely.
		for i := n; i < len(p.idle); i++ {
			p.idle[i] = idleReplica{}
		}
		p.idle = p.idle[:n]
		p.dropped += cut
	}
	return cut
}

// DropIdle discards all warm replicas, keeping acquired slots valid. An
// engine evicting a pool uses it to release runner memory immediately
// rather than waiting for the pool itself to be collected.
func (p *Pool) DropIdle() {
	p.mu.Lock()
	p.idle = nil
	p.mu.Unlock()
}

// Acquire blocks until a replica slot frees and returns a runner ready for a
// from-scratch run, together with the time spent building or resetting it.
// That setup time is part of the cost of splitting (the executor folds it
// into the seed view's duration, as the sequential executor measured runner
// construction); time spent waiting for a slot is scheduling, not splitting
// cost, and is excluded.
//
// The wait is bounded by ctx: a caller canceled while queued for a slot
// returns ctx's error without claiming one, which is what lets a canceled
// run drain instead of deadlocking behind the replicas it will never get.
func (p *Pool) Acquire(ctx context.Context) (Runner, time.Duration, error) {
	if err := ctx.Err(); err != nil {
		return nil, 0, err
	}
	// The condition variable has no channel to select on, so cancellation is
	// delivered as a broadcast: every waiter wakes, re-checks its own ctx,
	// and the canceled one leaves the queue.
	stop := context.AfterFunc(ctx, func() {
		p.mu.Lock()
		p.cond.Broadcast()
		p.mu.Unlock()
	})
	defer stop()
	p.mu.Lock()
	for p.live >= p.size {
		if err := ctx.Err(); err != nil {
			p.mu.Unlock()
			return nil, 0, err
		}
		p.cond.Wait()
	}
	p.live++
	// Pop the most recently released replica: hottest caches, and the
	// oldest replicas stay at the front where the TTL prune finds them.
	r := p.popIdle()
	p.mu.Unlock()

	return p.prepare(r)
}

// prepare turns a claimed slot into a ready runner: the popped warm replica
// (possibly nil) is reset in place, falling through to a fresh build when
// there is none or the reset fails (the broken runner is dropped). On build
// failure the claimed slot is returned to the pool.
func (p *Pool) prepare(r Runner) (Runner, time.Duration, error) {
	start := time.Now()
	if r != nil {
		if rs, ok := r.(Resettable); ok {
			if err := rs.Reset(); err == nil {
				p.mu.Lock()
				p.reused++
				p.mu.Unlock()
				obs.M.PoolReused.Inc()
				return r, time.Since(start), nil
			}
		}
	}
	r, err := NewRunner(p.comp, p.workers)
	if err != nil {
		p.mu.Lock()
		p.live--
		p.cond.Signal()
		p.mu.Unlock()
		return nil, 0, err
	}
	p.mu.Lock()
	p.built++
	p.mu.Unlock()
	obs.M.PoolBuilt.Inc()
	return r, time.Since(start), nil
}

// TryAcquire is the non-blocking Acquire: it returns ok=false immediately
// when every replica slot is busy (or construction fails) instead of
// waiting on the condition variable. Speculative work uses it so exploiting
// idle capacity can never turn into queuing behind other runs.
func (p *Pool) TryAcquire() (Runner, time.Duration, bool) {
	p.mu.Lock()
	if p.live >= p.size {
		p.mu.Unlock()
		return nil, 0, false
	}
	p.live++
	r := p.popIdle()
	p.mu.Unlock()

	r, setup, err := p.prepare(r)
	if err != nil {
		return nil, 0, false
	}
	return r, setup, true
}

// popIdle takes the most recently released warm replica, if any, zeroing
// the vacated slot so the backing array never pins a runner the policy
// later drops. Caller holds p.mu.
func (p *Pool) popIdle() Runner {
	n := len(p.idle)
	if n == 0 {
		return nil
	}
	r := p.idle[n-1].r
	p.idle[n-1] = idleReplica{}
	p.idle = p.idle[:n-1]
	return r
}

// Release returns the runner's slot to the pool. Resettable runners are kept
// warm for reuse by a later Acquire unless the idle high-water mark is
// reached; others are dropped. The caller must be done reading the runner —
// the next Acquire resets it.
func (p *Pool) Release(r Runner) {
	p.mu.Lock()
	if _, ok := r.(Resettable); ok {
		if p.maxIdle > 0 && len(p.idle) >= p.maxIdle {
			p.dropped++
			obs.M.PoolDropped.Inc()
		} else {
			p.idle = append(p.idle, idleReplica{r: r, since: time.Now()})
		}
	}
	p.live--
	p.cond.Signal()
	p.mu.Unlock()
}
