package analytics

import (
	"sync"
	"time"
)

// Resettable is implemented by runners that can return themselves to their
// just-built condition in place, ready for a new from-scratch execution. A
// Pool recycles resettable runners across segments and across RunCollection
// calls instead of dropping them; runners without Reset are simply rebuilt
// on the next Acquire.
//
// Reset is in-place: it drops operator traces, pending work and output
// history through dataflow.Scope.ResetState without reconstructing the
// dataflow graph, so recycling a runner skips graph construction entirely —
// the infrastructure-reuse optimization the paper's shared-dataflow design
// motivates (§5). Because the graph (including the computation's fused
// operator closures) is reused, Reset can only restore runners whose
// Computation.Build wired stateless operator functions; state hidden in
// closures survives a reset.
type Resettable interface {
	Reset() error
}

// Reset returns the instance to its just-built condition in place: every
// operator's state, the output history, the input's version cursor, work
// counters and the iteration-cap flag are cleared, while the dataflow graph
// itself is reused. The instance then serves a new from-scratch run starting
// at version 0.
func (inst *Instance) Reset() error {
	inst.scope.ResetState()
	inst.next = 0
	return nil
}

// Pool hands out up to its size in concurrently live runner replicas for one
// computation. It is the admission control for segment-level parallelism —
// Acquire blocks while all replica slots are busy, so at most `size`
// dataflows are stepping at once — and the warm-replica cache for an engine:
// released resettable runners are kept idle and recycled by later acquires,
// amortizing dataflow construction across segments, RunCollection calls and
// concurrent callers.
//
// All methods are safe for concurrent use.
type Pool struct {
	comp    Computation
	workers int

	mu   sync.Mutex
	cond *sync.Cond
	size int
	live int
	idle []Runner

	built  int // runners constructed from scratch
	reused int // acquisitions served by resetting an idle runner
}

// NewPool creates a pool of up to size replicas (minimum 1), each built with
// the given intra-dataflow worker count.
func NewPool(comp Computation, workers, size int) *Pool {
	if size < 1 {
		size = 1
	}
	p := &Pool{comp: comp, workers: workers, size: size}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// Computation returns the computation the pool builds replicas for.
func (p *Pool) Computation() Computation { return p.comp }

// Size returns the current replica capacity.
func (p *Pool) Size() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.size
}

// Grow raises the replica capacity to at least size. Capacity never shrinks:
// concurrent runs admitted under a larger capacity keep their slots, and an
// engine-level pool serves the largest parallelism any caller asked for.
func (p *Pool) Grow(size int) {
	p.mu.Lock()
	if size > p.size {
		p.size = size
		p.cond.Broadcast()
	}
	p.mu.Unlock()
}

// Live returns the number of currently acquired replica slots.
func (p *Pool) Live() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.live
}

// Idle returns the number of warm replicas waiting for reuse.
func (p *Pool) Idle() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.idle)
}

// Counts reports how many acquisitions built a runner from scratch and how
// many were served by resetting a warm replica — the pool's effectiveness
// metric (BenchmarkPoolReuse measures the per-acquisition gap).
func (p *Pool) Counts() (built, reused int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.built, p.reused
}

// DropIdle discards all warm replicas, keeping acquired slots valid. An
// engine evicting a pool uses it to release runner memory immediately
// rather than waiting for the pool itself to be collected.
func (p *Pool) DropIdle() {
	p.mu.Lock()
	p.idle = nil
	p.mu.Unlock()
}

// Acquire blocks until a replica slot frees and returns a runner ready for a
// from-scratch run, together with the time spent building or resetting it.
// That setup time is part of the cost of splitting (the executor folds it
// into the seed view's duration, as the sequential executor measured runner
// construction); time spent waiting for a slot is scheduling, not splitting
// cost, and is excluded.
func (p *Pool) Acquire() (Runner, time.Duration, error) {
	p.mu.Lock()
	for p.live >= p.size {
		p.cond.Wait()
	}
	p.live++
	var r Runner
	if n := len(p.idle); n > 0 {
		r, p.idle = p.idle[n-1], p.idle[:n-1]
	}
	p.mu.Unlock()

	start := time.Now()
	if r != nil {
		if rs, ok := r.(Resettable); ok {
			if err := rs.Reset(); err == nil {
				p.mu.Lock()
				p.reused++
				p.mu.Unlock()
				return r, time.Since(start), nil
			}
			// A failed reset falls through to a fresh build; the broken
			// runner is dropped.
		}
	}
	r, err := NewRunner(p.comp, p.workers)
	if err != nil {
		p.mu.Lock()
		p.live--
		p.cond.Signal()
		p.mu.Unlock()
		return nil, 0, err
	}
	p.mu.Lock()
	p.built++
	p.mu.Unlock()
	return r, time.Since(start), nil
}

// Release returns the runner's slot to the pool. Resettable runners are kept
// warm for reuse by a later Acquire; others are dropped. The caller must be
// done reading the runner — the next Acquire resets it.
func (p *Pool) Release(r Runner) {
	p.mu.Lock()
	if _, ok := r.(Resettable); ok {
		p.idle = append(p.idle, r)
	}
	p.live--
	p.cond.Signal()
	p.mu.Unlock()
}
